/**
 * @file
 * `shredder_serve` — cold-start a multi-endpoint `ServingEngine` from
 * deployment artifacts on disk, with zero application code.
 *
 * This is the serve side of the paper's train→ship→serve loop: the
 * trainer wrote a bundle (`save_bundle`, or
 * `examples/edge_cloud_demo trainer`), someone shipped it, and this
 * process only ever loads and serves it. Endpoints come from a text
 * manifest or from `--endpoint name=bundle` pairs:
 *
 *   shredder_serve deploy/manifest.txt
 *   shredder_serve --endpoint lenet=deploy/lenet.shb --queries 16
 *
 * After registration the tool prints an endpoint table and (unless
 * `--list`) drives a self-test stream through every endpoint: random
 * inputs of the bundle's recorded input shape run the edge half
 * locally, and the activations are submitted to the engine, which
 * applies the bundled noise policy and finishes the inference. That
 * exercises the exact code path a real deployment serves.
 *
 * With `--listen host:port` the tool instead becomes the network
 * front door: after the endpoint table it starts a `net::Server`
 * speaking the SHRQ/SHRP activation protocol (src/net/protocol.h) and
 * serves until SIGINT/SIGTERM. `--port-file` writes the bound port to
 * a file once listening (for scripts using an ephemeral `:0` port).
 *
 * Exit status: 0 on success, 1 on a serving/load error (typed
 * `ServingError` — a malformed bundle fails the load, never aborts
 * the process), 2 on a usage error.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/shredder/shredder.h"

namespace {

using namespace shredder;

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <manifest> [options]\n"
        "       %s --endpoint <name>=<bundle> [--endpoint ...] [options]\n"
        "\n"
        "Cold-start a multi-endpoint ServingEngine from deployment\n"
        "bundles (see docs/DEPLOYMENT.md for the formats).\n"
        "\n"
        "options:\n"
        "  --endpoint name=path  register one bundle (repeatable)\n"
        "  --shards N            pool shards endpoints are placed on\n"
        "                        (default 1; manifest key shard= pins)\n"
        "  --threads-per-shard N worker threads per shard (default:\n"
        "                        derived from the worker budget)\n"
        "  --queries N           self-test queries per endpoint "
        "(default 8)\n"
        "  --seed N              RNG seed of the self-test inputs\n"
        "  --list                load + list endpoints, skip the "
        "self-test\n"
        "  --listen host:port    serve the SHRQ/SHRP wire protocol on\n"
        "                        a TCP socket until SIGINT/SIGTERM\n"
        "                        (port 0 = kernel-assigned)\n"
        "  --port-file path      write the bound port to this file once\n"
        "                        listening (useful with port 0)\n"
        "\n"
        "With --listen, plain HTTP 'GET /metrics' on the same port\n"
        "answers a Prometheus text scrape of the serving process.\n",
        argv0, argv0);
    return 2;
}

/**
 * Split "host:port" at the LAST colon (the host is a numeric IPv4
 * address or name, never containing one). Returns false on a missing
 * colon or a port outside [0, 65535].
 */
bool
parse_listen(const std::string& spec, std::string* host, std::uint16_t* port)
{
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0) {
        return false;
    }
    char* end = nullptr;
    const long value = std::strtol(spec.c_str() + colon + 1, &end, 10);
    if (end == spec.c_str() + colon + 1 || *end != '\0' || value < 0 ||
        value > 65535) {
        return false;
    }
    *host = spec.substr(0, colon);
    *port = static_cast<std::uint16_t>(value);
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string manifest;
    std::vector<std::pair<std::string, std::string>> direct;  // name→path
    std::int64_t queries = 8;
    std::uint64_t seed = 7;
    long shards = 1;
    long threads_per_shard = 0;
    bool list_only = false;
    bool listen = false;
    std::string listen_host;
    std::uint16_t listen_port = 0;
    std::string port_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--endpoint") {
            if (i + 1 >= argc) {
                return usage(argv[0]);
            }
            const std::string pair = argv[++i];
            const auto eq = pair.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == pair.size()) {
                std::fprintf(stderr, "bad --endpoint '%s'\n",
                             pair.c_str());
                return usage(argv[0]);
            }
            direct.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
        } else if (arg == "--shards") {
            if (i + 1 >= argc) {
                return usage(argv[0]);
            }
            shards = std::atol(argv[++i]);
            if (shards < 1 || shards > 1024) {
                std::fprintf(stderr, "--shards wants 1..1024\n");
                return usage(argv[0]);
            }
        } else if (arg == "--threads-per-shard") {
            if (i + 1 >= argc) {
                return usage(argv[0]);
            }
            threads_per_shard = std::atol(argv[++i]);
            if (threads_per_shard < 0 || threads_per_shard > 4096) {
                std::fprintf(stderr, "--threads-per-shard wants 0..4096\n");
                return usage(argv[0]);
            }
        } else if (arg == "--queries") {
            if (i + 1 >= argc) {
                return usage(argv[0]);
            }
            queries = std::atoll(argv[++i]);
            if (queries <= 0) {
                return usage(argv[0]);
            }
        } else if (arg == "--seed") {
            if (i + 1 >= argc) {
                return usage(argv[0]);
            }
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--listen") {
            if (i + 1 >= argc ||
                !parse_listen(argv[i + 1], &listen_host, &listen_port)) {
                std::fprintf(stderr, "bad --listen spec (want host:port)\n");
                return usage(argv[0]);
            }
            ++i;
            listen = true;
        } else if (arg == "--port-file") {
            if (i + 1 >= argc) {
                return usage(argv[0]);
            }
            port_file = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0]);
        } else if (manifest.empty()) {
            manifest = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (manifest.empty() && direct.empty()) {
        return usage(argv[0]);
    }

    // Listen mode shuts down on SIGINT/SIGTERM via sigwait. The mask
    // must be in place BEFORE any thread exists (the engine spawns its
    // worker pool at construction; threads inherit the mask) or the
    // kernel may deliver the signal to a worker with the default
    // disposition and kill the process instead.
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGINT);
    sigaddset(&mask, SIGTERM);
    if (listen) {
        pthread_sigmask(SIG_BLOCK, &mask, nullptr);
    }

    runtime::ServingEngineConfig engine_config;
    engine_config.shards = static_cast<unsigned>(shards);
    engine_config.threads_per_shard =
        static_cast<unsigned>(threads_per_shard);
    runtime::ServingEngine engine(engine_config);
    try {
        if (!manifest.empty()) {
            std::printf("loading manifest %s\n", manifest.c_str());
            engine.register_endpoints_from_manifest(manifest);
        }
        for (const auto& [name, path] : direct) {
            std::printf("loading bundle %s as endpoint '%s'\n",
                        path.c_str(), name.c_str());
            engine.register_endpoint_from_bundle(name, path);
        }
    } catch (const runtime::ServingError& e) {
        std::fprintf(stderr, "cold-start failed: %s\n", e.what());
        return 1;
    }

    const std::vector<std::string> names = engine.endpoint_names();
    std::printf("\n%-12s %-7s %6s %5s %-14s %-14s %-5s %-7s\n", "endpoint",
                "policy", "layers", "cut", "input", "activation", "wire",
                "shard");
    for (const std::string& name : names) {
        const deploy::Bundle* bundle = engine.bundle(name);
        // Every endpoint of this tool is bundle-backed.
        std::printf("%-12s %-7s %6lld %5lld %-14s %-14s %-5s %-7s\n",
                    name.c_str(), engine.policy(name).name().c_str(),
                    static_cast<long long>(bundle->network().size()),
                    static_cast<long long>(bundle->cut()),
                    bundle->input_shape().to_string().c_str(),
                    bundle->activation_shape().to_string().c_str(),
                    to_string(engine.wire_dtype(name)),
                    engine.shard_of(name).c_str());
    }
    const deploy::WeightRegistryStats registry =
        engine.weight_registry_stats();
    if (registry.weights_dedupe_bytes > 0) {
        std::printf("weight registry: %lld networks interned, %lld "
                    "unique, %lld bytes deduplicated\n",
                    static_cast<long long>(registry.interned_networks),
                    static_cast<long long>(registry.unique_weight_sets),
                    static_cast<long long>(registry.weights_dedupe_bytes));
    }
    if (list_only) {
        return 0;
    }

    if (listen) {
        try {
            net::ServerConfig server_config;
            server_config.host = listen_host;
            server_config.port = listen_port;
            net::Server server(engine, server_config);
            std::printf("\nlistening on %s:%u (SHRQ/SHRP v%u)\n",
                        listen_host.c_str(), server.port(),
                        net::kProtocolVersion);
            if (!port_file.empty()) {
                std::FILE* f = std::fopen(port_file.c_str(), "w");
                if (f == nullptr) {
                    std::fprintf(stderr, "cannot write port file %s\n",
                                 port_file.c_str());
                    return 1;
                }
                std::fprintf(f, "%u\n", server.port());
                std::fclose(f);
            }
            std::fflush(stdout);

            int sig = 0;
            sigwait(&mask, &sig);
            std::printf("signal %d: shutting down\n", sig);
            server.stop();
            const net::ServerNetStats net_stats = server.stats();
            const runtime::ServerStats stats = engine.stats();
            std::printf("served %lld frames over %lld connections "
                        "(%lld protocol errors), %lld requests in %lld "
                        "batches\n",
                        static_cast<long long>(net_stats.frames_served),
                        static_cast<long long>(
                            net_stats.connections_accepted),
                        static_cast<long long>(net_stats.protocol_errors),
                        static_cast<long long>(stats.requests),
                        static_cast<long long>(stats.batches));
        } catch (const runtime::ServingError& e) {
            std::fprintf(stderr, "listen failed: %s\n", e.what());
            return 1;
        }
        return 0;
    }

    // Self-test: run the edge half locally on random inputs, serve the
    // activations through the engine (which applies the bundled
    // policy), and report per-endpoint stats.
    std::printf("\nself-test: %lld queries per endpoint\n",
                static_cast<long long>(queries));
    Rng rng(seed);
    for (const std::string& name : names) {
        const deploy::Bundle* bundle = engine.bundle(name);
        nn::ExecutionContext edge_ctx;
        edge_ctx.set_retain_activations(false);
        double logit_norm = 0.0;
        try {
            for (std::int64_t q = 0; q < queries; ++q) {
                const Tensor x = Tensor::uniform(
                    bundle->batched_input_shape(), rng);
                const Tensor activation = engine.model(name).edge_forward(
                    x, edge_ctx, nn::Mode::kEval);
                const Tensor logits =
                    engine
                        .submit(name,
                                activation.reshaped(
                                    bundle->activation_shape()),
                                static_cast<std::uint64_t>(q))
                        .get();
                logit_norm += logits.norm();
            }
        } catch (const runtime::ServingError& e) {
            std::fprintf(stderr, "endpoint '%s' failed: %s\n",
                         name.c_str(), e.what());
            return 1;
        }
        const runtime::ServerStats stats = engine.stats(name);
        std::printf("endpoint %-12s ok: %lld requests in %lld batches, "
                    "%.3f ms mean batch exec, mean |logits| %.4f\n",
                    name.c_str(), static_cast<long long>(stats.requests),
                    static_cast<long long>(stats.batches),
                    stats.mean_batch_latency_ms(),
                    logit_norm / static_cast<double>(queries));
    }
    std::printf("cold-start serving self-test passed (%zu endpoints)\n",
                names.size());
    return 0;
}
