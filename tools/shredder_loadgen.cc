/**
 * @file
 * `shredder_loadgen` — open-loop TCP load generator for a running
 * `shredder_serve --listen` front door.
 *
 * The generator plays the edge-device role: it loads the same bundle
 * the server cold-started (for the activation shape at the cut — the
 * wire carries activations, not inputs), connects over the SHRQ/SHRP
 * protocol, and fires Poisson arrivals at each target rate whether or
 * not earlier requests have finished (open loop: a saturated server
 * shows up as tail latency, not reduced offered load). Latency is
 * measured from each request's *scheduled* arrival to its response
 * frame, so submission backpressure cannot hide queueing delay.
 *
 *   shredder_serve deploy/manifest.txt --listen 127.0.0.1:0 \
 *       --port-file /tmp/port &
 *   shredder_loadgen --endpoint lenet --bundle deploy/lenet.shb \
 *       --host 127.0.0.1 --port $(cat /tmp/port) \
 *       --qps 500,2000 --duration 2 --json latency.json
 *
 * Exit status: 0 on success (JSON written), 1 on a connection/serving
 * error, 2 on a usage error.
 */
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace shredder;
using Clock = std::chrono::steady_clock;

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --endpoint <name> --bundle <path> --port <port>\n"
        "          [--host 127.0.0.1] [--qps 500,2000,8000]\n"
        "          [--duration seconds] [--json out.json] [--seed N]\n"
        "          [--wire-dtype fp32|int8|int16]\n"
        "\n"
        "Open-loop Poisson load against a shredder_serve --listen\n"
        "front door. The bundle supplies the activation shape the\n"
        "endpoint expects (and the default wire dtype, overridable\n"
        "with --wire-dtype); latency percentiles per target rate go\n"
        "to the JSON file (schema shredder-loadgen-v2).\n",
        argv0);
    return 2;
}

struct SweepPoint
{
    double target_qps = 0.0;
    std::int64_t offered = 0;
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    double run_seconds = 0.0;
    bench::LatencyHistogram latency;
};

/**
 * One open-loop run at `qps`: a fresh connection, scheduled sends,
 * and a receiver thread stamping completions (the server answers in
 * FIFO order per connection).
 */
SweepPoint
run_point(const std::string& host, std::uint16_t port,
          const std::string& endpoint, const std::vector<Tensor>& pool,
          WireDtype wire_dtype, double qps, double duration_s,
          std::uint64_t seed)
{
    SweepPoint point;
    point.target_qps = qps;
    point.offered = static_cast<std::int64_t>(qps * duration_s);

    Rng rng(seed);  // same engine bits as before: Rng wraps mt19937_64
    std::exponential_distribution<double> gap(qps / 1e3);  // per ms
    auto& gen = rng.engine();

    net::Client client(host, port);
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Clock::time_point> in_flight;
    bool send_done = false;

    const auto t0 = Clock::now();
    std::thread receiver([&] {
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock,
                        [&] { return !in_flight.empty() || send_done; });
                if (in_flight.empty()) {
                    return;
                }
            }
            net::Response response;
            try {
                response = client.recv();
            } catch (const runtime::ServingError&) {
                std::lock_guard<std::mutex> lock(mutex);
                point.failed +=
                    static_cast<std::int64_t>(in_flight.size());
                in_flight.clear();
                return;
            }
            const auto done = Clock::now();
            std::lock_guard<std::mutex> lock(mutex);
            const auto scheduled = in_flight.front();
            in_flight.pop_front();
            if (response.status == net::WireStatus::kOk) {
                point.latency.record(
                    std::chrono::duration<double, std::milli>(done -
                                                              scheduled)
                        .count());
                ++point.completed;
            } else {
                ++point.failed;
            }
        }
    });

    double at_ms = 0.0;
    for (std::int64_t i = 0; i < point.offered; ++i) {
        at_ms += gap(gen);
        const auto scheduled =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(at_ms));
        std::this_thread::sleep_until(scheduled);
        {
            std::lock_guard<std::mutex> lock(mutex);
            in_flight.push_back(scheduled);
        }
        client.send(endpoint,
                    pool[static_cast<std::size_t>(i) % pool.size()],
                    static_cast<std::uint64_t>(i), wire_dtype);
        cv.notify_one();
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        send_done = true;
    }
    cv.notify_all();
    receiver.join();
    client.close();
    point.run_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return point;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string endpoint;
    std::string bundle_path;
    std::string host = "127.0.0.1";
    std::string json_path = "loadgen.json";
    std::string qps_spec = "500,2000,8000";
    long port = 0;
    double duration_s = 2.0;
    std::uint64_t seed = 0xA11CE;
    std::string wire_dtype_spec;  // empty = the bundle's hint

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--endpoint" && has_value) {
            endpoint = argv[++i];
        } else if (arg == "--bundle" && has_value) {
            bundle_path = argv[++i];
        } else if (arg == "--host" && has_value) {
            host = argv[++i];
        } else if (arg == "--port" && has_value) {
            port = std::atol(argv[++i]);
        } else if (arg == "--qps" && has_value) {
            qps_spec = argv[++i];
        } else if (arg == "--duration" && has_value) {
            duration_s = std::atof(argv[++i]);
        } else if (arg == "--json" && has_value) {
            json_path = argv[++i];
        } else if (arg == "--seed" && has_value) {
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--wire-dtype" && has_value) {
            wire_dtype_spec = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "bad argument '%s'\n", arg.c_str());
            return usage(argv[0]);
        }
    }
    if (endpoint.empty() || bundle_path.empty() || port <= 0 ||
        port > 65535 || duration_s <= 0.0) {
        return usage(argv[0]);
    }

    std::vector<double> qps_points;
    {
        std::string token;
        for (const char* p = qps_spec.c_str();; ++p) {
            if (*p == ',' || *p == '\0') {
                if (!token.empty()) {
                    const double qps = std::atof(token.c_str());
                    if (qps <= 0.0) {
                        std::fprintf(stderr, "bad qps '%s'\n",
                                     token.c_str());
                        return usage(argv[0]);
                    }
                    qps_points.push_back(qps);
                    token.clear();
                }
                if (*p == '\0') {
                    break;
                }
            } else {
                token += *p;
            }
        }
    }
    if (qps_points.empty()) {
        return usage(argv[0]);
    }

    // The edge role: learn the activation shape at the cut from the
    // same artifact the server cold-started, then ship random
    // activations of that shape (load generation does not need real
    // inputs — the server-side work is shape-driven).
    Shape activation_shape;
    WireDtype wire_dtype = WireDtype::kF32;
    try {
        const deploy::Bundle bundle = deploy::load_bundle(bundle_path);
        activation_shape = bundle.activation_shape();
        wire_dtype = bundle.wire_dtype();
    } catch (const runtime::ServingError& e) {
        std::fprintf(stderr, "cannot load bundle %s: %s\n",
                     bundle_path.c_str(), e.what());
        return 1;
    }
    if (!wire_dtype_spec.empty() &&
        !parse_wire_dtype(wire_dtype_spec, &wire_dtype)) {
        std::fprintf(stderr, "bad wire dtype '%s'\n",
                     wire_dtype_spec.c_str());
        return usage(argv[0]);
    }
    Rng rng(seed);
    std::vector<Tensor> pool;
    for (int i = 0; i < 64; ++i) {
        pool.push_back(Tensor::normal(activation_shape, rng));
    }

    // The exact frame size every request of this run puts on the wire
    // (envelope + ids + endpoint + tensor): measured from a real
    // encode, not estimated.
    net::Request probe;
    probe.request_id = 0;
    probe.endpoint = endpoint;
    if (wire_dtype == WireDtype::kF32) {
        probe.activation = pool.front();
    } else {
        probe.quantized = quantize(pool.front(), wire_dtype);
        probe.is_quantized = true;
    }
    const auto bytes_per_request =
        static_cast<std::int64_t>(net::encode_request(probe).size());

    std::printf("loadgen: endpoint '%s', activation %s, wire %s "
                "(%lld B/request), %s:%ld, %.1fs per point\n",
                endpoint.c_str(), activation_shape.to_string().c_str(),
                to_string(wire_dtype),
                static_cast<long long>(bytes_per_request), host.c_str(),
                port, duration_s);
    std::printf("%10s %10s %10s %9s %9s %9s %9s\n", "target_qps",
                "achieved", "completed", "p50 ms", "p95 ms", "p99 ms",
                "max ms");

    bench::JsonWriter json;
    json.begin_object();
    json.key("schema");
    json.value("shredder-loadgen-v2");
    json.key("generated");
    json.value(bench::now_iso8601());
    json.key("endpoint");
    json.value(endpoint);
    json.key("wire_dtype");
    json.value(to_string(wire_dtype));
    json.key("bytes_per_request");
    json.value(bytes_per_request);
    json.key("duration_s");
    json.value(duration_s);
    json.key("points");
    json.begin_array();

    for (std::size_t qi = 0; qi < qps_points.size(); ++qi) {
        SweepPoint point;
        try {
            point = run_point(host, static_cast<std::uint16_t>(port),
                              endpoint, pool, wire_dtype, qps_points[qi],
                              duration_s, seed + qi);
        } catch (const runtime::ServingError& e) {
            std::fprintf(stderr, "sweep at %.0f qps failed: %s\n",
                         qps_points[qi], e.what());
            return 1;
        }
        const double achieved = static_cast<double>(point.completed) /
                                std::max(point.run_seconds, 1e-9);
        std::printf("%10.0f %10.0f %10lld %9.3f %9.3f %9.3f %9.3f\n",
                    point.target_qps, achieved,
                    static_cast<long long>(point.completed),
                    point.latency.percentile_ms(0.50),
                    point.latency.percentile_ms(0.95),
                    point.latency.percentile_ms(0.99),
                    point.latency.max_ms());
        std::fflush(stdout);

        json.begin_object();
        json.key("target_qps");
        json.value(point.target_qps);
        json.key("offered");
        json.value(point.offered);
        json.key("completed");
        json.value(point.completed);
        json.key("failed");
        json.value(point.failed);
        json.key("achieved_qps");
        json.value(achieved);
        json.key("p50_ms");
        json.value(point.latency.percentile_ms(0.50));
        json.key("p95_ms");
        json.value(point.latency.percentile_ms(0.95));
        json.key("p99_ms");
        json.value(point.latency.percentile_ms(0.99));
        json.key("mean_ms");
        json.value(point.latency.mean_ms());
        json.key("max_ms");
        json.value(point.latency.max_ms());
        json.key("latency_log2_buckets_ms");
        json.begin_array();
        for (const std::int64_t b : point.latency.log2_buckets(16)) {
            json.value(b);
        }
        json.end_array();
        json.end_object();
    }
    json.end_array();
    json.end_object();

    if (!bench::JsonValidator::valid(json.str())) {
        std::fprintf(stderr, "internal error: emitted invalid JSON\n");
        return 1;
    }
    if (!json.write_file(json_path)) {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}
