/**
 * @file
 * `shredder_lint` — CLI for the repo-specific trust-boundary lint
 * (src/lint/lint.h).
 *
 * Walks the given paths (directories recurse; only `.h`, `.cc`,
 * `.cpp` files are linted), runs every rule, and prints findings as
 * `file:line: [rule] message`. The exit status makes it a CI gate:
 *
 *   shredder_lint --root /path/to/repo src tools tests bench examples
 *   shredder_lint --json lint.json src
 *   shredder_lint --list-rules
 *
 * Exit status: 0 when the tree is clean, 1 when any rule fired, 2 on
 * a usage error. `--json` writes the machine-readable summary
 * (schema `shredder-lint-v1`) whether or not findings exist, so CI
 * can upload it as an artifact on every run.
 */
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace {

namespace fs = std::filesystem;

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] [path...]\n"
        "\n"
        "Run the Shredder trust-boundary lint over source files.\n"
        "Paths default to: src tools tests bench examples\n"
        "\n"
        "options:\n"
        "  --root DIR    resolve paths against DIR and report findings\n"
        "                with DIR-relative files (default: cwd)\n"
        "  --json FILE   also write the machine-readable summary\n"
        "  --list-rules  print the rule catalog and exit\n",
        argv0);
    return 2;
}

/** True for the extensions the lint understands. */
bool
lintable(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

/** Forward-slashed path relative to `root` (rule scoping keys on it). */
std::string
relative_key(const fs::path& p, const fs::path& root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    std::string key = (ec || rel.empty()) ? p.string() : rel.string();
    for (char& c : key) {
        if (c == '\\') {
            c = '/';
        }
    }
    return key;
}

bool
read_file(const fs::path& p, std::string* out)
{
    std::ifstream is(p, std::ios::binary);
    if (!is) {
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    *out = ss.str();
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    fs::path root = fs::current_path();
    std::string json_path;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        if (arg == "--list-rules") {
            for (const auto& rule : shredder::lint::rule_catalog()) {
                std::printf("%-22s %s\n", rule.name, rule.summary);
            }
            return 0;
        }
        if (arg == "--root") {
            if (++i >= argc) {
                return usage(argv[0]);
            }
            root = argv[i];
        } else if (arg == "--json") {
            if (++i >= argc) {
                return usage(argv[0]);
            }
            json_path = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        paths = {"src", "tools", "tests", "bench", "examples"};
    }

    // Collect the file set first so the scan order (and therefore the
    // report and JSON) is deterministic.
    std::vector<fs::path> files;
    for (const std::string& p : paths) {
        const fs::path abs = root / p;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            for (fs::recursive_directory_iterator it(abs, ec), end;
                 !ec && it != end; it.increment(ec)) {
                if (it->is_regular_file() && lintable(it->path())) {
                    files.push_back(it->path());
                }
            }
        } else if (fs::is_regular_file(abs, ec)) {
            files.push_back(abs);
        } else {
            std::fprintf(stderr, "shredder_lint: no such path: %s\n",
                         abs.string().c_str());
            return 2;
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<shredder::lint::Finding> findings;
    std::size_t scanned = 0;
    for (const fs::path& file : files) {
        std::string content;
        if (!read_file(file, &content)) {
            std::fprintf(stderr, "shredder_lint: cannot read: %s\n",
                         file.string().c_str());
            return 2;
        }
        ++scanned;
        const std::string key = relative_key(file, root);
        auto file_findings = shredder::lint::lint_source(key, content);
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
    }

    for (const auto& f : findings) {
        std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    }
    std::printf("shredder_lint: %zu file%s scanned, %zu finding%s\n",
                scanned, scanned == 1 ? "" : "s", findings.size(),
                findings.size() == 1 ? "" : "s");

    if (!json_path.empty()) {
        std::ofstream os(json_path, std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "shredder_lint: cannot write: %s\n",
                         json_path.c_str());
            return 2;
        }
        os << shredder::lint::findings_to_json(findings, scanned);
    }

    return findings.empty() ? 0 : 1;
}
