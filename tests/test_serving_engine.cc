/**
 * @file
 * Tests for the multi-endpoint `ServingEngine`: several models under
 * several noise policies on one shared worker pool, typed
 * `ServingError` codes, per-endpoint and aggregate stats, and the
 * policy-equivalence guarantees (engine ↔ deprecated shim ↔ offline
 * replay recipe).
 */
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/models/zoo.h"
#include "src/runtime/inference_server.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_engine.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::EndpointConfig;
using runtime::InferenceServer;
using runtime::InferenceServerConfig;
using runtime::NoNoisePolicy;
using runtime::ReplayPolicy;
using runtime::SamplePolicy;
using runtime::ServingEngine;
using runtime::ServingEngineConfig;
using runtime::ServingError;
using runtime::ServingErrorCode;
using runtime::noise_seed;

/** Two independently initialized LeNets cut at the last conv point. */
struct Fixture
{
    explicit Fixture(std::uint64_t seed = 23)
        : rng(seed), net_a(models::make_lenet(rng)),
          net_b(models::make_lenet(rng)),
          cut(split::conv_cut_points(*net_a).back()),
          model_a(*net_a, cut), model_b(*net_b, cut),
          act_shape(model_a.activation_shape(Shape({1, 28, 28})))
    {
    }

    Shape
    per_sample() const
    {
        return Shape({act_shape[1], act_shape[2], act_shape[3]});
    }

    Tensor
    sample_activation()
    {
        return Tensor::normal(per_sample(), rng);
    }

    core::NoiseCollection
    collection(int n)
    {
        core::NoiseCollection c;
        for (int i = 0; i < n; ++i) {
            core::NoiseSample s;
            s.noise = Tensor::normal(per_sample(), rng);
            c.add(std::move(s));
        }
        return c;
    }

    Tensor
    direct_forward(split::SplitModel& model, const Tensor& a,
                   nn::ExecutionContext& ctx)
    {
        return model.cloud_forward(a.reshaped(act_shape), ctx,
                                   nn::Mode::kEval);
    }

    Rng rng;
    std::unique_ptr<nn::Sequential> net_a;
    std::unique_ptr<nn::Sequential> net_b;
    std::int64_t cut;
    split::SplitModel model_a;
    split::SplitModel model_b;
    Shape act_shape;  ///< Batched ([1, C, H, W]).
};

/** Expect `future` to fail with a specific `ServingError` code. */
void
expect_code(std::future<Tensor>& future, ServingErrorCode expected)
{
    try {
        future.get();
        ADD_FAILURE() << "expected ServingError "
                      << runtime::to_string(expected);
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), expected) << e.what();
    } catch (const std::exception& e) {
        ADD_FAILURE() << "expected ServingError, got " << e.what();
    }
}

// ---------------------------------------------------------------------
// The acceptance path: many models × many policies, one engine
// ---------------------------------------------------------------------

TEST(ServingEngine, TwoModelsTwoPoliciesServedConcurrently)
{
    // One engine hosts model A under replay and model B under
    // distribution sampling, with concurrent client threads. Every
    // result must be BIT-EXACT against the offline recipe for its
    // endpoint's policy (max_batch 1 keeps kernel paths identical to
    // the serial reference).
    Fixture fx;
    const core::NoiseCollection coll = fx.collection(4);
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(coll);
    const std::uint64_t replay_seed = 0x5117ULL;
    const std::uint64_t sample_seed = 0x5118ULL;

    ServingEngineConfig ec;
    ec.num_workers = 2;
    ServingEngine engine(ec);
    EndpointConfig ep;
    ep.max_batch = 1;
    ep.batch_timeout_ms = 0.0;
    ep.max_concurrent_batches = 2;
    engine.register_endpoint(
        "a-replay", fx.model_a,
        std::make_shared<ReplayPolicy>(coll, replay_seed), ep);
    engine.register_endpoint(
        "b-sample", fx.model_b,
        std::make_shared<SamplePolicy>(dist, sample_seed), ep);
    EXPECT_TRUE(engine.has_endpoint("a-replay"));
    EXPECT_TRUE(engine.has_endpoint("b-sample"));
    EXPECT_EQ(engine.endpoint_names().size(), 2u);
    EXPECT_EQ(engine.policy("a-replay").name(), "replay");
    EXPECT_EQ(engine.policy("b-sample").name(), "sample");

    constexpr int kPerEndpoint = 30;
    std::vector<Tensor> acts;
    for (int i = 0; i < kPerEndpoint; ++i) {
        acts.push_back(fx.sample_activation());
    }

    std::vector<std::future<Tensor>> fa(kPerEndpoint), fb(kPerEndpoint);
    std::thread client_a([&] {
        for (int i = 0; i < kPerEndpoint; ++i) {
            fa[static_cast<std::size_t>(i)] = engine.submit(
                "a-replay", acts[static_cast<std::size_t>(i)],
                static_cast<std::uint64_t>(i));
        }
    });
    std::thread client_b([&] {
        for (int i = 0; i < kPerEndpoint; ++i) {
            fb[static_cast<std::size_t>(i)] = engine.submit(
                "b-sample", acts[static_cast<std::size_t>(i)],
                static_cast<std::uint64_t>(i));
        }
    });
    client_a.join();
    client_b.join();

    nn::ExecutionContext ctx;
    for (int i = 0; i < kPerEndpoint; ++i) {
        const auto id = static_cast<std::uint64_t>(i);
        const Tensor& a = acts[static_cast<std::size_t>(i)];

        const Tensor got_a = fa[static_cast<std::size_t>(i)].get();
        Rng replay_rng(noise_seed(replay_seed, id));
        const Tensor want_a = fx.direct_forward(
            fx.model_a, ops::add(a, coll.draw(replay_rng).noise), ctx);
        testing::expect_tensors_near(
            got_a, want_a.reshaped(got_a.shape()), 0.0,
            "endpoint a-replay vs offline replay");

        const Tensor got_b = fb[static_cast<std::size_t>(i)].get();
        Rng sample_rng(noise_seed(sample_seed, id));
        const Tensor want_b = fx.direct_forward(
            fx.model_b, ops::add(a, dist.sample(sample_rng)), ctx);
        testing::expect_tensors_near(
            got_b, want_b.reshaped(got_b.shape()), 0.0,
            "endpoint b-sample vs offline sample");
    }

    // Per-endpoint and aggregate accounting line up.
    EXPECT_EQ(engine.stats("a-replay").requests, kPerEndpoint);
    EXPECT_EQ(engine.stats("b-sample").requests, kPerEndpoint);
    EXPECT_EQ(engine.stats().requests, 2 * kPerEndpoint);
    EXPECT_GT(engine.stats().requests_per_sec(), 0.0);
}

TEST(ServingEngine, SameModelUnderTwoPoliciesSharesWeights)
{
    // The replay-vs-sample A/B on ONE SplitModel: stateless layers
    // make two endpoints on the same weights safe by construction.
    Fixture fx;
    const core::NoiseCollection coll = fx.collection(2);
    ServingEngine engine;
    engine.register_endpoint("replay", fx.model_a,
                             std::make_shared<ReplayPolicy>(coll, 7));
    engine.register_endpoint(
        "clean", fx.model_a, std::make_shared<NoNoisePolicy>());

    nn::ExecutionContext ctx;
    for (int i = 0; i < 8; ++i) {
        const Tensor a = fx.sample_activation();
        const Tensor clean = engine.infer("clean", a);
        const Tensor direct = fx.direct_forward(fx.model_a, a, ctx);
        testing::expect_tensors_near(
            clean, direct.reshaped(clean.shape()), 1e-5,
            "clean endpoint vs direct");
        // Replay differs (noise is non-trivial).
        const Tensor noisy = engine.infer("replay", a);
        EXPECT_GT(ops::max_abs_diff(noisy, clean), 1e-4);
    }
}

// ---------------------------------------------------------------------
// Policy equivalence (the API-redesign safety net)
// ---------------------------------------------------------------------

TEST(ServingEngine, ReplayPolicyBitExactWithDeprecatedShim)
{
    // Three servings of the same requests must agree BIT-EXACTLY:
    //  1. the deprecated (collection, apply_noise) shim,
    //  2. an InferenceServer built on ReplayPolicy directly,
    //  3. a ServingEngine endpoint with the same policy,
    // and all three must equal the offline draw recipe.
    Fixture fx;
    const core::NoiseCollection coll = fx.collection(3);
    const std::uint64_t seed = 0xFEEDULL;
    constexpr int kRequests = 24;

    std::vector<Tensor> acts;
    for (int i = 0; i < kRequests; ++i) {
        acts.push_back(fx.sample_activation());
    }

    const auto collect = [&](auto&& submit_fn) {
        std::vector<std::future<Tensor>> futures;
        futures.reserve(acts.size());
        for (int i = 0; i < kRequests; ++i) {
            futures.push_back(
                submit_fn(acts[static_cast<std::size_t>(i)],
                          static_cast<std::uint64_t>(i)));
        }
        std::vector<Tensor> out;
        out.reserve(futures.size());
        for (auto& f : futures) {
            out.push_back(f.get());
        }
        return out;
    };

    std::vector<Tensor> shim_logits;
    {
        InferenceServerConfig cfg;
        cfg.max_batch = 1;
        cfg.batch_timeout_ms = 0.0;
        cfg.apply_noise = true;
        cfg.seed = seed;
        InferenceServer shim(fx.model_a, &coll, cfg);
        shim_logits = collect([&](const Tensor& a, std::uint64_t id) {
            return shim.submit(a, id);
        });
    }

    std::vector<Tensor> policy_logits;
    ReplayPolicy policy(coll, seed);
    {
        InferenceServerConfig cfg;
        cfg.max_batch = 1;
        cfg.batch_timeout_ms = 0.0;
        InferenceServer server(fx.model_a, policy, cfg);
        EXPECT_EQ(server.policy().name(), "replay");
        policy_logits = collect([&](const Tensor& a, std::uint64_t id) {
            return server.submit(a, id);
        });
    }

    std::vector<Tensor> engine_logits;
    {
        ServingEngine engine;
        EndpointConfig ep;
        ep.max_batch = 1;
        ep.batch_timeout_ms = 0.0;
        engine.register_endpoint("lenet", fx.model_a,
                                 std::make_shared<ReplayPolicy>(coll, seed),
                                 ep);
        engine_logits = collect([&](const Tensor& a, std::uint64_t id) {
            return engine.submit("lenet", a, id);
        });
    }

    nn::ExecutionContext ctx;
    for (int i = 0; i < kRequests; ++i) {
        const auto id = static_cast<std::uint64_t>(i);
        Rng draw_rng(noise_seed(seed, id));
        const Tensor offline = fx.direct_forward(
            fx.model_a,
            ops::add(acts[static_cast<std::size_t>(i)],
                     coll.draw(draw_rng).noise),
            ctx);
        const Tensor& shim_out = shim_logits[static_cast<std::size_t>(i)];
        testing::expect_tensors_near(
            shim_out, offline.reshaped(shim_out.shape()), 0.0,
            "shim vs offline replay");
        testing::expect_tensors_near(
            policy_logits[static_cast<std::size_t>(i)], shim_out, 0.0,
            "policy server vs shim");
        testing::expect_tensors_near(
            engine_logits[static_cast<std::size_t>(i)], shim_out, 0.0,
            "engine endpoint vs shim");
    }
}

TEST(ServingEngine, SamplePolicyIsDeterministicUnderFixedRequestIds)
{
    // The paper's true deployment mode, served end-to-end: fixed
    // request ids reproduce the exact noise across engine instances
    // (and match the meter's sampling semantics: the id-keyed draw
    // `dist.sample(Rng(noise_seed(seed, id)))`), while distinct ids
    // draw fresh noise.
    Fixture fx;
    const core::NoiseCollection coll = fx.collection(3);
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(coll);
    const std::uint64_t seed = 0xD15CULL;
    constexpr int kRequests = 16;

    std::vector<Tensor> acts;
    for (int i = 0; i < kRequests; ++i) {
        acts.push_back(fx.sample_activation());
    }

    const auto serve_all = [&] {
        ServingEngine engine;
        EndpointConfig ep;
        ep.max_batch = 1;
        ep.batch_timeout_ms = 0.0;
        engine.register_endpoint("s", fx.model_a,
                                 std::make_shared<SamplePolicy>(dist, seed),
                                 ep);
        std::vector<std::future<Tensor>> futures;
        for (int i = 0; i < kRequests; ++i) {
            futures.push_back(
                engine.submit("s", acts[static_cast<std::size_t>(i)],
                              static_cast<std::uint64_t>(i)));
        }
        std::vector<Tensor> out;
        for (auto& f : futures) {
            out.push_back(f.get());
        }
        return out;
    };

    const std::vector<Tensor> first = serve_all();
    const std::vector<Tensor> replayed = serve_all();

    nn::ExecutionContext ctx;
    for (int i = 0; i < kRequests; ++i) {
        testing::expect_tensors_near(
            first[static_cast<std::size_t>(i)],
            replayed[static_cast<std::size_t>(i)], 0.0,
            "sample endpoint replay determinism");
        // Offline recipe — the same construction the meter's
        // measure_distribution applies per query id.
        Rng draw_rng(
            noise_seed(seed, static_cast<std::uint64_t>(i)));
        const Tensor expected = fx.direct_forward(
            fx.model_a,
            ops::add(acts[static_cast<std::size_t>(i)],
                     dist.sample(draw_rng)),
            ctx);
        const Tensor& got = first[static_cast<std::size_t>(i)];
        testing::expect_tensors_near(
            got, expected.reshaped(got.shape()), 0.0,
            "sample endpoint vs offline draw");
    }

    // Same activation under different ids → different logits.
    ServingEngine engine;
    engine.register_endpoint("s", fx.model_a,
                             std::make_shared<SamplePolicy>(dist, seed));
    const Tensor a = acts[0];
    const Tensor id0 = engine.submit("s", a, 100).get();
    const Tensor id1 = engine.submit("s", a, 101).get();
    EXPECT_GT(ops::max_abs_diff(id0, id1), 1e-4);
}

// ---------------------------------------------------------------------
// Typed error codes
// ---------------------------------------------------------------------

TEST(ServingEngine, UnknownEndpointFailsTheFutureWithTypedCode)
{
    Fixture fx;
    ServingEngine engine;
    engine.register_endpoint("known", fx.model_a,
                             std::make_shared<NoNoisePolicy>());
    auto future = engine.submit("unknown", fx.sample_activation(), 0);
    expect_code(future, ServingErrorCode::kUnknownEndpoint);
    // Stats/policy lookups throw the same typed error directly.
    try {
        engine.stats("unknown");
        ADD_FAILURE() << "stats('unknown') did not throw";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kUnknownEndpoint);
    }
}

TEST(ServingEngine, NullPolicyRegistrationThrowsNoPolicy)
{
    Fixture fx;
    ServingEngine engine;
    try {
        engine.register_endpoint("bad", fx.model_a, nullptr);
        ADD_FAILURE() << "null-policy registration did not throw";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kNoPolicy);
    }
}

TEST(ServingEngine, DuplicateRegistrationThrowsTypedCode)
{
    Fixture fx;
    ServingEngine engine;
    engine.register_endpoint("ep", fx.model_a,
                             std::make_shared<NoNoisePolicy>());
    try {
        engine.register_endpoint("ep", fx.model_b,
                                 std::make_shared<NoNoisePolicy>());
        ADD_FAILURE() << "duplicate registration did not throw";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kDuplicateEndpoint);
    }
}

TEST(ServingEngine, InvalidShapeFailsOnlyThatFuture)
{
    Fixture fx;
    const core::NoiseCollection coll = fx.collection(1);
    ServingEngine engine;
    engine.register_endpoint("ep", fx.model_a,
                             std::make_shared<ReplayPolicy>(coll, 1));
    auto bad = engine.submit("ep", Tensor::zeros(Shape({3})), 0);
    expect_code(bad, ServingErrorCode::kInvalidShape);
    // The endpoint survives and keeps serving well-formed requests.
    const Tensor logits = engine.infer("ep", fx.sample_activation());
    EXPECT_EQ(logits.size(), 10);
}

TEST(ServingEngine, ShutdownRejectsSubmitsAndRegistrations)
{
    Fixture fx;
    ServingEngine engine;
    engine.register_endpoint("ep", fx.model_a,
                             std::make_shared<NoNoisePolicy>());
    EXPECT_TRUE(engine.running());
    engine.shutdown();
    EXPECT_FALSE(engine.running());
    engine.shutdown();  // idempotent

    auto future = engine.submit("ep", fx.sample_activation(), 0);
    expect_code(future, ServingErrorCode::kShutdown);
    try {
        engine.register_endpoint("late", fx.model_a,
                                 std::make_shared<NoNoisePolicy>());
        ADD_FAILURE() << "post-shutdown registration did not throw";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kShutdown);
    }
}

TEST(ServingEngine, ShutdownDrainsAllEndpoints)
{
    Fixture fx;
    ServingEngine engine;
    EndpointConfig ep;
    ep.max_batch = 4;
    ep.batch_timeout_ms = 50.0;  // requests still queued at shutdown
    engine.register_endpoint("a", fx.model_a,
                             std::make_shared<NoNoisePolicy>(), ep);
    engine.register_endpoint("b", fx.model_b,
                             std::make_shared<NoNoisePolicy>(), ep);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < 6; ++i) {
        futures.push_back(engine.submit("a", fx.sample_activation()));
        futures.push_back(engine.submit("b", fx.sample_activation()));
    }
    engine.shutdown();
    for (auto& f : futures) {
        EXPECT_NO_THROW({
            const Tensor logits = f.get();
            EXPECT_EQ(logits.size(), 10);
        });
    }
    EXPECT_EQ(engine.stats().requests, 12);
}

}  // namespace
}  // namespace shredder
