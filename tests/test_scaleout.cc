/**
 * @file
 * Scale-out determinism suite: a sharded `ServingEngine` hammered by
 * many client threads must produce BIT-exactly the results of a serial
 * `cloud_forward` over policy-applied activations, for every policy
 * kind. Also pins shard placement (round-robin, by index, by name),
 * `shard_info`/`shard_of` introspection, and single-shard legacy
 * equivalence.
 *
 * Labeled `concurrency` in CMake and run under TSan in CI: the
 * assertions are the determinism oracle, TSan is the data-race oracle.
 */
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/models/zoo.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_engine.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"
#include "src/tensor/quantize.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::ComposedPolicy;
using runtime::EndpointConfig;
using runtime::FixedNoisePolicy;
using runtime::NoisePolicy;
using runtime::NoNoisePolicy;
using runtime::QuantizePolicy;
using runtime::ReplayPolicy;
using runtime::SamplePolicy;
using runtime::ServingEngine;
using runtime::ServingEngineConfig;
using runtime::ServingError;
using runtime::ServingErrorCode;
using runtime::ShufflePolicy;

/** One LeNet cut at the last conv point (the standard cloud split). */
struct Fixture
{
    explicit Fixture(std::uint64_t seed = 41)
        : rng(seed), net(models::make_lenet(rng)),
          cut(split::conv_cut_points(*net).back()), model(*net, cut),
          act_shape(model.activation_shape(Shape({1, 28, 28})))
    {
    }

    Shape
    per_sample() const
    {
        return Shape({act_shape[1], act_shape[2], act_shape[3]});
    }

    Tensor
    sample_activation()
    {
        return Tensor::normal(per_sample(), rng);
    }

    core::NoiseCollection
    collection(int n)
    {
        core::NoiseCollection c;
        for (int i = 0; i < n; ++i) {
            core::NoiseSample s;
            s.noise = Tensor::normal(per_sample(), rng);
            c.add(std::move(s));
        }
        return c;
    }

    /** Serial reference: policy offline, then cloud_forward. */
    Tensor
    reference(const NoisePolicy& policy, const Tensor& a,
              std::uint64_t id, nn::ExecutionContext& ctx)
    {
        const Tensor noisy = policy.apply(a, id);
        return model.cloud_forward(noisy.reshaped(act_shape), ctx,
                                   nn::Mode::kEval);
    }

    Rng rng;
    std::unique_ptr<nn::Sequential> net;
    std::int64_t cut;
    split::SplitModel model;
    Shape act_shape;
};

// ---------------------------------------------------------------------
// The tentpole acceptance test: every policy kind, sharded engine,
// 16 client threads, bit-exact vs the serial recipe
// ---------------------------------------------------------------------

TEST(ScaleOut, ShardedEngineBitExactUnderSixteenClientThreads)
{
    Fixture fx;
    const core::NoiseCollection coll = fx.collection(4);
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(coll);
    const Tensor fixed = Tensor::normal(fx.per_sample(), fx.rng);

    // Every policy kind the runtime ships, one endpoint each.
    std::vector<std::pair<std::string, std::shared_ptr<NoisePolicy>>>
        endpoints;
    endpoints.emplace_back("p-none", std::make_shared<NoNoisePolicy>());
    endpoints.emplace_back(
        "p-replay", std::make_shared<ReplayPolicy>(coll, 0xA11CEULL));
    endpoints.emplace_back(
        "p-sample", std::make_shared<SamplePolicy>(dist, 0xB0BULL));
    endpoints.emplace_back("p-fixed",
                           std::make_shared<FixedNoisePolicy>(fixed));
    endpoints.emplace_back("p-shuffle",
                           std::make_shared<ShufflePolicy>(0x5EEDULL));
    endpoints.emplace_back(
        "p-shuffle-rank",
        std::make_shared<ShufflePolicy>(dist, 0x5EEEULL));
    endpoints.emplace_back(
        "p-quant", std::make_shared<QuantizePolicy>(WireDtype::kI8));
    {
        std::vector<std::shared_ptr<const NoisePolicy>> stages;
        stages.push_back(
            std::make_shared<ReplayPolicy>(coll, 0xC0DEULL));
        stages.push_back(std::make_shared<FixedNoisePolicy>(fixed));
        endpoints.emplace_back(
            "p-composed", std::make_shared<ComposedPolicy>(stages));
    }

    ServingEngineConfig ec;
    ec.shards = 4;
    ec.threads_per_shard = 1;
    ServingEngine engine(ec);
    EndpointConfig ep;
    ep.max_batch = 1;  // serial kernel path == batched kernel path
    ep.batch_timeout_ms = 0.0;
    ep.max_concurrent_batches = 2;
    for (const auto& [name, policy] : endpoints) {
        engine.register_endpoint(name, fx.model, policy, ep);
    }
    ASSERT_EQ(engine.endpoint_names().size(), endpoints.size());

    // Endpoints land round-robin across all four shards.
    {
        const auto info = engine.shard_info();
        ASSERT_EQ(info.size(), 4u);
        for (const auto& shard : info) {
            EXPECT_EQ(shard.threads, 1u);
            EXPECT_EQ(shard.endpoints.size(), 2u)
                << "8 endpoints round-robin onto 4 shards";
        }
    }

    constexpr int kPerEndpoint = 24;
    std::vector<Tensor> acts;
    for (int i = 0; i < kPerEndpoint; ++i) {
        acts.push_back(fx.sample_activation());
    }

    // 16 client threads: two per endpoint, interleaved ids. Stable
    // (endpoint, id) pairs are the determinism contract.
    const std::size_t n_endpoints = endpoints.size();
    std::vector<std::vector<std::future<Tensor>>> futures(n_endpoints);
    for (auto& f : futures) {
        f.resize(kPerEndpoint);
    }
    std::vector<std::thread> clients;
    for (std::size_t e = 0; e < n_endpoints; ++e) {
        for (int half = 0; half < 2; ++half) {
            clients.emplace_back([&, e, half] {
                for (int i = half; i < kPerEndpoint; i += 2) {
                    futures[e][static_cast<std::size_t>(i)] =
                        engine.submit(
                            endpoints[e].first,
                            acts[static_cast<std::size_t>(i)],
                            static_cast<std::uint64_t>(i));
                }
            });
        }
    }
    for (auto& t : clients) {
        t.join();
    }

    nn::ExecutionContext ctx;
    for (std::size_t e = 0; e < n_endpoints; ++e) {
        for (int i = 0; i < kPerEndpoint; ++i) {
            const Tensor got =
                futures[e][static_cast<std::size_t>(i)].get();
            const Tensor want = fx.reference(
                *endpoints[e].second,
                acts[static_cast<std::size_t>(i)],
                static_cast<std::uint64_t>(i), ctx);
            testing::expect_tensors_near(
                got, want.reshaped(got.shape()), 0.0,
                (endpoints[e].first + " id " + std::to_string(i))
                    .c_str());
        }
    }

    EXPECT_EQ(engine.stats().requests,
              static_cast<std::int64_t>(n_endpoints) * kPerEndpoint);
}

TEST(ScaleOut, RepeatedRunsAreBitIdentical)
{
    // The same workload served twice by two differently-sharded
    // engines (1×2 vs 4×1) must agree bit for bit: shard placement
    // must never leak into results.
    Fixture fx;
    const core::NoiseCollection coll = fx.collection(3);
    constexpr int kRequests = 16;
    std::vector<Tensor> acts;
    for (int i = 0; i < kRequests; ++i) {
        acts.push_back(fx.sample_activation());
    }

    const auto serve = [&](unsigned shards, unsigned per_shard) {
        ServingEngineConfig ec;
        ec.shards = shards;
        ec.threads_per_shard = per_shard;
        ServingEngine engine(ec);
        EndpointConfig ep;
        ep.max_batch = 1;
        ep.batch_timeout_ms = 0.0;
        engine.register_endpoint(
            "ep", fx.model,
            std::make_shared<ReplayPolicy>(coll, 99), ep);
        std::vector<std::future<Tensor>> futures;
        for (int i = 0; i < kRequests; ++i) {
            futures.push_back(
                engine.submit("ep", acts[static_cast<std::size_t>(i)],
                              static_cast<std::uint64_t>(i)));
        }
        std::vector<Tensor> out;
        for (auto& f : futures) {
            out.push_back(f.get());
        }
        return out;
    };

    const std::vector<Tensor> serial = serve(1, 2);
    const std::vector<Tensor> sharded = serve(4, 1);
    ASSERT_EQ(serial.size(), sharded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        testing::expect_tensors_near(
            sharded[i], serial[i], 0.0,
            ("1-shard vs 4-shard request " + std::to_string(i))
                .c_str());
    }
}

// ---------------------------------------------------------------------
// Shard placement and introspection
// ---------------------------------------------------------------------

TEST(ScaleOut, PlacementByNameByIndexAndRoundRobin)
{
    Fixture fx;
    ServingEngineConfig ec;
    ec.shards = 3;
    ec.threads_per_shard = 1;
    ServingEngine engine(ec);
    EndpointConfig ep;
    ep.max_batch = 1;
    ep.batch_timeout_ms = 0.0;

    // Explicit by name, explicit by index, then two round-robin.
    EndpointConfig by_name = ep;
    by_name.shard = "shard2";
    engine.register_endpoint("named", fx.model,
                             std::make_shared<NoNoisePolicy>(), by_name);
    EXPECT_EQ(engine.shard_of("named"), "shard2");

    EndpointConfig by_index = ep;
    by_index.shard = "1";
    engine.register_endpoint("indexed", fx.model,
                             std::make_shared<NoNoisePolicy>(),
                             by_index);
    EXPECT_EQ(engine.shard_of("indexed"), "shard1");

    // Round-robin ignores the explicitly-placed endpoints: the cursor
    // only advances on round-robin registrations.
    engine.register_endpoint("rr0", fx.model,
                             std::make_shared<NoNoisePolicy>(), ep);
    engine.register_endpoint("rr1", fx.model,
                             std::make_shared<NoNoisePolicy>(), ep);
    EXPECT_EQ(engine.shard_of("rr0"), "shard0");
    EXPECT_EQ(engine.shard_of("rr1"), "shard1");

    const auto info = engine.shard_info();
    ASSERT_EQ(info.size(), 3u);
    EXPECT_EQ(info[0].name, "shard0");
    ASSERT_EQ(info[1].endpoints.size(), 2u);
    EXPECT_EQ(info[1].endpoints[0], "indexed");
    EXPECT_EQ(info[1].endpoints[1], "rr1");
    ASSERT_EQ(info[2].endpoints.size(), 1u);
    EXPECT_EQ(info[2].endpoints[0], "named");

    // Every placed endpoint still actually serves.
    for (const char* name : {"named", "indexed", "rr0", "rr1"}) {
        const Tensor a = fx.sample_activation();
        EXPECT_NO_THROW(engine.infer(name, a)) << name;
    }
}

TEST(ScaleOut, UnknownShardIsTypedBadBundle)
{
    Fixture fx;
    ServingEngineConfig ec;
    ec.shards = 2;
    ServingEngine engine(ec);
    EndpointConfig ep;
    ep.shard = "shard9";
    try {
        engine.register_endpoint("bad", fx.model,
                                 std::make_shared<NoNoisePolicy>(), ep);
        ADD_FAILURE() << "expected kBadBundle for unknown shard";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kBadBundle) << e.what();
    }
    EXPECT_FALSE(engine.has_endpoint("bad"));

    // Out-of-range numeric placement is rejected the same way.
    ep.shard = "7";
    try {
        engine.register_endpoint("bad2", fx.model,
                                 std::make_shared<NoNoisePolicy>(), ep);
        ADD_FAILURE() << "expected kBadBundle for shard index 7 of 2";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kBadBundle) << e.what();
    }

    // A failed registration must not skew the round-robin cursor.
    EndpointConfig rr;
    rr.max_batch = 1;
    rr.batch_timeout_ms = 0.0;
    engine.register_endpoint("first", fx.model,
                             std::make_shared<NoNoisePolicy>(), rr);
    EXPECT_EQ(engine.shard_of("first"), "shard0");
}

TEST(ScaleOut, SingleShardLegacyEquivalence)
{
    // Default config (shards=1) behaves exactly like the pre-sharding
    // engine: one pool of num_workers threads, everything on shard0.
    Fixture fx;
    ServingEngineConfig ec;
    ec.num_workers = 2;
    ServingEngine engine(ec);
    engine.register_endpoint("ep", fx.model,
                             std::make_shared<NoNoisePolicy>());
    EXPECT_EQ(engine.shard_of("ep"), "shard0");
    const auto info = engine.shard_info();
    ASSERT_EQ(info.size(), 1u);
    EXPECT_EQ(info[0].threads, 2u);
    ASSERT_EQ(info[0].endpoints.size(), 1u);

    nn::ExecutionContext ctx;
    const Tensor a = fx.sample_activation();
    const Tensor got = engine.infer("ep", a);
    const Tensor want =
        fx.model.cloud_forward(a.reshaped(fx.act_shape), ctx,
                               nn::Mode::kEval);
    testing::expect_tensors_near(got, want.reshaped(got.shape()), 0.0,
                                 "single-shard vs direct");

    EXPECT_THROW(engine.shard_of("missing"), ServingError);
}

TEST(ScaleOut, DeregisterRemovesFromShardAndKeepsOthersServing)
{
    Fixture fx;
    ServingEngineConfig ec;
    ec.shards = 2;
    ec.threads_per_shard = 1;
    ServingEngine engine(ec);
    EndpointConfig ep;
    ep.max_batch = 1;
    ep.batch_timeout_ms = 0.0;
    engine.register_endpoint("keep", fx.model,
                             std::make_shared<NoNoisePolicy>(), ep);
    engine.register_endpoint("drop", fx.model,
                             std::make_shared<NoNoisePolicy>(), ep);
    ASSERT_EQ(engine.shard_of("drop"), "shard1");

    engine.deregister_endpoint("drop");
    EXPECT_FALSE(engine.has_endpoint("drop"));
    for (const auto& shard : engine.shard_info()) {
        for (const auto& name : shard.endpoints) {
            EXPECT_NE(name, "drop");
        }
    }
    EXPECT_THROW(engine.deregister_endpoint("drop"), ServingError);

    // The survivor still serves on its shard.
    const Tensor a = fx.sample_activation();
    EXPECT_NO_THROW(engine.infer("keep", a));

    // The freed slot is reusable.
    engine.register_endpoint("drop", fx.model,
                             std::make_shared<NoNoisePolicy>(), ep);
    EXPECT_TRUE(engine.has_endpoint("drop"));
}

}  // namespace
}  // namespace shredder
