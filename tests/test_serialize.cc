/** @file Unit tests for tensor serialization. */
#include <sstream>

#include <gtest/gtest.h>

#include "src/tensor/ops.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace {

TEST(Serialize, RoundTripRank1)
{
    Tensor t = Tensor::from_vector({1.5f, -2.5f, 3.25f});
    Tensor u = tensor_from_bytes(tensor_to_bytes(t));
    EXPECT_EQ(u.shape(), t.shape());
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(t, u), 0.0);
}

TEST(Serialize, RoundTripRank4)
{
    Rng rng(4);
    Tensor t = Tensor::normal(Shape({2, 3, 4, 5}), rng);
    Tensor u = tensor_from_bytes(tensor_to_bytes(t));
    EXPECT_EQ(u.shape(), t.shape());
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(t, u), 0.0);
}

TEST(Serialize, SizeMatchesPrediction)
{
    Rng rng(5);
    Tensor t = Tensor::normal(Shape({7, 9}), rng);
    const std::string bytes = tensor_to_bytes(t);
    EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), serialized_size(t));
    // 8-byte header + 2 dims × 8 + 63 floats × 4.
    EXPECT_EQ(serialized_size(t), 8 + 16 + 63 * 4);
}

TEST(Serialize, StreamCarriesMultipleTensors)
{
    Rng rng(6);
    Tensor a = Tensor::normal(Shape({3}), rng);
    Tensor b = Tensor::normal(Shape({2, 2}), rng);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_tensor(ss, a);
    write_tensor(ss, b);
    Tensor a2 = read_tensor(ss);
    Tensor b2 = read_tensor(ss);
    EXPECT_EQ(a2.shape(), a.shape());
    EXPECT_EQ(b2.shape(), b.shape());
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(b, b2), 0.0);
}

TEST(SerializeDeath, BadMagicIsFatal)
{
    std::string junk = "XXXXYYYYZZZZ";
    EXPECT_EXIT(tensor_from_bytes(junk), ::testing::ExitedWithCode(1),
                "magic");
}

TEST(SerializeDeath, TruncatedPayloadIsFatal)
{
    Tensor t = Tensor::from_vector({1, 2, 3, 4});
    std::string bytes = tensor_to_bytes(t);
    bytes.resize(bytes.size() - 5);
    EXPECT_EXIT(tensor_from_bytes(bytes), ::testing::ExitedWithCode(1),
                "truncated");
}

}  // namespace
}  // namespace shredder
