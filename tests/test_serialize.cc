/** @file Unit tests for tensor serialization. */
#include <sstream>

#include <gtest/gtest.h>

#include "src/tensor/ops.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace {

TEST(Serialize, RoundTripRank1)
{
    Tensor t = Tensor::from_vector({1.5f, -2.5f, 3.25f});
    Tensor u = tensor_from_bytes(tensor_to_bytes(t));
    EXPECT_EQ(u.shape(), t.shape());
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(t, u), 0.0);
}

TEST(Serialize, RoundTripRank4)
{
    Rng rng(4);
    Tensor t = Tensor::normal(Shape({2, 3, 4, 5}), rng);
    Tensor u = tensor_from_bytes(tensor_to_bytes(t));
    EXPECT_EQ(u.shape(), t.shape());
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(t, u), 0.0);
}

TEST(Serialize, SizeMatchesPrediction)
{
    Rng rng(5);
    Tensor t = Tensor::normal(Shape({7, 9}), rng);
    const std::string bytes = tensor_to_bytes(t);
    EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), serialized_size(t));
    // 8-byte header + 2 dims × 8 + 63 floats × 4.
    EXPECT_EQ(serialized_size(t), 8 + 16 + 63 * 4);
}

TEST(Serialize, StreamCarriesMultipleTensors)
{
    Rng rng(6);
    Tensor a = Tensor::normal(Shape({3}), rng);
    Tensor b = Tensor::normal(Shape({2, 2}), rng);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_tensor(ss, a);
    write_tensor(ss, b);
    Tensor a2 = read_tensor(ss);
    Tensor b2 = read_tensor(ss);
    EXPECT_EQ(a2.shape(), a.shape());
    EXPECT_EQ(b2.shape(), b.shape());
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(b, b2), 0.0);
}

TEST(SerializeChecked, RoundTripMatchesFatalReader)
{
    Rng rng(7);
    Tensor t = Tensor::normal(Shape({3, 5}), rng);
    std::istringstream is(tensor_to_bytes(t), std::ios::binary);
    Tensor u = read_tensor_checked(is);
    EXPECT_EQ(u.shape(), t.shape());
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(t, u), 0.0);
}

TEST(SerializeChecked, BadMagicThrowsInsteadOfExiting)
{
    std::istringstream is("XXXXYYYYZZZZ", std::ios::binary);
    EXPECT_THROW(read_tensor_checked(is), SerializeError);
}

TEST(SerializeChecked, TruncationThrowsInsteadOfExiting)
{
    Tensor t = Tensor::from_vector({1, 2, 3, 4});
    std::string bytes = tensor_to_bytes(t);
    for (std::size_t keep = 0; keep + 1 < bytes.size(); keep += 3) {
        std::istringstream is(bytes.substr(0, keep), std::ios::binary);
        EXPECT_THROW(read_tensor_checked(is), SerializeError) << keep;
    }
}

TEST(SerializeChecked, WirePrimitivesRoundTrip)
{
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    wire::write_u8(ss, 7);
    wire::write_u32(ss, 123456789u);
    wire::write_u64(ss, 0xDEADBEEFCAFEULL);
    wire::write_f32(ss, -2.5f);
    wire::write_f64(ss, 3.25);
    wire::write_string(ss, "shredder");
    wire::write_shape(ss, Shape({2, 3, 4}));
    EXPECT_EQ(wire::read_u8(ss), 7);
    EXPECT_EQ(wire::read_u32(ss), 123456789u);
    EXPECT_EQ(wire::read_u64(ss), 0xDEADBEEFCAFEULL);
    EXPECT_EQ(wire::read_f32(ss), -2.5f);
    EXPECT_EQ(wire::read_f64(ss), 3.25);
    EXPECT_EQ(wire::read_string(ss), "shredder");
    EXPECT_EQ(wire::read_shape(ss), Shape({2, 3, 4}));
}

TEST(SerializeChecked, ImplausibleElementCountThrowsTyped)
{
    // A crafted header may declare dims that pass the per-dim bound
    // but multiply to an absurd (or int64-overflowing) element count.
    // The typed contract must hold — no std::length_error/bad_alloc
    // escaping, no silent overflow to a tiny tensor.
    const auto craft = [](std::initializer_list<std::uint64_t> dims) {
        std::ostringstream oss(std::ios::binary);
        wire::write_u32(oss, 0x54524853u);  // 'SHRT'
        wire::write_u32(oss, static_cast<std::uint32_t>(dims.size()));
        for (const std::uint64_t d : dims) {
            wire::write_u64(oss, d);
        }
        return oss.str();
    };
    for (const std::string& bytes :
         {craft({0xFFFFFFFFull, 0xFFFFFFFFull}),
          craft({1ull << 31, 1ull << 31, 1ull << 31, 1ull << 31}),
          craft({1ull << 40})}) {
        std::istringstream is(bytes, std::ios::binary);
        EXPECT_THROW(read_tensor_checked(is), SerializeError);
    }
}

TEST(SerializeChecked, WireStringLengthGuard)
{
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    wire::write_string(ss, std::string(64, 'x'));
    EXPECT_THROW(wire::read_string(ss, /*max_len=*/16), SerializeError);
}

TEST(SerializeDeath, BadMagicIsFatal)
{
    std::string junk = "XXXXYYYYZZZZ";
    EXPECT_EXIT(tensor_from_bytes(junk), ::testing::ExitedWithCode(1),
                "magic");
}

TEST(SerializeDeath, TruncatedPayloadIsFatal)
{
    Tensor t = Tensor::from_vector({1, 2, 3, 4});
    std::string bytes = tensor_to_bytes(t);
    bytes.resize(bytes.size() - 5);
    EXPECT_EXIT(tensor_from_bytes(bytes), ::testing::ExitedWithCode(1),
                "truncated");
}

}  // namespace
}  // namespace shredder
