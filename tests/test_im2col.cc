/** @file Unit tests for im2col / col2im. */
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/im2col.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace {

TEST(Im2col, OutExtent)
{
    EXPECT_EQ(conv_out_extent(28, 5, 1, 2), 28);
    EXPECT_EQ(conv_out_extent(28, 5, 1, 0), 24);
    EXPECT_EQ(conv_out_extent(32, 2, 2, 0), 16);
    EXPECT_EQ(conv_out_extent(64, 5, 2, 2), 32);
    EXPECT_EQ(conv_out_extent(15, 3, 2, 0), 7);
}

TEST(Im2col, TinyKnownCase)
{
    // 1×2×2 image, 2×2 kernel, stride 1, no pad → single column.
    const std::vector<float> im{1, 2, 3, 4};
    std::vector<float> col(4, -1.0f);
    im2col(im.data(), 1, 2, 2, 2, 2, 1, 1, 0, 0, col.data());
    EXPECT_EQ(col, (std::vector<float>{1, 2, 3, 4}));
}

TEST(Im2col, PaddingProducesZeros)
{
    // 1×1×1 image, 3×3 kernel, pad 1 → 1 output; 8 of 9 entries zero.
    const std::vector<float> im{5.0f};
    std::vector<float> col(9, -1.0f);
    im2col(im.data(), 1, 1, 1, 3, 3, 1, 1, 1, 1, col.data());
    int nonzero = 0;
    for (float v : col) {
        if (v != 0.0f) {
            ++nonzero;
            EXPECT_EQ(v, 5.0f);
        }
    }
    EXPECT_EQ(nonzero, 1);
    EXPECT_EQ(col[4], 5.0f);  // kernel center hits the pixel
}

TEST(Im2col, ChannelsAreStackedInRowBlocks)
{
    // 2 channels of a 2×2 image, 1×1 kernel → col is 2×4.
    const std::vector<float> im{1, 2, 3, 4, 10, 20, 30, 40};
    std::vector<float> col(8, 0.0f);
    im2col(im.data(), 2, 2, 2, 1, 1, 1, 1, 0, 0, col.data());
    EXPECT_EQ(col, (std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40}));
}

TEST(Im2col, Col2imIsAdjoint)
{
    // Adjoint identity: ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ for random x, y.
    const std::int64_t C = 3, H = 7, W = 6, K = 3, S = 2, P = 1;
    const std::int64_t OH = conv_out_extent(H, K, S, P);
    const std::int64_t OW = conv_out_extent(W, K, S, P);
    const std::int64_t cols = C * K * K * OH * OW;

    Rng rng(123);
    std::vector<float> x(static_cast<std::size_t>(C * H * W));
    for (auto& v : x) {
        v = rng.normal();
    }
    std::vector<float> y(static_cast<std::size_t>(cols));
    for (auto& v : y) {
        v = rng.normal();
    }

    std::vector<float> fx(static_cast<std::size_t>(cols), 0.0f);
    im2col(x.data(), C, H, W, K, K, S, S, P, P, fx.data());
    std::vector<float> aty(static_cast<std::size_t>(C * H * W), 0.0f);
    col2im(y.data(), C, H, W, K, K, S, S, P, P, aty.data());

    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < fx.size(); ++i) {
        lhs += static_cast<double>(fx[i]) * y[i];
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
        rhs += static_cast<double>(x[i]) * aty[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-3);
}

TEST(Im2col, Col2imAccumulatesOverlaps)
{
    // 1×3 row, kernel 2, stride 1: middle pixel belongs to 2 windows.
    const std::vector<float> col{1, 1, 1, 1};  // k=2 rows × 2 outputs
    std::vector<float> im(3, 0.0f);
    col2im(col.data(), 1, 1, 3, 1, 2, 1, 1, 0, 0, im.data());
    EXPECT_EQ(im[0], 1.0f);
    EXPECT_EQ(im[1], 2.0f);
    EXPECT_EQ(im[2], 1.0f);
}

}  // namespace
}  // namespace shredder
