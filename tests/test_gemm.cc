/** @file Unit + property tests for the GEMM kernel. */
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/gemm.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace {

/** Slow reference GEMM for validation. */
void
reference_gemm(bool ta, bool tb, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const std::vector<float>& a,
               const std::vector<float>& b, float beta,
               std::vector<float>& c)
{
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t t = 0; t < k; ++t) {
                const float av = ta ? a[static_cast<std::size_t>(t * m + i)]
                                    : a[static_cast<std::size_t>(i * k + t)];
                const float bv = tb ? b[static_cast<std::size_t>(j * k + t)]
                                    : b[static_cast<std::size_t>(t * n + j)];
                acc += static_cast<double>(av) * bv;
            }
            auto& cv = c[static_cast<std::size_t>(i * n + j)];
            cv = alpha * static_cast<float>(acc) + beta * cv;
        }
    }
}

TEST(Gemm, Identity)
{
    // I * B = B
    const std::int64_t n = 4;
    std::vector<float> eye(n * n, 0.0f);
    for (std::int64_t i = 0; i < n; ++i) {
        eye[static_cast<std::size_t>(i * n + i)] = 1.0f;
    }
    Rng rng(1);
    std::vector<float> b(n * n);
    for (auto& v : b) {
        v = rng.normal();
    }
    std::vector<float> c(n * n, -1.0f);
    gemm(false, false, n, n, n, 1.0f, eye.data(), b.data(), 0.0f, c.data());
    for (std::size_t i = 0; i < b.size(); ++i) {
        EXPECT_FLOAT_EQ(c[i], b[i]);
    }
}

TEST(Gemm, BetaAccumulates)
{
    std::vector<float> a{1.0f};
    std::vector<float> b{2.0f};
    std::vector<float> c{10.0f};
    gemm(false, false, 1, 1, 1, 1.0f, a.data(), b.data(), 1.0f, c.data());
    EXPECT_FLOAT_EQ(c[0], 12.0f);
    gemm(false, false, 1, 1, 1, 1.0f, a.data(), b.data(), 0.5f, c.data());
    EXPECT_FLOAT_EQ(c[0], 8.0f);
}

TEST(Gemm, AlphaZeroLeavesBetaTimesC)
{
    std::vector<float> a{3.0f}, b{4.0f}, c{5.0f};
    gemm(false, false, 1, 1, 1, 0.0f, a.data(), b.data(), 2.0f, c.data());
    EXPECT_FLOAT_EQ(c[0], 10.0f);
}

using GemmParam = std::tuple<bool, bool, int, int, int>;

class GemmMatchesReference
    : public ::testing::TestWithParam<GemmParam>
{};

TEST_P(GemmMatchesReference, RandomMatrices)
{
    const auto [ta, tb, m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k) +
            (ta ? 1000 : 0) + (tb ? 2000 : 0));
    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) {
        v = rng.normal();
    }
    for (auto& v : b) {
        v = rng.normal();
    }
    std::vector<float> c(static_cast<std::size_t>(m * n));
    std::vector<float> c_ref = c;
    for (std::size_t i = 0; i < c.size(); ++i) {
        c[i] = c_ref[i] = rng.normal();
    }

    gemm(ta, tb, m, n, k, 0.7f, a.data(), b.data(), 0.3f, c.data());
    reference_gemm(ta, tb, m, n, k, 0.7f, a, b, 0.3f, c_ref);

    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i], c_ref[i], 1e-3f) << "at " << i;
    }
}

// Sizes chosen to straddle the packed kernel's tile boundaries: the
// MR=6 row tile (5..7), the NR=8/16 column tiles (15..17), the small-
// problem fallback threshold, and odd primes that never divide evenly.
INSTANTIATE_TEST_SUITE_P(
    AllVariants, GemmMatchesReference,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 3, 17, 64),
                       ::testing::Values(1, 5, 33),
                       ::testing::Values(1, 8, 129)));

INSTANTIATE_TEST_SUITE_P(
    TileBoundaries, GemmMatchesReference,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(5, 6, 7, 97),
                       ::testing::Values(15, 16, 17, 61),
                       ::testing::Values(31, 43)));

/**
 * Property check across alpha/beta edge cases (0, 1, negative,
 * fractional) for all transpose combos at a size that takes the
 * packed path.
 */
class GemmAlphaBeta
    : public ::testing::TestWithParam<std::tuple<bool, bool, float, float>>
{};

TEST_P(GemmAlphaBeta, MatchesReference)
{
    const auto [ta, tb, alpha, beta] = GetParam();
    const std::int64_t m = 23, n = 19, k = 37;
    Rng rng(77);
    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) {
        v = rng.normal();
    }
    for (auto& v : b) {
        v = rng.normal();
    }
    std::vector<float> c(static_cast<std::size_t>(m * n));
    for (auto& v : c) {
        v = rng.normal();
    }
    std::vector<float> c_ref = c;

    gemm(ta, tb, m, n, k, alpha, a.data(), b.data(), beta, c.data());
    reference_gemm(ta, tb, m, n, k, alpha, a, b, beta, c_ref);

    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i], c_ref[i], 1e-3f) << "at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeScales, GemmAlphaBeta,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(0.0f, 1.0f, -1.0f, 0.7f),
                       ::testing::Values(0.0f, 1.0f, -2.0f, 0.3f)));

TEST(Gemm, ZeroDimensionsAreNoOps)
{
    // m, n or k of zero must not touch memory it doesn't own; k == 0
    // (and alpha == 0) must still apply beta to C.
    std::vector<float> a(8, 1.0f), b(8, 1.0f);
    std::vector<float> c{1.0f, 2.0f, 3.0f, 4.0f};
    gemm(false, false, 0, 0, 0, 1.0f, a.data(), b.data(), 0.0f, c.data());
    EXPECT_FLOAT_EQ(c[0], 1.0f);  // m=n=0: C untouched

    gemm(false, false, 2, 2, 0, 1.0f, a.data(), b.data(), 0.5f, c.data());
    EXPECT_FLOAT_EQ(c[0], 0.5f);
    EXPECT_FLOAT_EQ(c[3], 2.0f);

    for (const bool ta : {false, true}) {
        for (const bool tb : {false, true}) {
            std::vector<float> c2{7.0f};
            gemm(ta, tb, 1, 1, 0, 2.0f, a.data(), b.data(), 0.0f,
                 c2.data());
            EXPECT_FLOAT_EQ(c2[0], 0.0f) << "ta=" << ta << " tb=" << tb;
        }
    }
}

TEST(Gemm, KcBlockBoundary)
{
    // k crossing the KC=256 k-block: accumulation across packed
    // k-blocks must agree with a single-pass reference.
    for (const std::int64_t k : {255, 256, 257, 300}) {
        const std::int64_t m = 13, n = 21;
        Rng rng(static_cast<std::uint64_t>(k));
        std::vector<float> a(static_cast<std::size_t>(m * k));
        std::vector<float> b(static_cast<std::size_t>(k * n));
        for (auto& v : a) {
            v = rng.uniform(-1.0f, 1.0f);
        }
        for (auto& v : b) {
            v = rng.uniform(-1.0f, 1.0f);
        }
        std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
        std::vector<float> c_ref = c;
        gemm(false, true, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
             c.data());
        reference_gemm(false, true, m, n, k, 1.0f, a, b, 0.0f, c_ref);
        for (std::size_t i = 0; i < c.size(); ++i) {
            ASSERT_NEAR(c[i], c_ref[i], 1e-3f) << "k=" << k << " at " << i;
        }
    }
}

TEST(Gemm, LargeRowCountTakesRowPanelPath)
{
    // m > MC=96 with m·n·k above the kParallelMinWork=2^20 threshold:
    // exercises the row-panel split, threaded wherever the global pool
    // has more than one worker.
    const std::int64_t m = 201, n = 128, k = 128;
    Rng rng(5);
    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) {
        v = rng.normal();
    }
    for (auto& v : b) {
        v = rng.normal();
    }
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    std::vector<float> c_ref = c;
    gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    reference_gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, c_ref);
    for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_NEAR(c[i], c_ref[i], 1e-3f) << "at " << i;
    }
}

TEST(Gemm, LargeBlockedKPath)
{
    // Exercise the K-blocking boundary (block = 256).
    const std::int64_t m = 3, n = 4, k = 600;
    Rng rng(9);
    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) {
        v = rng.uniform(-1.0f, 1.0f);
    }
    for (auto& v : b) {
        v = rng.uniform(-1.0f, 1.0f);
    }
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    std::vector<float> c_ref = c;
    gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    reference_gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, c_ref);
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i], c_ref[i], 1e-3f);
    }
}

// ---------------------------------------------------------------------
// gemm_rows_fused: the fused noise-add serving path. The contract is
// BIT-exactness against materialize-then-gemm (apply the add into a
// buffer, run gemm(false, true, ...), add the bias the way
// nn::Linear::forward does) — not tolerance-near, EXPECT_EQ on bits.
// ---------------------------------------------------------------------

/** The general path `gemm_rows_fused` must match bit for bit. */
void
fused_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::vector<const float*>& a_rows,
                const std::vector<const float*>& a_noise,
                const std::vector<float>& b, const float* bias,
                std::vector<float>& c)
{
    std::vector<float> fused(static_cast<std::size_t>(m * k));
    for (std::int64_t i = 0; i < m; ++i) {
        const float* arow = a_rows[static_cast<std::size_t>(i)];
        const float* nrow =
            a_noise.empty() ? nullptr
                            : a_noise[static_cast<std::size_t>(i)];
        for (std::int64_t p = 0; p < k; ++p) {
            fused[static_cast<std::size_t>(i * k + p)] =
                nrow != nullptr ? arow[p] + nrow[p] : arow[p];
        }
    }
    gemm(false, true, m, n, k, 1.0f, fused.data(), b.data(), 0.0f,
         c.data());
    if (bias != nullptr) {
        for (std::int64_t i = 0; i < m; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
                c[static_cast<std::size_t>(i * n + j)] += bias[j];
            }
        }
    }
}

using FusedParam = std::tuple<int, int, int>;

class GemmRowsFusedBitExact : public ::testing::TestWithParam<FusedParam>
{};

TEST_P(GemmRowsFusedBitExact, MatchesMaterializeThenGemm)
{
    const auto [m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 977 + n * 31 + k));
    std::vector<std::vector<float>> acts(static_cast<std::size_t>(m));
    std::vector<std::vector<float>> noise(static_cast<std::size_t>(m));
    std::vector<const float*> a_rows;
    std::vector<const float*> a_noise;
    for (std::int64_t i = 0; i < m; ++i) {
        auto& act = acts[static_cast<std::size_t>(i)];
        auto& noi = noise[static_cast<std::size_t>(i)];
        act.resize(static_cast<std::size_t>(k));
        noi.resize(static_cast<std::size_t>(k));
        for (auto& v : act) {
            v = rng.normal();
        }
        for (auto& v : noi) {
            v = rng.normal();
        }
        a_rows.push_back(act.data());
        a_noise.push_back(noi.data());
    }
    std::vector<float> b(static_cast<std::size_t>(n * k));  // [n, k]
    std::vector<float> bias(static_cast<std::size_t>(n));
    for (auto& v : b) {
        v = rng.normal();
    }
    for (auto& v : bias) {
        v = rng.normal();
    }

    std::vector<float> c(static_cast<std::size_t>(m * n), -7.0f);
    std::vector<float> c_ref(static_cast<std::size_t>(m * n), 3.0f);
    gemm_rows_fused(m, n, k, a_rows.data(), a_noise.data(), b.data(),
                    bias.data(), c.data());
    fused_reference(m, n, k, a_rows, a_noise, b, bias.data(), c_ref);
    for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_EQ(c[i], c_ref[i]) << "bit mismatch at " << i;
    }

    // Null noise array = no add; bit-exact against the plain product.
    std::vector<float> c_plain(static_cast<std::size_t>(m * n));
    std::vector<float> c_plain_ref(static_cast<std::size_t>(m * n));
    gemm_rows_fused(m, n, k, a_rows.data(), nullptr, b.data(), nullptr,
                    c_plain.data());
    fused_reference(m, n, k, a_rows, {}, b, nullptr, c_plain_ref);
    for (std::size_t i = 0; i < c_plain.size(); ++i) {
        ASSERT_EQ(c_plain[i], c_plain_ref[i]) << "null-noise at " << i;
    }
}

// Same grids as the plain-GEMM suite: tile boundaries (MR=6, NR=8/16),
// the small-work threshold, odd primes.
INSTANTIATE_TEST_SUITE_P(AllVariants, GemmRowsFusedBitExact,
                         ::testing::Combine(::testing::Values(1, 3, 17,
                                                              64),
                                            ::testing::Values(1, 5, 33),
                                            ::testing::Values(1, 8,
                                                              129)));

INSTANTIATE_TEST_SUITE_P(TileBoundaries, GemmRowsFusedBitExact,
                         ::testing::Combine(::testing::Values(5, 6, 7,
                                                              97),
                                            ::testing::Values(15, 16, 17,
                                                              61),
                                            ::testing::Values(31, 43)));

// The K-blocking boundary (kKc = 256): below / exactly / above / deep
// into the second K block, at shapes big enough to take the blocked
// path.
INSTANTIATE_TEST_SUITE_P(KcBlockBoundary, GemmRowsFusedBitExact,
                         ::testing::Combine(::testing::Values(23),
                                            ::testing::Values(24),
                                            ::testing::Values(255, 256,
                                                              257, 300)));

TEST(GemmRowsFused, SingleRowNullNoiseEntry)
{
    // Per-row null inside a non-null noise array: that row adds
    // nothing, others still fuse.
    const std::int64_t m = 3, n = 4, k = 8;
    Rng rng(11);
    std::vector<std::vector<float>> acts(3), noise(3);
    std::vector<const float*> a_rows, a_noise;
    for (int i = 0; i < 3; ++i) {
        acts[i].resize(k);
        noise[i].resize(k);
        for (auto& v : acts[i]) {
            v = rng.normal();
        }
        for (auto& v : noise[i]) {
            v = rng.normal();
        }
        a_rows.push_back(acts[i].data());
        a_noise.push_back(i == 1 ? nullptr : noise[i].data());
    }
    std::vector<float> b(static_cast<std::size_t>(n * k));
    for (auto& v : b) {
        v = rng.normal();
    }
    std::vector<float> zeros(static_cast<std::size_t>(k), 0.0f);
    std::vector<const float*> ref_noise = {noise[0].data(), zeros.data(),
                                           noise[2].data()};
    std::vector<float> c(static_cast<std::size_t>(m * n));
    std::vector<float> c_ref(static_cast<std::size_t>(m * n));
    gemm_rows_fused(m, n, k, a_rows.data(), a_noise.data(), b.data(),
                    nullptr, c.data());
    fused_reference(m, n, k, a_rows, ref_noise, b, nullptr, c_ref);
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(c[i], c_ref[i]);
    }
}

}  // namespace
}  // namespace shredder
