/** @file Unit + property tests for the GEMM kernel. */
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/gemm.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace {

/** Slow reference GEMM for validation. */
void
reference_gemm(bool ta, bool tb, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const std::vector<float>& a,
               const std::vector<float>& b, float beta,
               std::vector<float>& c)
{
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t t = 0; t < k; ++t) {
                const float av = ta ? a[static_cast<std::size_t>(t * m + i)]
                                    : a[static_cast<std::size_t>(i * k + t)];
                const float bv = tb ? b[static_cast<std::size_t>(j * k + t)]
                                    : b[static_cast<std::size_t>(t * n + j)];
                acc += static_cast<double>(av) * bv;
            }
            auto& cv = c[static_cast<std::size_t>(i * n + j)];
            cv = alpha * static_cast<float>(acc) + beta * cv;
        }
    }
}

TEST(Gemm, Identity)
{
    // I * B = B
    const std::int64_t n = 4;
    std::vector<float> eye(n * n, 0.0f);
    for (std::int64_t i = 0; i < n; ++i) {
        eye[static_cast<std::size_t>(i * n + i)] = 1.0f;
    }
    Rng rng(1);
    std::vector<float> b(n * n);
    for (auto& v : b) {
        v = rng.normal();
    }
    std::vector<float> c(n * n, -1.0f);
    gemm(false, false, n, n, n, 1.0f, eye.data(), b.data(), 0.0f, c.data());
    for (std::size_t i = 0; i < b.size(); ++i) {
        EXPECT_FLOAT_EQ(c[i], b[i]);
    }
}

TEST(Gemm, BetaAccumulates)
{
    std::vector<float> a{1.0f};
    std::vector<float> b{2.0f};
    std::vector<float> c{10.0f};
    gemm(false, false, 1, 1, 1, 1.0f, a.data(), b.data(), 1.0f, c.data());
    EXPECT_FLOAT_EQ(c[0], 12.0f);
    gemm(false, false, 1, 1, 1, 1.0f, a.data(), b.data(), 0.5f, c.data());
    EXPECT_FLOAT_EQ(c[0], 8.0f);
}

TEST(Gemm, AlphaZeroLeavesBetaTimesC)
{
    std::vector<float> a{3.0f}, b{4.0f}, c{5.0f};
    gemm(false, false, 1, 1, 1, 0.0f, a.data(), b.data(), 2.0f, c.data());
    EXPECT_FLOAT_EQ(c[0], 10.0f);
}

using GemmParam = std::tuple<bool, bool, int, int, int>;

class GemmMatchesReference
    : public ::testing::TestWithParam<GemmParam>
{};

TEST_P(GemmMatchesReference, RandomMatrices)
{
    const auto [ta, tb, m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k) +
            (ta ? 1000 : 0) + (tb ? 2000 : 0));
    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) {
        v = rng.normal();
    }
    for (auto& v : b) {
        v = rng.normal();
    }
    std::vector<float> c(static_cast<std::size_t>(m * n));
    std::vector<float> c_ref = c;
    for (std::size_t i = 0; i < c.size(); ++i) {
        c[i] = c_ref[i] = rng.normal();
    }

    gemm(ta, tb, m, n, k, 0.7f, a.data(), b.data(), 0.3f, c.data());
    reference_gemm(ta, tb, m, n, k, 0.7f, a, b, 0.3f, c_ref);

    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i], c_ref[i], 1e-3f) << "at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GemmMatchesReference,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 3, 17, 64),
                       ::testing::Values(1, 5, 33),
                       ::testing::Values(1, 8, 129)));

TEST(Gemm, LargeBlockedKPath)
{
    // Exercise the K-blocking boundary (block = 256).
    const std::int64_t m = 3, n = 4, k = 600;
    Rng rng(9);
    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    for (auto& v : a) {
        v = rng.uniform(-1.0f, 1.0f);
    }
    for (auto& v : b) {
        v = rng.uniform(-1.0f, 1.0f);
    }
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    std::vector<float> c_ref = c;
    gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    reference_gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, c_ref);
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i], c_ref[i], 1e-3f);
    }
}

}  // namespace
}  // namespace shredder
