/** @file Tests for the Shredder core (the paper's contribution). */
#include <cstdio>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "src/core/lambda_controller.h"
#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/core/noise_tensor.h"
#include "src/core/shredder_loss.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using core::LambdaController;
using core::LambdaSchedule;
using core::NoiseCollection;
using core::NoiseInit;
using core::NoiseSample;
using core::NoiseTensor;
using core::PrivacyTerm;
using core::ShredderLoss;

// ---------------------------------------------------------------------
// NoiseTensor
// ---------------------------------------------------------------------

TEST(NoiseTensor, LaplaceInitializationMoments)
{
    NoiseInit init;
    init.location = 0.5f;
    init.scale = 1.2f;
    NoiseTensor noise(Shape({64, 16, 4}), init);  // 4096 elems
    EXPECT_NEAR(noise.value().mean(), 0.5, 0.1);
    EXPECT_NEAR(noise.value().variance(), 2 * 1.2 * 1.2, 0.4);
}

TEST(NoiseTensor, ApplyBroadcastsOverBatch)
{
    NoiseTensor noise(Tensor::from_vector({1.0f, -1.0f}));
    Tensor act(Shape({3, 2}));
    act.fill(10.0f);
    Tensor out = noise.apply(act);
    for (std::int64_t n = 0; n < 3; ++n) {
        EXPECT_FLOAT_EQ(out.at2(n, 0), 11.0f);
        EXPECT_FLOAT_EQ(out.at2(n, 1), 9.0f);
    }
}

TEST(NoiseTensor, ApplyLeavesInputUntouched)
{
    NoiseTensor noise(Tensor::from_vector({5.0f}));
    Tensor act = Tensor::zeros(Shape({2, 1}));
    noise.apply(act);
    EXPECT_DOUBLE_EQ(act.abs_sum(), 0.0);
}

TEST(NoiseTensor, GradAccumulatesBatchSum)
{
    NoiseTensor noise(Tensor::from_vector({0.0f, 0.0f}));
    Tensor grad(Shape({3, 2}));
    grad.fill(1.0f);
    grad.at2(1, 1) = 4.0f;
    noise.accumulate_grad(grad);
    EXPECT_FLOAT_EQ(noise.param().grad[0], 3.0f);
    EXPECT_FLOAT_EQ(noise.param().grad[1], 6.0f);
}

TEST(NoiseTensor, SameSeedSameNoise)
{
    NoiseInit init;
    init.seed = 77;
    NoiseTensor a(Shape({32}), init);
    NoiseTensor b(Shape({32}), init);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(a.value(), b.value()), 0.0);
}

// ---------------------------------------------------------------------
// ShredderLoss
// ---------------------------------------------------------------------

TEST(ShredderLoss, L1TermMatchesEquation3)
{
    ShredderLoss loss(PrivacyTerm::kL1Expansion, 0.01f);
    Tensor logits(Shape({1, 2}));
    logits[0] = 5.0f;  // confident class 0
    Tensor noise = Tensor::from_vector({1.0f, -2.0f, 3.0f});
    const auto v = loss.compute(logits, {0}, noise);
    EXPECT_NEAR(v.privacy, -0.01 * 6.0, 1e-6);
    EXPECT_NEAR(v.total, v.cross_entropy + v.privacy, 1e-9);
}

TEST(ShredderLoss, L1GradPushesMagnitudesUp)
{
    // The Eq. 3 anti-decay: positive noise gets a negative gradient
    // (grows under descent), negative noise a positive one.
    ShredderLoss loss(PrivacyTerm::kL1Expansion, 0.5f);
    Tensor noise = Tensor::from_vector({2.0f, -3.0f, 0.0f});
    Tensor grad = Tensor::zeros(Shape({3}));
    loss.add_privacy_grad(noise, grad);
    EXPECT_FLOAT_EQ(grad[0], -0.5f);
    EXPECT_FLOAT_EQ(grad[1], 0.5f);
    EXPECT_FLOAT_EQ(grad[2], 0.0f);
}

TEST(ShredderLoss, InverseVarianceNumericGradient)
{
    ShredderLoss loss(PrivacyTerm::kInverseVariance, 0.3f);
    Rng rng(1);
    Tensor noise = Tensor::normal(Shape({16}), rng, 0.2f, 1.0f);
    Tensor analytic = Tensor::zeros(noise.shape());
    loss.add_privacy_grad(noise, analytic);

    const auto term = [&](const Tensor& n) {
        return 0.3 / n.variance();
    };
    const float eps = 1e-3f;
    for (std::int64_t i = 0; i < noise.size(); ++i) {
        Tensor np = noise;
        np[i] += eps;
        const double up = term(np);
        np[i] -= 2 * eps;
        const double dn = term(np);
        EXPECT_NEAR(analytic[i], (up - dn) / (2 * eps), 2e-2);
    }
}

TEST(ShredderLoss, NoneTermAddsNothing)
{
    ShredderLoss loss(PrivacyTerm::kNone, 0.5f);
    Tensor noise = Tensor::from_vector({1.0f, 2.0f});
    Tensor grad = Tensor::zeros(Shape({2}));
    loss.add_privacy_grad(noise, grad);
    EXPECT_DOUBLE_EQ(grad.abs_sum(), 0.0);
    Tensor logits(Shape({1, 2}));
    const auto v = loss.compute(logits, {0}, noise);
    EXPECT_DOUBLE_EQ(v.privacy, 0.0);
}

TEST(ShredderLoss, LambdaZeroReducesToCrossEntropy)
{
    ShredderLoss loss(PrivacyTerm::kL1Expansion, 0.0f);
    Tensor logits(Shape({1, 3}));
    Tensor noise = Tensor::from_vector({100.0f});
    const auto v = loss.compute(logits, {1}, noise);
    EXPECT_DOUBLE_EQ(v.privacy, 0.0);
    EXPECT_DOUBLE_EQ(v.total, v.cross_entropy);
}

// ---------------------------------------------------------------------
// LambdaController
// ---------------------------------------------------------------------

TEST(LambdaController, NoTargetNoDecay)
{
    LambdaSchedule sched;
    sched.initial_lambda = 0.01f;
    sched.privacy_target = 0.0;  // disabled
    LambdaController ctrl(sched);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FLOAT_EQ(ctrl.observe(100.0), 0.01f);
    }
    EXPECT_FALSE(ctrl.stabilized());
}

TEST(LambdaController, DecaysAfterPatienceAboveTarget)
{
    LambdaSchedule sched;
    sched.initial_lambda = 0.01f;
    sched.privacy_target = 0.5;
    sched.decay = 0.1f;
    sched.patience = 3;
    LambdaController ctrl(sched);
    ctrl.observe(0.6);
    ctrl.observe(0.6);
    EXPECT_FLOAT_EQ(ctrl.lambda(), 0.01f);  // not yet
    ctrl.observe(0.6);
    EXPECT_FLOAT_EQ(ctrl.lambda(), 0.001f);
    EXPECT_TRUE(ctrl.stabilized());
    EXPECT_EQ(ctrl.decays(), 1);
}

TEST(LambdaController, BelowTargetResetsStreak)
{
    LambdaSchedule sched;
    sched.initial_lambda = 0.01f;
    sched.privacy_target = 0.5;
    sched.patience = 2;
    LambdaController ctrl(sched);
    ctrl.observe(0.6);
    ctrl.observe(0.4);  // resets
    ctrl.observe(0.6);
    EXPECT_FLOAT_EQ(ctrl.lambda(), 0.01f);
    ctrl.observe(0.6);
    EXPECT_LT(ctrl.lambda(), 0.01f);
}

TEST(LambdaController, RespectsFloor)
{
    LambdaSchedule sched;
    sched.initial_lambda = 1e-3f;
    sched.privacy_target = 0.1;
    sched.decay = 0.1f;
    sched.min_lambda = 1e-4f;
    sched.patience = 1;
    LambdaController ctrl(sched);
    for (int i = 0; i < 10; ++i) {
        ctrl.observe(1.0);
    }
    EXPECT_FLOAT_EQ(ctrl.lambda(), 1e-4f);
}

// ---------------------------------------------------------------------
// NoiseCollection
// ---------------------------------------------------------------------

NoiseSample
make_sample(float fill, double privacy)
{
    NoiseSample s;
    s.noise = Tensor::full(Shape({4}), fill);
    s.in_vivo_privacy = privacy;
    s.train_accuracy = 0.9;
    return s;
}

TEST(NoiseCollection, AddGetDraw)
{
    NoiseCollection col;
    EXPECT_TRUE(col.empty());
    col.add(make_sample(1.0f, 0.5));
    col.add(make_sample(2.0f, 0.7));
    EXPECT_EQ(col.size(), 2);
    EXPECT_FLOAT_EQ(col.get(1).noise[0], 2.0f);
    EXPECT_NEAR(col.mean_in_vivo_privacy(), 0.6, 1e-9);

    Rng rng(1);
    for (int i = 0; i < 10; ++i) {
        const float v = col.draw(rng).noise[0];
        EXPECT_TRUE(v == 1.0f || v == 2.0f);
    }
}

TEST(NoiseCollection, DrawHitsAllSamples)
{
    NoiseCollection col;
    for (int i = 0; i < 4; ++i) {
        col.add(make_sample(static_cast<float>(i), 0.1));
    }
    Rng rng(2);
    std::set<float> seen;
    for (int i = 0; i < 200; ++i) {
        seen.insert(col.draw(rng).noise[0]);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(NoiseCollection, SaveLoadRoundTrip)
{
    NoiseCollection col;
    col.add(make_sample(3.5f, 0.42));
    col.add(make_sample(-1.0f, 0.55));
    const std::string path =
        (std::filesystem::temp_directory_path() / "shredder_col_test.bin")
            .string();
    col.save(path);
    const NoiseCollection loaded = NoiseCollection::load(path);
    ASSERT_EQ(loaded.size(), 2);
    EXPECT_FLOAT_EQ(loaded.get(0).noise[0], 3.5f);
    EXPECT_NEAR(loaded.get(1).in_vivo_privacy, 0.55, 1e-12);
    EXPECT_NEAR(loaded.get(0).train_accuracy, 0.9, 1e-12);
    std::remove(path.c_str());
}

TEST(NoiseCollection, RejectsShapeMismatch)
{
    NoiseCollection col;
    col.add(make_sample(1.0f, 0.5));
    NoiseSample bad;
    bad.noise = Tensor::zeros(Shape({8}));
    EXPECT_EXIT(col.add(std::move(bad)), ::testing::ExitedWithCode(1),
                "mismatch");
}

// ---------------------------------------------------------------------
// NoiseDistribution (paper §2.5)
// ---------------------------------------------------------------------

TEST(NoiseDistribution, FitRecoversLocationAndSpread)
{
    // Elements alternate between −3 and +3 across two samples:
    // location 0, Laplace scale = mean|d| = 3.
    NoiseCollection col;
    col.add(make_sample(3.0f, 0.5));
    col.add(make_sample(-3.0f, 0.5));
    const auto dist =
        core::NoiseDistribution::fit(col, core::NoiseFamily::kLaplace);
    EXPECT_NEAR(dist.location()[0], 0.0f, 1e-6);
    EXPECT_NEAR(dist.scale()[0], 3.0f, 1e-6);
    EXPECT_NEAR(dist.mean_variance(), 2.0 * 9.0, 1e-6);
}

TEST(NoiseDistribution, GaussianFamilyUsesStddev)
{
    NoiseCollection col;
    col.add(make_sample(2.0f, 0.5));
    col.add(make_sample(-2.0f, 0.5));
    const auto dist =
        core::NoiseDistribution::fit(col, core::NoiseFamily::kGaussian);
    EXPECT_NEAR(dist.scale()[0], 2.0f, 1e-6);
    EXPECT_NEAR(dist.mean_variance(), 4.0, 1e-6);
}

TEST(NoiseDistribution, SamplesMatchFittedMoments)
{
    NoiseCollection col;
    col.add(make_sample(4.0f, 0.5));
    col.add(make_sample(-4.0f, 0.5));
    const auto dist = core::NoiseDistribution::fit(col);
    Rng rng(1);
    double sum = 0.0, sq = 0.0;
    const int draws = 4000;
    for (int i = 0; i < draws; ++i) {
        const Tensor s = dist.sample(rng);
        for (std::int64_t j = 0; j < s.size(); ++j) {
            sum += s[j];
            sq += static_cast<double>(s[j]) * s[j];
        }
    }
    const double n = static_cast<double>(draws) * 4.0;
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.3);
    EXPECT_NEAR(var, 2.0 * 16.0, 2.0);  // Laplace var = 2b²
}

TEST(NoiseDistribution, SingleSampleFitStaysStochastic)
{
    // With one stored tensor the naive scale is 0; the floor must keep
    // sampling non-degenerate (a deterministic transform gives no
    // privacy at all).
    NoiseCollection col;
    col.add(make_sample(5.0f, 0.5));
    const auto dist = core::NoiseDistribution::fit(col);
    Rng rng(2);
    const Tensor a = dist.sample(rng);
    const Tensor b = dist.sample(rng);
    EXPECT_GT(ops::max_abs_diff(a, b), 1e-4);
}

TEST(NoiseDistribution, FitOnEmptyCollectionIsFatal)
{
    NoiseCollection col;
    EXPECT_EXIT(core::NoiseDistribution::fit(col),
                ::testing::ExitedWithCode(1), "empty");
}

}  // namespace
}  // namespace shredder
