/**
 * @file
 * End-to-end integration tests: pre-train a small network on the
 * digits workload, learn noise at a cut, and verify the paper's
 * qualitative claims — privacy rises, accuracy survives, weights stay
 * frozen, λ=0 behaves like privacy-agnostic training.
 */
#include <gtest/gtest.h>

#include <memory>

#include "src/core/noise_trainer.h"
#include "src/core/pipeline.h"
#include "src/core/privacy_meter.h"
#include "src/data/digits.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"

namespace shredder {
namespace {

using core::NoiseTrainConfig;
using core::PrivacyTerm;

/** Shared fixture: one pre-trained LeNet on digits for all tests. */
class ShredderEndToEnd : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(11);
        net_ = models::make_lenet(rng);
        data::DigitsConfig train_cfg;
        train_cfg.count = 1200;
        train_cfg.seed = 301;
        train_ = std::make_unique<data::DigitsDataset>(train_cfg);
        data::DigitsConfig test_cfg;
        test_cfg.count = 400;
        test_cfg.seed = 302;
        test_ = std::make_unique<data::DigitsDataset>(test_cfg);

        models::TrainConfig cfg;
        cfg.max_epochs = 3;
        cfg.target_accuracy = 0.97;
        cfg.verbose = false;
        Rng train_rng(12);
        const auto report =
            models::train_model(*net_, *train_, *test_, cfg, train_rng);
        baseline_acc_ = report.test_accuracy;
    }

    static void
    TearDownTestSuite()
    {
        net_.reset();
        train_.reset();
        test_.reset();
    }

    static std::unique_ptr<nn::Sequential> net_;
    static std::unique_ptr<data::DigitsDataset> train_;
    static std::unique_ptr<data::DigitsDataset> test_;
    static double baseline_acc_;
};

std::unique_ptr<nn::Sequential> ShredderEndToEnd::net_;
std::unique_ptr<data::DigitsDataset> ShredderEndToEnd::train_;
std::unique_ptr<data::DigitsDataset> ShredderEndToEnd::test_;
double ShredderEndToEnd::baseline_acc_ = 0.0;

TEST_F(ShredderEndToEnd, BaselineLearnsTheTask)
{
    EXPECT_GT(baseline_acc_, 0.9);
}

TEST_F(ShredderEndToEnd, NoiseTrainingRecoversAccuracyAtHighPrivacy)
{
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts.back());

    NoiseTrainConfig cfg;
    cfg.iterations = 150;
    cfg.batch_size = 16;
    cfg.learning_rate = 5e-2f;
    cfg.init.scale = 2.0f;
    cfg.lambda.initial_lambda = 1e-3f;
    cfg.lambda.privacy_target = 0.5;
    cfg.seed = 1001;
    core::NoiseTrainer trainer(sm, *train_, cfg);
    const auto result = trainer.train();

    // Substantial noise survived training…
    EXPECT_GT(result.final_in_vivo, 0.1);
    // …and the classifier still works through it.
    core::MeterConfig mc;
    mc.mi.max_dims = 64;
    mc.accuracy_samples = 256;
    mc.mi_samples = 256;
    core::PrivacyMeter meter(sm, *test_, mc);
    const auto noisy = meter.measure_fixed(result.noise);
    EXPECT_GT(noisy.accuracy, baseline_acc_ - 0.15);
}

TEST_F(ShredderEndToEnd, ReplayedNoiseDegradesMeasuredMiKeepsAccuracy)
{
    // The paper's deployment (§2.5): each query replays one of the
    // pre-trained noise tensors. The magnitude-sensitive estimator
    // (the analogue of the paper's kNN-based ITE measurement) must
    // report a substantial MI drop while accuracy stays near the
    // baseline.
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts.back());

    core::NoiseCollection collection;
    for (int s = 0; s < 3; ++s) {
        NoiseTrainConfig cfg;
        cfg.iterations = 200;
        cfg.batch_size = 16;
        cfg.init.scale = 2.0f;
        cfg.lambda.initial_lambda = 5e-3f;
        cfg.lambda.privacy_target = 2.0;
        cfg.seed = 2002 + static_cast<std::uint64_t>(s) * 97;
        core::NoiseTrainer trainer(sm, *train_, cfg);
        auto result = trainer.train();
        core::NoiseSample sample;
        sample.noise = std::move(result.noise);
        sample.in_vivo_privacy = result.final_in_vivo;
        collection.add(std::move(sample));
    }

    core::MeterConfig mc;
    mc.mi.max_dims = 64;
    mc.accuracy_samples = 256;
    mc.mi_samples = 256;
    core::PrivacyMeter meter(sm, *test_, mc);
    const auto clean = meter.measure_clean();
    const auto replay = meter.measure_replay(collection);
    EXPECT_GT(clean.mi_bits, 0.0);
    EXPECT_LT(replay.mi_bits, 0.75 * clean.mi_bits);
    EXPECT_GT(replay.accuracy, clean.accuracy - 0.06);
}

TEST_F(ShredderEndToEnd, DistributionSamplingDestroysTrueInformation)
{
    // Extension: fresh per-query noise from the fitted per-element
    // distribution adds genuine channel randomness, so even the
    // rank-invariant (quantile) estimator reports an MI drop — at a
    // real accuracy cost, because element-wise resampling loses the
    // joint structure the training found.
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts.back());

    core::NoiseCollection collection;
    for (int s = 0; s < 2; ++s) {
        NoiseTrainConfig cfg;
        cfg.iterations = 150;
        cfg.batch_size = 16;
        cfg.init.scale = 2.0f;
        cfg.lambda.initial_lambda = 5e-3f;
        cfg.lambda.privacy_target = 2.0;
        cfg.seed = 7100 + static_cast<std::uint64_t>(s) * 31;
        core::NoiseTrainer trainer(sm, *train_, cfg);
        auto result = trainer.train();
        core::NoiseSample sample;
        sample.noise = std::move(result.noise);
        collection.add(std::move(sample));
    }

    core::MeterConfig mc;
    mc.mi.max_dims = 64;
    mc.accuracy_samples = 128;
    mc.mi_samples = 256;
    mc.mi.histogram.mode = info::Binning::kQuantile;
    core::PrivacyMeter meter(sm, *test_, mc);
    const auto clean = meter.measure_clean();
    const auto dist = meter.measure_sampling(collection);
    EXPECT_LT(dist.mi_bits, 0.8 * clean.mi_bits);
}

TEST_F(ShredderEndToEnd, FixedNoiseIsInformationPreserving)
{
    // A single replayed tensor is a deterministic transform: the
    // quantile-based estimator correctly reports (near-)unchanged MI.
    // This is the property that motivates the sampling phase (§2.5).
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts.back());

    NoiseTrainConfig cfg;
    cfg.iterations = 80;
    cfg.batch_size = 16;
    cfg.init.scale = 2.0f;
    cfg.lambda.initial_lambda = 1e-3f;
    cfg.seed = 5005;
    core::NoiseTrainer trainer(sm, *train_, cfg);
    const auto result = trainer.train();

    core::MeterConfig mc;
    mc.mi.max_dims = 64;
    mc.accuracy_samples = 128;
    mc.mi_samples = 192;
    core::PrivacyMeter meter(sm, *test_, mc);
    const auto clean = meter.measure_clean();
    const auto fixed = meter.measure_fixed(result.noise);
    EXPECT_NEAR(fixed.mi_bits, clean.mi_bits, 0.25 * clean.mi_bits);
}

TEST_F(ShredderEndToEnd, WeightsStayFrozenDuringNoiseTraining)
{
    // Checksum every parameter before/after noise training.
    std::vector<double> before;
    for (nn::Parameter* p : net_->parameters()) {
        before.push_back(p->value.sum());
    }
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts.back());
    NoiseTrainConfig cfg;
    cfg.iterations = 30;
    cfg.seed = 3003;
    core::NoiseTrainer trainer(sm, *train_, cfg);
    trainer.train();
    std::size_t i = 0;
    for (nn::Parameter* p : net_->parameters()) {
        EXPECT_DOUBLE_EQ(p->value.sum(), before[i++])
            << "weight drifted: " << p->name;
    }
}

TEST_F(ShredderEndToEnd, LambdaZeroPrivacyDecays)
{
    // Paper Fig. 4: privacy-agnostic (regular) training loses in-vivo
    // privacy while Shredder's λ>0 run keeps/raises it.
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts.back());

    NoiseTrainConfig regular;
    regular.iterations = 120;
    regular.term = PrivacyTerm::kNone;
    regular.lambda.initial_lambda = 0.0f;
    regular.init.scale = 2.0f;
    regular.seed = 4004;
    core::NoiseTrainer rt(sm, *train_, regular);
    const auto reg = rt.train();

    NoiseTrainConfig shredder = regular;
    shredder.term = PrivacyTerm::kL1Expansion;
    shredder.lambda.initial_lambda = 1e-3f;
    shredder.lambda.privacy_target = 0.0;  // no decay: keep pushing
    core::NoiseTrainer st(sm, *train_, shredder);
    const auto shr = st.train();

    ASSERT_GE(reg.trace.size(), 3u);
    const double reg_first = reg.trace.front().in_vivo_privacy;
    const double reg_last = reg.trace.back().in_vivo_privacy;
    const double shr_first = shr.trace.front().in_vivo_privacy;
    const double shr_last = shr.trace.back().in_vivo_privacy;
    EXPECT_LT(reg_last, reg_first);           // regular decays
    EXPECT_GT(shr_last, shr_first * 0.9);     // Shredder holds/raises
    EXPECT_GT(shr_last, reg_last);            // and ends higher
}

TEST_F(ShredderEndToEnd, SamplingCollectionKeepsAccuracy)
{
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts.back());

    core::PipelineConfig pc;
    pc.noise_samples = 2;
    pc.train.iterations = 180;
    pc.train.batch_size = 16;
    pc.train.init.scale = 2.0f;
    pc.train.lambda.initial_lambda = 5e-3f;
    pc.train.lambda.privacy_target = 2.0;
    pc.meter.mi.max_dims = 64;
    pc.meter.accuracy_samples = 256;
    pc.meter.mi_samples = 192;

    const auto result = core::run_pipeline("digits-e2e", *net_, *train_,
                                           *test_, cuts.back(), pc);
    EXPECT_EQ(result.collection.size(), 2);
    EXPECT_GT(result.mi_loss_pct, 20.0);
    EXPECT_LT(result.accuracy_loss_pct, 10.0);
    EXPECT_LT(result.params_ratio_pct, 1.0);
    EXPECT_GT(result.epochs, 0.0);
    // Extension metrics populated by default.
    EXPECT_GT(result.distribution_mi, 0.0);
    EXPECT_LT(result.distribution_mi, result.original_mi);
    // Shuffle matrix rows (measure_shuffle defaults on): scrambling
    // the wire collapses the dimension-wise MI estimate, alone and
    // composed with either noise mode.
    EXPECT_GT(result.shuffle_mi, 0.0);
    EXPECT_LT(result.shuffle_mi, result.original_mi);
    EXPECT_LT(result.shuffle_replay_mi, result.original_mi);
    EXPECT_LT(result.shuffle_sample_mi, result.original_mi);
}

}  // namespace
}  // namespace shredder
