/** @file Tests for the thread-local scratch arena. */
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/scratch.h"

namespace shredder {
namespace {

TEST(ScratchArena, ReusesCapacityAcrossLeases)
{
    ScratchArena arena;
    float* first = nullptr;
    {
        ScratchLease lease = arena.acquire(1000);
        first = lease.data();
        ASSERT_NE(first, nullptr);
        EXPECT_EQ(lease.size(), 1000u);
        EXPECT_EQ(arena.depth(), 1u);
    }
    EXPECT_EQ(arena.depth(), 0u);
    const std::size_t cap = arena.capacity_bytes();
    {
        // Same or smaller request: same slot, same pointer, no growth.
        ScratchLease lease = arena.acquire(500);
        EXPECT_EQ(lease.data(), first);
    }
    EXPECT_EQ(arena.capacity_bytes(), cap);
}

TEST(ScratchArena, GrowsWhenRequestExceedsCapacity)
{
    ScratchArena arena;
    { ScratchLease small = arena.acquire(10); }
    const std::size_t cap = arena.capacity_bytes();
    { ScratchLease big = arena.acquire(1 << 20); }
    EXPECT_GT(arena.capacity_bytes(), cap);
    // Growth persists: the next large request must not reallocate.
    const std::size_t grown = arena.capacity_bytes();
    { ScratchLease big = arena.acquire(1 << 20); }
    EXPECT_EQ(arena.capacity_bytes(), grown);
}

TEST(ScratchArena, NestedLeasesUseDistinctSlots)
{
    ScratchArena arena;
    ScratchLease outer = arena.acquire(64);
    outer.data()[0] = 42.0f;
    {
        ScratchLease inner = arena.acquire(1 << 16);
        EXPECT_NE(inner.data(), outer.data());
        EXPECT_EQ(arena.depth(), 2u);
        inner.data()[0] = 7.0f;
    }
    // Inner growth must not have invalidated or clobbered the outer
    // lease.
    EXPECT_FLOAT_EQ(outer.data()[0], 42.0f);
    EXPECT_EQ(arena.depth(), 1u);
}

TEST(ScratchArena, BuffersAreCacheLineAligned)
{
    ScratchArena arena;
    ScratchLease a = arena.acquire(3);
    ScratchLease b = arena.acquire(7);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
}

TEST(ScratchArena, ZeroSizeAcquireIsValid)
{
    ScratchArena arena;
    ScratchLease lease = arena.acquire(0);
    EXPECT_EQ(lease.size(), 0u);
    EXPECT_EQ(arena.depth(), 1u);
}

TEST(ScratchArena, MoveTransfersOwnership)
{
    ScratchArena arena;
    ScratchLease a = arena.acquire(16);
    ScratchLease b = std::move(a);
    EXPECT_EQ(a.data(), nullptr);
    EXPECT_NE(b.data(), nullptr);
    EXPECT_EQ(arena.depth(), 1u);
}

TEST(ScratchArena, PerThreadInstancesAreIndependent)
{
    ScratchArena& mine = ScratchArena::for_this_thread();
    ScratchArena* theirs = nullptr;
    std::thread t([&] { theirs = &ScratchArena::for_this_thread(); });
    t.join();
    EXPECT_NE(&mine, theirs);
}

}  // namespace
}  // namespace shredder
