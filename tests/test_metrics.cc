/**
 * @file
 * /metrics suite: a strict Prometheus text-exposition checker run over
 * real scrapes, counter monotonicity across scrapes, histogram
 * consistency, the GET-vs-SHRQ demux on a single listener, and proof
 * that scraping a loaded server never perturbs result bit-exactness.
 */
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/models/zoo.h"
#include "src/net/client.h"
#include "src/net/metrics.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_engine.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::EndpointConfig;
using runtime::NoNoisePolicy;
using runtime::ReplayPolicy;
using runtime::ServingEngine;
using runtime::ServingEngineConfig;
using runtime::noise_seed;

/** One parsed sample line. */
struct Sample
{
    std::string name;    ///< Metric name (with _bucket/_sum/_count).
    std::string labels;  ///< Raw text between the braces ("" if none).
    double value = 0.0;
};

/** One `# HELP`/`# TYPE` family with its samples. */
struct Family
{
    std::string name;
    std::string type;
    std::vector<Sample> samples;
};

/**
 * Strict exposition parser: fills `out` with the families in order and
 * fails the current test on any format violation (stray lines, HELP
 * without TYPE, interleaved families, unparseable values, missing
 * trailing newline).
 */
void
parse_exposition(const std::string& text, std::vector<Family>* out)
{
    std::vector<Family>& families = *out;
    families.clear();
    EXPECT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n') << "exposition must end with newline";

    std::istringstream is(text);
    std::string line;
    bool expect_type = false;
    while (std::getline(is, line)) {
        ASSERT_FALSE(line.empty()) << "blank line in exposition";
        if (line.rfind("# HELP ", 0) == 0) {
            ASSERT_FALSE(expect_type) << "HELP not followed by TYPE";
            Family f;
            const std::size_t sp = line.find(' ', 7);
            ASSERT_NE(sp, std::string::npos) << line;
            f.name = line.substr(7, sp - 7);
            for (const Family& prior : families) {
                EXPECT_NE(prior.name, f.name)
                    << "family emitted twice: " << f.name;
            }
            families.push_back(std::move(f));
            expect_type = true;
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            ASSERT_TRUE(expect_type) << "TYPE without HELP: " << line;
            ASSERT_FALSE(families.empty());
            Family& f = families.back();
            const std::size_t sp = line.find(' ', 7);
            ASSERT_NE(sp, std::string::npos) << line;
            EXPECT_EQ(line.substr(7, sp - 7), f.name)
                << "TYPE names a different family than HELP";
            f.type = line.substr(sp + 1);
            EXPECT_TRUE(f.type == "counter" || f.type == "gauge" ||
                        f.type == "histogram")
                << "unknown TYPE " << f.type;
            expect_type = false;
            continue;
        }
        ASSERT_FALSE(line[0] == '#') << "stray comment: " << line;
        ASSERT_FALSE(families.empty()) << "sample before any family";
        ASSERT_FALSE(expect_type) << "sample between HELP and TYPE";

        Sample s;
        std::size_t name_end = line.find_first_of("{ ");
        ASSERT_NE(name_end, std::string::npos) << line;
        s.name = line.substr(0, name_end);
        std::size_t value_at = name_end;
        if (line[name_end] == '{') {
            const std::size_t close = line.find('}', name_end);
            ASSERT_NE(close, std::string::npos) << line;
            s.labels = line.substr(name_end + 1, close - name_end - 1);
            value_at = close + 1;
        }
        ASSERT_LT(value_at, line.size()) << line;
        ASSERT_EQ(line[value_at], ' ') << line;
        std::size_t parsed = 0;
        s.value = std::stod(line.substr(value_at + 1), &parsed);
        EXPECT_EQ(value_at + 1 + parsed, line.size())
            << "trailing junk after value: " << line;
        EXPECT_TRUE(std::isfinite(s.value)) << line;

        const Family& f = families.back();
        // The sample belongs to the announced family: exact name, or
        // the histogram suffixes for histogram families.
        const bool plain = s.name == f.name;
        const bool histo = f.type == "histogram" &&
                           (s.name == f.name + "_bucket" ||
                            s.name == f.name + "_sum" ||
                            s.name == f.name + "_count");
        EXPECT_TRUE(plain || histo)
            << "sample " << s.name << " under family " << f.name;
        if (f.type == "counter") {
            EXPECT_GE(s.value, 0.0) << line;
        }
        families.back().samples.push_back(std::move(s));
    }
    EXPECT_FALSE(expect_type) << "trailing HELP without TYPE";
}

/** Extract one label's value from a raw label string. */
std::string
label_value(const std::string& labels, const std::string& key)
{
    const std::string needle = key + "=\"";
    const std::size_t at = labels.find(needle);
    if (at == std::string::npos) {
        return "";
    }
    const std::size_t start = at + needle.size();
    return labels.substr(start, labels.find('"', start) - start);
}

/** Every histogram family: cumulative buckets, +Inf == _count. */
void
check_histograms(const std::vector<Family>& families)
{
    for (const Family& f : families) {
        if (f.type != "histogram") {
            continue;
        }
        // Group by endpoint label.
        std::map<std::string, std::vector<const Sample*>> buckets;
        std::map<std::string, double> counts;
        std::map<std::string, bool> has_sum;
        for (const Sample& s : f.samples) {
            const std::string ep = label_value(s.labels, "endpoint");
            if (s.name == f.name + "_bucket") {
                buckets[ep].push_back(&s);
            } else if (s.name == f.name + "_count") {
                counts[ep] = s.value;
            } else if (s.name == f.name + "_sum") {
                has_sum[ep] = true;
            }
        }
        for (const auto& [ep, series] : buckets) {
            ASSERT_FALSE(series.empty());
            double prev_le = -1.0;
            double prev_cum = -1.0;
            for (const Sample* s : series) {
                const std::string le = label_value(s->labels, "le");
                const bool inf = le == "+Inf";
                const double bound =
                    inf ? std::numeric_limits<double>::infinity()
                        : std::stod(le);
                EXPECT_GT(bound, prev_le)
                    << f.name << " le not increasing for " << ep;
                EXPECT_GE(s->value, prev_cum)
                    << f.name << " buckets not cumulative for " << ep;
                prev_le = bound;
                prev_cum = s->value;
            }
            EXPECT_EQ(label_value(series.back()->labels, "le"), "+Inf")
                << f.name << " missing +Inf bucket for " << ep;
            ASSERT_TRUE(counts.count(ep)) << f.name << " " << ep;
            EXPECT_EQ(series.back()->value, counts[ep])
                << f.name << " +Inf bucket != _count for " << ep;
            EXPECT_TRUE(has_sum[ep])
                << f.name << " missing _sum for " << ep;
        }
    }
}

/** LeNet engine, replay endpoint, for scraping. */
struct Fixture
{
    explicit Fixture(std::uint64_t seed = 55)
        : rng(seed), net(models::make_lenet(rng)),
          cut(split::conv_cut_points(*net).back()), model(*net, cut),
          act_shape(model.activation_shape(Shape({1, 28, 28})))
    {
        for (int i = 0; i < 3; ++i) {
            core::NoiseSample s;
            s.noise = Tensor::normal(per_sample(), rng);
            collection.add(std::move(s));
        }
    }

    Shape
    per_sample() const
    {
        return Shape({act_shape[1], act_shape[2], act_shape[3]});
    }

    Tensor
    sample_activation()
    {
        return Tensor::normal(per_sample(), rng);
    }

    Rng rng;
    std::unique_ptr<nn::Sequential> net;
    std::int64_t cut;
    split::SplitModel model;
    Shape act_shape;
    core::NoiseCollection collection;
};

/** One blocking HTTP exchange against the server's listener. */
std::string
http_get(std::uint16_t port, const std::string& target)
{
    net::Socket socket = net::Socket::connect("127.0.0.1", port);
    const std::string request =
        "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    socket.send_all(request.data(), request.size());
    std::string reply;
    char chunk[1024];
    for (;;) {
        const std::size_t n = socket.recv_some(chunk, sizeof chunk);
        if (n == 0) {
            break;  // server closes after one exchange
        }
        reply.append(chunk, n);
    }
    return reply;
}

// ---------------------------------------------------------------------

TEST(Metrics, EscapeLabelValue)
{
    EXPECT_EQ(net::escape_label_value("plain"), "plain");
    EXPECT_EQ(net::escape_label_value("a\\b"), "a\\\\b");
    EXPECT_EQ(net::escape_label_value("a\"b"), "a\\\"b");
    EXPECT_EQ(net::escape_label_value("a\nb"), "a\\nb");
    EXPECT_EQ(net::escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Metrics, ExpositionIsStrictlyWellFormed)
{
    Fixture fx;
    ServingEngineConfig ec;
    ec.shards = 2;
    ec.threads_per_shard = 1;
    ServingEngine engine(ec);
    EndpointConfig ep;
    ep.max_batch = 2;
    ep.batch_timeout_ms = 0.0;
    engine.register_endpoint(
        "replay", fx.model,
        std::make_shared<ReplayPolicy>(fx.collection, 5), ep);
    engine.register_endpoint("clean", fx.model,
                             std::make_shared<NoNoisePolicy>(), ep);
    for (std::uint64_t id = 0; id < 6; ++id) {
        engine.infer("replay", fx.sample_activation());
        engine.infer("clean", fx.sample_activation());
    }

    const std::string text =
        net::render_metrics(engine, net::ServerNetStats{});
    std::vector<Family> families;
    parse_exposition(text, &families);
    if (::testing::Test::HasFatalFailure()) {
        return;
    }
    check_histograms(families);

    // The load-bearing families exist and carry real values.
    std::map<std::string, const Family*> by_name;
    for (const Family& f : families) {
        by_name[f.name] = &f;
    }
    for (const char* required :
         {"shredder_requests_total", "shredder_batches_total",
          "shredder_queue_wait_seconds", "shredder_in_flight",
          "shredder_endpoint_shard_info", "shredder_shard_threads",
          "shredder_rate_limited_total",
          "shredder_admission_rejected_total",
          "shredder_weights_dedupe_bytes_total",
          "shredder_net_connections_accepted_total"}) {
        ASSERT_TRUE(by_name.count(required)) << required;
    }
    double total_requests = 0.0;
    for (const Sample& s : by_name["shredder_requests_total"]->samples) {
        total_requests += s.value;
    }
    EXPECT_EQ(total_requests, 12.0);

    // Both endpoints report a shard; the two shards are both present.
    const Family* placement = by_name["shredder_endpoint_shard_info"];
    ASSERT_EQ(placement->samples.size(), 2u);
    for (const Sample& s : placement->samples) {
        EXPECT_EQ(s.value, 1.0);
        EXPECT_FALSE(label_value(s.labels, "shard").empty());
    }
    EXPECT_EQ(by_name["shredder_shard_threads"]->samples.size(), 2u);
}

TEST(Metrics, CountersAreMonotoneAcrossScrapes)
{
    Fixture fx;
    ServingEngine engine;
    EndpointConfig ep;
    ep.max_batch = 1;
    ep.batch_timeout_ms = 0.0;
    engine.register_endpoint(
        "replay", fx.model,
        std::make_shared<ReplayPolicy>(fx.collection, 5), ep);

    const auto counter_values = [&] {
        std::map<std::string, double> values;
        std::vector<Family> families;
        parse_exposition(
            net::render_metrics(engine, net::ServerNetStats{}),
            &families);
        for (const Family& f : families) {
            if (f.type != "counter" && f.type != "histogram") {
                continue;  // gauges may move either way
            }
            for (const Sample& s : f.samples) {
                values[s.name + "{" + s.labels + "}"] = s.value;
            }
        }
        return values;
    };

    for (std::uint64_t id = 0; id < 3; ++id) {
        engine.infer("replay", fx.sample_activation());
    }
    const std::map<std::string, double> before = counter_values();
    for (std::uint64_t id = 0; id < 5; ++id) {
        engine.infer("replay", fx.sample_activation());
    }
    const std::map<std::string, double> after = counter_values();

    ASSERT_EQ(before.size(), after.size());
    for (const auto& [key, value] : before) {
        ASSERT_TRUE(after.count(key)) << key << " vanished";
        EXPECT_GE(after.at(key), value) << key << " regressed";
    }
    const std::string requests_key =
        "shredder_requests_total{endpoint=\"replay\"}";
    EXPECT_GT(after.at(requests_key), before.at(requests_key));
}

TEST(Metrics, HttpDemuxSharesTheListenerWithShrq)
{
    Fixture fx;
    ServingEngine engine;
    EndpointConfig ep;
    ep.max_batch = 1;
    ep.batch_timeout_ms = 0.0;
    engine.register_endpoint(
        "replay", fx.model,
        std::make_shared<ReplayPolicy>(fx.collection, 5), ep);
    net::Server server(engine);

    // SHRQ before, HTTP in the middle, SHRQ after — one listener.
    net::Client before("127.0.0.1", server.port());
    const Tensor a = fx.sample_activation();
    const Tensor first = before.infer("replay", a, 1);

    const std::string reply = http_get(server.port(), "/metrics");
    ASSERT_TRUE(reply.rfind("HTTP/1.0 200 OK\r\n", 0) == 0) << reply;
    EXPECT_NE(reply.find("Content-Type: text/plain; version=0.0.4"),
              std::string::npos);
    const std::size_t split = reply.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    const std::string header = reply.substr(0, split);
    const std::string body = reply.substr(split + 4);
    const std::string clen = "Content-Length: ";
    const std::size_t at = header.find(clen);
    ASSERT_NE(at, std::string::npos);
    EXPECT_EQ(static_cast<std::size_t>(std::stoul(
                  header.substr(at + clen.size()))),
              body.size());
    std::vector<Family> families;
    parse_exposition(body, &families);
    if (::testing::Test::HasFatalFailure()) {
        return;
    }
    check_histograms(families);

    // The scrape sees its own transport: at least this connection.
    bool saw_http_counter = false;
    for (const Family& f : families) {
        if (f.name == "shredder_net_metrics_requests_total") {
            ASSERT_EQ(f.samples.size(), 1u);
            EXPECT_GE(f.samples[0].value, 1.0);
            saw_http_counter = true;
        }
    }
    EXPECT_TRUE(saw_http_counter);

    // Unknown paths 404 without hurting anyone.
    const std::string missing = http_get(server.port(), "/nope");
    EXPECT_TRUE(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0) == 0);

    // SHRQ still serves, on the old connection and a fresh one.
    const Tensor again = before.infer("replay", a, 1);
    testing::expect_tensors_near(again, first, 0.0,
                                 "same id after scrape");
    net::Client fresh("127.0.0.1", server.port());
    EXPECT_NO_THROW(fresh.infer("replay", fx.sample_activation(), 2));

    const net::ServerNetStats stats = server.stats();
    EXPECT_GE(stats.http_requests, 2);
    EXPECT_GE(stats.metrics_requests, 1);
}

TEST(Metrics, ScrapingUnderLoadDoesNotPerturbResults)
{
    Fixture fx;
    ServingEngineConfig ec;
    ec.shards = 2;
    ec.threads_per_shard = 1;
    ServingEngine engine(ec);
    EndpointConfig ep;
    ep.max_batch = 2;
    ep.batch_timeout_ms = 0.1;
    const std::uint64_t seed = 0xD00D;
    engine.register_endpoint(
        "replay", fx.model,
        std::make_shared<ReplayPolicy>(fx.collection, seed), ep);
    net::Server server(engine);

    constexpr int kRequests = 16;
    std::vector<Tensor> acts;
    for (int i = 0; i < kRequests; ++i) {
        acts.push_back(fx.sample_activation());
    }

    std::vector<Tensor> results(kRequests);
    std::thread load([&] {
        net::Client client("127.0.0.1", server.port());
        for (int i = 0; i < kRequests; ++i) {
            results[static_cast<std::size_t>(i)] =
                client.infer("replay", acts[static_cast<std::size_t>(i)],
                             static_cast<std::uint64_t>(i));
        }
    });
    std::thread scraper([&] {
        for (int i = 0; i < 12; ++i) {
            const std::string reply =
                http_get(server.port(), "/metrics");
            EXPECT_TRUE(reply.rfind("HTTP/1.0 200 OK", 0) == 0);
        }
    });
    load.join();
    scraper.join();

    nn::ExecutionContext ctx;
    for (int i = 0; i < kRequests; ++i) {
        Rng draw_rng(
            noise_seed(seed, static_cast<std::uint64_t>(i)));
        const Tensor want = fx.model.cloud_forward(
            ops::add(acts[static_cast<std::size_t>(i)],
                     fx.collection.draw(draw_rng).noise)
                .reshaped(fx.act_shape),
            ctx, nn::Mode::kEval);
        testing::expect_tensors_near(
            results[static_cast<std::size_t>(i)],
            want.reshaped(results[static_cast<std::size_t>(i)].shape()),
            0.0,
            ("scraped-under-load request " + std::to_string(i))
                .c_str());
    }

    // The final scrape is still perfectly well-formed.
    const std::string reply = http_get(server.port(), "/metrics");
    const std::size_t split = reply.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    std::vector<Family> families;
    parse_exposition(reply.substr(split + 4), &families);
    check_histograms(families);
}

}  // namespace
}  // namespace shredder
