/** @file Tests for the model zoo and pre-training harness. */
#include <gtest/gtest.h>

#include "src/data/digits.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/split/split_model.h"

namespace shredder {
namespace {

using nn::Mode;

TEST(Zoo, LeNetShapes)
{
    Rng rng(1);
    auto net = models::make_lenet(rng);
    EXPECT_EQ(net->output_shape(Shape({4, 1, 28, 28})), Shape({4, 10}));
    // Last-conv activation is 120×1×1.
    const auto cuts = split::conv_cut_points(*net);
    split::SplitModel sm(*net, cuts.back());
    EXPECT_EQ(sm.activation_shape(Shape({1, 28, 28})),
              Shape({1, 120, 1, 1}));
}

TEST(Zoo, CifarShapes)
{
    Rng rng(2);
    auto net = models::make_cifar_net(rng);
    EXPECT_EQ(net->output_shape(Shape({2, 3, 32, 32})), Shape({2, 10}));
}

TEST(Zoo, SvhnShapesAndBottleneck)
{
    Rng rng(3);
    auto net = models::make_svhn_net(rng);
    EXPECT_EQ(net->output_shape(Shape({2, 3, 32, 32})), Shape({2, 10}));
    const auto cuts = split::conv_cut_points(*net);
    ASSERT_EQ(cuts.size(), 7u);
    split::SplitModel conv0(*net, cuts[0]);
    split::SplitModel conv6(*net, cuts[6]);
    const auto a0 = conv0.activation_shape(Shape({3, 32, 32}));
    const auto a6 = conv6.activation_shape(Shape({3, 32, 32}));
    EXPECT_GT(a0.numel(), 10 * a6.numel());  // §3.4 bottleneck property
}

TEST(Zoo, AlexnetShapes)
{
    Rng rng(4);
    auto net = models::make_alexnet(rng, 16);
    EXPECT_EQ(net->output_shape(Shape({1, 3, 64, 64})), Shape({1, 16}));
    // Has LRN layers like the original.
    int lrn_count = 0;
    for (std::int64_t i = 0; i < net->size(); ++i) {
        if (net->layer(i).kind() == "lrn") {
            ++lrn_count;
        }
    }
    EXPECT_EQ(lrn_count, 2);
}

TEST(Zoo, MakeNetworkByName)
{
    Rng rng(5);
    for (const char* name : {"lenet", "cifar", "svhn", "alexnet"}) {
        auto net = models::make_network(name, rng);
        EXPECT_GT(net->size(), 5) << name;
        const Shape in = models::input_shape_for(name);
        EXPECT_EQ(in.rank(), 3) << name;
    }
}

TEST(Zoo, UnknownNameIsFatal)
{
    Rng rng(6);
    EXPECT_EXIT(models::make_network("resnet", rng),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(Zoo, NoiseParamsAreTinyFractionOfModel)
{
    // Table 1 row "Shredder's Learnable Params over Model Size" < 1%.
    Rng rng(7);
    auto net = models::make_alexnet(rng);
    const auto cuts = split::conv_cut_points(*net);
    split::SplitModel sm(*net, cuts.back());
    const auto act = sm.activation_shape(Shape({3, 64, 64}));
    const double ratio = static_cast<double>(act.numel()) /
                         static_cast<double>(net->num_parameters());
    EXPECT_LT(ratio, 0.02);
}

TEST(Trainer, LearnsDigitsAboveChance)
{
    // Tiny training budget: just verify learning happens end to end.
    Rng rng(8);
    auto net = models::make_lenet(rng);
    data::DigitsConfig train_cfg;
    train_cfg.count = 512;
    train_cfg.seed = 100;
    data::DigitsDataset train(train_cfg);
    data::DigitsConfig test_cfg;
    test_cfg.count = 128;
    test_cfg.seed = 200;
    data::DigitsDataset test(test_cfg);

    models::TrainConfig cfg;
    cfg.max_epochs = 2;
    cfg.verbose = false;
    Rng train_rng(9);
    const auto report =
        models::train_model(*net, train, test, cfg, train_rng);
    EXPECT_GT(report.test_accuracy, 0.5);  // chance is 0.1
    EXPECT_GT(report.epochs_run, 0.0);
}

TEST(Trainer, EvaluateAccuracyBounds)
{
    Rng rng(10);
    auto net = models::make_lenet(rng);
    data::DigitsConfig cfg;
    cfg.count = 64;
    data::DigitsDataset ds(cfg);
    const double acc = models::evaluate_accuracy(*net, ds, 64);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace shredder
