/**
 * @file
 * Tests for the activation wire codec: per-tensor affine quantization
 * (src/tensor/quantize.h), the SHRT v2 quantized tensor format
 * (src/tensor/serialize.h) and the int8 GEMM micro-kernel
 * (src/tensor/gemm.h).
 */
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/gemm.h"
#include "src/tensor/quantize.h"
#include "src/tensor/rng.h"
#include "src/tensor/serialize.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace {

// ---------------------------------------------------------------- codec

TEST(Quantize, DtypeSpellingRoundTrips)
{
    EXPECT_STREQ(to_string(WireDtype::kF32), "fp32");
    EXPECT_STREQ(to_string(WireDtype::kI8), "int8");
    EXPECT_STREQ(to_string(WireDtype::kI16), "int16");
    WireDtype d = WireDtype::kF32;
    EXPECT_TRUE(parse_wire_dtype("int8", &d));
    EXPECT_EQ(d, WireDtype::kI8);
    EXPECT_TRUE(parse_wire_dtype("int16", &d));
    EXPECT_EQ(d, WireDtype::kI16);
    EXPECT_TRUE(parse_wire_dtype("fp32", &d));
    EXPECT_EQ(d, WireDtype::kF32);
    // Aliases accepted on purpose (CLI ergonomics).
    EXPECT_TRUE(parse_wire_dtype("float32", &d));
    EXPECT_EQ(d, WireDtype::kF32);
    d = WireDtype::kI16;
    EXPECT_FALSE(parse_wire_dtype("int4", &d));
    EXPECT_FALSE(parse_wire_dtype("", &d));
    EXPECT_FALSE(parse_wire_dtype("INT8", &d));
    EXPECT_EQ(d, WireDtype::kI16) << "failed parse must not write";
}

TEST(Quantize, RoundTripErrorWithinHalfScale)
{
    Rng rng(11);
    for (const WireDtype dtype : {WireDtype::kI8, WireDtype::kI16}) {
        const Tensor x = Tensor::normal(Shape({3, 17, 5}), rng);
        const QuantizedTensor q = quantize(x, dtype);
        EXPECT_EQ(q.dtype, dtype);
        EXPECT_GT(q.scale, 0.0f);
        const Tensor y = dequantize(q);
        ASSERT_EQ(y.shape(), x.shape());
        for (std::int64_t i = 0; i < x.size(); ++i) {
            EXPECT_LE(std::abs(y[i] - x[i]), q.scale * 0.5f + 1e-7f)
                << to_string(dtype) << " element " << i;
        }
    }
}

TEST(Quantize, Int16IsFinerThanInt8)
{
    Rng rng(12);
    const Tensor x = Tensor::normal(Shape({256}), rng);
    const QuantizedTensor q8 = quantize(x, WireDtype::kI8);
    const QuantizedTensor q16 = quantize(x, WireDtype::kI16);
    EXPECT_LT(q16.scale, q8.scale / 100.0f);
}

TEST(Quantize, AllEqualTensorRoundTripsExactly)
{
    const Tensor x(Shape({7}), 3.25f);
    for (const WireDtype dtype : {WireDtype::kI8, WireDtype::kI16}) {
        const Tensor y = dequantize(quantize(x, dtype));
        for (std::int64_t i = 0; i < x.size(); ++i) {
            EXPECT_EQ(y[i], 3.25f) << to_string(dtype);
        }
    }
}

TEST(Quantize, NonFiniteInputsProduceNanFreeOutput)
{
    Tensor x = Tensor::from_vector(
        {-1.0f, 1.0f, std::numeric_limits<float>::quiet_NaN(),
         std::numeric_limits<float>::infinity(),
         -std::numeric_limits<float>::infinity()});
    const QuantizedTensor q = quantize(x, WireDtype::kI8);
    const Tensor y = dequantize(q);
    for (std::int64_t i = 0; i < y.size(); ++i) {
        EXPECT_TRUE(std::isfinite(y[i])) << "element " << i;
    }
    // Range comes from the finite elements only; the infinities
    // saturate to it and NaN lands on the zero point (≈ 0).
    EXPECT_NEAR(y[0], -1.0f, q.scale);
    EXPECT_NEAR(y[1], 1.0f, q.scale);
    EXPECT_NEAR(y[2], 0.0f, q.scale);
    EXPECT_NEAR(y[3], 1.0f, q.scale);
    EXPECT_NEAR(y[4], -1.0f, q.scale);
}

TEST(Quantize, Fp32PayloadIsRawImage)
{
    Rng rng(13);
    const Tensor x = Tensor::normal(Shape({9}), rng);
    const QuantizedTensor q = quantize(x, WireDtype::kF32);
    ASSERT_EQ(q.data.size(), static_cast<std::size_t>(x.size()) * 4);
    EXPECT_EQ(std::memcmp(q.f32(), x.data(), q.data.size()), 0);
    const Tensor y = dequantize(q);
    for (std::int64_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(y[i], x[i]);
    }
}

// ----------------------------------------------------------- SHRT wire

/** Serialize a quantized tensor to bytes. */
std::string
wire_bytes(const QuantizedTensor& q)
{
    std::ostringstream oss(std::ios::binary);
    write_tensor_wire(oss, q);
    return oss.str();
}

TEST(SerializeWire, Fp32BytesAreBitIdenticalToV1)
{
    Rng rng(21);
    const Tensor x = Tensor::normal(Shape({4, 3}), rng);
    std::ostringstream v1(std::ios::binary);
    write_tensor(v1, x);
    EXPECT_EQ(wire_bytes(quantize(x, WireDtype::kF32)), v1.str());
}

TEST(SerializeWire, V1BytesDecodeAsF32)
{
    Rng rng(22);
    const Tensor x = Tensor::normal(Shape({2, 5}), rng);
    std::ostringstream os(std::ios::binary);
    write_tensor(os, x);
    std::istringstream is(os.str(), std::ios::binary);
    const QuantizedTensor q = read_tensor_wire_checked(is);
    EXPECT_EQ(q.dtype, WireDtype::kF32);
    EXPECT_EQ(q.shape, x.shape());
    const Tensor y = dequantize(q);
    for (std::int64_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(y[i], x[i]);
    }
}

TEST(SerializeWire, QuantizedRoundTripPreservesCodeAndPayload)
{
    Rng rng(23);
    for (const WireDtype dtype : {WireDtype::kI8, WireDtype::kI16}) {
        const Tensor x = Tensor::normal(Shape({2, 3, 4}), rng);
        const QuantizedTensor q = quantize(x, dtype);
        std::istringstream is(wire_bytes(q), std::ios::binary);
        const QuantizedTensor r = read_tensor_wire_checked(is);
        EXPECT_EQ(r.dtype, q.dtype);
        EXPECT_EQ(r.shape, q.shape);
        EXPECT_EQ(r.scale, q.scale);
        EXPECT_EQ(r.zero_point, q.zero_point);
        EXPECT_EQ(r.data, q.data);
    }
}

TEST(SerializeWire, SerializedSizeMatchesActualBytes)
{
    Rng rng(24);
    for (const WireDtype dtype :
         {WireDtype::kF32, WireDtype::kI8, WireDtype::kI16}) {
        for (const Shape& shape :
             {Shape({120, 1, 1}), Shape({6}), Shape({2, 3, 4, 5})}) {
            const Tensor x = Tensor::normal(shape, rng);
            EXPECT_EQ(static_cast<std::int64_t>(
                          wire_bytes(quantize(x, dtype)).size()),
                      serialized_wire_size(shape, dtype))
                << to_string(dtype) << " " << shape.to_string();
        }
    }
}

TEST(SerializeWire, SizeFormulaPins)
{
    // The normative byte layouts (docs/DEPLOYMENT.md): v1 is
    // 8 + 8·rank + 4·numel, v2 is 18 + 4·rank + numel·dtype_bytes.
    const Shape act({120, 1, 1});
    EXPECT_EQ(serialized_wire_size(act, WireDtype::kF32), 512);
    EXPECT_EQ(serialized_wire_size(act, WireDtype::kI8), 150);
    EXPECT_EQ(serialized_wire_size(act, WireDtype::kI16), 270);
    // The headline claim: ≥ 3× fewer bytes for int8 transport.
    EXPECT_GE(serialized_wire_size(act, WireDtype::kF32),
              3 * serialized_wire_size(act, WireDtype::kI8));
}

/** Expect read_tensor_wire_checked to throw on `bytes`. */
void
expect_rejected(std::string bytes, const char* why)
{
    std::istringstream is(std::move(bytes), std::ios::binary);
    EXPECT_THROW(read_tensor_wire_checked(is), SerializeError) << why;
}

TEST(SerializeWire, MalformedHeaderRejectionSweep)
{
    Rng rng(25);
    const Tensor x = Tensor::normal(Shape({3, 4}), rng);
    const std::string good = wire_bytes(quantize(x, WireDtype::kI8));
    // Offsets into the v2 header: magic u32, marker u32, dtype u8,
    // scale f32, zpoint u32, rank u8, dims u32 × rank.
    constexpr std::size_t kDtypeOff = 8;
    constexpr std::size_t kScaleOff = 9;
    constexpr std::size_t kZpointOff = 13;
    constexpr std::size_t kRankOff = 17;

    {
        std::string bad = good;
        bad[0] ^= 0x01;
        expect_rejected(bad, "corrupt magic");
    }
    {
        // fp32 must never appear under the v2 marker — canonical fp32
        // bytes are the v1 header.
        std::string bad = good;
        bad[kDtypeOff] = 0;
        expect_rejected(bad, "dtype code 0 in a v2 header");
    }
    for (const int code : {3, 7, 255}) {
        std::string bad = good;
        bad[kDtypeOff] = static_cast<char>(code);
        expect_rejected(bad, "unknown dtype code");
    }
    for (const float scale : {0.0f, -1.0f,
                              std::numeric_limits<float>::quiet_NaN(),
                              std::numeric_limits<float>::infinity()}) {
        std::string bad = good;
        std::memcpy(&bad[kScaleOff], &scale, sizeof(scale));
        expect_rejected(bad, "bad scale");
    }
    {
        const std::uint32_t zp = 4096;  // outside int8's [-128, 127]
        std::string bad = good;
        std::memcpy(&bad[kZpointOff], &zp, sizeof(zp));
        expect_rejected(bad, "zero point outside dtype range");
    }
    {
        std::string bad = good;
        bad[kRankOff] = 9;
        expect_rejected(bad, "bad rank");
    }
    {
        std::string bad = good;
        const std::uint32_t dim0 = 0;
        std::memcpy(&bad[kRankOff + 1], &dim0, sizeof(dim0));
        expect_rejected(bad, "zero dim");
    }
    // Truncation at every byte must throw, never crash or return.
    for (std::size_t len = 0; len < good.size(); ++len) {
        expect_rejected(good.substr(0, len), "truncated stream");
    }
    EXPECT_NO_THROW({
        std::istringstream is(good, std::ios::binary);
        read_tensor_wire_checked(is);
    });
}

// ------------------------------------------------------------ int8 GEMM

/** fp32 reference: C = op(A)·Bᵀ + bias with row-wise noise on A. */
std::vector<float>
reference_gemm(const std::vector<float>& a, const std::vector<float>& b,
               const std::vector<float>& noise, const float* bias,
               std::int64_t m, std::int64_t n, std::int64_t k)
{
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            float acc = bias != nullptr ? bias[j] : 0.0f;
            for (std::int64_t p = 0; p < k; ++p) {
                const float x =
                    a[static_cast<std::size_t>(i * k + p)] +
                    (noise.empty()
                         ? 0.0f
                         : noise[static_cast<std::size_t>(i * k + p)]);
                acc += x * b[static_cast<std::size_t>(j * k + p)];
            }
            c[static_cast<std::size_t>(i * n + j)] = acc;
        }
    }
    return c;
}

/**
 * Quantize per-row activations, run gemm_s8, and compare against the
 * fp32 reference within the codec's error budget: each inner-product
 * term carries O(a_scale + b_scale) rounding, so the bound scales with
 * k and the operand magnitudes.
 */
void
check_gemm_s8(std::int64_t m, std::int64_t n, std::int64_t k,
              bool with_noise, bool with_bias, std::uint64_t seed)
{
    Rng rng(seed);
    const Tensor a = Tensor::normal(Shape({m, k}), rng);
    const Tensor b = Tensor::normal(Shape({n, k}), rng);
    const Tensor noise =
        with_noise ? Tensor::normal(Shape({m, k}), rng) : Tensor();
    const Tensor bias = with_bias ? Tensor::normal(Shape({n}), rng)
                                  : Tensor();

    const S8Weights w = prepare_s8_weights(b.data(), n, k);

    std::vector<QuantizedTensor> rows;
    std::vector<const std::int8_t*> a_rows;
    std::vector<float> a_scale;
    std::vector<std::int32_t> a_zp;
    std::vector<const float*> a_noise;
    for (std::int64_t i = 0; i < m; ++i) {
        Tensor row(Shape({k}));
        std::memcpy(row.data(), a.data() + i * k,
                    static_cast<std::size_t>(k) * sizeof(float));
        rows.push_back(quantize(row, WireDtype::kI8));
    }
    for (std::int64_t i = 0; i < m; ++i) {
        a_rows.push_back(rows[static_cast<std::size_t>(i)].i8());
        a_scale.push_back(rows[static_cast<std::size_t>(i)].scale);
        a_zp.push_back(rows[static_cast<std::size_t>(i)].zero_point);
        a_noise.push_back(with_noise ? noise.data() + i * k : nullptr);
    }

    std::vector<float> c(static_cast<std::size_t>(m * n), -777.0f);
    gemm_s8(m, n, k, a_rows.data(), a_scale.data(), a_zp.data(),
            with_noise ? a_noise.data() : nullptr, w.data.data(),
            w.scale, w.colsum.data(),
            with_bias ? bias.data() : nullptr, c.data());

    std::vector<float> noise_vec;
    if (with_noise) {
        noise_vec.assign(noise.data(), noise.data() + m * k);
    }
    const std::vector<float> ref = reference_gemm(
        {a.data(), a.data() + m * k}, {b.data(), b.data() + n * k},
        noise_vec, with_bias ? bias.data() : nullptr, m, n, k);

    // Per-element budget: k terms, each within one rounding step of
    // the activation grid times |w| plus one step of the weight grid
    // times |a|. ~4σ operand magnitude makes the bound comfortable
    // without being vacuous.
    float max_scale = 0.0f;
    for (const float s : a_scale) {
        max_scale = std::max(max_scale, s);
    }
    const double tol =
        static_cast<double>(k) *
        (static_cast<double>(max_scale) * 4.0 +
         static_cast<double>(w.scale) * (with_noise ? 8.0 : 4.0));
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i], ref[i], tol)
            << "m=" << m << " n=" << n << " k=" << k
            << " noise=" << with_noise << " bias=" << with_bias
            << " element " << i;
    }
}

TEST(GemmS8, MatchesFp32ReferenceAcrossShapes)
{
    std::uint64_t seed = 31;
    // Grid crosses the kernel's blocking edges: k not a multiple of
    // the SIMD width, single row/column, and a LeNet-sized case.
    for (const auto& [m, n, k] :
         {std::tuple<int, int, int>{1, 1, 1}, {1, 10, 120}, {3, 7, 33},
          {8, 84, 120}, {5, 2, 257}}) {
        check_gemm_s8(m, n, k, false, false, seed++);
        check_gemm_s8(m, n, k, true, true, seed++);
    }
}

TEST(GemmS8, FusedNoiseMatchesDequantizedPath)
{
    check_gemm_s8(4, 16, 64, true, false, 77);
    check_gemm_s8(4, 16, 64, false, true, 78);
}

TEST(GemmS8, NanNoiseIsDroppedNotPropagated)
{
    const std::int64_t k = 8;
    Rng rng(79);
    const Tensor a = Tensor::normal(Shape({k}), rng);
    const Tensor b = Tensor::normal(Shape({1, k}), rng);
    const S8Weights w = prepare_s8_weights(b.data(), 1, k);
    const QuantizedTensor qa = quantize(a, WireDtype::kI8);

    std::vector<float> noise(static_cast<std::size_t>(k), 0.0f);
    noise[3] = std::numeric_limits<float>::quiet_NaN();
    const std::int8_t* a_rows[] = {qa.i8()};
    const float a_scale[] = {qa.scale};
    const std::int32_t a_zp[] = {qa.zero_point};
    const float* a_noise[] = {noise.data()};
    float c = std::numeric_limits<float>::quiet_NaN();
    gemm_s8(1, 1, k, a_rows, a_scale, a_zp, a_noise, w.data.data(),
            w.scale, w.colsum.data(), nullptr, &c);
    EXPECT_TRUE(std::isfinite(c));
}

TEST(GemmS8, WeightQuantizationIsSymmetric)
{
    Rng rng(80);
    const std::int64_t n = 6;
    const std::int64_t k = 10;
    const Tensor b = Tensor::normal(Shape({n, k}), rng);
    const S8Weights w = prepare_s8_weights(b.data(), n, k);
    ASSERT_EQ(w.data.size(), static_cast<std::size_t>(n * k));
    ASSERT_EQ(w.colsum.size(), static_cast<std::size_t>(n));
    float maxabs = 0.0f;
    for (std::int64_t i = 0; i < n * k; ++i) {
        maxabs = std::max(maxabs, std::abs(b.data()[i]));
        EXPECT_LE(std::abs(w.scale *
                           static_cast<float>(
                               w.data[static_cast<std::size_t>(i)]) -
                           b.data()[i]),
                  w.scale * 0.5f + 1e-7f);
    }
    EXPECT_NEAR(w.scale, maxabs / 127.0f, 1e-6f);
    for (std::int64_t j = 0; j < n; ++j) {
        std::int32_t sum = 0;
        for (std::int64_t p = 0; p < k; ++p) {
            sum += w.data[static_cast<std::size_t>(j * k + p)];
        }
        EXPECT_EQ(w.colsum[static_cast<std::size_t>(j)], sum);
    }
}

}  // namespace
}  // namespace shredder
