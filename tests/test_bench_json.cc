/**
 * @file
 * Self-checks for the benchmark harness plumbing: every `JsonWriter`
 * document must round-trip through the `JsonValidator` parser (a
 * comma or escaping bug in the writer should fail here, not corrupt
 * the BENCH_*.json perf trajectory), and the `LatencyHistogram`
 * percentiles the open-loop benches report must be exact on known
 * sample sets.
 */
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace shredder {
namespace {

using bench::JsonValidator;
using bench::JsonWriter;
using bench::LatencyHistogram;

// -- JsonWriter → JsonValidator round trip --------------------------------

TEST(BenchJson, WriterOutputIsValidJson)
{
    // The shape a BENCH_server.json v3 point uses: nested objects,
    // arrays of numbers, strings, bools, negative and fractional
    // values.
    JsonWriter json;
    json.begin_object();
    json.key("schema");
    json.value("shredder-server-v3");
    json.key("fast_mode");
    json.value(false);
    json.key("hw_threads");
    json.value(static_cast<std::int64_t>(8));
    json.key("window_ms");
    json.value(2.0);
    json.key("points");
    json.begin_array();
    for (int i = 0; i < 3; ++i) {
        json.begin_object();
        json.key("target_qps");
        json.value(1000.0 * (i + 1));
        json.key("p95_ms");
        json.value(0.125 * i);
        json.key("delta");
        json.value(-1.5);
        json.key("latency_log2_buckets_ms");
        json.begin_array();
        for (int b = 0; b < 4; ++b) {
            json.value(static_cast<std::int64_t>(b * 10));
        }
        json.end_array();
        json.end_object();
    }
    json.end_array();
    json.end_object();

    EXPECT_TRUE(JsonValidator::valid(json.str())) << json.str();
}

TEST(BenchJson, EscapedStringsSurviveTheParser)
{
    JsonWriter json;
    json.begin_object();
    json.key("compiler");
    json.value("g++ \"12.2\" \\ special");
    json.key("empty");
    json.value("");
    json.end_object();
    EXPECT_TRUE(JsonValidator::valid(json.str())) << json.str();
}

TEST(BenchJson, NonFiniteNumbersBecomeNull)
{
    JsonWriter json;
    json.begin_object();
    json.key("nan");
    json.value(std::nan(""));
    json.key("inf");
    json.value(std::numeric_limits<double>::infinity());
    json.end_object();
    // NaN/Inf are not JSON; the writer must emit null, and the
    // validator must accept the result.
    EXPECT_NE(json.str().find("null"), std::string::npos);
    EXPECT_TRUE(JsonValidator::valid(json.str())) << json.str();
}

TEST(BenchJson, ValidatorAcceptsCanonicalDocuments)
{
    EXPECT_TRUE(JsonValidator::valid("{}"));
    EXPECT_TRUE(JsonValidator::valid("[]"));
    EXPECT_TRUE(JsonValidator::valid("  {\"a\": [1, 2.5, -3e4]}  "));
    EXPECT_TRUE(JsonValidator::valid("{\"a\": {\"b\": [true, false, "
                                     "null, \"x\"]}}"));
    EXPECT_TRUE(JsonValidator::valid("42"));
    EXPECT_TRUE(JsonValidator::valid("\"just a string\""));
}

TEST(BenchJson, ValidatorRejectsMalformedDocuments)
{
    EXPECT_FALSE(JsonValidator::valid(""));
    EXPECT_FALSE(JsonValidator::valid("{"));
    EXPECT_FALSE(JsonValidator::valid("{\"a\":}"));
    EXPECT_FALSE(JsonValidator::valid("{\"a\": 1,}"));
    EXPECT_FALSE(JsonValidator::valid("{\"a\" 1}"));
    EXPECT_FALSE(JsonValidator::valid("{a: 1}"));
    EXPECT_FALSE(JsonValidator::valid("[1, 2"));
    EXPECT_FALSE(JsonValidator::valid("[1 2]"));
    EXPECT_FALSE(JsonValidator::valid("{} trailing"));
    EXPECT_FALSE(JsonValidator::valid("\"unterminated"));
    EXPECT_FALSE(JsonValidator::valid("nulll"));
    EXPECT_FALSE(JsonValidator::valid("--3"));
}

// -- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogram, NearestRankPercentilesAreExact)
{
    LatencyHistogram hist;
    // 1..100 ms, inserted shuffled-ish (record order must not matter).
    for (int i = 100; i >= 1; --i) {
        hist.record(static_cast<double>(i));
    }
    EXPECT_EQ(hist.count(), 100);
    EXPECT_DOUBLE_EQ(hist.percentile_ms(0.50), 50.0);
    EXPECT_DOUBLE_EQ(hist.percentile_ms(0.95), 95.0);
    EXPECT_DOUBLE_EQ(hist.percentile_ms(0.99), 99.0);
    EXPECT_DOUBLE_EQ(hist.percentile_ms(1.00), 100.0);
    EXPECT_DOUBLE_EQ(hist.percentile_ms(0.0), 1.0);  // clamped to rank 1
    EXPECT_DOUBLE_EQ(hist.max_ms(), 100.0);
    EXPECT_DOUBLE_EQ(hist.mean_ms(), 50.5);
}

TEST(LatencyHistogram, EmptyHistogramIsAllZero)
{
    const LatencyHistogram hist;
    EXPECT_EQ(hist.count(), 0);
    EXPECT_DOUBLE_EQ(hist.percentile_ms(0.95), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean_ms(), 0.0);
    EXPECT_DOUBLE_EQ(hist.max_ms(), 0.0);
}

TEST(LatencyHistogram, Log2BucketsCoverEverySample)
{
    LatencyHistogram hist;
    hist.record(0.5);    // bucket 0 (≤ 1 ms)
    hist.record(1.0);    // bucket 0 (boundary inclusive)
    hist.record(1.5);    // bucket 1 (≤ 2 ms)
    hist.record(100.0);  // bucket 7 (≤ 128 ms)
    hist.record(1e9);    // overflow → last bucket
    const std::vector<std::int64_t> buckets = hist.log2_buckets(10);
    ASSERT_EQ(buckets.size(), 10u);
    EXPECT_EQ(buckets[0], 2);
    EXPECT_EQ(buckets[1], 1);
    EXPECT_EQ(buckets[7], 1);
    EXPECT_EQ(buckets[9], 1);
    std::int64_t total = 0;
    for (const std::int64_t b : buckets) {
        total += b;
    }
    EXPECT_EQ(total, hist.count());
}

TEST(LatencyHistogram, MergeCombinesSampleSets)
{
    LatencyHistogram a, b;
    a.record(1.0);
    a.record(2.0);
    b.record(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3);
    EXPECT_DOUBLE_EQ(a.percentile_ms(1.0), 3.0);
}

}  // namespace
}  // namespace shredder
