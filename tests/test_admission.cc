/**
 * @file
 * Admission-control suite: token-bucket refill math on a fake clock,
 * typed `kAdmissionReject`/`kRateLimited` backpressure that never
 * disturbs admitted work, the same codes over TCP (`WireStatus`),
 * and decoder hardening for the new status values (out-of-range and
 * truncated response payloads stay typed protocol errors).
 */
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/models/zoo.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/runtime/admission.h"
#include "src/runtime/inference_server.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_engine.h"
#include "src/runtime/thread_pool.h"
#include "src/split/split_model.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::EndpointConfig;
using runtime::InferenceServer;
using runtime::InferenceServerConfig;
using runtime::NoNoisePolicy;
using runtime::ServingEngine;
using runtime::ServingEngineConfig;
using runtime::ServingError;
using runtime::ServingErrorCode;
using runtime::TokenBucket;

/** One LeNet cut at the last conv point. */
struct Fixture
{
    explicit Fixture(std::uint64_t seed = 77)
        : rng(seed), net(models::make_lenet(rng)),
          cut(split::conv_cut_points(*net).back()), model(*net, cut),
          act_shape(model.activation_shape(Shape({1, 28, 28})))
    {
    }

    Shape
    per_sample() const
    {
        return Shape({act_shape[1], act_shape[2], act_shape[3]});
    }

    Tensor
    sample_activation()
    {
        return Tensor::normal(per_sample(), rng);
    }

    Rng rng;
    std::unique_ptr<nn::Sequential> net;
    std::int64_t cut;
    split::SplitModel model;
    Shape act_shape;
};

/** Expect `future` to fail with a specific `ServingError` code. */
void
expect_code(std::future<Tensor>& future, ServingErrorCode expected)
{
    try {
        future.get();
        ADD_FAILURE() << "expected ServingError "
                      << runtime::to_string(expected);
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), expected) << e.what();
    } catch (const std::exception& e) {
        ADD_FAILURE() << "expected ServingError, got " << e.what();
    }
}

// ---------------------------------------------------------------------
// Token-bucket refill math (fake clock — no timing in these tests)
// ---------------------------------------------------------------------

TEST(TokenBucket, ColdBurstThenRefillAtQps)
{
    TokenBucket bucket(2.0, 4.0);  // 2 tokens/s, capacity 4
    EXPECT_TRUE(bucket.enabled());
    EXPECT_DOUBLE_EQ(bucket.burst(), 4.0);

    // First arrival pins the origin with a full bucket: the cold
    // burst admits exactly `burst` requests.
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(bucket.try_take(1000.0)) << "cold take " << i;
    }
    EXPECT_FALSE(bucket.try_take(1000.0));

    // 500 ms at 2 qps refills exactly one token.
    EXPECT_TRUE(bucket.try_take(1500.0));
    EXPECT_FALSE(bucket.try_take(1500.0));

    // 250 ms refills half a token — not enough for an admit; the
    // fraction carries so the next 250 ms completes it.
    EXPECT_FALSE(bucket.try_take(1750.0));
    EXPECT_TRUE(bucket.try_take(2000.0));
}

TEST(TokenBucket, RefillCapsAtBurstAndClockNeverRunsBackwards)
{
    TokenBucket bucket(10.0, 3.0);
    EXPECT_TRUE(bucket.try_take(0.0));  // origin pinned, 2 left
    // An hour of idleness refills to the cap, not beyond it.
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(bucket.try_take(3.6e6)) << "capped take " << i;
    }
    EXPECT_FALSE(bucket.try_take(3.6e6));
    // Time moving backwards clamps to "no refill" instead of going
    // negative (a clock hiccup must not mint tokens); the hiccup
    // rebases the origin, so only time elapsed AFTER it refills.
    EXPECT_FALSE(bucket.try_take(1.0e6));
    EXPECT_FALSE(bucket.try_take(1.0e6 + 50.0));  // 50 ms = 0.5 tokens
    EXPECT_TRUE(bucket.try_take(1.0e6 + 100.0));  // 100 ms = 1 token
}

TEST(TokenBucket, BurstDefaultsToOneSecondOfAllowanceAtLeastOne)
{
    EXPECT_DOUBLE_EQ(TokenBucket(5.0).burst(), 5.0);
    EXPECT_DOUBLE_EQ(TokenBucket(0.5).burst(), 1.0);
    EXPECT_DOUBLE_EQ(TokenBucket(8.0, 2.0).burst(), 2.0);
}

TEST(TokenBucket, DisabledBucketAlwaysAdmits)
{
    TokenBucket bucket;  // qps 0 = no limit configured
    EXPECT_FALSE(bucket.enabled());
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(bucket.try_take(0.0));
    }
}

// ---------------------------------------------------------------------
// Server-level admission: typed rejects, admitted work untouched
// ---------------------------------------------------------------------

TEST(Admission, InFlightCapRejectsBeforeBurningTokens)
{
    // A deliberately-wedged one-thread pool holds the first request
    // in flight, making every admission decision deterministic. The
    // cap is checked BEFORE the bucket, so cap rejections must not
    // consume rate tokens.
    Fixture fx;
    NoNoisePolicy policy;
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    pool.submit([opened] { opened.wait(); });

    InferenceServerConfig cfg;
    cfg.pool = &pool;
    cfg.max_batch = 1;
    cfg.batch_timeout_ms = 0.0;
    cfg.max_in_flight = 1;
    cfg.rate_limit_qps = 0.0001;  // ~1 token per 3 hours: no refill
    cfg.rate_limit_burst = 2.0;
    InferenceServer server(fx.model, policy, cfg);

    auto f1 = server.submit(fx.sample_activation(), 1);  // token 1 of 2
    auto f2 = server.submit(fx.sample_activation(), 2);  // over the cap
    expect_code(f2, ServingErrorCode::kAdmissionReject);
    EXPECT_EQ(server.stats().admission_rejected, 1);

    gate.set_value();
    EXPECT_NO_THROW(f1.get()) << "admitted work must complete";

    // Wait for the in-flight gauge to settle (the decrement lands
    // just after the promise is fulfilled).
    for (int spin = 0; spin < 2000 && server.stats().in_flight != 0;
         ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(server.stats().in_flight, 0);

    // The cap rejection did not burn a token: the second (and last)
    // token is still there, and only THEN does the bucket run dry.
    auto f3 = server.submit(fx.sample_activation(), 3);
    EXPECT_NO_THROW(f3.get());
    auto f4 = server.submit(fx.sample_activation(), 4);
    expect_code(f4, ServingErrorCode::kRateLimited);
    EXPECT_EQ(server.stats().rate_limited, 1);
    EXPECT_EQ(server.stats().admission_rejected, 1);
}

TEST(Admission, EngineRateLimitIsTypedAndOtherEndpointsKeepServing)
{
    Fixture fx;
    ServingEngineConfig ec;
    ec.num_workers = 1;
    ServingEngine engine(ec);
    EndpointConfig limited;
    limited.max_batch = 1;
    limited.batch_timeout_ms = 0.0;
    limited.rate_limit_qps = 0.0001;
    limited.rate_limit_burst = 2.0;
    engine.register_endpoint("limited", fx.model,
                             std::make_shared<NoNoisePolicy>(), limited);
    EndpointConfig open;
    open.max_batch = 1;
    open.batch_timeout_ms = 0.0;
    engine.register_endpoint("open", fx.model,
                             std::make_shared<NoNoisePolicy>(), open);

    auto f1 = engine.submit("limited", fx.sample_activation(), 1);
    auto f2 = engine.submit("limited", fx.sample_activation(), 2);
    auto f3 = engine.submit("limited", fx.sample_activation(), 3);
    EXPECT_NO_THROW(f1.get());
    EXPECT_NO_THROW(f2.get());
    expect_code(f3, ServingErrorCode::kRateLimited);

    // Backpressure on one endpoint is invisible to its neighbors and
    // to later traffic on the same engine.
    for (std::uint64_t id = 0; id < 4; ++id) {
        auto f = engine.submit("open", fx.sample_activation(), id);
        EXPECT_NO_THROW(f.get());
    }
    EXPECT_EQ(engine.stats("limited").rate_limited, 1);
    EXPECT_EQ(engine.stats("open").rate_limited, 0);
    EXPECT_EQ(engine.stats().rate_limited, 1);
}

// ---------------------------------------------------------------------
// The wire: new WireStatus values end-to-end and decoder hardening
// ---------------------------------------------------------------------

TEST(Admission, RateLimitedCrossesTheWireTyped)
{
    Fixture fx;
    ServingEngine engine;
    EndpointConfig limited;
    limited.max_batch = 1;
    limited.batch_timeout_ms = 0.0;
    limited.rate_limit_qps = 0.0001;
    limited.rate_limit_burst = 1.0;
    engine.register_endpoint("limited", fx.model,
                             std::make_shared<NoNoisePolicy>(), limited);
    net::Server server(engine);

    // Pipelined pair: the first takes the only token, the second gets
    // the typed status — and the connection stays healthy.
    net::Client client("127.0.0.1", server.port());
    client.send("limited", fx.sample_activation(), 10);
    client.send("limited", fx.sample_activation(), 11);
    const net::Response first = client.recv();
    const net::Response second = client.recv();
    EXPECT_EQ(first.request_id, 10u);
    EXPECT_EQ(first.status, net::WireStatus::kOk);
    EXPECT_EQ(second.request_id, 11u);
    EXPECT_EQ(second.status, net::WireStatus::kRateLimited);
    EXPECT_FALSE(second.message.empty());

    // The blocking helper surfaces the same typed code.
    try {
        client.infer("limited", fx.sample_activation(), 12);
        ADD_FAILURE() << "expected kRateLimited over the wire";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kRateLimited) << e.what();
    }
}

TEST(Admission, ResponseStatusRoundTripsForEveryKnownValue)
{
    for (std::uint32_t s = 1; s <= net::kMaxWireStatus; ++s) {
        net::Response response;
        response.request_id = 40 + s;
        response.status = static_cast<net::WireStatus>(s);
        response.message = "typed backpressure";
        const std::string frame = net::encode_response(response);
        const net::Response back =
            net::decode_response_payload(frame.substr(12));
        EXPECT_EQ(back.status, response.status) << "status " << s;
        EXPECT_EQ(back.request_id, response.request_id);
        EXPECT_EQ(back.message, response.message);
    }
}

TEST(Admission, OutOfRangeStatusIsTypedProtocolError)
{
    net::Response response;
    response.request_id = 9;
    response.status = net::WireStatus::kRateLimited;
    response.message = "x";
    // Strip the 12-byte envelope; the status u32 sits at payload
    // offset 8 (after the request id), little-endian.
    std::string payload = net::encode_response(response).substr(12);
    for (const std::uint32_t bad :
         {net::kMaxWireStatus + 1, net::kMaxWireStatus + 2, 200u}) {
        payload[8] = static_cast<char>(bad & 0xFF);
        payload[9] = static_cast<char>((bad >> 8) & 0xFF);
        payload[10] = 0;
        payload[11] = 0;
        try {
            net::decode_response_payload(payload);
            ADD_FAILURE() << "status " << bad << " must not decode";
        } catch (const ServingError& e) {
            EXPECT_EQ(e.code(), ServingErrorCode::kProtocol) << e.what();
        }
    }
}

TEST(Admission, TruncatedRateLimitedResponseNeverDecodes)
{
    // Truncation sweep over a response carrying a NEW status value:
    // every proper prefix of the payload is a typed kProtocol error —
    // no crash, no partial decode, exactly like the legacy statuses.
    net::Response response;
    response.request_id = 77;
    response.status = net::WireStatus::kAdmissionReject;
    response.message = "admission queue full";
    const std::string payload =
        net::encode_response(response).substr(12);
    for (std::size_t len = 0; len < payload.size(); ++len) {
        try {
            net::decode_response_payload(payload.substr(0, len));
            ADD_FAILURE() << "prefix of " << len << " bytes decoded";
        } catch (const ServingError& e) {
            EXPECT_EQ(e.code(), ServingErrorCode::kProtocol)
                << "prefix " << len << ": " << e.what();
        }
    }
    EXPECT_EQ(net::decode_response_payload(payload).status,
              net::WireStatus::kAdmissionReject);
}

}  // namespace
}  // namespace shredder
