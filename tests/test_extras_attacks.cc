/** @file Tests for the extra layers and the reconstruction attack. */
#include <gtest/gtest.h>

#include "src/attacks/reconstruction.h"
#include "src/core/noise_tensor.h"
#include "src/data/digits.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/nn/extras.h"
#include "src/split/split_model.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using nn::Mode;

// ---------------------------------------------------------------------
// Extra layers
// ---------------------------------------------------------------------

TEST(Sigmoid, RangeAndMidpoint)
{
    nn::Sigmoid sig;
    nn::ExecutionContext ctx;
    Tensor x = Tensor::from_vector({-100.0f, 0.0f, 100.0f});
    Tensor y = sig.forward(x, ctx, Mode::kEval);
    EXPECT_NEAR(y[0], 0.0f, 1e-6);
    EXPECT_NEAR(y[1], 0.5f, 1e-6);
    EXPECT_NEAR(y[2], 1.0f, 1e-6);
}

TEST(Sigmoid, NumericGradient)
{
    nn::Sigmoid sig;
    Rng rng(1);
    Tensor x = Tensor::normal(Shape({3, 5}), rng);
    testing::check_layer_gradients(sig, x, rng);
}

TEST(LeakyReLU, SlopeAppliedBelowZero)
{
    nn::LeakyReLU leaky(0.1f);
    nn::ExecutionContext ctx;
    Tensor x = Tensor::from_vector({-2.0f, 3.0f});
    Tensor y = leaky.forward(x, ctx, Mode::kEval);
    EXPECT_FLOAT_EQ(y[0], -0.2f);
    EXPECT_FLOAT_EQ(y[1], 3.0f);
}

TEST(LeakyReLU, NumericGradient)
{
    nn::LeakyReLU leaky(0.2f);
    Rng rng(2);
    Tensor x = Tensor::normal(Shape({4, 4}), rng, 0.0f, 2.0f);
    ops::map_inplace(x, [](float v) {
        return std::abs(v) < 0.1f ? v + 0.3f : v;
    });
    testing::check_layer_gradients(leaky, x, rng);
}

TEST(SoftmaxLayer, RowsSumToOne)
{
    nn::Softmax sm;
    Rng rng(3);
    nn::ExecutionContext ctx;
    Tensor x = Tensor::normal(Shape({4, 6}), rng, 0.0f, 2.0f);
    Tensor y = sm.forward(x, ctx, Mode::kEval);
    for (std::int64_t r = 0; r < 4; ++r) {
        double s = 0.0;
        for (std::int64_t c = 0; c < 6; ++c) {
            s += y.at2(r, c);
        }
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(SoftmaxLayer, NumericGradient)
{
    nn::Softmax sm;
    Rng rng(4);
    Tensor x = Tensor::normal(Shape({3, 4}), rng);
    testing::check_layer_gradients(sm, x, rng, 1e-2f, 2e-2);
}

TEST(Upsample2x, NearestNeighborValues)
{
    nn::Upsample2x up;
    Tensor x(Shape({1, 1, 2, 2}));
    x[0] = 1.0f;
    x[1] = 2.0f;
    x[2] = 3.0f;
    x[3] = 4.0f;
    nn::ExecutionContext ctx;
    Tensor y = up.forward(x, ctx, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({1, 1, 4, 4}));
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 1.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 2), 2.0f);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 3, 3), 4.0f);
}

TEST(Upsample2x, BackwardSumsBlocks)
{
    nn::Upsample2x up;
    nn::ExecutionContext ctx;
    Tensor x = Tensor::ones(Shape({1, 1, 2, 2}));
    Tensor y = up.forward(x, ctx, Mode::kEval);
    Tensor g = up.backward(Tensor::ones(y.shape()), ctx);
    for (std::int64_t i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(g[i], 4.0f);
    }
}

TEST(Upsample2x, NumericGradient)
{
    nn::Upsample2x up;
    Rng rng(5);
    Tensor x = Tensor::normal(Shape({2, 2, 3, 3}), rng);
    testing::check_layer_gradients(up, x, rng);
}

// ---------------------------------------------------------------------
// Reconstruction attack
// ---------------------------------------------------------------------

TEST(Decoder, BuildsForConvActivation)
{
    Rng rng(6);
    auto dec = attacks::make_decoder(Shape({16, 7, 7}), Shape({1, 28, 28}),
                                     rng);
    const Shape out = dec->output_shape(Shape({2, 16, 7, 7}));
    EXPECT_EQ(out, Shape({2, 1, 28, 28}));
    // Output through sigmoid stays in [0, 1].
    nn::ExecutionContext ctx;
    Tensor x = Tensor::normal(Shape({2, 16, 7, 7}), rng);
    Tensor y = dec->forward(x, ctx, Mode::kEval);
    EXPECT_GE(y.min(), 0.0f);
    EXPECT_LE(y.max(), 1.0f);
}

TEST(Decoder, BuildsForTinySpatialActivation)
{
    Rng rng(7);
    // LeNet last conv: 120×1×1 — needs the linear seed stage.
    auto dec = attacks::make_decoder(Shape({120, 1, 1}),
                                     Shape({1, 28, 28}), rng);
    const Shape out = dec->output_shape(Shape({3, 120, 1, 1}));
    EXPECT_EQ(out[2], 28);
    EXPECT_EQ(out[3], 28);
}

TEST(Attack, NoiseDegradesReconstruction)
{
    // Small but complete attack: clean activations must reconstruct
    // substantially better than shredded ones.
    Rng rng(8);
    auto net = models::make_lenet(rng);
    data::DigitsConfig tc;
    tc.count = 600;
    tc.seed = 777;
    data::DigitsDataset train(tc);
    data::DigitsConfig ec;
    ec.count = 128;
    ec.seed = 778;
    data::DigitsDataset eval(ec);

    models::TrainConfig pre;
    pre.max_epochs = 2;
    pre.verbose = false;
    Rng pre_rng(9);
    models::train_model(*net, train, eval, pre, pre_rng);

    const auto cuts = split::conv_cut_points(*net);
    split::SplitModel model(*net, cuts[0]);  // shallow cut: most signal

    attacks::AttackConfig cfg;
    cfg.iterations = 250;
    cfg.eval_samples = 64;
    cfg.verbose = false;

    const auto clean =
        attacks::run_reconstruction_attack(model, train, eval, nullptr,
                                           cfg);
    EXPECT_GT(clean.decoder_params, 0);
    EXPECT_LT(clean.eval_mse, 0.09);  // clean activations reconstruct
    EXPECT_GT(clean.eval_ssim, 0.3);  // and keep their structure

    // Big random noise collection (no training needed for this check).
    core::NoiseCollection col;
    const Shape act = model.activation_shape(train.image_shape());
    for (int s = 0; s < 3; ++s) {
        core::NoiseInit init;
        init.scale = 6.0f;
        init.seed = 500 + static_cast<std::uint64_t>(s);
        core::NoiseSample sample;
        sample.noise = core::NoiseTensor(
                           Shape({act[1], act[2], act[3]}), init)
                           .value();
        col.add(std::move(sample));
    }
    const runtime::ReplayPolicy replay(col, /*seed=*/4242);
    const auto noisy =
        attacks::run_reconstruction_attack(model, train, eval, &replay,
                                           cfg);
    EXPECT_GT(noisy.eval_mse, 1.3 * clean.eval_mse);
    EXPECT_LT(noisy.eval_psnr_db, clean.eval_psnr_db);
    EXPECT_LT(noisy.eval_ssim, clean.eval_ssim);
}

}  // namespace
}  // namespace shredder
