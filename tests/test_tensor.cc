/** @file Unit tests for the Tensor class. */
#include <cmath>

#include <gtest/gtest.h>

#include "src/tensor/tensor.h"

namespace shredder {
namespace {

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0);
}

TEST(Tensor, ZeroConstruction)
{
    Tensor t(Shape({2, 3}));
    EXPECT_EQ(t.size(), 6);
    for (std::int64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(t[i], 0.0f);
    }
}

TEST(Tensor, FillValueConstruction)
{
    Tensor t(Shape({4}), 2.5f);
    for (std::int64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(t[i], 2.5f);
    }
}

TEST(Tensor, FromVector)
{
    Tensor t = Tensor::from_vector({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(t.shape(), Shape({3}));
    EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, FactoryOnesAndFull)
{
    EXPECT_EQ(Tensor::ones(Shape({3}))[2], 1.0f);
    EXPECT_EQ(Tensor::full(Shape({3}), -4.0f)[0], -4.0f);
}

TEST(Tensor, At4Indexing)
{
    Tensor t(Shape({2, 3, 4, 5}));
    t.at4(1, 2, 3, 4) = 9.0f;
    // flat = ((1*3+2)*4+3)*5+4 = (5*4+3)*5+4 = 23*5+4 = 119
    EXPECT_EQ(t[119], 9.0f);
    EXPECT_EQ(t.at4(1, 2, 3, 4), 9.0f);
}

TEST(Tensor, At2Indexing)
{
    Tensor t(Shape({3, 4}));
    t.at2(2, 1) = 5.0f;
    EXPECT_EQ(t[9], 5.0f);
}

TEST(Tensor, Reshape)
{
    Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6});
    Tensor r = t.reshaped(Shape({2, 3}));
    EXPECT_EQ(r.shape(), Shape({2, 3}));
    EXPECT_EQ(r.at2(1, 0), 4.0f);
    t.reshape_inplace(Shape({3, 2}));
    EXPECT_EQ(t.shape(), Shape({3, 2}));
}

TEST(Tensor, Slice0RoundTrip)
{
    Rng rng(5);
    Tensor t = Tensor::normal(Shape({4, 3, 2, 2}), rng);
    Tensor s = t.slice0(2);
    EXPECT_EQ(s.shape(), Shape({3, 2, 2}));
    EXPECT_EQ(s[0], t[2 * 12]);

    Tensor u(Shape({4, 3, 2, 2}));
    u.set_slice0(2, s);
    EXPECT_EQ(u[2 * 12 + 5], t[2 * 12 + 5]);
    EXPECT_EQ(u[0], 0.0f);  // other slices untouched
}

TEST(Tensor, Reductions)
{
    Tensor t = Tensor::from_vector({1.0f, -2.0f, 3.0f, -4.0f});
    EXPECT_DOUBLE_EQ(t.sum(), -2.0);
    EXPECT_DOUBLE_EQ(t.mean(), -0.5);
    EXPECT_DOUBLE_EQ(t.mean_square(), (1 + 4 + 9 + 16) / 4.0);
    EXPECT_NEAR(t.variance(), t.mean_square() - 0.25, 1e-9);
    EXPECT_EQ(t.min(), -4.0f);
    EXPECT_EQ(t.max(), 3.0f);
    EXPECT_EQ(t.argmax(), 2);
    EXPECT_DOUBLE_EQ(t.abs_sum(), 10.0);
    EXPECT_NEAR(t.norm(), std::sqrt(30.0), 1e-6);
}

TEST(Tensor, VarianceOfConstantIsZero)
{
    Tensor t = Tensor::full(Shape({100}), 3.14f);
    EXPECT_NEAR(t.variance(), 0.0, 1e-6);
}

TEST(Tensor, LaplaceFactoryMoments)
{
    Rng rng(123);
    Tensor t = Tensor::laplace(Shape({20000}), rng, 0.0f, 0.8f);
    EXPECT_NEAR(t.mean(), 0.0, 0.05);
    EXPECT_NEAR(t.variance(), 2.0 * 0.8 * 0.8, 0.1);
}

TEST(Tensor, NormalFactoryMoments)
{
    Rng rng(77);
    Tensor t = Tensor::normal(Shape({20000}), rng, 2.0f, 0.5f);
    EXPECT_NEAR(t.mean(), 2.0, 0.02);
    EXPECT_NEAR(t.variance(), 0.25, 0.02);
}

TEST(Tensor, HasNonfinite)
{
    Tensor t(Shape({3}));
    EXPECT_FALSE(t.has_nonfinite());
    t[1] = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(t.has_nonfinite());
    t[1] = std::nanf("");
    EXPECT_TRUE(t.has_nonfinite());
}

TEST(Tensor, FillOverwrites)
{
    Rng rng(9);
    Tensor t = Tensor::normal(Shape({10}), rng);
    t.fill(7.0f);
    for (std::int64_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t[i], 7.0f);
    }
}

TEST(Tensor, CopyIsDeep)
{
    Tensor a = Tensor::from_vector({1, 2, 3});
    Tensor b = a;
    b[0] = 99.0f;
    EXPECT_EQ(a[0], 1.0f);
}

}  // namespace
}  // namespace shredder
