/**
 * @file
 * Shared test utilities: numeric gradient checking and tensor
 * comparison helpers.
 */
#ifndef SHREDDER_TESTS_TEST_UTIL_H
#define SHREDDER_TESTS_TEST_UTIL_H

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/nn/layer.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace testing {

/** EXPECT that two tensors match elementwise within `tol`. */
inline void
expect_tensors_near(const Tensor& a, const Tensor& b, double tol,
                    const char* what = "")
{
    ASSERT_EQ(a.shape().to_string(), b.shape().to_string()) << what;
    const double diff = ops::max_abs_diff(a, b);
    EXPECT_LE(diff, tol) << what << ": max |a-b| = " << diff;
}

/**
 * Numeric-vs-analytic gradient check for a layer.
 *
 * Builds the scalar loss L = Σ w ⊙ layer(x) with fixed random weights
 * w, computes dL/dx analytically via `backward`, then compares against
 * central differences. Also checks every parameter gradient. All
 * passes share one `ExecutionContext`, exercising the per-context
 * forward-then-backward cache contract.
 *
 * @param layer    Layer under test.
 * @param x        Input point of the check.
 * @param rng      Randomness for the projection weights.
 * @param eps      Finite-difference step.
 * @param tol      Max allowed |analytic − numeric| per element.
 * @param check_params  Also verify parameter gradients.
 */
inline void
check_layer_gradients(nn::Layer& layer, const Tensor& x, Rng& rng,
                      float eps = 1e-2f, double tol = 2e-2,
                      bool check_params = true)
{
    nn::ExecutionContext ctx;
    const Tensor y0 = layer.forward(x, ctx, nn::Mode::kEval);
    const Tensor w = Tensor::normal(y0.shape(), rng);

    // Analytic gradients.
    layer.zero_grad();
    layer.forward(x, ctx, nn::Mode::kEval);
    const Tensor analytic_dx = layer.backward(w, ctx);

    const auto loss_at = [&](const Tensor& input) {
        const Tensor y = layer.forward(input, ctx, nn::Mode::kEval);
        return ops::dot(w, y);
    };

    // Input gradient by central differences (sampled for big tensors).
    Tensor xp = x;
    const std::int64_t stride = std::max<std::int64_t>(1, x.size() / 64);
    for (std::int64_t i = 0; i < x.size(); i += stride) {
        const float orig = xp[i];
        xp[i] = orig + eps;
        const double lp = loss_at(xp);
        xp[i] = orig - eps;
        const double lm = loss_at(xp);
        xp[i] = orig;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(analytic_dx[i], numeric, tol)
            << "input grad mismatch at flat index " << i;
    }

    if (!check_params) {
        return;
    }
    // Re-establish caches and analytic parameter gradients at x.
    layer.zero_grad();
    layer.forward(x, ctx, nn::Mode::kEval);
    layer.backward(w, ctx);
    for (nn::Parameter* p : layer.parameters()) {
        Tensor analytic = p->grad;
        const std::int64_t pstride =
            std::max<std::int64_t>(1, p->size() / 48);
        for (std::int64_t i = 0; i < p->size(); i += pstride) {
            const float orig = p->value[i];
            p->value[i] = orig + eps;
            const double lp = loss_at(x);
            p->value[i] = orig - eps;
            const double lm = loss_at(x);
            p->value[i] = orig;
            const double numeric = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR(analytic[i], numeric, tol)
                << "param '" << p->name << "' grad mismatch at " << i;
        }
    }
}

}  // namespace testing
}  // namespace shredder

#endif  // SHREDDER_TESTS_TEST_UTIL_H
