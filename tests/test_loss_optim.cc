/** @file Tests for losses and optimizers. */
#include <cmath>

#include <gtest/gtest.h>

#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ops.h"

namespace shredder {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogM)
{
    nn::CrossEntropyLoss ce;
    Tensor logits(Shape({2, 4}));  // all zeros → uniform
    const auto r = ce.compute(logits, {0, 3});
    EXPECT_NEAR(r.value, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, ConfidentCorrectIsNearZero)
{
    nn::CrossEntropyLoss ce;
    Tensor logits(Shape({1, 3}));
    logits[1] = 20.0f;
    const auto r = ce.compute(logits, {1});
    EXPECT_LT(r.value, 1e-6);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOnehotOverN)
{
    nn::CrossEntropyLoss ce;
    Rng rng(1);
    Tensor logits = Tensor::normal(Shape({2, 3}), rng);
    const auto r = ce.compute(logits, {2, 0});
    const Tensor p = ops::softmax_rows(logits);
    for (std::int64_t n = 0; n < 2; ++n) {
        for (std::int64_t c = 0; c < 3; ++c) {
            const float expected =
                (p.at2(n, c) -
                 ((n == 0 && c == 2) || (n == 1 && c == 0) ? 1.0f : 0.0f)) /
                2.0f;
            EXPECT_NEAR(r.grad.at2(n, c), expected, 1e-5);
        }
    }
}

TEST(CrossEntropy, NumericGradient)
{
    nn::CrossEntropyLoss ce;
    Rng rng(2);
    Tensor logits = Tensor::normal(Shape({3, 5}), rng);
    const std::vector<std::int64_t> labels{1, 4, 0};
    const auto r = ce.compute(logits, labels);
    const float eps = 1e-2f;
    for (std::int64_t i = 0; i < logits.size(); ++i) {
        Tensor lp = logits;
        lp[i] += eps;
        const double up = ce.compute(lp, labels).value;
        lp[i] -= 2 * eps;
        const double dn = ce.compute(lp, labels).value;
        EXPECT_NEAR(r.grad[i], (up - dn) / (2 * eps), 1e-3);
    }
}

TEST(Accuracy, CountsCorrectRows)
{
    Tensor logits(Shape({3, 2}));
    logits.at2(0, 1) = 1.0f;  // pred 1
    logits.at2(1, 0) = 1.0f;  // pred 0
    logits.at2(2, 1) = 1.0f;  // pred 1
    EXPECT_DOUBLE_EQ(nn::accuracy(logits, {1, 0, 0}), 2.0 / 3.0);
}

TEST(MseLoss, ValueAndGradient)
{
    nn::MseLoss mse;
    Tensor a = Tensor::from_vector({1.0f, 2.0f});
    Tensor b = Tensor::from_vector({0.0f, 0.0f});
    const auto r = mse.compute(a, b);
    EXPECT_DOUBLE_EQ(r.value, 2.5);
    EXPECT_FLOAT_EQ(r.grad[0], 1.0f);  // 2(a-b)/n = 2*1/2
    EXPECT_FLOAT_EQ(r.grad[1], 2.0f);
}

// ---------------------------------------------------------------------
// Optimizers on the convex bowl f(w) = ‖w − w*‖².
// ---------------------------------------------------------------------

class OptimizerConvergence : public ::testing::TestWithParam<int>
{};

TEST_P(OptimizerConvergence, ReachesMinimum)
{
    const int which = GetParam();
    Rng rng(42);
    nn::Parameter w("w", Tensor::normal(Shape({8}), rng, 0.0f, 2.0f));
    Tensor target = Tensor::normal(Shape({8}), rng, 1.0f, 1.0f);

    std::unique_ptr<nn::Optimizer> opt;
    if (which == 0) {
        opt = std::make_unique<nn::Sgd>(std::vector<nn::Parameter*>{&w},
                                        0.05f);
    } else if (which == 1) {
        opt = std::make_unique<nn::Sgd>(std::vector<nn::Parameter*>{&w},
                                        0.02f, 0.9f);
    } else {
        opt = std::make_unique<nn::Adam>(std::vector<nn::Parameter*>{&w},
                                         0.1f);
    }
    for (int it = 0; it < 300; ++it) {
        opt->zero_grad();
        for (std::int64_t i = 0; i < 8; ++i) {
            w.grad[i] = 2.0f * (w.value[i] - target[i]);
        }
        opt->step();
    }
    EXPECT_LT(ops::max_abs_diff(w.value, target), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(SgdMomentumAdam, OptimizerConvergence,
                         ::testing::Values(0, 1, 2));

TEST(Optimizer, FrozenParamsAreNotUpdated)
{
    Rng rng(3);
    nn::Parameter w("w", Tensor::normal(Shape({4}), rng));
    const Tensor before = w.value;
    w.frozen = true;
    nn::Adam adam({&w}, 0.5f);
    w.grad.fill(1.0f);
    adam.step();
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(w.value, before), 0.0);
}

TEST(Optimizer, ZeroGradClears)
{
    Rng rng(4);
    nn::Parameter w("w", Tensor::normal(Shape({4}), rng));
    w.grad.fill(3.0f);
    nn::Sgd sgd({&w}, 0.1f);
    sgd.zero_grad();
    EXPECT_DOUBLE_EQ(w.grad.abs_sum(), 0.0);
}

TEST(Optimizer, SgdWeightDecayShrinksWeights)
{
    nn::Parameter w("w", Tensor::full(Shape({1}), 1.0f));
    nn::Sgd sgd({&w}, 0.1f, 0.0f, 0.5f);
    w.grad.fill(0.0f);
    sgd.step();
    // w ← w − lr·(0 + wd·w) = 1 − 0.05.
    EXPECT_NEAR(w.value[0], 0.95f, 1e-6);
}

TEST(Optimizer, AdamStepSizeBounded)
{
    // First Adam step magnitude ≈ lr regardless of gradient scale.
    nn::Parameter w("w", Tensor::full(Shape({1}), 0.0f));
    nn::Adam adam({&w}, 0.1f);
    w.grad.fill(1e6f);
    adam.step();
    EXPECT_NEAR(std::abs(w.value[0]), 0.1f, 0.01f);
}

}  // namespace
}  // namespace shredder
