/** @file Tests for the split-execution substrate. */
#include <gtest/gtest.h>

#include "src/models/zoo.h"
#include "src/split/channel.h"
#include "src/split/cost_model.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"
#include "src/tensor/serialize.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using nn::Mode;

TEST(SplitModel, EdgePlusCloudEqualsFullForward)
{
    Rng rng(1);
    auto net = models::make_lenet(rng);
    nn::ExecutionContext ctx;
    Tensor x = Tensor::normal(Shape({2, 1, 28, 28}), rng);
    const Tensor full = net->forward(x, ctx, Mode::kEval);

    for (std::int64_t cut = 0; cut <= net->size(); ++cut) {
        split::SplitModel sm(*net, cut);
        const Tensor a = sm.edge_forward(x, ctx);
        const Tensor y = sm.cloud_forward(a, ctx);
        testing::expect_tensors_near(full, y, 0.0, "split equivalence");
    }
}

TEST(SplitModel, ActivationShapeMatchesExecution)
{
    Rng rng(2);
    auto net = models::make_svhn_net(rng);
    Tensor x = Tensor::normal(Shape({1, 3, 32, 32}), rng);
    nn::ExecutionContext ctx;
    for (std::int64_t cut : split::conv_cut_points(*net)) {
        split::SplitModel sm(*net, cut);
        const Tensor a = sm.edge_forward(x, ctx);
        EXPECT_EQ(sm.activation_shape(Shape({3, 32, 32})), a.shape());
    }
}

TEST(SplitModel, CloudBackwardReachesCutGradient)
{
    // Finite-difference check: d(loss)/d(activation) via cloud_backward.
    Rng rng(3);
    auto net = models::make_lenet(rng);
    const std::int64_t cut = split::conv_cut_points(*net).back();
    split::SplitModel sm(*net, cut);

    nn::ExecutionContext ctx;
    Tensor x = Tensor::normal(Shape({1, 1, 28, 28}), rng);
    const Tensor a = sm.edge_forward(x, ctx);
    const Tensor y0 = sm.cloud_forward(a, ctx);
    const Tensor w = Tensor::normal(y0.shape(), rng);

    sm.cloud_forward(a, ctx);
    const Tensor analytic = sm.cloud_backward(w, ctx);

    Tensor ap = a;
    const float eps = 1e-2f;
    const std::int64_t stride = std::max<std::int64_t>(1, a.size() / 32);
    for (std::int64_t i = 0; i < a.size(); i += stride) {
        const float orig = ap[i];
        ap[i] = orig + eps;
        const double lp = ops::dot(w, sm.cloud_forward(ap, ctx));
        ap[i] = orig - eps;
        const double lm = ops::dot(w, sm.cloud_forward(ap, ctx));
        ap[i] = orig;
        EXPECT_NEAR(analytic[i], (lp - lm) / (2 * eps), 4e-2);
    }
}

TEST(SplitModel, MacsPartitionConserved)
{
    Rng rng(4);
    auto net = models::make_cifar_net(rng);
    const Shape in({3, 32, 32});
    split::SplitModel whole(*net, net->size());
    const std::int64_t total = whole.edge_macs(in);
    for (std::int64_t cut : split::conv_cut_points(*net)) {
        split::SplitModel sm(*net, cut);
        EXPECT_EQ(sm.edge_macs(in) + sm.cloud_macs(in), total);
    }
}

TEST(ConvCutPoints, LeNetHasThreeConvs)
{
    Rng rng(5);
    auto net = models::make_lenet(rng);
    const auto cuts = split::conv_cut_points(*net);
    ASSERT_EQ(cuts.size(), 3u);
    // Each cut transmits the post-ReLU feature map.
    for (std::int64_t cut : cuts) {
        EXPECT_EQ(net->layer(cut - 1).kind(), "relu");
    }
}

TEST(ConvCutPoints, SvhnHasSevenConvs)
{
    Rng rng(6);
    auto net = models::make_svhn_net(rng);
    EXPECT_EQ(split::conv_cut_points(*net).size(), 7u);
}

TEST(ConvCutPoints, AlexnetHasFiveConvs)
{
    Rng rng(7);
    auto net = models::make_alexnet(rng);
    EXPECT_EQ(split::conv_cut_points(*net).size(), 5u);
}

// ---------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------

TEST(CostModel, EdgeMacsMonotoneWithDepth)
{
    Rng rng(8);
    auto net = models::make_svhn_net(rng);
    split::CostModel cm(*net, Shape({3, 32, 32}));
    const auto cuts = split::conv_cut_points(*net);
    std::int64_t prev = -1;
    for (std::int64_t cut : cuts) {
        const auto cost = cm.evaluate(cut);
        EXPECT_GT(cost.edge_macs, prev);
        prev = cost.edge_macs;
    }
}

TEST(CostModel, CommBytesTrackActivationSize)
{
    Rng rng(9);
    auto net = models::make_svhn_net(rng);
    split::CostModel cm(*net, Shape({3, 32, 32}));
    const auto cuts = split::conv_cut_points(*net);
    // Conv6 (bottleneck) must be far cheaper to transmit than Conv0.
    const auto first = cm.evaluate(cuts.front());
    const auto last = cm.evaluate(cuts.back());
    EXPECT_LT(last.comm_bytes, first.comm_bytes / 10);
}

TEST(CostModel, BestCutForSvhnIsConv6)
{
    // §3.4: Conv6 wins on cost × privacy for SVHN.
    Rng rng(10);
    auto net = models::make_svhn_net(rng);
    split::CostModel cm(*net, Shape({3, 32, 32}));
    const auto cuts = split::conv_cut_points(*net);
    EXPECT_EQ(cm.best_cut(cuts, /*margin=*/0.05), cuts.back());
}

TEST(CostModel, ZeroCutMeansAllCloud)
{
    Rng rng(11);
    auto net = models::make_lenet(rng);
    split::CostModel cm(*net, Shape({1, 28, 28}));
    const auto cost = cm.evaluate(0);
    EXPECT_EQ(cost.edge_macs, 0);
    EXPECT_GT(cost.cloud_macs, 0);
    EXPECT_GT(cost.comm_bytes, 28 * 28 * 4);  // raw image + header
}

TEST(CostModel, ReportToString)
{
    Rng rng(12);
    auto net = models::make_lenet(rng);
    split::CostModel cm(*net, Shape({1, 28, 28}));
    const auto s = cm.evaluate(2).to_string();
    EXPECT_NE(s.find("edge_macs"), std::string::npos);
    EXPECT_NE(s.find("KMAC*MB"), std::string::npos);
}

// ---------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------

TEST(LoopbackChannel, LosslessRoundTripAndAccounting)
{
    split::LoopbackChannel ch;
    Rng rng(13);
    Tensor t = Tensor::normal(Shape({2, 3, 4, 4}), rng);
    const std::int64_t bytes = ch.send(t);
    EXPECT_EQ(bytes, serialized_size(t));
    EXPECT_TRUE(ch.pending());
    Tensor u = ch.receive();
    EXPECT_FALSE(ch.pending());
    testing::expect_tensors_near(t, u, 0.0, "loopback");
    EXPECT_EQ(ch.total_bytes(), bytes);
    EXPECT_EQ(ch.total_messages(), 1);
}

TEST(LoopbackChannel, FifoOrder)
{
    split::LoopbackChannel ch;
    ch.send(Tensor::full(Shape({1}), 1.0f));
    ch.send(Tensor::full(Shape({1}), 2.0f));
    EXPECT_EQ(ch.receive()[0], 1.0f);
    EXPECT_EQ(ch.receive()[0], 2.0f);
}

TEST(QuantizingChannel, ErrorBoundedByStep)
{
    split::QuantizingChannel ch;
    Rng rng(14);
    Tensor t = Tensor::normal(Shape({64}), rng, 0.0f, 2.0f);
    ch.send(t);
    Tensor u = ch.receive();
    const float step = (t.max() - t.min()) / 255.0f;
    EXPECT_LE(ops::max_abs_diff(t, u), step * 0.51 + 1e-6);
}

TEST(QuantizingChannel, FourTimesSmallerThanFloat)
{
    split::QuantizingChannel q;
    split::LoopbackChannel f;
    Rng rng(15);
    Tensor t = Tensor::normal(Shape({1, 16, 8, 8}), rng);
    const std::int64_t qb = q.send(t);
    const std::int64_t fb = f.send(t);
    EXPECT_LT(qb, fb / 3);
}

TEST(QuantizingChannel, ConstantTensorSurvives)
{
    split::QuantizingChannel ch;
    Tensor t = Tensor::full(Shape({10}), 3.5f);
    ch.send(t);
    Tensor u = ch.receive();
    testing::expect_tensors_near(t, u, 1e-6, "constant quantization");
}

TEST(ChannelDeath, ReceiveOnEmptyIsFatal)
{
    split::LoopbackChannel ch;
    EXPECT_EXIT(ch.receive(), ::testing::ExitedWithCode(1), "empty");
}

}  // namespace
}  // namespace shredder
