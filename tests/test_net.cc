/**
 * @file
 * Integration tests for the network front door: loopback end-to-end
 * serving through the SHRQ/SHRP protocol, bit-exactness against the
 * in-process engine, concurrent clients, and — most important — the
 * trust-boundary sweep: every malformed byte stream a client can send
 * (truncations, bad magic, future versions, oversize length prefixes,
 * lying tensor headers, mid-frame disconnects) must produce a typed
 * error or a clean close, and the server must keep serving afterwards.
 * Network input must never crash the process.
 */
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/deploy/bundle.h"
#include "src/models/zoo.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_engine.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"

namespace shredder {
namespace {

using runtime::EndpointConfig;
using runtime::ReplayPolicy;
using runtime::ServingEngine;
using runtime::ServingError;
using runtime::ServingErrorCode;

/**
 * LeNet engine behind a loopback server, replay policy at the last
 * conv cut — the deployment the wire protocol fronts.
 */
struct Fixture
{
    explicit Fixture(std::uint64_t seed = 91)
        : rng(seed), net(models::make_lenet(rng)),
          cut(split::conv_cut_points(*net).back()), model(*net, cut),
          act_shape(model.activation_shape(Shape({1, 28, 28})))
    {
        for (int i = 0; i < 4; ++i) {
            core::NoiseSample s;
            s.noise = Tensor::laplace(per_sample(), rng, 0.0f, 1.0f);
            collection.add(std::move(s));
        }
        engine = std::make_unique<ServingEngine>();
        EndpointConfig ep;
        ep.max_batch = 4;
        ep.batch_timeout_ms = 0.2;
        engine->register_endpoint(
            "lenet", model,
            std::make_shared<ReplayPolicy>(collection, 0xFACE), ep);
        server = std::make_unique<net::Server>(*engine);
    }

    Shape
    per_sample() const
    {
        return Shape({act_shape[1], act_shape[2], act_shape[3]});
    }

    Tensor
    sample_activation()
    {
        return Tensor::normal(per_sample(), rng);
    }

    /** A fully valid SHRQ frame for `id` (raw-socket tests mutate it). */
    std::string
    valid_frame(std::uint64_t id, const std::string& endpoint = "lenet")
    {
        net::Request request;
        request.request_id = id;
        request.endpoint = endpoint;
        request.activation = sample_activation();
        return net::encode_request(request);
    }

    Rng rng;
    std::unique_ptr<nn::Sequential> net;
    std::int64_t cut;
    split::SplitModel model;
    Shape act_shape;  ///< Batched ([1, C, H, W]).
    core::NoiseCollection collection;
    std::unique_ptr<ServingEngine> engine;
    std::unique_ptr<net::Server> server;
};

/**
 * Prove the server still answers good requests on a FRESH connection —
 * the "one bad client never costs the service" check run after every
 * hostile case.
 */
void
expect_still_serving(Fixture& fx, std::uint64_t id)
{
    net::Client client("127.0.0.1", fx.server->port());
    const Tensor logits = client.infer("lenet", fx.sample_activation(), id);
    EXPECT_EQ(logits.shape().rank(), 1);
    EXPECT_GT(logits.size(), 0);
}

// -- End-to-end loopback serving ------------------------------------------

TEST(NetServer, LoopbackMatchesInProcessBitExact)
{
    Fixture fx;
    net::Client client("127.0.0.1", fx.server->port());

    // The same (activation, request id) served over the wire and
    // through ServingEngine::submit must agree bit-for-bit: the wire
    // codec round-trips floats exactly, and the replay policy keys its
    // draw on the id, so transport cannot change the noise assignment.
    for (std::uint64_t id = 0; id < 8; ++id) {
        const Tensor activation = fx.sample_activation();
        const Tensor wire = client.infer("lenet", activation, id);
        const Tensor direct =
            fx.engine->submit("lenet", activation, id).get();
        ASSERT_EQ(wire.shape().to_string(), direct.shape().to_string());
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(wire, direct), 0.0) << id;
    }

    const net::ServerNetStats stats = fx.server->stats();
    EXPECT_EQ(stats.connections_accepted, 1);
    EXPECT_EQ(stats.frames_served, 8);
    EXPECT_EQ(stats.protocol_errors, 0);
}

TEST(NetServer, ColdStartBundleEndpointServesOverWire)
{
    Fixture fx;
    // Ship the fixture's artifacts as a bundle and cold-start a second
    // endpoint from disk — the full train→ship→serve→wire loop.
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(fx.collection);
    deploy::BundleContents contents;
    contents.network = fx.net.get();
    contents.cut = fx.cut;
    contents.input_shape = Shape({1, 28, 28});
    contents.policy.kind = deploy::PolicyKind::kReplay;
    contents.policy.seed = 0xFACE;
    contents.collection = &fx.collection;
    contents.distribution = &dist;
    const std::string path = ::testing::TempDir() + "net-coldstart.shb";
    deploy::save_bundle(path, contents);
    fx.engine->register_endpoint_from_bundle("bundled", path);

    net::Client client("127.0.0.1", fx.server->port());
    for (std::uint64_t id = 100; id < 104; ++id) {
        const Tensor activation = fx.sample_activation();
        const Tensor wire = client.infer("bundled", activation, id);
        const Tensor direct =
            fx.engine->submit("bundled", activation, id).get();
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(wire, direct), 0.0) << id;
    }
    std::remove(path.c_str());
}

TEST(NetServer, ConcurrentClientsEachBitExact)
{
    Fixture fx;
    constexpr int kClients = 4;
    constexpr std::uint64_t kPerClient = 8;

    // Each thread owns a connection and a disjoint id range; every
    // response must match the in-process result for ITS id — under
    // concurrency the id→noise binding is what keeps replies from
    // crossing wires.
    std::vector<std::thread> threads;
    std::vector<std::string> failures(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&fx, &failures, c] {
            try {
                Rng rng(1000 + static_cast<std::uint64_t>(c));
                net::Client client("127.0.0.1", fx.server->port());
                for (std::uint64_t i = 0; i < kPerClient; ++i) {
                    const std::uint64_t id =
                        static_cast<std::uint64_t>(c) * kPerClient + i;
                    const Tensor activation =
                        Tensor::normal(fx.per_sample(), rng);
                    const Tensor wire =
                        client.infer("lenet", activation, id);
                    const Tensor direct =
                        fx.engine->submit("lenet", activation, id).get();
                    if (ops::max_abs_diff(wire, direct) != 0.0) {
                        failures[static_cast<std::size_t>(c)] =
                            "mismatch at id " + std::to_string(id);
                        return;
                    }
                }
            } catch (const std::exception& e) {
                failures[static_cast<std::size_t>(c)] = e.what();
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (int c = 0; c < kClients; ++c) {
        EXPECT_TRUE(failures[static_cast<std::size_t>(c)].empty())
            << "client " << c << ": "
            << failures[static_cast<std::size_t>(c)];
    }
    EXPECT_EQ(fx.server->stats().frames_served,
              static_cast<std::int64_t>(kClients) *
                  static_cast<std::int64_t>(kPerClient));
}

TEST(NetServer, PipelinedRequestsAnswerInOrderWithIds)
{
    Fixture fx;
    net::Client client("127.0.0.1", fx.server->port());
    constexpr std::uint64_t kInFlight = 16;
    std::vector<Tensor> sent;
    for (std::uint64_t id = 0; id < kInFlight; ++id) {
        sent.push_back(fx.sample_activation());
        client.send("lenet", sent.back(), id);
    }
    for (std::uint64_t id = 0; id < kInFlight; ++id) {
        const net::Response response = client.recv();
        ASSERT_EQ(response.status, net::WireStatus::kOk);
        EXPECT_EQ(response.request_id, id);  // FIFO per connection
        const Tensor direct =
            fx.engine->submit("lenet", sent[id], id).get();
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(response.output, direct), 0.0);
    }
}

// -- Quantized wire path --------------------------------------------------

TEST(NetServer, Int8WireMatchesInProcessQuantizedSubmit)
{
    Fixture fx;
    net::Client client("127.0.0.1", fx.server->port());

    // An int8 request and ServingEngine::submit_quantized with the
    // same codec bytes must agree bit-for-bit: quantization is
    // deterministic, so the client-side encode and the in-process
    // encode produce the same payload, and transport adds nothing.
    for (std::uint64_t id = 0; id < 6; ++id) {
        const Tensor activation = fx.sample_activation();
        const Tensor wire =
            client.infer("lenet", activation, id, WireDtype::kI8);
        const Tensor direct =
            fx.engine
                ->submit_quantized("lenet",
                                   quantize(activation, WireDtype::kI8),
                                   id)
                .get();
        ASSERT_EQ(wire.shape().to_string(), direct.shape().to_string());
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(wire, direct), 0.0) << id;

        // And the codec error stays small relative to the fp32 path —
        // the endpoint is the same mechanism either way.
        const Tensor fp32 =
            fx.engine->submit("lenet", activation, id).get();
        EXPECT_LT(ops::max_abs_diff(wire, fp32), 0.5) << id;
    }
    EXPECT_GE(fx.engine->stats("lenet").quantized_requests, 6);
}

TEST(NetServer, Int8DirectComputeEndpointServesOverWire)
{
    Fixture fx;
    // Same model/policy, but the endpoint consumes quantized
    // activations directly in the int8 GEMM (no fp32 activation is
    // materialized before the cut layer).
    EndpointConfig ep;
    ep.max_batch = 4;
    ep.batch_timeout_ms = 0.2;
    ep.wire_dtype = WireDtype::kI8;
    ep.int8_compute = true;
    fx.engine->register_endpoint(
        "lenet8", fx.model,
        std::make_shared<ReplayPolicy>(fx.collection, 0xFACE), ep);

    net::Client client("127.0.0.1", fx.server->port());
    for (std::uint64_t id = 0; id < 6; ++id) {
        const Tensor activation = fx.sample_activation();
        const Tensor direct_gemm =
            client.infer("lenet8", activation, id, WireDtype::kI8);
        const Tensor fp32 =
            fx.engine->submit("lenet", activation, id).get();
        ASSERT_EQ(direct_gemm.shape().to_string(),
                  fp32.shape().to_string());
        EXPECT_LT(ops::max_abs_diff(direct_gemm, fp32), 0.5) << id;
    }
    const runtime::ServerStats stats = fx.engine->stats("lenet8");
    EXPECT_EQ(stats.quantized_requests, 6);
    EXPECT_GE(stats.int8_direct_batches, 1);
}

TEST(NetProtocol, EnvelopeVersionIsLowestThatCarriesThePayload)
{
    Fixture fx;
    const Tensor activation = fx.sample_activation();

    // fp32 requests and ALL responses stay version 1 bit-for-bit, so
    // old peers never see a version bump they don't need; only frames
    // that actually carry quantized bytes stamp version 2.
    auto version_of = [](const std::string& frame) {
        std::uint32_t v = 0;
        std::memcpy(&v, frame.data() + 4, sizeof(v));
        return v;
    };
    net::Request request;
    request.request_id = 1;
    request.endpoint = "lenet";
    request.activation = activation;
    EXPECT_EQ(version_of(net::encode_request(request)), 1u);

    request.quantized = quantize(activation, WireDtype::kI8);
    request.is_quantized = true;
    EXPECT_EQ(version_of(net::encode_request(request)), 2u);

    net::Response response;
    response.request_id = 1;
    response.status = net::WireStatus::kOk;
    response.output = activation;
    EXPECT_EQ(version_of(net::encode_response(response)), 1u);
}

// -- Typed per-request failures keep the connection alive -----------------

TEST(NetServer, UnknownEndpointIsTypedAndConnectionSurvives)
{
    Fixture fx;
    net::Client client("127.0.0.1", fx.server->port());
    try {
        client.infer("nope", fx.sample_activation(), 1);
        ADD_FAILURE() << "expected kUnknownEndpoint";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kUnknownEndpoint) << e.what();
    }
    // SAME connection keeps working: a bad request is the client's
    // problem, not the link's.
    const Tensor logits = client.infer("lenet", fx.sample_activation(), 2);
    EXPECT_GT(logits.size(), 0);
}

TEST(NetServer, WrongTensorShapeIsTypedAndConnectionSurvives)
{
    Fixture fx;
    net::Client client("127.0.0.1", fx.server->port());
    try {
        client.infer("lenet", Tensor::normal(Shape({3}), fx.rng), 1);
        ADD_FAILURE() << "expected kInvalidShape";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kInvalidShape) << e.what();
    }
    const Tensor logits = client.infer("lenet", fx.sample_activation(), 2);
    EXPECT_GT(logits.size(), 0);
}

// -- Trust-boundary sweep: hostile byte streams ---------------------------

/**
 * Send `bytes` on a raw socket, then expect a best-effort SHRP
 * `kProtocolError` response followed by the server closing the stream.
 */
void
expect_protocol_error_response(Fixture& fx, const std::string& bytes)
{
    net::Socket socket = net::Socket::connect("127.0.0.1",
                                              fx.server->port());
    socket.send_all(bytes.data(), bytes.size());
    std::string payload;
    ASSERT_TRUE(net::read_frame(socket, net::kResponseMagic, &payload));
    const net::Response response = net::decode_response_payload(payload);
    EXPECT_EQ(response.status, net::WireStatus::kProtocolError)
        << response.message;
    // The server ends a connection it can no longer frame-align.
    char byte;
    EXPECT_EQ(socket.recv_some(&byte, 1), 0u);
}

TEST(NetServer, BadMagicGetsTypedErrorAndServerSurvives)
{
    Fixture fx;
    std::string frame = fx.valid_frame(7);
    frame[0] = 'X';  // corrupt the magic
    expect_protocol_error_response(fx, frame);
    expect_still_serving(fx, 8);
    EXPECT_GE(fx.server->stats().protocol_errors, 1);
}

TEST(NetServer, FutureVersionIsRejectedTyped)
{
    Fixture fx;
    std::string frame = fx.valid_frame(7);
    frame[4] = 99;  // version u32 LE: far beyond kProtocolVersion
    expect_protocol_error_response(fx, frame);
    expect_still_serving(fx, 8);
}

TEST(NetServer, OversizeLengthPrefixIsRejectedBeforeAllocation)
{
    Fixture fx;
    std::string frame = fx.valid_frame(7);
    // payload_len u32 LE at offset 8: claim ~3.2 GiB. The reader must
    // reject against kMaxFramePayload instead of trying to allocate.
    frame[8] = static_cast<char>(0xFF);
    frame[9] = static_cast<char>(0xFF);
    frame[10] = static_cast<char>(0xFF);
    frame[11] = static_cast<char>(0xBF);
    expect_protocol_error_response(fx, frame);
    expect_still_serving(fx, 8);
}

TEST(NetServer, LyingPayloadIsRejectedTyped)
{
    Fixture fx;
    // Valid envelope, garbage payload: the length prefix is honest but
    // the bytes inside are not a (id, endpoint, tensor) triple.
    std::string frame = fx.valid_frame(7);
    for (std::size_t i = 12; i < frame.size(); ++i) {
        frame[i] = static_cast<char>(0xAB);
    }
    expect_protocol_error_response(fx, frame);
    expect_still_serving(fx, 8);
}

TEST(NetServer, TruncationSweepNeverKillsServer)
{
    Fixture fx;
    const std::string frame = fx.valid_frame(7);
    // Disconnect after every possible prefix of a valid frame — every
    // cut is either a clean between-frames close (0 bytes) or a
    // mid-frame disconnect; none may crash the server or wedge the
    // acceptor. Stride through the tensor body to keep the sweep fast
    // while still hitting every envelope/header boundary byte.
    std::vector<std::size_t> cuts;
    for (std::size_t len = 0; len <= 32 && len < frame.size(); ++len) {
        cuts.push_back(len);
    }
    for (std::size_t len = 33; len < frame.size(); len += 97) {
        cuts.push_back(len);
    }
    cuts.push_back(frame.size() - 1);
    for (const std::size_t len : cuts) {
        net::Socket socket = net::Socket::connect("127.0.0.1",
                                                  fx.server->port());
        socket.send_all(frame.data(), len);
        socket.close();  // mid-frame disconnect (or clean when len==0)
    }
    expect_still_serving(fx, 8);
}

TEST(NetServer, CleanCloseBetweenFramesIsGraceful)
{
    Fixture fx;
    {
        // Connect, say nothing, leave: a clean close, not an error.
        net::Socket socket = net::Socket::connect("127.0.0.1",
                                                  fx.server->port());
        socket.shutdown_send();
        char byte;
        EXPECT_EQ(socket.recv_some(&byte, 1), 0u);
    }
    {
        // One good frame, then a clean close after the response.
        net::Client client("127.0.0.1", fx.server->port());
        const Tensor logits =
            client.infer("lenet", fx.sample_activation(), 3);
        EXPECT_GT(logits.size(), 0);
    }
    expect_still_serving(fx, 4);
    EXPECT_EQ(fx.server->stats().protocol_errors, 0);
}

TEST(NetServer, StopAnswersInFlightAndRefusesNew)
{
    Fixture fx;
    net::Client client("127.0.0.1", fx.server->port());
    const Tensor logits = client.infer("lenet", fx.sample_activation(), 1);
    EXPECT_GT(logits.size(), 0);
    fx.server->stop();
    // The old connection is gone and new ones are refused.
    EXPECT_THROW(net::Socket::connect("127.0.0.1", fx.server->port()),
                 ServingError);
    // stop() is idempotent.
    fx.server->stop();
}

TEST(NetClient, ConnectionRefusedIsTypedNetwork)
{
    // A listener bound then immediately closed: the port is known-dead.
    std::uint16_t dead_port;
    {
        net::Listener probe("127.0.0.1", 0);
        dead_port = probe.port();
    }
    try {
        net::Client client("127.0.0.1", dead_port);
        ADD_FAILURE() << "expected kNetwork";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kNetwork) << e.what();
    }
}

}  // namespace
}  // namespace shredder
