/** @file Tests for the synthetic datasets and the loader. */
#include <set>

#include <gtest/gtest.h>

#include "src/data/dataloader.h"
#include "src/data/digits.h"
#include "src/data/objects.h"
#include "src/data/street_digits.h"
#include "src/data/textures.h"
#include "src/tensor/ops.h"

namespace shredder {
namespace {

using data::Batch;

// ---------------------------------------------------------------------
// Generic dataset properties, parameterized over all four generators.
// ---------------------------------------------------------------------

enum class Kind { kDigits, kObjects, kStreet, kTextures };

std::unique_ptr<data::Dataset>
make(Kind kind, std::int64_t count, std::uint64_t seed)
{
    switch (kind) {
      case Kind::kDigits: {
        data::DigitsConfig c;
        c.count = count;
        c.seed = seed;
        return std::make_unique<data::DigitsDataset>(c);
      }
      case Kind::kObjects: {
        data::ObjectsConfig c;
        c.count = count;
        c.seed = seed;
        return std::make_unique<data::ObjectsDataset>(c);
      }
      case Kind::kStreet: {
        data::StreetDigitsConfig c;
        c.count = count;
        c.seed = seed;
        return std::make_unique<data::StreetDigitsDataset>(c);
      }
      case Kind::kTextures: {
        data::TexturesConfig c;
        c.count = count;
        c.seed = seed;
        return std::make_unique<data::TexturesDataset>(c);
      }
    }
    return nullptr;
}

class AllDatasets : public ::testing::TestWithParam<Kind>
{};

TEST_P(AllDatasets, ShapesAndRanges)
{
    auto ds = make(GetParam(), 40, 5);
    EXPECT_EQ(ds->size(), 40);
    EXPECT_GE(ds->num_classes(), 2);
    const Shape img = ds->image_shape();
    for (std::int64_t i = 0; i < 40; i += 7) {
        const data::Sample s = ds->get(i);
        EXPECT_EQ(s.image.shape(), img);
        EXPECT_GE(s.label, 0);
        EXPECT_LT(s.label, ds->num_classes());
        EXPECT_GE(s.image.min(), 0.0f);
        EXPECT_LE(s.image.max(), 1.0f);
        EXPECT_FALSE(s.image.has_nonfinite());
    }
}

TEST_P(AllDatasets, DeterministicPerIndex)
{
    auto a = make(GetParam(), 20, 9);
    auto b = make(GetParam(), 20, 9);
    for (std::int64_t i = 0; i < 20; i += 5) {
        const data::Sample sa = a->get(i);
        const data::Sample sb = b->get(i);
        EXPECT_EQ(sa.label, sb.label);
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(sa.image, sb.image), 0.0);
    }
}

TEST_P(AllDatasets, DifferentSeedsProduceDifferentImages)
{
    auto a = make(GetParam(), 10, 1);
    auto b = make(GetParam(), 10, 2);
    const data::Sample sa = a->get(0);
    const data::Sample sb = b->get(0);
    EXPECT_GT(ops::max_abs_diff(sa.image, sb.image), 1e-3);
}

TEST_P(AllDatasets, SameClassSamplesVary)
{
    auto ds = make(GetParam(), 100, 3);
    const std::int64_t classes = ds->num_classes();
    // Indices i and i+classes share a label but must differ visually.
    const data::Sample s0 = ds->get(0);
    const data::Sample s1 = ds->get(classes);
    EXPECT_EQ(s0.label, s1.label);
    EXPECT_GT(ops::max_abs_diff(s0.image, s1.image), 1e-3);
}

TEST_P(AllDatasets, LabelsCycleThroughAllClasses)
{
    auto ds = make(GetParam(), 200, 4);
    std::set<std::int64_t> seen;
    for (std::int64_t i = 0; i < ds->num_classes() * 2; ++i) {
        seen.insert(ds->get(i).label);
    }
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), ds->num_classes());
}

TEST_P(AllDatasets, ImagesCarrySignal)
{
    // Non-trivial image content: variance well above zero.
    auto ds = make(GetParam(), 10, 6);
    for (std::int64_t i = 0; i < 5; ++i) {
        EXPECT_GT(ds->get(i).image.variance(), 1e-3);
    }
}

INSTANTIATE_TEST_SUITE_P(Generators, AllDatasets,
                         ::testing::Values(Kind::kDigits, Kind::kObjects,
                                           Kind::kStreet,
                                           Kind::kTextures));

// ---------------------------------------------------------------------
// Specific dataset facts
// ---------------------------------------------------------------------

TEST(Digits, IsGrayscale28)
{
    data::DigitsDataset ds;
    EXPECT_EQ(ds.image_shape(), Shape({1, 28, 28}));
    EXPECT_EQ(ds.num_classes(), 10);
    EXPECT_EQ(ds.name(), "digits");
}

TEST(Objects, IsColor32)
{
    data::ObjectsDataset ds;
    EXPECT_EQ(ds.image_shape(), Shape({3, 32, 32}));
    EXPECT_EQ(ds.num_classes(), 10);
}

TEST(StreetDigits, IsColor32)
{
    data::StreetDigitsDataset ds;
    EXPECT_EQ(ds.image_shape(), Shape({3, 32, 32}));
}

TEST(Textures, ConfigurableSizeAndClasses)
{
    data::TexturesConfig c;
    c.image_size = 48;
    c.classes = 12;
    c.count = 30;
    data::TexturesDataset ds(c);
    EXPECT_EQ(ds.image_shape(), Shape({3, 48, 48}));
    EXPECT_EQ(ds.num_classes(), 12);
    EXPECT_EQ(ds.get(13).label, 1);  // 13 % 12
}

// ---------------------------------------------------------------------
// Materialize + DataLoader
// ---------------------------------------------------------------------

TEST(Materialize, PacksBatch)
{
    data::DigitsConfig c;
    c.count = 20;
    data::DigitsDataset ds(c);
    const Batch b = data::materialize(ds, 5, 4);
    EXPECT_EQ(b.images.shape(), Shape({4, 1, 28, 28}));
    EXPECT_EQ(b.size(), 4);
    // Slice matches the direct sample.
    const data::Sample s = ds.get(6);
    EXPECT_DOUBLE_EQ(
        ops::max_abs_diff(b.images.slice0(1), s.image), 0.0);
    EXPECT_EQ(b.labels[1], s.label);
}

TEST(DataLoader, CoversEpochExactlyOnce)
{
    data::DigitsConfig c;
    c.count = 25;
    data::DigitsDataset ds(c);
    Rng rng(1);
    data::DataLoader loader(ds, 8, /*shuffle=*/true, rng);
    EXPECT_EQ(loader.batches_per_epoch(), 4);  // 8+8+8+1

    std::int64_t total = 0;
    std::multiset<std::int64_t> labels;
    while (auto b = loader.next()) {
        total += b->size();
        for (auto l : b->labels) {
            labels.insert(l);
        }
    }
    EXPECT_EQ(total, 25);
    EXPECT_FALSE(loader.next().has_value());
}

TEST(DataLoader, FinalPartialBatch)
{
    data::DigitsConfig c;
    c.count = 10;
    data::DigitsDataset ds(c);
    Rng rng(2);
    data::DataLoader loader(ds, 4, false, rng);
    EXPECT_EQ(loader.next()->size(), 4);
    EXPECT_EQ(loader.next()->size(), 4);
    EXPECT_EQ(loader.next()->size(), 2);
    EXPECT_FALSE(loader.next().has_value());
}

TEST(DataLoader, ResetStartsNewEpoch)
{
    data::DigitsConfig c;
    c.count = 6;
    data::DigitsDataset ds(c);
    Rng rng(3);
    data::DataLoader loader(ds, 6, false, rng);
    EXPECT_TRUE(loader.next().has_value());
    EXPECT_FALSE(loader.next().has_value());
    loader.reset();
    EXPECT_TRUE(loader.next().has_value());
}

TEST(DataLoader, ShuffleChangesOrderButNotContent)
{
    data::DigitsConfig c;
    c.count = 64;
    data::DigitsDataset ds(c);
    Rng rng(4);
    data::DataLoader plain(ds, 64, false, rng);
    data::DataLoader shuffled(ds, 64, true, rng);
    const Batch a = *plain.next();
    const Batch b = *shuffled.next();
    // Same multiset of labels…
    std::multiset<std::int64_t> la(a.labels.begin(), a.labels.end());
    std::multiset<std::int64_t> lb(b.labels.begin(), b.labels.end());
    EXPECT_EQ(la, lb);
    // …but different order (64 samples; collision chance ≈ 0).
    EXPECT_NE(a.labels, b.labels);
}

}  // namespace
}  // namespace shredder
