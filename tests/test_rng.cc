/** @file Unit tests for the random number generator. */
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/tensor/rng.h"

namespace shredder {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform(), b.uniform());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == b.uniform()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.uniform(-2.0f, 3.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    const int n = 20000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(1.5f, 2.0f);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 1.5, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, LaplaceMoments)
{
    // Laplace(µ, b): mean µ, variance 2b².
    Rng rng(13);
    const int n = 40000;
    const float mu = 0.7f, b = 1.3f;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.laplace(mu, b);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.7, 0.05);
    EXPECT_NEAR(var, 2.0 * 1.3 * 1.3, 0.2);
}

TEST(Rng, LaplaceIsSymmetricAroundLocation)
{
    Rng rng(17);
    int above = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.laplace(5.0f, 2.0f) > 5.0f) {
            ++above;
        }
    }
    EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.02);
}

TEST(Rng, LaplaceHeavierTailsThanNormal)
{
    // Matched variance: Laplace should produce more |x| > 3σ events.
    Rng rng(19);
    const int n = 50000;
    const float sigma = 1.0f;
    const float b = sigma / std::sqrt(2.0f);
    int lap_tail = 0, norm_tail = 0;
    for (int i = 0; i < n; ++i) {
        if (std::abs(rng.laplace(0.0f, b)) > 3.0f * sigma) {
            ++lap_tail;
        }
        if (std::abs(rng.normal(0.0f, sigma)) > 3.0f * sigma) {
            ++norm_tail;
        }
    }
    EXPECT_GT(lap_tail, norm_tail);
}

TEST(Rng, RandintBounds)
{
    Rng rng(23);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.randint(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng rng(29);
    auto p = rng.permutation(100);
    std::sort(p.begin(), p.end());
    for (std::int64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
    }
}

TEST(Rng, ForkIndependence)
{
    Rng parent(31);
    Rng child = parent.fork();
    // Child stream differs from the parent's continued stream.
    int equal = 0;
    for (int i = 0; i < 50; ++i) {
        if (parent.uniform() == child.uniform()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(37);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        hits += rng.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace shredder
