/** @file Gradient and behavior tests for every layer type. */
#include <memory>

#include <gtest/gtest.h>

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/linear.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using nn::ExecutionContext;
using nn::Mode;

// ---------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------

TEST(ReLU, ForwardClampsNegatives)
{
    nn::ReLU relu;
    ExecutionContext ctx;
    Tensor x = Tensor::from_vector({-1.0f, 0.0f, 2.0f});
    Tensor y = relu.forward(x, ctx, Mode::kEval);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_EQ(y[2], 2.0f);
}

TEST(ReLU, GradientMasksNegatives)
{
    nn::ReLU relu;
    ExecutionContext ctx;
    Tensor x = Tensor::from_vector({-1.0f, 3.0f});
    relu.forward(x, ctx, Mode::kEval);
    Tensor g = relu.backward(Tensor::from_vector({5.0f, 7.0f}), ctx);
    EXPECT_EQ(g[0], 0.0f);
    EXPECT_EQ(g[1], 7.0f);
}

TEST(ReLU, NumericGradient)
{
    nn::ReLU relu;
    Rng rng(1);
    // Keep values away from the kink for a clean finite difference.
    Tensor x = Tensor::normal(Shape({2, 5}), rng, 0.0f, 2.0f);
    ops::map_inplace(x, [](float v) {
        return std::abs(v) < 0.1f ? v + 0.2f : v;
    });
    testing::check_layer_gradients(relu, x, rng);
}

TEST(ReLU, IndependentContextsDoNotInterfere)
{
    // The statelessness contract: two execution streams may interleave
    // forwards on ONE layer object and still back-propagate correctly,
    // because caches live in the contexts.
    nn::ReLU relu;
    ExecutionContext ctx_a, ctx_b;
    Tensor xa = Tensor::from_vector({-1.0f, 3.0f});
    Tensor xb = Tensor::from_vector({2.0f, -4.0f});
    relu.forward(xa, ctx_a, Mode::kEval);
    relu.forward(xb, ctx_b, Mode::kEval);  // would clobber member caches
    Tensor ga = relu.backward(Tensor::from_vector({5.0f, 7.0f}), ctx_a);
    Tensor gb = relu.backward(Tensor::from_vector({11.0f, 13.0f}), ctx_b);
    EXPECT_EQ(ga[0], 0.0f);  // xa[0] < 0
    EXPECT_EQ(ga[1], 7.0f);
    EXPECT_EQ(gb[0], 11.0f);
    EXPECT_EQ(gb[1], 0.0f);  // xb[1] < 0
}

// ---------------------------------------------------------------------
// Tanh
// ---------------------------------------------------------------------

TEST(Tanh, ForwardRange)
{
    nn::Tanh tanh_layer;
    ExecutionContext ctx;
    Rng rng(2);
    Tensor x = Tensor::normal(Shape({10}), rng, 0.0f, 3.0f);
    Tensor y = tanh_layer.forward(x, ctx, Mode::kEval);
    for (std::int64_t i = 0; i < y.size(); ++i) {
        EXPECT_GT(y[i], -1.0f);
        EXPECT_LT(y[i], 1.0f);
    }
}

TEST(Tanh, NumericGradient)
{
    nn::Tanh tanh_layer;
    Rng rng(3);
    Tensor x = Tensor::normal(Shape({3, 4}), rng);
    testing::check_layer_gradients(tanh_layer, x, rng, 1e-2f, 2e-2);
}

// ---------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------

TEST(Linear, KnownForward)
{
    Rng rng(4);
    nn::Linear fc(2, 1, rng);
    fc.weight().value[0] = 2.0f;
    fc.weight().value[1] = -1.0f;
    fc.bias().value[0] = 0.5f;
    ExecutionContext ctx;
    Tensor x(Shape({1, 2}));
    x[0] = 3.0f;
    x[1] = 4.0f;
    Tensor y = fc.forward(x, ctx, Mode::kEval);
    EXPECT_FLOAT_EQ(y[0], 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(Linear, OutputShapeAndMacs)
{
    Rng rng(5);
    nn::Linear fc(10, 4, rng);
    EXPECT_EQ(fc.output_shape(Shape({8, 10})), Shape({8, 4}));
    EXPECT_EQ(fc.macs(Shape({8, 10})), 40);
}

TEST(Linear, NumericGradient)
{
    Rng rng(6);
    nn::Linear fc(6, 4, rng);
    Tensor x = Tensor::normal(Shape({3, 6}), rng);
    testing::check_layer_gradients(fc, x, rng);
}

TEST(Linear, FrozenWeightSkipsGradAccumulation)
{
    Rng rng(7);
    nn::Linear fc(3, 2, rng);
    fc.set_frozen(true);
    ExecutionContext ctx;
    Tensor x = Tensor::normal(Shape({2, 3}), rng);
    fc.zero_grad();
    Tensor y = fc.forward(x, ctx, Mode::kTrain);
    fc.backward(Tensor::ones(y.shape()), ctx);
    EXPECT_DOUBLE_EQ(fc.weight().grad.abs_sum(), 0.0);
    EXPECT_DOUBLE_EQ(fc.bias().grad.abs_sum(), 0.0);
}

// ---------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------

TEST(Conv2d, KnownForwardSumKernel)
{
    // All-ones 2×2 kernel on a 2×2 image of ones, no pad → sums to 4.
    Rng rng(8);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 1;
    cfg.out_channels = 1;
    cfg.kernel = 2;
    nn::Conv2d conv(cfg, rng);
    conv.weight().value.fill(1.0f);
    conv.bias().value.fill(0.0f);
    ExecutionContext ctx;
    Tensor x = Tensor::ones(Shape({1, 1, 2, 2}));
    Tensor y = conv.forward(x, ctx, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(y[0], 4.0f);
}

TEST(Conv2d, BiasIsAdded)
{
    Rng rng(9);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 1;
    cfg.out_channels = 2;
    cfg.kernel = 1;
    nn::Conv2d conv(cfg, rng);
    conv.weight().value.fill(0.0f);
    conv.bias().value[0] = 1.5f;
    conv.bias().value[1] = -2.0f;
    ExecutionContext ctx;
    Tensor x = Tensor::ones(Shape({1, 1, 3, 3}));
    Tensor y = conv.forward(x, ctx, Mode::kEval);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1.5f);
    EXPECT_FLOAT_EQ(y.at4(0, 1, 2, 2), -2.0f);
}

TEST(Conv2d, OutputShapeStridePad)
{
    Rng rng(10);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 3;
    cfg.out_channels = 8;
    cfg.kernel = 5;
    cfg.stride = 2;
    cfg.padding = 2;
    nn::Conv2d conv(cfg, rng);
    EXPECT_EQ(conv.output_shape(Shape({2, 3, 64, 64})),
              Shape({2, 8, 32, 32}));
}

TEST(Conv2d, MacsFormula)
{
    Rng rng(11);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 3;
    cfg.out_channels = 4;
    cfg.kernel = 3;
    cfg.padding = 1;
    nn::Conv2d conv(cfg, rng);
    // 4 out-ch × 8×8 positions × (3·3·3) fan-in = 6912.
    EXPECT_EQ(conv.macs(Shape({1, 3, 8, 8})), 4 * 8 * 8 * 27);
}

struct ConvGradCase
{
    std::int64_t in_c, out_c, k, stride, pad, h, w;
};

class Conv2dGradient : public ::testing::TestWithParam<ConvGradCase>
{};

TEST_P(Conv2dGradient, MatchesNumeric)
{
    const auto p = GetParam();
    Rng rng(static_cast<std::uint64_t>(p.in_c * 100 + p.k * 10 + p.stride));
    nn::Conv2dConfig cfg;
    cfg.in_channels = p.in_c;
    cfg.out_channels = p.out_c;
    cfg.kernel = p.k;
    cfg.stride = p.stride;
    cfg.padding = p.pad;
    nn::Conv2d conv(cfg, rng);
    Tensor x = Tensor::normal(Shape({2, p.in_c, p.h, p.w}), rng);
    testing::check_layer_gradients(conv, x, rng, 1e-2f, 4e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Conv2dGradient,
    ::testing::Values(ConvGradCase{1, 2, 3, 1, 1, 5, 5},
                      ConvGradCase{2, 3, 3, 2, 1, 7, 6},
                      ConvGradCase{3, 2, 5, 1, 2, 6, 6},
                      ConvGradCase{2, 2, 1, 1, 0, 4, 4},
                      ConvGradCase{1, 4, 2, 2, 0, 6, 6}));

// ---------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------

TEST(MaxPool2d, SelectsWindowMaximum)
{
    nn::MaxPool2d pool(nn::PoolConfig{2, 2, 0});
    ExecutionContext ctx;
    Tensor x(Shape({1, 1, 2, 2}));
    x[0] = 1.0f;
    x[1] = 9.0f;
    x[2] = 3.0f;
    x[3] = 4.0f;
    Tensor y = pool.forward(x, ctx, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(y[0], 9.0f);
}

TEST(MaxPool2d, GradientRoutesToArgmax)
{
    nn::MaxPool2d pool(nn::PoolConfig{2, 2, 0});
    ExecutionContext ctx;
    Tensor x(Shape({1, 1, 2, 2}));
    x[0] = 1.0f;
    x[1] = 9.0f;
    x[2] = 3.0f;
    x[3] = 4.0f;
    pool.forward(x, ctx, Mode::kEval);
    Tensor g =
        pool.backward(Tensor::full(Shape({1, 1, 1, 1}), 2.0f), ctx);
    EXPECT_FLOAT_EQ(g[1], 2.0f);
    EXPECT_FLOAT_EQ(g[0], 0.0f);
    EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(MaxPool2d, OverlappingWindowsAlexNetStyle)
{
    nn::MaxPool2d pool(nn::PoolConfig{3, 2, 0});
    ExecutionContext ctx;
    Rng rng(12);
    Tensor x = Tensor::normal(Shape({1, 2, 7, 7}), rng);
    Tensor y = pool.forward(x, ctx, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({1, 2, 3, 3}));
}

TEST(MaxPool2d, NumericGradient)
{
    nn::MaxPool2d pool(nn::PoolConfig{2, 2, 0});
    Rng rng(13);
    // Spread values so argmax is stable under the FD perturbation.
    Tensor x = Tensor::normal(Shape({1, 2, 4, 4}), rng, 0.0f, 5.0f);
    testing::check_layer_gradients(pool, x, rng, 1e-3f, 2e-2);
}

TEST(AvgPool2d, AveragesWindow)
{
    nn::AvgPool2d pool(nn::PoolConfig{2, 2, 0});
    ExecutionContext ctx;
    Tensor x(Shape({1, 1, 2, 2}));
    x[0] = 1.0f;
    x[1] = 2.0f;
    x[2] = 3.0f;
    x[3] = 4.0f;
    Tensor y = pool.forward(x, ctx, Mode::kEval);
    EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AvgPool2d, NumericGradient)
{
    nn::AvgPool2d pool(nn::PoolConfig{2, 2, 0});
    Rng rng(14);
    Tensor x = Tensor::normal(Shape({2, 2, 4, 4}), rng);
    testing::check_layer_gradients(pool, x, rng);
}

// ---------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------

TEST(Flatten, ForwardShape)
{
    nn::Flatten flat;
    ExecutionContext ctx;
    Rng rng(15);
    Tensor x = Tensor::normal(Shape({4, 3, 2, 2}), rng);
    Tensor y = flat.forward(x, ctx, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({4, 12}));
    EXPECT_EQ(y[5], x[5]);  // data order preserved
}

TEST(Flatten, BackwardRestoresShape)
{
    nn::Flatten flat;
    ExecutionContext ctx;
    Rng rng(16);
    Tensor x = Tensor::normal(Shape({2, 3, 2, 2}), rng);
    Tensor y = flat.forward(x, ctx, Mode::kEval);
    Tensor g = flat.backward(Tensor::ones(y.shape()), ctx);
    EXPECT_EQ(g.shape(), x.shape());
}

// ---------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------

TEST(Dropout, EvalIsIdentity)
{
    nn::Dropout drop(0.5f);
    ExecutionContext ctx(17);
    Rng rng(17);
    Tensor x = Tensor::normal(Shape({100}), rng);
    Tensor y = drop.forward(x, ctx, Mode::kEval);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(x, y), 0.0);
}

TEST(Dropout, TrainZeroesRoughlyP)
{
    nn::Dropout drop(0.4f);
    ExecutionContext ctx(18);
    Tensor x = Tensor::ones(Shape({20000}));
    Tensor y = drop.forward(x, ctx, Mode::kTrain);
    std::int64_t zeros = 0;
    for (std::int64_t i = 0; i < y.size(); ++i) {
        if (y[i] == 0.0f) {
            ++zeros;
        } else {
            EXPECT_NEAR(y[i], 1.0f / 0.6f, 1e-5);
        }
    }
    EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.4, 0.02);
}

TEST(Dropout, TrainPreservesExpectation)
{
    nn::Dropout drop(0.3f);
    ExecutionContext ctx(19);
    Tensor x = Tensor::ones(Shape({50000}));
    Tensor y = drop.forward(x, ctx, Mode::kTrain);
    EXPECT_NEAR(y.mean(), 1.0, 0.02);
}

TEST(Dropout, BackwardUsesSameMask)
{
    nn::Dropout drop(0.5f);
    ExecutionContext ctx(20);
    Tensor x = Tensor::ones(Shape({1000}));
    Tensor y = drop.forward(x, ctx, Mode::kTrain);
    Tensor g = drop.backward(Tensor::ones(x.shape()), ctx);
    for (std::int64_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(g[i], y[i]);  // identical mask & scale
    }
}

TEST(Dropout, SeededContextIsReproducible)
{
    nn::Dropout drop(0.5f);
    Tensor x = Tensor::ones(Shape({512}));
    ExecutionContext ctx_a(99), ctx_b(99);
    Tensor ya = drop.forward(x, ctx_a, Mode::kTrain);
    Tensor yb = drop.forward(x, ctx_b, Mode::kTrain);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(ya, yb), 0.0);
}

TEST(Dropout, EvalInAnotherContextDoesNotPoisonTraining)
{
    // Regression for the seed-era hazard: `last_was_train_` was a
    // layer member, so an eval forward (any other stream!) between a
    // train forward and its backward made backward skip the mask —
    // silently wrong gradients. With per-context state the training
    // stream is immune to interleaved eval traffic.
    nn::Dropout drop(0.5f);
    Tensor x = Tensor::ones(Shape({1000}));

    ExecutionContext train_ctx(21);
    Tensor y = drop.forward(x, train_ctx, Mode::kTrain);

    ExecutionContext serve_ctx;  // e.g. a concurrent inference stream
    drop.forward(x, serve_ctx, Mode::kEval);

    Tensor g = drop.backward(Tensor::ones(x.shape()), train_ctx);
    for (std::int64_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(g[i], y[i]) << "mask lost at " << i;
    }
    // And the eval stream's backward is a pass-through, as its own
    // forward was.
    Tensor ge = drop.backward(Tensor::ones(x.shape()), serve_ctx);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(ge, Tensor::ones(x.shape())), 0.0);
}

TEST(Dropout, TwoTrainingStreamsKeepDistinctMasks)
{
    nn::Dropout drop(0.5f);
    Tensor x = Tensor::ones(Shape({2000}));
    ExecutionContext ctx_a(1), ctx_b(2);
    Tensor ya = drop.forward(x, ctx_a, Mode::kTrain);
    Tensor yb = drop.forward(x, ctx_b, Mode::kTrain);
    // Backward through each context applies that context's own mask.
    Tensor ga = drop.backward(Tensor::ones(x.shape()), ctx_a);
    Tensor gb = drop.backward(Tensor::ones(x.shape()), ctx_b);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(ga, ya), 0.0);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(gb, yb), 0.0);
    // Different seeds ⇒ different masks (overwhelmingly likely).
    EXPECT_GT(ops::max_abs_diff(ya, yb), 0.0);
}

// ---------------------------------------------------------------------
// LocalResponseNorm
// ---------------------------------------------------------------------

TEST(Lrn, NormalizesAcrossChannels)
{
    nn::LrnConfig cfg;
    cfg.size = 3;
    cfg.alpha = 1.0f;
    cfg.beta = 1.0f;
    cfg.k = 1.0f;
    nn::LocalResponseNorm lrn(cfg);
    ExecutionContext ctx;
    Tensor x = Tensor::ones(Shape({1, 3, 1, 1}));
    Tensor y = lrn.forward(x, ctx, Mode::kEval);
    // Middle channel window covers all 3 ones: scale = 1 + (1/3)*3 = 2.
    EXPECT_NEAR(y.at4(0, 1, 0, 0), 0.5f, 1e-5);
    // Edge channels see a 2-wide window: scale = 1 + (1/3)*2.
    EXPECT_NEAR(y.at4(0, 0, 0, 0), 1.0f / (1.0f + 2.0f / 3.0f), 1e-5);
}

TEST(Lrn, IdentityWhenAlphaZero)
{
    nn::LrnConfig cfg;
    cfg.alpha = 0.0f;
    cfg.k = 1.0f;
    nn::LocalResponseNorm lrn(cfg);
    ExecutionContext ctx;
    Rng rng(21);
    Tensor x = Tensor::normal(Shape({2, 4, 3, 3}), rng);
    Tensor y = lrn.forward(x, ctx, Mode::kEval);
    EXPECT_NEAR(ops::max_abs_diff(x, y), 0.0, 1e-6);
}

TEST(Lrn, NumericGradient)
{
    nn::LrnConfig cfg;
    cfg.size = 3;
    cfg.alpha = 0.5f;
    cfg.beta = 0.75f;
    cfg.k = 2.0f;
    nn::LocalResponseNorm lrn(cfg);
    Rng rng(22);
    Tensor x = Tensor::normal(Shape({1, 4, 3, 3}), rng);
    testing::check_layer_gradients(lrn, x, rng, 1e-2f, 3e-2);
}

// ---------------------------------------------------------------------
// ExecutionContext plumbing
// ---------------------------------------------------------------------

TEST(ExecutionContext, StateSlotsAreKeyedByLayerIdentity)
{
    nn::ReLU a, b;
    ExecutionContext ctx;
    EXPECT_EQ(ctx.num_states(), 0u);
    ctx.state(&a).in_shape = Shape({1, 2});
    ctx.state(&b).in_shape = Shape({3, 4});
    EXPECT_EQ(ctx.num_states(), 2u);
    EXPECT_EQ(ctx.state(&a).in_shape, Shape({1, 2}));
    EXPECT_EQ(ctx.state(&b).in_shape, Shape({3, 4}));
    ctx.clear();
    EXPECT_EQ(ctx.num_states(), 0u);
    EXPECT_EQ(ctx.state(&a).in_shape.rank(), 0);
}

TEST(ExecutionContext, ForwardOnlyContextSkipsActivationCaches)
{
    // Serving contexts disable retention: outputs are identical, but
    // no per-layer activation copy is stored.
    Rng rng(30);
    nn::Linear fc(4, 3, rng);
    Tensor x = Tensor::normal(Shape({2, 4}), rng);

    ExecutionContext train_ctx;
    ExecutionContext serve_ctx;
    serve_ctx.set_retain_activations(false);
    Tensor y_train = fc.forward(x, train_ctx, Mode::kEval);
    Tensor y_serve = fc.forward(x, serve_ctx, Mode::kEval);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(y_train, y_serve), 0.0);
    EXPECT_FALSE(train_ctx.state(&fc).cached.empty());
    EXPECT_TRUE(serve_ctx.state(&fc).cached.empty());

    nn::MaxPool2d pool(nn::PoolConfig{2, 2, 0});
    Tensor img = Tensor::normal(Shape({1, 1, 4, 4}), rng);
    Tensor p_train = pool.forward(img, train_ctx, Mode::kEval);
    Tensor p_serve = pool.forward(img, serve_ctx, Mode::kEval);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(p_train, p_serve), 0.0);
    EXPECT_FALSE(train_ctx.state(&pool).argmax.empty());
    EXPECT_TRUE(serve_ctx.state(&pool).argmax.empty());
}

TEST(ExecutionContext, ClearResetsLayerState)
{
    nn::LayerState state;
    state.cached = Tensor::ones(Shape({4}));
    state.argmax = {1, 2};
    state.mask = {0.5f};
    state.stochastic = true;
    state.clear();
    EXPECT_TRUE(state.cached.empty());
    EXPECT_TRUE(state.argmax.empty());
    EXPECT_TRUE(state.mask.empty());
    EXPECT_FALSE(state.stochastic);
}

// ---------------------------------------------------------------------
// Identity
// ---------------------------------------------------------------------

TEST(Identity, PassThrough)
{
    nn::Identity id;
    ExecutionContext ctx;
    Rng rng(23);
    Tensor x = Tensor::normal(Shape({5}), rng);
    EXPECT_DOUBLE_EQ(
        ops::max_abs_diff(id.forward(x, ctx, Mode::kEval), x), 0.0);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(id.backward(x, ctx), x), 0.0);
    EXPECT_EQ(id.kind(), "identity");
}

}  // namespace
}  // namespace shredder
