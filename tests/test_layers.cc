/** @file Gradient and behavior tests for every layer type. */
#include <memory>

#include <gtest/gtest.h>

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/linear.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using nn::Mode;

// ---------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------

TEST(ReLU, ForwardClampsNegatives)
{
    nn::ReLU relu;
    Tensor x = Tensor::from_vector({-1.0f, 0.0f, 2.0f});
    Tensor y = relu.forward(x, Mode::kEval);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_EQ(y[2], 2.0f);
}

TEST(ReLU, GradientMasksNegatives)
{
    nn::ReLU relu;
    Tensor x = Tensor::from_vector({-1.0f, 3.0f});
    relu.forward(x, Mode::kEval);
    Tensor g = relu.backward(Tensor::from_vector({5.0f, 7.0f}));
    EXPECT_EQ(g[0], 0.0f);
    EXPECT_EQ(g[1], 7.0f);
}

TEST(ReLU, NumericGradient)
{
    nn::ReLU relu;
    Rng rng(1);
    // Keep values away from the kink for a clean finite difference.
    Tensor x = Tensor::normal(Shape({2, 5}), rng, 0.0f, 2.0f);
    ops::map_inplace(x, [](float v) {
        return std::abs(v) < 0.1f ? v + 0.2f : v;
    });
    testing::check_layer_gradients(relu, x, rng);
}

// ---------------------------------------------------------------------
// Tanh
// ---------------------------------------------------------------------

TEST(Tanh, ForwardRange)
{
    nn::Tanh tanh_layer;
    Rng rng(2);
    Tensor x = Tensor::normal(Shape({10}), rng, 0.0f, 3.0f);
    Tensor y = tanh_layer.forward(x, Mode::kEval);
    for (std::int64_t i = 0; i < y.size(); ++i) {
        EXPECT_GT(y[i], -1.0f);
        EXPECT_LT(y[i], 1.0f);
    }
}

TEST(Tanh, NumericGradient)
{
    nn::Tanh tanh_layer;
    Rng rng(3);
    Tensor x = Tensor::normal(Shape({3, 4}), rng);
    testing::check_layer_gradients(tanh_layer, x, rng, 1e-2f, 2e-2);
}

// ---------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------

TEST(Linear, KnownForward)
{
    Rng rng(4);
    nn::Linear fc(2, 1, rng);
    fc.weight().value[0] = 2.0f;
    fc.weight().value[1] = -1.0f;
    fc.bias().value[0] = 0.5f;
    Tensor x(Shape({1, 2}));
    x[0] = 3.0f;
    x[1] = 4.0f;
    Tensor y = fc.forward(x, Mode::kEval);
    EXPECT_FLOAT_EQ(y[0], 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(Linear, OutputShapeAndMacs)
{
    Rng rng(5);
    nn::Linear fc(10, 4, rng);
    EXPECT_EQ(fc.output_shape(Shape({8, 10})), Shape({8, 4}));
    EXPECT_EQ(fc.macs(Shape({8, 10})), 40);
}

TEST(Linear, NumericGradient)
{
    Rng rng(6);
    nn::Linear fc(6, 4, rng);
    Tensor x = Tensor::normal(Shape({3, 6}), rng);
    testing::check_layer_gradients(fc, x, rng);
}

TEST(Linear, FrozenWeightSkipsGradAccumulation)
{
    Rng rng(7);
    nn::Linear fc(3, 2, rng);
    fc.set_frozen(true);
    Tensor x = Tensor::normal(Shape({2, 3}), rng);
    fc.zero_grad();
    Tensor y = fc.forward(x, Mode::kTrain);
    fc.backward(Tensor::ones(y.shape()));
    EXPECT_DOUBLE_EQ(fc.weight().grad.abs_sum(), 0.0);
    EXPECT_DOUBLE_EQ(fc.bias().grad.abs_sum(), 0.0);
}

// ---------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------

TEST(Conv2d, KnownForwardSumKernel)
{
    // All-ones 2×2 kernel on a 2×2 image of ones, no pad → sums to 4.
    Rng rng(8);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 1;
    cfg.out_channels = 1;
    cfg.kernel = 2;
    nn::Conv2d conv(cfg, rng);
    conv.weight().value.fill(1.0f);
    conv.bias().value.fill(0.0f);
    Tensor x = Tensor::ones(Shape({1, 1, 2, 2}));
    Tensor y = conv.forward(x, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(y[0], 4.0f);
}

TEST(Conv2d, BiasIsAdded)
{
    Rng rng(9);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 1;
    cfg.out_channels = 2;
    cfg.kernel = 1;
    nn::Conv2d conv(cfg, rng);
    conv.weight().value.fill(0.0f);
    conv.bias().value[0] = 1.5f;
    conv.bias().value[1] = -2.0f;
    Tensor x = Tensor::ones(Shape({1, 1, 3, 3}));
    Tensor y = conv.forward(x, Mode::kEval);
    EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1.5f);
    EXPECT_FLOAT_EQ(y.at4(0, 1, 2, 2), -2.0f);
}

TEST(Conv2d, OutputShapeStridePad)
{
    Rng rng(10);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 3;
    cfg.out_channels = 8;
    cfg.kernel = 5;
    cfg.stride = 2;
    cfg.padding = 2;
    nn::Conv2d conv(cfg, rng);
    EXPECT_EQ(conv.output_shape(Shape({2, 3, 64, 64})),
              Shape({2, 8, 32, 32}));
}

TEST(Conv2d, MacsFormula)
{
    Rng rng(11);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 3;
    cfg.out_channels = 4;
    cfg.kernel = 3;
    cfg.padding = 1;
    nn::Conv2d conv(cfg, rng);
    // 4 out-ch × 8×8 positions × (3·3·3) fan-in = 6912.
    EXPECT_EQ(conv.macs(Shape({1, 3, 8, 8})), 4 * 8 * 8 * 27);
}

struct ConvGradCase
{
    std::int64_t in_c, out_c, k, stride, pad, h, w;
};

class Conv2dGradient : public ::testing::TestWithParam<ConvGradCase>
{};

TEST_P(Conv2dGradient, MatchesNumeric)
{
    const auto p = GetParam();
    Rng rng(static_cast<std::uint64_t>(p.in_c * 100 + p.k * 10 + p.stride));
    nn::Conv2dConfig cfg;
    cfg.in_channels = p.in_c;
    cfg.out_channels = p.out_c;
    cfg.kernel = p.k;
    cfg.stride = p.stride;
    cfg.padding = p.pad;
    nn::Conv2d conv(cfg, rng);
    Tensor x = Tensor::normal(Shape({2, p.in_c, p.h, p.w}), rng);
    testing::check_layer_gradients(conv, x, rng, 1e-2f, 4e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Conv2dGradient,
    ::testing::Values(ConvGradCase{1, 2, 3, 1, 1, 5, 5},
                      ConvGradCase{2, 3, 3, 2, 1, 7, 6},
                      ConvGradCase{3, 2, 5, 1, 2, 6, 6},
                      ConvGradCase{2, 2, 1, 1, 0, 4, 4},
                      ConvGradCase{1, 4, 2, 2, 0, 6, 6}));

// ---------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------

TEST(MaxPool2d, SelectsWindowMaximum)
{
    nn::MaxPool2d pool(nn::PoolConfig{2, 2, 0});
    Tensor x(Shape({1, 1, 2, 2}));
    x[0] = 1.0f;
    x[1] = 9.0f;
    x[2] = 3.0f;
    x[3] = 4.0f;
    Tensor y = pool.forward(x, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(y[0], 9.0f);
}

TEST(MaxPool2d, GradientRoutesToArgmax)
{
    nn::MaxPool2d pool(nn::PoolConfig{2, 2, 0});
    Tensor x(Shape({1, 1, 2, 2}));
    x[0] = 1.0f;
    x[1] = 9.0f;
    x[2] = 3.0f;
    x[3] = 4.0f;
    pool.forward(x, Mode::kEval);
    Tensor g = pool.backward(Tensor::full(Shape({1, 1, 1, 1}), 2.0f));
    EXPECT_FLOAT_EQ(g[1], 2.0f);
    EXPECT_FLOAT_EQ(g[0], 0.0f);
    EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(MaxPool2d, OverlappingWindowsAlexNetStyle)
{
    nn::MaxPool2d pool(nn::PoolConfig{3, 2, 0});
    Rng rng(12);
    Tensor x = Tensor::normal(Shape({1, 2, 7, 7}), rng);
    Tensor y = pool.forward(x, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({1, 2, 3, 3}));
}

TEST(MaxPool2d, NumericGradient)
{
    nn::MaxPool2d pool(nn::PoolConfig{2, 2, 0});
    Rng rng(13);
    // Spread values so argmax is stable under the FD perturbation.
    Tensor x = Tensor::normal(Shape({1, 2, 4, 4}), rng, 0.0f, 5.0f);
    testing::check_layer_gradients(pool, x, rng, 1e-3f, 2e-2);
}

TEST(AvgPool2d, AveragesWindow)
{
    nn::AvgPool2d pool(nn::PoolConfig{2, 2, 0});
    Tensor x(Shape({1, 1, 2, 2}));
    x[0] = 1.0f;
    x[1] = 2.0f;
    x[2] = 3.0f;
    x[3] = 4.0f;
    Tensor y = pool.forward(x, Mode::kEval);
    EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AvgPool2d, NumericGradient)
{
    nn::AvgPool2d pool(nn::PoolConfig{2, 2, 0});
    Rng rng(14);
    Tensor x = Tensor::normal(Shape({2, 2, 4, 4}), rng);
    testing::check_layer_gradients(pool, x, rng);
}

// ---------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------

TEST(Flatten, ForwardShape)
{
    nn::Flatten flat;
    Rng rng(15);
    Tensor x = Tensor::normal(Shape({4, 3, 2, 2}), rng);
    Tensor y = flat.forward(x, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({4, 12}));
    EXPECT_EQ(y[5], x[5]);  // data order preserved
}

TEST(Flatten, BackwardRestoresShape)
{
    nn::Flatten flat;
    Rng rng(16);
    Tensor x = Tensor::normal(Shape({2, 3, 2, 2}), rng);
    Tensor y = flat.forward(x, Mode::kEval);
    Tensor g = flat.backward(Tensor::ones(y.shape()));
    EXPECT_EQ(g.shape(), x.shape());
}

// ---------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------

TEST(Dropout, EvalIsIdentity)
{
    Rng rng(17);
    nn::Dropout drop(0.5f, rng);
    Tensor x = Tensor::normal(Shape({100}), rng);
    Tensor y = drop.forward(x, Mode::kEval);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(x, y), 0.0);
}

TEST(Dropout, TrainZeroesRoughlyP)
{
    Rng rng(18);
    nn::Dropout drop(0.4f, rng);
    Tensor x = Tensor::ones(Shape({20000}));
    Tensor y = drop.forward(x, Mode::kTrain);
    std::int64_t zeros = 0;
    for (std::int64_t i = 0; i < y.size(); ++i) {
        if (y[i] == 0.0f) {
            ++zeros;
        } else {
            EXPECT_NEAR(y[i], 1.0f / 0.6f, 1e-5);
        }
    }
    EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.4, 0.02);
}

TEST(Dropout, TrainPreservesExpectation)
{
    Rng rng(19);
    nn::Dropout drop(0.3f, rng);
    Tensor x = Tensor::ones(Shape({50000}));
    Tensor y = drop.forward(x, Mode::kTrain);
    EXPECT_NEAR(y.mean(), 1.0, 0.02);
}

TEST(Dropout, BackwardUsesSameMask)
{
    Rng rng(20);
    nn::Dropout drop(0.5f, rng);
    Tensor x = Tensor::ones(Shape({1000}));
    Tensor y = drop.forward(x, Mode::kTrain);
    Tensor g = drop.backward(Tensor::ones(x.shape()));
    for (std::int64_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(g[i], y[i]);  // identical mask & scale
    }
}

// ---------------------------------------------------------------------
// LocalResponseNorm
// ---------------------------------------------------------------------

TEST(Lrn, NormalizesAcrossChannels)
{
    nn::LrnConfig cfg;
    cfg.size = 3;
    cfg.alpha = 1.0f;
    cfg.beta = 1.0f;
    cfg.k = 1.0f;
    nn::LocalResponseNorm lrn(cfg);
    Tensor x = Tensor::ones(Shape({1, 3, 1, 1}));
    Tensor y = lrn.forward(x, Mode::kEval);
    // Middle channel window covers all 3 ones: scale = 1 + (1/3)*3 = 2.
    EXPECT_NEAR(y.at4(0, 1, 0, 0), 0.5f, 1e-5);
    // Edge channels see a 2-wide window: scale = 1 + (1/3)*2.
    EXPECT_NEAR(y.at4(0, 0, 0, 0), 1.0f / (1.0f + 2.0f / 3.0f), 1e-5);
}

TEST(Lrn, IdentityWhenAlphaZero)
{
    nn::LrnConfig cfg;
    cfg.alpha = 0.0f;
    cfg.k = 1.0f;
    nn::LocalResponseNorm lrn(cfg);
    Rng rng(21);
    Tensor x = Tensor::normal(Shape({2, 4, 3, 3}), rng);
    Tensor y = lrn.forward(x, Mode::kEval);
    EXPECT_NEAR(ops::max_abs_diff(x, y), 0.0, 1e-6);
}

TEST(Lrn, NumericGradient)
{
    nn::LrnConfig cfg;
    cfg.size = 3;
    cfg.alpha = 0.5f;
    cfg.beta = 0.75f;
    cfg.k = 2.0f;
    nn::LocalResponseNorm lrn(cfg);
    Rng rng(22);
    Tensor x = Tensor::normal(Shape({1, 4, 3, 3}), rng);
    testing::check_layer_gradients(lrn, x, rng, 1e-2f, 3e-2);
}

// ---------------------------------------------------------------------
// Identity
// ---------------------------------------------------------------------

TEST(Identity, PassThrough)
{
    nn::Identity id;
    Rng rng(23);
    Tensor x = Tensor::normal(Shape({5}), rng);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(id.forward(x, Mode::kEval), x), 0.0);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(id.backward(x), x), 0.0);
    EXPECT_EQ(id.kind(), "identity");
}

}  // namespace
}  // namespace shredder
