/**
 * @file
 * Policy-contract conformance suite — the `NoisePolicy` prose contract
 * (src/runtime/noise_policy.h) as executable law.
 *
 * A policy passes by instantiating the value-parameterized suite with
 * one `PolicyContractCase` per configuration:
 *
 *     static std::vector<testing::PolicyContractCase> cases() { ... }
 *     INSTANTIATE_TEST_SUITE_P(MyPolicies, PolicyContract,
 *                              ::testing::ValuesIn(cases()),
 *                              testing::policy_contract_name);
 *
 * The suite pins, for every case:
 *
 *  - **Purity in the request id** — the same id yields bit-exact output
 *    across repeated calls AND across independently constructed policy
 *    instances (`make()` twice), so serving results never depend on
 *    call history or which replica handled the request.
 *  - **Id sensitivity** — distinct ids yield different outputs (unless
 *    the case opts out: id-independent mechanisms like none/fixed).
 *  - **`apply_into ≡ apply`** — the server's fused hot path is
 *    bit-identical to the definitional entry point.
 *  - **Shape preservation + flat indexing** — output shape equals input
 *    shape, and a flattened caller gets the same bits.
 *  - **Concurrent determinism** — a 16-thread hammer on ONE shared
 *    instance reproduces the serial reference bit-exactly (run under
 *    TSan via the `contract` ctest label to catch silent races too).
 *  - **Offline-recipe reproducibility** — when the case supplies the
 *    documented from-first-principles recipe (seed math only), the
 *    policy matches it bit-exactly.
 */
#ifndef SHREDDER_TESTS_POLICY_CONTRACT_H
#define SHREDDER_TESTS_POLICY_CONTRACT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/noise_policy.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "tests/test_util.h"

namespace shredder {
namespace testing {

/** One policy configuration under contract. */
struct PolicyContractCase
{
    /** Instantiation suffix — alphanumeric + underscore only. */
    std::string label;
    /** Activation shape the policy is exercised on. */
    Shape activation_shape;
    /**
     * Factory for a fresh, independently constructed instance of the
     * SAME configuration (same seeds, same backing artifacts). Called
     * multiple times; borrowed artifacts (e.g. a `ReplayPolicy`'s
     * collection) must be owned by the factory's captures.
     */
    std::function<std::shared_ptr<const runtime::NoisePolicy>()> make;
    /** False for mechanisms that ignore the id (none, fixed). */
    bool id_sensitive = true;
    /**
     * Optional: recompute `apply(activation, id)` from first
     * principles (the documented offline recipe — `noise_seed` plus
     * the mechanism's draw). Null when the case pins no recipe.
     */
    std::function<Tensor(const Tensor&, std::uint64_t)> offline_recipe;
};

/** gtest name generator: the case label. */
inline std::string
policy_contract_name(
    const ::testing::TestParamInfo<PolicyContractCase>& info)
{
    return info.param.label;
}

/** Value-parameterized fixture; see file comment for the law. */
class PolicyContract
    : public ::testing::TestWithParam<PolicyContractCase>
{
  protected:
    /** Deterministic activation every test of a case agrees on. */
    Tensor
    activation() const
    {
        Rng rng(0x7E57AC7ULL);
        return Tensor::normal(GetParam().activation_shape, rng);
    }
};

TEST_P(PolicyContract, PureInRequestIdAcrossCallsAndInstances)
{
    const auto& param = GetParam();
    const auto policy = param.make();
    const auto replica = param.make();  // an independent "server"
    const Tensor a = activation();
    for (std::uint64_t id : {0ULL, 1ULL, 77ULL, (1ULL << 62) + 3ULL}) {
        const Tensor first = policy->apply(a, id);
        EXPECT_EQ(ops::max_abs_diff(first, policy->apply(a, id)), 0.0)
            << "repeated call drifted for id " << id;
        EXPECT_EQ(ops::max_abs_diff(first, replica->apply(a, id)), 0.0)
            << "independent instance drifted for id " << id;
    }
    // Call-order independence: a fresh instance queried in reverse
    // still agrees with the forward pass.
    const auto reversed = param.make();
    const Tensor at7 = policy->apply(a, 7);
    const Tensor at2 = policy->apply(a, 2);
    EXPECT_EQ(ops::max_abs_diff(reversed->apply(a, 2), at2), 0.0);
    EXPECT_EQ(ops::max_abs_diff(reversed->apply(a, 7), at7), 0.0);
}

TEST_P(PolicyContract, IdSensitivityMatchesTheMechanism)
{
    const auto& param = GetParam();
    const auto policy = param.make();
    const Tensor a = activation();
    const Tensor at0 = policy->apply(a, 0);
    const Tensor at1 = policy->apply(a, 1);
    if (param.id_sensitive) {
        EXPECT_GT(ops::max_abs_diff(at0, at1), 0.0)
            << "id-sensitive mechanism returned identical output for "
               "distinct ids";
    } else {
        EXPECT_EQ(ops::max_abs_diff(at0, at1), 0.0)
            << "id-independent mechanism varied with the id";
    }
}

TEST_P(PolicyContract, ApplyIntoAgreesWithApply)
{
    const auto policy = GetParam().make();
    const Tensor a = activation();
    for (std::uint64_t id : {0ULL, 5ULL, 77ULL}) {
        Tensor dst = a;  // apply_into expects the activation copy
        policy->apply_into(a, id, dst.data());
        testing::expect_tensors_near(dst, policy->apply(a, id), 0.0,
                                     "apply_into vs apply");
    }
}

TEST_P(PolicyContract, PreservesShapeAndIndexesFlat)
{
    const auto policy = GetParam().make();
    const Tensor a = activation();
    const Tensor out = policy->apply(a, 9);
    EXPECT_EQ(out.shape().to_string(), a.shape().to_string());

    const Tensor flat = a.reshaped(Shape({a.size()}));
    const Tensor out_flat = policy->apply(flat, 9);
    EXPECT_EQ(out_flat.shape().rank(), 1);
    testing::expect_tensors_near(out.reshaped(Shape({a.size()})),
                                 out_flat, 0.0,
                                 "shape-preserving flat indexing");
}

TEST_P(PolicyContract, ConcurrentHammerIsBitExact)
{
    // 16 threads hammer ONE shared instance over interleaved ids via
    // both entry points; every result must equal the serial reference
    // bit-exactly. A data race on hidden shared state shows up here as
    // a value mismatch (and as a TSan report under the contract
    // label's sanitizer job).
    const auto policy = GetParam().make();
    const Tensor a = activation();
    constexpr int kIds = 32;
    std::vector<Tensor> reference;
    reference.reserve(kIds);
    for (int id = 0; id < kIds; ++id) {
        reference.push_back(
            policy->apply(a, static_cast<std::uint64_t>(id)));
    }

    constexpr int kThreads = 16;
    std::vector<int> mismatches(kThreads, 0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Stagger the id order per thread so applies interleave.
            for (int k = 0; k < kIds; ++k) {
                const int id = (k + t) % kIds;
                const auto uid = static_cast<std::uint64_t>(id);
                const auto ref_index = static_cast<std::size_t>(id);
                if (ops::max_abs_diff(policy->apply(a, uid),
                                      reference[ref_index]) != 0.0) {
                    ++mismatches[static_cast<std::size_t>(t)];
                }
                Tensor dst = a;
                policy->apply_into(a, uid, dst.data());
                if (ops::max_abs_diff(dst, reference[ref_index]) != 0.0) {
                    ++mismatches[static_cast<std::size_t>(t)];
                }
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0)
            << "thread " << t << " saw nondeterministic noise";
    }
}

TEST_P(PolicyContract, OfflineRecipeReproducesTheServedBits)
{
    const auto& param = GetParam();
    if (!param.offline_recipe) {
        GTEST_SKIP() << "case pins no offline recipe";
    }
    const auto policy = param.make();
    const Tensor a = activation();
    for (std::uint64_t id : {0ULL, 3ULL, 123456ULL}) {
        testing::expect_tensors_near(policy->apply(a, id),
                                     param.offline_recipe(a, id), 0.0,
                                     "offline recipe vs served bits");
    }
}

}  // namespace testing
}  // namespace shredder

#endif  // SHREDDER_TESTS_POLICY_CONTRACT_H
