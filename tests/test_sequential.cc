/** @file Tests for the Sequential container and checkpoints. */
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/flatten.h"
#include "src/nn/linear.h"
#include "src/nn/pool.h"
#include "src/nn/sequential.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using nn::Mode;

std::unique_ptr<nn::Sequential>
small_cnn(Rng& rng)
{
    auto net = std::make_unique<nn::Sequential>();
    nn::Conv2dConfig c;
    c.in_channels = 1;
    c.out_channels = 4;
    c.kernel = 3;
    c.padding = 1;
    net->emplace<nn::Conv2d>(c, rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(nn::PoolConfig{2, 2, 0});
    net->emplace<nn::Flatten>();
    net->emplace<nn::Linear>(4 * 4 * 4, 3, rng);
    return net;
}

TEST(Sequential, ForwardShape)
{
    Rng rng(1);
    auto net = small_cnn(rng);
    nn::ExecutionContext ctx;
    Tensor x = Tensor::normal(Shape({2, 1, 8, 8}), rng);
    Tensor y = net->forward(x, ctx, Mode::kEval);
    EXPECT_EQ(y.shape(), Shape({2, 3}));
    EXPECT_EQ(net->output_shape(x.shape()), y.shape());
}

TEST(Sequential, RangeComposesToFullForward)
{
    Rng rng(2);
    auto net = small_cnn(rng);
    nn::ExecutionContext ctx;
    Tensor x = Tensor::normal(Shape({2, 1, 8, 8}), rng);
    const Tensor full = net->forward(x, ctx, Mode::kEval);
    for (std::int64_t cut = 0; cut <= net->size(); ++cut) {
        Tensor a = net->forward_range(x, 0, cut, ctx, Mode::kEval);
        Tensor y = net->forward_range(a, cut, net->size(), ctx, Mode::kEval);
        testing::expect_tensors_near(full, y, 0.0, "cut equivalence");
    }
}

TEST(Sequential, OutputShapeRangeMatchesExecution)
{
    Rng rng(3);
    auto net = small_cnn(rng);
    nn::ExecutionContext ctx;
    const Shape in({2, 1, 8, 8});
    for (std::int64_t cut = 0; cut <= net->size(); ++cut) {
        Tensor x = Tensor::normal(in, rng);
        Tensor a = net->forward_range(x, 0, cut, ctx, Mode::kEval);
        EXPECT_EQ(net->output_shape_range(in, 0, cut), a.shape());
    }
}

TEST(Sequential, NumParametersCounts)
{
    Rng rng(4);
    auto net = small_cnn(rng);
    // conv: 4×(1·3·3) + 4 bias = 40; linear: 3×64 + 3 = 195.
    EXPECT_EQ(net->num_parameters(), 40 + 195);
}

TEST(Sequential, MacsRangeIsAdditive)
{
    Rng rng(5);
    auto net = small_cnn(rng);
    const Shape in({1, 1, 8, 8});
    const std::int64_t total = net->macs(in);
    for (std::int64_t cut = 0; cut <= net->size(); ++cut) {
        const Shape at_cut = net->output_shape_range(in, 0, cut);
        EXPECT_EQ(net->macs_range(in, 0, cut) +
                      net->macs_range(at_cut, cut, net->size()),
                  total);
    }
}

TEST(Sequential, NumericGradientThroughStack)
{
    Rng rng(6);
    auto net = small_cnn(rng);
    Tensor x = Tensor::normal(Shape({2, 1, 8, 8}), rng);
    testing::check_layer_gradients(*net, x, rng, 1e-2f, 4e-2,
                                   /*check_params=*/false);
}

TEST(Sequential, CheckpointRoundTrip)
{
    Rng rng(7);
    auto net = small_cnn(rng);
    nn::ExecutionContext ctx;
    Tensor x = Tensor::normal(Shape({1, 1, 8, 8}), rng);
    const Tensor y_before = net->forward(x, ctx, Mode::kEval);

    const std::string path =
        (std::filesystem::temp_directory_path() / "shredder_ckpt_test.bin")
            .string();
    net->save_checkpoint(path);

    Rng rng2(999);  // different init
    auto net2 = small_cnn(rng2);
    const Tensor y_fresh = net2->forward(x, ctx, Mode::kEval);
    EXPECT_GT(ops::max_abs_diff(y_before, y_fresh), 1e-3);

    net2->load_checkpoint(path);
    const Tensor y_loaded = net2->forward(x, ctx, Mode::kEval);
    testing::expect_tensors_near(y_before, y_loaded, 0.0, "checkpoint");
    std::remove(path.c_str());
}

TEST(Sequential, CheckpointRejectsWrongTopology)
{
    Rng rng(8);
    auto net = small_cnn(rng);
    const std::string path =
        (std::filesystem::temp_directory_path() / "shredder_ckpt_bad.bin")
            .string();
    net->save_checkpoint(path);

    nn::Sequential other;
    other.emplace<nn::Linear>(4, 4, rng);
    EXPECT_EXIT(other.load_checkpoint(path),
                ::testing::ExitedWithCode(1), "layers");
    std::remove(path.c_str());
}

TEST(Sequential, SetFrozenPropagates)
{
    Rng rng(9);
    auto net = small_cnn(rng);
    net->set_frozen(true);
    for (nn::Parameter* p : net->parameters()) {
        EXPECT_TRUE(p->frozen);
    }
    net->set_frozen(false);
    for (nn::Parameter* p : net->parameters()) {
        EXPECT_FALSE(p->frozen);
    }
}

}  // namespace
}  // namespace shredder
