/** @file Tests for the batched inference server. */
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/models/zoo.h"
#include "src/runtime/inference_server.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::InferenceServer;
using runtime::InferenceServerConfig;

/** LeNet cut at its last conv point, plus matching activations. */
struct Fixture
{
    explicit Fixture(std::uint64_t seed = 17)
        : rng(seed), net(models::make_lenet(rng)),
          cut(split::conv_cut_points(*net).back()), model(*net, cut),
          act_shape(model.activation_shape(Shape({1, 28, 28})))
    {
    }

    /** One random per-sample activation (batch dim stripped). */
    Tensor
    sample_activation()
    {
        Shape per_sample({act_shape[1], act_shape[2], act_shape[3]});
        return Tensor::normal(per_sample, rng);
    }

    /** A collection of `n` stored noise tensors at the cut's shape. */
    core::NoiseCollection
    collection(int n)
    {
        core::NoiseCollection c;
        Shape per_sample({act_shape[1], act_shape[2], act_shape[3]});
        for (int i = 0; i < n; ++i) {
            core::NoiseSample s;
            s.noise = Tensor::normal(per_sample, rng);
            c.add(std::move(s));
        }
        return c;
    }

    Rng rng;
    std::unique_ptr<nn::Sequential> net;
    std::int64_t cut;
    split::SplitModel model;
    Shape act_shape;  ///< Batched ([1, C, H, W]).
};

TEST(InferenceServer, MatchesDirectCloudForward)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    cfg.max_batch = 4;
    InferenceServer server(fx.model, nullptr, cfg);

    for (int i = 0; i < 5; ++i) {
        const Tensor a = fx.sample_activation();
        const Tensor served = server.infer(a);
        const Tensor direct = fx.model.cloud_forward(
            a.reshaped(fx.act_shape), nn::Mode::kEval);
        ASSERT_EQ(served.shape().rank(), 1);
        ASSERT_EQ(served.size(), direct.size());
        testing::expect_tensors_near(
            served, direct.reshaped(served.shape()), 1e-6,
            "served vs direct");
    }
}

TEST(InferenceServer, BatchedEqualsSequential)
{
    Fixture fx;
    // A single stored noise tensor makes per-request draws
    // deterministic, so batched and sequential runs see identical
    // noise regardless of batch composition.
    core::NoiseCollection coll = fx.collection(1);

    std::vector<Tensor> activations;
    for (int i = 0; i < 12; ++i) {
        activations.push_back(fx.sample_activation());
    }

    // Sequential reference: batch size 1.
    std::vector<Tensor> sequential;
    {
        InferenceServerConfig cfg;
        cfg.max_batch = 1;
        cfg.batch_timeout_ms = 0.0;
        InferenceServer server(fx.model, &coll, cfg);
        for (const Tensor& a : activations) {
            sequential.push_back(server.infer(a));
        }
    }

    // Batched run: everything submitted up front, fused into batches.
    InferenceServerConfig cfg;
    cfg.max_batch = 5;
    cfg.batch_timeout_ms = 20.0;
    InferenceServer server(fx.model, &coll, cfg);
    std::vector<std::future<Tensor>> futures;
    for (const Tensor& a : activations) {
        futures.push_back(server.submit(a));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const Tensor batched = futures[i].get();
        testing::expect_tensors_near(batched, sequential[i], 1e-5,
                                     "batched vs sequential");
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, 12);
    EXPECT_LT(stats.batches, 12);  // fusion actually happened
    EXPECT_LE(stats.max_batch_seen, 5);
}

TEST(InferenceServer, PerRequestNoiseIsApplied)
{
    Fixture fx;
    core::NoiseCollection coll = fx.collection(1);
    const Tensor a = fx.sample_activation();

    InferenceServerConfig noisy_cfg;
    noisy_cfg.max_batch = 1;
    InferenceServer noisy(fx.model, &coll, noisy_cfg);
    InferenceServerConfig clean_cfg;
    clean_cfg.apply_noise = false;
    InferenceServer clean(fx.model, nullptr, clean_cfg);

    const Tensor with_noise = noisy.infer(a);
    const Tensor without = clean.infer(a);
    // The noise tensor is non-trivial, so logits must differ.
    EXPECT_GT(ops::max_abs_diff(with_noise, without), 1e-4);

    // And it must equal the hand-noised forward.
    const Tensor direct = fx.model.cloud_forward(
        ops::add(a, coll.get(0).noise).reshaped(fx.act_shape),
        nn::Mode::kEval);
    testing::expect_tensors_near(
        with_noise, direct.reshaped(with_noise.shape()), 1e-6,
        "noised served vs hand-noised direct");
}

TEST(InferenceServer, ConcurrentSubmitIsSafe)
{
    Fixture fx;
    core::NoiseCollection coll = fx.collection(3);
    InferenceServerConfig cfg;
    cfg.max_batch = 8;
    cfg.batch_timeout_ms = 1.0;
    InferenceServer server(fx.model, &coll, cfg);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 6;
    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<Tensor>>> futures(kThreads);
    std::vector<Tensor> inputs;
    for (int t = 0; t < kThreads; ++t) {
        inputs.push_back(fx.sample_activation());
    }
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                futures[static_cast<std::size_t>(t)].push_back(
                    server.submit(inputs[static_cast<std::size_t>(t)]));
            }
        });
    }
    for (auto& thread : submitters) {
        thread.join();
    }
    for (auto& per_thread : futures) {
        for (auto& f : per_thread) {
            const Tensor logits = f.get();
            EXPECT_EQ(logits.shape().rank(), 1);
            EXPECT_FALSE(logits.has_nonfinite());
        }
    }
    EXPECT_EQ(server.stats().requests, kThreads * kPerThread);
}

TEST(InferenceServer, ShutdownWithEmptyQueueIsClean)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    InferenceServer server(fx.model, nullptr, cfg);
    EXPECT_TRUE(server.running());
    server.shutdown();
    EXPECT_FALSE(server.running());
    server.shutdown();  // idempotent
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, 0);
    EXPECT_EQ(stats.batches, 0);
}

TEST(InferenceServer, ShutdownDrainsQueuedRequests)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    cfg.max_batch = 4;
    cfg.batch_timeout_ms = 50.0;  // requests are queued at shutdown
    InferenceServer server(fx.model, nullptr, cfg);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < 6; ++i) {
        futures.push_back(server.submit(fx.sample_activation()));
    }
    server.shutdown();
    for (auto& f : futures) {
        EXPECT_NO_THROW({
            const Tensor logits = f.get();
            EXPECT_EQ(logits.size(), 10);
        });
    }
}

TEST(InferenceServer, WrongSizeSubmitFailsOnlyThatFuture)
{
    Fixture fx;
    core::NoiseCollection coll = fx.collection(1);
    InferenceServerConfig cfg;
    cfg.max_batch = 1;
    InferenceServer server(fx.model, &coll, cfg);

    auto bad = server.submit(Tensor::zeros(Shape({3})));
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The server survives and keeps serving well-formed requests.
    const Tensor logits = server.infer(fx.sample_activation());
    EXPECT_EQ(logits.size(), 10);
}

TEST(InferenceServer, Rank4FirstSubmitIsRejectedCleanly)
{
    // Without a collection the first request fixes the shape; a
    // rank-4 (already batched) tensor cannot grow a batch dim.
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    InferenceServer server(fx.model, nullptr, cfg);
    auto bad = server.submit(
        Tensor::zeros(Shape({1, fx.act_shape[1], fx.act_shape[2],
                             fx.act_shape[3]})));
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A rank-3 per-sample activation then works.
    const Tensor logits = server.infer(fx.sample_activation());
    EXPECT_EQ(logits.size(), 10);
}

TEST(InferenceServer, ConfiguredShapePinsTheContract)
{
    // With the contract pinned at construction, even the FIRST
    // request cannot smuggle in a bogus size (the lazy-adoption
    // footgun the config field exists to close).
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    cfg.sample_shape =
        Shape({fx.act_shape[1], fx.act_shape[2], fx.act_shape[3]});
    InferenceServer server(fx.model, nullptr, cfg);
    auto bad = server.submit(Tensor::zeros(Shape({7})));
    EXPECT_THROW(bad.get(), std::runtime_error);
    const Tensor logits = server.infer(fx.sample_activation());
    EXPECT_EQ(logits.size(), 10);
}

TEST(InferenceServerDeath, Rank4CollectionRejectedAtConstruction)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Fixture fx;
    core::NoiseCollection coll;
    core::NoiseSample sample;
    sample.noise = Tensor::zeros(Shape(
        {1, fx.act_shape[1], fx.act_shape[2], fx.act_shape[3]}));
    coll.add(std::move(sample));
    EXPECT_EXIT(
        {
            InferenceServer server(fx.model, &coll, {});
        },
        ::testing::ExitedWithCode(1), "rank 1-3");
}

TEST(InferenceServer, SubmitAfterShutdownFailsTheFuture)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    InferenceServer server(fx.model, nullptr, cfg);
    server.shutdown();
    auto future = server.submit(fx.sample_activation());
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(InferenceServer, StatsTrackLatencyAndThroughput)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    cfg.max_batch = 2;
    InferenceServer server(fx.model, nullptr, cfg);
    for (int i = 0; i < 4; ++i) {
        server.infer(fx.sample_activation());
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, 4);
    EXPECT_GE(stats.batches, 2);
    EXPECT_GT(stats.busy_ms, 0.0);
    EXPECT_GT(stats.wall_seconds, 0.0);
    EXPECT_GT(stats.requests_per_sec(), 0.0);
    EXPECT_GE(stats.mean_batch_size(), 1.0);
}

}  // namespace
}  // namespace shredder
