/** @file Tests for the batched, concurrent inference server. */
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/models/zoo.h"
#include "src/runtime/inference_server.h"
#include "src/runtime/serving_error.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::InferenceServer;
using runtime::InferenceServerConfig;
using runtime::ServingError;
using runtime::ServingErrorCode;

/** Expect `future` to fail with a specific `ServingError` code. */
void
expect_code(std::future<Tensor>& future, ServingErrorCode expected)
{
    try {
        future.get();
        ADD_FAILURE() << "expected ServingError "
                      << runtime::to_string(expected);
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), expected) << e.what();
    } catch (const std::exception& e) {
        ADD_FAILURE() << "expected ServingError, got " << e.what();
    }
}

/** LeNet cut at its last conv point, plus matching activations. */
struct Fixture
{
    explicit Fixture(std::uint64_t seed = 17)
        : rng(seed), net(models::make_lenet(rng)),
          cut(split::conv_cut_points(*net).back()), model(*net, cut),
          act_shape(model.activation_shape(Shape({1, 28, 28})))
    {
    }

    /** One random per-sample activation (batch dim stripped). */
    Tensor
    sample_activation()
    {
        Shape per_sample({act_shape[1], act_shape[2], act_shape[3]});
        return Tensor::normal(per_sample, rng);
    }

    /** A collection of `n` stored noise tensors at the cut's shape. */
    core::NoiseCollection
    collection(int n)
    {
        core::NoiseCollection c;
        Shape per_sample({act_shape[1], act_shape[2], act_shape[3]});
        for (int i = 0; i < n; ++i) {
            core::NoiseSample s;
            s.noise = Tensor::normal(per_sample, rng);
            c.add(std::move(s));
        }
        return c;
    }

    /** Serial reference forward of one per-sample activation. */
    Tensor
    direct_forward(const Tensor& a, nn::ExecutionContext& ctx)
    {
        return model.cloud_forward(a.reshaped(act_shape), ctx,
                                   nn::Mode::kEval);
    }

    Rng rng;
    std::unique_ptr<nn::Sequential> net;
    std::int64_t cut;
    split::SplitModel model;
    Shape act_shape;  ///< Batched ([1, C, H, W]).
};

TEST(InferenceServer, MatchesDirectCloudForward)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    cfg.max_batch = 4;
    InferenceServer server(fx.model, nullptr, cfg);

    nn::ExecutionContext ctx;
    for (int i = 0; i < 5; ++i) {
        const Tensor a = fx.sample_activation();
        const Tensor served = server.infer(a);
        const Tensor direct = fx.direct_forward(a, ctx);
        ASSERT_EQ(served.shape().rank(), 1);
        ASSERT_EQ(served.size(), direct.size());
        testing::expect_tensors_near(
            served, direct.reshaped(served.shape()), 1e-6,
            "served vs direct");
    }
}

TEST(InferenceServer, BatchedEqualsSequential)
{
    Fixture fx;
    // A single stored noise tensor makes per-request draws
    // deterministic, so batched and sequential runs see identical
    // noise regardless of batch composition.
    core::NoiseCollection coll = fx.collection(1);

    std::vector<Tensor> activations;
    for (int i = 0; i < 12; ++i) {
        activations.push_back(fx.sample_activation());
    }

    // Sequential reference: batch size 1.
    std::vector<Tensor> sequential;
    {
        InferenceServerConfig cfg;
        cfg.max_batch = 1;
        cfg.batch_timeout_ms = 0.0;
        InferenceServer server(fx.model, &coll, cfg);
        for (const Tensor& a : activations) {
            sequential.push_back(server.infer(a));
        }
    }

    // Batched run: everything submitted up front, fused into batches.
    InferenceServerConfig cfg;
    cfg.max_batch = 5;
    cfg.batch_timeout_ms = 20.0;
    InferenceServer server(fx.model, &coll, cfg);
    std::vector<std::future<Tensor>> futures;
    for (const Tensor& a : activations) {
        futures.push_back(server.submit(a));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const Tensor batched = futures[i].get();
        testing::expect_tensors_near(batched, sequential[i], 1e-5,
                                     "batched vs sequential");
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, 12);
    EXPECT_LT(stats.batches, 12);  // fusion actually happened
    EXPECT_LE(stats.max_batch_seen, 5);
}

TEST(InferenceServer, PerRequestNoiseIsApplied)
{
    Fixture fx;
    core::NoiseCollection coll = fx.collection(1);
    const Tensor a = fx.sample_activation();

    InferenceServerConfig noisy_cfg;
    noisy_cfg.max_batch = 1;
    InferenceServer noisy(fx.model, &coll, noisy_cfg);
    InferenceServerConfig clean_cfg;
    clean_cfg.apply_noise = false;
    InferenceServer clean(fx.model, nullptr, clean_cfg);

    const Tensor with_noise = noisy.infer(a);
    const Tensor without = clean.infer(a);
    // The noise tensor is non-trivial, so logits must differ.
    EXPECT_GT(ops::max_abs_diff(with_noise, without), 1e-4);

    // And it must equal the hand-noised forward.
    nn::ExecutionContext ctx;
    const Tensor direct =
        fx.direct_forward(ops::add(a, coll.get(0).noise), ctx);
    testing::expect_tensors_near(
        with_noise, direct.reshaped(with_noise.shape()), 1e-6,
        "noised served vs hand-noised direct");
}

TEST(InferenceServer, ConcurrentSubmitIsSafe)
{
    Fixture fx;
    core::NoiseCollection coll = fx.collection(3);
    InferenceServerConfig cfg;
    cfg.max_batch = 8;
    cfg.batch_timeout_ms = 1.0;
    InferenceServer server(fx.model, &coll, cfg);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 6;
    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<Tensor>>> futures(kThreads);
    std::vector<Tensor> inputs;
    for (int t = 0; t < kThreads; ++t) {
        inputs.push_back(fx.sample_activation());
    }
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                futures[static_cast<std::size_t>(t)].push_back(
                    server.submit(inputs[static_cast<std::size_t>(t)]));
            }
        });
    }
    for (auto& thread : submitters) {
        thread.join();
    }
    for (auto& per_thread : futures) {
        for (auto& f : per_thread) {
            const Tensor logits = f.get();
            EXPECT_EQ(logits.shape().rank(), 1);
            EXPECT_FALSE(logits.has_nonfinite());
        }
    }
    EXPECT_EQ(server.stats().requests, kThreads * kPerThread);
}

// ---------------------------------------------------------------------
// Concurrent execution on shared weights (the stateless-layer story)
// ---------------------------------------------------------------------

TEST(InferenceServer, ConcurrentStressBitExactVsSerial)
{
    // A few hundred requests from several client threads, executed by
    // several workers with several in-flight forwards on ONE model —
    // every result must be BIT-EXACT against a serial
    // `SplitModel::cloud_forward` with the same noise draw.
    // max_batch = 1 keeps the served and serial code paths identical
    // (same GEMM shapes), so any deviation at all means the concurrent
    // forwards corrupted each other's state.
    Fixture fx;
    core::NoiseCollection coll = fx.collection(3);
    InferenceServerConfig cfg;
    cfg.max_batch = 1;
    cfg.batch_timeout_ms = 0.0;
    cfg.num_workers = 4;
    cfg.max_concurrent_batches = 4;
    cfg.seed = 0xFEEDFACEULL;
    InferenceServer server(fx.model, &coll, cfg);
    EXPECT_EQ(server.max_concurrent_batches(), 4);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 75;  // 300 requests total
    std::vector<std::vector<Tensor>> acts(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
            acts[static_cast<std::size_t>(t)].push_back(
                fx.sample_activation());
        }
    }

    std::vector<std::vector<std::future<Tensor>>> futures(kThreads);
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // Stable per-request ids pin the noise assignment no
                // matter how the client threads interleave.
                const auto id = static_cast<std::uint64_t>(
                    t * kPerThread + i);
                futures[static_cast<std::size_t>(t)].push_back(
                    server.submit(
                        acts[static_cast<std::size_t>(t)]
                            [static_cast<std::size_t>(i)],
                        id));
            }
        });
    }
    for (auto& c : clients) {
        c.join();
    }

    nn::ExecutionContext serial_ctx;
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
            const Tensor got =
                futures[static_cast<std::size_t>(t)]
                       [static_cast<std::size_t>(i)].get();
            const auto id =
                static_cast<std::uint64_t>(t * kPerThread + i);
            // Reproduce the server's draw offline via the pure seed
            // function, then the serial forward.
            Rng draw_rng(InferenceServer::noise_seed(cfg.seed, id));
            const Tensor& noise = coll.draw(draw_rng).noise;
            const Tensor expected = fx.direct_forward(
                ops::add(acts[static_cast<std::size_t>(t)]
                             [static_cast<std::size_t>(i)],
                         noise),
                serial_ctx);
            testing::expect_tensors_near(
                got, expected.reshaped(got.shape()), 0.0,
                "concurrent vs serial bit-exactness");
        }
    }
    EXPECT_EQ(server.stats().requests, kThreads * kPerThread);
}

TEST(InferenceServer, ConcurrentBatchedAgreesWithSerial)
{
    // Same concurrency, but with real batch fusion (max_batch 8).
    // Fused GEMMs take different (batch-size dependent) kernel paths
    // than batch-1 forwards, so the comparison uses a numeric
    // tolerance; state corruption would blow far past it.
    Fixture fx;
    core::NoiseCollection coll = fx.collection(2);
    InferenceServerConfig cfg;
    cfg.max_batch = 8;
    cfg.batch_timeout_ms = 1.0;
    cfg.num_workers = 2;
    cfg.max_concurrent_batches = 2;
    cfg.seed = 0xABCDEFULL;
    InferenceServer server(fx.model, &coll, cfg);

    constexpr int kRequests = 200;
    std::vector<Tensor> acts;
    for (int i = 0; i < kRequests; ++i) {
        acts.push_back(fx.sample_activation());
    }
    std::vector<std::thread> clients;
    std::vector<std::vector<std::future<Tensor>>> per_client(2);
    for (int t = 0; t < 2; ++t) {
        clients.emplace_back([&, t] {
            for (int i = t; i < kRequests; i += 2) {
                per_client[static_cast<std::size_t>(t)].push_back(
                    server.submit(acts[static_cast<std::size_t>(i)],
                                  static_cast<std::uint64_t>(i)));
            }
        });
    }
    for (auto& c : clients) {
        c.join();
    }

    nn::ExecutionContext serial_ctx;
    for (int t = 0; t < 2; ++t) {
        int i = t;
        for (auto& f : per_client[static_cast<std::size_t>(t)]) {
            const Tensor got = f.get();
            Rng draw_rng(InferenceServer::noise_seed(
                cfg.seed, static_cast<std::uint64_t>(i)));
            const Tensor& noise = coll.draw(draw_rng).noise;
            const Tensor expected = fx.direct_forward(
                ops::add(acts[static_cast<std::size_t>(i)], noise),
                serial_ctx);
            testing::expect_tensors_near(
                got, expected.reshaped(got.shape()), 1e-5,
                "concurrent batched vs serial");
            i += 2;
        }
    }
}

TEST(InferenceServer, ReplaySeedReproducesNoiseAssignment)
{
    // §2.5 deployment replay: the same root seed and request ids must
    // reproduce the exact per-request noise assignment — and thus
    // bit-identical logits — across server instances.
    Fixture fx;
    core::NoiseCollection coll = fx.collection(4);
    std::vector<Tensor> acts;
    for (int i = 0; i < 40; ++i) {
        acts.push_back(fx.sample_activation());
    }

    const auto run = [&](std::uint64_t seed) {
        InferenceServerConfig cfg;
        cfg.max_batch = 1;  // identical kernel paths across runs
        cfg.batch_timeout_ms = 0.0;
        cfg.num_workers = 2;
        cfg.seed = seed;
        InferenceServer server(fx.model, &coll, cfg);
        std::vector<std::future<Tensor>> futures;
        for (const Tensor& a : acts) {
            futures.push_back(server.submit(a));  // auto ids 0, 1, 2, …
        }
        std::vector<Tensor> out;
        for (auto& f : futures) {
            out.push_back(f.get());
        }
        return out;
    };

    const std::vector<Tensor> first = run(0xD06F00DULL);
    const std::vector<Tensor> replay = run(0xD06F00DULL);
    const std::vector<Tensor> other = run(0x0DDBA11ULL);

    bool any_differs_across_seeds = false;
    for (std::size_t i = 0; i < acts.size(); ++i) {
        testing::expect_tensors_near(first[i], replay[i], 0.0,
                                     "same-seed replay");
        if (ops::max_abs_diff(first[i], other[i]) > 0.0) {
            any_differs_across_seeds = true;
        }
    }
    // A different root seed permutes the assignment (4 stored tensors
    // over 40 requests: some request must land on a different draw).
    EXPECT_TRUE(any_differs_across_seeds);

    // The assignment is also predictable offline, request by request:
    // the n-th auto-submitted request draws under kAutoIdBase + n.
    nn::ExecutionContext ctx;
    for (std::size_t i = 0; i < acts.size(); ++i) {
        Rng draw_rng(InferenceServer::noise_seed(
            0xD06F00DULL,
            InferenceServer::kAutoIdBase + static_cast<std::uint64_t>(i)));
        const Tensor expected = fx.direct_forward(
            ops::add(acts[i], coll.draw(draw_rng).noise), ctx);
        testing::expect_tensors_near(
            first[i], expected.reshaped(first[i].shape()), 0.0,
            "offline replay of the draw");
    }
}

TEST(InferenceServer, SharedModelAcrossServersIsSafe)
{
    // Two servers on ONE SplitModel — the exact pattern the old
    // per-server model mutex could not protect (its scope was one
    // server). Stateless layers make it safe by construction.
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    cfg.max_batch = 2;
    cfg.num_workers = 2;
    InferenceServer server_a(fx.model, nullptr, cfg);
    InferenceServer server_b(fx.model, nullptr, cfg);

    std::vector<Tensor> acts;
    for (int i = 0; i < 32; ++i) {
        acts.push_back(fx.sample_activation());
    }
    std::vector<std::future<Tensor>> fa, fb;
    for (const Tensor& a : acts) {
        fa.push_back(server_a.submit(a));
        fb.push_back(server_b.submit(a));
    }
    nn::ExecutionContext ctx;
    for (std::size_t i = 0; i < acts.size(); ++i) {
        const Tensor direct = fx.direct_forward(acts[i], ctx);
        const Tensor ya = fa[i].get();
        const Tensor yb = fb[i].get();
        testing::expect_tensors_near(ya, direct.reshaped(ya.shape()),
                                     1e-5, "server A vs direct");
        testing::expect_tensors_near(yb, direct.reshaped(yb.shape()),
                                     1e-5, "server B vs direct");
    }
}

// ---------------------------------------------------------------------
// Lifecycle and contract checks
// ---------------------------------------------------------------------

TEST(InferenceServer, ShutdownWithEmptyQueueIsClean)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    InferenceServer server(fx.model, nullptr, cfg);
    EXPECT_TRUE(server.running());
    server.shutdown();
    EXPECT_FALSE(server.running());
    server.shutdown();  // idempotent
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, 0);
    EXPECT_EQ(stats.batches, 0);
}

TEST(InferenceServer, ShutdownDrainsQueuedRequests)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    cfg.max_batch = 4;
    cfg.batch_timeout_ms = 50.0;  // requests are queued at shutdown
    InferenceServer server(fx.model, nullptr, cfg);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < 6; ++i) {
        futures.push_back(server.submit(fx.sample_activation()));
    }
    server.shutdown();
    for (auto& f : futures) {
        EXPECT_NO_THROW({
            const Tensor logits = f.get();
            EXPECT_EQ(logits.size(), 10);
        });
    }
}

TEST(InferenceServer, WrongSizeSubmitFailsOnlyThatFuture)
{
    Fixture fx;
    core::NoiseCollection coll = fx.collection(1);
    InferenceServerConfig cfg;
    cfg.max_batch = 1;
    InferenceServer server(fx.model, &coll, cfg);

    auto bad = server.submit(Tensor::zeros(Shape({3})));
    expect_code(bad, ServingErrorCode::kInvalidShape);
    // The server survives and keeps serving well-formed requests.
    const Tensor logits = server.infer(fx.sample_activation());
    EXPECT_EQ(logits.size(), 10);
}

TEST(InferenceServer, Rank4FirstSubmitIsRejectedCleanly)
{
    // Without a collection the first request fixes the shape; a
    // rank-4 (already batched) tensor cannot grow a batch dim.
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    InferenceServer server(fx.model, nullptr, cfg);
    auto bad = server.submit(
        Tensor::zeros(Shape({1, fx.act_shape[1], fx.act_shape[2],
                             fx.act_shape[3]})));
    expect_code(bad, ServingErrorCode::kInvalidShape);
    // A rank-3 per-sample activation then works.
    const Tensor logits = server.infer(fx.sample_activation());
    EXPECT_EQ(logits.size(), 10);
}

TEST(InferenceServer, ConfiguredShapePinsTheContract)
{
    // With the contract pinned at construction, even the FIRST
    // request cannot smuggle in a bogus size (the lazy-adoption
    // footgun the config field exists to close).
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    cfg.sample_shape =
        Shape({fx.act_shape[1], fx.act_shape[2], fx.act_shape[3]});
    InferenceServer server(fx.model, nullptr, cfg);
    auto bad = server.submit(Tensor::zeros(Shape({7})));
    expect_code(bad, ServingErrorCode::kInvalidShape);
    const Tensor logits = server.infer(fx.sample_activation());
    EXPECT_EQ(logits.size(), 10);
}

TEST(InferenceServer, ShimWithoutNoiseStillPinsShapeFromCollection)
{
    // The deprecated (collection, apply_noise=false) shim must keep
    // the legacy behavior of adopting the collection's noise shape as
    // the server's contract even though no noise is applied — a
    // malformed first request must not be able to lock in a bogus
    // contract.
    Fixture fx;
    core::NoiseCollection coll = fx.collection(1);
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    InferenceServer server(fx.model, &coll, cfg);
    EXPECT_EQ(server.sample_shape().to_string(),
              coll.noise_shape().to_string());
    auto bad = server.submit(Tensor::zeros(Shape({5})));
    expect_code(bad, ServingErrorCode::kInvalidShape);
    const Tensor logits = server.infer(fx.sample_activation());
    EXPECT_EQ(logits.size(), 10);
}

TEST(InferenceServerDeath, Rank4CollectionRejectedAtConstruction)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Fixture fx;
    core::NoiseCollection coll;
    core::NoiseSample sample;
    sample.noise = Tensor::zeros(Shape(
        {1, fx.act_shape[1], fx.act_shape[2], fx.act_shape[3]}));
    coll.add(std::move(sample));
    EXPECT_EXIT(
        {
            InferenceServer server(fx.model, &coll, {});
        },
        ::testing::ExitedWithCode(1), "rank 1-3");
}

TEST(InferenceServer, SubmitAfterShutdownFailsTheFuture)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    InferenceServer server(fx.model, nullptr, cfg);
    server.shutdown();
    auto future = server.submit(fx.sample_activation());
    // ServingError derives from std::runtime_error (old-style callers
    // keep working), but carries the typed code new callers branch on.
    EXPECT_THROW(
        {
            auto second = server.submit(fx.sample_activation());
            second.get();
        },
        std::runtime_error);
    expect_code(future, ServingErrorCode::kShutdown);
}

TEST(InferenceServer, StatsTrackLatencyAndThroughput)
{
    Fixture fx;
    InferenceServerConfig cfg;
    cfg.apply_noise = false;
    cfg.max_batch = 2;
    InferenceServer server(fx.model, nullptr, cfg);
    for (int i = 0; i < 4; ++i) {
        server.infer(fx.sample_activation());
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, 4);
    EXPECT_GE(stats.batches, 2);
    EXPECT_GT(stats.busy_ms, 0.0);
    EXPECT_GT(stats.wall_seconds, 0.0);
    EXPECT_GT(stats.requests_per_sec(), 0.0);
    EXPECT_GE(stats.mean_batch_size(), 1.0);
}

}  // namespace
}  // namespace shredder
