/** @file Unit tests for elementwise/reduction ops. */
#include <cmath>

#include <gtest/gtest.h>

#include "src/tensor/ops.h"

namespace shredder {
namespace {

TEST(Ops, AddSubMul)
{
    Tensor a = Tensor::from_vector({1, 2, 3});
    Tensor b = Tensor::from_vector({4, 5, 6});
    Tensor c = ops::add(a, b);
    EXPECT_EQ(c[0], 5.0f);
    EXPECT_EQ(c[2], 9.0f);
    Tensor d = ops::sub(b, a);
    EXPECT_EQ(d[1], 3.0f);
    Tensor e = ops::mul(a, b);
    EXPECT_EQ(e[2], 18.0f);
}

TEST(Ops, InplaceVariants)
{
    Tensor a = Tensor::from_vector({1, 2, 3});
    Tensor b = Tensor::from_vector({1, 1, 1});
    ops::add_inplace(a, b);
    EXPECT_EQ(a[0], 2.0f);
    ops::mul_inplace(a, b);
    EXPECT_EQ(a[0], 2.0f);
    ops::scale_inplace(a, 0.5f);
    EXPECT_EQ(a[2], 2.0f);
    ops::add_scalar_inplace(a, 1.0f);
    EXPECT_EQ(a[0], 2.0f);
}

TEST(Ops, Axpy)
{
    Tensor a = Tensor::from_vector({1, 2});
    Tensor b = Tensor::from_vector({10, 20});
    ops::axpy_inplace(a, 0.1f, b);
    EXPECT_FLOAT_EQ(a[0], 2.0f);
    EXPECT_FLOAT_EQ(a[1], 4.0f);
}

TEST(Ops, MapAndClamp)
{
    Tensor a = Tensor::from_vector({-1, 0, 1});
    Tensor sq = ops::map(a, [](float v) { return v * v; });
    EXPECT_EQ(sq[0], 1.0f);
    ops::clamp_inplace(a, -0.5f, 0.5f);
    EXPECT_EQ(a[0], -0.5f);
    EXPECT_EQ(a[2], 0.5f);
}

TEST(Ops, Dot)
{
    Tensor a = Tensor::from_vector({1, 2, 3});
    Tensor b = Tensor::from_vector({4, 5, 6});
    EXPECT_DOUBLE_EQ(ops::dot(a, b), 32.0);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(3);
    Tensor logits = Tensor::normal(Shape({5, 7}), rng, 0.0f, 3.0f);
    Tensor p = ops::softmax_rows(logits);
    for (std::int64_t r = 0; r < 5; ++r) {
        double s = 0.0;
        for (std::int64_t c = 0; c < 7; ++c) {
            const float v = p.at2(r, c);
            EXPECT_GT(v, 0.0f);
            s += v;
        }
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxIsStableForHugeLogits)
{
    Tensor logits(Shape({1, 3}));
    logits[0] = 1000.0f;
    logits[1] = 999.0f;
    logits[2] = -1000.0f;
    Tensor p = ops::softmax_rows(logits);
    EXPECT_FALSE(p.has_nonfinite());
    EXPECT_GT(p[0], p[1]);
    EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-5);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax)
{
    Rng rng(5);
    Tensor logits = Tensor::normal(Shape({4, 6}), rng);
    Tensor p = ops::softmax_rows(logits);
    Tensor lp = ops::log_softmax_rows(logits);
    for (std::int64_t i = 0; i < p.size(); ++i) {
        EXPECT_NEAR(lp[i], std::log(p[i]), 1e-4);
    }
}

TEST(Ops, ArgmaxRows)
{
    Tensor t(Shape({2, 3}));
    t.at2(0, 1) = 5.0f;
    t.at2(1, 2) = 7.0f;
    const auto am = ops::argmax_rows(t);
    EXPECT_EQ(am[0], 1);
    EXPECT_EQ(am[1], 2);
}

TEST(Ops, MseAndMaxAbsDiff)
{
    Tensor a = Tensor::from_vector({0, 0});
    Tensor b = Tensor::from_vector({3, 4});
    EXPECT_DOUBLE_EQ(ops::mse(a, b), 12.5);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(a, b), 4.0);
}

}  // namespace
}  // namespace shredder
