/**
 * @file
 * Fixture suite for `shredder_lint` (src/lint/lint.h).
 *
 * Each rule gets a known-bad snippet that must fire, a known-good
 * snippet that must stay silent, and an allow-comment case proving
 * the escape hatch works. Snippets go through `lint_source` under a
 * *virtual* repo-relative path, so directory scoping is exercised via
 * the exact production code path the CLI uses.
 *
 * Note: fixture strings that deliberately contain an *invalid*
 * suppression marker are split across adjacent string literals, so
 * this file's own raw lines never parse as markers when the tree
 * lints itself (ctest `lint_tree`).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/lint/lint.h"
#include "src/lint/scanner.h"

namespace shredder {
namespace lint {
namespace {

/** All findings for `rule` in a lint run. */
std::vector<Finding>
findings_for(const std::vector<Finding>& all, const std::string& rule)
{
    std::vector<Finding> out;
    for (const Finding& f : all) {
        if (f.rule == rule) {
            out.push_back(f);
        }
    }
    return out;
}

/** Count of findings for `rule` when linting `content` under `path`. */
int
count(const std::string& path, const std::string& content,
      const std::string& rule)
{
    return static_cast<int>(
        findings_for(lint_source(path, content), rule).size());
}

// ---------------------------------------------------------------------------
// Scanner: masking and allow-marker extraction.
// ---------------------------------------------------------------------------

TEST(Scanner, MasksLineAndBlockComments)
{
    const auto src = scan_source("int x; // new delete throw\n"
                                 "/* memcpy( */ int y;\n");
    ASSERT_EQ(src.lines.size(), 2u);
    EXPECT_EQ(src.lines[0].code.find("new"), std::string::npos);
    EXPECT_EQ(src.lines[1].code.find("memcpy"), std::string::npos);
    EXPECT_NE(src.lines[1].code.find("int y;"), std::string::npos);
}

TEST(Scanner, MasksStringAndCharLiterals)
{
    const auto src = scan_source(
        "const char* s = \"new delete rand()\";\n"
        "char c = 'n'; int k = 1'000'000;\n");
    EXPECT_EQ(src.lines[0].code.find("rand"), std::string::npos);
    // The digit-separator heuristic must not open a char literal.
    EXPECT_NE(src.lines[1].code.find("000"), std::string::npos);
}

TEST(Scanner, MasksRawStrings)
{
    const auto src = scan_source(
        "auto s = R\"(new delete memcpy()\" \")\";\n int z;\n");
    EXPECT_EQ(src.lines[0].code.find("memcpy"), std::string::npos);
}

TEST(Scanner, BlockCommentSpansLines)
{
    const auto src = scan_source("/* start\n"
                                 "new delete\n"
                                 "end */ int ok;\n");
    EXPECT_EQ(src.lines[1].code.find("new"), std::string::npos);
    EXPECT_NE(src.lines[2].code.find("int ok;"), std::string::npos);
}

TEST(Scanner, ParsesAllowMarkers)
{
    const auto src = scan_source(
        "int a; // shredder-lint: allow(raw-rng, naked-new)\n"
        "int b; // shredder-lint: allow(all)\n"
        "int c;\n");
    ASSERT_EQ(src.lines[0].allowed.size(), 2u);
    EXPECT_EQ(src.lines[0].allowed[0], "raw-rng");
    EXPECT_EQ(src.lines[0].allowed[1], "naked-new");
    ASSERT_EQ(src.lines[1].allowed.size(), 1u);
    EXPECT_EQ(src.lines[1].allowed[0], "all");
    EXPECT_TRUE(src.lines[2].allowed.empty());
}

TEST(Scanner, ProseAboutTheMarkerIsNotAMarker)
{
    // Invalid name characters mean "documentation", not suppression.
    const auto src = scan_source(
        "// the shredder-lint: allow(<rule>) escape hatch\n"
        "// shredder-lint: allow(...)\n");
    EXPECT_TRUE(src.lines[0].allowed.empty());
    EXPECT_TRUE(src.lines[1].allowed.empty());
}

// ---------------------------------------------------------------------------
// untrusted-cast
// ---------------------------------------------------------------------------

TEST(UntrustedCast, FiresInNetAndDeploy)
{
    const std::string bad = "void f(char* d, const char* s) {\n"
                            "    std::memcpy(d, s, 4);\n"
                            "    auto* p = reinterpret_cast<int*>(d);\n"
                            "    (void)p;\n"
                            "}\n";
    EXPECT_EQ(count("src/net/parse.cc", bad, "untrusted-cast"), 2);
    EXPECT_EQ(count("src/deploy/load.cc", bad, "untrusted-cast"), 2);
}

TEST(UntrustedCast, SilentOutsideTrustBoundaryDirs)
{
    const std::string ok = "void f(char* d, const char* s) {\n"
                           "    std::memcpy(d, s, 4);\n"
                           "}\n";
    EXPECT_EQ(count("src/tensor/serialize.cc", ok, "untrusted-cast"), 0);
    EXPECT_EQ(count("src/nn/linear.cc", ok, "untrusted-cast"), 0);
}

TEST(UntrustedCast, AllowCommentSuppresses)
{
    const std::string allowed =
        "void f(sockaddr_in* a) {\n"
        "    // shredder-lint: allow(untrusted-cast)\n"
        "    bind(0, reinterpret_cast<sockaddr*>(a), 4);\n"
        "    connect(0, reinterpret_cast<sockaddr*>(a), "
        "4);  // shredder-lint: allow(untrusted-cast)\n"
        "}\n";
    EXPECT_EQ(count("src/net/socket.cc", allowed, "untrusted-cast"), 0);
}

TEST(UntrustedCast, CommentMentionDoesNotFire)
{
    const std::string ok = "// reinterpret_cast is forbidden here\n"
                           "int x = 0;\n";
    EXPECT_EQ(count("src/net/doc.cc", ok, "untrusted-cast"), 0);
}

// ---------------------------------------------------------------------------
// unchecked-read
// ---------------------------------------------------------------------------

TEST(UncheckedRead, FiresOnFatalAndRawReads)
{
    EXPECT_EQ(count("src/deploy/bundle.cc",
                    "Tensor t = read_tensor(is);\n", "unchecked-read"),
              1);
    EXPECT_EQ(count("src/net/protocol.cc",
                    "is.read(buf, n);\n", "unchecked-read"),
              1);
    EXPECT_EQ(count("src/net/protocol.cc",
                    "fread(buf, 1, n, fp);\n", "unchecked-read"),
              1);
}

TEST(UncheckedRead, CheckedAndWireFormsPass)
{
    const std::string ok =
        "Tensor a = read_tensor_checked(is);\n"
        "QuantizedTensor q = read_tensor_wire_checked(is);\n"
        "std::uint32_t v = wire::read_u32(is);\n"
        "std::string s = wire::read_string(is, 64);\n";
    EXPECT_EQ(count("src/deploy/bundle.cc", ok, "unchecked-read"), 0);
}

TEST(UncheckedRead, SilentOutsideTrustBoundaryDirs)
{
    // Trusted local checkpoints may use the fatal reader.
    EXPECT_EQ(count("src/models/trainer.cc",
                    "Tensor t = read_tensor(is);\n", "unchecked-read"),
              0);
}

TEST(UncheckedRead, AllowCommentSuppresses)
{
    EXPECT_EQ(count("src/net/protocol.cc",
                    "// shredder-lint: allow(unchecked-read)\n"
                    "is.read(buf, n);\n",
                    "unchecked-read"),
              0);
}

// ---------------------------------------------------------------------------
// raw-rng
// ---------------------------------------------------------------------------

TEST(RawRng, FiresOnRandAndRawEngines)
{
    EXPECT_EQ(count("src/nn/init.cc", "int r = rand() % 6;\n",
                    "raw-rng"),
              1);
    EXPECT_EQ(count("src/nn/init.cc", "srand(42);\n", "raw-rng"), 1);
    EXPECT_EQ(count("tools/gen.cc", "std::mt19937_64 gen(seed);\n",
                    "raw-rng"),
              1);
    EXPECT_EQ(count("bench/b.cc", "std::mt19937 gen;\n", "raw-rng"), 1);
    EXPECT_EQ(count("src/data/d.cc", "std::random_device rd;\n",
                    "raw-rng"),
              1);
}

TEST(RawRng, RngFacilityAndCallersPass)
{
    // The facility itself owns the engine.
    EXPECT_EQ(count("src/tensor/rng.h",
                    "std::mt19937_64 engine_;\n", "raw-rng"),
              0);
    // Callers go through Rng (even reaching its engine for std::
    // distributions is fine — the seed discipline is preserved).
    const std::string ok =
        "Rng rng(seed);\n"
        "std::exponential_distribution<double> gap(1.0);\n"
        "double g = gap(rng.engine());\n"
        "int i = operand(3);\n";  // 'rand' inside an identifier
    EXPECT_EQ(count("tools/gen.cc", ok, "raw-rng"), 0);
}

TEST(RawRng, AllowCommentSuppresses)
{
    EXPECT_EQ(count("bench/b.cc",
                    "std::mt19937 gen;  "
                    "// shredder-lint: allow(raw-rng)\n",
                    "raw-rng"),
              0);
}

// ---------------------------------------------------------------------------
// foreign-throw
// ---------------------------------------------------------------------------

TEST(ForeignThrow, FiresOnForeignTypesInServingApi)
{
    EXPECT_EQ(count("src/runtime/engine.cc",
                    "throw std::runtime_error(\"boom\");\n",
                    "foreign-throw"),
              1);
    EXPECT_EQ(count("src/net/server.cc", "throw 42;\n",
                    "foreign-throw"),
              1);
    EXPECT_EQ(count("src/deploy/bundle.cc",
                    "throw MyError(\"x\");\n", "foreign-throw"),
              1);
}

TEST(ForeignThrow, TypedErrorsAndRethrowPass)
{
    const std::string ok =
        "throw ServingError(ServingErrorCode::kProtocol, what);\n"
        "throw runtime::ServingError(code, context);\n"
        "throw SerializeError(\"truncated\");\n"
        "throw FatalError(msg);\n"
        "try { f(); } catch (...) { throw; }\n";
    EXPECT_EQ(count("src/net/protocol.cc", ok, "foreign-throw"), 0);
}

TEST(ForeignThrow, ChecksContinuationLine)
{
    // Type on the next line: accepted when typed, flagged when not.
    EXPECT_EQ(count("src/runtime/e.cc",
                    "throw\n    ServingError(code, what);\n",
                    "foreign-throw"),
              0);
    EXPECT_EQ(count("src/runtime/e.cc",
                    "throw\n    std::logic_error(\"x\");\n",
                    "foreign-throw"),
              1);
}

TEST(ForeignThrow, SilentOutsideServingApi)
{
    EXPECT_EQ(count("src/core/pipeline.cc",
                    "throw std::runtime_error(\"ok here\");\n",
                    "foreign-throw"),
              0);
}

TEST(ForeignThrow, AllowCommentSuppresses)
{
    EXPECT_EQ(count("src/runtime/e.cc",
                    "// shredder-lint: allow(foreign-throw)\n"
                    "throw std::bad_alloc();\n",
                    "foreign-throw"),
              0);
}

// ---------------------------------------------------------------------------
// naked-new
// ---------------------------------------------------------------------------

TEST(NakedNew, FiresOnNewAndDeleteExpressions)
{
    EXPECT_EQ(count("src/nn/a.cc", "int* p = new int[4];\n",
                    "naked-new"),
              1);
    EXPECT_EQ(count("src/nn/a.cc", "delete p;\n", "naked-new"), 1);
    EXPECT_EQ(count("src/nn/a.cc", "delete[] p;\n", "naked-new"), 1);
}

TEST(NakedNew, DeletedMembersAndIncludesPass)
{
    const std::string ok =
        "#include <new>\n"
        "ThreadPool(const ThreadPool&) = delete;\n"
        "ThreadPool& operator=(const ThreadPool&) =delete;\n"
        "auto p = std::make_unique<int>(3);\n"
        "auto s = std::make_shared<int>(4);\n"
        "bool renew = news_update();\n";
    EXPECT_EQ(count("src/runtime/thread_pool.h", ok, "naked-new"), 0);
}

TEST(NakedNew, AllowCommentSuppresses)
{
    EXPECT_EQ(count("src/tensor/s.cc",
                    "// shredder-lint: allow(naked-new)\n"
                    "::operator delete[](p, std::align_val_t{64});\n",
                    "naked-new"),
              0);
}

// ---------------------------------------------------------------------------
// lock-across-submit
// ---------------------------------------------------------------------------

TEST(LockAcrossSubmit, FiresWhenGuardIsLive)
{
    const std::string bad =
        "void f() {\n"
        "    std::lock_guard<std::mutex> lock(mutex_);\n"
        "    pool_->submit([] {});\n"
        "}\n";
    EXPECT_EQ(count("src/runtime/x.cc", bad, "lock-across-submit"), 1);

    const std::string bad_global =
        "void g() {\n"
        "    std::unique_lock<std::mutex> lock(m);\n"
        "    ThreadPool::global().submit(task);\n"
        "}\n";
    EXPECT_EQ(count("src/runtime/x.cc", bad_global,
                    "lock-across-submit"),
              1);
}

TEST(LockAcrossSubmit, ScopeExitReleasesTheGuard)
{
    const std::string ok =
        "void f() {\n"
        "    {\n"
        "        std::lock_guard<std::mutex> lock(mutex_);\n"
        "        ++counter_;\n"
        "    }\n"
        "    pool_->submit([] {});\n"
        "}\n";
    EXPECT_EQ(count("src/runtime/x.cc", ok, "lock-across-submit"), 0);
}

TEST(LockAcrossSubmit, InnerBlockDoesNotReleaseOuterGuard)
{
    const std::string bad =
        "void f() {\n"
        "    std::lock_guard<std::mutex> lock(mutex_);\n"
        "    { ++counter_; }\n"
        "    pool_->submit([] {});\n"
        "}\n";
    EXPECT_EQ(count("src/runtime/x.cc", bad, "lock-across-submit"), 1);
}

TEST(LockAcrossSubmit, ExplicitUnlockReleases)
{
    const std::string ok =
        "void f() {\n"
        "    std::unique_lock<std::mutex> lock(mutex_);\n"
        "    ++counter_;\n"
        "    lock.unlock();\n"
        "    pool_->submit([] {});\n"
        "}\n";
    EXPECT_EQ(count("src/runtime/x.cc", ok, "lock-across-submit"), 0);
}

TEST(LockAcrossSubmit, NonPoolSubmitIsNotFlagged)
{
    // Engine/server submits are future-returning request paths, not
    // ThreadPool task submission.
    const std::string ok =
        "void f() {\n"
        "    std::lock_guard<std::mutex> lock(mutex_);\n"
        "    engine_.submit(name, std::move(act), id);\n"
        "    server->submit(std::move(act));\n"
        "}\n";
    EXPECT_EQ(count("src/runtime/x.cc", ok, "lock-across-submit"), 0);
}

TEST(LockAcrossSubmit, AllowCommentSuppresses)
{
    const std::string allowed =
        "void f() {\n"
        "    std::lock_guard<std::mutex> lock(mutex_);\n"
        "    // shredder-lint: allow(lock-across-submit)\n"
        "    pool_->submit([] {});\n"
        "}\n";
    EXPECT_EQ(count("src/runtime/x.cc", allowed,
                    "lock-across-submit"),
              0);
}

// ---------------------------------------------------------------------------
// unknown-allow (escape-hatch typo guard)
// ---------------------------------------------------------------------------

TEST(UnknownAllow, FiresOnTypoedRuleName)
{
    // Split string keeps this file's own raw line from parsing as a
    // marker (see file comment).
    const std::string bad = std::string("int x; // shredder-lint: "
                                        "allow(naked-noo") +
                            "b)\n";
    EXPECT_EQ(count("src/nn/a.cc", bad, "unknown-allow"), 1);
}

TEST(UnknownAllow, KnownNamesAndAllPass)
{
    EXPECT_EQ(count("src/nn/a.cc",
                    "int x; // shredder-lint: allow(naked-new)\n"
                    "int y; // shredder-lint: allow(all)\n",
                    "unknown-allow"),
              0);
}

// ---------------------------------------------------------------------------
// format rules
// ---------------------------------------------------------------------------

TEST(Format, TrailingWhitespace)
{
    EXPECT_EQ(count("src/nn/a.cc", "int x; \nint y;\n",
                    "format-trailing-ws"),
              1);
    EXPECT_EQ(count("src/nn/a.cc", "int x;\t\n", "format-trailing-ws"),
              1);
    EXPECT_EQ(count("src/nn/a.cc", "int x;\n", "format-trailing-ws"),
              0);
}

TEST(Format, CrlfLineEndings)
{
    const auto all = lint_source("src/nn/a.cc", "int x;\r\nint y;\n");
    const auto crlf = findings_for(all, "format-crlf");
    ASSERT_EQ(crlf.size(), 1u);
    EXPECT_EQ(crlf[0].line, 1);
    // The CR must not count as trailing whitespace too.
    EXPECT_EQ(findings_for(all, "format-trailing-ws").size(), 0u);
}

TEST(Format, MissingFinalNewline)
{
    EXPECT_EQ(count("src/nn/a.cc", "int x;", "format-final-newline"),
              1);
    EXPECT_EQ(count("src/nn/a.cc", "int x;\n", "format-final-newline"),
              0);
    EXPECT_EQ(count("src/nn/a.cc", "", "format-final-newline"), 0);
}

// ---------------------------------------------------------------------------
// Engine plumbing: catalog, line numbers, JSON summary.
// ---------------------------------------------------------------------------

TEST(Engine, CatalogNamesEveryRuleOnce)
{
    const auto& rules = rule_catalog();
    EXPECT_GE(rules.size(), 10u);
    for (const auto& r : rules) {
        EXPECT_TRUE(is_known_rule(r.name)) << r.name;
    }
    EXPECT_TRUE(is_known_rule("all"));
    EXPECT_FALSE(is_known_rule("definitely-not-a-rule"));
}

TEST(Engine, FindingsCarryFileAndLine)
{
    const auto all = lint_source("src/nn/a.cc",
                                 "int ok;\nint* p = new int;\n");
    const auto naked = findings_for(all, "naked-new");
    ASSERT_EQ(naked.size(), 1u);
    EXPECT_EQ(naked[0].file, "src/nn/a.cc");
    EXPECT_EQ(naked[0].line, 2);
}

TEST(Engine, SuppressionIsPerRule)
{
    // An allow for one rule must not silence a different rule on the
    // same line.
    const std::string src =
        "std::mt19937 gen;  // shredder-lint: allow(naked-new)\n";
    EXPECT_EQ(count("bench/b.cc", src, "raw-rng"), 1);
}

TEST(Engine, JsonSummaryIsMachineReadable)
{
    const auto all = lint_source(
        "src/nn/a.cc", "int* p = new int;\ndelete p;\n");
    const std::string json = findings_to_json(all, 1);
    EXPECT_NE(json.find("\"schema\": \"shredder-lint-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"finding_count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"naked-new\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"line\": 1"), std::string::npos);

    const std::string empty = findings_to_json({}, 185);
    EXPECT_NE(empty.find("\"finding_count\": 0"), std::string::npos);
    EXPECT_NE(empty.find("\"findings\": []"), std::string::npos);
}

}  // namespace
}  // namespace lint
}  // namespace shredder
