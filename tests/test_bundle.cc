/**
 * @file
 * Tests for the deployment-artifact subsystem: the `SARC` architecture
 * codec, `NoiseDistribution`/`NoiseCollection` stream persistence, the
 * `SHBL` bundle round trip, manifest cold-start, and — most important —
 * the trust-boundary contract: every malformed artifact yields a typed
 * `ServingError` (`kBadBundle` / `kVersionMismatch`), never a process
 * abort, and a `ServingEngine` endpoint cold-started from a bundle is
 * BIT-EXACT with the in-process (model, policy) it was saved from, for
 * both replay and sample policies.
 */
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/deploy/bundle.h"
#include "src/models/zoo.h"
#include "src/nn/arch.h"
#include "src/nn/conv2d.h"
#include "src/nn/dropout.h"
#include "src/nn/extras.h"
#include "src/nn/flatten.h"
#include "src/nn/linear.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_engine.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace {

using runtime::EndpointConfig;
using runtime::ReplayPolicy;
using runtime::SamplePolicy;
using runtime::ServingEngine;
using runtime::ServingError;
using runtime::ServingErrorCode;

std::string
temp_path(const std::string& name)
{
    return ::testing::TempDir() + name;
}

/** Read a whole file as bytes. */
std::string
slurp(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream oss;
    oss << is.rdbuf();
    return oss.str();
}

/** Write bytes to a file. */
void
spew(const std::string& path, const std::string& bytes)
{
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** Expect `load_bundle` to fail with the given typed code. */
void
expect_load_error(const std::string& path, ServingErrorCode expected)
{
    try {
        (void)deploy::load_bundle(path);
        ADD_FAILURE() << "expected ServingError "
                      << runtime::to_string(expected) << " for " << path;
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), expected) << e.what();
    } catch (const std::exception& e) {
        ADD_FAILURE() << "expected ServingError, got " << e.what();
    }
}

/** A LeNet fixture with a learned-looking collection at the last cut. */
struct Fixture
{
    explicit Fixture(std::uint64_t seed = 51)
        : rng(seed), net(models::make_lenet(rng)),
          cut(split::conv_cut_points(*net).back()), model(*net, cut),
          input({1, 28, 28}),
          act_shape(model.activation_shape(input))
    {
        for (int i = 0; i < 4; ++i) {
            core::NoiseSample s;
            s.noise = Tensor::laplace(per_sample(), rng, 0.0f, 1.5f);
            s.in_vivo_privacy = 2.0 + i;
            s.train_accuracy = 0.9;
            collection.add(std::move(s));
        }
    }

    Shape
    per_sample() const
    {
        return Shape({act_shape[1], act_shape[2], act_shape[3]});
    }

    /** Save a bundle of this fixture's artifacts; returns the path. */
    std::string
    save(deploy::PolicyKind kind, std::uint64_t policy_seed,
         const std::string& filename)
    {
        deploy::PolicySpec spec;
        spec.kind = kind;
        spec.seed = policy_seed;
        return save_spec(spec, filename);
    }

    /** Save under a full policy spec (shuffle/composed encodings). */
    std::string
    save_spec(const deploy::PolicySpec& spec, const std::string& filename)
    {
        const core::NoiseDistribution dist =
            core::NoiseDistribution::fit(collection);
        deploy::BundleContents contents;
        contents.network = net.get();
        contents.cut = cut;
        contents.input_shape = input;
        contents.policy = spec;
        contents.collection = &collection;
        contents.distribution = &dist;
        const std::string path = temp_path(filename);
        deploy::save_bundle(path, contents);
        return path;
    }

    Rng rng;
    std::unique_ptr<nn::Sequential> net;
    std::int64_t cut;
    split::SplitModel model;
    Shape input;
    Shape act_shape;  ///< Batched ([1, C, H, W]).
    core::NoiseCollection collection;
};

// -- Architecture codec ---------------------------------------------------

TEST(ArchCodec, RoundTripRebuildsTopologyAndParams)
{
    Rng rng(3);
    auto net = models::make_lenet(rng);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    nn::save_arch(ss, *net);

    auto rebuilt = nn::load_arch(ss);
    ASSERT_EQ(rebuilt->size(), net->size());
    for (std::int64_t i = 0; i < net->size(); ++i) {
        EXPECT_EQ(rebuilt->layer(i).kind(), net->layer(i).kind()) << i;
    }
    EXPECT_EQ(rebuilt->num_parameters(), net->num_parameters());

    // Forward bit-exactness on a random batch.
    Tensor x = Tensor::uniform(Shape({2, 1, 28, 28}), rng);
    nn::ExecutionContext ctx_a, ctx_b;
    Tensor ya = net->forward(x, ctx_a, nn::Mode::kEval);
    Tensor yb = rebuilt->forward(x, ctx_b, nn::Mode::kEval);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(ya, yb), 0.0);
}

TEST(ArchCodec, RoundTripCoversEveryConfiguredKind)
{
    // One network touching every kind that carries a config blob.
    Rng rng(4);
    nn::Sequential net;
    net.emplace<nn::Conv2d>(nn::Conv2dConfig{3, 4, 3, 1, 1, false}, rng);
    net.emplace<nn::LocalResponseNorm>(nn::LrnConfig{3, 2e-4f, 0.8f, 1.5f});
    net.emplace<nn::LeakyReLU>(0.07f);
    net.emplace<nn::AvgPool2d>(nn::PoolConfig{2, 2, 0});
    net.emplace<nn::Crop2d>(3, 3);
    net.emplace<nn::Dropout>(0.4f);
    net.emplace<nn::Flatten>();
    net.emplace<nn::Linear>(4 * 3 * 3, 5, rng, /*with_bias=*/false);
    net.emplace<nn::Softmax>();

    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    nn::save_arch(ss, net);
    auto rebuilt = nn::load_arch(ss);

    Tensor x = Tensor::uniform(Shape({2, 3, 8, 8}), rng);
    nn::ExecutionContext ctx_a, ctx_b;
    Tensor ya = net.forward(x, ctx_a, nn::Mode::kEval);
    Tensor yb = rebuilt->forward(x, ctx_b, nn::Mode::kEval);
    EXPECT_EQ(ya.shape(), yb.shape());
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(ya, yb), 0.0);
}

TEST(ArchCodec, MalformedStreamsThrowTyped)
{
    Rng rng(5);
    auto net = models::make_lenet(rng);
    std::ostringstream oss(std::ios::binary);
    nn::save_arch(oss, *net);
    const std::string bytes = oss.str();

    {  // Truncation at every interesting boundary must throw, not die.
        for (const std::size_t cutoff :
             {std::size_t{2}, std::size_t{7}, std::size_t{20},
              bytes.size() / 2, bytes.size() - 3}) {
            std::istringstream is(bytes.substr(0, cutoff),
                                  std::ios::binary);
            EXPECT_THROW(nn::load_arch(is), SerializeError) << cutoff;
        }
    }
    {  // Bad magic.
        std::istringstream is("XXXX" + bytes.substr(4), std::ios::binary);
        EXPECT_THROW(nn::load_arch(is), SerializeError);
    }
    {  // Unknown layer tag.
        std::string mutated = bytes;
        const auto pos = mutated.find("conv2d");
        ASSERT_NE(pos, std::string::npos);
        mutated.replace(pos, 6, "conv9d");
        std::istringstream is(mutated, std::ios::binary);
        EXPECT_THROW(nn::load_arch(is), SerializeError);
    }
}

TEST(ArchCodec, RegistryKnowsEveryZooKind)
{
    Rng rng(6);
    for (const char* name : {"lenet", "cifar", "svhn", "alexnet"}) {
        auto net = models::make_network(name, rng);
        for (std::int64_t i = 0; i < net->size(); ++i) {
            EXPECT_TRUE(nn::arch_registry_knows(net->layer(i).kind()))
                << name << " layer " << i << ": "
                << net->layer(i).kind();
        }
    }
}

// -- NoiseDistribution / NoiseCollection persistence ----------------------

TEST(NoiseDistributionIo, StreamAndFileRoundTrip)
{
    Fixture f;
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(f.collection,
                                     core::NoiseFamily::kGaussian);

    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    dist.save(ss);
    const core::NoiseDistribution loaded =
        core::NoiseDistribution::load(ss);
    EXPECT_EQ(loaded.family(), dist.family());
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(loaded.location(), dist.location()),
                     0.0);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(loaded.scale(), dist.scale()), 0.0);

    // Same seed → bit-identical draws: the shipped fit IS the
    // mechanism.
    Rng a(99), b(99);
    EXPECT_DOUBLE_EQ(ops::max_abs_diff(dist.sample(a), loaded.sample(b)),
                     0.0);

    const std::string path = temp_path("dist_roundtrip.bin");
    dist.save(path);
    const core::NoiseDistribution from_file =
        core::NoiseDistribution::load(path);
    EXPECT_DOUBLE_EQ(
        ops::max_abs_diff(from_file.location(), dist.location()), 0.0);
    std::remove(path.c_str());
}

TEST(NoiseDistributionIo, MalformedStreamThrows)
{
    Fixture f;
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(f.collection);
    std::ostringstream oss(std::ios::binary);
    dist.save(oss);
    const std::string bytes = oss.str();

    std::istringstream truncated(bytes.substr(0, bytes.size() / 2),
                                 std::ios::binary);
    EXPECT_THROW(core::NoiseDistribution::load(truncated), SerializeError);

    std::istringstream junk("not a distribution", std::ios::binary);
    EXPECT_THROW(core::NoiseDistribution::load(junk), SerializeError);
}

TEST(NoiseCollectionIo, StreamRoundTripKeepsMetadata)
{
    Fixture f;
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    f.collection.save(ss);
    const core::NoiseCollection loaded = core::NoiseCollection::load(ss);
    ASSERT_EQ(loaded.size(), f.collection.size());
    for (std::int64_t i = 0; i < loaded.size(); ++i) {
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(loaded.get(i).noise,
                                           f.collection.get(i).noise),
                         0.0);
        EXPECT_DOUBLE_EQ(loaded.get(i).in_vivo_privacy,
                         f.collection.get(i).in_vivo_privacy);
        EXPECT_DOUBLE_EQ(loaded.get(i).train_accuracy,
                         f.collection.get(i).train_accuracy);
    }

    std::istringstream truncated(ss.str().substr(0, 40),
                                 std::ios::binary);
    EXPECT_THROW(core::NoiseCollection::load(truncated), SerializeError);
}

// -- Bundle round trip ----------------------------------------------------

TEST(Bundle, SaveLoadPreservesEverything)
{
    Fixture f;
    const std::string path =
        f.save(deploy::PolicyKind::kReplay, 77, "bundle_full.shb");

    deploy::Bundle b = deploy::load_bundle(path);
    EXPECT_EQ(b.cut(), f.cut);
    EXPECT_EQ(b.input_shape(), f.input);
    EXPECT_EQ(b.activation_shape(), f.per_sample());
    EXPECT_EQ(b.policy_spec().kind, deploy::PolicyKind::kReplay);
    EXPECT_EQ(b.policy_spec().seed, 77u);
    EXPECT_EQ(b.collection().size(), f.collection.size());
    ASSERT_TRUE(b.has_distribution());
    EXPECT_EQ(b.network().size(), f.net->size());
    EXPECT_EQ(b.network().num_parameters(), f.net->num_parameters());

    // The rebuilt cloud half is bit-exact with the original.
    Tensor act = Tensor::normal(f.act_shape, f.rng);
    split::SplitModel rebuilt(b.network(), b.cut());
    nn::ExecutionContext ctx_a, ctx_b;
    EXPECT_DOUBLE_EQ(
        ops::max_abs_diff(f.model.cloud_forward(act, ctx_a),
                          rebuilt.cloud_forward(act, ctx_b)),
        0.0);
    std::remove(path.c_str());
}

// The acceptance pin: a ServingEngine endpoint cold-started from
// (bundle, manifest) produces bit-exact outputs vs the in-process
// (model, policy) it was saved from — replay policy.
TEST(Bundle, ColdStartReplayEndpointIsBitExactWithInProcess)
{
    Fixture f;
    const std::uint64_t seed = 1234;
    const std::string path =
        f.save(deploy::PolicyKind::kReplay, seed, "bundle_replay.shb");

    // In-process reference: the very objects the trainer held.
    const ReplayPolicy reference_policy(f.collection, seed);

    ServingEngine engine;
    engine.register_endpoint_from_bundle("lenet-replay", path);
    engine.register_endpoint(
        "in-process", f.model,
        std::make_shared<ReplayPolicy>(f.collection, seed));

    nn::ExecutionContext ref_ctx;
    for (std::uint64_t id = 0; id < 24; ++id) {
        const Tensor act = Tensor::normal(f.per_sample(), f.rng);
        const Tensor served =
            engine.submit("lenet-replay", act, id).get();
        const Tensor in_process =
            engine.submit("in-process", act, id).get();
        // Offline recipe: apply the policy, run the cloud half
        // serially.
        const Tensor offline =
            f.model
                .cloud_forward(
                    reference_policy.apply(act, id).reshaped(f.act_shape),
                    ref_ctx)
                .reshaped(Shape({10}));  // Server scatters rank-1 logits.
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served, in_process), 0.0)
            << "id " << id;
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served, offline), 0.0)
            << "id " << id;
    }
    std::remove(path.c_str());
}

// Same pin for the sample policy: the bundled fitted distribution must
// reproduce the in-process per-element draws exactly.
TEST(Bundle, ColdStartSampleEndpointIsBitExactWithInProcess)
{
    Fixture f;
    const std::uint64_t seed = 4321;
    const std::string path =
        f.save(deploy::PolicyKind::kSample, seed, "bundle_sample.shb");

    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(f.collection);
    const SamplePolicy reference_policy(dist, seed);

    ServingEngine engine;
    engine.register_endpoint_from_bundle("lenet-sample", path);
    engine.register_endpoint("in-process", f.model,
                             std::make_shared<SamplePolicy>(dist, seed));

    nn::ExecutionContext ref_ctx;
    for (std::uint64_t id = 0; id < 24; ++id) {
        const Tensor act = Tensor::normal(f.per_sample(), f.rng);
        const Tensor served =
            engine.submit("lenet-sample", act, id).get();
        const Tensor in_process =
            engine.submit("in-process", act, id).get();
        const Tensor offline =
            f.model
                .cloud_forward(
                    reference_policy.apply(act, id).reshaped(f.act_shape),
                    ref_ctx)
                .reshaped(Shape({10}));  // Server scatters rank-1 logits.
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served, in_process), 0.0)
            << "id " << id;
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served, offline), 0.0)
            << "id " << id;
    }
    std::remove(path.c_str());
}

// -- Shuffle / composed policy specs (format version 2) -------------------

TEST(Bundle, ShuffleAndComposedSpecsRoundTrip)
{
    Fixture f;
    {
        deploy::PolicySpec spec;
        spec.kind = deploy::PolicyKind::kShuffle;
        spec.seed = 31337;
        const std::string path = f.save_spec(spec, "spec_shuffle.shb");
        deploy::Bundle b = deploy::load_bundle(path);
        EXPECT_EQ(b.policy_spec().kind, deploy::PolicyKind::kShuffle);
        EXPECT_EQ(b.policy_spec().seed, 31337u);
        EXPECT_FALSE(b.policy_spec().rank_matched);
        EXPECT_EQ(b.make_policy()->name(), "shuffle");
        std::remove(path.c_str());
    }
    {
        deploy::PolicySpec spec;
        spec.kind = deploy::PolicyKind::kShuffle;
        spec.seed = 31338;
        spec.rank_matched = true;
        const std::string path = f.save_spec(spec, "spec_rank.shb");
        deploy::Bundle b = deploy::load_bundle(path);
        EXPECT_TRUE(b.policy_spec().rank_matched);
        EXPECT_EQ(b.make_policy()->name(), "shuffle-rank");
        std::remove(path.c_str());
    }
    {
        deploy::PolicySpec spec;
        spec.kind = deploy::PolicyKind::kComposed;
        deploy::PolicySpec replay_stage;
        replay_stage.kind = deploy::PolicyKind::kReplay;
        replay_stage.seed = 11;
        deploy::PolicySpec shuffle_stage;
        shuffle_stage.kind = deploy::PolicyKind::kShuffle;
        shuffle_stage.seed = 22;
        spec.stages = {replay_stage, shuffle_stage};
        const std::string path = f.save_spec(spec, "spec_composed.shb");
        deploy::Bundle b = deploy::load_bundle(path);
        EXPECT_EQ(b.policy_spec().kind, deploy::PolicyKind::kComposed);
        ASSERT_EQ(b.policy_spec().stages.size(), 2u);
        EXPECT_EQ(b.policy_spec().stages[0].kind,
                  deploy::PolicyKind::kReplay);
        EXPECT_EQ(b.policy_spec().stages[0].seed, 11u);
        EXPECT_EQ(b.policy_spec().stages[1].kind,
                  deploy::PolicyKind::kShuffle);
        EXPECT_EQ(b.policy_spec().stages[1].seed, 22u);
        EXPECT_EQ(b.make_policy()->name(), "replay+shuffle");
        std::remove(path.c_str());
    }
    EXPECT_STREQ(deploy::to_string(deploy::PolicyKind::kShuffle),
                 "shuffle");
    EXPECT_STREQ(deploy::to_string(deploy::PolicyKind::kComposed),
                 "composed");
}

// Cold-start pin for a shuffled endpoint, mirroring the replay/sample
// pins above.
TEST(Bundle, ColdStartShuffleEndpointIsBitExactWithInProcess)
{
    Fixture f;
    const std::uint64_t seed = 777;
    const std::string path =
        f.save(deploy::PolicyKind::kShuffle, seed, "bundle_shuffle.shb");

    const runtime::ShufflePolicy reference_policy(seed);
    ServingEngine engine;
    engine.register_endpoint_from_bundle("lenet-shuffle", path);
    engine.register_endpoint(
        "in-process", f.model,
        std::make_shared<runtime::ShufflePolicy>(seed));

    nn::ExecutionContext ref_ctx;
    for (std::uint64_t id = 0; id < 16; ++id) {
        const Tensor act = Tensor::normal(f.per_sample(), f.rng);
        const Tensor served =
            engine.submit("lenet-shuffle", act, id).get();
        const Tensor in_process =
            engine.submit("in-process", act, id).get();
        const Tensor offline =
            f.model
                .cloud_forward(
                    reference_policy.apply(act, id).reshaped(f.act_shape),
                    ref_ctx)
                .reshaped(Shape({10}));  // Server scatters rank-1 logits.
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served, in_process), 0.0)
            << "id " << id;
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served, offline), 0.0)
            << "id " << id;
    }
    std::remove(path.c_str());
}

// The acceptance pin: a ComposedPolicy bundle cold-started by the
// engine (the shredder_serve path) is bit-exact with its in-process
// counterpart and the offline stage-by-stage recipe.
TEST(Bundle, ColdStartComposedEndpointIsBitExactWithInProcess)
{
    Fixture f;
    deploy::PolicySpec spec;
    spec.kind = deploy::PolicyKind::kComposed;
    deploy::PolicySpec replay_stage;
    replay_stage.kind = deploy::PolicyKind::kReplay;
    replay_stage.seed = 41;
    deploy::PolicySpec shuffle_stage;
    shuffle_stage.kind = deploy::PolicyKind::kShuffle;
    shuffle_stage.seed = 42;
    spec.stages = {replay_stage, shuffle_stage};
    const std::string path = f.save_spec(spec, "bundle_composed.shb");

    const auto replay =
        std::make_shared<ReplayPolicy>(f.collection, replay_stage.seed);
    const auto shuffle =
        std::make_shared<runtime::ShufflePolicy>(shuffle_stage.seed);
    const auto reference_policy =
        std::make_shared<runtime::ComposedPolicy>(
            std::vector<std::shared_ptr<const runtime::NoisePolicy>>{
                replay, shuffle});

    ServingEngine engine;
    engine.register_endpoint_from_bundle("lenet-composed", path);
    engine.register_endpoint("in-process", f.model, reference_policy);
    EXPECT_EQ(engine.policy("lenet-composed").name(), "replay+shuffle");

    nn::ExecutionContext ref_ctx;
    for (std::uint64_t id = 0; id < 16; ++id) {
        const Tensor act = Tensor::normal(f.per_sample(), f.rng);
        const Tensor served =
            engine.submit("lenet-composed", act, id).get();
        const Tensor in_process =
            engine.submit("in-process", act, id).get();
        // Offline recipe: each stage in order under the same id.
        const Tensor staged =
            shuffle->apply(replay->apply(act, id), id);
        const Tensor offline =
            f.model.cloud_forward(staged.reshaped(f.act_shape), ref_ctx)
                .reshaped(Shape({10}));  // Server scatters rank-1 logits.
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served, in_process), 0.0)
            << "id " << id;
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served, offline), 0.0)
            << "id " << id;
    }
    std::remove(path.c_str());
}

/**
 * Byte offset of the version-3 transport-hint pair inside a replay
 * bundle of `Fixture`: magic+version (8) + replay policy spec
 * (u32 kind + u64 seed = 12) + rank-3 input shape (u32 rank +
 * 3 × u64 dims = 28) + cut u64 (8).
 */
constexpr std::size_t kFixtureHintOffset = 56;

/** Rewrite a fixture replay bundle as an older-format file. */
void
downgrade_replay_bundle(const std::string& path, char version)
{
    std::string bytes = slurp(path);
    ASSERT_EQ(bytes[4], 3);  // Version field (bytes 4..7, LE).
    bytes[4] = version;
    // Pre-v3 files carry no transport-hint bytes.
    bytes.erase(kFixtureHintOffset, 2);
    spew(path, bytes);
}

// Version-1 files (policy kinds 0-3, no spec extras, no transport
// hints) must keep loading: the current encoding of those kinds is
// byte-identical except the version field and the v3 hint pair.
TEST(Bundle, VersionOneReplayBundleStillLoads)
{
    Fixture f;
    const std::string path =
        f.save(deploy::PolicyKind::kReplay, 55, "v1_replay.shb");
    downgrade_replay_bundle(path, 1);

    deploy::Bundle b = deploy::load_bundle(path);
    EXPECT_EQ(b.policy_spec().kind, deploy::PolicyKind::kReplay);
    EXPECT_EQ(b.policy_spec().seed, 55u);
    EXPECT_EQ(b.make_policy()->name(), "replay");
    // Pre-v3 files imply plain fp32 transport.
    EXPECT_EQ(b.wire_dtype(), WireDtype::kF32);
    EXPECT_FALSE(b.int8_compute());
    std::remove(path.c_str());
}

// Version-2 files (no transport hints yet) load with fp32 defaults.
TEST(Bundle, VersionTwoReplayBundleStillLoads)
{
    Fixture f;
    const std::string path =
        f.save(deploy::PolicyKind::kReplay, 77, "v2_replay.shb");
    downgrade_replay_bundle(path, 2);

    deploy::Bundle b = deploy::load_bundle(path);
    EXPECT_EQ(b.policy_spec().seed, 77u);
    EXPECT_EQ(b.wire_dtype(), WireDtype::kF32);
    EXPECT_FALSE(b.int8_compute());
    std::remove(path.c_str());
}

// -- Version-3 transport hints --------------------------------------------

TEST(Bundle, TransportHintsRoundTrip)
{
    Fixture f;
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(f.collection);
    deploy::BundleContents contents;
    contents.network = f.net.get();
    contents.cut = f.cut;
    contents.input_shape = f.input;
    contents.policy.kind = deploy::PolicyKind::kReplay;
    contents.policy.seed = 12;
    contents.collection = &f.collection;
    contents.distribution = &dist;
    contents.wire_dtype = WireDtype::kI8;
    contents.int8_compute = true;
    const std::string path = temp_path("hints_i8.shb");
    deploy::save_bundle(path, contents);

    deploy::Bundle b = deploy::load_bundle(path);
    EXPECT_EQ(b.wire_dtype(), WireDtype::kI8);
    EXPECT_TRUE(b.int8_compute());

    // Corrupt hint bytes are a typed load failure, not a crash.
    const std::string good = slurp(path);
    {
        std::string bad = good;
        bad[kFixtureHintOffset] = 3;  // no such WireDtype code
        spew(path, bad);
        expect_load_error(path, ServingErrorCode::kBadBundle);
    }
    {
        std::string bad = good;
        bad[kFixtureHintOffset + 1] = 2;  // flag must be 0/1
        spew(path, bad);
        expect_load_error(path, ServingErrorCode::kBadBundle);
    }
    std::remove(path.c_str());
}

// The acceptance pin for the quantized wire path: an int8-wire
// endpoint cold-started from a bundle answers submit_quantized
// bit-exactly like the in-process endpoint it was saved from — on both
// the int8 direct-GEMM path and the dequantize→fp32 fallback.
TEST(Bundle, ColdStartInt8WireEndpointIsBitExactWithInProcess)
{
    Fixture f;
    const std::uint64_t seed = 86;
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(f.collection);
    deploy::BundleContents contents;
    contents.network = f.net.get();
    contents.cut = f.cut;
    contents.input_shape = f.input;
    contents.policy.kind = deploy::PolicyKind::kReplay;
    contents.policy.seed = seed;
    contents.collection = &f.collection;
    contents.distribution = &dist;
    contents.wire_dtype = WireDtype::kI8;
    const std::string fp32_path = temp_path("i8_wire_fp32_compute.shb");
    deploy::save_bundle(fp32_path, contents);
    contents.int8_compute = true;
    const std::string direct_path = temp_path("i8_wire_direct.shb");
    deploy::save_bundle(direct_path, contents);

    const ReplayPolicy reference_policy(f.collection, seed);

    ServingEngine engine;
    engine.register_endpoint_from_bundle("cold-fp32", fp32_path);
    engine.register_endpoint_from_bundle("cold-direct", direct_path);
    EXPECT_EQ(engine.wire_dtype("cold-fp32"), WireDtype::kI8);
    EXPECT_EQ(engine.wire_dtype("cold-direct"), WireDtype::kI8);
    EndpointConfig ep;
    ep.wire_dtype = WireDtype::kI8;
    ep.int8_compute = true;
    engine.register_endpoint(
        "in-process-direct", f.model,
        std::make_shared<ReplayPolicy>(f.collection, seed), ep);

    nn::ExecutionContext ref_ctx;
    for (std::uint64_t id = 0; id < 12; ++id) {
        const Tensor act = Tensor::normal(f.per_sample(), f.rng);
        const QuantizedTensor q = quantize(act, WireDtype::kI8);
        const Tensor served_fp32 =
            engine.submit_quantized("cold-fp32", q, id).get();
        const Tensor served_direct =
            engine.submit_quantized("cold-direct", q, id).get();
        const Tensor in_process =
            engine.submit_quantized("in-process-direct", q, id).get();

        // Fallback endpoint: dequantize, then the exact fp32 recipe.
        const Tensor offline =
            f.model
                .cloud_forward(reference_policy.apply(dequantize(q), id)
                                   .reshaped(f.act_shape),
                               ref_ctx)
                .reshaped(Shape({10}));  // Server scatters rank-1 logits.
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served_fp32, offline), 0.0)
            << "id " << id;
        // Direct path: cold start and in-process run the same int8
        // GEMM over the same bytes — bit-exact, and within codec
        // tolerance of the fp32 recipe.
        EXPECT_DOUBLE_EQ(ops::max_abs_diff(served_direct, in_process),
                         0.0)
            << "id " << id;
        EXPECT_LT(ops::max_abs_diff(served_direct, offline), 0.5)
            << "id " << id;
    }
    EXPECT_GE(engine.stats("cold-direct").int8_direct_batches, 1);
    EXPECT_EQ(engine.stats("cold-fp32").int8_direct_batches, 0);
    std::remove(fp32_path.c_str());
    std::remove(direct_path.c_str());
}

// -- Manifest cold start --------------------------------------------------

TEST(Manifest, ColdStartsMultiEndpointEngine)
{
    Fixture f;
    const std::string replay_path =
        f.save(deploy::PolicyKind::kReplay, 9, "manifest_replay.shb");
    const std::string sample_path =
        f.save(deploy::PolicyKind::kSample, 9, "manifest_sample.shb");

    const std::string manifest = temp_path("manifest.txt");
    {
        std::ofstream os(manifest);
        os << "# demo manifest\n"
           << "\n"
           << "endpoint replay " << replay_path << " max_batch=4\n"
           << "endpoint sample " << sample_path
           << " max_batch=2 batch_timeout_ms=0\n";
    }

    ServingEngine engine;
    engine.register_endpoints_from_manifest(manifest);
    EXPECT_TRUE(engine.has_endpoint("replay"));
    EXPECT_TRUE(engine.has_endpoint("sample"));
    EXPECT_EQ(engine.policy("replay").name(), "replay");
    EXPECT_EQ(engine.policy("sample").name(), "sample");
    ASSERT_NE(engine.bundle("replay"), nullptr);
    EXPECT_EQ(engine.bundle("replay")->input_shape(), f.input);

    const Tensor act = Tensor::normal(f.per_sample(), f.rng);
    const Tensor logits = engine.infer("replay", act);
    EXPECT_EQ(logits.size(), 10);

    std::remove(manifest.c_str());
    std::remove(replay_path.c_str());
    std::remove(sample_path.c_str());
}

TEST(Manifest, RelativeBundlePathsResolveAgainstManifestDir)
{
    Fixture f;
    const std::string bundle_path =
        f.save(deploy::PolicyKind::kReplay, 9, "rel_bundle.shb");
    const std::string manifest = temp_path("rel_manifest.txt");
    {
        std::ofstream os(manifest);
        os << "endpoint lenet rel_bundle.shb\n";  // relative!
    }
    ServingEngine engine;
    engine.register_endpoints_from_manifest(manifest);
    EXPECT_TRUE(engine.has_endpoint("lenet"));
    std::remove(manifest.c_str());
    std::remove(bundle_path.c_str());
}

TEST(Manifest, WireDtypeKeysOverrideBundleHints)
{
    Fixture f;
    // A bundle that HINTS int8 transport…
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(f.collection);
    deploy::BundleContents contents;
    contents.network = f.net.get();
    contents.cut = f.cut;
    contents.input_shape = f.input;
    contents.policy.kind = deploy::PolicyKind::kReplay;
    contents.policy.seed = 9;
    contents.collection = &f.collection;
    contents.distribution = &dist;
    contents.wire_dtype = WireDtype::kI8;
    contents.int8_compute = true;
    const std::string path = temp_path("manifest_hint_i8.shb");
    deploy::save_bundle(path, contents);

    const std::string manifest = temp_path("wire_manifest.txt");
    {
        std::ofstream os(manifest);
        // …served three ways: hint honored, explicitly pinned to
        // int16, and explicitly forced back to plain fp32 — an
        // explicit manifest choice always beats the bundle hint.
        os << "endpoint hinted " << path << "\n"
           << "endpoint pinned16 " << path << " wire_dtype=int16\n"
           << "endpoint forced32 " << path
           << " wire_dtype=fp32 int8_compute=false\n";
    }
    ServingEngine engine;
    engine.register_endpoints_from_manifest(manifest);
    EXPECT_EQ(engine.wire_dtype("hinted"), WireDtype::kI8);
    EXPECT_EQ(engine.wire_dtype("pinned16"), WireDtype::kI16);
    EXPECT_EQ(engine.wire_dtype("forced32"), WireDtype::kF32);

    // Every variant still serves (int8_compute and wire_dtype never
    // change whether an endpoint can answer).
    const Tensor act = Tensor::normal(f.per_sample(), f.rng);
    for (const char* name : {"hinted", "pinned16", "forced32"}) {
        EXPECT_EQ(engine.infer(name, act).size(), 10) << name;
    }
    std::remove(manifest.c_str());
    std::remove(path.c_str());
}

TEST(Manifest, MalformedManifestsThrowTyped)
{
    const auto expect_manifest_error = [](const std::string& content) {
        const std::string path = temp_path("bad_manifest.txt");
        spew(path, content);
        try {
            deploy::parse_manifest(path);
            ADD_FAILURE() << "expected kBadBundle for: " << content;
        } catch (const ServingError& e) {
            EXPECT_EQ(e.code(), ServingErrorCode::kBadBundle) << e.what();
        }
        std::remove(path.c_str());
    };
    expect_manifest_error("serve lenet x.shb\n");          // bad directive
    expect_manifest_error("endpoint lenet\n");             // missing path
    expect_manifest_error("endpoint a x.shb max_batch=0\n");
    expect_manifest_error("endpoint a x.shb max_batch=lots\n");
    expect_manifest_error("endpoint a x.shb max_batch=4x2\n");
    expect_manifest_error("endpoint a x.shb batch_timeout_ms=1.5ms\n");
    expect_manifest_error("endpoint a x.shb context_seed=7seven\n");
    expect_manifest_error("endpoint a x.shb turbo=1\n");   // unknown key
    expect_manifest_error("endpoint a x.shb wire_dtype=int7\n");
    expect_manifest_error("endpoint a x.shb wire_dtype=\n");
    expect_manifest_error("endpoint a x.shb int8_compute=maybe\n");
    expect_manifest_error("endpoint a x.shb\nendpoint a y.shb\n");

    try {  // Missing manifest file.
        deploy::parse_manifest(temp_path("no_such_manifest.txt"));
        ADD_FAILURE() << "expected kBadBundle";
    } catch (const ServingError& e) {
        EXPECT_EQ(e.code(), ServingErrorCode::kBadBundle);
    }
}

// -- Malformed bundles: typed errors, never a dead process ----------------

TEST(BundleTrustBoundary, MissingFileIsTyped)
{
    expect_load_error(temp_path("no_such_bundle.shb"),
                      ServingErrorCode::kBadBundle);
}

TEST(BundleTrustBoundary, BadMagicIsTyped)
{
    const std::string path = temp_path("bad_magic.shb");
    spew(path, "this is not a bundle at all");
    expect_load_error(path, ServingErrorCode::kBadBundle);
    std::remove(path.c_str());
}

TEST(BundleTrustBoundary, FutureVersionIsTyped)
{
    Fixture f;
    const std::string path =
        f.save(deploy::PolicyKind::kReplay, 1, "future_version.shb");
    std::string bytes = slurp(path);
    bytes[4] = 99;  // Version field (bytes 4..7, little-endian).
    spew(path, bytes);
    expect_load_error(path, ServingErrorCode::kVersionMismatch);
    std::remove(path.c_str());
}

TEST(BundleTrustBoundary, TruncationAnywhereIsTyped)
{
    Fixture f;
    const std::string path =
        f.save(deploy::PolicyKind::kReplay, 1, "truncated.shb");
    const std::string bytes = slurp(path);
    // A sweep of truncation points: header, arch section, tensor
    // payloads, collection metadata, end marker.
    for (const std::size_t keep :
         {std::size_t{5}, std::size_t{13}, std::size_t{40},
          bytes.size() / 4, bytes.size() / 2, bytes.size() - 2}) {
        spew(path, bytes.substr(0, keep));
        expect_load_error(path, ServingErrorCode::kBadBundle);
    }
    std::remove(path.c_str());
}

TEST(BundleTrustBoundary, TensorStreamGarbageIsTyped)
{
    Fixture f;
    const std::string path =
        f.save(deploy::PolicyKind::kReplay, 1, "tensor_garbage.shb");
    std::string bytes = slurp(path);
    // Corrupt the first embedded SHRT tensor header: the weight
    // stream inside the arch section turns to garbage.
    const auto pos = bytes.find("SHRT");
    ASSERT_NE(pos, std::string::npos);
    bytes.replace(pos, 4, "JUNK");
    spew(path, bytes);
    expect_load_error(path, ServingErrorCode::kBadBundle);
    std::remove(path.c_str());
}

TEST(BundleTrustBoundary, HugeDeclaredTensorIsTypedNotOom)
{
    // A tensor header declaring an absurd element count must fail the
    // load with a typed error — not a multi-gigabyte allocation, a
    // std::length_error escaping the catch clauses, or an int64
    // overflow of the element product.
    Fixture f;
    const std::string path =
        f.save(deploy::PolicyKind::kReplay, 1, "huge_tensor.shb");
    std::string bytes = slurp(path);
    const auto pos = bytes.find("SHRT");
    ASSERT_NE(pos, std::string::npos);
    std::ostringstream patch(std::ios::binary);
    wire::write_u32(patch, 2);  // rank
    wire::write_u64(patch, 0xFFFFFFFFull);
    wire::write_u64(patch, 0xFFFFFFFFull);
    bytes.replace(pos + 4, patch.str().size(), patch.str());
    spew(path, bytes);
    expect_load_error(path, ServingErrorCode::kBadBundle);
    std::remove(path.c_str());
}

TEST(BundleTrustBoundary, TrailingGarbageIsTyped)
{
    Fixture f;
    const std::string path =
        f.save(deploy::PolicyKind::kReplay, 1, "trailing.shb");
    spew(path, slurp(path) + "extra bytes after the end marker");
    expect_load_error(path, ServingErrorCode::kBadBundle);
    std::remove(path.c_str());
}

TEST(BundleTrustBoundary, InconsistentTopologyIsTypedNotFatal)
{
    // Declare an input shape that cannot flow through the stored
    // topology (wrong channel count). The shape rules deep in the
    // layers are user-error checks; the trust-boundary guard must
    // surface them as kBadBundle instead of exiting the process.
    Fixture f;
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(f.collection);
    deploy::BundleContents contents;
    contents.network = f.net.get();
    contents.cut = f.cut;
    contents.input_shape = f.input;
    contents.policy.kind = deploy::PolicyKind::kNone;
    const std::string path = temp_path("inconsistent.shb");
    deploy::save_bundle(path, contents);

    std::string bytes = slurp(path);
    // The input shape sits after magic+version+kind (u32×3) + seed
    // (u64): rank u32, then dim0 u64 — patch C=1 to C=3.
    const std::size_t dim0_off = 4 * 3 + 8 + 4;
    ASSERT_EQ(bytes[dim0_off], 1);
    bytes[dim0_off] = 3;
    spew(path, bytes);
    expect_load_error(path, ServingErrorCode::kBadBundle);
    std::remove(path.c_str());
}

// Every prefix of a v2 bundle carrying a composed policy spec — which
// exercises the full spec grammar: composed header, stage list, the
// shuffle variant flag — must yield a typed error, never a crash. The
// sweep walks byte-by-byte through the whole header + spec region and
// then samples deeper cuts.
TEST(BundleTrustBoundary, ComposedSpecTruncationSweepIsTyped)
{
    Fixture f;
    deploy::PolicySpec spec;
    spec.kind = deploy::PolicyKind::kComposed;
    deploy::PolicySpec sample_stage;
    sample_stage.kind = deploy::PolicyKind::kSample;
    sample_stage.seed = 1;
    deploy::PolicySpec shuffle_stage;
    shuffle_stage.kind = deploy::PolicyKind::kShuffle;
    shuffle_stage.seed = 2;
    shuffle_stage.rank_matched = true;
    spec.stages = {sample_stage, shuffle_stage};
    const std::string path = f.save_spec(spec, "trunc_spec.shb");
    const std::string bytes = slurp(path);

    // Spec region: magic(4) + version(4), then kind(4)+seed(8) +
    // count(4) + stage0 kind(4)+seed(8) + stage1 kind(4)+seed(8)+
    // flag(1) = 49 bytes of header+spec.
    const std::size_t spec_end = 49;
    ASSERT_GT(bytes.size(), spec_end);
    for (std::size_t keep = 0; keep <= spec_end; ++keep) {
        spew(path, bytes.substr(0, keep));
        expect_load_error(path, ServingErrorCode::kBadBundle);
    }
    for (const std::size_t keep :
         {spec_end + 9, bytes.size() / 2, bytes.size() - 1}) {
        spew(path, bytes.substr(0, keep));
        expect_load_error(path, ServingErrorCode::kBadBundle);
    }
    std::remove(path.c_str());
}

// Malformed spec bytes: out-of-range stage counts (the composed-depth
// limit), nested composition, unknown kinds, bad variant flags — all
// typed, never fatal.
TEST(BundleTrustBoundary, MalformedPolicySpecBytesAreTyped)
{
    Fixture f;
    deploy::PolicySpec spec;
    spec.kind = deploy::PolicyKind::kComposed;
    deploy::PolicySpec replay_stage;
    replay_stage.kind = deploy::PolicyKind::kReplay;
    deploy::PolicySpec shuffle_stage;
    shuffle_stage.kind = deploy::PolicyKind::kShuffle;
    spec.stages = {replay_stage, shuffle_stage};
    const std::string path = f.save_spec(spec, "bad_spec.shb");
    const std::string bytes = slurp(path);
    // Offsets: kind u32 @8, seed u64 @12, count u32 @20, stage0 kind
    // u32 @24, stage0 seed u64 @28, stage1 kind u32 @36.
    const auto patched = [&](std::size_t off, char value) {
        std::string mutated = bytes;
        mutated[off] = value;
        spew(path, mutated);
        expect_load_error(path, ServingErrorCode::kBadBundle);
    };
    patched(8, 6);    // unknown top-level policy kind
    patched(20, 0);   // composed with zero stages
    patched(20, 9);   // stage count above kMaxComposedStages
    patched(24, 5);   // nested composed stage
    patched(24, 7);   // unknown stage kind
    std::remove(path.c_str());

    // A shuffle spec with a bad variant flag (offset 20, after
    // kind+seed) is damage, not a future format.
    const std::string shuffle_path =
        f.save(deploy::PolicyKind::kShuffle, 1, "bad_flag.shb");
    std::string mutated = slurp(shuffle_path);
    ASSERT_EQ(mutated[20], 0);
    mutated[20] = 2;
    spew(shuffle_path, mutated);
    expect_load_error(shuffle_path, ServingErrorCode::kBadBundle);
    std::remove(shuffle_path.c_str());
}

// A version-1 file cannot carry the v2-only kinds: a patched version
// byte must not smuggle a shuffle spec past the v1 grammar.
TEST(BundleTrustBoundary, VersionOneRejectsShuffleKinds)
{
    Fixture f;
    const std::string path =
        f.save(deploy::PolicyKind::kShuffle, 1, "v1_shuffle.shb");
    std::string bytes = slurp(path);
    bytes[4] = 1;  // Claim version 1; kind 4 is out of its grammar.
    spew(path, bytes);
    expect_load_error(path, ServingErrorCode::kBadBundle);
    std::remove(path.c_str());
}

// The rank-matched shuffle variant needs the bundled distribution;
// flipping the flag on a bundle saved without one is inconsistent.
TEST(BundleTrustBoundary, RankShuffleWithoutDistributionIsTyped)
{
    Fixture f;
    deploy::BundleContents contents;
    contents.network = f.net.get();
    contents.cut = f.cut;
    contents.input_shape = f.input;
    contents.policy.kind = deploy::PolicyKind::kShuffle;
    contents.policy.seed = 3;
    const std::string path = temp_path("rank_no_dist.shb");
    deploy::save_bundle(path, contents);  // plain shuffle, no artifacts

    std::string bytes = slurp(path);
    ASSERT_EQ(bytes[20], 0);  // variant flag after kind+seed
    bytes[20] = 1;            // claim rank-matched
    spew(path, bytes);
    expect_load_error(path, ServingErrorCode::kBadBundle);
    std::remove(path.c_str());
}

TEST(BundleTrustBoundary, EngineSurvivesBadBundleRegistration)
{
    // One bad registration must not disturb an engine already serving.
    Fixture f;
    ServingEngine engine;
    engine.register_endpoint(
        "good", f.model,
        std::make_shared<ReplayPolicy>(f.collection, 5));

    const std::string path = temp_path("engine_bad.shb");
    spew(path, "garbage");
    EXPECT_THROW(engine.register_endpoint_from_bundle("bad", path),
                 ServingError);
    EXPECT_FALSE(engine.has_endpoint("bad"));

    const Tensor act = Tensor::normal(f.per_sample(), f.rng);
    EXPECT_EQ(engine.infer("good", act).size(), 10);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace shredder
