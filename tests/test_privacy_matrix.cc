/**
 * @file
 * The mode × shuffle measurement matrix, end to end: the
 * `PrivacyMeter` and the reconstruction attack evaluated against
 * `ShufflePolicy` and `ComposedPolicy` chains, and — the identity that
 * makes the numbers honest — `measure_policy` fed the *same policy
 * object* a `ServingEngine` endpoint executes, so the mechanism whose
 * privacy is reported is bit-for-bit the mechanism that is deployed.
 */
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/attacks/reconstruction.h"
#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/core/privacy_meter.h"
#include "src/data/digits.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/nn/sequential.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_engine.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::ComposedPolicy;
using runtime::NoisePolicy;
using runtime::ReplayPolicy;
using runtime::SamplePolicy;
using runtime::ServingEngine;
using runtime::ShufflePolicy;

constexpr std::uint64_t kPolicySeed = 0x5EEDULL;
constexpr std::uint64_t kShuffleSeed = kPolicySeed ^ 0x5AFEC0DEULL;

/** One pre-trained LeNet on digits, shared by every matrix test. */
class PrivacyMatrix : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(21);
        net_ = models::make_lenet(rng);
        data::DigitsConfig train_cfg;
        train_cfg.count = 900;
        train_cfg.seed = 601;
        train_ = std::make_unique<data::DigitsDataset>(train_cfg);
        data::DigitsConfig test_cfg;
        test_cfg.count = 320;
        test_cfg.seed = 602;
        test_ = std::make_unique<data::DigitsDataset>(test_cfg);

        models::TrainConfig cfg;
        cfg.max_epochs = 2;
        cfg.verbose = false;
        Rng train_rng(22);
        models::train_model(*net_, *train_, *test_, cfg, train_rng);
    }

    static void
    TearDownTestSuite()
    {
        net_.reset();
        train_.reset();
        test_.reset();
    }

    /** Random learned-looking collection at `model`'s cut. */
    static core::NoiseCollection
    make_collection(const split::SplitModel& model)
    {
        const Shape act = model.activation_shape(train_->image_shape());
        Rng rng(71);
        core::NoiseCollection col;
        for (int i = 0; i < 4; ++i) {
            core::NoiseSample s;
            s.noise = Tensor::laplace(Shape({act[1], act[2], act[3]}),
                                      rng, 0.0f, 2.0f);
            col.add(std::move(s));
        }
        return col;
    }

    static core::MeterConfig
    meter_config()
    {
        core::MeterConfig mc;
        mc.mi.max_dims = 64;
        mc.accuracy_samples = 192;
        mc.mi_samples = 192;
        return mc;
    }

    static std::unique_ptr<nn::Sequential> net_;
    static std::unique_ptr<data::DigitsDataset> train_;
    static std::unique_ptr<data::DigitsDataset> test_;
};

std::unique_ptr<nn::Sequential> PrivacyMatrix::net_;
std::unique_ptr<data::DigitsDataset> PrivacyMatrix::train_;
std::unique_ptr<data::DigitsDataset> PrivacyMatrix::test_;

TEST_F(PrivacyMatrix, ShuffleRowsLandInSaneRanges)
{
    // The Table-1 extension rows: shuffle alone and shuffle composed
    // with distribution sampling. Shuffling is keyed per request id,
    // so across queries each transmitted dimension carries a random
    // slice of the activation — the dimension-wise MI estimate must
    // collapse below the clean row, and the composed chain must not be
    // weaker than nothing.
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts.back());
    core::PrivacyMeter meter(sm, *test_, meter_config());

    const auto clean = meter.measure_clean();
    ASSERT_GT(clean.mi_bits, 0.0);
    ASSERT_GT(clean.accuracy, 0.8);

    const auto shuffle = std::make_shared<ShufflePolicy>(kShuffleSeed);
    const auto shuffled = meter.measure_policy(*shuffle);
    EXPECT_TRUE(std::isfinite(shuffled.mi_bits));
    EXPECT_GE(shuffled.mi_bits, 0.0);
    EXPECT_LT(shuffled.mi_bits, 0.75 * clean.mi_bits);
    EXPECT_GT(shuffled.ex_vivo, clean.ex_vivo);
    // Cloud-visible accuracy: the meter does NOT invert, so the
    // un-descrambled logits are near chance. (A trusted cloud calls
    // ShufflePolicy::invert and pays nothing — see ARCHITECTURE.md.)
    EXPECT_GE(shuffled.accuracy, 0.0);
    EXPECT_LT(shuffled.accuracy, clean.accuracy);
    EXPECT_EQ(shuffled.samples, clean.samples);

    const auto col = make_collection(sm);
    const auto dist = std::make_shared<core::NoiseDistribution>(
        core::NoiseDistribution::fit(col));
    const auto sample =
        std::make_shared<SamplePolicy>(*dist, kPolicySeed);
    const ComposedPolicy composed({sample, shuffle});
    const auto both = meter.measure_policy(composed);
    EXPECT_TRUE(std::isfinite(both.mi_bits));
    EXPECT_GE(both.mi_bits, 0.0);
    EXPECT_LT(both.mi_bits, 0.75 * clean.mi_bits);
    EXPECT_GT(both.ex_vivo, clean.ex_vivo);
}

TEST_F(PrivacyMatrix, MeterMeasuresTheVeryPolicyObjectTheEngineServes)
{
    // The identity at the heart of the measurement story: register a
    // shuffle∘sample endpoint, then hand `measure_policy` the engine's
    // own policy reference. Same object (by address), and a served
    // query is bit-exact with the meter-side transform under the same
    // request id.
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts.back());
    const auto col = make_collection(sm);
    const auto dist = std::make_shared<core::NoiseDistribution>(
        core::NoiseDistribution::fit(col));
    const auto policy = std::make_shared<ComposedPolicy>(
        std::vector<std::shared_ptr<const NoisePolicy>>{
            std::make_shared<SamplePolicy>(*dist, kPolicySeed),
            std::make_shared<ShufflePolicy>(kShuffleSeed)});

    ServingEngine engine;
    engine.register_endpoint("matrix", sm, policy);
    ASSERT_TRUE(engine.has_endpoint("matrix"));
    EXPECT_EQ(&engine.policy("matrix"),
              static_cast<const NoisePolicy*>(policy.get()));
    EXPECT_EQ(engine.policy("matrix").name(), "sample+shuffle");

    // Served wire == the transform the meter scores, per request id.
    const Shape act_shape = sm.activation_shape(test_->image_shape());
    const Shape per_sample({act_shape[1], act_shape[2], act_shape[3]});
    Rng rng(31);
    nn::ExecutionContext ctx;
    for (std::uint64_t id : {0ULL, 9ULL, 1234ULL}) {
        const Tensor act = Tensor::normal(per_sample, rng);
        const Tensor served = engine.submit("matrix", act, id).get();
        const Tensor offline =
            sm.cloud_forward(engine.policy("matrix")
                                 .apply(act, id)
                                 .reshaped(act_shape),
                             ctx)
                .reshaped(Shape({10}));
        testing::expect_tensors_near(served, offline, 0.0,
                                     "served vs measured transform");
    }

    // And the report itself is reproducible from an independently
    // constructed policy of the same spec — replica servers measure
    // identically.
    core::PrivacyMeter meter(sm, *test_, meter_config());
    const auto via_engine = meter.measure_policy(engine.policy("matrix"));
    const ComposedPolicy replica(
        {std::make_shared<SamplePolicy>(*dist, kPolicySeed),
         std::make_shared<ShufflePolicy>(kShuffleSeed)});
    const auto via_replica = meter.measure_policy(replica);
    EXPECT_EQ(via_engine.mi_bits, via_replica.mi_bits);
    EXPECT_EQ(via_engine.accuracy, via_replica.accuracy);
    EXPECT_EQ(via_engine.in_vivo, via_replica.in_vivo);
}

TEST_F(PrivacyMatrix, ShufflingDegradesReconstructionSsim)
{
    // Attack column of the matrix: a decoder trained against the
    // shuffled wire must reconstruct structurally worse than one
    // trained against the clean wire — SSIM is the scrambling-
    // sensitive metric (MSE alone can miss a permutation).
    const auto cuts = split::conv_cut_points(*net_);
    split::SplitModel sm(*net_, cuts[0]);  // shallow cut: most signal

    attacks::AttackConfig cfg;
    cfg.iterations = 200;
    cfg.eval_samples = 64;
    cfg.verbose = false;

    const auto clean = attacks::run_reconstruction_attack(
        sm, *train_, *test_, nullptr, cfg);
    ASSERT_GT(clean.eval_ssim, 0.25);

    const ShufflePolicy shuffle(kShuffleSeed);
    const auto scrambled = attacks::run_reconstruction_attack(
        sm, *train_, *test_, &shuffle, cfg);
    EXPECT_TRUE(std::isfinite(scrambled.eval_ssim));
    EXPECT_LT(scrambled.eval_ssim, clean.eval_ssim);
    EXPECT_GT(scrambled.eval_mse, clean.eval_mse);
}

}  // namespace
}  // namespace shredder
