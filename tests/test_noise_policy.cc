/**
 * @file
 * Tests for the noise-policy abstraction. The generic guarantees —
 * purity in the request id, apply_into ≡ apply, shape preservation,
 * concurrent determinism, offline-recipe reproducibility — are pinned
 * by the shared conformance suite (tests/policy_contract.h),
 * instantiated here for the core policies (none/replay/sample/fixed
 * plus the wire-codec QuantizePolicy). What remains below is
 * the mechanism-specific behavior the suite cannot know: the seeding
 * compatibility contract, constructor conveniences, and misuse death
 * tests. (The shuffle/composed instantiations live in
 * tests/test_shuffle_policy.cc.)
 */
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/core/privacy_meter.h"
#include "src/runtime/inference_server.h"
#include "src/runtime/noise_policy.h"
#include "src/tensor/ops.h"
#include "src/tensor/quantize.h"
#include "tests/policy_contract.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::FixedNoisePolicy;
using runtime::NoNoisePolicy;
using runtime::ReplayPolicy;
using runtime::SamplePolicy;
using runtime::noise_seed;
using testing::PolicyContract;

constexpr std::uint64_t kSeed = 0xBADF00DULL;

Shape
noise_shape()
{
    return Shape({4, 5, 5});
}

core::NoiseCollection
make_collection(int n, std::uint64_t seed = 99)
{
    Rng rng(seed);
    core::NoiseCollection c;
    for (int i = 0; i < n; ++i) {
        core::NoiseSample s;
        s.noise = Tensor::normal(noise_shape(), rng);
        c.add(std::move(s));
    }
    return c;
}

// ---------------------------------------------------------------------
// Conformance: the four core policies under the shared contract suite.
// Factories own their backing artifacts via shared_ptr captures, since
// a ReplayPolicy borrows its collection.
// ---------------------------------------------------------------------

std::vector<testing::PolicyContractCase>
core_policy_cases()
{
    std::vector<testing::PolicyContractCase> cases;
    {
        testing::PolicyContractCase c;
        c.label = "none";
        c.activation_shape = noise_shape();
        c.make = [] { return std::make_shared<NoNoisePolicy>(); };
        c.id_sensitive = false;
        c.offline_recipe = [](const Tensor& a, std::uint64_t) {
            return a;  // the identity IS the recipe
        };
        cases.push_back(std::move(c));
    }
    {
        const auto coll = std::make_shared<core::NoiseCollection>(
            make_collection(4));
        testing::PolicyContractCase c;
        c.label = "replay";
        c.activation_shape = noise_shape();
        c.make = [coll] {
            return std::make_shared<ReplayPolicy>(*coll, kSeed);
        };
        // The documented offline replay: draw under Rng(noise_seed).
        c.offline_recipe = [coll](const Tensor& a, std::uint64_t id) {
            Rng draw_rng(noise_seed(kSeed, id));
            return ops::add(a, coll->draw(draw_rng).noise);
        };
        cases.push_back(std::move(c));
    }
    {
        const auto dist = std::make_shared<core::NoiseDistribution>(
            core::NoiseDistribution::fit(make_collection(3)));
        testing::PolicyContractCase c;
        c.label = "sample";
        c.activation_shape = noise_shape();
        c.make = [dist] {
            return std::make_shared<SamplePolicy>(*dist, kSeed);
        };
        c.offline_recipe = [dist](const Tensor& a, std::uint64_t id) {
            Rng draw_rng(noise_seed(kSeed, id));
            return ops::add(a, dist->sample(draw_rng));
        };
        cases.push_back(std::move(c));
    }
    {
        Rng rng(9);
        const auto noise = std::make_shared<Tensor>(
            Tensor::normal(noise_shape(), rng));
        testing::PolicyContractCase c;
        c.label = "fixed";
        c.activation_shape = noise_shape();
        c.make = [noise] {
            return std::make_shared<FixedNoisePolicy>(*noise);
        };
        c.id_sensitive = false;
        c.offline_recipe = [noise](const Tensor& a, std::uint64_t) {
            return ops::add(a, *noise);
        };
        cases.push_back(std::move(c));
    }
    {
        testing::PolicyContractCase c;
        c.label = "quant_int8";
        c.activation_shape = noise_shape();
        c.make = [] {
            return std::make_shared<runtime::QuantizePolicy>(
                WireDtype::kI8);
        };
        c.id_sensitive = false;  // the codec ignores the request id
        c.offline_recipe = [](const Tensor& a, std::uint64_t) {
            return dequantize(quantize(a, WireDtype::kI8));
        };
        cases.push_back(std::move(c));
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(CorePolicies, PolicyContract,
                         ::testing::ValuesIn(core_policy_cases()),
                         testing::policy_contract_name);

// ---------------------------------------------------------------------
// Mechanism-specific behavior the generic suite cannot know.
// ---------------------------------------------------------------------

TEST(NoiseSeed, MatchesTheServerStaticForCompatibility)
{
    // The free function is the canonical definition; the old static
    // member must keep forwarding to it so existing replay recipes
    // (`InferenceServer::noise_seed`) never drift.
    for (std::uint64_t seed : {0ULL, 1ULL, 0xC0FFEEULL}) {
        for (std::uint64_t id : {0ULL, 7ULL, (1ULL << 63) + 5ULL}) {
            EXPECT_EQ(noise_seed(seed, id),
                      runtime::InferenceServer::noise_seed(seed, id));
        }
    }
}

TEST(NoisePolicy, NamesAndShapeContracts)
{
    const core::NoiseCollection coll = make_collection(3);
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(coll);
    Rng rng(9);
    const Tensor noise = Tensor::normal(noise_shape(), rng);

    const NoNoisePolicy none;
    EXPECT_EQ(none.name(), "none");
    EXPECT_EQ(none.noise_shape().rank(), 0);

    const ReplayPolicy replay(coll, kSeed);
    EXPECT_EQ(replay.name(), "replay");
    EXPECT_EQ(replay.noise_shape().to_string(),
              noise_shape().to_string());

    const SamplePolicy sample(dist, kSeed);
    EXPECT_EQ(sample.name(), "sample");
    EXPECT_EQ(sample.noise_shape().to_string(),
              noise_shape().to_string());

    const FixedNoisePolicy fixed(noise);
    EXPECT_EQ(fixed.name(), "fixed");
    EXPECT_EQ(fixed.noise_shape().to_string(),
              noise_shape().to_string());
}

TEST(SamplePolicy, FreshNoiseAcrossIdsAndSeeds)
{
    // The information-destruction point: distinct ids draw fresh
    // noise, and another root seed draws differently still.
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(make_collection(3));
    SamplePolicy policy(dist, kSeed);
    Rng rng(7);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    const Tensor first = policy.apply(a, 3);
    EXPECT_GT(ops::max_abs_diff(first, policy.apply(a, 4)), 1e-4);
    SamplePolicy reseeded(dist, kSeed + 1);
    EXPECT_GT(ops::max_abs_diff(first, reseeded.apply(a, 3)), 1e-4);
}

TEST(SamplePolicy, FitConvenienceConstructorMatchesExplicitFit)
{
    const core::NoiseCollection coll = make_collection(3);
    SamplePolicy from_coll(coll, core::NoiseFamily::kLaplace, kSeed);
    SamplePolicy from_dist(core::NoiseDistribution::fit(coll), kSeed);
    Rng rng(8);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    testing::expect_tensors_near(from_coll.apply(a, 11),
                                 from_dist.apply(a, 11), 0.0,
                                 "fit convenience ctor");
}

TEST(NoisePolicyDeath, ReplayPolicyRejectsEmptyCollection)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    core::NoiseCollection empty;
    EXPECT_EXIT({ ReplayPolicy policy(empty, 1); },
                ::testing::ExitedWithCode(1), "non-empty");
}

TEST(NoisePolicyDeath, SizeMismatchIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const core::NoiseCollection coll = make_collection(2);
    ReplayPolicy policy(coll, 1);
    EXPECT_EXIT({ policy.apply(Tensor::zeros(Shape({3})), 0); },
                ::testing::ExitedWithCode(1), "does not match");
}

}  // namespace
}  // namespace shredder
