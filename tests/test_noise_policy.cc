/**
 * @file
 * Tests for the noise-policy abstraction: determinism in the request
 * id, bit-exact agreement with the offline draw recipes, thread
 * safety, and the policy/meter seeding contract.
 */
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/core/privacy_meter.h"
#include "src/runtime/inference_server.h"
#include "src/runtime/noise_policy.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::FixedNoisePolicy;
using runtime::NoNoisePolicy;
using runtime::ReplayPolicy;
using runtime::SamplePolicy;
using runtime::noise_seed;

constexpr std::uint64_t kSeed = 0xBADF00DULL;

Shape
noise_shape()
{
    return Shape({4, 5, 5});
}

core::NoiseCollection
make_collection(int n, std::uint64_t seed = 99)
{
    Rng rng(seed);
    core::NoiseCollection c;
    for (int i = 0; i < n; ++i) {
        core::NoiseSample s;
        s.noise = Tensor::normal(noise_shape(), rng);
        c.add(std::move(s));
    }
    return c;
}

TEST(NoiseSeed, MatchesTheServerStaticForCompatibility)
{
    // The free function is the canonical definition; the old static
    // member must keep forwarding to it so existing replay recipes
    // (`InferenceServer::noise_seed`) never drift.
    for (std::uint64_t seed : {0ULL, 1ULL, 0xC0FFEEULL}) {
        for (std::uint64_t id : {0ULL, 7ULL, (1ULL << 63) + 5ULL}) {
            EXPECT_EQ(noise_seed(seed, id),
                      runtime::InferenceServer::noise_seed(seed, id));
        }
    }
}

TEST(NoNoisePolicy, IsTheIdentity)
{
    Rng rng(3);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    NoNoisePolicy policy;
    const Tensor out = policy.apply(a, 42);
    testing::expect_tensors_near(out, a, 0.0, "no-noise identity");
    EXPECT_EQ(policy.noise_shape().rank(), 0);
    EXPECT_EQ(policy.name(), "none");
}

TEST(ReplayPolicy, MatchesTheOfflineDrawRecipeBitExactly)
{
    const core::NoiseCollection coll = make_collection(4);
    ReplayPolicy policy(coll, kSeed);
    EXPECT_EQ(policy.name(), "replay");
    EXPECT_EQ(policy.noise_shape().to_string(),
              noise_shape().to_string());

    Rng rng(5);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    for (std::uint64_t id = 0; id < 16; ++id) {
        const Tensor got = policy.apply(a, id);
        // The documented offline replay: draw under Rng(noise_seed).
        Rng draw_rng(noise_seed(kSeed, id));
        const Tensor expected = ops::add(a, coll.draw(draw_rng).noise);
        testing::expect_tensors_near(got, expected, 0.0,
                                     "replay vs offline draw");
    }
}

TEST(ReplayPolicy, FlattenedActivationGetsTheSameNoise)
{
    // Policies add by flat index: a [C,H,W] caller and a [C·H·W]
    // caller with the same bits get the same bits back.
    const core::NoiseCollection coll = make_collection(3);
    ReplayPolicy policy(coll, kSeed);
    Rng rng(6);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    const Tensor flat = a.reshaped(Shape({a.size()}));
    const Tensor out = policy.apply(a, 9);
    const Tensor out_flat = policy.apply(flat, 9);
    EXPECT_EQ(out_flat.shape().rank(), 1);
    testing::expect_tensors_near(
        out.reshaped(Shape({a.size()})), out_flat, 0.0,
        "shape-preserving flat add");
}

TEST(SamplePolicy, DeterministicPerIdAndIndependentAcrossIds)
{
    const core::NoiseCollection coll = make_collection(3);
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(coll);
    SamplePolicy policy(dist, kSeed);
    EXPECT_EQ(policy.name(), "sample");
    EXPECT_EQ(policy.noise_shape().to_string(),
              noise_shape().to_string());

    Rng rng(7);
    const Tensor a = Tensor::normal(noise_shape(), rng);

    // Same id → bit-identical; the offline recipe reproduces it.
    const Tensor first = policy.apply(a, 3);
    const Tensor again = policy.apply(a, 3);
    testing::expect_tensors_near(first, again, 0.0, "same-id determinism");
    Rng draw_rng(noise_seed(kSeed, 3));
    const Tensor expected = ops::add(a, dist.sample(draw_rng));
    testing::expect_tensors_near(first, expected, 0.0,
                                 "sample vs offline draw");

    // Distinct ids → fresh noise (the information-destruction point).
    const Tensor other = policy.apply(a, 4);
    EXPECT_GT(ops::max_abs_diff(first, other), 1e-4);

    // A policy with another root seed draws differently.
    SamplePolicy reseeded(dist, kSeed + 1);
    EXPECT_GT(ops::max_abs_diff(first, reseeded.apply(a, 3)), 1e-4);
}

TEST(SamplePolicy, FitConvenienceConstructorMatchesExplicitFit)
{
    const core::NoiseCollection coll = make_collection(3);
    SamplePolicy from_coll(coll, core::NoiseFamily::kLaplace, kSeed);
    SamplePolicy from_dist(core::NoiseDistribution::fit(coll), kSeed);
    Rng rng(8);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    testing::expect_tensors_near(from_coll.apply(a, 11),
                                 from_dist.apply(a, 11), 0.0,
                                 "fit convenience ctor");
}

TEST(FixedNoisePolicy, IgnoresTheRequestId)
{
    Rng rng(9);
    const Tensor noise = Tensor::normal(noise_shape(), rng);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    FixedNoisePolicy policy(noise);
    EXPECT_EQ(policy.name(), "fixed");
    const Tensor expected = ops::add(a, noise);
    for (std::uint64_t id : {0ULL, 1ULL, 1234567ULL}) {
        testing::expect_tensors_near(policy.apply(a, id), expected, 0.0,
                                     "fixed noise is id-independent");
    }
}

TEST(NoisePolicy, ApplyIntoAgreesWithApply)
{
    // The server's hot path (`apply_into` on the fused row) must be
    // bit-identical to the definitional `apply`.
    const core::NoiseCollection coll = make_collection(3);
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(coll);
    Rng rng(10);
    const Tensor a = Tensor::normal(noise_shape(), rng);

    const ReplayPolicy replay(coll, kSeed);
    const SamplePolicy sample(dist, kSeed);
    const NoNoisePolicy none;
    const runtime::NoisePolicy* policies[] = {&replay, &sample, &none};
    for (const runtime::NoisePolicy* policy : policies) {
        for (std::uint64_t id : {0ULL, 5ULL, 77ULL}) {
            Tensor dst = a;  // apply_into expects the activation copy
            policy->apply_into(a, id, dst.data());
            testing::expect_tensors_near(dst, policy->apply(a, id), 0.0,
                                         "apply_into vs apply");
        }
    }
}

TEST(NoisePolicy, ConcurrentApplyIsRaceFreeAndDeterministic)
{
    // Many threads hammer ONE policy object with the same ids; every
    // result must equal the serial reference bit-exactly. (Run under
    // TSAN to catch shared-state regressions; a data race on a shared
    // RNG would also show up here as a value mismatch.)
    const core::NoiseCollection coll = make_collection(4);
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(coll);
    const ReplayPolicy replay(coll, kSeed);
    const SamplePolicy sample(dist, kSeed);

    Rng rng(11);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    constexpr int kIds = 32;
    std::vector<Tensor> replay_ref, sample_ref;
    for (int id = 0; id < kIds; ++id) {
        replay_ref.push_back(
            replay.apply(a, static_cast<std::uint64_t>(id)));
        sample_ref.push_back(
            sample.apply(a, static_cast<std::uint64_t>(id)));
    }

    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    std::vector<int> mismatches(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int id = 0; id < kIds; ++id) {
                const auto uid = static_cast<std::uint64_t>(id);
                if (ops::max_abs_diff(replay.apply(a, uid),
                                      replay_ref[static_cast<std::size_t>(
                                          id)]) != 0.0 ||
                    ops::max_abs_diff(sample.apply(a, uid),
                                      sample_ref[static_cast<std::size_t>(
                                          id)]) != 0.0) {
                    ++mismatches[static_cast<std::size_t>(t)];
                }
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0)
            << "thread " << t << " saw nondeterministic noise";
    }
}

TEST(NoisePolicyDeath, ReplayPolicyRejectsEmptyCollection)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    core::NoiseCollection empty;
    EXPECT_EXIT({ ReplayPolicy policy(empty, 1); },
                ::testing::ExitedWithCode(1), "non-empty");
}

TEST(NoisePolicyDeath, SizeMismatchIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const core::NoiseCollection coll = make_collection(2);
    ReplayPolicy policy(coll, 1);
    EXPECT_EXIT({ policy.apply(Tensor::zeros(Shape({3})), 0); },
                ::testing::ExitedWithCode(1), "does not match");
}

}  // namespace
}  // namespace shredder
