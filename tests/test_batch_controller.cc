/**
 * @file
 * Deterministic tests for the SLO-aware adaptive batch controller.
 *
 * The controller is clock-free (callers pass `now_ms`), so every
 * scenario here is a scripted arrival trace on a fake clock — no
 * sleeps, no flakiness: sparse traffic must ship immediately, bursts
 * must hold the door just long enough to fill the batch, and no
 * decision may ever exceed the configured SLO bound. The adaptive
 * path through the real `InferenceServer` is exercised at the end
 * under genuine concurrency (this file carries the `contract` label,
 * so CI reruns it under TSan).
 */
#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/models/zoo.h"
#include "src/runtime/batch_controller.h"
#include "src/runtime/inference_server.h"
#include "src/runtime/noise_policy.h"
#include "src/split/split_model.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace {

using runtime::BatchController;
using runtime::BatchControllerConfig;
using runtime::ServerStats;

BatchControllerConfig
config(double slo_ms = 5.0, double alpha = 0.2)
{
    BatchControllerConfig cfg;
    cfg.slo_ms = slo_ms;
    cfg.ewma_alpha = alpha;
    return cfg;
}

/** Feed arrivals at a constant `gap_ms`, starting at `t0`. */
double
drive(BatchController& controller, double t0, double gap_ms, int n)
{
    double t = t0;
    for (int i = 0; i < n; ++i) {
        controller.on_arrival(t);
        t += gap_ms;
    }
    return t;
}

TEST(BatchController, IdleServerStartsLatencyOptimal)
{
    // Before any traffic the inter-arrival estimate defaults to the
    // SLO itself, so the very first request never waits: predicted
    // fill time (remaining × slo) ≥ slo → ship now.
    BatchController controller(config(5.0));
    EXPECT_DOUBLE_EQ(controller.ewma_interarrival_ms(), 5.0);
    EXPECT_DOUBLE_EQ(controller.deadline_ms(1, 8), 0.0);
}

TEST(BatchController, SparseArrivalsShipImmediately)
{
    // Ten requests 10 ms apart with a 5 ms SLO: the batch cannot fill
    // within budget at this rate, so waiting buys partial fill at full
    // latency cost — the deadline must collapse to zero.
    BatchController controller(config(5.0));
    drive(controller, 0.0, 10.0, 10);
    EXPECT_GT(controller.ewma_interarrival_ms(), 5.0);
    EXPECT_DOUBLE_EQ(controller.deadline_ms(1, 8), 0.0);
    EXPECT_DOUBLE_EQ(controller.deadline_ms(7, 8), 0.0);
}

TEST(BatchController, BurstHoldsTheDoorForPredictedFillTime)
{
    // A 0.1 ms-gap burst: the EWMA converges toward 0.1 ms and the
    // deadline equals the predicted fill time for the remaining slots.
    BatchController controller(config(5.0));
    drive(controller, 0.0, 0.1, 200);
    const double ewma = controller.ewma_interarrival_ms();
    EXPECT_NEAR(ewma, 0.1, 0.05);

    const double d1 = controller.deadline_ms(1, 8);
    EXPECT_NEAR(d1, 7.0 * ewma, 1e-12);
    EXPECT_GT(d1, 0.0);
}

TEST(BatchController, DeadlineShrinksAsTheBatchFills)
{
    // Same rate, deeper queue → fewer remaining slots → shorter wait;
    // a full batch waits exactly zero. This is the "grows toward
    // max_batch under bursts" behavior seen from the deadline's side.
    BatchController controller(config(5.0));
    drive(controller, 0.0, 0.1, 200);
    double previous = controller.deadline_ms(1, 8);
    for (std::int64_t depth = 2; depth < 8; ++depth) {
        const double d = controller.deadline_ms(depth, 8);
        EXPECT_LT(d, previous) << "depth " << depth;
        previous = d;
    }
    EXPECT_DOUBLE_EQ(controller.deadline_ms(8, 8), 0.0);
    EXPECT_DOUBLE_EQ(controller.deadline_ms(9, 8), 0.0);  // over-full
}

TEST(BatchController, NeverExceedsSloBound)
{
    // Sweep rates from pathological bursts to idle trickles and every
    // queue depth: no decision may exceed the SLO — it is the hard
    // ceiling on batcher-added queueing delay.
    for (const double gap : {0.0, 0.01, 0.3, 0.7, 1.0, 4.9, 5.0, 50.0}) {
        BatchController controller(config(5.0));
        drive(controller, 0.0, gap, 50);
        for (std::int64_t depth = 0; depth <= 10; ++depth) {
            const double d = controller.deadline_ms(depth, 8);
            EXPECT_GE(d, 0.0) << "gap " << gap << " depth " << depth;
            EXPECT_LE(d, 5.0) << "gap " << gap << " depth " << depth;
        }
    }
}

TEST(BatchController, EwmaTracksRateChanges)
{
    // Sparse → burst → sparse: the estimate must follow with the
    // configured inertia, and the deadline decision must flip
    // accordingly (ship-now → hold-the-door → ship-now).
    BatchController controller(config(5.0, 0.2));
    double t = drive(controller, 0.0, 10.0, 20);
    EXPECT_DOUBLE_EQ(controller.deadline_ms(1, 8), 0.0);

    t = drive(controller, t, 0.05, 100);
    EXPECT_LT(controller.ewma_interarrival_ms(), 0.5);
    EXPECT_GT(controller.deadline_ms(1, 8), 0.0);

    drive(controller, t, 20.0, 40);
    EXPECT_GT(controller.ewma_interarrival_ms(), 5.0);
    EXPECT_DOUBLE_EQ(controller.deadline_ms(1, 8), 0.0);
}

TEST(BatchController, ZeroGapsCountAsBursts)
{
    // Monotonic clocks can return identical timestamps for
    // back-to-back submits; those zero gaps are legitimate burst
    // evidence and must pull the estimate down, not divide-by-zero.
    BatchController controller(config(5.0, 0.5));
    for (int i = 0; i < 30; ++i) {
        controller.on_arrival(1.0);  // same instant, 30 times
    }
    EXPECT_LT(controller.ewma_interarrival_ms(), 1e-4);
    const double d = controller.deadline_ms(4, 8);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1e-3);
}

TEST(BatchController, AlphaOneTrustsOnlyTheLatestGap)
{
    BatchController controller(config(5.0, 1.0));
    controller.on_arrival(0.0);
    controller.on_arrival(10.0);
    EXPECT_DOUBLE_EQ(controller.ewma_interarrival_ms(), 10.0);
    controller.on_arrival(10.5);
    EXPECT_DOUBLE_EQ(controller.ewma_interarrival_ms(), 0.5);
}

TEST(BatchController, RejectsNonsenseConfig)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    BatchControllerConfig bad_slo = config();
    bad_slo.slo_ms = -1.0;
    EXPECT_DEATH(BatchController{bad_slo}, "slo_ms");

    BatchControllerConfig bad_alpha = config();
    bad_alpha.ewma_alpha = 0.0;
    EXPECT_DEATH(BatchController{bad_alpha}, "ewma_alpha");

    BatchControllerConfig big_alpha = config();
    big_alpha.ewma_alpha = 1.5;
    EXPECT_DEATH(BatchController{big_alpha}, "ewma_alpha");
}

// -- Queue-wait histogram (the stats the controller is judged by) ---------

TEST(ServerStats, QueueWaitBucketsAreMonotoneLog2)
{
    // Bucket i covers waits ≤ 2^i µs.
    EXPECT_EQ(ServerStats::queue_wait_bucket(0.0), 0);
    EXPECT_EQ(ServerStats::queue_wait_bucket(0.001), 0);   // 1 µs
    EXPECT_EQ(ServerStats::queue_wait_bucket(0.002), 1);   // 2 µs
    EXPECT_EQ(ServerStats::queue_wait_bucket(1.0), 10);    // 1024 µs
    EXPECT_EQ(ServerStats::queue_wait_bucket(1e9),
              ServerStats::kQueueWaitBuckets - 1);  // overflow bucket
    int previous = 0;
    for (double ms = 1e-3; ms < 1e5; ms *= 3.0) {
        const int bucket = ServerStats::queue_wait_bucket(ms);
        EXPECT_GE(bucket, previous);
        previous = bucket;
    }
}

TEST(ServerStats, QueueWaitPercentileReadsBucketUpperBound)
{
    ServerStats stats;
    EXPECT_DOUBLE_EQ(stats.queue_wait_percentile_ms(0.95), 0.0);  // empty

    // 90 waits in bucket 10 (≤ 1.024 ms), 10 in bucket 12 (≤ 4.096 ms).
    stats.queue_wait_hist[10] = 90;
    stats.queue_wait_hist[12] = 10;
    EXPECT_DOUBLE_EQ(stats.queue_wait_percentile_ms(0.5), 1.024);
    EXPECT_DOUBLE_EQ(stats.queue_wait_percentile_ms(0.9), 1.024);
    EXPECT_DOUBLE_EQ(stats.queue_wait_percentile_ms(0.95), 4.096);
    EXPECT_DOUBLE_EQ(stats.queue_wait_percentile_ms(1.0), 4.096);

    ServerStats other;
    other.queue_wait_hist[12] = 5;
    stats.merge_queue_wait_hist(other);
    EXPECT_EQ(stats.queue_wait_hist[12], 15);
}

// -- The adaptive path through the real server (contract: TSan-clean) -----

TEST(BatchControllerContract, AdaptiveServerServesConcurrentTraffic)
{
    // Submits from several threads while the dispatcher consults the
    // controller per batch: every future must complete, the dispatch
    // decisions must surface in stats, and no decision may exceed the
    // SLO. Run under TSan by the contract CI job.
    Rng rng(23);
    auto net = models::make_lenet(rng);
    const std::int64_t cut = split::conv_cut_points(*net).back();
    split::SplitModel model(*net, cut);
    const Shape act = model.activation_shape(Shape({1, 28, 28}));
    const Shape per_sample({act[1], act[2], act[3]});

    runtime::InferenceServerConfig cfg;
    cfg.max_batch = 4;
    cfg.adaptive_batching = true;
    cfg.controller.slo_ms = 2.0;
    cfg.num_workers = 2;
    runtime::NoNoisePolicy policy;
    runtime::InferenceServer server(model, policy, cfg);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 16;
    std::vector<std::thread> threads;
    std::atomic<int> completed{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng thread_rng(100 + static_cast<std::uint64_t>(t));
            for (int i = 0; i < kPerThread; ++i) {
                const Tensor a = Tensor::normal(per_sample, thread_rng);
                const Tensor logits = server.submit(a).get();
                if (logits.size() > 0) {
                    ++completed;
                }
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(completed.load(), kThreads * kPerThread);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, kThreads * kPerThread);
    EXPECT_GE(stats.last_deadline_ms, 0.0);
    EXPECT_LE(stats.last_deadline_ms, cfg.controller.slo_ms);
    EXPECT_GT(stats.ewma_interarrival_ms, 0.0);
    // Every batch ships either full or on a deadline/ship-now
    // decision; the two counters partition all dispatches.
    EXPECT_EQ(stats.full_dispatches + stats.deadline_dispatches,
              stats.batches);
    EXPECT_GT(stats.batches, 0);
    // The histogram saw every request.
    std::int64_t hist_total = 0;
    for (const std::int64_t count : stats.queue_wait_hist) {
        hist_total += count;
    }
    EXPECT_EQ(hist_total, kThreads * kPerThread);
    server.shutdown();
}

}  // namespace
}  // namespace shredder
