/** @file Unit tests for Shape. */
#include <gtest/gtest.h>

#include "src/tensor/shape.h"

namespace shredder {
namespace {

TEST(Shape, DefaultIsScalar)
{
    Shape s;
    EXPECT_EQ(s.rank(), 0);
    EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, RankAndDims)
{
    Shape s({2, 3, 4, 5});
    EXPECT_EQ(s.rank(), 4);
    EXPECT_EQ(s[0], 2);
    EXPECT_EQ(s[1], 3);
    EXPECT_EQ(s[2], 4);
    EXPECT_EQ(s[3], 5);
}

TEST(Shape, Numel)
{
    EXPECT_EQ(Shape({7}).numel(), 7);
    EXPECT_EQ(Shape({2, 3}).numel(), 6);
    EXPECT_EQ(Shape({2, 3, 4}).numel(), 24);
    EXPECT_EQ(Shape({32, 3, 28, 28}).numel(), 32 * 3 * 28 * 28);
}

TEST(Shape, Validity)
{
    EXPECT_TRUE(Shape({1, 2}).valid());
    EXPECT_FALSE(Shape({0, 2}).valid());
    EXPECT_FALSE(Shape({2, -1}).valid());
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
    EXPECT_EQ(Shape(), Shape());
}

TEST(Shape, ToString)
{
    EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
    EXPECT_EQ(Shape().to_string(), "[]");
}

TEST(Shape, WithDim)
{
    Shape s({2, 3, 4});
    Shape t = s.with_dim(1, 9);
    EXPECT_EQ(t, Shape({2, 9, 4}));
    EXPECT_EQ(s, Shape({2, 3, 4}));  // original untouched
}

}  // namespace
}  // namespace shredder
