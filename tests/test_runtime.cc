/** @file Unit tests for the runtime substrate (pool, logging). */
#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/logging.h"
#include "src/runtime/stopwatch.h"
#include "src/runtime/thread_pool.h"

namespace shredder {
namespace {

TEST(ThreadPool, ExecutesAllTasks)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeDefaultsToHardware)
{
    ThreadPool pool;
    EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(200);
    parallel_for(0, 200, [&](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, EmptyAndSingleRanges)
{
    int count = 0;
    parallel_for(5, 5, [&](std::int64_t) { ++count; });
    EXPECT_EQ(count, 0);
    parallel_for(5, 6, [&](std::int64_t i) {
        EXPECT_EQ(i, 5);
        ++count;
    });
    EXPECT_EQ(count, 1);
}

TEST(ParallelFor, GrainForcesSerial)
{
    // With grain >= n the loop runs inline on the calling thread.
    const auto tid = std::this_thread::get_id();
    bool all_same_thread = true;
    parallel_for(0, 10, [&](std::int64_t) {
        if (std::this_thread::get_id() != tid) {
            all_same_thread = false;
        }
    }, /*grain=*/100);
    EXPECT_TRUE(all_same_thread);
}

TEST(ParallelFor, ComputesCorrectSum)
{
    std::vector<double> parts(1000);
    parallel_for(0, 1000, [&](std::int64_t i) {
        parts[static_cast<std::size_t>(i)] = static_cast<double>(i);
    });
    const double total =
        std::accumulate(parts.begin(), parts.end(), 0.0);
    EXPECT_DOUBLE_EQ(total, 999.0 * 1000.0 / 2.0);
}

TEST(Logging, LevelFilterRoundTrip)
{
    const LogLevel prev = log_level();
    set_log_level(LogLevel::kSilent);
    EXPECT_EQ(log_level(), LogLevel::kSilent);
    inform("this must not crash while silenced");
    set_log_level(prev);
}

TEST(Stopwatch, MeasuresElapsedTime)
{
    Stopwatch sw;
    const double t0 = sw.seconds();
    EXPECT_GE(t0, 0.0);
    sw.reset();
    EXPECT_LT(sw.seconds(), 1.0);
    EXPECT_GE(sw.milliseconds(), 0.0);
}

TEST(LoggingDeath, RequireFailureExitsWithOne)
{
    // The global ThreadPool's workers are alive by the time the death
    // tests run; the default "fast" style forks with those threads'
    // locks potentially held and deadlocks the child. "threadsafe"
    // re-executes the binary instead.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        [] {
            SHREDDER_REQUIRE(false, "user error path");
        }(),
        ::testing::ExitedWithCode(1), "user error path");
}

TEST(LoggingDeath, CheckFailureAborts)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        [] {
            SHREDDER_CHECK(1 == 2, "internal bug path");
        }(),
        "check failed");
}

}  // namespace
}  // namespace shredder
