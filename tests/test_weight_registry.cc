/**
 * @file
 * Weight-registry suite: content-addressed interning of cloud weights
 * at bundle load. Same-backbone endpoints must alias ONE network (by
 * address, with `weights_dedupe_bytes` accounting), different weights
 * must never alias, the registry must survive endpoint churn, and
 * aliasing must be invisible in results (cold-start bit-exactness).
 */
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/deploy/bundle.h"
#include "src/deploy/weight_registry.h"
#include "src/models/zoo.h"
#include "src/runtime/serving_engine.h"
#include "src/split/split_model.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::ServingEngine;
using runtime::ServingError;
using runtime::ServingErrorCode;

std::string
temp_path(const std::string& name)
{
    return ::testing::TempDir() + name;
}

/** A LeNet + replay collection saved as a deployment bundle. */
struct Fixture
{
    explicit Fixture(std::uint64_t seed = 63)
        : rng(seed), net(models::make_lenet(rng)),
          cut(split::conv_cut_points(*net).back()), model(*net, cut),
          input({1, 28, 28}), act_shape(model.activation_shape(input))
    {
        for (int i = 0; i < 3; ++i) {
            core::NoiseSample s;
            s.noise = Tensor::laplace(per_sample(), rng, 0.0f, 1.0f);
            collection.add(std::move(s));
        }
    }

    Shape
    per_sample() const
    {
        return Shape({act_shape[1], act_shape[2], act_shape[3]});
    }

    Tensor
    sample_activation()
    {
        return Tensor::normal(per_sample(), rng);
    }

    /** Save this fixture's artifacts as a replay bundle. */
    std::string
    save(const std::string& filename, std::uint64_t policy_seed = 17)
    {
        const core::NoiseDistribution dist =
            core::NoiseDistribution::fit(collection);
        deploy::PolicySpec spec;
        spec.kind = deploy::PolicyKind::kReplay;
        spec.seed = policy_seed;
        deploy::BundleContents contents;
        contents.network = net.get();
        contents.cut = cut;
        contents.input_shape = input;
        contents.policy = spec;
        contents.collection = &collection;
        contents.distribution = &dist;
        const std::string path = temp_path(filename);
        deploy::save_bundle(path, contents);
        return path;
    }

    Rng rng;
    std::unique_ptr<nn::Sequential> net;
    std::int64_t cut;
    split::SplitModel model;
    Shape input;
    Shape act_shape;
    core::NoiseCollection collection;
};

// ---------------------------------------------------------------------
// The registry itself (no engine)
// ---------------------------------------------------------------------

TEST(WeightRegistry, InternAliasesIdenticalContentOnly)
{
    // Two networks built from the same seed have bit-identical
    // weights but distinct storage; a third from another seed differs.
    Rng rng_a(5);
    Rng rng_b(5);
    Rng rng_c(6);
    std::shared_ptr<nn::Sequential> a = models::make_lenet(rng_a);
    std::shared_ptr<nn::Sequential> b = models::make_lenet(rng_b);
    std::shared_ptr<nn::Sequential> c = models::make_lenet(rng_c);
    ASSERT_NE(a.get(), b.get());
    const std::int64_t param_bytes =
        a->num_parameters() *
        static_cast<std::int64_t>(sizeof(float));

    deploy::WeightRegistry registry;
    const auto canon_a = registry.intern(a);
    EXPECT_EQ(canon_a.get(), a.get()) << "first sight is canonical";
    EXPECT_EQ(registry.stats().unique_weight_sets, 1);
    EXPECT_EQ(registry.stats().weights_dedupe_bytes, 0);

    const auto canon_b = registry.intern(b);
    EXPECT_EQ(canon_b.get(), a.get()) << "identical content aliases";
    EXPECT_EQ(registry.stats().interned_networks, 2);
    EXPECT_EQ(registry.stats().unique_weight_sets, 1);
    EXPECT_EQ(registry.stats().weights_dedupe_bytes, param_bytes);

    const auto canon_c = registry.intern(c);
    EXPECT_NE(canon_c.get(), a.get()) << "different weights split";
    EXPECT_EQ(registry.stats().unique_weight_sets, 2);
    EXPECT_EQ(registry.stats().weights_dedupe_bytes, param_bytes);

    // Interning the canonical itself is a no-cost alias.
    EXPECT_EQ(registry.intern(canon_a).get(), a.get());
    EXPECT_EQ(registry.stats().weights_dedupe_bytes, 2 * param_bytes);
}

// ---------------------------------------------------------------------
// Through the engine: bundle-backed endpoints
// ---------------------------------------------------------------------

TEST(WeightRegistry, SameBackboneEndpointsAliasOneNetwork)
{
    Fixture fx;
    const std::string path = fx.save("wr_same.shrb");
    ServingEngine engine;
    engine.register_endpoint_from_bundle("a", path);
    engine.register_endpoint_from_bundle("b", path);

    // Both endpoints answer from ONE canonical network object.
    const deploy::Bundle* ba = engine.bundle("a");
    const deploy::Bundle* bb = engine.bundle("b");
    ASSERT_NE(ba, nullptr);
    ASSERT_NE(bb, nullptr);
    EXPECT_EQ(&ba->network(), &bb->network())
        << "same-backbone endpoints must alias one weight set";

    const deploy::WeightRegistryStats stats =
        engine.weight_registry_stats();
    EXPECT_EQ(stats.interned_networks, 2);
    EXPECT_EQ(stats.unique_weight_sets, 1);
    EXPECT_GT(stats.weights_dedupe_bytes, 0);

    // Identical (endpoint, id) traffic gets identical answers.
    const Tensor a = fx.sample_activation();
    const Tensor via_a = engine.submit("a", a, 9).get();
    const Tensor via_b = engine.submit("b", a, 9).get();
    testing::expect_tensors_near(via_a, via_b, 0.0,
                                 "aliased endpoints, same id");
}

TEST(WeightRegistry, DifferentWeightsNeverAlias)
{
    Fixture fx_a(100);
    Fixture fx_b(200);
    const std::string path_a = fx_a.save("wr_diff_a.shrb");
    const std::string path_b = fx_b.save("wr_diff_b.shrb");
    ServingEngine engine;
    engine.register_endpoint_from_bundle("a", path_a);
    engine.register_endpoint_from_bundle("b", path_b);

    EXPECT_NE(&engine.bundle("a")->network(),
              &engine.bundle("b")->network());
    const deploy::WeightRegistryStats stats =
        engine.weight_registry_stats();
    EXPECT_EQ(stats.interned_networks, 2);
    EXPECT_EQ(stats.unique_weight_sets, 2);
    EXPECT_EQ(stats.weights_dedupe_bytes, 0);
}

TEST(WeightRegistry, SurvivesDeregistrationAndReAliases)
{
    Fixture fx;
    const std::string path = fx.save("wr_churn.shrb");
    ServingEngine engine;
    engine.register_endpoint_from_bundle("a", path);
    engine.register_endpoint_from_bundle("b", path);
    const std::int64_t deduped_once =
        engine.weight_registry_stats().weights_dedupe_bytes;
    ASSERT_GT(deduped_once, 0);
    const nn::Sequential* canonical = &engine.bundle("a")->network();

    // Dropping an aliased endpoint must not disturb its sibling.
    engine.deregister_endpoint("a");
    EXPECT_FALSE(engine.has_endpoint("a"));
    const Tensor act = fx.sample_activation();
    EXPECT_NO_THROW(engine.submit("b", act, 1).get());

    // A re-registration re-aliases against the SAME canonical set —
    // the registry outlives endpoint churn.
    engine.register_endpoint_from_bundle("a2", path);
    EXPECT_EQ(&engine.bundle("a2")->network(), canonical);
    const deploy::WeightRegistryStats stats =
        engine.weight_registry_stats();
    EXPECT_EQ(stats.interned_networks, 3);
    EXPECT_EQ(stats.unique_weight_sets, 1);
    EXPECT_GT(stats.weights_dedupe_bytes, deduped_once);

    const Tensor via_a2 = engine.submit("a2", act, 7).get();
    const Tensor via_b = engine.submit("b", act, 7).get();
    testing::expect_tensors_near(via_a2, via_b, 0.0,
                                 "re-registered alias, same id");
}

TEST(WeightRegistry, AliasingIsInvisibleInResults)
{
    // Cold-start determinism: an engine whose endpoint aliases a
    // shared weight set answers bit-exactly like a fresh engine with
    // no aliasing at all, and both match the in-process model.
    Fixture fx;
    const std::string path = fx.save("wr_exact.shrb");

    std::vector<Tensor> acts;
    for (int i = 0; i < 6; ++i) {
        acts.push_back(fx.sample_activation());
    }

    const auto serve = [&](bool aliased) {
        ServingEngine engine;
        engine.register_endpoint_from_bundle("ep", path);
        if (aliased) {
            engine.register_endpoint_from_bundle("twin", path);
            EXPECT_GT(
                engine.weight_registry_stats().weights_dedupe_bytes, 0);
        }
        std::vector<Tensor> out;
        for (std::size_t i = 0; i < acts.size(); ++i) {
            out.push_back(
                engine.submit("ep", acts[i],
                              static_cast<std::uint64_t>(i)).get());
        }
        return out;
    };

    const std::vector<Tensor> plain = serve(false);
    const std::vector<Tensor> aliased = serve(true);
    ASSERT_EQ(plain.size(), aliased.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        testing::expect_tensors_near(
            aliased[i], plain[i], 0.0,
            ("aliased vs plain request " + std::to_string(i)).c_str());
    }
}

}  // namespace
}  // namespace shredder
