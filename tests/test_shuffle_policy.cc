/**
 * @file
 * Tests for the shuffling mechanism and policy composition:
 * `ShufflePolicy` (plain per-request permutation and the rank-matched
 * argsort variant) and `ComposedPolicy` (ordered policy chains). The
 * generic guarantees run through the shared conformance suite
 * (tests/policy_contract.h) — instantiated here for shuffle (both
 * variants) and two composed chains — and the mechanism-specific laws
 * (exact invertibility, multiset preservation, rank matching,
 * composition order, shape pinning, misuse deaths) are pinned below.
 */
#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/runtime/noise_policy.h"
#include "src/tensor/ops.h"
#include "tests/policy_contract.h"
#include "tests/test_util.h"

namespace shredder {
namespace {

using runtime::ComposedPolicy;
using runtime::NoisePolicy;
using runtime::ReplayPolicy;
using runtime::SamplePolicy;
using runtime::ShufflePolicy;
using runtime::noise_seed;
using testing::PolicyContract;

Shape
noise_shape()
{
    return Shape({4, 5, 5});
}

core::NoiseCollection
make_collection(int n, std::uint64_t seed = 99)
{
    Rng rng(seed);
    core::NoiseCollection c;
    for (int i = 0; i < n; ++i) {
        core::NoiseSample s;
        s.noise = Tensor::normal(noise_shape(), rng);
        c.add(std::move(s));
    }
    return c;
}

/** The documented stable argsort (value order, index tie-break). */
std::vector<std::int64_t>
argsort(const float* data, std::int64_t n)
{
    std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [data](std::int64_t a, std::int64_t b) {
                  return data[a] != data[b] ? data[a] < data[b] : a < b;
              });
    return idx;
}

/** Offline recipe of the plain shuffle: out[j] = a[perm_id[j]]. */
Tensor
offline_shuffle(const Tensor& a, std::uint64_t seed, std::uint64_t id)
{
    Rng draw_rng(noise_seed(seed, id));
    const std::vector<std::int64_t> perm =
        draw_rng.permutation(a.size());
    Tensor out = a;
    for (std::int64_t j = 0; j < a.size(); ++j) {
        out.data()[j] = a.data()[perm[static_cast<std::size_t>(j)]];
    }
    return out;
}

/**
 * Offline recipe of the rank-matched variant: fresh draw, k-th
 * smallest draw added at the position of the k-th smallest element.
 */
Tensor
offline_rank_shuffle(const Tensor& a, const core::NoiseDistribution& dist,
                     std::uint64_t seed, std::uint64_t id)
{
    Rng draw_rng(noise_seed(seed, id));
    const Tensor noise = dist.sample(draw_rng);
    const std::vector<std::int64_t> act_rank = argsort(a.data(), a.size());
    const std::vector<std::int64_t> noise_rank =
        argsort(noise.data(), noise.size());
    Tensor out = a;
    for (std::int64_t k = 0; k < a.size(); ++k) {
        out.data()[act_rank[static_cast<std::size_t>(k)]] +=
            noise.data()[noise_rank[static_cast<std::size_t>(k)]];
    }
    return out;
}

// ---------------------------------------------------------------------
// Conformance: shuffle (both variants) and two composed chains.
// ---------------------------------------------------------------------

constexpr std::uint64_t kSeedA = 0xA11CE;   // additive stage seed
constexpr std::uint64_t kSeedB = 0xB0BB1E;  // shuffle stage seed

std::vector<testing::PolicyContractCase>
shuffle_policy_cases()
{
    std::vector<testing::PolicyContractCase> cases;
    {
        testing::PolicyContractCase c;
        c.label = "shuffle";
        c.activation_shape = noise_shape();
        c.make = [] { return std::make_shared<ShufflePolicy>(kSeedB); };
        c.offline_recipe = [](const Tensor& a, std::uint64_t id) {
            return offline_shuffle(a, kSeedB, id);
        };
        cases.push_back(std::move(c));
    }
    {
        const auto dist = std::make_shared<core::NoiseDistribution>(
            core::NoiseDistribution::fit(make_collection(3)));
        testing::PolicyContractCase c;
        c.label = "shuffle_rank";
        c.activation_shape = noise_shape();
        c.make = [dist] {
            return std::make_shared<ShufflePolicy>(*dist, kSeedB);
        };
        c.offline_recipe = [dist](const Tensor& a, std::uint64_t id) {
            return offline_rank_shuffle(a, *dist, kSeedB, id);
        };
        cases.push_back(std::move(c));
    }
    {
        // shuffle∘sample: additive noise first, then permutation —
        // per-stage root seeds, same request id.
        const auto dist = std::make_shared<core::NoiseDistribution>(
            core::NoiseDistribution::fit(make_collection(3)));
        testing::PolicyContractCase c;
        c.label = "composed_sample_shuffle";
        c.activation_shape = noise_shape();
        c.make = [dist] {
            return std::make_shared<ComposedPolicy>(
                std::vector<std::shared_ptr<const NoisePolicy>>{
                    std::make_shared<SamplePolicy>(*dist, kSeedA),
                    std::make_shared<ShufflePolicy>(kSeedB)});
        };
        c.offline_recipe = [dist](const Tensor& a, std::uint64_t id) {
            Rng draw_rng(noise_seed(kSeedA, id));
            const Tensor noised = ops::add(a, dist->sample(draw_rng));
            return offline_shuffle(noised, kSeedB, id);
        };
        cases.push_back(std::move(c));
    }
    {
        // shuffle∘replay on a shared collection.
        const auto coll = std::make_shared<core::NoiseCollection>(
            make_collection(4));
        testing::PolicyContractCase c;
        c.label = "composed_replay_shuffle";
        c.activation_shape = noise_shape();
        c.make = [coll] {
            return std::make_shared<ComposedPolicy>(
                std::vector<std::shared_ptr<const NoisePolicy>>{
                    std::make_shared<ReplayPolicy>(*coll, kSeedA),
                    std::make_shared<ShufflePolicy>(kSeedB)});
        };
        c.offline_recipe = [coll](const Tensor& a, std::uint64_t id) {
            Rng draw_rng(noise_seed(kSeedA, id));
            const Tensor noised = ops::add(a, coll->draw(draw_rng).noise);
            return offline_shuffle(noised, kSeedB, id);
        };
        cases.push_back(std::move(c));
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(ShufflePolicies, PolicyContract,
                         ::testing::ValuesIn(shuffle_policy_cases()),
                         testing::policy_contract_name);

// ---------------------------------------------------------------------
// Mechanism-specific laws.
// ---------------------------------------------------------------------

TEST(ShufflePolicy, PermutationPreservesTheValueMultiset)
{
    ShufflePolicy policy(kSeedB);
    EXPECT_EQ(policy.name(), "shuffle");
    EXPECT_FALSE(policy.rank_matched());
    EXPECT_EQ(policy.noise_shape().rank(), 0);  // any shape welcome

    Rng rng(5);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    const Tensor out = policy.apply(a, 42);
    // Positions move, values survive: the sorted multisets agree.
    std::vector<float> va(a.data(), a.data() + a.size());
    std::vector<float> vo(out.data(), out.data() + out.size());
    std::sort(va.begin(), va.end());
    std::sort(vo.begin(), vo.end());
    EXPECT_EQ(va, vo);
    // And the permutation actually moved something.
    EXPECT_GT(ops::max_abs_diff(out, a), 0.0);
}

TEST(ShufflePolicy, InvertRecoversTheExactActivation)
{
    // The trusted-cloud story: a party holding (seed, id) undoes the
    // permutation bit-exactly — even on an independent instance.
    ShufflePolicy edge(kSeedB);
    ShufflePolicy cloud(kSeedB);
    Rng rng(6);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    for (std::uint64_t id : {0ULL, 7ULL, 999999ULL}) {
        const Tensor wire = edge.apply(a, id);
        testing::expect_tensors_near(cloud.invert(wire, id), a, 0.0,
                                     "shuffle round trip");
    }
}

TEST(ShufflePolicy, RankMatchedAddsRankCorrelatedNoise)
{
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(make_collection(3));
    ShufflePolicy policy(dist, kSeedB);
    EXPECT_EQ(policy.name(), "shuffle-rank");
    EXPECT_TRUE(policy.rank_matched());
    EXPECT_EQ(policy.noise_shape().to_string(),
              noise_shape().to_string());

    // On a strictly ascending activation the argsort is the identity,
    // so the added noise must come out in ascending order too.
    Tensor ascending(noise_shape());
    for (std::int64_t j = 0; j < ascending.size(); ++j) {
        ascending.data()[j] = static_cast<float>(j) * 0.25f;
    }
    const Tensor out = policy.apply(ascending, 3);
    for (std::int64_t j = 1; j < out.size(); ++j) {
        const float prev = out.data()[j - 1] - ascending.data()[j - 1];
        const float cur = out.data()[j] - ascending.data()[j];
        ASSERT_LE(prev, cur) << "draws not rank-matched at index " << j;
    }
}

TEST(ComposedPolicy, AppliesStagesInOrderUnderTheSameId)
{
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(make_collection(3));
    const auto sample = std::make_shared<SamplePolicy>(dist, kSeedA);
    const auto shuffle = std::make_shared<ShufflePolicy>(kSeedB);
    const ComposedPolicy composed(
        std::vector<std::shared_ptr<const NoisePolicy>>{sample, shuffle});
    EXPECT_EQ(composed.name(), "sample+shuffle");
    EXPECT_EQ(composed.noise_shape().to_string(),
              noise_shape().to_string());
    EXPECT_EQ(composed.stages().size(), 2u);

    Rng rng(7);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    for (std::uint64_t id : {0ULL, 5ULL, 1234ULL}) {
        const Tensor expected =
            shuffle->apply(sample->apply(a, id), id);
        testing::expect_tensors_near(composed.apply(a, id), expected, 0.0,
                                     "composition order");
    }

    // Order matters: the reversed chain is a different mechanism.
    const ComposedPolicy reversed(
        std::vector<std::shared_ptr<const NoisePolicy>>{shuffle, sample});
    EXPECT_EQ(reversed.name(), "shuffle+sample");
    EXPECT_GT(ops::max_abs_diff(composed.apply(a, 5), reversed.apply(a, 5)),
              0.0);
}

TEST(ComposedPolicyDeath, RejectsMisuse)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            ComposedPolicy empty(
                std::vector<std::shared_ptr<const NoisePolicy>>{});
        },
        ::testing::ExitedWithCode(1), "at least one stage");
    EXPECT_EXIT(
        {
            ComposedPolicy with_null(
                std::vector<std::shared_ptr<const NoisePolicy>>{nullptr});
        },
        ::testing::ExitedWithCode(1), "null stage");
    // Stages that pin disagreeing element counts are rejected up front.
    Rng rng(8);
    const auto small = std::make_shared<runtime::FixedNoisePolicy>(
        Tensor::normal(Shape({3}), rng));
    const auto big = std::make_shared<runtime::FixedNoisePolicy>(
        Tensor::normal(Shape({5}), rng));
    EXPECT_EXIT(
        {
            ComposedPolicy mismatched(
                std::vector<std::shared_ptr<const NoisePolicy>>{small,
                                                                big});
        },
        ::testing::ExitedWithCode(1), "disagrees");
}

TEST(ShufflePolicyDeath, InvertRejectsTheRankMatchedVariant)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(make_collection(2));
    ShufflePolicy policy(dist, kSeedB);
    Rng rng(9);
    const Tensor a = Tensor::normal(noise_shape(), rng);
    EXPECT_EXIT({ policy.invert(a, 0); }, ::testing::ExitedWithCode(1),
                "no inverse");
}

}  // namespace
}  // namespace shredder
