/** @file Tests for the information-theory substrate. */
#include <cmath>

#include <gtest/gtest.h>

#include "src/info/digamma.h"
#include "src/info/dimwise.h"
#include "src/info/gaussian.h"
#include "src/info/histogram_mi.h"
#include "src/info/ksg.h"
#include "src/info/snr.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace {

using info::awgn_mi_bits;
using info::digamma;
using info::gaussian_mi_bits;

// ---------------------------------------------------------------------
// digamma
// ---------------------------------------------------------------------

TEST(Digamma, KnownValues)
{
    // ψ(1) = −γ (Euler–Mascheroni).
    EXPECT_NEAR(digamma(1.0), -0.57721566490153286, 1e-9);
    // ψ(2) = 1 − γ.
    EXPECT_NEAR(digamma(2.0), 1.0 - 0.57721566490153286, 1e-9);
    // ψ(0.5) = −γ − 2 ln 2.
    EXPECT_NEAR(digamma(0.5),
                -0.57721566490153286 - 2.0 * std::log(2.0), 1e-9);
    // Large-x asymptote: ψ(x) ≈ ln x.
    EXPECT_NEAR(digamma(1000.0), std::log(1000.0) - 0.0005, 1e-4);
}

TEST(Digamma, RecurrenceHolds)
{
    // ψ(x+1) = ψ(x) + 1/x.
    for (double x : {0.3, 1.7, 4.2}) {
        EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-9);
    }
}

// ---------------------------------------------------------------------
// Closed-form helpers
// ---------------------------------------------------------------------

TEST(Gaussian, MiBitsFacts)
{
    EXPECT_DOUBLE_EQ(gaussian_mi_bits(0.0), 0.0);
    EXPECT_GT(gaussian_mi_bits(0.9), gaussian_mi_bits(0.5));
    // ρ = √0.75 → I = −½ log2(0.25) = 1 bit.
    EXPECT_NEAR(gaussian_mi_bits(std::sqrt(0.75)), 1.0, 1e-9);
}

TEST(Gaussian, AwgnChannelCapacityShape)
{
    EXPECT_NEAR(awgn_mi_bits(1.0, 1.0), 0.5, 1e-12);
    EXPECT_NEAR(awgn_mi_bits(3.0, 1.0), 1.0, 1e-12);
    // More noise, less information.
    EXPECT_LT(awgn_mi_bits(1.0, 10.0), awgn_mi_bits(1.0, 0.1));
}

// ---------------------------------------------------------------------
// KSG estimator
// ---------------------------------------------------------------------

Tensor
column(const std::vector<float>& v)
{
    Tensor t(Shape({static_cast<std::int64_t>(v.size()), 1}));
    std::copy(v.begin(), v.end(), t.data());
    return t;
}

TEST(Ksg, IndependentVariablesNearZero)
{
    Rng rng(1);
    const int n = 600;
    std::vector<float> x(n), y(n);
    for (int i = 0; i < n; ++i) {
        x[static_cast<std::size_t>(i)] = rng.normal();
        y[static_cast<std::size_t>(i)] = rng.normal();
    }
    info::KsgMiEstimator ksg;
    EXPECT_LT(ksg.estimate(column(x), column(y)), 0.12);
}

class KsgGaussian : public ::testing::TestWithParam<double>
{};

TEST_P(KsgGaussian, MatchesClosedForm)
{
    const double rho = GetParam();
    Rng rng(static_cast<std::uint64_t>(rho * 1000) + 3);
    const int n = 900;
    std::vector<float> x(n), y(n);
    const double c = std::sqrt(1.0 - rho * rho);
    for (int i = 0; i < n; ++i) {
        const double a = rng.normal();
        const double b = rng.normal();
        x[static_cast<std::size_t>(i)] = static_cast<float>(a);
        y[static_cast<std::size_t>(i)] = static_cast<float>(rho * a + c * b);
    }
    info::KsgMiEstimator ksg;
    const double est = ksg.estimate(column(x), column(y));
    const double truth = gaussian_mi_bits(rho);
    EXPECT_NEAR(est, truth, 0.15 + 0.15 * truth) << "rho = " << rho;
}

INSTANTIATE_TEST_SUITE_P(Correlations, KsgGaussian,
                         ::testing::Values(0.3, 0.6, 0.8, 0.95));

TEST(Ksg, SymmetricInArguments)
{
    Rng rng(5);
    const int n = 400;
    std::vector<float> x(n), y(n);
    for (int i = 0; i < n; ++i) {
        const float a = rng.normal();
        x[static_cast<std::size_t>(i)] = a;
        y[static_cast<std::size_t>(i)] = 0.7f * a + 0.5f * rng.normal();
    }
    info::KsgMiEstimator ksg;
    const double ixy = ksg.estimate(column(x), column(y));
    const double iyx = ksg.estimate(column(y), column(x));
    EXPECT_NEAR(ixy, iyx, 0.05);
}

TEST(Ksg, MoreNoiseLessInformation)
{
    Rng rng(6);
    const int n = 500;
    std::vector<float> x(n), y_low(n), y_high(n);
    for (int i = 0; i < n; ++i) {
        const float a = rng.normal();
        x[static_cast<std::size_t>(i)] = a;
        y_low[static_cast<std::size_t>(i)] = a + 0.2f * rng.normal();
        y_high[static_cast<std::size_t>(i)] = a + 3.0f * rng.normal();
    }
    info::KsgMiEstimator ksg;
    EXPECT_GT(ksg.estimate(column(x), column(y_low)),
              ksg.estimate(column(x), column(y_high)) + 0.3);
}

TEST(Ksg, HandlesMultivariateMarginals)
{
    Rng rng(7);
    const int n = 400;
    Tensor x(Shape({n, 2})), y(Shape({n, 2}));
    for (int i = 0; i < n; ++i) {
        const float a = rng.normal(), b = rng.normal();
        x.at2(i, 0) = a;
        x.at2(i, 1) = b;
        y.at2(i, 0) = a + 0.3f * rng.normal();
        y.at2(i, 1) = rng.normal();  // pure noise dim
    }
    info::KsgMiEstimator ksg;
    const double mi = ksg.estimate(x, y);
    EXPECT_GT(mi, 0.5);
}

// ---------------------------------------------------------------------
// Histogram estimator
// ---------------------------------------------------------------------

TEST(HistogramMi, IdenticalVariablesSaturateAtLogBins)
{
    Rng rng(8);
    std::vector<float> x(4000);
    for (auto& v : x) {
        v = rng.normal();
    }
    info::HistogramConfig cfg;
    cfg.bins = 16;
    info::HistogramMiEstimator hist(cfg);
    const double mi = hist.estimate(x, x);
    EXPECT_NEAR(mi, 4.0, 0.15);  // log2(16)
}

TEST(HistogramMi, IndependentNearZero)
{
    Rng rng(9);
    std::vector<float> x(5000), y(5000);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = rng.normal();
        y[i] = rng.normal();
    }
    info::HistogramMiEstimator hist;
    EXPECT_LT(hist.estimate(x, y), 0.08);
}

TEST(HistogramMi, MonotoneInCorrelation)
{
    Rng rng(10);
    const std::size_t n = 4000;
    std::vector<float> x(n), y3(n), y7(n), y95(n);
    for (std::size_t i = 0; i < n; ++i) {
        const float a = rng.normal();
        x[i] = a;
        y3[i] = 0.3f * a + std::sqrt(1 - 0.09f) * rng.normal();
        y7[i] = 0.7f * a + std::sqrt(1 - 0.49f) * rng.normal();
        y95[i] = 0.95f * a + std::sqrt(1 - 0.9025f) * rng.normal();
    }
    info::HistogramMiEstimator hist;
    const double m3 = hist.estimate(x, y3);
    const double m7 = hist.estimate(x, y7);
    const double m95 = hist.estimate(x, y95);
    EXPECT_LT(m3, m7);
    EXPECT_LT(m7, m95);
}

TEST(HistogramMi, ConstantVariableHasZeroEntropyAndMi)
{
    std::vector<float> x(1000, 3.14f);
    Rng rng(11);
    std::vector<float> y(1000);
    for (auto& v : y) {
        v = rng.normal();
    }
    info::HistogramMiEstimator hist;
    EXPECT_NEAR(hist.entropy(x), 0.0, 1e-9);
    EXPECT_NEAR(hist.estimate(x, y), 0.0, 0.02);
}

TEST(HistogramMi, EntropyOfUniformIsLogBins)
{
    Rng rng(12);
    std::vector<float> x(8000);
    for (auto& v : x) {
        v = rng.uniform();
    }
    info::HistogramConfig cfg;
    cfg.bins = 8;
    info::HistogramMiEstimator hist(cfg);
    EXPECT_NEAR(hist.entropy(x), 3.0, 0.05);
}

TEST(HistogramMi, SpikyReluLikeMarginalHandled)
{
    // 70% exact zeros (post-ReLU shape): estimator must not crash and
    // must still see the dependence carried by the positive part.
    Rng rng(13);
    const std::size_t n = 4000;
    std::vector<float> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = rng.normal();
        const float pre = x[i] - 0.5f;
        y[i] = pre > 0.0f ? pre : 0.0f;
    }
    info::HistogramMiEstimator hist;
    EXPECT_GT(hist.estimate(x, y), 0.3);
}

// ---------------------------------------------------------------------
// Dimension-wise aggregate estimator
// ---------------------------------------------------------------------

TEST(DimwiseMi, ScalesWithActivationWidth)
{
    // Activation = replicated noisy copies of a projection of x: the
    // aggregate should grow roughly linearly with the width.
    Rng rng(14);
    const int n = 400;
    Tensor x(Shape({n, 8}));
    for (std::int64_t i = 0; i < x.size(); ++i) {
        x[i] = rng.normal();
    }
    const auto make_act = [&](std::int64_t width) {
        Tensor a(Shape({n, width}));
        Rng local(99);
        for (int i = 0; i < n; ++i) {
            float s = 0.0f;
            for (int d = 0; d < 8; ++d) {
                s += x.at2(i, d);
            }
            for (std::int64_t w = 0; w < width; ++w) {
                a.at2(i, w) = s + 0.3f * local.normal();
            }
        }
        return a;
    };
    info::DimwiseMiEstimator est;
    const double mi8 = est.estimate(x, make_act(8));
    const double mi32 = est.estimate(x, make_act(32));
    EXPECT_GT(mi32, 2.5 * mi8);
}

TEST(DimwiseMi, NoiseDrivesEstimateDown)
{
    Rng rng(15);
    const int n = 400;
    const std::int64_t width = 24;
    Tensor x(Shape({n, 10}));
    for (std::int64_t i = 0; i < x.size(); ++i) {
        x[i] = rng.normal();
    }
    Tensor clean(Shape({n, width}));
    for (int i = 0; i < n; ++i) {
        for (std::int64_t w = 0; w < width; ++w) {
            clean.at2(i, w) =
                x.at2(i, static_cast<std::int64_t>(w) % 10);
        }
    }
    Tensor noisy = clean;
    for (std::int64_t i = 0; i < noisy.size(); ++i) {
        noisy[i] += 4.0f * rng.normal();
    }
    info::DimwiseMiEstimator est;
    const double mi_clean = est.estimate(x, clean);
    const double mi_noisy = est.estimate(x, noisy);
    EXPECT_LT(mi_noisy, 0.5 * mi_clean);
}

TEST(DimwiseMi, IndependentActivationNearZero)
{
    Rng rng(16);
    const int n = 500;
    Tensor x(Shape({n, 6})), a(Shape({n, 20}));
    for (std::int64_t i = 0; i < x.size(); ++i) {
        x[i] = rng.normal();
    }
    for (std::int64_t i = 0; i < a.size(); ++i) {
        a[i] = rng.normal();
    }
    info::DimwiseMiEstimator est;
    // Per-dim bias is small; the aggregate stays well below 0.1·width.
    EXPECT_LT(est.estimate(x, a), 2.0);
}

TEST(DimwiseMi, SubsamplingExtrapolates)
{
    Rng rng(17);
    const int n = 300;
    Tensor x(Shape({n, 4})), a(Shape({n, 64}));
    for (std::int64_t i = 0; i < x.size(); ++i) {
        x[i] = rng.normal();
    }
    // Period 3 is coprime with the subsampling stride (4), so the
    // stride-sampled dims still cover all source dimensions.
    for (int i = 0; i < n; ++i) {
        for (std::int64_t w = 0; w < 64; ++w) {
            a.at2(i, w) = x.at2(i, w % 3) + 0.2f * rng.normal();
        }
    }
    info::DimwiseConfig full_cfg;
    info::DimwiseConfig sub_cfg;
    sub_cfg.max_dims = 16;
    const double full = info::DimwiseMiEstimator(full_cfg).estimate(x, a);
    const double sub = info::DimwiseMiEstimator(sub_cfg).estimate(x, a);
    EXPECT_NEAR(sub, full, 0.25 * full);
}

TEST(DimwiseMi, DimensionEntropyUpperBoundsEstimate)
{
    Rng rng(18);
    const int n = 300;
    Tensor x(Shape({n, 4})), a(Shape({n, 10}));
    for (std::int64_t i = 0; i < x.size(); ++i) {
        x[i] = rng.normal();
    }
    for (int i = 0; i < n; ++i) {
        for (std::int64_t w = 0; w < 10; ++w) {
            a.at2(i, w) = x.at2(i, w % 4) + 0.1f * rng.normal();
        }
    }
    info::DimwiseMiEstimator est;
    EXPECT_LE(est.estimate(x, a), est.dimension_entropy(a) + 1e-6);
}

// ---------------------------------------------------------------------
// SNR / privacy notions
// ---------------------------------------------------------------------

TEST(Snr, MatchesDefinition)
{
    Tensor a = Tensor::from_vector({2.0f, -2.0f, 2.0f, -2.0f});  // E=4
    Rng rng(19);
    Tensor n = Tensor::normal(Shape({4000}), rng, 0.0f, 2.0f);  // var≈4
    EXPECT_NEAR(info::snr(a, n), 1.0, 0.1);
    EXPECT_NEAR(info::in_vivo_privacy(a, n), 1.0, 0.1);
}

TEST(Snr, ZeroNoiseGivesInfiniteSnrZeroPrivacy)
{
    Tensor a = Tensor::from_vector({1.0f, 2.0f});
    Tensor n = Tensor::zeros(Shape({8}));
    EXPECT_TRUE(std::isinf(info::snr(a, n)));
    EXPECT_DOUBLE_EQ(info::in_vivo_privacy(a, n), 0.0);
}

TEST(Snr, ExVivoIsReciprocal)
{
    EXPECT_DOUBLE_EQ(info::ex_vivo_privacy(4.0), 0.25);
    EXPECT_TRUE(std::isinf(info::ex_vivo_privacy(0.0)));
}

TEST(Snr, BiggerNoiseMorePrivacy)
{
    Tensor a = Tensor::from_vector({3.0f, 3.0f, 3.0f, 3.0f});
    Rng rng(20);
    Tensor small = Tensor::normal(Shape({2000}), rng, 0.0f, 0.5f);
    Tensor big = Tensor::normal(Shape({2000}), rng, 0.0f, 5.0f);
    EXPECT_GT(info::in_vivo_privacy(a, big),
              info::in_vivo_privacy(a, small));
}

}  // namespace
}  // namespace shredder
