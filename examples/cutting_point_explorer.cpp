/**
 * @file
 * Cutting-point exploration CLI (the paper's §3.4 analysis as a tool).
 *
 * For every convolution cutting point of a chosen network, prints the
 * edge computation, communication bytes, their product (the paper's
 * cost figure of merit) and the ex-vivo privacy of the *clean*
 * activation at that depth, then reports which cut the cost model
 * would pick.
 *
 * Build & run:  ./build/examples/cutting_point_explorer [lenet|cifar|svhn|alexnet]
 */
#include <cstdio>
#include <string>

#include "src/shredder/shredder.h"

int
main(int argc, char** argv)
{
    using namespace shredder;
    const std::string name = argc > 1 ? argv[1] : "lenet";

    models::Benchmark bench = models::make_benchmark(name);
    split::CostModel cost_model(*bench.net, bench.input_shape);

    core::MeterConfig meter_cfg;
    meter_cfg.mi.max_dims = 96;
    meter_cfg.accuracy_samples = 128;
    meter_cfg.mi_samples = 256;

    std::printf("cutting points of '%s' (input %s)\n", name.c_str(),
                bench.input_shape.to_string().c_str());
    std::printf("%-8s %-6s %14s %12s %14s %10s %10s\n", "conv", "cut",
                "edge KMAC", "comm KB", "KMAC*MB cost", "MI bits",
                "1/MI");

    int conv_index = 0;
    for (std::int64_t cut : bench.conv_cuts) {
        const split::CutCost cost = cost_model.evaluate(cut);

        split::SplitModel model(*bench.net, cut);
        core::PrivacyMeter meter(model, *bench.test_set, meter_cfg);
        const core::PrivacyReport clean = meter.measure_clean();

        std::printf("Conv%-4d %-6lld %14.1f %12.1f %14.4f %10.2f %10.4f\n",
                    conv_index, static_cast<long long>(cut),
                    cost.edge_macs / 1e3, cost.comm_bytes / 1e3,
                    cost.kilomac_mb, clean.mi_bits, clean.ex_vivo);
        ++conv_index;
    }

    const std::int64_t best =
        cost_model.best_cut(bench.conv_cuts, /*margin=*/0.05);
    std::printf("\ncost model picks cut %lld "
                "(deepest within 5%% of the cheapest cost)\n",
                static_cast<long long>(best));
    return 0;
}
