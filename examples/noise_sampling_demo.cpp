/**
 * @file
 * Noise-distribution demo (paper §2.5).
 *
 * Trains several noise tensors from independent Laplace
 * initializations, persists the collection to disk, reloads it, fits
 * the per-element noise distribution and contrasts the three
 * deployment options:
 *
 *   fixed   — replay a single tensor on every query,
 *   replay  — draw one of the stored tensors per query (the paper),
 *   sampled — draw fresh noise from the fitted distribution per query.
 *
 * Build & run:  ./build/examples/noise_sampling_demo
 */
#include <cstdio>
#include <filesystem>

#include "src/shredder/shredder.h"

int
main()
{
    using namespace shredder;

    models::Benchmark bench = models::make_benchmark("lenet");
    split::SplitModel model(*bench.net, bench.last_conv_cut);

    // Train the collection: each run is one sample of the noise
    // distribution.
    core::NoiseCollection collection;
    for (int s = 0; s < 4; ++s) {
        core::NoiseTrainConfig cfg;
        cfg.iterations = 200;
        cfg.batch_size = 16;
        cfg.init.scale = 2.0f;
        cfg.lambda.initial_lambda = 5e-3f;
        cfg.lambda.privacy_target = 2.0;
        cfg.seed = 900 + static_cast<std::uint64_t>(s) * 101;
        core::NoiseTrainer trainer(model, *bench.train_set, cfg);
        auto result = trainer.train();
        std::printf("sample %d: 1/SNR=%.2f, last-batch accuracy=%.2f%%, "
                    "%.2f epochs\n",
                    s, result.final_in_vivo,
                    100.0 * result.final_batch_accuracy, result.epochs);
        core::NoiseSample sample;
        sample.noise = std::move(result.noise);
        sample.in_vivo_privacy = result.final_in_vivo;
        sample.train_accuracy = result.final_batch_accuracy;
        collection.add(std::move(sample));
    }

    // Persist and reload, as a deployment would.
    const std::string path = ".cache/lenet_noise_collection.bin";
    std::filesystem::create_directories(".cache");
    collection.save(path);
    const core::NoiseCollection loaded = core::NoiseCollection::load(path);
    std::printf("\ncollection saved to %s and reloaded (%lld tensors)\n",
                path.c_str(), static_cast<long long>(loaded.size()));

    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(loaded);
    std::printf("fitted Laplace distribution: mean|location|=%.3f, "
                "mean scale=%.3f, implied noise variance=%.3f\n",
                dist.location().abs_sum() / dist.location().size(),
                dist.scale().mean(), dist.mean_variance());

    // Contrast the deployment options.
    core::MeterConfig mc;
    mc.mi.max_dims = 128;
    mc.accuracy_samples = 512;
    mc.mi_samples = 384;
    core::PrivacyMeter meter(model, *bench.test_set, mc);

    const auto clean = meter.measure_clean();
    const auto fixed = meter.measure_fixed(loaded.get(0).noise);
    const auto replay = meter.measure_replay(loaded);
    const auto sampled = meter.measure_distribution(dist);

    std::printf("\n%-28s %10s %12s\n", "mode", "MI (bits)", "accuracy");
    std::printf("%-28s %10.2f %11.2f%%\n", "clean (no noise)",
                clean.mi_bits, 100.0 * clean.accuracy);
    std::printf("%-28s %10.2f %11.2f%%\n", "fixed single tensor",
                fixed.mi_bits, 100.0 * fixed.accuracy);
    std::printf("%-28s %10.2f %11.2f%%\n", "replay from collection",
                replay.mi_bits, 100.0 * replay.accuracy);
    std::printf("%-28s %10.2f %11.2f%%\n", "sampled from distribution",
                sampled.mi_bits, 100.0 * sampled.accuracy);

    std::printf("\nreplay keeps accuracy because every stored tensor was "
                "trained to convergence;\nsampling adds genuine per-query "
                "randomness (stronger privacy, lower accuracy).\n");
    return 0;
}
