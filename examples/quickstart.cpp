/**
 * @file
 * Quickstart: the whole Shredder flow in ~60 lines of API use.
 *
 *   1. get a pre-trained network + dataset pair (LeNet / digits),
 *   2. cut it at its last convolution layer,
 *   3. learn a small collection of noise tensors (weights frozen),
 *   4. measure accuracy and mutual information with and without noise,
 *   5. serve the learned mechanism: one `ServingEngine`, three
 *      endpoints (clean baseline / replay / distribution sampling) —
 *      each executing a `NoisePolicy`, the same objects the privacy
 *      meter measured.
 *
 * Build & run:  ./build/examples/quickstart
 *
 * SHREDDER_SMOKE=1 shrinks the sweep (fewer iterations/samples) so the
 * ctest entry `example_quickstart_smoke` keeps this umbrella-header
 * path compiling AND running on every test sweep.
 */
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/shredder/shredder.h"

namespace {

/** True when SHREDDER_SMOKE=1 (the ctest smoke entry sets it). */
bool
smoke_mode()
{
    const char* env = std::getenv("SHREDDER_SMOKE");
    return env != nullptr && env[0] == '1';
}

}  // namespace

int
main()
{
    using namespace shredder;
    const bool smoke = smoke_mode();

    // 1. Pre-trained model + data (trains once, then cached on disk).
    models::Benchmark bench = models::make_benchmark("lenet");
    std::printf("network '%s': %lld parameters, baseline accuracy %.2f%%\n",
                bench.name.c_str(),
                static_cast<long long>(bench.net->num_parameters()),
                100.0 * bench.baseline_accuracy);

    // 2. Cut at the last convolution layer (the paper's default).
    const std::int64_t cut = bench.last_conv_cut;
    split::SplitModel model(*bench.net, cut);
    std::printf("cut at layer %lld; activation %s goes to the cloud\n",
                static_cast<long long>(cut),
                model.activation_shape(bench.input_shape).to_string()
                    .c_str());

    // 3. + 4. The pipeline trains the noise collection and measures
    // everything Table 1 reports.
    core::PipelineConfig config;
    config.noise_samples = smoke ? 2 : 3;
    config.train.iterations = smoke ? 40 : 250;
    config.train.batch_size = 16;
    config.train.init.scale = 2.0f;             // Laplace(0, 2) init
    config.train.lambda.initial_lambda = 5e-3f; // the privacy knob λ
    config.train.lambda.privacy_target = 2.0;   // decay λ at 1/SNR = 2
    config.meter.mi.max_dims = smoke ? 32 : 128;
    if (smoke) {
        config.meter.accuracy_samples = 128;
        config.meter.mi_samples = 96;
    }

    const core::PipelineResult result = core::run_pipeline(
        bench.name, *bench.net, *bench.train_set, *bench.test_set, cut,
        config);

    std::printf("\n=== Shredder quickstart result ===\n");
    std::printf("original mutual information : %8.2f bits\n",
                result.original_mi);
    std::printf("shredded mutual information : %8.2f bits\n",
                result.shredded_mi);
    std::printf("mutual information loss     : %8.2f %%\n",
                result.mi_loss_pct);
    std::printf("baseline accuracy           : %8.2f %%\n",
                100.0 * result.baseline_accuracy);
    std::printf("shredded accuracy           : %8.2f %%\n",
                100.0 * result.noisy_accuracy);
    std::printf("accuracy loss               : %8.2f %%\n",
                result.accuracy_loss_pct);
    std::printf("noise params / model params : %8.2f %%\n",
                result.params_ratio_pct);
    std::printf("noise training epochs       : %8.2f\n", result.epochs);

    // 5. Deployment: one engine, one model, three noise mechanisms.
    // The policies are the same abstraction the pipeline's meter just
    // measured — what was reported above is what gets served here.
    runtime::ServingEngine engine;
    const std::uint64_t seed = config.meter.seed;
    engine.register_endpoint("clean", model,
                             std::make_shared<runtime::NoNoisePolicy>());
    engine.register_endpoint(
        "replay", model,
        std::make_shared<runtime::ReplayPolicy>(result.collection, seed));
    engine.register_endpoint(
        "sample", model,
        std::make_shared<runtime::SamplePolicy>(
            result.collection, config.meter.family, seed));

    const std::int64_t queries = smoke ? 32 : 128;
    const Shape act = model.activation_shape(bench.input_shape);
    const Shape per_sample({act[1], act[2], act[3]});
    nn::ExecutionContext edge_ctx;
    std::printf("\n=== served through ServingEngine (%lld queries) ===\n",
                static_cast<long long>(queries));
    for (const std::string& endpoint : engine.endpoint_names()) {
        std::int64_t correct = 0;
        for (std::int64_t q = 0; q < queries; ++q) {
            const data::Sample s = bench.test_set->get(q);
            const Tensor x = s.image.reshaped(
                Shape({1, s.image.shape()[0], s.image.shape()[1],
                       s.image.shape()[2]}));
            // The edge half runs locally; the engine serves the cloud
            // half under the endpoint's policy, keyed by request id.
            const Tensor activation =
                model.edge_forward(x, edge_ctx, nn::Mode::kEval);
            const Tensor logits =
                engine.submit(endpoint, activation.reshaped(per_sample),
                              static_cast<std::uint64_t>(q))
                    .get();
            correct += logits.argmax() == s.label ? 1 : 0;
        }
        const runtime::ServerStats stats = engine.stats(endpoint);
        std::printf("endpoint %-7s (%-6s): accuracy %6.2f%%, "
                    "%lld requests in %lld batches\n",
                    endpoint.c_str(),
                    engine.policy(endpoint).name().c_str(),
                    100.0 * static_cast<double>(correct) /
                        static_cast<double>(queries),
                    static_cast<long long>(stats.requests),
                    static_cast<long long>(stats.batches));
    }
    return 0;
}
