/**
 * @file
 * Quickstart: the whole Shredder flow in ~40 lines of API use.
 *
 *   1. get a pre-trained network + dataset pair (LeNet / digits),
 *   2. cut it at its last convolution layer,
 *   3. learn a small collection of noise tensors (weights frozen),
 *   4. measure accuracy and mutual information with and without noise.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "src/shredder/shredder.h"

int
main()
{
    using namespace shredder;

    // 1. Pre-trained model + data (trains once, then cached on disk).
    models::Benchmark bench = models::make_benchmark("lenet");
    std::printf("network '%s': %lld parameters, baseline accuracy %.2f%%\n",
                bench.name.c_str(),
                static_cast<long long>(bench.net->num_parameters()),
                100.0 * bench.baseline_accuracy);

    // 2. Cut at the last convolution layer (the paper's default).
    const std::int64_t cut = bench.last_conv_cut;
    split::SplitModel model(*bench.net, cut);
    std::printf("cut at layer %lld; activation %s goes to the cloud\n",
                static_cast<long long>(cut),
                model.activation_shape(bench.input_shape).to_string()
                    .c_str());

    // 3. + 4. The pipeline trains the noise collection and measures
    // everything Table 1 reports.
    core::PipelineConfig config;
    config.noise_samples = 3;
    config.train.iterations = 250;
    config.train.batch_size = 16;
    config.train.init.scale = 2.0f;             // Laplace(0, 2) init
    config.train.lambda.initial_lambda = 5e-3f; // the privacy knob λ
    config.train.lambda.privacy_target = 2.0;   // decay λ at 1/SNR = 2
    config.meter.mi.max_dims = 128;

    const core::PipelineResult result = core::run_pipeline(
        bench.name, *bench.net, *bench.train_set, *bench.test_set, cut,
        config);

    std::printf("\n=== Shredder quickstart result ===\n");
    std::printf("original mutual information : %8.2f bits\n",
                result.original_mi);
    std::printf("shredded mutual information : %8.2f bits\n",
                result.shredded_mi);
    std::printf("mutual information loss     : %8.2f %%\n",
                result.mi_loss_pct);
    std::printf("baseline accuracy           : %8.2f %%\n",
                100.0 * result.baseline_accuracy);
    std::printf("shredded accuracy           : %8.2f %%\n",
                100.0 * result.noisy_accuracy);
    std::printf("accuracy loss               : %8.2f %%\n",
                result.accuracy_loss_pct);
    std::printf("noise params / model params : %8.2f %%\n",
                result.params_ratio_pct);
    std::printf("noise training epochs       : %8.2f\n", result.epochs);
    return 0;
}
