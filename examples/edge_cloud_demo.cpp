/**
 * @file
 * Edge/cloud deployment simulation.
 *
 * Plays both sides of a real Shredder deployment for a stream of
 * queries: the *edge* renders an input, runs the local network L,
 * applies the deployment's `NoisePolicy` (replay from the pre-trained
 * collection, keyed by the query id) and serializes the noisy
 * activation onto a (quantizing) channel; the *cloud* deserializes
 * and finishes the inference through a `ServingEngine` endpoint. The
 * cloud endpoint runs `NoNoisePolicy` — the noise was already added
 * on the device, which is the paper's trust model: the raw activation
 * never leaves the edge.
 *
 * The demo accounts for wire traffic, per-query latency and accuracy,
 * and contrasts raw-image offloading with Shredder's split execution.
 *
 * Build & run:  ./build/examples/edge_cloud_demo [num_queries]
 */
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/shredder/shredder.h"

namespace {

using namespace shredder;

/** Train a small noise collection for the demo. */
core::NoiseCollection
train_noise(split::SplitModel& model, const data::Dataset& train_set)
{
    core::NoiseCollection collection;
    for (int s = 0; s < 3; ++s) {
        core::NoiseTrainConfig cfg;
        cfg.iterations = 200;
        cfg.batch_size = 16;
        cfg.init.scale = 2.0f;
        cfg.lambda.initial_lambda = 5e-3f;
        cfg.lambda.privacy_target = 2.0;
        cfg.seed = 31 + static_cast<std::uint64_t>(s) * 17;
        core::NoiseTrainer trainer(model, train_set, cfg);
        auto result = trainer.train();
        core::NoiseSample sample;
        sample.noise = std::move(result.noise);
        sample.in_vivo_privacy = result.final_in_vivo;
        sample.train_accuracy = result.final_batch_accuracy;
        collection.add(std::move(sample));
    }
    return collection;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::int64_t queries = argc > 1 ? std::atoll(argv[1]) : 64;

    models::Benchmark bench = models::make_benchmark("lenet");
    split::SplitModel model(*bench.net, bench.last_conv_cut);
    std::printf("deploying '%s' cut at layer %lld\n", bench.name.c_str(),
                static_cast<long long>(bench.last_conv_cut));

    core::NoiseCollection collection =
        train_noise(model, *bench.train_set);
    std::printf("noise collection ready: %lld tensors, mean 1/SNR=%.2f\n",
                static_cast<long long>(collection.size()),
                collection.mean_in_vivo_privacy());

    // The edge's noise mechanism: replay from the collection, keyed by
    // the query id so a trace replay reproduces every draw.
    const runtime::ReplayPolicy edge_policy(collection, /*seed=*/2029);

    // The cloud: a ServingEngine endpoint finishing inference on
    // already-noised activations (latency-optimal dispatch — this
    // demo streams one query at a time).
    runtime::ServingEngine cloud;
    runtime::EndpointConfig ep;
    ep.max_batch = 1;
    ep.batch_timeout_ms = 0.0;
    cloud.register_endpoint("lenet", model,
                            std::make_shared<runtime::NoNoisePolicy>(),
                            ep);

    split::QuantizingChannel uplink;       // edge → cloud, 8-bit
    split::LoopbackChannel raw_uplink;     // baseline: raw image bytes
    // The edge device's own execution context — the cloud endpoint
    // brings its own pooled contexts; they never share forward state.
    nn::ExecutionContext edge_ctx(11);
    const Shape act = model.activation_shape(bench.input_shape);
    const Shape per_sample({act[1], act[2], act[3]});
    Stopwatch clock;
    std::int64_t correct = 0;

    for (std::int64_t q = 0; q < queries; ++q) {
        const data::Sample s = bench.test_set->get(q);

        // --- edge side -------------------------------------------------
        Tensor x = s.image.reshaped(Shape(
            {1, s.image.shape()[0], s.image.shape()[1],
             s.image.shape()[2]}));
        Tensor activation = model.edge_forward(x, edge_ctx);
        Tensor noisy = edge_policy.apply(
            activation, static_cast<std::uint64_t>(q));
        uplink.send(noisy);
        raw_uplink.send(x);  // what a cloud-only deployment would ship

        // --- cloud side ------------------------------------------------
        Tensor received = uplink.receive();
        Tensor logits = cloud.infer(
            "lenet", received.reshaped(per_sample));
        const std::int64_t pred = logits.argmax();
        correct += pred == s.label ? 1 : 0;
    }

    const double secs = clock.seconds();
    const runtime::ServerStats stats = cloud.stats("lenet");
    std::printf("\n=== %lld queries ===\n", static_cast<long long>(queries));
    std::printf("accuracy through noisy split : %6.2f %%\n",
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(queries));
    std::printf("shredder uplink traffic      : %8.1f KB (%.1f KB/query)\n",
                uplink.total_bytes() / 1e3,
                uplink.total_bytes() / 1e3 /
                    static_cast<double>(queries));
    std::printf("raw-image baseline traffic   : %8.1f KB (%.1f KB/query)\n",
                raw_uplink.total_bytes() / 1e3,
                raw_uplink.total_bytes() / 1e3 /
                    static_cast<double>(queries));
    std::printf("end-to-end latency           : %8.2f ms/query\n",
                1e3 * secs / static_cast<double>(queries));
    std::printf("cloud endpoint               : %lld requests, "
                "%.3f ms mean batch exec\n",
                static_cast<long long>(stats.requests),
                stats.mean_batch_latency_ms());

    const Shape in = bench.input_shape;
    std::printf("edge compute                 : %8.1f KMAC/query\n",
                model.edge_macs(in) / 1e3);
    std::printf("cloud compute                : %8.1f KMAC/query\n",
                model.cloud_macs(in) / 1e3);
    return 0;
}
