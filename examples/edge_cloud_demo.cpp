/**
 * @file
 * Edge/cloud deployment simulation — in two real phases.
 *
 * The paper's deployment story has two sides that never share a
 * process: an offline *trainer* learns the noise and ships an
 * artifact; an edge *device* only ever loads and applies it. This demo
 * plays both through a deployment bundle on disk:
 *
 *   edge_cloud_demo trainer <bundle>           # train → save bundle
 *   edge_cloud_demo device  <bundle> [queries] # load bundle → serve
 *   edge_cloud_demo [queries]                  # both, via a temp file
 *
 * The trainer phase pre-trains LeNet (cached), learns a noise
 * collection against the frozen split, fits the per-element
 * distribution and writes one `SHBL` bundle (replay policy spec).
 * The device phase contains **no training code path**: it cold-starts
 * from the bundle — rebuilds the network from layer tags, applies the
 * bundle's `ReplayPolicy` on the edge, serializes the noisy
 * activation over a quantizing channel, and finishes inference
 * through a `ServingEngine` endpoint running `NoNoisePolicy` (the
 * noise was added on the device; the raw activation never leaves it —
 * the paper's trust model). It accounts for wire traffic, per-query
 * latency and accuracy, and contrasts raw-image offloading with
 * Shredder's split execution.
 *
 * SHREDDER_SMOKE=1 shrinks the training sweep and query count (the
 * ctest entries `example_edge_cloud_trainer_smoke` /
 * `tool_shredder_serve_smoke` pin the train→save→cold-start loop on
 * every test sweep).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/shredder/shredder.h"

namespace {

using namespace shredder;

/** True when SHREDDER_SMOKE=1 (the ctest smoke entries set it). */
bool
smoke_mode()
{
    const char* env = std::getenv("SHREDDER_SMOKE");
    return env != nullptr && env[0] == '1';
}

/** Train a small noise collection for the demo. */
core::NoiseCollection
train_noise(split::SplitModel& model, const data::Dataset& train_set)
{
    const bool smoke = smoke_mode();
    core::NoiseCollection collection;
    const int samples = smoke ? 2 : 3;
    for (int s = 0; s < samples; ++s) {
        core::NoiseTrainConfig cfg;
        cfg.iterations = smoke ? 40 : 200;
        cfg.batch_size = 16;
        cfg.init.scale = 2.0f;
        cfg.lambda.initial_lambda = 5e-3f;
        cfg.lambda.privacy_target = 2.0;
        cfg.seed = 31 + static_cast<std::uint64_t>(s) * 17;
        core::NoiseTrainer trainer(model, train_set, cfg);
        auto result = trainer.train();
        core::NoiseSample sample;
        sample.noise = std::move(result.noise);
        sample.in_vivo_privacy = result.final_in_vivo;
        sample.train_accuracy = result.final_batch_accuracy;
        collection.add(std::move(sample));
    }
    return collection;
}

/**
 * Offline phase: learn the deployment artifact and write it to disk.
 * This is the only place in the demo that touches training.
 */
int
run_trainer(const std::string& bundle_path)
{
    models::Benchmark bench = models::make_benchmark("lenet");
    split::SplitModel model(*bench.net, bench.last_conv_cut);
    std::printf("trainer: '%s' cut at layer %lld\n", bench.name.c_str(),
                static_cast<long long>(bench.last_conv_cut));

    core::NoiseCollection collection =
        train_noise(model, *bench.train_set);
    std::printf("trainer: collection ready — %lld tensors, mean "
                "1/SNR=%.2f\n",
                static_cast<long long>(collection.size()),
                collection.mean_in_vivo_privacy());
    const core::NoiseDistribution distribution =
        core::NoiseDistribution::fit(collection);

    deploy::BundleContents contents;
    contents.network = bench.net.get();
    contents.cut = bench.last_conv_cut;
    contents.input_shape = bench.input_shape;
    contents.policy.kind = deploy::PolicyKind::kReplay;
    contents.policy.seed = 2029;  // Keyed per query id — replayable.
    contents.collection = &collection;
    contents.distribution = &distribution;
    deploy::save_bundle(bundle_path, contents);

    std::printf("trainer: wrote %s (model + collection + fitted "
                "distribution, policy=replay)\n"
                "trainer: serve it with\n"
                "  shredder_serve --endpoint lenet=%s\n",
                bundle_path.c_str(), bundle_path.c_str());
    return 0;
}

/**
 * Device phase: cold-start from the bundle and serve queries. No
 * training code, no model zoo — everything comes off the disk
 * artifact, exactly like a shipped edge device.
 */
int
run_device(const std::string& bundle_path, std::int64_t queries)
{
    deploy::Bundle bundle = [&] {
        try {
            return deploy::load_bundle(bundle_path);
        } catch (const runtime::ServingError& e) {
            std::fprintf(stderr, "device: %s\n", e.what());
            std::exit(1);
        }
    }();
    split::SplitModel model(bundle.network(), bundle.cut());
    std::printf("device: loaded %s — %lld layers, cut %lld, policy "
                "'%s'\n",
                bundle_path.c_str(),
                static_cast<long long>(bundle.network().size()),
                static_cast<long long>(bundle.cut()),
                deploy::to_string(bundle.policy_spec().kind));

    // The edge's noise mechanism comes from the bundle: replay from
    // the learned collection, keyed by the query id so a trace replay
    // reproduces every draw.
    const auto edge_policy = bundle.make_policy();

    // The test queries: the same held-out synthetic split the
    // benchmark evaluates (test seed = benchmark seed 42 × 31 + 2).
    data::DigitsConfig test_cfg;
    test_cfg.count = queries;
    test_cfg.seed = 42 * 31 + 2;
    const data::DigitsDataset test_set(test_cfg);

    // The cloud: a ServingEngine endpoint finishing inference on
    // already-noised activations (latency-optimal dispatch — this
    // demo streams one query at a time).
    runtime::ServingEngine cloud;
    runtime::EndpointConfig ep;
    ep.max_batch = 1;
    ep.batch_timeout_ms = 0.0;
    ep.sample_shape = bundle.activation_shape();
    cloud.register_endpoint("lenet", model,
                            std::make_shared<runtime::NoNoisePolicy>(),
                            ep);

    split::QuantizingChannel uplink;    // edge → cloud, 8-bit
    split::LoopbackChannel raw_uplink;  // baseline: raw image bytes
    // The edge device's own execution context — the cloud endpoint
    // brings its own pooled contexts; they never share forward state.
    nn::ExecutionContext edge_ctx(11);
    const Shape per_sample = bundle.activation_shape();
    Stopwatch clock;
    std::int64_t correct = 0;

    for (std::int64_t q = 0; q < queries; ++q) {
        const data::Sample s = test_set.get(q);

        // --- edge side -------------------------------------------------
        Tensor x = s.image.reshaped(Shape(
            {1, s.image.shape()[0], s.image.shape()[1],
             s.image.shape()[2]}));
        Tensor activation = model.edge_forward(x, edge_ctx);
        Tensor noisy = edge_policy->apply(
            activation, static_cast<std::uint64_t>(q));
        uplink.send(noisy);
        raw_uplink.send(x);  // what a cloud-only deployment would ship

        // --- cloud side ------------------------------------------------
        Tensor received = uplink.receive();
        Tensor logits = cloud.infer(
            "lenet", received.reshaped(per_sample));
        const std::int64_t pred = logits.argmax();
        correct += pred == s.label ? 1 : 0;
    }

    const double secs = clock.seconds();
    const runtime::ServerStats stats = cloud.stats("lenet");
    std::printf("\n=== %lld queries ===\n", static_cast<long long>(queries));
    std::printf("accuracy through noisy split : %6.2f %%\n",
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(queries));
    std::printf("shredder uplink traffic      : %8.1f KB (%.1f KB/query)\n",
                uplink.total_bytes() / 1e3,
                uplink.total_bytes() / 1e3 /
                    static_cast<double>(queries));
    std::printf("raw-image baseline traffic   : %8.1f KB (%.1f KB/query)\n",
                raw_uplink.total_bytes() / 1e3,
                raw_uplink.total_bytes() / 1e3 /
                    static_cast<double>(queries));
    std::printf("end-to-end latency           : %8.2f ms/query\n",
                1e3 * secs / static_cast<double>(queries));
    std::printf("cloud endpoint               : %lld requests, "
                "%.3f ms mean batch exec\n",
                static_cast<long long>(stats.requests),
                stats.mean_batch_latency_ms());

    const Shape in = bundle.input_shape();
    std::printf("edge compute                 : %8.1f KMAC/query\n",
                model.edge_macs(in) / 1e3);
    std::printf("cloud compute                : %8.1f KMAC/query\n",
                model.cloud_macs(in) / 1e3);
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::int64_t default_queries = smoke_mode() ? 16 : 64;
    if (argc >= 2 && std::strcmp(argv[1], "trainer") == 0) {
        if (argc != 3) {
            std::fprintf(stderr, "usage: %s trainer <bundle>\n", argv[0]);
            return 2;
        }
        return run_trainer(argv[2]);
    }
    if (argc >= 2 && std::strcmp(argv[1], "device") == 0) {
        if (argc != 3 && argc != 4) {
            std::fprintf(stderr, "usage: %s device <bundle> [queries]\n",
                         argv[0]);
            return 2;
        }
        const std::int64_t queries =
            argc == 4 ? std::atoll(argv[3]) : default_queries;
        return run_device(argv[2], queries);
    }

    // No phase named: run both back to back through a real file — the
    // original demo behavior, now with the artifact round-trip in the
    // middle.
    const std::int64_t queries =
        argc > 1 ? std::atoll(argv[1]) : default_queries;
    const std::string bundle_path = "edge_cloud_demo.shb";
    const int rc = run_trainer(bundle_path);
    if (rc != 0) {
        return rc;
    }
    std::printf("\n");
    return run_device(bundle_path, queries);
}
