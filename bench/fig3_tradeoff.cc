/**
 * @file
 * Reproduces **Figure 3** — the accuracy/privacy trade-off: for each
 * benchmark network (cut at the last convolution layer), sweep the
 * privacy knob (the in-vivo target that governs how much noise
 * training tolerates, i.e. where λ decays) and print one point
 * (accuracy loss %, information loss bits) per setting, plus the
 * Zero-Leakage line (the original MI of the clean activation).
 *
 * Expected shape (paper): information loss rises steeply while
 * accuracy loss is still small (excess information is stripped first),
 * then flattens — approaching the Zero-Leakage line costs large
 * accuracy.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int
main()
{
    using namespace shredder;
    using bench::banner;

    banner("Figure 3: accuracy-privacy trade-off per network");
    std::printf("(each row is one sweep point: larger in-vivo target = "
                "more noise)\n");

    const std::vector<double> targets =
        bench::fast_mode() ? std::vector<double>{0.5, 4.0}
                           : std::vector<double>{0.5, 2.0, 8.0};
    const std::vector<std::string> networks =
        bench::fast_mode()
            ? std::vector<std::string>{"lenet"}
            : std::vector<std::string>{"lenet", "cifar", "svhn",
                                       "alexnet"};

    for (const std::string& name : networks) {
        models::BenchmarkOptions opt;
        opt.verbose = false;
        models::Benchmark b = models::make_benchmark(name, opt);
        split::SplitModel model(*b.net, b.last_conv_cut);

        core::MeterConfig mc = bench::default_meter_config(name);
        mc.accuracy_samples = 256;
        mc.mi_samples = 256;
        core::PrivacyMeter meter(model, *b.test_set, mc);
        const core::PrivacyReport clean = meter.measure_clean();

        std::printf("\n--- %s (zero-leakage line: %.2f bits; baseline "
                    "accuracy %.2f%%) ---\n",
                    name.c_str(), clean.mi_bits, 100.0 * clean.accuracy);
        std::printf("%10s %14s %16s %12s\n", "target", "accLoss(%)",
                    "infoLoss(bits)", "infoLoss(%)");

        // Two tensors per point keep the sweep tractable on 2 cores.
        const int samples_per_point = bench::fast_mode() ? 1 : 2;
        for (double target : targets) {
            core::NoiseCollection collection;
            for (int s = 0; s < samples_per_point; ++s) {
                core::NoiseTrainConfig tc =
                    bench::default_train_config(name);
                if (name != "lenet") {
                    tc.iterations = std::min(tc.iterations, 200);
                }
                tc.lambda.privacy_target = target;
                // Start near the target (relative scale ≈ √target) so
                // the iteration budget is spent recovering accuracy.
                tc.init.scale = static_cast<float>(
                    std::sqrt(std::max(0.25, target)));
                tc.seed = 5000 + static_cast<std::uint64_t>(s) * 101 +
                          static_cast<std::uint64_t>(target * 8.0);
                core::NoiseTrainer trainer(model, *b.train_set, tc);
                auto result = trainer.train();
                core::NoiseSample sample;
                sample.noise = std::move(result.noise);
                sample.in_vivo_privacy = result.final_in_vivo;
                collection.add(std::move(sample));
            }
            const core::PrivacyReport noisy =
                meter.measure_replay(collection);
            const double info_loss = clean.mi_bits - noisy.mi_bits;
            std::printf("%10.2f %14.2f %16.2f %12.2f\n", target,
                        100.0 * (clean.accuracy - noisy.accuracy),
                        info_loss, 100.0 * info_loss / clean.mi_bits);
            std::fflush(stdout);
        }
    }
    std::printf("\nExpected shape: steep initial rise of information loss"
                " at near-zero accuracy loss,\nthen a plateau; pushing"
                " toward zero leakage costs disproportionate accuracy.\n");
    return 0;
}
