/**
 * @file
 * Shared helpers for the table/figure benchmark harness.
 *
 * Every figure/table binary honors SHREDDER_BENCH_FAST=1 (smaller
 * sweeps for smoke-testing the harness) and prints paper-vs-measured
 * rows so EXPERIMENTS.md can be filled mechanically.
 */
#ifndef SHREDDER_BENCH_BENCH_UTIL_H
#define SHREDDER_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/shredder/shredder.h"

namespace shredder {
namespace bench {

/** True when SHREDDER_BENCH_FAST=1 is set (reduced sweep sizes). */
inline bool
fast_mode()
{
    const char* env = std::getenv("SHREDDER_BENCH_FAST");
    return env != nullptr && env[0] == '1';
}

/** Workload-tuned noise-training config for the paper's default cut. */
inline core::NoiseTrainConfig
default_train_config(const std::string& network)
{
    core::NoiseTrainConfig cfg;
    cfg.batch_size = 16;
    cfg.learning_rate = 5e-2f;
    // init.scale is relative to the activation RMS at the cut, so one
    // recipe transfers across networks; the initial in-vivo privacy is
    // roughly scale².
    cfg.init_scale_relative = true;
    cfg.init.scale = 3.5f;
    cfg.lambda.initial_lambda = 1e-2f;
    cfg.lambda.privacy_target = 12.0;
    cfg.iterations = 400;
    if (network == "cifar") {
        cfg.iterations = 250;
        cfg.init.scale = 2.0f;
        cfg.lambda.initial_lambda = 1e-3f;  // paper: smaller λ, bigger nets
        cfg.lambda.privacy_target = 4.0;
    } else if (network == "svhn") {
        cfg.iterations = 300;
        cfg.init.scale = 2.8f;
        cfg.lambda.initial_lambda = 1e-3f;
        cfg.lambda.privacy_target = 8.0;
    }
    if (network == "cifar") {
        cfg.init.scale = 2.8f;
        cfg.lambda.privacy_target = 8.0;
    } else if (network == "alexnet") {
        cfg.iterations = 300;
        cfg.batch_size = 12;
        cfg.init.scale = 2.4f;
        cfg.lambda.initial_lambda = 1e-4f;  // paper: −0.0001 for the biggest
        cfg.lambda.privacy_target = 6.0;
    }
    if (fast_mode()) {
        cfg.iterations = std::max(20, cfg.iterations / 10);
    }
    return cfg;
}

/** Workload-tuned measurement config. */
inline core::MeterConfig
default_meter_config(const std::string& network)
{
    core::MeterConfig cfg;
    cfg.accuracy_samples = 512;
    cfg.mi_samples = 384;
    cfg.mi.max_dims = 192;
    if (network == "alexnet") {
        cfg.accuracy_samples = 256;
        cfg.mi_samples = 256;
        cfg.mi.max_dims = 256;
    }
    if (fast_mode()) {
        cfg.accuracy_samples = 128;
        cfg.mi_samples = 128;
        cfg.mi.max_dims = 64;
    }
    return cfg;
}

/** Number of noise tensors per collection. */
inline int
default_noise_samples()
{
    return fast_mode() ? 2 : 4;
}

/** Per-network collection size (LeNet benefits from more diversity). */
inline int
default_noise_samples(const std::string& network)
{
    if (fast_mode()) {
        return 2;
    }
    return network == "lenet" ? 6 : 4;
}

/** Print a section banner. */
inline void
banner(const char* title)
{
    std::printf("\n============================================================\n");
    std::printf("%s\n", title);
    std::printf("============================================================\n");
}

}  // namespace bench
}  // namespace shredder

#endif  // SHREDDER_BENCH_BENCH_UTIL_H
