/**
 * @file
 * Shared helpers for the table/figure benchmark harness.
 *
 * Every figure/table binary honors SHREDDER_BENCH_FAST=1 (smaller
 * sweeps for smoke-testing the harness) and prints paper-vs-measured
 * rows so EXPERIMENTS.md can be filled mechanically. Binaries that
 * track the repo's perf trajectory additionally emit machine-readable
 * `BENCH_*.json` files through `JsonWriter` (see bench/micro_substrate
 * and docs/PERFORMANCE.md).
 */
#ifndef SHREDDER_BENCH_BENCH_UTIL_H
#define SHREDDER_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include "src/shredder/shredder.h"

namespace shredder {
namespace bench {

/** True when SHREDDER_BENCH_FAST=1 is set (reduced sweep sizes). */
inline bool
fast_mode()
{
    const char* env = std::getenv("SHREDDER_BENCH_FAST");
    return env != nullptr && env[0] == '1';
}

/** Workload-tuned noise-training config for the paper's default cut. */
inline core::NoiseTrainConfig
default_train_config(const std::string& network)
{
    core::NoiseTrainConfig cfg;
    cfg.batch_size = 16;
    cfg.learning_rate = 5e-2f;
    // init.scale is relative to the activation RMS at the cut, so one
    // recipe transfers across networks; the initial in-vivo privacy is
    // roughly scale².
    cfg.init_scale_relative = true;
    cfg.init.scale = 3.5f;
    cfg.lambda.initial_lambda = 1e-2f;
    cfg.lambda.privacy_target = 12.0;
    cfg.iterations = 400;
    if (network == "cifar") {
        cfg.iterations = 250;
        cfg.init.scale = 2.0f;
        cfg.lambda.initial_lambda = 1e-3f;  // paper: smaller λ, bigger nets
        cfg.lambda.privacy_target = 4.0;
    } else if (network == "svhn") {
        cfg.iterations = 300;
        cfg.init.scale = 2.8f;
        cfg.lambda.initial_lambda = 1e-3f;
        cfg.lambda.privacy_target = 8.0;
    }
    if (network == "cifar") {
        cfg.init.scale = 2.8f;
        cfg.lambda.privacy_target = 8.0;
    } else if (network == "alexnet") {
        cfg.iterations = 300;
        cfg.batch_size = 12;
        cfg.init.scale = 2.4f;
        cfg.lambda.initial_lambda = 1e-4f;  // paper: −0.0001 for the biggest
        cfg.lambda.privacy_target = 6.0;
    }
    if (fast_mode()) {
        cfg.iterations = std::max(20, cfg.iterations / 10);
    }
    return cfg;
}

/** Workload-tuned measurement config. */
inline core::MeterConfig
default_meter_config(const std::string& network)
{
    core::MeterConfig cfg;
    cfg.accuracy_samples = 512;
    cfg.mi_samples = 384;
    cfg.mi.max_dims = 192;
    if (network == "alexnet") {
        cfg.accuracy_samples = 256;
        cfg.mi_samples = 256;
        cfg.mi.max_dims = 256;
    }
    if (fast_mode()) {
        cfg.accuracy_samples = 128;
        cfg.mi_samples = 128;
        cfg.mi.max_dims = 64;
    }
    return cfg;
}

/** Number of noise tensors per collection. */
inline int
default_noise_samples()
{
    return fast_mode() ? 2 : 4;
}

/** Per-network collection size (LeNet benefits from more diversity). */
inline int
default_noise_samples(const std::string& network)
{
    if (fast_mode()) {
        return 2;
    }
    return network == "lenet" ? 6 : 4;
}

/** Print a section banner. */
inline void
banner(const char* title)
{
    std::printf("\n============================================================\n");
    std::printf("%s\n", title);
    std::printf("============================================================\n");
}

/**
 * Time `fn` and return mean seconds per call: one untimed warmup, then
 * repeated batches until `min_seconds` of measured work accumulates.
 * Deterministic sweep sizes + wall-clock stop keeps runs reproducible
 * in shape while adapting iteration counts to the host's speed.
 */
template <typename F>
double
time_loop(F&& fn, double min_seconds)
{
    using clock = std::chrono::steady_clock;
    fn();  // warmup: faults pages, warms caches and scratch arenas
    std::int64_t iters = 0;
    double elapsed = 0.0;
    std::int64_t batch = 1;
    while (elapsed < min_seconds) {
        const auto t0 = clock::now();
        for (std::int64_t i = 0; i < batch; ++i) {
            fn();
        }
        const auto t1 = clock::now();
        elapsed += std::chrono::duration<double>(t1 - t0).count();
        iters += batch;
        batch *= 2;  // grow so clock overhead stays negligible
    }
    return elapsed / static_cast<double>(iters);
}

/** Default per-measurement budget, honoring fast mode. */
inline double
measure_seconds()
{
    return fast_mode() ? 0.05 : 0.25;
}

/** Current wall time as ISO-8601 UTC (for JSON provenance fields). */
inline std::string
now_iso8601()
{
    const std::time_t t = std::time(nullptr);
    char buf[32];
    std::tm tm_utc;
    gmtime_r(&t, &tm_utc);
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

/**
 * Latency sample set with percentile extraction, for the open-loop
 * load benches. Samples accumulate in milliseconds; `percentile_ms`
 * sorts lazily (nearest-rank on the sorted copy), so record() stays
 * allocation-amortized on the hot path.
 */
class LatencyHistogram
{
  public:
    void record(double ms) { samples_.push_back(ms); sorted_ = false; }

    std::int64_t count() const
    {
        return static_cast<std::int64_t>(samples_.size());
    }

    double mean_ms() const
    {
        if (samples_.empty()) {
            return 0.0;
        }
        double sum = 0.0;
        for (const double s : samples_) {
            sum += s;
        }
        return sum / static_cast<double>(samples_.size());
    }

    double max_ms() const
    {
        return samples_.empty()
                   ? 0.0
                   : *std::max_element(samples_.begin(), samples_.end());
    }

    /** Nearest-rank percentile, p in [0, 1]. 0 when empty. */
    double percentile_ms(double p) const
    {
        if (samples_.empty()) {
            return 0.0;
        }
        sort();
        const auto n = static_cast<std::int64_t>(samples_.size());
        auto rank = static_cast<std::int64_t>(
            std::ceil(p * static_cast<double>(n)));
        rank = std::min(std::max<std::int64_t>(rank, 1), n);
        return samples_[static_cast<std::size_t>(rank - 1)];
    }

    /**
     * Log2 bucket counts (bucket i: latency ≤ 2^i ms, last bucket
     * open-ended) — the compact shape BENCH_server.json v3 stores so
     * the full distribution survives into the perf trajectory.
     */
    std::vector<std::int64_t> log2_buckets(int n_buckets) const
    {
        std::vector<std::int64_t> buckets(
            static_cast<std::size_t>(n_buckets), 0);
        for (const double s : samples_) {
            double upper = 1.0;
            int i = 0;
            while (i < n_buckets - 1 && s > upper) {
                upper *= 2.0;
                ++i;
            }
            ++buckets[static_cast<std::size_t>(i)];
        }
        return buckets;
    }

    void merge(const LatencyHistogram& other)
    {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
        sorted_ = false;
    }

  private:
    void sort() const
    {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
    }

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/**
 * Minimal streaming JSON writer for `BENCH_*.json` perf-trajectory
 * files. Caller drives the structure (begin/end object/array, key,
 * value); the writer handles commas and string escaping for the
 * restricted key/value set the benches emit.
 */
class JsonWriter
{
  public:
    void begin_object() { open('{'); }
    void end_object() { close('}'); }
    void begin_array() { open('['); }
    void end_array() { close(']'); }

    void key(const std::string& k)
    {
        comma();
        out_ += '"';
        out_ += k;
        out_ += "\": ";
        pending_key_ = true;
    }

    void value(double v)
    {
        comma();
        char buf[32];
        if (std::isfinite(v)) {
            std::snprintf(buf, sizeof(buf), "%.6g", v);
        } else {
            std::snprintf(buf, sizeof(buf), "null");
        }
        out_ += buf;
    }

    void value(std::int64_t v)
    {
        comma();
        out_ += std::to_string(v);
    }

    void value(int v) { value(static_cast<std::int64_t>(v)); }

    void value(bool v)
    {
        comma();
        out_ += v ? "true" : "false";
    }

    void value(const std::string& v)
    {
        comma();
        out_ += '"';
        for (const char ch : v) {
            if (ch == '"' || ch == '\\') {
                out_ += '\\';
            }
            out_ += ch;
        }
        out_ += '"';
    }

    void value(const char* v) { value(std::string(v)); }

    const std::string& str() const { return out_; }

    /** Write the document (plus trailing newline) to `path`. */
    bool write_file(const std::string& path) const
    {
        std::ofstream f(path);
        if (!f) {
            return false;
        }
        f << out_ << '\n';
        return static_cast<bool>(f);
    }

  private:
    void open(char ch)
    {
        comma();
        out_ += ch;
        need_comma_ = false;
    }

    void close(char ch)
    {
        out_ += ch;
        need_comma_ = true;
    }

    void comma()
    {
        if (pending_key_) {
            // A key was just emitted; this token is its value.
            pending_key_ = false;
            return;
        }
        if (need_comma_) {
            out_ += ", ";
        }
        need_comma_ = true;
    }

    std::string out_;
    bool need_comma_ = false;
    bool pending_key_ = false;
};

/**
 * Minimal recursive-descent JSON well-formedness checker: the
 * self-check mate of `JsonWriter` (tests round-trip every BENCH
 * document through it, so a comma/escaping bug in the writer fails in
 * CI instead of corrupting the perf trajectory). Accepts exactly the
 * grammar the writer emits — objects, arrays, strings with \" and
 * \\ escapes, numbers, true/false/null.
 */
class JsonValidator
{
  public:
    /** True iff `text` is one complete well-formed JSON value. */
    static bool valid(const std::string& text)
    {
        JsonValidator v(text);
        v.skip_ws();
        if (!v.value() ) {
            return false;
        }
        v.skip_ws();
        return v.pos_ == text.size();
    }

  private:
    explicit JsonValidator(const std::string& text) : text_(text) {}

    bool value()
    {
        if (pos_ >= text_.size()) {
            return false;
        }
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool object()
    {
        ++pos_;  // '{'
        skip_ws();
        if (peek('}')) {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!string()) {
                return false;
            }
            skip_ws();
            if (!peek(':')) {
                return false;
            }
            ++pos_;
            skip_ws();
            if (!value()) {
                return false;
            }
            skip_ws();
            if (peek(',')) {
                ++pos_;
                continue;
            }
            if (peek('}')) {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_;  // '['
        skip_ws();
        if (peek(']')) {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!value()) {
                return false;
            }
            skip_ws();
            if (peek(',')) {
                ++pos_;
                continue;
            }
            if (peek(']')) {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (!peek('"')) {
            return false;
        }
        ++pos_;
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (ch == '\\') {
                if (pos_ + 1 >= text_.size()) {
                    return false;
                }
                pos_ += 2;  // the writer only emits \" and \\ escapes
                continue;
            }
            if (ch == '"') {
                ++pos_;
                return true;
            }
            ++pos_;
        }
        return false;  // unterminated
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek('-')) {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            return false;
        }
        char* end = nullptr;
        const std::string token = text_.substr(start, pos_ - start);
        std::strtod(token.c_str(), &end);
        return end == token.c_str() + token.size();
    }

    bool literal(const char* word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    bool peek(char ch) const
    {
        return pos_ < text_.size() && text_[pos_] == ch;
    }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace bench
}  // namespace shredder

#endif  // SHREDDER_BENCH_BENCH_UTIL_H
