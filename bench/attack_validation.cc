/**
 * @file
 * Empirical privacy validation via the reconstruction attack
 * (extension beyond the paper's MI-based evaluation).
 *
 * An adversary with full knowledge (decoder trained on matched
 * (activation, input) pairs) inverts the transmitted tensor back to
 * the input image. Shredder is effective iff reconstruction quality
 * collapses under the learned noise while the classifier keeps
 * working. Reported per LeNet cutting point and per deployment
 * mechanism — the mode×shuffle matrix: clean, replay, shuffle, and
 * the composed replay+shuffle chain — as eval MSE, PSNR and SSIM.
 */
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/attacks/reconstruction.h"

int
main()
{
    using namespace shredder;
    bench::banner("Attack validation: input reconstruction vs Shredder");

    models::BenchmarkOptions opt;
    opt.verbose = false;
    models::Benchmark b = models::make_benchmark("lenet", opt);

    attacks::AttackConfig ac;
    ac.iterations = bench::fast_mode() ? 60 : 250;
    ac.eval_samples = 128;

    constexpr std::uint64_t kPolicySeed = 0x5EED;

    std::printf("%6s %6s %-14s | %12s %10s %8s | %10s\n", "conv", "cut",
                "mechanism", "eval MSE", "PSNR dB", "SSIM", "accLoss%");

    int conv = 0;
    for (std::int64_t cut : b.conv_cuts) {
        split::SplitModel model(*b.net, cut);

        // Learn the noise collection at this cut.
        core::NoiseCollection col;
        const int k = bench::fast_mode() ? 2 : 2;
        for (int s = 0; s < k; ++s) {
            core::NoiseTrainConfig tc = bench::default_train_config("lenet");
            tc.iterations = bench::fast_mode() ? 20 : 200;
            tc.seed = 6600 + static_cast<std::uint64_t>(conv) * 31 +
                      static_cast<std::uint64_t>(s) * 7;
            core::NoiseTrainer trainer(model, *b.train_set, tc);
            auto r = trainer.train();
            core::NoiseSample sample;
            sample.noise = std::move(r.noise);
            col.add(std::move(sample));
        }

        // The mode×shuffle matrix, served through the same policy
        // objects an engine endpoint would execute.
        const auto replay =
            std::make_shared<runtime::ReplayPolicy>(col, kPolicySeed);
        const auto shuffle = std::make_shared<runtime::ShufflePolicy>(
            kPolicySeed ^ 0x5AFEC0DEULL);
        const auto composed = std::make_shared<runtime::ComposedPolicy>(
            std::vector<std::shared_ptr<const runtime::NoisePolicy>>{
                replay, shuffle});
        struct Row
        {
            const char* label;
            const runtime::NoisePolicy* policy;
        };
        const Row rows[] = {
            {"clean", nullptr},
            {"replay", replay.get()},
            {"shuffle", shuffle.get()},
            {"replay+shuffle", composed.get()},
        };

        core::MeterConfig mc = bench::default_meter_config("lenet");
        core::PrivacyMeter meter(model, *b.test_set, mc);
        const auto clean_acc = meter.measure_clean();

        for (const Row& row : rows) {
            const auto report = attacks::run_reconstruction_attack(
                model, *b.train_set, *b.test_set, row.policy, ac);
            const double accuracy =
                row.policy == nullptr
                    ? clean_acc.accuracy
                    : meter.measure_policy(*row.policy).accuracy;
            std::printf(
                "%6d %6lld %-14s | %12.4f %10.2f %8.3f | %10.2f\n", conv,
                static_cast<long long>(cut), row.label, report.eval_mse,
                report.eval_psnr_db, report.eval_ssim,
                100.0 * (clean_acc.accuracy - accuracy));
            std::fflush(stdout);
        }
        ++conv;
    }

    std::printf("\nExpected shape: shredded and shuffled reconstructions"
                " are much worse (higher MSE,\nlower PSNR/SSIM) while the"
                " additive modes keep task accuracy within a couple of\n"
                "percent (plain shuffle trades cloud-visible accuracy for"
                " wire privacy; a trusted\ncloud holding the seed inverts"
                " it losslessly).\n");
    return 0;
}
