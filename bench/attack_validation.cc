/**
 * @file
 * Empirical privacy validation via the reconstruction attack
 * (extension beyond the paper's MI-based evaluation).
 *
 * An adversary with full knowledge (decoder trained on matched
 * (activation, input) pairs) inverts the transmitted tensor back to
 * the input image. Shredder is effective iff reconstruction quality
 * collapses under the learned noise while the classifier keeps
 * working. Reported per LeNet cutting point: eval MSE and PSNR for the
 * clean channel vs the shredded channel.
 */
#include <cstdio>

#include "bench/bench_util.h"
#include "src/attacks/reconstruction.h"

int
main()
{
    using namespace shredder;
    bench::banner("Attack validation: input reconstruction vs Shredder");

    models::BenchmarkOptions opt;
    opt.verbose = false;
    models::Benchmark b = models::make_benchmark("lenet", opt);

    attacks::AttackConfig ac;
    ac.iterations = bench::fast_mode() ? 60 : 250;
    ac.eval_samples = 128;

    std::printf("%6s %6s | %12s %10s | %12s %10s | %10s\n", "conv", "cut",
                "clean MSE", "PSNR dB", "noisy MSE", "PSNR dB",
                "accLoss%");

    int conv = 0;
    for (std::int64_t cut : b.conv_cuts) {
        split::SplitModel model(*b.net, cut);

        // Learn the noise collection at this cut.
        core::NoiseCollection col;
        const int k = bench::fast_mode() ? 2 : 2;
        for (int s = 0; s < k; ++s) {
            core::NoiseTrainConfig tc = bench::default_train_config("lenet");
            tc.iterations = bench::fast_mode() ? 20 : 200;
            tc.seed = 6600 + static_cast<std::uint64_t>(conv) * 31 +
                      static_cast<std::uint64_t>(s) * 7;
            core::NoiseTrainer trainer(model, *b.train_set, tc);
            auto r = trainer.train();
            core::NoiseSample sample;
            sample.noise = std::move(r.noise);
            col.add(std::move(sample));
        }

        const auto clean = attacks::run_reconstruction_attack(
            model, *b.train_set, *b.test_set, nullptr, ac);
        const auto noisy = attacks::run_reconstruction_attack(
            model, *b.train_set, *b.test_set, &col, ac);

        core::MeterConfig mc = bench::default_meter_config("lenet");
        core::PrivacyMeter meter(model, *b.test_set, mc);
        const auto clean_acc = meter.measure_clean();
        const auto noisy_acc = meter.measure_replay(col);

        std::printf("%6d %6lld | %12.4f %10.2f | %12.4f %10.2f | %10.2f\n",
                    conv, static_cast<long long>(cut), clean.eval_mse,
                    clean.eval_psnr_db, noisy.eval_mse,
                    noisy.eval_psnr_db,
                    100.0 * (clean_acc.accuracy - noisy_acc.accuracy));
        std::fflush(stdout);
        ++conv;
    }

    std::printf("\nExpected shape: shredded reconstructions are much worse"
                " (higher MSE, lower PSNR)\nwhile the task accuracy stays"
                " within a couple of percent.\n");
    return 0;
}
