/**
 * @file
 * Reproduces **Figure 4** — in-vivo privacy (1/SNR) and accuracy per
 * training iteration on the AlexNet workload, cut at the last
 * convolution layer. Two runs:
 *
 *   "regular"   privacy-agnostic training (λ = 0, cross-entropy only),
 *   "shredder"  Eq. 3 loss with λ decayed once the in-vivo target is
 *               reached (§3.2).
 *
 * Expected shape (paper): the regular run's privacy *decays* while its
 * accuracy climbs faster; Shredder's privacy rises then stabilizes
 * (the λ-decay kink) while accuracy recovers more slowly to a similar
 * level.
 */
#include <cstdio>

#include "bench/bench_util.h"

int
main()
{
    using namespace shredder;
    using bench::banner;

    banner("Figure 4: in-vivo privacy and accuracy vs training iteration"
           " (AlexNet)");

    models::BenchmarkOptions opt;
    opt.verbose = false;
    models::Benchmark b = models::make_benchmark("alexnet", opt);
    split::SplitModel model(*b.net, b.last_conv_cut);

    core::NoiseTrainConfig base = bench::default_train_config("alexnet");
    base.iterations = bench::fast_mode() ? 40 : 300;
    base.trace_every = bench::fast_mode() ? 4 : 10;
    base.init.scale = 2.0f;
    base.seed = 424242;

    // Privacy-agnostic (regular) run: cross-entropy only.
    core::NoiseTrainConfig regular = base;
    regular.term = core::PrivacyTerm::kNone;
    regular.lambda.initial_lambda = 0.0f;
    core::NoiseTrainer regular_trainer(model, *b.train_set, regular);
    const auto reg = regular_trainer.train();

    // Shredder run: Eq. 3 with λ decay at the in-vivo target.
    core::NoiseTrainConfig shredder = base;
    shredder.term = core::PrivacyTerm::kL1Expansion;
    shredder.lambda.initial_lambda = 1e-4f;
    shredder.lambda.privacy_target = 0.65;  // paper's Fig. 4 plateau
    shredder.lambda.decay = 0.1f;
    core::NoiseTrainer shredder_trainer(model, *b.train_set, shredder);
    const auto shr = shredder_trainer.train();

    std::printf("\n(a) in-vivo privacy (1/SNR) per iteration\n");
    std::printf("%10s %18s %18s\n", "iteration", "regular", "shredder");
    for (std::size_t i = 0;
         i < std::min(reg.trace.size(), shr.trace.size()); ++i) {
        std::printf("%10d %18.4f %18.4f\n", reg.trace[i].iteration,
                    reg.trace[i].in_vivo_privacy,
                    shr.trace[i].in_vivo_privacy);
    }

    std::printf("\n(b) batch accuracy per iteration\n");
    std::printf("%10s %18s %18s\n", "iteration", "regular", "shredder");
    for (std::size_t i = 0;
         i < std::min(reg.trace.size(), shr.trace.size()); ++i) {
        std::printf("%10d %18.4f %18.4f\n", reg.trace[i].iteration,
                    reg.trace[i].batch_accuracy,
                    shr.trace[i].batch_accuracy);
    }

    std::printf("\n(lambda trace of the shredder run — the decay kink)\n");
    std::printf("%10s %18s\n", "iteration", "lambda");
    for (const auto& tp : shr.trace) {
        std::printf("%10d %18.6f\n", tp.iteration, tp.lambda);
    }

    const double reg_delta = reg.trace.back().in_vivo_privacy -
                             reg.trace.front().in_vivo_privacy;
    const double shr_delta = shr.trace.back().in_vivo_privacy -
                             shr.trace.front().in_vivo_privacy;
    std::printf("\nin-vivo privacy drift: regular %+0.4f, shredder %+0.4f"
                "\nExpected shape: regular drifts down, shredder holds or"
                " rises then stabilizes.\n",
                reg_delta, shr_delta);
    return 0;
}
