/**
 * @file
 * Ablations of the design decisions DESIGN.md §6 calls out, all on the
 * LeNet/digits workload cut at the last convolution layer:
 *
 *  D1 — privacy term: Eq. 3 (−λΣ|n|) vs Eq. 2 (+λ/σ²) vs none;
 *  D2 — λ decay controller on vs off;
 *  D3 — deployment: fixed tensor vs replay vs distribution sampling;
 *  D4 — noise init family: Laplace vs Gaussian (matched variance);
 *  D5 — estimator sensitivity: equal-width (magnitude-sensitive, the
 *        paper-faithful measurement) vs quantile (rank-invariant).
 */
#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace shredder;

struct Workbench
{
    models::Benchmark bench;
    std::unique_ptr<split::SplitModel> model;

    explicit Workbench()
        : bench([] {
              models::BenchmarkOptions opt;
              opt.verbose = false;
              return models::make_benchmark("lenet", opt);
          }())
    {
        model = std::make_unique<split::SplitModel>(*bench.net,
                                                    bench.last_conv_cut);
    }
};

core::NoiseTrainResult
train_once(Workbench& wb, core::PrivacyTerm term, float lambda,
           double target, float init_scale, bool gaussian_init,
           std::uint64_t seed)
{
    core::NoiseTrainConfig cfg = bench::default_train_config("lenet");
    cfg.term = term;
    cfg.lambda.initial_lambda = lambda;
    cfg.lambda.privacy_target = target;
    cfg.init.scale = init_scale;
    cfg.seed = seed;
    core::NoiseTrainer trainer(*wb.model, *wb.bench.train_set, cfg);
    auto result = trainer.train();
    if (gaussian_init) {
        // Re-run is unnecessary: the init family only matters at t=0;
        // instead the caller passes a pre-built Gaussian tensor. Kept
        // simple: this flag is handled by the D4 block directly.
    }
    return result;
}

core::NoiseCollection
collect(Workbench& wb, core::PrivacyTerm term, float lambda, double target,
        int k, std::uint64_t seed_base)
{
    core::NoiseCollection col;
    for (int s = 0; s < k; ++s) {
        auto r = train_once(wb, term, lambda, target, 2.0f, false,
                            seed_base + static_cast<std::uint64_t>(s) * 71);
        core::NoiseSample smp;
        smp.noise = std::move(r.noise);
        smp.in_vivo_privacy = r.final_in_vivo;
        col.add(std::move(smp));
    }
    return col;
}

}  // namespace

int
main()
{
    using bench::banner;
    Workbench wb;
    const int k = bench::default_noise_samples();

    core::MeterConfig mc = bench::default_meter_config("lenet");
    core::PrivacyMeter meter(*wb.model, *wb.bench.test_set, mc);
    const auto clean = meter.measure_clean();
    std::printf("baseline: MI=%.2f bits, accuracy=%.2f%%\n", clean.mi_bits,
                100.0 * clean.accuracy);

    // ------------------------------------------------------------------
    banner("D1: privacy term — Eq.3 (-lambda*sum|n|) vs Eq.2 (+lambda/var)"
           " vs none");
    std::printf("%-22s %12s %12s %12s\n", "term", "1/SNR", "MIloss%",
                "accLoss%");
    struct TermCase
    {
        const char* label;
        core::PrivacyTerm term;
        float lambda;
    };
    const TermCase terms[] = {
        {"eq3 L1-expansion", core::PrivacyTerm::kL1Expansion, 5e-3f},
        {"eq2 inverse-variance", core::PrivacyTerm::kInverseVariance,
         5e-3f},
        {"none (lambda=0)", core::PrivacyTerm::kNone, 0.0f},
    };
    for (const auto& t : terms) {
        auto col = collect(wb, t.term, t.lambda, 2.0, k, 11000);
        const auto r = meter.measure_replay(col);
        std::printf("%-22s %12.3f %12.2f %12.2f\n", t.label,
                    col.mean_in_vivo_privacy(),
                    100.0 * (clean.mi_bits - r.mi_bits) / clean.mi_bits,
                    100.0 * (clean.accuracy - r.accuracy));
        std::fflush(stdout);
    }

    // ------------------------------------------------------------------
    banner("D2: lambda decay on vs off (trace endpoints)");
    {
        auto with_decay = train_once(
            wb, core::PrivacyTerm::kL1Expansion, 5e-3f, 1.0, 2.0f, false,
            12000);
        auto no_decay = train_once(
            wb, core::PrivacyTerm::kL1Expansion, 5e-3f, 0.0, 2.0f, false,
            12000);
        std::printf("with decay: final 1/SNR=%.3f, final batch acc=%.2f%%,"
                    " final lambda=%.5f\n",
                    with_decay.final_in_vivo,
                    100.0 * with_decay.final_batch_accuracy,
                    with_decay.trace.back().lambda);
        std::printf("no decay  : final 1/SNR=%.3f, final batch acc=%.2f%%,"
                    " final lambda=%.5f\n",
                    no_decay.final_in_vivo,
                    100.0 * no_decay.final_batch_accuracy,
                    no_decay.trace.back().lambda);
        std::printf("expected: without decay privacy keeps climbing and"
                    " accuracy recovery lags (paper §3.2)\n");
    }

    // ------------------------------------------------------------------
    banner("D3: deployment — fixed tensor vs replay vs distribution"
           " sampling");
    {
        auto col = collect(wb, core::PrivacyTerm::kL1Expansion, 5e-3f, 2.0,
                           std::max(3, k), 13000);
        const auto fixed = meter.measure_fixed(col.get(0).noise);
        const auto replay = meter.measure_replay(col);
        const auto sampled = meter.measure_sampling(col);
        std::printf("%-28s %12s %12s\n", "mode", "MI(bits)", "accuracy%");
        std::printf("%-28s %12.2f %12.2f\n", "fixed single tensor",
                    fixed.mi_bits, 100.0 * fixed.accuracy);
        std::printf("%-28s %12.2f %12.2f\n", "replay from collection",
                    replay.mi_bits, 100.0 * replay.accuracy);
        std::printf("%-28s %12.2f %12.2f\n", "distribution sampling",
                    sampled.mi_bits, 100.0 * sampled.accuracy);
        std::printf("expected: replay = paper deployment (accuracy holds);"
                    " sampling = strongest privacy, accuracy cost\n");
    }

    // ------------------------------------------------------------------
    banner("D4: init family — Laplace vs Gaussian (matched variance)");
    {
        // Laplace(0, b) has variance 2b²; Gaussian match: σ = b·√2.
        core::NoiseTrainConfig cfg = bench::default_train_config("lenet");
        cfg.seed = 14000;
        core::NoiseTrainer lap_tr(*wb.model, *wb.bench.train_set, cfg);
        const auto lap = lap_tr.train();

        // Gaussian-initialized run: seed the trainer with a collection
        // built from a Gaussian tensor of the same variance by
        // training from that tensor via NoiseTensor ctor — emulated by
        // an equivalent-variance Laplace since the trainer owns init;
        // report the raw init comparison instead.
        Rng rng(14001);
        const float sigma =
            cfg.init.scale * static_cast<float>(std::sqrt(2.0));
        const Shape shape = lap.noise.shape();
        Tensor gauss = Tensor::normal(shape, rng, 0.0f, sigma);
        Tensor laplace = Tensor::laplace(shape, rng, 0.0f, cfg.init.scale);
        std::printf("init variance: laplace=%.3f gaussian=%.3f (matched)\n",
                    laplace.variance(), gauss.variance());
        std::printf("init |n| tail > 3sigma: laplace=%.4f gaussian=%.4f"
                    " (Laplace heavier-tailed)\n",
                    [&] {
                        std::int64_t c = 0;
                        for (std::int64_t i = 0; i < laplace.size(); ++i) {
                            if (std::abs(laplace[i]) > 3.0f * sigma / 1.41421f) {
                                ++c;
                            }
                        }
                        return static_cast<double>(c) / laplace.size();
                    }(),
                    [&] {
                        std::int64_t c = 0;
                        for (std::int64_t i = 0; i < gauss.size(); ++i) {
                            if (std::abs(gauss[i]) > 3.0f * sigma / 1.41421f) {
                                ++c;
                            }
                        }
                        return static_cast<double>(c) / gauss.size();
                    }());
        std::printf("trained-from-Laplace run: final 1/SNR=%.3f, batch"
                    " acc=%.2f%%\n",
                    lap.final_in_vivo,
                    100.0 * lap.final_batch_accuracy);
    }

    // ------------------------------------------------------------------
    banner("D5: estimator sensitivity — equal-width vs quantile binning");
    {
        auto col = collect(wb, core::PrivacyTerm::kL1Expansion, 5e-3f, 2.0,
                           k, 15000);
        core::MeterConfig mq = mc;
        mq.mi.histogram.mode = info::Binning::kQuantile;
        core::PrivacyMeter meter_q(*wb.model, *wb.bench.test_set, mq);

        const auto ew_clean = meter.measure_clean();
        const auto ew_replay = meter.measure_replay(col);
        const auto q_clean = meter_q.measure_clean();
        const auto q_replay = meter_q.measure_replay(col);
        const auto q_sampled = meter_q.measure_sampling(col);
        std::printf("%-34s %12s %12s\n", "measurement", "clean MI",
                    "noisy MI");
        std::printf("%-34s %12.2f %12.2f\n",
                    "equal-width (paper-faithful), replay", ew_clean.mi_bits,
                    ew_replay.mi_bits);
        std::printf("%-34s %12.2f %12.2f\n",
                    "quantile (rank-invariant), replay", q_clean.mi_bits,
                    q_replay.mi_bits);
        std::printf("%-34s %12.2f %12.2f\n",
                    "quantile, distribution sampling", q_clean.mi_bits,
                    q_sampled.mi_bits);
        std::printf("expected: replayed (finite-mixture) noise degrades"
                    " the magnitude-sensitive measure more\nthan the"
                    " rank-invariant one; true information destruction"
                    " needs distribution sampling.\n");
    }
    return 0;
}
