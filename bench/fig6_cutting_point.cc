/**
 * @file
 * Reproduces **Figure 6** — computation × communication cost vs
 * ex-vivo privacy as deeper cutting points are selected (SVHN and
 * LeNet), with noise trained at every cut so the accuracy loss stays
 * small (< 2% in the paper).
 *
 * Expected shape (paper): ex-vivo privacy rises monotonically with
 * depth; edge computation rises monotonically; communication is
 * non-monotonic (layer outputs shrink and grow); SVHN's Conv6
 * bottleneck wins on cost and privacy simultaneously, so it is the
 * chosen cutting point; for LeNet, Conv2 is worth its ~1% extra cost.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace shredder;

void
analyze_network(const std::string& name,
                const std::vector<int>& conv_indices)
{
    models::BenchmarkOptions opt;
    opt.verbose = false;
    models::Benchmark b = models::make_benchmark(name, opt);
    split::CostModel cost_model(*b.net, b.input_shape);

    std::printf("\n--- %s ---\n", name.c_str());
    std::printf("%6s %6s %14s %12s %16s %12s %12s %12s\n", "conv", "cut",
                "edge KMAC", "comm KB", "cost KMAC*MB", "MI(bits)",
                "exVivo", "accLoss%");

    for (int conv : conv_indices) {
        const std::int64_t cut =
            b.conv_cuts[static_cast<std::size_t>(conv)];
        const split::CutCost cost = cost_model.evaluate(cut);

        split::SplitModel model(*b.net, cut);

        // Train a small noise collection at this cut.
        core::NoiseCollection collection;
        const int k = bench::fast_mode() ? 2 : 3;
        for (int s = 0; s < k; ++s) {
            core::NoiseTrainConfig tc = bench::default_train_config(name);
            tc.iterations = bench::fast_mode() ? 20 : 100;
            tc.seed = 8800 + static_cast<std::uint64_t>(conv) * 977 +
                      static_cast<std::uint64_t>(s) * 13;
            core::NoiseTrainer trainer(model, *b.train_set, tc);
            auto result = trainer.train();
            core::NoiseSample sample;
            sample.noise = std::move(result.noise);
            sample.in_vivo_privacy = result.final_in_vivo;
            collection.add(std::move(sample));
        }

        core::MeterConfig mc = bench::default_meter_config(name);
        core::PrivacyMeter meter(model, *b.test_set, mc);
        const core::PrivacyReport clean = meter.measure_clean();
        const core::PrivacyReport noisy = meter.measure_replay(collection);

        std::printf("%6d %6lld %14.1f %12.1f %16.4f %12.2f %12.4f"
                    " %12.2f\n",
                    conv, static_cast<long long>(cut),
                    cost.edge_macs / 1e3, cost.comm_bytes / 1e3,
                    cost.kilomac_mb, noisy.mi_bits, noisy.ex_vivo,
                    100.0 * (clean.accuracy - noisy.accuracy));
        std::fflush(stdout);
    }

    std::vector<std::int64_t> cuts;
    for (int conv : conv_indices) {
        cuts.push_back(b.conv_cuts[static_cast<std::size_t>(conv)]);
    }
    std::printf("cost model's pick for %s: cut %lld (Shredder's cutting"
                " point)\n",
                name.c_str(),
                static_cast<long long>(
                    cost_model.best_cut(cuts, /*margin=*/0.05)));
}

}  // namespace

int
main()
{
    bench::banner("Figure 6: cutting-point cost vs privacy");
    analyze_network("svhn", {0, 2, 4, 6});
    analyze_network("lenet", {0, 1, 2});
    std::printf("\nExpected shape: privacy rises with depth; computation"
                " rises with depth;\ncommunication is non-monotonic; the"
                " SVHN Conv6 bottleneck wins cost AND privacy.\n");
    return 0;
}
