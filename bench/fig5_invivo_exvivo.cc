/**
 * @file
 * Reproduces **Figure 5** — in-vivo vs ex-vivo privacy at different
 * cutting points (SVHN Conv0/2/4/6, LeNet Conv0/1/2).
 *
 * For each cut, a sweep of Laplace noise levels is injected (a small
 * pseudo-collection per level so the replayed noise is stochastic
 * across queries, matching how the training-time noise behaves) and
 * both notions of privacy are measured:
 *
 *   in-vivo  = 1/SNR = σ²(n)/E[a²]           (cheap training proxy)
 *   ex-vivo  = 1/Î(x; a′)                    (the real goal)
 *
 * Expected shape (paper): within each cut the two notions move
 * together with similar slopes; deeper cuts start from higher ex-vivo
 * privacy (less information to begin with) but respond to noise the
 * same way.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace shredder;

void
sweep_network(const std::string& name,
              const std::vector<int>& conv_indices)
{
    models::BenchmarkOptions opt;
    opt.verbose = false;
    models::Benchmark b = models::make_benchmark(name, opt);

    const std::vector<double> relative_scales =
        bench::fast_mode() ? std::vector<double>{0.5, 2.0}
                           : std::vector<double>{0.25, 0.5, 1.0, 2.0,
                                                 4.0};
    const int pseudo_samples = 4;

    std::printf("\n--- %s ---\n", name.c_str());
    std::printf("%6s %6s %12s %14s %14s %12s\n", "conv", "cut",
                "noise/rms", "inVivo(1/SNR)", "MI(bits)",
                "exVivo(1/MI)");

    for (int conv : conv_indices) {
        const std::int64_t cut =
            b.conv_cuts[static_cast<std::size_t>(conv)];
        split::SplitModel model(*b.net, cut);

        // Activation RMS at this depth calibrates the noise scale.
        const data::Batch probe = data::materialize(*b.test_set, 0, 32);
        nn::ExecutionContext probe_ctx;
        const Tensor act = model.edge_forward(probe.images, probe_ctx);
        const double rms = std::sqrt(act.mean_square());
        const Shape act_shape = model.activation_shape(b.input_shape);
        Shape sample_shape;
        if (act_shape.rank() == 4) {
            sample_shape =
                Shape({act_shape[1], act_shape[2], act_shape[3]});
        } else {
            sample_shape = Shape({act_shape[1]});
        }

        core::MeterConfig mc = bench::default_meter_config(name);
        mc.accuracy_samples = 64;  // accuracy not the subject here
        core::PrivacyMeter meter(model, *b.test_set, mc);

        for (double rel : relative_scales) {
            // Laplace(0, b) with b chosen so σ = rel · rms.
            const float scale = static_cast<float>(
                rel * rms / std::sqrt(2.0));
            core::NoiseCollection collection;
            for (int s = 0; s < pseudo_samples; ++s) {
                core::NoiseInit init;
                init.scale = scale;
                init.seed = 7000 + static_cast<std::uint64_t>(s) * 13 +
                            static_cast<std::uint64_t>(conv) * 131;
                core::NoiseSample sample;
                sample.noise =
                    core::NoiseTensor(sample_shape, init).value();
                collection.add(std::move(sample));
            }
            const core::PrivacyReport r =
                meter.measure_replay(collection);
            std::printf("%6d %6lld %12.2f %14.4f %14.2f %12.4f\n", conv,
                        static_cast<long long>(cut), rel, r.in_vivo,
                        r.mi_bits, r.ex_vivo);
            std::fflush(stdout);
        }
    }
}

}  // namespace

int
main()
{
    bench::banner("Figure 5: in-vivo vs ex-vivo privacy per cutting point");
    sweep_network("svhn", {0, 2, 4, 6});
    sweep_network("lenet", {0, 1, 2});
    std::printf("\nExpected shape: within each cut, ex-vivo privacy grows"
                " with in-vivo privacy\n(similar slopes across cuts);"
                " deeper cuts start from higher ex-vivo privacy.\n");
    return 0;
}
