/**
 * @file
 * Reproduces **Table 1** — the headline summary of Shredder across the
 * four benchmark networks, cut at their last convolution layer:
 * original vs shredded mutual information, MI loss %, accuracy loss %,
 * learnable-params ratio and noise-training epochs, plus the geo-mean
 * MI-loss row.
 *
 * Paper reference values are printed next to the measured ones. The
 * absolute MI magnitudes differ (synthetic data, scaled AlexNet,
 * bias-corrected estimator — DESIGN.md §2) but the *shape* must hold:
 * large MI loss at small accuracy loss, sub-1% noise-parameter ratio,
 * few-epoch training.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace shredder;

/** Table 1 reference rows from the paper. */
struct PaperRow
{
    const char* name;
    double orig_mi, shredded_mi, mi_loss_pct, acc_loss_pct;
    double params_pct, epochs;
};

constexpr PaperRow kPaper[] = {
    {"lenet", 301.84, 18.9, 93.74, 1.34, 0.19, 6.3},
    {"cifar", 236.34, 90.2, 61.83, 1.42, 0.65, 1.7},
    {"svhn", 19.2, 7.1, 64.58, 1.12, 0.04, 1.2},
    {"alexnet", 12661.51, 4439.0, 64.94, 1.95, 0.02, 0.1},
};

}  // namespace

int
main()
{
    using bench::banner;
    banner("Table 1: Shredder summary across benchmark networks");
    std::printf("(cut = last convolution layer; deployment = replay from "
                "the learned noise collection)\n\n");
    std::printf("%-8s | %13s %13s | %9s %9s | %9s %9s | %8s %8s | %7s %7s\n",
                "network", "origMI(meas)", "shredMI(meas)", "MIloss%",
                "paper%", "accLoss%", "paper%", "params%", "paper%",
                "epochs", "paper");

    double mi_loss_product = 1.0;
    double acc_loss_sum = 0.0;
    int rows = 0;
    std::vector<core::PipelineResult> results;

    for (const PaperRow& ref : kPaper) {
        models::BenchmarkOptions opt;
        opt.verbose = false;
        models::Benchmark b = models::make_benchmark(ref.name, opt);

        core::PipelineConfig pc;
        pc.noise_samples = bench::default_noise_samples(ref.name);
        pc.train = bench::default_train_config(ref.name);
        pc.meter = bench::default_meter_config(ref.name);
        pc.measure_distribution = false;
        // Paper Table 1 is replay-only; the shuffle matrix below adds
        // the mode×shuffle extension rows from the same run.
        pc.measure_shuffle = true;

        core::PipelineResult r = core::run_pipeline(
            ref.name, *b.net, *b.train_set, *b.test_set, b.last_conv_cut,
            pc);

        std::printf("%-8s | %13.2f %13.2f | %9.2f %9.2f | %9.2f %9.2f |"
                    " %8.3f %8.2f | %7.2f %7.1f\n",
                    ref.name, r.original_mi, r.shredded_mi, r.mi_loss_pct,
                    ref.mi_loss_pct, r.accuracy_loss_pct, ref.acc_loss_pct,
                    r.params_ratio_pct, ref.params_pct, r.epochs,
                    ref.epochs);
        std::fflush(stdout);

        mi_loss_product *= std::max(1e-6, r.mi_loss_pct);
        acc_loss_sum += r.accuracy_loss_pct;
        ++rows;
        results.push_back(std::move(r));
    }

    const double gmean_mi =
        std::pow(mi_loss_product, 1.0 / static_cast<double>(rows));
    std::printf("%-8s | %13s %13s | %9.2f %9.2f | %9.2f %9.2f | %8s %8s |"
                " %7s %7s\n",
                "GMean", "-", "-", gmean_mi, 70.2, acc_loss_sum / rows,
                1.46, "-", "-", "-", "-");

    std::printf("\nMode×shuffle matrix (extension): per-request "
                "permutation alone and composed with replay\n");
    std::printf("%-8s | %9s %9s %9s | %9s %9s %9s\n", "network",
                "replayMI", "shufMI", "shuf∘repMI", "replayAcc",
                "shufAcc", "shuf∘repAcc");
    for (const core::PipelineResult& r : results) {
        std::printf("%-8s | %9.2f %9.2f %9.2f | %9.3f %9.3f %9.3f\n",
                    r.name.c_str(), r.shredded_mi, r.shuffle_mi,
                    r.shuffle_replay_mi, r.noisy_accuracy,
                    r.shuffle_accuracy, r.shuffle_replay_accuracy);
    }
    std::printf("(shuffle accuracy is cloud-visible: a trusted cloud "
                "holding the seed inverts the\npermutation losslessly "
                "before inference — see ShufflePolicy::invert)\n");

    std::printf("\nExpected shape: MI loss well above 50%% per network at"
                " accuracy loss of a few %%;\nnoise params ≪ 1%% of model"
                " size; noise training completes in a few epochs.\n");
    return 0;
}
