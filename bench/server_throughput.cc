/**
 * @file
 * Open-loop serving benchmark: latency distributions of the batched
 * engine under Poisson arrivals, in-process and through the SHRQ/SHRP
 * TCP front door.
 *
 * The previous version of this bench was closed-loop (flood the queue,
 * measure completions/sec), which can only see throughput — a
 * closed-loop driver slows down when the server does, so queueing
 * delay never shows up in the numbers (coordinated omission). This
 * rewrite drives the engine the way real traffic does:
 *
 *  - **Open loop**: request arrival times are drawn up front from a
 *    Poisson process at a target rate and submitted on schedule
 *    whether or not earlier requests finished. Latency is measured
 *    from the *scheduled* arrival, so a stalled server shows up as
 *    growing tail latency instead of a politely reduced offered load.
 *  - **Swept across target QPS**: each operating point reports
 *    p50/p95/p99/mean/max and a log2 latency histogram.
 *  - **Three transports**: `inproc` submits straight into
 *    `ServingEngine::submit`; `tcp` sends every activation through a
 *    loopback `net::Server` speaking the wire protocol, so the
 *    serialization + socket cost of the network front door is its own
 *    measured column; `tcp-int8` ships the same activations quantized
 *    to int8 (SHRT v2 frames, ~4× fewer bytes per request) into an
 *    endpoint running the int8 direct-consume GEMM path. Every point
 *    reports its exact `bytes_per_request` from a real frame encode.
 *  - **Two batchers**: the fixed straggler window (`batch_timeout_ms`)
 *    vs the SLO-aware adaptive controller
 *    (src/runtime/batch_controller.h). The acceptance shape: at
 *    mid-QPS the controller stops charging sparse traffic the full
 *    window, so p95 queue wait drops vs fixed.
 *
 * A quantization section reruns the PrivacyMeter on the TRAINED LeNet
 * zoo endpoint through the quantized mechanism
 * (`ComposedPolicy{QuantizePolicy, noise}` — exactly what a
 * wire_dtype=int8 endpoint serves), pinning the acceptance numbers:
 * ≥3× smaller requests at ≤0.5 pp top-1 accuracy delta.
 *
 * A sharding section (schema v5) floods engines built with 1, 2 and 4
 * pool shards (one single-threaded endpoint per shard, batch 8,
 * closed loop) and records requests/sec per shard count plus the
 * 4-vs-1 speedup — the scale-out acceptance axis. On a single-core
 * container the speedup degenerates to ~1×; the ≥2× criterion is
 * evaluated on a multi-core runner.
 *
 * Results land in `BENCH_server.json` (or argv[1]) via the shared
 * `bench::JsonWriter`, schema `shredder-server-v5`.
 *
 * Honors SHREDDER_BENCH_FAST=1 (lower rates, shorter runs).
 */
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace shredder;

constexpr std::int64_t kMaxBatch = 8;
constexpr std::int64_t kInFlight = 2;
constexpr double kWindowMs = 2.0;  ///< Fixed timeout AND adaptive SLO.
constexpr std::uint64_t kPolicySeed = 0x5EED;

using Clock = std::chrono::steady_clock;

double
ms_between(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** One operating point's measured result. */
struct PointResult
{
    bench::LatencyHistogram latency;  ///< Scheduled-arrival → completion.
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    double run_seconds = 0.0;
    runtime::ServerStats server;  ///< Endpoint counters for the run.
};

/** Poisson schedule: cumulative arrival offsets (ms) at `qps`. */
std::vector<double>
poisson_schedule(double qps, std::int64_t n, std::uint64_t seed)
{
    Rng rng(seed);  // same engine bits as before: Rng wraps mt19937_64
    std::exponential_distribution<double> gap(qps / 1e3);  // per ms
    auto& gen = rng.engine();
    std::vector<double> at;
    at.reserve(static_cast<std::size_t>(n));
    double t = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        t += gap(gen);
        at.push_back(t);
    }
    return at;
}

/** Fresh single-endpoint engine for one operating point. */
std::unique_ptr<runtime::ServingEngine>
make_engine(split::SplitModel& model,
            const std::shared_ptr<const runtime::NoisePolicy>& policy,
            bool adaptive, WireDtype wire_dtype)
{
    runtime::ServingEngineConfig ec;
    ec.num_workers = static_cast<unsigned>(kInFlight);
    auto engine = std::make_unique<runtime::ServingEngine>(ec);

    runtime::EndpointConfig ep;
    ep.max_batch = kMaxBatch;
    ep.max_concurrent_batches = kInFlight;
    ep.batch_timeout_ms = kWindowMs;
    ep.adaptive_batching = adaptive;
    ep.slo_ms = kWindowMs;
    ep.wire_dtype = wire_dtype;
    // Always safe: the server falls back to dequantize→fp32 when a
    // batch is not uniformly int8 or the cut layer is not a Linear.
    ep.int8_compute = wire_dtype == WireDtype::kI8;
    engine->register_endpoint("bench", model, policy, ep);
    return engine;
}

/**
 * In-process open loop: a submitter thread fires `submit` on the
 * Poisson schedule; a pool of waiter threads stamps each future's
 * completion (each waiter blocks on its own future, so stamps are
 * per-request accurate as long as the pool outnumbers the in-flight
 * backlog — sized generously below).
 */
PointResult
run_inproc(runtime::ServingEngine& engine,
           const std::vector<Tensor>& activations,
           const std::vector<double>& schedule_ms)
{
    const auto n = static_cast<std::int64_t>(schedule_ms.size());
    struct Slot
    {
        std::future<Tensor> future;
        Clock::time_point scheduled;
    };
    std::vector<Slot> slots(static_cast<std::size_t>(n));
    std::mutex mutex;
    std::condition_variable cv;
    std::int64_t submitted = 0;

    PointResult result;
    std::mutex result_mutex;

    const auto t0 = Clock::now();
    std::thread submitter([&] {
        for (std::int64_t i = 0; i < n; ++i) {
            const auto scheduled =
                t0 + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             schedule_ms[static_cast<std::size_t>(i)]));
            std::this_thread::sleep_until(scheduled);
            auto future = engine.submit(
                "bench",
                activations[static_cast<std::size_t>(i) %
                            activations.size()],
                static_cast<std::uint64_t>(i));
            {
                std::lock_guard<std::mutex> lock(mutex);
                auto& slot = slots[static_cast<std::size_t>(i)];
                slot.future = std::move(future);
                slot.scheduled = scheduled;
                submitted = i + 1;
            }
            // Waiters have distinct "my slot is ready" predicates on
            // this one cv, so notify_one could wake the wrong one.
            cv.notify_all();
        }
    });

    // Waiters pull the next unclaimed slot and block on ITS future, so
    // every completion is stamped the moment it lands.
    std::int64_t next = 0;
    const int n_waiters = 32;
    std::vector<std::thread> waiters;
    waiters.reserve(n_waiters);
    for (int w = 0; w < n_waiters; ++w) {
        waiters.emplace_back([&] {
            for (;;) {
                std::int64_t mine;
                Clock::time_point scheduled;
                std::future<Tensor> future;
                {
                    std::unique_lock<std::mutex> lock(mutex);
                    if (next >= n) {
                        return;
                    }
                    mine = next++;
                    cv.wait(lock, [&] { return submitted > mine; });
                    auto& slot = slots[static_cast<std::size_t>(mine)];
                    future = std::move(slot.future);
                    scheduled = slot.scheduled;
                }
                bool ok = true;
                try {
                    future.get();
                } catch (const runtime::ServingError&) {
                    ok = false;
                }
                const auto done = Clock::now();
                std::lock_guard<std::mutex> lock(result_mutex);
                if (ok) {
                    result.latency.record(ms_between(scheduled, done));
                    ++result.completed;
                } else {
                    ++result.failed;
                }
            }
        });
    }
    submitter.join();
    cv.notify_all();
    for (auto& w : waiters) {
        w.join();
    }
    result.run_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    result.server = engine.stats("bench");
    return result;
}

/**
 * Loopback-TCP open loop: same schedule, but every request is a SHRQ
 * frame through a `net::Client` pipelined over one connection. The
 * server guarantees FIFO responses per connection, so a receiver
 * thread stamps completions as frames land.
 */
PointResult
run_tcp(runtime::ServingEngine& engine,
        const std::vector<Tensor>& activations,
        const std::vector<double>& schedule_ms, WireDtype wire_dtype)
{
    const auto n = static_cast<std::int64_t>(schedule_ms.size());
    net::Server server(engine, net::ServerConfig{});
    net::Client client("127.0.0.1", server.port());

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Clock::time_point> in_flight;  // FIFO scheduled stamps
    bool send_done = false;

    PointResult result;
    const auto t0 = Clock::now();

    std::thread receiver([&] {
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock,
                        [&] { return !in_flight.empty() || send_done; });
                if (in_flight.empty()) {
                    return;
                }
            }
            net::Response response;
            try {
                response = client.recv();
            } catch (const runtime::ServingError&) {
                std::lock_guard<std::mutex> lock(mutex);
                result.failed +=
                    static_cast<std::int64_t>(in_flight.size());
                in_flight.clear();
                return;
            }
            const auto done = Clock::now();
            std::lock_guard<std::mutex> lock(mutex);
            const auto scheduled = in_flight.front();
            in_flight.pop_front();
            if (response.status == net::WireStatus::kOk) {
                result.latency.record(ms_between(scheduled, done));
                ++result.completed;
            } else {
                ++result.failed;
            }
        }
    });

    for (std::int64_t i = 0; i < n; ++i) {
        const auto scheduled =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         schedule_ms[static_cast<std::size_t>(i)]));
        std::this_thread::sleep_until(scheduled);
        {
            std::lock_guard<std::mutex> lock(mutex);
            in_flight.push_back(scheduled);
        }
        client.send("bench",
                    activations[static_cast<std::size_t>(i) %
                                activations.size()],
                    static_cast<std::uint64_t>(i), wire_dtype);
        cv.notify_one();
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        send_done = true;
    }
    cv.notify_all();
    receiver.join();
    client.close();
    server.stop();

    result.run_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    result.server = engine.stats("bench");
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_server.json";

    bench::banner(
        "Serving: open-loop Poisson load, in-process and loopback TCP");

    // Untrained LeNet: the serving data path (policy apply + cloud
    // forward) is identical regardless of weight values, and skipping
    // pre-training keeps this benchmark self-contained and fast.
    Rng rng(4242);
    auto net = models::make_lenet(rng);
    const std::int64_t cut = split::conv_cut_points(*net).back();
    split::SplitModel model(*net, cut);
    const Shape act = model.activation_shape(Shape({1, 28, 28}));
    const Shape per_sample({act[1], act[2], act[3]});

    // Replay policy — the historical deployment mode; the policy cost
    // axis lives in the git history of the v2 schema, this bench
    // measures scheduling.
    core::NoiseCollection coll;
    for (int i = 0; i < 4; ++i) {
        core::NoiseSample sample;
        sample.noise = Tensor::laplace(per_sample, rng, 0.0f, 0.5f);
        coll.add(std::move(sample));
    }
    const auto policy =
        std::make_shared<runtime::ReplayPolicy>(coll, kPolicySeed);

    std::vector<Tensor> activations;
    for (int i = 0; i < 64; ++i) {
        activations.push_back(Tensor::normal(per_sample, rng));
    }

    const bool fast = bench::fast_mode();
    const std::vector<double> qps_points =
        fast ? std::vector<double>{500, 1000, 2000}
             : std::vector<double>{1000, 4000, 16000};
    const double duration_s = fast ? 0.2 : 1.0;
    const char* transports[] = {"inproc", "tcp", "tcp-int8"};
    const char* batchers[] = {"fixed", "adaptive"};

    // The exact frame each transport puts on the wire for one request
    // (envelope + ids + endpoint + tensor), measured from a real
    // encode — `inproc` ships no frame and reports the fp32 size its
    // traffic would have cost.
    net::Request probe;
    probe.request_id = 0;
    probe.endpoint = "bench";
    probe.activation = activations.front();
    const auto bytes_fp32_frame =
        static_cast<std::int64_t>(net::encode_request(probe).size());
    probe.quantized = quantize(activations.front(), WireDtype::kI8);
    probe.is_quantized = true;
    const auto bytes_int8_frame =
        static_cast<std::int64_t>(net::encode_request(probe).size());

    const unsigned hw_threads =
        std::max(1u, std::thread::hardware_concurrency());
    std::printf("network lenet, cut %lld, activation %s, max_batch %lld, "
                "window/slo %.1f ms, %.2fs per point, hw_threads=%u\n",
                static_cast<long long>(cut),
                per_sample.to_string().c_str(),
                static_cast<long long>(kMaxBatch), kWindowMs, duration_s,
                hw_threads);
    std::printf("%8s %9s %10s %10s %9s %9s %9s %12s\n", "transport",
                "batcher", "target_qps", "achieved", "p50 ms", "p95 ms",
                "p99 ms", "queue p95 ms");

    bench::JsonWriter json;
    json.begin_object();
    json.key("schema");
    json.value("shredder-server-v5");
    json.key("generated");
    json.value(bench::now_iso8601());
    json.key("fast_mode");
    json.value(fast);
    json.key("compiler");
    json.value(__VERSION__);
    json.key("hw_threads");
    json.value(static_cast<std::int64_t>(hw_threads));
    json.key("max_batch");
    json.value(kMaxBatch);
    json.key("window_ms");
    json.value(kWindowMs);
    json.key("duration_s");
    json.value(duration_s);
    json.key("points");
    json.begin_array();

    // queue_p95[batcher][qps index] on the inproc transport, for the
    // adaptive-vs-fixed summary.
    double queue_p95[2][8] = {};

    for (const char* transport : transports) {
        for (int adaptive = 0; adaptive < 2; ++adaptive) {
            for (std::size_t qi = 0; qi < qps_points.size(); ++qi) {
                const double qps = qps_points[qi];
                const auto n =
                    static_cast<std::int64_t>(qps * duration_s);
                const std::vector<double> schedule = poisson_schedule(
                    qps, n, 0xA11CE + static_cast<std::uint64_t>(qi));
                const bool int8 = std::string(transport) == "tcp-int8";
                const WireDtype wire_dtype =
                    int8 ? WireDtype::kI8 : WireDtype::kF32;
                auto engine = make_engine(model, policy, adaptive != 0,
                                          wire_dtype);
                const bool tcp = std::string(transport) != "inproc";
                const PointResult r =
                    tcp ? run_tcp(*engine, activations, schedule,
                                  wire_dtype)
                        : run_inproc(*engine, activations, schedule);
                engine->shutdown();
                const std::int64_t bytes_per_request =
                    int8 ? bytes_int8_frame : bytes_fp32_frame;

                const double achieved =
                    static_cast<double>(r.completed) /
                    std::max(r.run_seconds, 1e-9);
                const double server_queue_p95 =
                    r.server.queue_wait_percentile_ms(0.95);
                if (!tcp && qi < 8) {
                    queue_p95[adaptive][qi] = server_queue_p95;
                }
                std::printf(
                    "%8s %9s %10.0f %10.0f %9.3f %9.3f %9.3f %12.3f\n",
                    transport, batchers[adaptive], qps, achieved,
                    r.latency.percentile_ms(0.50),
                    r.latency.percentile_ms(0.95),
                    r.latency.percentile_ms(0.99), server_queue_p95);
                std::fflush(stdout);

                json.begin_object();
                json.key("transport");
                json.value(transport);
                json.key("batcher");
                json.value(batchers[adaptive]);
                json.key("target_qps");
                json.value(qps);
                json.key("wire_dtype");
                json.value(to_string(wire_dtype));
                json.key("bytes_per_request");
                json.value(bytes_per_request);
                json.key("offered");
                json.value(n);
                json.key("completed");
                json.value(r.completed);
                json.key("failed");
                json.value(r.failed);
                json.key("achieved_qps");
                json.value(achieved);
                json.key("p50_ms");
                json.value(r.latency.percentile_ms(0.50));
                json.key("p95_ms");
                json.value(r.latency.percentile_ms(0.95));
                json.key("p99_ms");
                json.value(r.latency.percentile_ms(0.99));
                json.key("mean_ms");
                json.value(r.latency.mean_ms());
                json.key("max_ms");
                json.value(r.latency.max_ms());
                json.key("latency_log2_buckets_ms");
                json.begin_array();
                for (const std::int64_t b : r.latency.log2_buckets(16)) {
                    json.value(b);
                }
                json.end_array();
                json.key("server");
                json.begin_object();
                json.key("mean_batch");
                json.value(r.server.mean_batch_size());
                json.key("queue_wait_p50_ms");
                json.value(r.server.queue_wait_percentile_ms(0.50));
                json.key("queue_wait_p95_ms");
                json.value(server_queue_p95);
                json.key("full_dispatches");
                json.value(r.server.full_dispatches);
                json.key("deadline_dispatches");
                json.value(r.server.deadline_dispatches);
                json.key("ewma_interarrival_ms");
                json.value(r.server.ewma_interarrival_ms);
                json.key("last_deadline_ms");
                json.value(r.server.last_deadline_ms);
                json.key("quantized_requests");
                json.value(r.server.quantized_requests);
                json.key("int8_direct_batches");
                json.value(r.server.int8_direct_batches);
                json.end_object();
                json.end_object();
            }
        }
    }
    json.end_array();

    // The acceptance summary: at the middle QPS point on the in-process
    // transport, the adaptive controller should cut p95 queue wait vs
    // the fixed window (sparse traffic stops paying the full timeout).
    const std::size_t mid = qps_points.size() / 2;
    const double fixed_p95 = queue_p95[0][mid];
    const double adaptive_p95 = queue_p95[1][mid];
    json.key("queue_p95_fixed_at_mid_qps_ms");
    json.value(fixed_p95);
    json.key("queue_p95_adaptive_at_mid_qps_ms");
    json.value(adaptive_p95);

    // ---- Quantized transport acceptance: measured == served --------
    //
    // The scheduling sweep above uses an untrained net (weights don't
    // change scheduling). Accuracy DOES depend on weights, so the
    // wire-quantization claim is re-measured on the trained LeNet zoo
    // model at the same cut, through the exact mechanism a
    // wire_dtype=int8 endpoint serves: the client quantizes the raw
    // activation (QuantizePolicy stage first), the server dequantizes
    // and applies the noise policy. PrivacyMeter rows below are that
    // composition, so measured = served.
    bench::banner("Quantized wire path: trained LeNet, int8 vs fp32");
    models::BenchmarkOptions opt;
    opt.verbose = false;
    models::Benchmark zoo = models::make_benchmark("lenet", opt);
    split::SplitModel zoo_model(*zoo.net, zoo.last_conv_cut);
    const Shape zoo_act_b = zoo_model.activation_shape(zoo.input_shape);
    const Shape zoo_act({zoo_act_b[1], zoo_act_b[2], zoo_act_b[3]});

    core::NoiseCollection zoo_coll;
    for (int i = 0; i < 4; ++i) {
        core::NoiseSample sample;
        sample.noise = Tensor::laplace(zoo_act, rng, 0.0f, 0.5f);
        zoo_coll.add(std::move(sample));
    }
    const auto zoo_replay =
        std::make_shared<runtime::ReplayPolicy>(zoo_coll, kPolicySeed);
    const runtime::ComposedPolicy zoo_int8(
        {std::make_shared<runtime::QuantizePolicy>(WireDtype::kI8),
         zoo_replay});

    // Full request frames (envelope + ids + endpoint + tensor) for one
    // zoo-endpoint activation, from a real encode.
    net::Request zoo_probe;
    zoo_probe.request_id = 0;
    zoo_probe.endpoint = "lenet";
    zoo_probe.activation = Tensor::normal(zoo_act, rng);
    const auto zoo_bytes_fp32 =
        static_cast<std::int64_t>(net::encode_request(zoo_probe).size());
    zoo_probe.quantized = quantize(zoo_probe.activation, WireDtype::kI8);
    zoo_probe.is_quantized = true;
    const auto zoo_bytes_int8 =
        static_cast<std::int64_t>(net::encode_request(zoo_probe).size());
    const double zoo_bytes_ratio = static_cast<double>(zoo_bytes_fp32) /
                                   static_cast<double>(zoo_bytes_int8);

    core::PrivacyMeter meter(zoo_model, *zoo.test_set,
                             bench::default_meter_config("lenet"));
    const core::PrivacyReport q_clean = meter.measure_clean();
    const core::PrivacyReport q_fp32 = meter.measure_policy(*zoo_replay);
    const core::PrivacyReport q_int8 = meter.measure_policy(zoo_int8);
    const double accuracy_delta_pp =
        (q_fp32.accuracy - q_int8.accuracy) * 100.0;

    std::printf("cut %lld, activation %s: %lld B/request fp32, %lld "
                "B/request int8 (%.2fx smaller)\n",
                static_cast<long long>(zoo.last_conv_cut),
                zoo_act.to_string().c_str(),
                static_cast<long long>(zoo_bytes_fp32),
                static_cast<long long>(zoo_bytes_int8), zoo_bytes_ratio);
    std::printf("%-12s %9s %9s\n", "mechanism", "accuracy", "mi bits");
    std::printf("%-12s %9.4f %9.3f\n", "clean", q_clean.accuracy,
                q_clean.mi_bits);
    std::printf("%-12s %9.4f %9.3f\n", "fp32+noise", q_fp32.accuracy,
                q_fp32.mi_bits);
    std::printf("%-12s %9.4f %9.3f\n", zoo_int8.name().c_str(),
                q_int8.accuracy, q_int8.mi_bits);
    std::printf("accuracy delta int8 vs fp32: %.3f pp\n",
                accuracy_delta_pp);

    json.key("quantization");
    json.begin_object();
    json.key("network");
    json.value("lenet");
    json.key("cut");
    json.value(zoo.last_conv_cut);
    json.key("activation");
    json.value(zoo_act.to_string());
    json.key("meter_samples");
    json.value(q_fp32.samples);
    json.key("bytes_per_request_fp32");
    json.value(zoo_bytes_fp32);
    json.key("bytes_per_request_int8");
    json.value(zoo_bytes_int8);
    json.key("bytes_ratio");
    json.value(zoo_bytes_ratio);
    json.key("accuracy_clean");
    json.value(q_clean.accuracy);
    json.key("accuracy_fp32_noise");
    json.value(q_fp32.accuracy);
    json.key("accuracy_int8_noise");
    json.value(q_int8.accuracy);
    json.key("accuracy_delta_pp");
    json.value(accuracy_delta_pp);
    json.key("mi_bits_clean");
    json.value(q_clean.mi_bits);
    json.key("mi_bits_fp32_noise");
    json.value(q_fp32.mi_bits);
    json.key("mi_bits_int8_noise");
    json.value(q_int8.mi_bits);
    json.key("served_policy");
    json.value(zoo_int8.name());
    json.end_object();

    // ---- Scale-out: pool shards at batch 8, closed-loop flood ------
    //
    // One single-threaded endpoint per shard, all serving the SAME
    // SplitModel (stateless layer execution makes sharing safe), and a
    // fixed total request budget spread round-robin. More shards =
    // more independent dispatcher+worker lanes over the same work, so
    // requests/sec should scale with shard count up to the core count
    // of the machine.
    bench::banner("Scale-out: 1/2/4 pool shards, batch 8, closed loop");
    const unsigned shard_counts[] = {1, 2, 4};
    const std::int64_t flood = fast ? 512 : 4096;
    double rps_by_shards[3] = {};
    std::printf("%7s %10s %9s %12s %11s\n", "shards", "completed",
                "seconds", "req/s", "mean_batch");
    json.key("sharding");
    json.begin_object();
    json.key("max_batch");
    json.value(kMaxBatch);
    json.key("requests");
    json.value(flood);
    json.key("threads_per_shard");
    json.value(static_cast<std::int64_t>(1));
    json.key("points");
    json.begin_array();
    for (std::size_t si = 0; si < 3; ++si) {
        const unsigned n_shards = shard_counts[si];
        runtime::ServingEngineConfig ec;
        ec.shards = n_shards;
        ec.threads_per_shard = 1;
        runtime::ServingEngine engine(ec);
        for (unsigned s = 0; s < n_shards; ++s) {
            runtime::EndpointConfig ep;
            ep.max_batch = kMaxBatch;
            ep.batch_timeout_ms = 0.0;  // flood keeps batches full anyway
            ep.max_concurrent_batches = 1;
            ep.shard = std::to_string(s);  // pin one endpoint per shard
            engine.register_endpoint("ep" + std::to_string(s), model,
                                     policy, ep);
        }
        std::vector<std::future<Tensor>> futures;
        futures.reserve(static_cast<std::size_t>(flood));
        const auto t0 = Clock::now();
        for (std::int64_t i = 0; i < flood; ++i) {
            futures.push_back(engine.submit(
                "ep" + std::to_string(i % n_shards),
                activations[static_cast<std::size_t>(i) %
                            activations.size()],
                static_cast<std::uint64_t>(i)));
        }
        std::int64_t ok = 0;
        for (auto& future : futures) {
            try {
                future.get();
                ++ok;
            } catch (const runtime::ServingError&) {
            }
        }
        const double seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        const double rps =
            static_cast<double>(ok) / std::max(seconds, 1e-9);
        rps_by_shards[si] = rps;
        const runtime::ServerStats shard_stats = engine.stats();
        engine.shutdown();
        std::printf("%7u %10lld %9.3f %12.0f %11.2f\n", n_shards,
                    static_cast<long long>(ok), seconds, rps,
                    shard_stats.mean_batch_size());
        std::fflush(stdout);
        json.begin_object();
        json.key("shards");
        json.value(static_cast<std::int64_t>(n_shards));
        json.key("completed");
        json.value(ok);
        json.key("seconds");
        json.value(seconds);
        json.key("requests_per_sec");
        json.value(rps);
        json.key("mean_batch");
        json.value(shard_stats.mean_batch_size());
        json.end_object();
    }
    json.end_array();
    const double shard_speedup =
        rps_by_shards[2] / std::max(rps_by_shards[0], 1e-9);
    json.key("speedup_4_shards_vs_1");
    json.value(shard_speedup);
    json.end_object();
    std::printf("4-shard vs 1-shard speedup: %.2fx (>=2x expected on a "
                "multi-core runner; ~1x on one core)\n",
                shard_speedup);
    json.end_object();

    if (!bench::JsonValidator::valid(json.str())) {
        std::fprintf(stderr, "internal error: emitted invalid JSON\n");
        return 1;
    }
    if (!json.write_file(json_path)) {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 1;
    }

    std::printf("\nqueue-wait p95 at %.0f qps (inproc): fixed %.3f ms, "
                "adaptive %.3f ms\n",
                qps_points[mid], fixed_p95, adaptive_p95);
    std::printf("wrote %s\n", json_path.c_str());
    std::printf(
        "Expected shape: latency is flat while the server keeps up "
        "with the\noffered rate and spikes when it saturates (open "
        "loop: queueing shows\nup as tail latency, not reduced "
        "throughput). The adaptive batcher\nstops charging sparse "
        "traffic the fixed straggler window, so its\nqueue-wait p95 "
        "sits below the fixed batcher's until the rate is high\n"
        "enough that batches fill before the window matters (see "
        "docs/PERFORMANCE.md).\nThe tcp-int8 transport ships the same "
        "traffic in ~4x fewer bytes per\nrequest; the quantization "
        "section pins the accuracy cost of that codec\non the trained "
        "model (acceptance: >=3x bytes, <=0.5 pp top-1).\n");
    return 0;
}
