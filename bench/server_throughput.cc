/**
 * @file
 * Serving-path benchmark: requests/sec of the `ServingEngine` across a
 * (noise policy × batch ceiling) grid — the cost of each §2.5
 * deployment mode through the batched split pipeline.
 *
 * Two axes:
 *
 *  - `max_batch` — batching amortizes the GEMM setup across requests,
 *    so throughput rises with the ceiling until the kernels saturate.
 *    This axis pays off even on a single core.
 *  - `policy` ∈ {none, replay, sample, shuffle, sample+shuffle} —
 *    what each mechanism costs on the serving hot path. `none` serves
 *    raw activations (upper bound), `replay` adds one stored-tensor
 *    add per request (the historical deployment), `sample` draws a
 *    fresh per-element tensor from the fitted distribution per request
 *    (the paper's true information-destruction mode — O(activation)
 *    RNG work per query, the most expensive additive policy by
 *    construction), `shuffle` performs one id-keyed permutation gather
 *    per request, and `sample+shuffle` is the `ComposedPolicy` chain a
 *    composed endpoint serves (both stages, sequentially).
 *
 * Every point runs `in_flight` (= shared workers = per-endpoint
 * contexts) concurrent batches; since the stateless-layer refactor
 * those forwards share one set of weights lock-free. On a 1-core host
 * in-flight > 1 only hides handoff bubbles; multi-core hosts gain real
 * parallel forwards (see docs/PERFORMANCE.md).
 *
 * Reported per grid point: completed requests/sec, mean fused batch
 * size, mean per-batch execution latency and mean per-request queue
 * wait. Results land in `BENCH_server.json` (or argv[1]) via the
 * shared `bench::JsonWriter` (schema `shredder-server-v2`: each point
 * carries its `policy` tag).
 *
 * Honors SHREDDER_BENCH_FAST=1 (fewer requests per sweep point).
 */
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace shredder;

constexpr std::int64_t kInFlight = 2;
constexpr std::uint64_t kPolicySeed = 0x5EED;

/**
 * Push `total` pre-generated activations through a fresh single-
 * endpoint engine under `policy` and return the endpoint's counters.
 */
runtime::ServerStats
run_point(split::SplitModel& model,
          const std::shared_ptr<const runtime::NoisePolicy>& policy,
          const std::vector<Tensor>& activations, std::int64_t max_batch)
{
    runtime::ServingEngineConfig ec;
    ec.num_workers = static_cast<unsigned>(kInFlight);
    runtime::ServingEngine engine(ec);

    runtime::EndpointConfig ep;
    ep.max_batch = max_batch;
    ep.max_concurrent_batches = kInFlight;
    // Generous straggler window: the submitter floods the queue, so
    // batches fill to the ceiling rather than waiting it out.
    ep.batch_timeout_ms = 2.0;
    engine.register_endpoint("bench", model, policy, ep);

    std::vector<std::future<Tensor>> futures;
    futures.reserve(activations.size());
    for (std::size_t i = 0; i < activations.size(); ++i) {
        futures.push_back(engine.submit(
            "bench", activations[i], static_cast<std::uint64_t>(i)));
    }
    for (auto& f : futures) {
        f.get();
    }
    const runtime::ServerStats stats = engine.stats("bench");
    engine.shutdown();
    return stats;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_server.json";

    bench::banner("Serving: noise policies through the batched engine");

    // Untrained LeNet: the serving data path (policy apply + cloud
    // forward) is identical regardless of weight values, and skipping
    // pre-training keeps this benchmark self-contained and fast.
    Rng rng(4242);
    auto net = models::make_lenet(rng);
    const std::int64_t cut = split::conv_cut_points(*net).back();
    split::SplitModel model(*net, cut);
    const Shape act = model.activation_shape(Shape({1, 28, 28}));
    const Shape per_sample({act[1], act[2], act[3]});

    // A stored noise collection shaped like the cut's activation, and
    // the distribution fitted to it — the two learned mechanisms.
    core::NoiseCollection coll;
    for (int i = 0; i < 4; ++i) {
        core::NoiseSample sample;
        sample.noise = Tensor::laplace(per_sample, rng, 0.0f, 0.5f);
        coll.add(std::move(sample));
    }
    const core::NoiseDistribution dist =
        core::NoiseDistribution::fit(coll);

    struct PolicyPoint
    {
        const char* tag;
        std::shared_ptr<const runtime::NoisePolicy> policy;
    };
    const auto sample =
        std::make_shared<runtime::SamplePolicy>(dist, kPolicySeed);
    const auto shuffle = std::make_shared<runtime::ShufflePolicy>(
        kPolicySeed ^ 0x5AFEC0DEULL);
    const std::vector<PolicyPoint> policies = {
        {"none", std::make_shared<runtime::NoNoisePolicy>()},
        {"replay",
         std::make_shared<runtime::ReplayPolicy>(coll, kPolicySeed)},
        {"sample", sample},
        // Permutation gather per request — no RNG-per-element work,
        // so it should price between replay and sample.
        {"shuffle", shuffle},
        // The full §2.5 + shuffling chain a composed endpoint serves.
        {"sample+shuffle",
         std::make_shared<runtime::ComposedPolicy>(
             std::vector<
                 std::shared_ptr<const runtime::NoisePolicy>>{
                 sample, shuffle})},
    };
    const std::vector<std::int64_t> batches = {1, 8, 32};

    // Enough requests per point that each measurement spans tens of
    // milliseconds — at ~100k req/sec, 512 requests finish in ~5 ms,
    // which is pure scheduler noise.
    const std::int64_t total = bench::fast_mode() ? 128 : 8192;
    std::vector<Tensor> activations;
    activations.reserve(static_cast<std::size_t>(total));
    for (std::int64_t i = 0; i < total; ++i) {
        activations.push_back(Tensor::normal(per_sample, rng));
    }

    const unsigned hw_threads =
        std::max(1u, std::thread::hardware_concurrency());
    std::printf("network lenet, cut %lld, activation %s, %lld requests"
                " per point, in_flight=%lld, hw_threads=%u\n",
                static_cast<long long>(cut),
                per_sample.to_string().c_str(),
                static_cast<long long>(total),
                static_cast<long long>(kInFlight), hw_threads);
    std::printf("%14s %10s %14s %12s %16s %16s\n", "policy", "max_batch",
                "req/sec", "mean batch", "batch exec ms", "queue wait ms");

    bench::JsonWriter json;
    json.begin_object();
    json.key("schema");
    json.value("shredder-server-v2");
    json.key("generated");
    json.value(bench::now_iso8601());
    json.key("fast_mode");
    json.value(bench::fast_mode());
    json.key("compiler");
    json.value(__VERSION__);
    json.key("hw_threads");
    json.value(static_cast<std::int64_t>(hw_threads));
    json.key("requests_per_point");
    json.value(total);
    json.key("in_flight");
    json.value(kInFlight);
    json.key("points");
    json.begin_array();

    // rps[policy index][max-batch index] for the scaling summaries.
    std::vector<std::vector<double>> rps(
        policies.size(), std::vector<double>(batches.size(), 0.0));

    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
            const runtime::ServerStats stats = run_point(
                model, policies[pi].policy, activations, batches[bi]);
            rps[pi][bi] = stats.requests_per_sec();
            std::printf("%14s %10lld %14.1f %12.2f %16.3f %16.3f\n",
                        policies[pi].tag,
                        static_cast<long long>(batches[bi]),
                        stats.requests_per_sec(), stats.mean_batch_size(),
                        stats.mean_batch_latency_ms(),
                        stats.mean_queue_wait_ms());
            std::fflush(stdout);
            json.begin_object();
            json.key("policy");
            json.value(policies[pi].tag);
            json.key("max_batch");
            json.value(batches[bi]);
            json.key("in_flight");
            json.value(kInFlight);
            json.key("req_per_sec");
            json.value(stats.requests_per_sec());
            json.key("mean_batch");
            json.value(stats.mean_batch_size());
            json.key("batch_exec_ms");
            json.value(stats.mean_batch_latency_ms());
            json.key("queue_wait_ms");
            json.value(stats.mean_queue_wait_ms());
            json.end_object();
        }
    }
    json.end_array();

    // Scaling summaries: batching at fixed policy (replay), and the
    // per-policy overhead vs the clean upper bound at max_batch 8.
    const double batch_scaling = rps[1][2] / rps[1][0];
    const double replay_overhead = rps[0][1] / rps[1][1];
    const double sample_overhead = rps[0][1] / rps[2][1];
    const double shuffle_overhead = rps[0][1] / rps[3][1];
    const double composed_overhead = rps[0][1] / rps[4][1];
    json.key("batch32_vs_batch1_replay");
    json.value(batch_scaling);
    json.key("none_vs_replay_at_batch8");
    json.value(replay_overhead);
    json.key("none_vs_sample_at_batch8");
    json.value(sample_overhead);
    json.key("none_vs_shuffle_at_batch8");
    json.value(shuffle_overhead);
    json.key("none_vs_sample_shuffle_at_batch8");
    json.value(composed_overhead);
    json.end_object();

    if (!json.write_file(json_path)) {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 1;
    }

    std::printf("\nbatch-32 vs batch-1 (replay)       : %.2fx\n",
                batch_scaling);
    std::printf("clean vs replay (max_batch 8)      : %.2fx\n",
                replay_overhead);
    std::printf("clean vs sample (max_batch 8)      : %.2fx\n",
                sample_overhead);
    std::printf("clean vs shuffle (max_batch 8)     : %.2fx\n",
                shuffle_overhead);
    std::printf("clean vs sample+shuffle (batch 8)  : %.2fx\n",
                composed_overhead);
    std::printf("wrote %s\n", json_path.c_str());
    std::printf("Expected shape: req/sec rises with max_batch as"
                " per-request overhead\namortizes. 'replay' costs one"
                " tensor add per request over 'none';\n'sample' pays"
                " O(activation) per-element RNG draws per request —"
                " the\nprice of true per-query information destruction"
                " (see\ndocs/PERFORMANCE.md).\n");
    return 0;
}
