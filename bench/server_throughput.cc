/**
 * @file
 * Serving-path benchmark: requests/sec of the batched `InferenceServer`
 * as the batch ceiling grows, through the noised split pipeline
 * (per-request noise draw + cloud-side forward of the fused batch).
 *
 * This is the knob behind the ROADMAP's production-serving goal:
 * batching amortizes the GEMM setup across requests, so throughput
 * should rise with max_batch until the kernels saturate. Reported per
 * configuration: completed requests/sec, mean fused batch size, mean
 * per-batch execution latency and mean per-request queue wait.
 *
 * Honors SHREDDER_BENCH_FAST=1 (fewer requests per sweep point).
 */
#include <cstdio>
#include <future>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace shredder;

/**
 * Push `total` pre-generated activations through a fresh server and
 * return its final counters.
 */
runtime::ServerStats
run_point(split::SplitModel& model, const core::NoiseCollection& coll,
          const std::vector<Tensor>& activations, std::int64_t max_batch)
{
    runtime::InferenceServerConfig cfg;
    cfg.max_batch = max_batch;
    // Generous straggler window: the submitter floods the queue, so
    // batches fill to the ceiling rather than waiting it out.
    cfg.batch_timeout_ms = 2.0;
    runtime::InferenceServer server(model, &coll, cfg);

    std::vector<std::future<Tensor>> futures;
    futures.reserve(activations.size());
    for (const Tensor& a : activations) {
        futures.push_back(server.submit(a));
    }
    for (auto& f : futures) {
        f.get();
    }
    const runtime::ServerStats stats = server.stats();
    server.shutdown();
    return stats;
}

}  // namespace

int
main()
{
    bench::banner("Serving: batched inference throughput at the cut");

    // Untrained LeNet: the serving data path (noise add + cloud
    // forward) is identical regardless of weight values, and skipping
    // pre-training keeps this benchmark self-contained and fast.
    Rng rng(4242);
    auto net = models::make_lenet(rng);
    const std::int64_t cut = split::conv_cut_points(*net).back();
    split::SplitModel model(*net, cut);
    const Shape act = model.activation_shape(Shape({1, 28, 28}));
    const Shape per_sample({act[1], act[2], act[3]});

    // A stored noise collection shaped like the cut's activation.
    core::NoiseCollection coll;
    for (int i = 0; i < 4; ++i) {
        core::NoiseSample sample;
        sample.noise = Tensor::laplace(per_sample, rng, 0.0f, 0.5f);
        coll.add(std::move(sample));
    }

    const std::int64_t total = bench::fast_mode() ? 64 : 512;
    std::vector<Tensor> activations;
    activations.reserve(static_cast<std::size_t>(total));
    for (std::int64_t i = 0; i < total; ++i) {
        activations.push_back(Tensor::normal(per_sample, rng));
    }

    std::printf("network lenet, cut %lld, activation %s, %lld requests"
                " per point\n",
                static_cast<long long>(cut),
                per_sample.to_string().c_str(),
                static_cast<long long>(total));
    std::printf("%10s %14s %16s %18s %18s\n", "max_batch", "req/sec",
                "mean batch", "batch exec ms", "queue wait ms");

    double first_rps = 0.0, last_rps = 0.0;
    for (const std::int64_t max_batch : {1, 8, 32}) {
        const runtime::ServerStats stats =
            run_point(model, coll, activations, max_batch);
        std::printf("%10lld %14.1f %16.2f %18.3f %18.3f\n",
                    static_cast<long long>(max_batch),
                    stats.requests_per_sec(), stats.mean_batch_size(),
                    stats.mean_batch_latency_ms(),
                    stats.mean_queue_wait_ms());
        std::fflush(stdout);
        if (first_rps == 0.0) {
            first_rps = stats.requests_per_sec();
        }
        last_rps = stats.requests_per_sec();
    }

    const double speedup = last_rps / first_rps;
    std::printf("\nbatch-32 vs batch-1 throughput: %.2fx\n", speedup);
    std::printf("Expected shape: requests/sec rises with max_batch as"
                " per-request\noverhead amortizes; under this flooded"
                " queue, per-request wait FALLS with\nmax_batch because"
                " each forward drains more of the backlog.\n");
    return 0;
}
