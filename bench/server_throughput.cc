/**
 * @file
 * Serving-path benchmark: requests/sec of the batched `InferenceServer`
 * across a (in-flight batches × batch ceiling) grid, through the
 * noised split pipeline (per-request noise draw + cloud-side forward
 * of the fused batch).
 *
 * Two independent scaling axes drive the ROADMAP's production-serving
 * goal:
 *
 *  - `max_batch` — batching amortizes the GEMM setup across requests,
 *    so throughput rises with the ceiling until the kernels saturate.
 *    This axis pays off even on a single core.
 *  - `in_flight` (= worker threads = pooled `ExecutionContext`s) —
 *    since the stateless-layer refactor, several cloud forwards run
 *    *concurrently on one set of weights*; this axis pays off with
 *    physical cores to spend. On a 1-core host the grid is expected to
 *    be flat along it (the core is already saturated) — the sweep
 *    records that honestly rather than simulating cores.
 *
 * Reported per grid point: completed requests/sec, mean fused batch
 * size, mean per-batch execution latency and mean per-request queue
 * wait. Results land in `BENCH_server.json` (or argv[1]) via the
 * shared `bench::JsonWriter`, alongside `BENCH_substrate.json` in the
 * repo's perf-trajectory record.
 *
 * Honors SHREDDER_BENCH_FAST=1 (fewer requests per sweep point).
 */
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace shredder;

/**
 * Push `total` pre-generated activations through a fresh server and
 * return its final counters.
 */
runtime::ServerStats
run_point(split::SplitModel& model, const core::NoiseCollection& coll,
          const std::vector<Tensor>& activations, std::int64_t max_batch,
          std::int64_t in_flight)
{
    runtime::InferenceServerConfig cfg;
    cfg.max_batch = max_batch;
    cfg.num_workers = static_cast<unsigned>(in_flight);
    cfg.max_concurrent_batches = in_flight;
    // Generous straggler window: the submitter floods the queue, so
    // batches fill to the ceiling rather than waiting it out.
    cfg.batch_timeout_ms = 2.0;
    runtime::InferenceServer server(model, &coll, cfg);

    std::vector<std::future<Tensor>> futures;
    futures.reserve(activations.size());
    for (const Tensor& a : activations) {
        futures.push_back(server.submit(a));
    }
    for (auto& f : futures) {
        f.get();
    }
    const runtime::ServerStats stats = server.stats();
    server.shutdown();
    return stats;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_server.json";

    bench::banner("Serving: concurrent batched inference at the cut");

    // Untrained LeNet: the serving data path (noise add + cloud
    // forward) is identical regardless of weight values, and skipping
    // pre-training keeps this benchmark self-contained and fast.
    Rng rng(4242);
    auto net = models::make_lenet(rng);
    const std::int64_t cut = split::conv_cut_points(*net).back();
    split::SplitModel model(*net, cut);
    const Shape act = model.activation_shape(Shape({1, 28, 28}));
    const Shape per_sample({act[1], act[2], act[3]});

    // A stored noise collection shaped like the cut's activation.
    core::NoiseCollection coll;
    for (int i = 0; i < 4; ++i) {
        core::NoiseSample sample;
        sample.noise = Tensor::laplace(per_sample, rng, 0.0f, 0.5f);
        coll.add(std::move(sample));
    }

    // Enough requests per point that each measurement spans tens of
    // milliseconds — at ~100k req/sec, 512 requests finish in ~5 ms,
    // which is pure scheduler noise.
    const std::int64_t total = bench::fast_mode() ? 128 : 8192;
    std::vector<Tensor> activations;
    activations.reserve(static_cast<std::size_t>(total));
    for (std::int64_t i = 0; i < total; ++i) {
        activations.push_back(Tensor::normal(per_sample, rng));
    }

    const unsigned hw_threads =
        std::max(1u, std::thread::hardware_concurrency());
    std::printf("network lenet, cut %lld, activation %s, %lld requests"
                " per point, hw_threads=%u\n",
                static_cast<long long>(cut),
                per_sample.to_string().c_str(),
                static_cast<long long>(total), hw_threads);
    std::printf("%9s %10s %14s %12s %16s %16s\n", "in_flight", "max_batch",
                "req/sec", "mean batch", "batch exec ms", "queue wait ms");

    bench::JsonWriter json;
    json.begin_object();
    json.key("schema");
    json.value("shredder-server-v1");
    json.key("generated");
    json.value(bench::now_iso8601());
    json.key("fast_mode");
    json.value(bench::fast_mode());
    json.key("compiler");
    json.value(__VERSION__);
    json.key("hw_threads");
    json.value(static_cast<std::int64_t>(hw_threads));
    json.key("requests_per_point");
    json.value(total);
    json.key("points");
    json.begin_array();

    // rps[in-flight index][max-batch index] for the scaling summary.
    const std::vector<std::int64_t> flights = {1, 2, 4};
    const std::vector<std::int64_t> batches = {1, 8, 32};
    std::vector<std::vector<double>> rps(
        flights.size(), std::vector<double>(batches.size(), 0.0));

    for (std::size_t fi = 0; fi < flights.size(); ++fi) {
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
            const runtime::ServerStats stats =
                run_point(model, coll, activations, batches[bi],
                          flights[fi]);
            rps[fi][bi] = stats.requests_per_sec();
            std::printf("%9lld %10lld %14.1f %12.2f %16.3f %16.3f\n",
                        static_cast<long long>(flights[fi]),
                        static_cast<long long>(batches[bi]),
                        stats.requests_per_sec(), stats.mean_batch_size(),
                        stats.mean_batch_latency_ms(),
                        stats.mean_queue_wait_ms());
            std::fflush(stdout);
            json.begin_object();
            json.key("in_flight");
            json.value(flights[fi]);
            json.key("max_batch");
            json.value(batches[bi]);
            json.key("req_per_sec");
            json.value(stats.requests_per_sec());
            json.key("mean_batch");
            json.value(stats.mean_batch_size());
            json.key("batch_exec_ms");
            json.value(stats.mean_batch_latency_ms());
            json.key("queue_wait_ms");
            json.value(stats.mean_queue_wait_ms());
            json.end_object();
        }
    }
    json.end_array();

    // Scaling summaries: batching at fixed concurrency, concurrency at
    // fixed batching (the best observed in-flight point vs 1).
    const double batch_scaling = rps[0][2] / rps[0][0];
    double best_concurrent = rps[0][1];
    for (std::size_t fi = 1; fi < flights.size(); ++fi) {
        best_concurrent = std::max(best_concurrent, rps[fi][1]);
    }
    const double concurrency_scaling = best_concurrent / rps[0][1];
    json.key("batch32_vs_batch1");
    json.value(batch_scaling);
    json.key("concurrency_best_vs_serial_at_batch8");
    json.value(concurrency_scaling);
    json.end_object();

    if (!json.write_file(json_path)) {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 1;
    }

    std::printf("\nbatch-32 vs batch-1 (1 in flight)  : %.2fx\n",
                batch_scaling);
    std::printf("best in-flight vs 1 (max_batch 8)   : %.2fx\n",
                concurrency_scaling);
    std::printf("wrote %s\n", json_path.c_str());
    std::printf("Expected shape: req/sec rises with max_batch as"
                " per-request overhead\namortizes; it rises with"
                " in_flight on multi-core hosts (concurrent\nforwards"
                " on shared weights) and stays ~flat on a single core,"
                "\nwhere any schedule saturates the one core.\n");
    return 0;
}
