/**
 * @file
 * google-benchmark microbenchmarks of the substrates: GEMM, conv
 * forward/backward, im2col, MI estimators, noise-training step and
 * channel serialization. These are the performance counters behind
 * the table/figure harness — useful when tuning the kernels.
 */
#include <benchmark/benchmark.h>

#include "src/shredder/shredder.h"

namespace {

using namespace shredder;

void
BM_Gemm(benchmark::State& state)
{
    const auto n = static_cast<std::int64_t>(state.range(0));
    Rng rng(1);
    Tensor a = Tensor::normal(Shape({n, n}), rng);
    Tensor b = Tensor::normal(Shape({n, n}), rng);
    Tensor c(Shape({n, n}));
    for (auto _ : state) {
        gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
             c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_ConvForward(benchmark::State& state)
{
    Rng rng(2);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 16;
    cfg.out_channels = 32;
    cfg.kernel = 3;
    cfg.padding = 1;
    nn::Conv2d conv(cfg, rng);
    Tensor x = Tensor::normal(Shape({8, 16, 16, 16}), rng);
    for (auto _ : state) {
        Tensor y = conv.forward(x, nn::Mode::kEval);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_ConvForward);

void
BM_ConvBackward(benchmark::State& state)
{
    Rng rng(3);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 16;
    cfg.out_channels = 32;
    cfg.kernel = 3;
    cfg.padding = 1;
    nn::Conv2d conv(cfg, rng);
    Tensor x = Tensor::normal(Shape({8, 16, 16, 16}), rng);
    Tensor y = conv.forward(x, nn::Mode::kEval);
    Tensor g = Tensor::normal(y.shape(), rng);
    for (auto _ : state) {
        conv.zero_grad();
        Tensor dx = conv.backward(g);
        benchmark::DoNotOptimize(dx.data());
    }
}
BENCHMARK(BM_ConvBackward);

void
BM_Im2col(benchmark::State& state)
{
    Rng rng(4);
    Tensor x = Tensor::normal(Shape({32, 32, 32}), rng);
    std::vector<float> col(
        static_cast<std::size_t>(32 * 9 * 32 * 32));
    for (auto _ : state) {
        im2col(x.data(), 32, 32, 32, 3, 3, 1, 1, 1, 1, col.data());
        benchmark::DoNotOptimize(col.data());
    }
}
BENCHMARK(BM_Im2col);

void
BM_LeNetInference(benchmark::State& state)
{
    Rng rng(5);
    auto net = models::make_lenet(rng);
    Tensor x = Tensor::normal(Shape({1, 1, 28, 28}), rng);
    for (auto _ : state) {
        Tensor y = net->forward(x, nn::Mode::kEval);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_LeNetInference);

void
BM_KsgEstimate(benchmark::State& state)
{
    const auto n = static_cast<std::int64_t>(state.range(0));
    Rng rng(6);
    Tensor x = Tensor::normal(Shape({n, 2}), rng);
    Tensor y = Tensor::normal(Shape({n, 2}), rng);
    info::KsgMiEstimator ksg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ksg.estimate(x, y));
    }
}
BENCHMARK(BM_KsgEstimate)->Arg(256)->Arg(512);

void
BM_HistogramMi(benchmark::State& state)
{
    Rng rng(7);
    std::vector<float> x(4096), y(4096);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = rng.normal();
        y[i] = 0.5f * x[i] + rng.normal();
    }
    info::HistogramMiEstimator hist;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hist.estimate(x, y));
    }
}
BENCHMARK(BM_HistogramMi);

void
BM_DimwiseMi(benchmark::State& state)
{
    Rng rng(8);
    Tensor x = Tensor::normal(Shape({256, 64}), rng);
    Tensor a = Tensor::normal(Shape({256, 128}), rng);
    info::DimwiseMiEstimator est;
    for (auto _ : state) {
        benchmark::DoNotOptimize(est.estimate(x, a));
    }
}
BENCHMARK(BM_DimwiseMi);

void
BM_NoiseApply(benchmark::State& state)
{
    Rng rng(9);
    core::NoiseInit init;
    core::NoiseTensor noise(Shape({120, 1, 1}), init);
    Tensor act = Tensor::normal(Shape({32, 120, 1, 1}), rng);
    for (auto _ : state) {
        Tensor out = noise.apply(act);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_NoiseApply);

void
BM_ChannelRoundTrip(benchmark::State& state)
{
    Rng rng(10);
    Tensor t = Tensor::normal(Shape({1, 64, 8, 8}), rng);
    for (auto _ : state) {
        split::QuantizingChannel ch;
        ch.send(t);
        Tensor u = ch.receive();
        benchmark::DoNotOptimize(u.data());
    }
    state.SetBytesProcessed(state.iterations() * t.size() *
                            static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_ChannelRoundTrip);

void
BM_LaplaceSampling(benchmark::State& state)
{
    Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.laplace(0.0f, 1.0f));
    }
}
BENCHMARK(BM_LaplaceSampling);

}  // namespace

BENCHMARK_MAIN();
