/**
 * @file
 * Substrate benchmark: the repo's performance counters, machine-readable.
 *
 * Measures the compute substrate every other binary bottlenecks on —
 * GEMM across sizes that cross the cache hierarchy, all four transpose
 * combinations, conv forward/backward, end-to-end LeNet inference and
 * the batched `InferenceServer` — and writes `BENCH_substrate.json`
 * (path = argv[1], default `BENCH_substrate.json`) so the perf
 * trajectory accumulates across PRs. A frozen copy of the seed's
 * k-blocked kernel runs alongside the packed kernel, so every report
 * carries its own baseline: `speedup` is measured, not remembered.
 *
 * Honors SHREDDER_BENCH_FAST=1 (smaller sweep, shorter timing windows)
 * for CI smoke runs. See docs/PERFORMANCE.md for how to read the JSON.
 */
#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace shredder;

// ---------------------------------------------------------------------------
// Frozen seed kernel (PR 1's gemm): k-blocked i-k-j loop, transposes
// materialized. Kept verbatim as the speedup baseline; do not "fix".
// ---------------------------------------------------------------------------

void
seed_gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float* c)
{
    constexpr std::int64_t kBlockK = 256;
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::int64_t k1 = std::min(k, k0 + kBlockK);
        for (std::int64_t i = 0; i < m; ++i) {
            float* crow = c + i * n;
            const float* arow = a + i * k;
            for (std::int64_t kk = k0; kk < k1; ++kk) {
                const float av = alpha * arow[kk];
                const float* brow = b + kk * n;
                for (std::int64_t j = 0; j < n; ++j) {
                    crow[j] += av * brow[j];
                }
            }
        }
    }
}

void
seed_gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c)
{
    const std::int64_t cn = m * n;
    if (beta == 0.0f) {
        std::fill(c, c + cn, 0.0f);
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < cn; ++i) {
            c[i] *= beta;
        }
    }
    if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) {
        return;
    }
    std::vector<float> a_pack;
    const float* a_nn = a;
    if (trans_a) {
        a_pack.resize(static_cast<std::size_t>(m * k));
        for (std::int64_t i = 0; i < k; ++i) {
            for (std::int64_t j = 0; j < m; ++j) {
                a_pack[static_cast<std::size_t>(j * k + i)] = a[i * m + j];
            }
        }
        a_nn = a_pack.data();
    }
    std::vector<float> b_pack;
    const float* b_nn = b;
    if (trans_b) {
        b_pack.resize(static_cast<std::size_t>(k * n));
        for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < k; ++j) {
                b_pack[static_cast<std::size_t>(j * n + i)] = b[i * k + j];
            }
        }
        b_nn = b_pack.data();
    }
    seed_gemm_nn(m, n, k, alpha, a_nn, b_nn, c);
}

// ---------------------------------------------------------------------------
// Measurements
// ---------------------------------------------------------------------------

double
gflops(double flops, double seconds)
{
    return flops / seconds * 1e-9;
}

/** GFLOP/s of one kernel at m=n=k=size for one transpose combo. */
template <typename Gemm>
double
measure_gemm(Gemm&& kernel, bool ta, bool tb, std::int64_t size)
{
    Rng rng(17 + size);
    Tensor a = Tensor::normal(Shape({size, size}), rng);
    Tensor b = Tensor::normal(Shape({size, size}), rng);
    Tensor c(Shape({size, size}));
    const double sec = bench::time_loop(
        [&] {
            kernel(ta, tb, size, size, size, 1.0f, a.data(), b.data(), 0.0f,
                   c.data());
        },
        bench::measure_seconds());
    return gflops(2.0 * static_cast<double>(size) * size * size, sec);
}

struct ConvTimes
{
    double fwd_ms = 0.0;
    double bwd_ms = 0.0;
    double fwd_gflops = 0.0;
};

/** Conv2d 16→32, 3×3, pad 1 on an 8×16×16×16 batch (PR-1 shape). */
ConvTimes
measure_conv()
{
    Rng rng(2);
    nn::Conv2dConfig cfg;
    cfg.in_channels = 16;
    cfg.out_channels = 32;
    cfg.kernel = 3;
    cfg.padding = 1;
    nn::Conv2d conv(cfg, rng);
    Tensor x = Tensor::normal(Shape({8, 16, 16, 16}), rng);
    nn::ExecutionContext ctx;
    ConvTimes out;
    out.fwd_ms = bench::time_loop(
                     [&] {
                         Tensor y = conv.forward(x, ctx, nn::Mode::kEval);
                     },
                     bench::measure_seconds()) *
                 1e3;
    Tensor y = conv.forward(x, ctx, nn::Mode::kTrain);
    Tensor g = Tensor::normal(y.shape(), rng);
    out.bwd_ms = bench::time_loop(
                     [&] {
                         conv.zero_grad();
                         Tensor dx = conv.backward(g, ctx);
                     },
                     bench::measure_seconds()) *
                 1e3;
    const double fwd_flops =
        2.0 * static_cast<double>(x.shape()[0]) * conv.macs(x.shape());
    out.fwd_gflops = gflops(fwd_flops, out.fwd_ms * 1e-3);
    return out;
}

/** Single-image LeNet forward latency in milliseconds. */
double
measure_lenet_ms()
{
    Rng rng(5);
    auto net = models::make_lenet(rng);
    Tensor x = Tensor::normal(Shape({1, 1, 28, 28}), rng);
    nn::ExecutionContext ctx;
    return bench::time_loop(
               [&] {
                   Tensor y = net->forward(x, ctx, nn::Mode::kEval);
               },
               bench::measure_seconds()) *
           1e3;
}

struct ServerPoint
{
    std::int64_t max_batch = 0;
    double req_per_sec = 0.0;
    double mean_batch = 0.0;
};

/** InferenceServer req/sec at the LeNet last-conv cut (flooded queue). */
std::vector<ServerPoint>
measure_server()
{
    Rng rng(4242);
    auto net = models::make_lenet(rng);
    const std::int64_t cut = split::conv_cut_points(*net).back();
    split::SplitModel model(*net, cut);
    const Shape act = model.activation_shape(Shape({1, 28, 28}));
    const Shape per_sample({act[1], act[2], act[3]});

    core::NoiseCollection coll;
    for (int i = 0; i < 4; ++i) {
        core::NoiseSample sample;
        sample.noise = Tensor::laplace(per_sample, rng, 0.0f, 0.5f);
        coll.add(std::move(sample));
    }

    const std::int64_t total = bench::fast_mode() ? 64 : 256;
    std::vector<Tensor> activations;
    activations.reserve(static_cast<std::size_t>(total));
    for (std::int64_t i = 0; i < total; ++i) {
        activations.push_back(Tensor::normal(per_sample, rng));
    }

    std::vector<ServerPoint> points;
    for (const std::int64_t max_batch : {1, 8, 32}) {
        runtime::InferenceServerConfig cfg;
        cfg.max_batch = max_batch;
        cfg.batch_timeout_ms = 2.0;
        runtime::InferenceServer server(model, &coll, cfg);
        std::vector<std::future<Tensor>> futures;
        futures.reserve(activations.size());
        for (const Tensor& a : activations) {
            futures.push_back(server.submit(a));
        }
        for (auto& f : futures) {
            f.get();
        }
        const runtime::ServerStats stats = server.stats();
        server.shutdown();
        points.push_back(
            {max_batch, stats.requests_per_sec(), stats.mean_batch_size()});
    }
    return points;
}

constexpr const char* kComboNames[4] = {"nn", "nt", "tn", "tt"};

}  // namespace

int
main(int argc, char** argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_substrate.json";

    bench::banner("Substrate: packed GEMM / conv / serving counters");
    std::printf("fast_mode=%d  hw_threads=%u  output=%s\n",
                bench::fast_mode() ? 1 : 0,
                std::max(1u, std::thread::hardware_concurrency()),
                json_path.c_str());

    bench::JsonWriter json;
    json.begin_object();
    json.key("schema");
    json.value("shredder-substrate-v1");
    json.key("generated");
    json.value(bench::now_iso8601());
    json.key("fast_mode");
    json.value(bench::fast_mode());
    json.key("compiler");
    json.value(__VERSION__);
    json.key("hw_threads");
    json.value(static_cast<std::int64_t>(
        std::max(1u, std::thread::hardware_concurrency())));

    // --- GEMM size sweep (NN), packed kernel vs frozen seed kernel ---
    std::vector<std::int64_t> sizes = bench::fast_mode()
                                          ? std::vector<std::int64_t>{64, 256}
                                          : std::vector<std::int64_t>{
                                                48, 64, 128, 192, 256, 384,
                                                512};
    std::printf("\nGEMM m=n=k sweep (not transposed):\n");
    std::printf("%8s %14s %14s %10s\n", "size", "packed GF/s", "seed GF/s",
                "speedup");
    json.key("gemm_nn");
    json.begin_array();
    for (const std::int64_t size : sizes) {
        const double packed = measure_gemm(gemm, false, false, size);
        const double seed = measure_gemm(seed_gemm, false, false, size);
        std::printf("%8lld %14.2f %14.2f %9.2fx\n",
                    static_cast<long long>(size), packed, seed,
                    packed / seed);
        json.begin_object();
        json.key("size");
        json.value(size);
        json.key("gflops");
        json.value(packed);
        json.key("seed_gflops");
        json.value(seed);
        json.key("speedup");
        json.value(packed / seed);
        json.end_object();
        std::fflush(stdout);
    }
    json.end_array();

    // --- Transpose combos at a fixed size ---
    const std::int64_t tsize = bench::fast_mode() ? 128 : 256;
    std::printf("\nGEMM transpose combos at m=n=k=%lld:\n",
                static_cast<long long>(tsize));
    std::printf("%8s %14s %14s %10s\n", "combo", "packed GF/s", "seed GF/s",
                "speedup");
    json.key("gemm_trans");
    json.begin_array();
    for (int combo = 0; combo < 4; ++combo) {
        const bool ta = (combo & 2) != 0;
        const bool tb = (combo & 1) != 0;
        const double packed = measure_gemm(gemm, ta, tb, tsize);
        const double seed = measure_gemm(seed_gemm, ta, tb, tsize);
        std::printf("%8s %14.2f %14.2f %9.2fx\n", kComboNames[combo], packed,
                    seed, packed / seed);
        json.begin_object();
        json.key("combo");
        json.value(kComboNames[combo]);
        json.key("size");
        json.value(tsize);
        json.key("gflops");
        json.value(packed);
        json.key("seed_gflops");
        json.value(seed);
        json.key("speedup");
        json.value(packed / seed);
        json.end_object();
        std::fflush(stdout);
    }
    json.end_array();

    // --- Conv2d forward/backward ---
    const ConvTimes conv = measure_conv();
    std::printf("\nConv2d 16→32 3×3 pad1, batch 8×16×16: fwd %.3f ms"
                " (%.2f GF/s), bwd %.3f ms\n",
                conv.fwd_ms, conv.fwd_gflops, conv.bwd_ms);
    json.key("conv");
    json.begin_object();
    json.key("fwd_ms");
    json.value(conv.fwd_ms);
    json.key("fwd_gflops");
    json.value(conv.fwd_gflops);
    json.key("bwd_ms");
    json.value(conv.bwd_ms);
    json.end_object();

    // --- End-to-end model latency ---
    const double lenet_ms = measure_lenet_ms();
    std::printf("LeNet batch-1 inference: %.3f ms\n", lenet_ms);
    json.key("lenet_infer_ms");
    json.value(lenet_ms);

    // --- Fused noise-add GEMM (the fp32 serving fast path) ---
    //
    // gemm_rows_fused folds the policy's additive noise into the
    // A-panel packing pass; the baseline is what the general serving
    // path does — materialize activation+noise into a batch buffer,
    // then GEMM + bias. Same FLOPs, one fewer memory pass.
    {
        const std::int64_t fm = 8;  // serving batch
        const std::int64_t fn = bench::fast_mode() ? 128 : 256;
        const std::int64_t fk = bench::fast_mode() ? 512 : 2048;
        Rng frng(23);
        std::vector<Tensor> acts;
        std::vector<Tensor> noise;
        std::vector<const float*> a_rows;
        std::vector<const float*> a_noise;
        for (std::int64_t i = 0; i < fm; ++i) {
            acts.push_back(Tensor::normal(Shape({fk}), frng));
            noise.push_back(Tensor::normal(Shape({fk}), frng));
        }
        for (std::int64_t i = 0; i < fm; ++i) {
            a_rows.push_back(acts[static_cast<std::size_t>(i)].data());
            a_noise.push_back(noise[static_cast<std::size_t>(i)].data());
        }
        Tensor w = Tensor::normal(Shape({fn, fk}), frng);
        Tensor bias = Tensor::normal(Shape({fn}), frng);
        Tensor c(Shape({fm, fn}));
        const double flops = 2.0 * static_cast<double>(fm) *
                             static_cast<double>(fn) *
                             static_cast<double>(fk);
        const double fused_sec = bench::time_loop(
            [&] {
                gemm_rows_fused(fm, fn, fk, a_rows.data(), a_noise.data(),
                                w.data(), bias.data(), c.data());
            },
            bench::measure_seconds());
        Tensor fused_buf(Shape({fm, fk}));
        const double unfused_sec = bench::time_loop(
            [&] {
                float* fb = fused_buf.data();
                for (std::int64_t i = 0; i < fm; ++i) {
                    const float* ar = a_rows[static_cast<std::size_t>(i)];
                    const float* nr = a_noise[static_cast<std::size_t>(i)];
                    for (std::int64_t p = 0; p < fk; ++p) {
                        fb[i * fk + p] = ar[p] + nr[p];
                    }
                }
                gemm(false, true, fm, fn, fk, 1.0f, fused_buf.data(),
                     w.data(), 0.0f, c.data());
                float* cp = c.data();
                const float* bp = bias.data();
                for (std::int64_t i = 0; i < fm; ++i) {
                    for (std::int64_t j = 0; j < fn; ++j) {
                        cp[i * fn + j] += bp[j];
                    }
                }
            },
            bench::measure_seconds());
        const double fused_gf = gflops(flops, fused_sec);
        const double unfused_gf = gflops(flops, unfused_sec);
        std::printf("\nFused noise-add GEMM %lldx%lldx%lld: fused %.2f "
                    "GF/s, apply-then-GEMM %.2f GF/s (%.2fx)\n",
                    static_cast<long long>(fm), static_cast<long long>(fn),
                    static_cast<long long>(fk), fused_gf, unfused_gf,
                    fused_gf / unfused_gf);
        json.key("gemm_fused_noise");
        json.begin_object();
        json.key("m");
        json.value(fm);
        json.key("n");
        json.value(fn);
        json.key("k");
        json.value(fk);
        json.key("fused_gflops");
        json.value(fused_gf);
        json.key("unfused_gflops");
        json.value(unfused_gf);
        json.key("speedup");
        json.value(fused_gf / unfused_gf);
        json.end_object();
    }

    // --- Serving throughput ---
    std::printf("\nInferenceServer at the LeNet last-conv cut:\n");
    std::printf("%10s %14s %12s\n", "max_batch", "req/sec", "mean batch");
    json.key("server");
    json.begin_array();
    for (const ServerPoint& p : measure_server()) {
        std::printf("%10lld %14.1f %12.2f\n",
                    static_cast<long long>(p.max_batch), p.req_per_sec,
                    p.mean_batch);
        json.begin_object();
        json.key("max_batch");
        json.value(p.max_batch);
        json.key("req_per_sec");
        json.value(p.req_per_sec);
        json.key("mean_batch");
        json.value(p.mean_batch);
        json.end_object();
    }
    json.end_array();
    json.end_object();

    if (!json.write_file(json_path)) {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
