/**
 * @file
 * Umbrella header: the whole public Shredder API in one include.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   auto bench = shredder::models::make_benchmark("lenet");
 *   shredder::split::SplitModel split(*bench.net, bench.last_conv_cut);
 *   shredder::core::NoiseTrainer trainer(split, *bench.train_set, cfg);
 *   auto learned = trainer.train();
 */
#ifndef SHREDDER_SHREDDER_H
#define SHREDDER_SHREDDER_H

// Runtime
#include "src/runtime/batch_controller.h"
#include "src/runtime/inference_server.h"
#include "src/runtime/logging.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_engine.h"
#include "src/runtime/serving_error.h"
#include "src/runtime/stopwatch.h"
#include "src/runtime/thread_pool.h"

// Tensor substrate
#include "src/tensor/gemm.h"
#include "src/tensor/im2col.h"
#include "src/tensor/ops.h"
#include "src/tensor/rng.h"
#include "src/tensor/serialize.h"
#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

// Neural-network substrate
#include "src/nn/activations.h"
#include "src/nn/arch.h"
#include "src/nn/conv2d.h"
#include "src/nn/dropout.h"
#include "src/nn/execution_context.h"
#include "src/nn/extras.h"
#include "src/nn/flatten.h"
#include "src/nn/init.h"
#include "src/nn/layer.h"
#include "src/nn/linear.h"
#include "src/nn/loss.h"
#include "src/nn/lrn.h"
#include "src/nn/optimizer.h"
#include "src/nn/parameter.h"
#include "src/nn/pool.h"
#include "src/nn/sequential.h"

// Synthetic data substrate
#include "src/data/dataloader.h"
#include "src/data/dataset.h"
#include "src/data/digits.h"
#include "src/data/objects.h"
#include "src/data/street_digits.h"
#include "src/data/textures.h"

// Information-theory substrate
#include "src/info/dimwise.h"
#include "src/info/gaussian.h"
#include "src/info/histogram_mi.h"
#include "src/info/ksg.h"
#include "src/info/snr.h"

// Split execution substrate
#include "src/split/channel.h"
#include "src/split/cost_model.h"
#include "src/split/split_model.h"

// Model zoo
#include "src/models/benchmark.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"

// Attack baselines (privacy validation)
#include "src/attacks/reconstruction.h"

// Deployment artifacts (train → ship → serve)
#include "src/deploy/bundle.h"

// Network front door (SHRQ/SHRP activation protocol)
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/net/socket.h"

// Shredder core (the paper's contribution)
#include "src/core/lambda_controller.h"
#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/core/noise_tensor.h"
#include "src/core/noise_trainer.h"
#include "src/core/pipeline.h"
#include "src/core/privacy_meter.h"
#include "src/core/shredder_loss.h"

#endif  // SHREDDER_SHREDDER_H
