/**
 * @file
 * Pre-training harness for the zoo networks.
 *
 * Shredder assumes a *pre-trained* f(x, θ); since no published weights
 * can be shipped, this trainer produces them from the synthetic
 * datasets, after which the weights are frozen for all noise-learning
 * experiments.
 */
#ifndef SHREDDER_MODELS_TRAINER_H
#define SHREDDER_MODELS_TRAINER_H

#include <string>

#include "src/data/dataloader.h"
#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace models {

/** Knobs for the pre-training loop. */
struct TrainConfig
{
    int max_epochs = 5;
    std::int64_t batch_size = 32;
    float learning_rate = 1e-3f;
    float lr_decay_per_epoch = 0.7f;
    /** Stop once test accuracy reaches this level (0 disables). */
    double target_accuracy = 0.0;
    /** Cap on batches per epoch (0 = full epoch). */
    std::int64_t max_batches_per_epoch = 0;
    /** Samples used for the per-epoch test evaluation. */
    std::int64_t eval_samples = 512;
    bool verbose = true;
};

/** What the training loop achieved. */
struct TrainReport
{
    double epochs_run = 0.0;
    double final_train_accuracy = 0.0;
    double test_accuracy = 0.0;
    double seconds = 0.0;
};

/**
 * Train `net` on `train_set` with Adam + cross-entropy.
 *
 * @returns Achieved accuracies and wall-clock cost.
 */
TrainReport train_model(nn::Sequential& net, const data::Dataset& train_set,
                        const data::Dataset& test_set,
                        const TrainConfig& config, Rng& rng);

/**
 * Top-1 accuracy of `net` over the first `max_samples` of `ds`
 * (kEval mode, batched).
 */
double evaluate_accuracy(nn::Sequential& net, const data::Dataset& ds,
                         std::int64_t max_samples = 0,
                         std::int64_t batch_size = 64);

}  // namespace models
}  // namespace shredder

#endif  // SHREDDER_MODELS_TRAINER_H
