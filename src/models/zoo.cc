#include "src/models/zoo.h"

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/linear.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace models {

namespace {

nn::Conv2dConfig
conv(std::int64_t in, std::int64_t out, std::int64_t k, std::int64_t stride,
     std::int64_t pad)
{
    nn::Conv2dConfig c;
    c.in_channels = in;
    c.out_channels = out;
    c.kernel = k;
    c.stride = stride;
    c.padding = pad;
    return c;
}

nn::PoolConfig
pool(std::int64_t k, std::int64_t stride)
{
    nn::PoolConfig p;
    p.kernel = k;
    p.stride = stride;
    return p;
}

}  // namespace

std::unique_ptr<nn::Sequential>
make_lenet(Rng& rng)
{
    auto net = std::make_unique<nn::Sequential>();
    // C1 (Conv0): 1×28×28 → 6×28×28
    net->emplace<nn::Conv2d>(conv(1, 6, 5, 1, 2), rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(pool(2, 2));  // → 6×14×14
    // C3 (Conv1): → 16×10×10
    net->emplace<nn::Conv2d>(conv(6, 16, 5, 1, 0), rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(pool(2, 2));  // → 16×5×5
    // C5 (Conv2): → 120×1×1 — the paper's last-conv cutting point.
    net->emplace<nn::Conv2d>(conv(16, 120, 5, 1, 0), rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Flatten>();
    net->emplace<nn::Linear>(120, 84, rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Linear>(84, 10, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
make_cifar_net(Rng& rng)
{
    auto net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Conv2d>(conv(3, 32, 3, 1, 1), rng);  // Conv0
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(pool(2, 2));  // → 32×16×16
    net->emplace<nn::Conv2d>(conv(32, 48, 3, 1, 1), rng);  // Conv1
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(pool(2, 2));  // → 48×8×8
    net->emplace<nn::Conv2d>(conv(48, 64, 3, 1, 1), rng);  // Conv2 (last)
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(pool(2, 2));  // → 64×4×4
    net->emplace<nn::Flatten>();
    net->emplace<nn::Linear>(64 * 4 * 4, 128, rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Dropout>(0.25f);
    net->emplace<nn::Linear>(128, 10, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
make_svhn_net(Rng& rng)
{
    auto net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Conv2d>(conv(3, 32, 3, 1, 1), rng);  // Conv0, 32×32
    net->emplace<nn::ReLU>();
    net->emplace<nn::Conv2d>(conv(32, 32, 3, 1, 1), rng);  // Conv1
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(pool(2, 2));  // → 16×16
    net->emplace<nn::Conv2d>(conv(32, 48, 3, 1, 1), rng);  // Conv2
    net->emplace<nn::ReLU>();
    net->emplace<nn::Conv2d>(conv(48, 48, 3, 1, 1), rng);  // Conv3
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(pool(2, 2));  // → 8×8
    net->emplace<nn::Conv2d>(conv(48, 64, 3, 1, 1), rng);  // Conv4
    net->emplace<nn::ReLU>();
    net->emplace<nn::Conv2d>(conv(64, 64, 3, 1, 1), rng);  // Conv5
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(pool(2, 2));  // → 4×4
    // Conv6: bottleneck with a far smaller output volume (16×4×4).
    net->emplace<nn::Conv2d>(conv(64, 16, 3, 1, 1), rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Flatten>();
    net->emplace<nn::Linear>(16 * 4 * 4, 128, rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Dropout>(0.25f);
    net->emplace<nn::Linear>(128, 10, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
make_alexnet(Rng& rng, std::int64_t num_classes)
{
    SHREDDER_REQUIRE(num_classes >= 2, "alexnet needs >= 2 classes");
    auto net = std::make_unique<nn::Sequential>();
    // Conv1 + LRN + overlapping pool: 3×64×64 → 32×32×32 → 32×15×15
    net->emplace<nn::Conv2d>(conv(3, 32, 5, 2, 2), rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::LocalResponseNorm>(nn::LrnConfig{});
    net->emplace<nn::MaxPool2d>(pool(3, 2));
    // Conv2 + LRN + pool: → 64×15×15 → 64×7×7
    net->emplace<nn::Conv2d>(conv(32, 64, 5, 1, 2), rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::LocalResponseNorm>(nn::LrnConfig{});
    net->emplace<nn::MaxPool2d>(pool(3, 2));
    // Conv3–Conv5: 7×7 feature maps
    net->emplace<nn::Conv2d>(conv(64, 64, 3, 1, 1), rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Conv2d>(conv(64, 48, 3, 1, 1), rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Conv2d>(conv(48, 48, 3, 1, 1), rng);  // last conv
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(pool(3, 2));  // → 48×3×3
    net->emplace<nn::Flatten>();
    net->emplace<nn::Linear>(48 * 3 * 3, 256, rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Dropout>(0.5f);
    net->emplace<nn::Linear>(256, 128, rng);
    net->emplace<nn::ReLU>();
    net->emplace<nn::Dropout>(0.5f);
    net->emplace<nn::Linear>(128, num_classes, rng);
    return net;
}

Shape
input_shape_for(const std::string& name)
{
    if (name == "lenet") {
        return Shape({1, 28, 28});
    }
    if (name == "cifar" || name == "svhn") {
        return Shape({3, 32, 32});
    }
    if (name == "alexnet") {
        return Shape({3, 64, 64});
    }
    SHREDDER_FATAL("unknown network name '", name, "'");
}

std::unique_ptr<nn::Sequential>
make_network(const std::string& name, Rng& rng)
{
    if (name == "lenet") {
        return make_lenet(rng);
    }
    if (name == "cifar") {
        return make_cifar_net(rng);
    }
    if (name == "svhn") {
        return make_svhn_net(rng);
    }
    if (name == "alexnet") {
        return make_alexnet(rng);
    }
    SHREDDER_FATAL("unknown network name '", name, "'");
}

}  // namespace models
}  // namespace shredder
