/**
 * @file
 * Benchmark bundles: (pre-trained network, dataset pair, cut points)
 * for each of the paper's four workloads, with checkpoint caching so
 * the expensive pre-training happens once per machine.
 */
#ifndef SHREDDER_MODELS_BENCHMARK_H
#define SHREDDER_MODELS_BENCHMARK_H

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/trainer.h"
#include "src/nn/sequential.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace models {

/** Everything an experiment needs for one workload. */
struct Benchmark
{
    std::string name;  ///< "lenet" | "cifar" | "svhn" | "alexnet".
    std::unique_ptr<nn::Sequential> net;
    std::unique_ptr<data::Dataset> train_set;
    std::unique_ptr<data::Dataset> test_set;
    Shape input_shape;                      ///< CHW.
    std::vector<std::int64_t> conv_cuts;    ///< After Conv0, Conv1, ….
    std::int64_t last_conv_cut = 0;         ///< The paper's default cut.
    double baseline_accuracy = 0.0;         ///< Test accuracy of f.
};

/** Options controlling benchmark construction. */
struct BenchmarkOptions
{
    std::int64_t train_count = 0;  ///< 0 = per-workload default.
    std::int64_t test_count = 0;   ///< 0 = per-workload default.
    /** Checkpoint cache directory ("" = SHREDDER_CACHE env or .cache). */
    std::string cache_dir;
    bool force_retrain = false;
    bool verbose = true;
    std::uint64_t seed = 42;
};

/**
 * Build (and pre-train, or load from cache) one benchmark workload.
 *
 * @param name  "lenet", "cifar", "svhn" or "alexnet".
 */
Benchmark make_benchmark(const std::string& name,
                         const BenchmarkOptions& options = {});

/** The four paper workload names in Table 1 order. */
const std::vector<std::string>& benchmark_names();

}  // namespace models
}  // namespace shredder

#endif  // SHREDDER_MODELS_BENCHMARK_H
