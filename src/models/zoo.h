/**
 * @file
 * The benchmark networks of the paper (§3): LeNet, a CIFAR-10 CNN, an
 * SVHN CNN with seven convolution layers (Conv0–Conv6, matching the
 * cutting-point figures), and a dimension-scaled AlexNet.
 *
 * Topologies follow the paper's networks; AlexNet is width/input
 * scaled for CPU-only experimentation (documented in DESIGN.md §2) —
 * 5 convolutions, LRN after the first two, overlapping 3×3/s2 max
 * pooling and a 3-layer classifier are preserved.
 */
#ifndef SHREDDER_MODELS_ZOO_H
#define SHREDDER_MODELS_ZOO_H

#include <memory>
#include <string>

#include "src/nn/sequential.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace models {

/**
 * LeNet-5 for 1×28×28 inputs: three convolutions (C1, C3, C5 — the
 * paper's Conv0/1/2), two subsampling stages and a two-layer
 * classifier.
 */
std::unique_ptr<nn::Sequential> make_lenet(Rng& rng);

/** 3-conv CIFAR-10-style CNN for 3×32×32 inputs, 10 classes. */
std::unique_ptr<nn::Sequential> make_cifar_net(Rng& rng);

/**
 * 7-conv SVHN CNN for 3×32×32 inputs. Conv6 deliberately has a much
 * smaller output volume than its predecessors — the property §3.4
 * exploits when it picks Conv6 as the cutting point.
 */
std::unique_ptr<nn::Sequential> make_svhn_net(Rng& rng);

/**
 * Dimension-scaled AlexNet for 3×64×64 inputs.
 *
 * @param num_classes  Classifier width (default 16 for the textures
 *                     dataset).
 */
std::unique_ptr<nn::Sequential> make_alexnet(Rng& rng,
                                             std::int64_t num_classes = 16);

/** Input CHW shape each zoo network expects. */
Shape input_shape_for(const std::string& name);

/** Build a zoo network by name ("lenet", "cifar", "svhn", "alexnet"). */
std::unique_ptr<nn::Sequential> make_network(const std::string& name,
                                             Rng& rng);

}  // namespace models
}  // namespace shredder

#endif  // SHREDDER_MODELS_ZOO_H
