#include "src/models/benchmark.h"

#include <cstdlib>
#include <filesystem>

#include "src/data/digits.h"
#include "src/data/objects.h"
#include "src/data/street_digits.h"
#include "src/data/textures.h"
#include "src/models/zoo.h"
#include "src/runtime/logging.h"
#include "src/split/split_model.h"

namespace shredder {
namespace models {

namespace {

/** Per-workload dataset construction and training defaults. */
struct WorkloadSpec
{
    std::int64_t train_count;
    std::int64_t test_count;
    int max_epochs;
    double target_accuracy;
    float learning_rate;
};

WorkloadSpec
spec_for(const std::string& name)
{
    if (name == "lenet") {
        return {6000, 1500, 5, 0.97, 1e-3f};
    }
    if (name == "cifar") {
        return {5000, 1200, 4, 0.95, 1e-3f};
    }
    if (name == "svhn") {
        return {4000, 1200, 4, 0.93, 1e-3f};
    }
    if (name == "alexnet") {
        return {2500, 800, 7, 0.90, 1e-3f};
    }
    SHREDDER_FATAL("unknown benchmark '", name, "'");
}

std::unique_ptr<data::Dataset>
make_dataset(const std::string& name, std::int64_t count,
             std::uint64_t seed)
{
    if (name == "lenet") {
        data::DigitsConfig c;
        c.count = count;
        c.seed = seed;
        return std::make_unique<data::DigitsDataset>(c);
    }
    if (name == "cifar") {
        data::ObjectsConfig c;
        c.count = count;
        c.seed = seed;
        return std::make_unique<data::ObjectsDataset>(c);
    }
    if (name == "svhn") {
        data::StreetDigitsConfig c;
        c.count = count;
        c.seed = seed;
        return std::make_unique<data::StreetDigitsDataset>(c);
    }
    if (name == "alexnet") {
        data::TexturesConfig c;
        c.count = count;
        c.seed = seed;
        return std::make_unique<data::TexturesDataset>(c);
    }
    SHREDDER_FATAL("unknown benchmark '", name, "'");
}

std::string
resolve_cache_dir(const std::string& requested)
{
    if (!requested.empty()) {
        return requested;
    }
    if (const char* env = std::getenv("SHREDDER_CACHE")) {
        return env;
    }
    return ".cache";
}

}  // namespace

const std::vector<std::string>&
benchmark_names()
{
    static const std::vector<std::string> names{"lenet", "cifar", "svhn",
                                                "alexnet"};
    return names;
}

Benchmark
make_benchmark(const std::string& name, const BenchmarkOptions& options)
{
    const WorkloadSpec spec = spec_for(name);
    const std::int64_t train_count =
        options.train_count > 0 ? options.train_count : spec.train_count;
    const std::int64_t test_count =
        options.test_count > 0 ? options.test_count : spec.test_count;

    Benchmark b;
    b.name = name;
    Rng rng(options.seed);
    b.net = make_network(name, rng);
    b.input_shape = input_shape_for(name);
    // Distinct seeds keep the train and test splits disjoint.
    b.train_set = make_dataset(name, train_count, options.seed * 31 + 1);
    b.test_set = make_dataset(name, test_count, options.seed * 31 + 2);
    b.conv_cuts = split::conv_cut_points(*b.net);
    SHREDDER_CHECK(!b.conv_cuts.empty(), "network has no conv cut points");
    b.last_conv_cut = b.conv_cuts.back();

    const std::string cache_dir = resolve_cache_dir(options.cache_dir);
    std::filesystem::create_directories(cache_dir);
    const std::string ckpt = cache_dir + "/" + name + ".ckpt";

    bool loaded = false;
    if (!options.force_retrain && std::filesystem::exists(ckpt)) {
        b.net->load_checkpoint(ckpt);
        loaded = true;
        if (options.verbose) {
            inform("benchmark '", name, "': loaded checkpoint ", ckpt);
        }
    }
    if (!loaded) {
        TrainConfig cfg;
        cfg.max_epochs = spec.max_epochs;
        cfg.target_accuracy = spec.target_accuracy;
        cfg.learning_rate = spec.learning_rate;
        cfg.verbose = options.verbose;
        if (options.verbose) {
            inform("benchmark '", name, "': pre-training on ", train_count,
                   " samples…");
        }
        Rng train_rng = rng.fork();
        const TrainReport report = train_model(
            *b.net, *b.train_set, *b.test_set, cfg, train_rng);
        if (options.verbose) {
            inform("benchmark '", name, "': pre-trained to test_acc=",
                   report.test_accuracy, " in ", report.seconds, "s");
        }
        b.net->save_checkpoint(ckpt);
    }

    b.baseline_accuracy =
        evaluate_accuracy(*b.net, *b.test_set, /*max_samples=*/test_count);
    return b;
}

}  // namespace models
}  // namespace shredder
