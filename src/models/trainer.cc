#include "src/models/trainer.h"

#include <algorithm>

#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/runtime/logging.h"
#include "src/runtime/stopwatch.h"

namespace shredder {
namespace models {

double
evaluate_accuracy(nn::Sequential& net, const data::Dataset& ds,
                  std::int64_t max_samples, std::int64_t batch_size)
{
    const std::int64_t total =
        max_samples > 0 ? std::min(max_samples, ds.size()) : ds.size();
    std::int64_t done = 0;
    double correct_weighted = 0.0;
    nn::ExecutionContext ctx;
    while (done < total) {
        const std::int64_t count = std::min(batch_size, total - done);
        const data::Batch batch = data::materialize(ds, done, count);
        const Tensor logits =
            net.forward(batch.images, ctx, nn::Mode::kEval);
        correct_weighted +=
            nn::accuracy(logits, batch.labels) * static_cast<double>(count);
        done += count;
    }
    return total == 0 ? 0.0 : correct_weighted / static_cast<double>(total);
}

TrainReport
train_model(nn::Sequential& net, const data::Dataset& train_set,
            const data::Dataset& test_set, const TrainConfig& config,
            Rng& rng)
{
    SHREDDER_REQUIRE(config.max_epochs > 0, "trainer needs epochs > 0");
    Stopwatch clock;
    nn::Adam optimizer(net.parameters(), config.learning_rate);
    nn::CrossEntropyLoss loss_fn;
    data::DataLoader loader(train_set, config.batch_size, /*shuffle=*/true,
                            rng);
    // The training stream's context; seeded from the caller's RNG so
    // dropout masks are reproducible end-to-end from one seed.
    nn::ExecutionContext ctx(rng.engine()());

    TrainReport report;
    double running_acc = 0.0;
    for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
        loader.reset();
        std::int64_t batches = 0;
        double epoch_acc = 0.0;
        while (auto batch = loader.next()) {
            optimizer.zero_grad();
            const Tensor logits =
                net.forward(batch->images, ctx, nn::Mode::kTrain);
            const nn::LossResult loss =
                loss_fn.compute(logits, batch->labels);
            net.backward(loss.grad, ctx);
            optimizer.step();
            epoch_acc += nn::accuracy(logits, batch->labels);
            ++batches;
            if (config.max_batches_per_epoch > 0 &&
                batches >= config.max_batches_per_epoch) {
                break;
            }
        }
        running_acc = batches > 0
                          ? epoch_acc / static_cast<double>(batches)
                          : 0.0;
        report.epochs_run = static_cast<double>(epoch + 1);

        const double test_acc =
            evaluate_accuracy(net, test_set, config.eval_samples);
        report.test_accuracy = test_acc;
        if (config.verbose) {
            inform("epoch ", epoch + 1, "/", config.max_epochs,
                   ": train_acc=", running_acc, " test_acc=", test_acc,
                   " lr=", optimizer.learning_rate());
        }
        if (config.target_accuracy > 0.0 &&
            test_acc >= config.target_accuracy) {
            break;
        }
        optimizer.set_learning_rate(optimizer.learning_rate() *
                                    config.lr_decay_per_epoch);
    }
    report.final_train_accuracy = running_acc;
    report.seconds = clock.seconds();
    return report;
}

}  // namespace models
}  // namespace shredder
