/**
 * @file
 * MNIST-like procedural dataset: grayscale 28×28 handwritten-style
 * digits rendered from a bitmap font with random affine jitter,
 * stroke-weight variation and pixel noise.
 */
#ifndef SHREDDER_DATA_DIGITS_H
#define SHREDDER_DATA_DIGITS_H

#include <string>

#include "src/data/dataset.h"

namespace shredder {
namespace data {

/** Configuration for the digits generator. */
struct DigitsConfig
{
    std::int64_t count = 10000;   ///< Dataset size.
    std::uint64_t seed = 1;       ///< Generator seed (split = new seed).
    float noise_stddev = 0.08f;   ///< Additive pixel noise.
    float max_shift = 3.0f;       ///< Max translation in pixels.
    float min_scale = 2.6f;       ///< Min glyph-cell pixel size.
    float max_scale = 3.4f;       ///< Max glyph-cell pixel size.
};

/** MNIST stand-in (1×28×28, 10 classes). See file comment. */
class DigitsDataset final : public Dataset
{
  public:
    explicit DigitsDataset(const DigitsConfig& config = {});

    std::int64_t size() const override { return config_.count; }
    Sample get(std::int64_t idx) const override;
    Shape image_shape() const override { return Shape({1, 28, 28}); }
    std::int64_t num_classes() const override { return 10; }
    std::string name() const override { return "digits"; }

  private:
    DigitsConfig config_;
};

}  // namespace data
}  // namespace shredder

#endif  // SHREDDER_DATA_DIGITS_H
