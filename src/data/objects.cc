/**
 * @file
 * Implementation of the synthetic CIFAR-like objects dataset.
 */
#include "src/data/objects.h"

#include <cmath>

#include "src/data/canvas.h"
#include "src/data/index_rng.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace data {

namespace {

Color
random_saturated(Rng& rng)
{
    // One strong channel, the rest dimmer — keeps objects visually
    // separable from the muted gradient backgrounds.
    Color c{rng.uniform(0.0f, 0.35f), rng.uniform(0.0f, 0.35f),
            rng.uniform(0.0f, 0.35f)};
    switch (rng.randint(0, 2)) {
      case 0: c.r = rng.uniform(0.7f, 1.0f); break;
      case 1: c.g = rng.uniform(0.7f, 1.0f); break;
      default: c.b = rng.uniform(0.7f, 1.0f); break;
    }
    return c;
}

}  // namespace

ObjectsDataset::ObjectsDataset(const ObjectsConfig& config)
    : config_(config)
{
    SHREDDER_REQUIRE(config.count > 0, "objects dataset needs count > 0");
}

Sample
ObjectsDataset::get(std::int64_t idx) const
{
    SHREDDER_REQUIRE(idx >= 0 && idx < config_.count, "objects index ",
                     idx, " out of ", config_.count);
    Rng rng = rng_for_index(config_.seed, idx);
    const int label = static_cast<int>(idx % 10);

    Canvas canvas(3, 32, 32);
    const Color bg_top{rng.uniform(0.1f, 0.5f), rng.uniform(0.1f, 0.5f),
                       rng.uniform(0.1f, 0.5f)};
    const Color bg_bot{rng.uniform(0.1f, 0.5f), rng.uniform(0.1f, 0.5f),
                       rng.uniform(0.1f, 0.5f)};
    canvas.linear_gradient(bg_top, bg_bot);

    const Color fg = random_saturated(rng);
    const float cy = rng.uniform(12.0f, 20.0f);
    const float cx = rng.uniform(12.0f, 20.0f);
    const float size = rng.uniform(7.0f, 11.0f);

    switch (label) {
      case 0:  // circle
        canvas.fill_circle(cy, cx, size, fg);
        break;
      case 1: {  // square
        const auto s = static_cast<std::int64_t>(size);
        canvas.fill_rect(static_cast<std::int64_t>(cy) - s,
                         static_cast<std::int64_t>(cx) - s,
                         static_cast<std::int64_t>(cy) + s,
                         static_cast<std::int64_t>(cx) + s, fg);
        break;
      }
      case 2:  // triangle
        canvas.fill_triangle(cy - size, cx, cy + size, cx - size, cy + size,
                             cx + size, fg);
        break;
      case 3:  // cross
        canvas.draw_line(cy - size, cx - size, cy + size, cx + size, 3.5f,
                         fg);
        canvas.draw_line(cy - size, cx + size, cy + size, cx - size, 3.5f,
                         fg);
        break;
      case 4:  // ring
        canvas.fill_ring(cy, cx, size * 0.55f, size, fg);
        break;
      case 5:  // horizontal stripes
        canvas.stripes(static_cast<std::int64_t>(rng.randint(3, 5)), false,
                       fg, bg_top);
        break;
      case 6:  // vertical stripes
        canvas.stripes(static_cast<std::int64_t>(rng.randint(3, 5)), true,
                       fg, bg_bot);
        break;
      case 7:  // checkerboard
        canvas.checker(static_cast<std::int64_t>(rng.randint(4, 6)), fg,
                       bg_top);
        break;
      case 8: {  // dot grid
        const std::int64_t step = rng.randint(7, 9);
        for (std::int64_t y = 4; y < 32; y += step) {
            for (std::int64_t x = 4; x < 32; x += step) {
                canvas.fill_circle(static_cast<float>(y),
                                   static_cast<float>(x), 2.2f, fg);
            }
        }
        break;
      }
      default:  // diagonal bar
        canvas.draw_line(2.0f, 2.0f, 30.0f, 30.0f,
                         rng.uniform(4.0f, 6.0f), fg);
        break;
    }

    canvas.add_noise(rng, config_.noise_stddev);

    Sample s;
    s.image = canvas.take();
    s.label = label;
    return s;
}

}  // namespace data
}  // namespace shredder
