/**
 * @file
 * 5×7 bitmap font for the digit glyphs (0–9) used by the MNIST-like
 * and SVHN-like generators.
 */
#ifndef SHREDDER_DATA_GLYPHS_H
#define SHREDDER_DATA_GLYPHS_H

#include <cstdint>

namespace shredder {
namespace data {

/** Glyph cell height. */
constexpr int kGlyphHeight = 7;
/** Glyph cell width. */
constexpr int kGlyphWidth = 5;

/**
 * Bitmap rows for digit `d` (0–9). Each row is a 5-bit mask, MSB is
 * the leftmost cell.
 */
const std::uint8_t* digit_glyph(int d);

}  // namespace data
}  // namespace shredder

#endif  // SHREDDER_DATA_GLYPHS_H
