/**
 * @file
 * Implementation of the synthetic MNIST-like digits dataset.
 */
#include "src/data/digits.h"

#include "src/data/canvas.h"
#include "src/data/glyphs.h"
#include "src/data/index_rng.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace data {

DigitsDataset::DigitsDataset(const DigitsConfig& config) : config_(config)
{
    SHREDDER_REQUIRE(config.count > 0, "digits dataset needs count > 0");
}

Sample
DigitsDataset::get(std::int64_t idx) const
{
    SHREDDER_REQUIRE(idx >= 0 && idx < config_.count, "digits index ", idx,
                     " out of ", config_.count);
    Rng rng = rng_for_index(config_.seed, idx);
    const int label = static_cast<int>(idx % 10);

    Canvas canvas(1, 28, 28);
    canvas.fill(Color::gray(0.0f));

    const float cell =
        rng.uniform(config_.min_scale, config_.max_scale);
    const float gh = cell * static_cast<float>(kGlyphHeight);
    const float gw = cell * static_cast<float>(kGlyphWidth);
    const float y0 = (28.0f - gh) * 0.5f +
                     rng.uniform(-config_.max_shift, config_.max_shift);
    const float x0 = (28.0f - gw) * 0.5f +
                     rng.uniform(-config_.max_shift, config_.max_shift);
    const float intensity = rng.uniform(0.75f, 1.0f);

    // Main stroke plus a slightly offset echo for stroke-weight
    // variation (fake pen thickness).
    canvas.paste_glyph(digit_glyph(label), kGlyphHeight, kGlyphWidth, y0,
                       x0, gh, gw, Color::gray(intensity));
    const float ey = y0 + rng.uniform(-0.7f, 0.7f);
    const float ex = x0 + rng.uniform(-0.7f, 0.7f);
    canvas.paste_glyph(digit_glyph(label), kGlyphHeight, kGlyphWidth, ey,
                       ex, gh, gw, Color::gray(intensity * 0.85f), 0.8f);

    canvas.add_noise(rng, config_.noise_stddev);

    Sample s;
    s.image = canvas.take();
    s.label = label;
    return s;
}

}  // namespace data
}  // namespace shredder
