/**
 * @file
 * Implementation of the procedural drawing canvas behind the synthetic
 * datasets.
 */
#include "src/data/canvas.h"

#include <algorithm>
#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace data {

namespace {

float
component(const Color& c, std::int64_t channel)
{
    switch (channel) {
      case 0: return c.r;
      case 1: return c.g;
      default: return c.b;
    }
}

}  // namespace

Canvas::Canvas(std::int64_t channels, std::int64_t height,
               std::int64_t width)
    : channels_(channels), height_(height), width_(width),
      image_(Shape({channels, height, width}))
{
    SHREDDER_REQUIRE(channels == 1 || channels == 3,
                     "Canvas supports 1 or 3 channels, got ", channels);
    SHREDDER_REQUIRE(height > 0 && width > 0, "bad canvas size");
}

void
Canvas::set_pixel(std::int64_t y, std::int64_t x, const Color& c)
{
    if (y < 0 || y >= height_ || x < 0 || x >= width_) {
        return;
    }
    for (std::int64_t ch = 0; ch < channels_; ++ch) {
        channel(ch)[y * width_ + x] = component(c, ch);
    }
}

void
Canvas::blend_pixel(std::int64_t y, std::int64_t x, const Color& c,
                    float alpha)
{
    if (y < 0 || y >= height_ || x < 0 || x >= width_ || alpha <= 0.0f) {
        return;
    }
    alpha = std::min(1.0f, alpha);
    for (std::int64_t ch = 0; ch < channels_; ++ch) {
        float& px = channel(ch)[y * width_ + x];
        px = px * (1.0f - alpha) + component(c, ch) * alpha;
    }
}

void
Canvas::fill(const Color& c)
{
    for (std::int64_t ch = 0; ch < channels_; ++ch) {
        std::fill_n(channel(ch), height_ * width_, component(c, ch));
    }
}

void
Canvas::fill_rect(std::int64_t y0, std::int64_t x0, std::int64_t y1,
                  std::int64_t x1, const Color& c)
{
    y0 = std::max<std::int64_t>(0, y0);
    x0 = std::max<std::int64_t>(0, x0);
    y1 = std::min(height_, y1);
    x1 = std::min(width_, x1);
    for (std::int64_t y = y0; y < y1; ++y) {
        for (std::int64_t x = x0; x < x1; ++x) {
            set_pixel(y, x, c);
        }
    }
}

void
Canvas::fill_circle(float cy, float cx, float radius, const Color& c)
{
    const std::int64_t y0 = static_cast<std::int64_t>(cy - radius - 1);
    const std::int64_t y1 = static_cast<std::int64_t>(cy + radius + 2);
    const std::int64_t x0 = static_cast<std::int64_t>(cx - radius - 1);
    const std::int64_t x1 = static_cast<std::int64_t>(cx + radius + 2);
    for (std::int64_t y = y0; y < y1; ++y) {
        for (std::int64_t x = x0; x < x1; ++x) {
            const float dy = static_cast<float>(y) + 0.5f - cy;
            const float dx = static_cast<float>(x) + 0.5f - cx;
            const float d = std::sqrt(dy * dy + dx * dx);
            // 1-pixel anti-aliased rim.
            const float alpha = std::clamp(radius - d + 0.5f, 0.0f, 1.0f);
            blend_pixel(y, x, c, alpha);
        }
    }
}

void
Canvas::fill_ring(float cy, float cx, float r0, float r1, const Color& c)
{
    const std::int64_t y0 = static_cast<std::int64_t>(cy - r1 - 1);
    const std::int64_t y1 = static_cast<std::int64_t>(cy + r1 + 2);
    const std::int64_t x0 = static_cast<std::int64_t>(cx - r1 - 1);
    const std::int64_t x1 = static_cast<std::int64_t>(cx + r1 + 2);
    for (std::int64_t y = y0; y < y1; ++y) {
        for (std::int64_t x = x0; x < x1; ++x) {
            const float dy = static_cast<float>(y) + 0.5f - cy;
            const float dx = static_cast<float>(x) + 0.5f - cx;
            const float d = std::sqrt(dy * dy + dx * dx);
            const float outer = std::clamp(r1 - d + 0.5f, 0.0f, 1.0f);
            const float inner = std::clamp(d - r0 + 0.5f, 0.0f, 1.0f);
            blend_pixel(y, x, c, outer * inner);
        }
    }
}

void
Canvas::fill_triangle(float y0, float x0, float y1, float x1, float y2,
                      float x2, const Color& c)
{
    const auto edge = [](float ay, float ax, float by, float bx, float py,
                         float px) {
        return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
    };
    const float min_y = std::min({y0, y1, y2});
    const float max_y = std::max({y0, y1, y2});
    const float min_x = std::min({x0, x1, x2});
    const float max_x = std::max({x0, x1, x2});
    const float area = edge(y0, x0, y1, x1, y2, x2);
    if (std::abs(area) < 1e-6f) {
        return;
    }
    for (std::int64_t y = static_cast<std::int64_t>(min_y);
         y <= static_cast<std::int64_t>(max_y) + 1; ++y) {
        for (std::int64_t x = static_cast<std::int64_t>(min_x);
             x <= static_cast<std::int64_t>(max_x) + 1; ++x) {
            const float py = static_cast<float>(y) + 0.5f;
            const float px = static_cast<float>(x) + 0.5f;
            const float w0 = edge(y1, x1, y2, x2, py, px) / area;
            const float w1 = edge(y2, x2, y0, x0, py, px) / area;
            const float w2 = edge(y0, x0, y1, x1, py, px) / area;
            if (w0 >= 0.0f && w1 >= 0.0f && w2 >= 0.0f) {
                set_pixel(y, x, c);
            }
        }
    }
}

void
Canvas::draw_line(float y0, float x0, float y1, float x1, float thickness,
                  const Color& c)
{
    const float dy = y1 - y0, dx = x1 - x0;
    const float len = std::sqrt(dy * dy + dx * dx);
    const float half = thickness * 0.5f;
    const std::int64_t ry0 =
        static_cast<std::int64_t>(std::min(y0, y1) - half - 1);
    const std::int64_t ry1 =
        static_cast<std::int64_t>(std::max(y0, y1) + half + 2);
    const std::int64_t rx0 =
        static_cast<std::int64_t>(std::min(x0, x1) - half - 1);
    const std::int64_t rx1 =
        static_cast<std::int64_t>(std::max(x0, x1) + half + 2);
    for (std::int64_t y = ry0; y < ry1; ++y) {
        for (std::int64_t x = rx0; x < rx1; ++x) {
            const float py = static_cast<float>(y) + 0.5f;
            const float px = static_cast<float>(x) + 0.5f;
            float d;
            if (len < 1e-6f) {
                d = std::sqrt((py - y0) * (py - y0) +
                              (px - x0) * (px - x0));
            } else {
                const float t = std::clamp(
                    ((py - y0) * dy + (px - x0) * dx) / (len * len), 0.0f,
                    1.0f);
                const float cy = y0 + t * dy;
                const float cx = x0 + t * dx;
                d = std::sqrt((py - cy) * (py - cy) + (px - cx) * (px - cx));
            }
            const float alpha = std::clamp(half - d + 0.5f, 0.0f, 1.0f);
            blend_pixel(y, x, c, alpha);
        }
    }
}

void
Canvas::linear_gradient(const Color& top, const Color& bottom)
{
    for (std::int64_t y = 0; y < height_; ++y) {
        const float t = height_ <= 1
                            ? 0.0f
                            : static_cast<float>(y) /
                                  static_cast<float>(height_ - 1);
        Color c{top.r + (bottom.r - top.r) * t,
                top.g + (bottom.g - top.g) * t,
                top.b + (bottom.b - top.b) * t};
        for (std::int64_t x = 0; x < width_; ++x) {
            set_pixel(y, x, c);
        }
    }
}

void
Canvas::stripes(std::int64_t period, bool vertical, const Color& a,
                const Color& b)
{
    SHREDDER_REQUIRE(period > 0, "stripe period must be positive");
    for (std::int64_t y = 0; y < height_; ++y) {
        for (std::int64_t x = 0; x < width_; ++x) {
            const std::int64_t k = vertical ? x : y;
            set_pixel(y, x, ((k / period) % 2 == 0) ? a : b);
        }
    }
}

void
Canvas::checker(std::int64_t cell, const Color& a, const Color& b)
{
    SHREDDER_REQUIRE(cell > 0, "checker cell must be positive");
    for (std::int64_t y = 0; y < height_; ++y) {
        for (std::int64_t x = 0; x < width_; ++x) {
            const bool on = ((y / cell) + (x / cell)) % 2 == 0;
            set_pixel(y, x, on ? a : b);
        }
    }
}

void
Canvas::grating(float frequency, float orientation_rad, float phase,
                const Color& lo, const Color& hi)
{
    const float cy = std::cos(orientation_rad);
    const float cx = std::sin(orientation_rad);
    for (std::int64_t y = 0; y < height_; ++y) {
        for (std::int64_t x = 0; x < width_; ++x) {
            const float proj = cy * static_cast<float>(y) +
                               cx * static_cast<float>(x);
            const float t =
                0.5f + 0.5f * std::sin(frequency * proj + phase);
            Color c{lo.r + (hi.r - lo.r) * t, lo.g + (hi.g - lo.g) * t,
                    lo.b + (hi.b - lo.b) * t};
            set_pixel(y, x, c);
        }
    }
}

void
Canvas::add_noise(Rng& rng, float stddev)
{
    float* p = image_.data();
    for (std::int64_t i = 0; i < image_.size(); ++i) {
        p[i] = std::clamp(p[i] + rng.normal(0.0f, stddev), 0.0f, 1.0f);
    }
}

void
Canvas::clamp()
{
    float* p = image_.data();
    for (std::int64_t i = 0; i < image_.size(); ++i) {
        p[i] = std::clamp(p[i], 0.0f, 1.0f);
    }
}

void
Canvas::paste_glyph(const std::uint8_t* rows, int gh, int gw, float y,
                    float x, float h, float w, const Color& c, float alpha)
{
    SHREDDER_REQUIRE(gh > 0 && gw > 0 && gw <= 8, "bad glyph dims");
    const std::int64_t py0 = static_cast<std::int64_t>(std::floor(y));
    const std::int64_t px0 = static_cast<std::int64_t>(std::floor(x));
    const std::int64_t py1 = static_cast<std::int64_t>(std::ceil(y + h));
    const std::int64_t px1 = static_cast<std::int64_t>(std::ceil(x + w));
    for (std::int64_t py = py0; py < py1; ++py) {
        for (std::int64_t px = px0; px < px1; ++px) {
            // Map the pixel center back into glyph-cell space.
            const float gy =
                (static_cast<float>(py) + 0.5f - y) / h * static_cast<float>(gh);
            const float gx =
                (static_cast<float>(px) + 0.5f - x) / w * static_cast<float>(gw);
            const int iy = static_cast<int>(gy);
            const int ix = static_cast<int>(gx);
            if (iy < 0 || iy >= gh || ix < 0 || ix >= gw) {
                continue;
            }
            if (rows[iy] & (1u << (gw - 1 - ix))) {
                blend_pixel(py, px, c, alpha);
            }
        }
    }
}

}  // namespace data
}  // namespace shredder
