/**
 * @file
 * Implementation of the synthetic ImageNet-like textures dataset.
 */
#include "src/data/textures.h"

#include <cmath>

#include "src/data/canvas.h"
#include "src/data/index_rng.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace data {

TexturesDataset::TexturesDataset(const TexturesConfig& config)
    : config_(config)
{
    SHREDDER_REQUIRE(config.count > 0, "textures dataset needs count > 0");
    SHREDDER_REQUIRE(config.classes >= 2 && config.classes <= 64,
                     "textures classes must be in [2, 64], got ",
                     config.classes);
    SHREDDER_REQUIRE(config.image_size >= 16, "textures image too small");
}

Sample
TexturesDataset::get(std::int64_t idx) const
{
    SHREDDER_REQUIRE(idx >= 0 && idx < config_.count, "textures index ",
                     idx, " out of ", config_.count);
    Rng rng = rng_for_index(config_.seed, idx);
    const auto label = idx % config_.classes;
    const float s = static_cast<float>(config_.image_size);

    // Class code: low 2 bits select the background texture family,
    // next 2 bits the foreground shape, rest tweak parameters. This
    // scales to 64 visually distinct classes.
    const int tex_family = static_cast<int>(label % 4);
    const int shape_family = static_cast<int>((label / 4) % 4);
    const int variant = static_cast<int>(label / 16);

    Canvas canvas(3, config_.image_size, config_.image_size);
    const Color lo{rng.uniform(0.05f, 0.3f), rng.uniform(0.05f, 0.3f),
                   rng.uniform(0.05f, 0.3f)};
    const Color hi{rng.uniform(0.5f, 0.9f), rng.uniform(0.5f, 0.9f),
                   rng.uniform(0.5f, 0.9f)};

    // Background texture: class-determined family, jittered params.
    const float base_freq =
        0.35f + 0.22f * static_cast<float>(variant) + rng.uniform(-0.03f, 0.03f);
    switch (tex_family) {
      case 0:
        canvas.grating(base_freq, rng.uniform(-0.15f, 0.15f),
                       rng.uniform(0.0f, 6.28f), lo, hi);
        break;
      case 1:
        canvas.grating(base_freq, 1.5708f + rng.uniform(-0.15f, 0.15f),
                       rng.uniform(0.0f, 6.28f), lo, hi);
        break;
      case 2:
        canvas.checker(4 + 2 * variant, lo, hi);
        break;
      default:
        canvas.grating(base_freq, 0.7854f + rng.uniform(-0.15f, 0.15f),
                       rng.uniform(0.0f, 6.28f), lo, hi);
        break;
    }

    // Foreground object.
    Color fg{rng.uniform(0.0f, 0.25f), rng.uniform(0.0f, 0.25f),
             rng.uniform(0.0f, 0.25f)};
    switch (static_cast<int>(label % 3)) {
      case 0: fg.r = rng.uniform(0.85f, 1.0f); break;
      case 1: fg.g = rng.uniform(0.85f, 1.0f); break;
      default: fg.b = rng.uniform(0.85f, 1.0f); break;
    }
    const float cy = s * 0.5f + rng.uniform(-s * 0.12f, s * 0.12f);
    const float cx = s * 0.5f + rng.uniform(-s * 0.12f, s * 0.12f);
    const float extent = s * rng.uniform(0.18f, 0.28f);
    switch (shape_family) {
      case 0:
        canvas.fill_circle(cy, cx, extent, fg);
        break;
      case 1:
        canvas.fill_rect(static_cast<std::int64_t>(cy - extent),
                         static_cast<std::int64_t>(cx - extent),
                         static_cast<std::int64_t>(cy + extent),
                         static_cast<std::int64_t>(cx + extent), fg);
        break;
      case 2:
        canvas.fill_triangle(cy - extent, cx, cy + extent, cx - extent,
                             cy + extent, cx + extent, fg);
        break;
      default:
        canvas.fill_ring(cy, cx, extent * 0.55f, extent, fg);
        break;
    }

    canvas.add_noise(rng, config_.noise_stddev);

    Sample out;
    out.image = canvas.take();
    out.label = label;
    return out;
}

}  // namespace data
}  // namespace shredder
