/**
 * @file
 * Dataset abstractions for the synthetic workloads.
 *
 * The paper evaluates on MNIST, CIFAR-10, SVHN and ImageNet. Those
 * datasets are not available offline, so this substrate provides
 * *procedural* stand-ins (see DESIGN.md §2): each dataset renders a
 * labelled image deterministically from (seed, index), which makes
 * train/test splits, shuffling and exact reproducibility trivial.
 */
#ifndef SHREDDER_DATA_DATASET_H
#define SHREDDER_DATA_DATASET_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace data {

/** One labelled image. */
struct Sample
{
    Tensor image;  ///< CHW float32, values roughly in [0, 1].
    std::int64_t label = 0;
};

/** A batch assembled by the loader. */
struct Batch
{
    Tensor images;  ///< NCHW.
    std::vector<std::int64_t> labels;

    std::int64_t size() const
    {
        return static_cast<std::int64_t>(labels.size());
    }
};

/** Abstract random-access dataset. Thread-safe for concurrent `get`. */
class Dataset
{
  public:
    virtual ~Dataset() = default;

    /** Number of samples. */
    virtual std::int64_t size() const = 0;

    /** Render sample `idx` (deterministic per instance). */
    virtual Sample get(std::int64_t idx) const = 0;

    /** CHW shape of every image. */
    virtual Shape image_shape() const = 0;

    /** Number of label classes. */
    virtual std::int64_t num_classes() const = 0;

    /** Human-readable dataset name. */
    virtual std::string name() const = 0;
};

/**
 * Materialize `count` samples of `ds` starting at `begin` into a Batch
 * (used for fixed evaluation sets).
 */
Batch materialize(const Dataset& ds, std::int64_t begin, std::int64_t count);

}  // namespace data
}  // namespace shredder

#endif  // SHREDDER_DATA_DATASET_H
