/**
 * @file
 * Implementation of the shared glyph rasterization for digit datasets.
 */
#include "src/data/glyphs.h"

#include "src/runtime/logging.h"

namespace shredder {
namespace data {

namespace {

// clang-format off
constexpr std::uint8_t kDigits[10][kGlyphHeight] = {
    // 0
    {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},
    // 1
    {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
    // 2
    {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},
    // 3
    {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},
    // 4
    {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
    // 5
    {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
    // 6
    {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
    // 7
    {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
    // 8
    {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
    // 9
    {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
};
// clang-format on

}  // namespace

const std::uint8_t*
digit_glyph(int d)
{
    SHREDDER_REQUIRE(d >= 0 && d <= 9, "digit glyph index ", d);
    return kDigits[d];
}

}  // namespace data
}  // namespace shredder
