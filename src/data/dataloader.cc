/**
 * @file
 * Implementation of the batching `DataLoader`.
 */
#include "src/data/dataloader.h"

#include <algorithm>
#include <numeric>

#include "src/runtime/logging.h"

namespace shredder {
namespace data {

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size,
                       bool shuffle, Rng& rng)
    : dataset_(dataset), batch_size_(batch_size), shuffle_(shuffle),
      rng_(rng.fork())
{
    SHREDDER_REQUIRE(batch_size > 0, "batch size must be positive");
    order_.resize(static_cast<std::size_t>(dataset.size()));
    std::iota(order_.begin(), order_.end(), 0);
    reset();
}

void
DataLoader::reset()
{
    cursor_ = 0;
    if (shuffle_) {
        std::shuffle(order_.begin(), order_.end(), rng_.engine());
    }
}

std::int64_t
DataLoader::batches_per_epoch() const
{
    return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

std::optional<Batch>
DataLoader::next()
{
    const std::int64_t total = dataset_.size();
    if (cursor_ >= total) {
        return std::nullopt;
    }
    const std::int64_t count = std::min(batch_size_, total - cursor_);
    const Shape img = dataset_.image_shape();

    Batch batch;
    batch.images = Tensor(Shape({count, img[0], img[1], img[2]}));
    batch.labels.resize(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        const std::int64_t idx =
            order_[static_cast<std::size_t>(cursor_ + i)];
        Sample s = dataset_.get(idx);
        batch.images.set_slice0(i, s.image);
        batch.labels[static_cast<std::size_t>(i)] = s.label;
    }
    cursor_ += count;
    return batch;
}

}  // namespace data
}  // namespace shredder
