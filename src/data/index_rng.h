/**
 * @file
 * Per-sample RNG derivation: hash (dataset seed, sample index) into an
 * independent generator so `Dataset::get` is deterministic and
 * thread-safe without shared state.
 */
#ifndef SHREDDER_DATA_INDEX_RNG_H
#define SHREDDER_DATA_INDEX_RNG_H

#include <cstdint>

#include "src/tensor/rng.h"

namespace shredder {
namespace data {

/** splitmix64 finalizer — a good 64-bit mixing function. */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Independent generator for sample `idx` of a dataset seeded `seed`. */
inline Rng
rng_for_index(std::uint64_t seed, std::int64_t idx)
{
    return Rng(mix64(seed ^ mix64(static_cast<std::uint64_t>(idx))));
}

}  // namespace data
}  // namespace shredder

#endif  // SHREDDER_DATA_INDEX_RNG_H
