/**
 * @file
 * Tiny software rasterizer the procedural datasets draw with.
 *
 * A canvas wraps a CHW float tensor (1 or 3 channels, values in
 * [0, 1]) and offers the primitives the generators need: solid fills,
 * gradients, shapes, pattern fills, glyph pasting and noise.
 */
#ifndef SHREDDER_DATA_CANVAS_H
#define SHREDDER_DATA_CANVAS_H

#include <array>
#include <cstdint>

#include "src/tensor/rng.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace data {

/** RGB (or grayscale via equal components) color. */
struct Color
{
    float r = 0.0f, g = 0.0f, b = 0.0f;

    static Color gray(float v) { return {v, v, v}; }
};

/** CHW float image with drawing primitives. */
class Canvas
{
  public:
    /**
     * @param channels  1 (grayscale) or 3 (RGB).
     * @param height    Pixel rows.
     * @param width     Pixel columns.
     */
    Canvas(std::int64_t channels, std::int64_t height, std::int64_t width);

    std::int64_t channels() const { return channels_; }
    std::int64_t height() const { return height_; }
    std::int64_t width() const { return width_; }

    /** Move the image out of the canvas (canvas becomes invalid). */
    Tensor take() { return std::move(image_); }

    /** Borrow the image. */
    const Tensor& image() const { return image_; }

    /** Set one pixel (coordinates clipped). */
    void set_pixel(std::int64_t y, std::int64_t x, const Color& c);

    /** Alpha-blend one pixel (coordinates clipped). */
    void blend_pixel(std::int64_t y, std::int64_t x, const Color& c,
                     float alpha);

    /** Fill the whole canvas with a solid color. */
    void fill(const Color& c);

    /** Axis-aligned filled rectangle [y0, y1) × [x0, x1). */
    void fill_rect(std::int64_t y0, std::int64_t x0, std::int64_t y1,
                   std::int64_t x1, const Color& c);

    /** Filled circle (anti-aliased edge). */
    void fill_circle(float cy, float cx, float radius, const Color& c);

    /** Ring (annulus) between radii r0 < r1. */
    void fill_ring(float cy, float cx, float r0, float r1, const Color& c);

    /** Filled triangle by vertices. */
    void fill_triangle(float y0, float x0, float y1, float x1, float y2,
                       float x2, const Color& c);

    /** Thick line segment. */
    void draw_line(float y0, float x0, float y1, float x1, float thickness,
                   const Color& c);

    /** Linear gradient from `top` (row 0) to `bottom` (last row). */
    void linear_gradient(const Color& top, const Color& bottom);

    /** Alternating horizontal stripes of the two colors. */
    void stripes(std::int64_t period, bool vertical, const Color& a,
                 const Color& b);

    /** Checkerboard pattern. */
    void checker(std::int64_t cell, const Color& a, const Color& b);

    /** Sinusoidal grating: intensity modulated along a direction. */
    void grating(float frequency, float orientation_rad, float phase,
                 const Color& lo, const Color& hi);

    /** Add i.i.d. Gaussian pixel noise, clamped back into [0, 1]. */
    void add_noise(Rng& rng, float stddev);

    /** Clamp all pixels into [0, 1]. */
    void clamp();

    /**
     * Paste a binary glyph bitmap scaled into the rectangle whose top
     * left corner is (y, x) and size is (h, w); `on` pixels are blended
     * with `alpha`.
     *
     * @param rows     Glyph rows (bitmask per row, MSB = leftmost).
     * @param gh       Glyph height in cells.
     * @param gw       Glyph width in cells.
     */
    void paste_glyph(const std::uint8_t* rows, int gh, int gw, float y,
                     float x, float h, float w, const Color& c,
                     float alpha = 1.0f);

  private:
    float* channel(std::int64_t c) { return image_.data() + c * height_ * width_; }

    std::int64_t channels_, height_, width_;
    Tensor image_;
};

}  // namespace data
}  // namespace shredder

#endif  // SHREDDER_DATA_CANVAS_H
