/**
 * @file
 * Mini-batch loader over a Dataset, with optional shuffling.
 */
#ifndef SHREDDER_DATA_DATALOADER_H
#define SHREDDER_DATA_DATALOADER_H

#include <optional>
#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace data {

/**
 * Iterates a dataset in mini-batches.
 *
 * One pass = one epoch; `reset()` starts the next epoch (reshuffling
 * when enabled). The final partial batch is emitted.
 */
class DataLoader
{
  public:
    /**
     * @param dataset     Borrowed dataset (must outlive the loader).
     * @param batch_size  Samples per batch (> 0).
     * @param shuffle     Shuffle sample order every epoch.
     * @param rng         Shuffle randomness (forked).
     */
    DataLoader(const Dataset& dataset, std::int64_t batch_size,
               bool shuffle, Rng& rng);

    /** Next batch, or nullopt at end of epoch. */
    std::optional<Batch> next();

    /** Start a new epoch (reshuffles when enabled). */
    void reset();

    /** Batches per epoch (including the final partial one). */
    std::int64_t batches_per_epoch() const;

    std::int64_t batch_size() const { return batch_size_; }

  private:
    const Dataset& dataset_;
    std::int64_t batch_size_;
    bool shuffle_;
    Rng rng_;
    std::vector<std::int64_t> order_;
    std::int64_t cursor_ = 0;
};

}  // namespace data
}  // namespace shredder

#endif  // SHREDDER_DATA_DATALOADER_H
