/**
 * @file
 * Implementation of the `Dataset` interface helpers.
 */
#include "src/data/dataset.h"

#include "src/runtime/logging.h"

namespace shredder {
namespace data {

Batch
materialize(const Dataset& ds, std::int64_t begin, std::int64_t count)
{
    SHREDDER_REQUIRE(begin >= 0 && count > 0 && begin + count <= ds.size(),
                     "materialize range [", begin, ", ", begin + count,
                     ") out of dataset size ", ds.size());
    const Shape img = ds.image_shape();
    Batch batch;
    batch.images = Tensor(Shape({count, img[0], img[1], img[2]}));
    batch.labels.resize(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        Sample s = ds.get(begin + i);
        batch.images.set_slice0(i, s.image);
        batch.labels[static_cast<std::size_t>(i)] = s.label;
    }
    return batch;
}

}  // namespace data
}  // namespace shredder
