/**
 * @file
 * ImageNet-like procedural dataset: 3×64×64 many-class images where
 * each class is a distinct (texture, shape) combination — gratings,
 * checkers, dots, stripes at class-specific frequencies/orientations
 * carrying a class-specific foreground object.
 */
#ifndef SHREDDER_DATA_TEXTURES_H
#define SHREDDER_DATA_TEXTURES_H

#include <string>

#include "src/data/dataset.h"

namespace shredder {
namespace data {

/** Configuration for the textures generator. */
struct TexturesConfig
{
    std::int64_t count = 8000;
    std::int64_t classes = 16;    ///< Number of label classes (≤ 64).
    std::int64_t image_size = 64; ///< Square image extent.
    std::uint64_t seed = 4;
    float noise_stddev = 0.04f;
};

/** ImageNet stand-in (3×S×S, N classes). See file comment. */
class TexturesDataset final : public Dataset
{
  public:
    explicit TexturesDataset(const TexturesConfig& config = {});

    std::int64_t size() const override { return config_.count; }
    Sample get(std::int64_t idx) const override;
    Shape
    image_shape() const override
    {
        return Shape({3, config_.image_size, config_.image_size});
    }
    std::int64_t num_classes() const override { return config_.classes; }
    std::string name() const override { return "textures"; }

  private:
    TexturesConfig config_;
};

}  // namespace data
}  // namespace shredder

#endif  // SHREDDER_DATA_TEXTURES_H
