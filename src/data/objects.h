/**
 * @file
 * CIFAR-10-like procedural dataset: 3×32×32 color scenes, each class a
 * distinct shape/texture family on a varied background.
 */
#ifndef SHREDDER_DATA_OBJECTS_H
#define SHREDDER_DATA_OBJECTS_H

#include <string>

#include "src/data/dataset.h"

namespace shredder {
namespace data {

/** Configuration for the objects generator. */
struct ObjectsConfig
{
    std::int64_t count = 10000;
    std::uint64_t seed = 2;
    float noise_stddev = 0.05f;
};

/**
 * CIFAR stand-in (3×32×32, 10 classes): circle, square, triangle,
 * cross, ring, horizontal stripes, vertical stripes, checkerboard,
 * dot grid, diagonal bar — each with jittered geometry and colors on a
 * random gradient background.
 */
class ObjectsDataset final : public Dataset
{
  public:
    explicit ObjectsDataset(const ObjectsConfig& config = {});

    std::int64_t size() const override { return config_.count; }
    Sample get(std::int64_t idx) const override;
    Shape image_shape() const override { return Shape({3, 32, 32}); }
    std::int64_t num_classes() const override { return 10; }
    std::string name() const override { return "objects"; }

  private:
    ObjectsConfig config_;
};

}  // namespace data
}  // namespace shredder

#endif  // SHREDDER_DATA_OBJECTS_H
