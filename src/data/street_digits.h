/**
 * @file
 * SVHN-like procedural dataset: 3×32×32 color digits on cluttered
 * street-style backgrounds with distractor digits at the edges, the
 * way real SVHN crops contain parts of neighboring house numbers.
 */
#ifndef SHREDDER_DATA_STREET_DIGITS_H
#define SHREDDER_DATA_STREET_DIGITS_H

#include <string>

#include "src/data/dataset.h"

namespace shredder {
namespace data {

/** Configuration for the street-digits generator. */
struct StreetDigitsConfig
{
    std::int64_t count = 10000;
    std::uint64_t seed = 3;
    float noise_stddev = 0.06f;
    bool distractors = true;  ///< Draw partial neighbor digits.
};

/** SVHN stand-in (3×32×32, 10 classes). See file comment. */
class StreetDigitsDataset final : public Dataset
{
  public:
    explicit StreetDigitsDataset(const StreetDigitsConfig& config = {});

    std::int64_t size() const override { return config_.count; }
    Sample get(std::int64_t idx) const override;
    Shape image_shape() const override { return Shape({3, 32, 32}); }
    std::int64_t num_classes() const override { return 10; }
    std::string name() const override { return "street_digits"; }

  private:
    StreetDigitsConfig config_;
};

}  // namespace data
}  // namespace shredder

#endif  // SHREDDER_DATA_STREET_DIGITS_H
