/**
 * @file
 * Implementation of the synthetic SVHN-like street-digits dataset.
 */
#include "src/data/street_digits.h"

#include "src/data/canvas.h"
#include "src/data/glyphs.h"
#include "src/data/index_rng.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace data {

StreetDigitsDataset::StreetDigitsDataset(const StreetDigitsConfig& config)
    : config_(config)
{
    SHREDDER_REQUIRE(config.count > 0,
                     "street digits dataset needs count > 0");
}

Sample
StreetDigitsDataset::get(std::int64_t idx) const
{
    SHREDDER_REQUIRE(idx >= 0 && idx < config_.count,
                     "street digits index ", idx, " out of ",
                     config_.count);
    Rng rng = rng_for_index(config_.seed, idx);
    const int label = static_cast<int>(idx % 10);

    Canvas canvas(3, 32, 32);
    // Street background: muted gradient + a few architectural blocks.
    const Color bg_top{rng.uniform(0.2f, 0.6f), rng.uniform(0.2f, 0.6f),
                       rng.uniform(0.2f, 0.6f)};
    const Color bg_bot{rng.uniform(0.2f, 0.6f), rng.uniform(0.2f, 0.6f),
                       rng.uniform(0.2f, 0.6f)};
    canvas.linear_gradient(bg_top, bg_bot);
    const int blocks = static_cast<int>(rng.randint(1, 3));
    for (int i = 0; i < blocks; ++i) {
        const Color block{rng.uniform(0.15f, 0.7f),
                          rng.uniform(0.15f, 0.7f),
                          rng.uniform(0.15f, 0.7f)};
        const std::int64_t y = rng.randint(0, 24);
        const std::int64_t x = rng.randint(0, 24);
        canvas.fill_rect(y, x, y + rng.randint(4, 10),
                         x + rng.randint(4, 10), block);
    }

    // Digit color must contrast with background (house numbers do).
    const bool bright = rng.bernoulli(0.5);
    Color fg;
    if (bright) {
        fg = Color{rng.uniform(0.8f, 1.0f), rng.uniform(0.8f, 1.0f),
                   rng.uniform(0.75f, 1.0f)};
    } else {
        fg = Color{rng.uniform(0.0f, 0.15f), rng.uniform(0.0f, 0.15f),
                   rng.uniform(0.0f, 0.2f)};
    }

    const float cell = rng.uniform(2.6f, 3.4f);
    const float gh = cell * static_cast<float>(kGlyphHeight);
    const float gw = cell * static_cast<float>(kGlyphWidth);
    const float y0 = (32.0f - gh) * 0.5f + rng.uniform(-2.5f, 2.5f);
    const float x0 = (32.0f - gw) * 0.5f + rng.uniform(-2.5f, 2.5f);

    if (config_.distractors) {
        // Partial neighbor digits poking in from the left/right edge.
        const int left = static_cast<int>(rng.randint(0, 9));
        const int right = static_cast<int>(rng.randint(0, 9));
        canvas.paste_glyph(digit_glyph(left), kGlyphHeight, kGlyphWidth,
                           y0 + rng.uniform(-1.5f, 1.5f), x0 - gw - 2.0f,
                           gh, gw, fg, 0.9f);
        canvas.paste_glyph(digit_glyph(right), kGlyphHeight, kGlyphWidth,
                           y0 + rng.uniform(-1.5f, 1.5f), x0 + gw + 2.0f,
                           gh, gw, fg, 0.9f);
    }

    canvas.paste_glyph(digit_glyph(label), kGlyphHeight, kGlyphWidth, y0,
                       x0, gh, gw, fg);
    // Thin echo for stroke-weight variance.
    canvas.paste_glyph(digit_glyph(label), kGlyphHeight, kGlyphWidth,
                       y0 + rng.uniform(-0.6f, 0.6f),
                       x0 + rng.uniform(-0.6f, 0.6f), gh, gw, fg, 0.7f);

    canvas.add_noise(rng, config_.noise_stddev);

    Sample s;
    s.image = canvas.take();
    s.label = label;
    return s;
}

}  // namespace data
}  // namespace shredder
