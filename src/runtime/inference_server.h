/**
 * @file
 * Batched cloud-side inference dispatcher (one serving endpoint).
 *
 * A deployed Shredder service receives a stream of independent
 * requests, each carrying one to-be-noised intermediate activation
 * captured at the cutting point on an edge device. Running the cloud
 * half R once per request wastes the batch efficiency of the GEMM
 * kernels, so the server fuses concurrent requests into batches:
 *
 *   submit(a) ──► request queue ──► dispatcher (forms batches of up
 *   to `max_batch`, holding the door for stragglers — a fixed
 *   `batch_timeout_ms`, or an SLO-bounded adaptive window chosen per
 *   batch by a `BatchController` from the EWMA arrival rate and the
 *   queue depth when `adaptive_batching` is on)
 *   ──► thread pool (applies the endpoint's `NoisePolicy` per request,
 *   runs `SplitModel::cloud_forward` on the fused batch, scatters the
 *   logits back) ──► per-request future.
 *
 * The noise mechanism is pluggable: the server executes whatever
 * `NoisePolicy` it was built with — no noise, replay from a stored
 * collection, fresh draws from a fitted distribution, or a fixed
 * tensor (see noise_policy.h). Policies derive each request's noise
 * from `noise_seed(policy seed, request id)`, so draws touch no shared
 * RNG state and a replay with the same seed and ids reproduces the
 * exact per-request noise assignment regardless of batch composition
 * or thread timing. `PrivacyMeter::measure_policy` measures through
 * the same policy objects, so the measured mechanism is bit-for-bit
 * the served one.
 *
 * Layer execution is stateless (`nn::ExecutionContext`): weights are
 * shared read-only and every in-flight batch runs `cloud_forward`
 * against its own pooled context, so up to `max_concurrent_batches`
 * cloud forwards proceed *simultaneously* on one set of parameters —
 * no per-forward model mutex, no model replication. Several servers
 * (or a live noise trainer) may even share one `SplitModel`, each
 * bringing their own contexts. Servers may also share one `ThreadPool`
 * (`InferenceServerConfig::pool`) — how `ServingEngine` hosts many
 * endpoints on one worker set.
 *
 * Malformed or post-shutdown submits fail their own future with a
 * typed `ServingError` (see serving_error.h); the server itself never
 * dies for a bad request.
 *
 * Latency/throughput accounting uses `Stopwatch`: per-batch queue and
 * execution latency plus aggregate requests/sec are available from
 * `stats()` at any time.
 */
#ifndef SHREDDER_RUNTIME_INFERENCE_SERVER_H
#define SHREDDER_RUNTIME_INFERENCE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/noise_collection.h"
#include "src/runtime/admission.h"
#include "src/runtime/batch_controller.h"
#include "src/nn/execution_context.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_error.h"
#include "src/runtime/stopwatch.h"
#include "src/runtime/thread_pool.h"
#include "src/split/split_model.h"
#include "src/tensor/gemm.h"
#include "src/tensor/quantize.h"
#include "src/tensor/rng.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace runtime {

/** Serving knobs. */
struct InferenceServerConfig
{
    /** Max requests fused into one cloud forward. */
    std::int64_t max_batch = 8;
    /**
     * How long the dispatcher waits for stragglers once it holds at
     * least one request and fewer than `max_batch`. 0 = ship
     * immediately (latency-optimal, throughput-pessimal). Ignored
     * when `adaptive_batching` is on — the controller picks the
     * window per batch instead.
     */
    double batch_timeout_ms = 1.0;
    /**
     * SLO-aware adaptive straggler window: replace the fixed
     * `batch_timeout_ms` with a per-batch deadline computed by a
     * `BatchController` from the EWMA arrival rate and the queue
     * depth, bounded by `controller.slo_ms` (see batch_controller.h).
     * The controller's live decisions are visible in `ServerStats`.
     */
    bool adaptive_batching = false;
    /** Controller knobs (read only when `adaptive_batching` is on). */
    BatchControllerConfig controller{};
    /**
     * Worker threads executing batches; 0 = hardware concurrency.
     * Ignored when `pool` is set (the shared pool's size governs).
     */
    unsigned num_workers = 1;
    /**
     * External thread pool to execute batches on, shared with other
     * servers (must outlive this server); null = the server owns a
     * private pool of `num_workers` threads. `ServingEngine` uses this
     * to run every endpoint on one worker set.
     */
    ThreadPool* pool = nullptr;
    /**
     * Cloud forwards allowed in flight at once — the size of the
     * server's `ExecutionContext` pool. 0 = one per worker thread.
     * Values above the worker count buy nothing (a context without a
     * thread is idle); values below it throttle the pool.
     */
    std::int64_t max_concurrent_batches = 0;
    /**
     * DEPRECATED — read only by the legacy `(model, collection)`
     * constructor shim, where it selects `ReplayPolicy` (true) or
     * `NoNoisePolicy` (false). The policy constructor ignores it:
     * the policy object *is* the mechanism.
     */
    bool apply_noise = true;
    /**
     * Root seed of the legacy shim's `ReplayPolicy` (matching the
     * historical behavior `Rng(noise_seed(seed, id))`) and of the
     * pooled execution contexts' RNGs. Policy-constructed servers
     * carry their noise seed inside the policy instead.
     */
    std::uint64_t seed = 0xC0FFEE;
    /**
     * Per-sample activation shape at the cut (rank 1–3). When set
     * (rank > 0) it fixes the server's shape contract at
     * construction. When unset, the contract comes from the policy's
     * `noise_shape()`, or — with neither — is adopted from the first
     * submitted request, which the server cannot validate against
     * the model: production deployments should pin it here or serve
     * with a shaped policy.
     */
    Shape sample_shape{};
    /**
     * Feed int8 wire activations straight into an int8 GEMM for the
     * first cloud layer (dequant fused into the epilogue, the
     * policy's additive noise fused into the packing pass) instead of
     * dequantizing to fp32 first. Engaged per batch only when every
     * precondition holds — the layer at the cut is `nn::Linear`
     * (optionally behind a `Flatten`), the policy is additive, the
     * sample shape was pinned at construction, and every request in
     * the batch arrived int8-quantized; anything else silently takes
     * the dequantize→fp32 path, so the knob is always safe to set.
     * `ServerStats::int8_direct_batches` shows whether it engaged.
     */
    bool int8_compute = false;
    /**
     * Fuse the policy's additive noise into the fp32 GEMM A-panel
     * packing pass (`gemm_rows_fused`) instead of materializing a
     * noised batch tensor first — the fp32 twin of the int8 direct
     * path. Engaged per batch when the same structural preconditions
     * hold (cut on `nn::Linear`, optionally behind a `Flatten`;
     * pinned sample shape; additive policy performing a single add —
     * multi-stage compositions stay on the general path so stage-wise
     * rounding is preserved) and every request in the batch is fp32.
     * Bit-exact with the general path by `gemm_rows_fused`'s
     * contract, so the knob only exists for A/B measurement;
     * `ServerStats::fp32_fused_batches` shows engagement.
     */
    bool fuse_fp32_noise = true;
    /**
     * Token-bucket admission rate in requests/second; 0 disables.
     * Over-limit submits fail their own future with `kRateLimited`
     * (typed backpressure) — queued and in-flight work is never
     * affected. See admission.h for the bucket semantics.
     */
    double rate_limit_qps = 0.0;
    /**
     * Token-bucket capacity; <= 0 defaults to one second of allowance
     * (`max(1, rate_limit_qps)`). Read only when `rate_limit_qps` is
     * set.
     */
    double rate_limit_burst = 0.0;
    /**
     * Cap on requests admitted but not yet answered (queued plus
     * executing); 0 disables. Submits over the cap fail with
     * `kAdmissionReject`. Distinct from the rate limit: this bounds
     * standing queue depth, the bucket bounds arrival rate.
     */
    std::int64_t max_in_flight = 0;
};

/** Aggregate serving statistics (see `InferenceServer::stats`). */
struct ServerStats
{
    /**
     * Queue-wait histogram bucket count. Bucket `i` counts requests
     * whose queue wait was ≤ 2^i µs (so bucket 0 is ≤ 1 µs, bucket 10
     * ≈ 1 ms, bucket 20 ≈ 1 s); the last bucket absorbs overflow.
     * Mean queue wait hides the tail the batcher inflicts — the
     * histogram is what `queue_wait_percentile_ms` and the open-loop
     * bench read p95/p99 from.
     */
    static constexpr int kQueueWaitBuckets = 28;

    std::int64_t requests = 0;       ///< Requests completed.
    std::int64_t batches = 0;        ///< Batches executed.
    double busy_ms = 0.0;            ///< Σ per-batch execution time.
    double queue_ms = 0.0;           ///< Σ per-request queue wait.
    double wall_seconds = 0.0;       ///< Server lifetime so far.
    std::int64_t max_batch_seen = 0; ///< Largest batch executed.

    /** Per-request queue waits, log-bucketed (see kQueueWaitBuckets). */
    std::int64_t queue_wait_hist[kQueueWaitBuckets] = {};

    // Batch-controller observability (meaningful under
    // `adaptive_batching`; the fixed-timeout dispatcher still counts
    // full vs timer dispatches).
    double ewma_interarrival_ms = 0.0; ///< Arrival EWMA at last dispatch.
    double last_deadline_ms = 0.0;     ///< Straggler window last chosen.
    std::int64_t full_dispatches = 0;  ///< Batches shipped at max_batch.
    /** Requests that arrived in quantized wire encoding. */
    std::int64_t quantized_requests = 0;
    /** Batches served by the int8 direct-consume GEMM path. */
    std::int64_t int8_direct_batches = 0;
    /** Batches served by the fused-noise fp32 GEMM path. */
    std::int64_t fp32_fused_batches = 0;
    /** Submits rejected by the token-bucket rate limit. */
    std::int64_t rate_limited = 0;
    /** Submits rejected by the in-flight cap. */
    std::int64_t admission_rejected = 0;
    /** Gauge: requests admitted but not yet answered, at snapshot. */
    std::int64_t in_flight = 0;
    /**
     * Batches shipped below the ceiling — the straggler window ran out
     * (including a zero-width "ship now" decision) or shutdown drained
     * the queue. Together with `full_dispatches` this partitions all
     * dispatches.
     */
    std::int64_t deadline_dispatches = 0;

    /** Mean requests fused per batch. */
    double mean_batch_size() const
    {
        return batches > 0
                   ? static_cast<double>(requests) /
                         static_cast<double>(batches)
                   : 0.0;
    }

    /** Mean execution latency of one batch, ms. */
    double mean_batch_latency_ms() const
    {
        return batches > 0 ? busy_ms / static_cast<double>(batches) : 0.0;
    }

    /** Mean queue wait of one request, ms. */
    double mean_queue_wait_ms() const
    {
        return requests > 0 ? queue_ms / static_cast<double>(requests)
                            : 0.0;
    }

    /** Completed requests per wall-clock second. */
    double requests_per_sec() const
    {
        return wall_seconds > 0.0
                   ? static_cast<double>(requests) / wall_seconds
                   : 0.0;
    }

    /**
     * Queue-wait percentile (ms) read from the histogram: the upper
     * bound of the bucket where the cumulative count crosses `p` ∈
     * [0, 1] — conservative (an over-estimate by at most one bucket
     * width). 0 when no requests completed yet.
     */
    double queue_wait_percentile_ms(double p) const;

    /** Fold another snapshot's histogram into this one. */
    void merge_queue_wait_hist(const ServerStats& other)
    {
        for (int i = 0; i < kQueueWaitBuckets; ++i) {
            queue_wait_hist[i] += other.queue_wait_hist[i];
        }
    }

    /** The histogram bucket a queue wait of `ms` falls into. */
    static int queue_wait_bucket(double ms);
};

/** See file comment. */
class InferenceServer
{
  public:
    /**
     * Serve `model`'s cloud half under `policy`.
     *
     * @param model   Split view of the frozen network; the server runs
     *                its cloud half (read-only — the model may be
     *                shared with other servers or measurement code).
     *                Must outlive the server.
     * @param policy  Noise mechanism applied to every request before
     *                the cloud forward (borrowed; must outlive the
     *                server — `ServingEngine` keeps its policies on
     *                shared_ptr for exactly this reason).
     * @param config  Serving knobs.
     */
    InferenceServer(split::SplitModel& model, const NoisePolicy& policy,
                    const InferenceServerConfig& config = {});

    /**
     * DEPRECATED shim for the pre-policy API: `config.apply_noise`
     * true wraps `collection` in a `ReplayPolicy(config.seed)` (the
     * bit-exact historical behavior), false serves a `NoNoisePolicy`.
     * New code should construct a policy explicitly.
     *
     * @param collection  Learned collection replayed per request; may
     *                    be null only when `config.apply_noise` is
     *                    false. Must outlive the server.
     */
    InferenceServer(split::SplitModel& model,
                    const core::NoiseCollection* collection,
                    const InferenceServerConfig& config = {});

    /** Drains outstanding requests, then stops the workers. */
    ~InferenceServer();

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    /**
     * Enqueue one request with an auto-assigned id
     * (`kAutoIdBase + n` for the n-th auto submit, so
     * single-threaded submission is replayable and never collides
     * with explicit ids).
     *
     * @param activation One sample's activation at the cutting point —
     *                   any shape whose element count matches the
     *                   cut's per-sample activation size.
     * @return Future resolving to that sample's logits (rank-1).
     *         Resolves to a `ServingError` (`kInvalidShape` for a
     *         malformed request, `kShutdown` for a submit after
     *         `shutdown` began). Requests accepted before shutdown
     *         are always served: `shutdown` drains the queue.
     */
    std::future<Tensor> submit(Tensor activation);

    /**
     * Enqueue one request under a caller-chosen id. The id only
     * selects the request's noise draw (`noise_seed(seed, id)`),
     * making the assignment independent of submission interleaving —
     * multi-threaded clients that pass stable ids get bit-identical
     * noise on every replay. Reusing an id reuses its draw, so keep
     * ids unique and below `kAutoIdBase` (auto-assigned ids live in
     * the upper half-space, so the two schemes never share a draw).
     */
    std::future<Tensor> submit(Tensor activation, std::uint64_t request_id);

    /**
     * Enqueue one request whose activation arrived in wire encoding
     * (src/tensor/quantize.h) — the path the network front door takes
     * for `wire_dtype=int8|int16` endpoints. Semantically equivalent
     * to dequantizing on the edge of the server and calling `submit`:
     * the endpoint's noise policy still applies per request id. When
     * the server was built with `int8_compute` and the batch
     * qualifies, the int8 payload feeds the first cloud layer's GEMM
     * directly instead.
     *
     * A kF32-encoded tensor is accepted (decoded to the fp32 path); a
     * payload whose byte count disagrees with shape × dtype fails the
     * future with `kInvalidShape`.
     */
    std::future<Tensor> submit_quantized(QuantizedTensor activation,
                                         std::uint64_t request_id);

    /** Blocking convenience wrapper around `submit`. */
    Tensor infer(const Tensor& activation);

    /**
     * Stop accepting new requests, serve everything already queued,
     * and wait for the last batch to finish. Idempotent; called by
     * the destructor. Never blocks on other servers sharing the pool:
     * completion is tracked per server, not via pool idleness.
     */
    void shutdown();

    /** True until `shutdown` begins. */
    bool running() const;

    /** Snapshot of the aggregate counters. */
    ServerStats stats() const;

    /** The noise mechanism this server executes. */
    const NoisePolicy& policy() const { return *policy_; }

    /**
     * Per-sample activation shape the server expects (no batch dim).
     * Rank 0 until fixed — by the policy's noise shape at
     * construction, or by the first submitted request otherwise.
     */
    Shape sample_shape() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return sample_shape_;
    }

    /** Contexts available for concurrent cloud forwards. */
    std::int64_t max_concurrent_batches() const
    {
        return static_cast<std::int64_t>(contexts_.size());
    }

    /**
     * Auto-assigned request ids are `kAutoIdBase + n` for the n-th
     * auto submit, keeping them disjoint from well-behaved explicit
     * ids (callers should stay below this base): two distinct
     * requests must never silently share a noise draw.
     */
    static constexpr std::uint64_t kAutoIdBase = 1ULL << 63;

    /**
     * Seed of request `request_id`'s private noise RNG under root
     * seed `root_seed`. Kept as a static member for source
     * compatibility — it simply forwards to the free function
     * `runtime::noise_seed` (noise_policy.h) that all policies use.
     */
    static std::uint64_t noise_seed(std::uint64_t root_seed,
                                    std::uint64_t request_id);

  private:
    struct Request
    {
        Tensor activation;         ///< Set when !is_quantized.
        QuantizedTensor quantized; ///< Set when is_quantized.
        bool is_quantized = false;
        std::promise<Tensor> promise;
        std::uint64_t id = 0;  ///< Selects the noise draw.
        Stopwatch queued;      ///< Started at submit time.
    };

    /** Common constructor body (borrowed or shim-owned policy). */
    InferenceServer(split::SplitModel& model, const NoisePolicy* policy,
                    std::unique_ptr<const NoisePolicy> owned_policy,
                    const InferenceServerConfig& config);

    /** Shared submit path; has_id=false auto-assigns from the counter. */
    std::future<Tensor> submit_impl(Tensor activation, bool has_id,
                                    std::uint64_t request_id);

    /**
     * Validate + enqueue a built request. `shape`/`numel` describe
     * the incoming activation in either encoding.
     */
    std::future<Tensor> enqueue(Request request, const Shape& shape,
                                std::int64_t numel, bool has_id,
                                std::uint64_t request_id);

    /**
     * Inspect the cloud half at construction: when the cut lands on
     * `nn::Linear` (optionally behind a `Flatten`) and the policy is
     * additive, arm the direct GEMM paths — the fused-noise fp32 path
     * (`fp32_ready_`, single-add policies only) and, under
     * `int8_compute`, the int8 snapshot (`int8_ready_`). Records
     * where the tail forward resumes; leaves both flags false when
     * the topology or policy disqualifies them.
     */
    void prepare_direct_path();

    /** The int8 direct-consume batch body (see execute_batch). */
    Tensor forward_batch_int8(const std::vector<Request>& batch,
                              std::int64_t n);

    /** The fused-noise fp32 batch body (see execute_batch). */
    Tensor forward_batch_fp32_fused(const std::vector<Request>& batch,
                                    std::int64_t n);

    /** Dispatcher loop: form batches, hand them to the pool. */
    void dispatch_loop();

    /** Execute one formed batch on a pool worker. */
    void execute_batch(std::vector<Request> batch);

    /** Block until a pooled context is free, then take it. */
    nn::ExecutionContext* acquire_context();

    /** Return a context taken with `acquire_context`. */
    void release_context(nn::ExecutionContext* ctx);

    split::SplitModel& model_;
    std::unique_ptr<const NoisePolicy> owned_policy_;  ///< Shim only.
    const NoisePolicy* policy_;  ///< The mechanism; never null.
    InferenceServerConfig config_;
    Shape sample_shape_;        ///< Per-sample activation shape.
    std::int64_t sample_size_;  ///< Elements per activation.

    // Direct GEMM paths (prepare_direct_path; immutable after
    // construction, so batch workers read them lock-free).
    bool int8_ready_ = false;
    bool fp32_ready_ = false;          ///< Fused-noise fp32 path armed.
    std::int64_t tail_begin_ = 0;      ///< First layer after the GEMM.
    std::int64_t direct_out_features_ = 0;  ///< Linear's out width.
    S8Weights s8_weights_;
    const float* direct_bias_ = nullptr;  ///< Linear's bias (or null).
    const float* f32_weights_ = nullptr;  ///< Linear's [out, in] data.

    std::unique_ptr<ThreadPool> owned_pool_;  ///< Null when shared.
    ThreadPool* pool_;  ///< Owned or `config.pool`; never null.
    std::thread dispatcher_;
    std::mutex shutdown_mutex_;  ///< join() must run exactly once.

    /**
     * Guards queue_, accepting_, ids, the lazily-fixed shape, and the
     * adaptive controller (arrival updates happen on the submit path,
     * deadline reads on the dispatcher — both already hold this).
     */
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool accepting_ = true;
    bool stop_dispatcher_ = false;
    std::uint64_t next_request_id_ = 0;
    BatchController controller_;
    /** Admission token bucket; mutated under `mutex_` (clock-free). */
    TokenBucket bucket_;
    /**
     * Gauge of requests admitted but not yet answered. Incremented
     * under `mutex_` on the submit path (so cap checks serialize with
     * each other); decremented on batch workers after each promise is
     * fulfilled — atomic so the decrement needs no queue lock. A
     * momentarily stale read can only under-admit, never over-admit.
     */
    std::atomic<std::int64_t> in_flight_requests_{0};

    /**
     * Batches handed to the pool but not yet finished. Shutdown waits
     * on THIS count (not pool idleness), so a server sharing a pool
     * with busy siblings still shuts down as soon as its own work is
     * done.
     */
    std::int64_t inflight_batches_ = 0;
    std::mutex inflight_mutex_;
    std::condition_variable inflight_cv_;

    /**
     * Pool of per-batch execution contexts — the whole concurrency
     * story: each in-flight batch owns one while it runs, weights are
     * never written, so no model mutex exists anywhere.
     */
    std::vector<std::unique_ptr<nn::ExecutionContext>> contexts_;
    std::vector<nn::ExecutionContext*> free_contexts_;
    std::mutex ctx_mutex_;
    std::condition_variable ctx_cv_;

    mutable std::mutex stats_mutex_;
    ServerStats stats_;
    Stopwatch lifetime_;
};

}  // namespace runtime
}  // namespace shredder

#endif  // SHREDDER_RUNTIME_INFERENCE_SERVER_H
