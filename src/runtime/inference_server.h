/**
 * @file
 * Batched cloud-side inference front end (the serving path).
 *
 * A deployed Shredder service receives a stream of independent
 * requests, each carrying one noisy — or, here, to-be-noised —
 * intermediate activation captured at the cutting point on an edge
 * device. Running the cloud half R once per request wastes the batch
 * efficiency of the GEMM kernels, so the server fuses concurrent
 * requests into batches:
 *
 *   submit(a) ──► request queue ──► dispatcher (forms batches of up
 *   to `max_batch`, waiting at most `batch_timeout_ms` for stragglers)
 *   ──► thread pool (adds per-request noise drawn from the learned
 *   `NoiseCollection`, runs `SplitModel::cloud_forward` on the fused
 *   batch, scatters the logits back) ──► per-request future.
 *
 * Per-request noise sampling preserves the paper's §2.5 deployment
 * semantics: every query gets an independent draw from the noise
 * distribution, exactly as `PrivacyMeter::measure_replay` measures.
 * The draw is *derived*, not shared: each request's noise RNG is
 * seeded from (server seed, request id) via a SplitMix64 hash
 * (`noise_seed`), so concurrent draws touch no shared RNG state and a
 * replay with the same seed and ids reproduces the exact per-request
 * noise assignment regardless of batch composition or thread timing.
 *
 * Layer execution is stateless (`nn::ExecutionContext`): weights are
 * shared read-only and every in-flight batch runs `cloud_forward`
 * against its own pooled context, so up to `max_concurrent_batches`
 * cloud forwards proceed *simultaneously* on one set of parameters —
 * no per-forward model mutex, no model replication. Several servers
 * (or a live noise trainer) may even share one `SplitModel`, each
 * bringing their own contexts.
 *
 * Latency/throughput accounting uses `Stopwatch`: per-batch queue and
 * execution latency plus aggregate requests/sec are available from
 * `stats()` at any time.
 */
#ifndef SHREDDER_RUNTIME_INFERENCE_SERVER_H
#define SHREDDER_RUNTIME_INFERENCE_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/noise_collection.h"
#include "src/nn/execution_context.h"
#include "src/runtime/stopwatch.h"
#include "src/runtime/thread_pool.h"
#include "src/split/split_model.h"
#include "src/tensor/rng.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace runtime {

/** Serving knobs. */
struct InferenceServerConfig
{
    /** Max requests fused into one cloud forward. */
    std::int64_t max_batch = 8;
    /**
     * How long the dispatcher waits for stragglers once it holds at
     * least one request and fewer than `max_batch`. 0 = ship
     * immediately (latency-optimal, throughput-pessimal).
     */
    double batch_timeout_ms = 1.0;
    /** Worker threads executing batches; 0 = hardware concurrency. */
    unsigned num_workers = 1;
    /**
     * Cloud forwards allowed in flight at once — the size of the
     * server's `ExecutionContext` pool. 0 = one per worker thread.
     * Values above the worker count buy nothing (a context without a
     * thread is idle); values below it throttle the pool.
     */
    std::int64_t max_concurrent_batches = 0;
    /**
     * Add a per-request noise draw from the collection before the
     * cloud forward. Off = serve the raw activation (the paper's
     * "original execution" baseline).
     */
    bool apply_noise = true;
    /**
     * Root seed of the per-request noise draws. Request `id` draws
     * with `Rng(noise_seed(seed, id))`, so one root seed fixes the
     * whole noise assignment (see `noise_seed`).
     */
    std::uint64_t seed = 0xC0FFEE;
    /**
     * Per-sample activation shape at the cut (rank 1–3). When set
     * (rank > 0) it fixes the server's shape contract at
     * construction. When unset, the contract comes from the noise
     * collection, or — with neither — is adopted from the first
     * submitted request, which the server cannot validate against
     * the model: production deployments should pin it here or serve
     * with a collection.
     */
    Shape sample_shape{};
};

/** Aggregate serving statistics (see `InferenceServer::stats`). */
struct ServerStats
{
    std::int64_t requests = 0;       ///< Requests completed.
    std::int64_t batches = 0;        ///< Batches executed.
    double busy_ms = 0.0;            ///< Σ per-batch execution time.
    double queue_ms = 0.0;           ///< Σ per-request queue wait.
    double wall_seconds = 0.0;       ///< Server lifetime so far.
    std::int64_t max_batch_seen = 0; ///< Largest batch executed.

    /** Mean requests fused per batch. */
    double mean_batch_size() const
    {
        return batches > 0
                   ? static_cast<double>(requests) /
                         static_cast<double>(batches)
                   : 0.0;
    }

    /** Mean execution latency of one batch, ms. */
    double mean_batch_latency_ms() const
    {
        return batches > 0 ? busy_ms / static_cast<double>(batches) : 0.0;
    }

    /** Mean queue wait of one request, ms. */
    double mean_queue_wait_ms() const
    {
        return requests > 0 ? queue_ms / static_cast<double>(requests)
                            : 0.0;
    }

    /** Completed requests per wall-clock second. */
    double requests_per_sec() const
    {
        return wall_seconds > 0.0
                   ? static_cast<double>(requests) / wall_seconds
                   : 0.0;
    }
};

/** See file comment. */
class InferenceServer
{
  public:
    /**
     * @param model       Split view of the frozen network; the server
     *                    runs its cloud half (read-only — the model
     *                    may be shared with other servers or
     *                    measurement code). Must outlive the server.
     * @param collection  Learned noise distribution sampled once per
     *                    request; may be null only when
     *                    `config.apply_noise` is false. Must outlive
     *                    the server.
     * @param config      Serving knobs.
     */
    InferenceServer(split::SplitModel& model,
                    const core::NoiseCollection* collection,
                    const InferenceServerConfig& config = {});

    /** Drains outstanding requests, then stops the workers. */
    ~InferenceServer();

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    /**
     * Enqueue one request with an auto-assigned id
     * (`kAutoIdBase + n` for the n-th auto submit, so
     * single-threaded submission is replayable and never collides
     * with explicit ids).
     *
     * @param activation One sample's activation at the cutting point —
     *                   any shape whose element count matches the
     *                   cut's per-sample activation size.
     * @return Future resolving to that sample's logits (rank-1).
     *         Resolves to `std::runtime_error` for a malformed
     *         request or a submit after `shutdown` began. Requests
     *         accepted before shutdown are always served: `shutdown`
     *         drains the queue.
     */
    std::future<Tensor> submit(Tensor activation);

    /**
     * Enqueue one request under a caller-chosen id. The id only
     * selects the request's noise draw (`noise_seed(seed, id)`),
     * making the assignment independent of submission interleaving —
     * multi-threaded clients that pass stable ids get bit-identical
     * noise on every replay. Reusing an id reuses its draw, so keep
     * ids unique and below `kAutoIdBase` (auto-assigned ids live in
     * the upper half-space, so the two schemes never share a draw).
     */
    std::future<Tensor> submit(Tensor activation, std::uint64_t request_id);

    /** Blocking convenience wrapper around `submit`. */
    Tensor infer(const Tensor& activation);

    /**
     * Stop accepting new requests, serve everything already queued,
     * and join the workers. Idempotent; called by the destructor.
     */
    void shutdown();

    /** True until `shutdown` begins. */
    bool running() const;

    /** Snapshot of the aggregate counters. */
    ServerStats stats() const;

    /**
     * Per-sample activation shape the server expects (no batch dim).
     * Rank 0 until fixed — by the noise collection at construction,
     * or by the first submitted request otherwise.
     */
    Shape sample_shape() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return sample_shape_;
    }

    /** Contexts available for concurrent cloud forwards. */
    std::int64_t max_concurrent_batches() const
    {
        return static_cast<std::int64_t>(contexts_.size());
    }

    /**
     * Auto-assigned request ids are `kAutoIdBase + n` for the n-th
     * auto submit, keeping them disjoint from well-behaved explicit
     * ids (callers should stay below this base): two distinct
     * requests must never silently share a noise draw.
     */
    static constexpr std::uint64_t kAutoIdBase = 1ULL << 63;

    /**
     * Seed of request `request_id`'s private noise RNG under root
     * seed `root_seed` (SplitMix64 of the pair). Pure function —
     * exposed so tests and offline replay can reproduce the server's
     * exact per-request draws:
     * `collection.draw(Rng(noise_seed(seed, id)))`.
     */
    static std::uint64_t noise_seed(std::uint64_t root_seed,
                                    std::uint64_t request_id);

  private:
    struct Request
    {
        Tensor activation;
        std::promise<Tensor> promise;
        std::uint64_t id = 0;  ///< Selects the noise draw.
        Stopwatch queued;      ///< Started at submit time.
    };

    /** Shared submit path; has_id=false auto-assigns from the counter. */
    std::future<Tensor> submit_impl(Tensor activation, bool has_id,
                                    std::uint64_t request_id);

    /** Dispatcher loop: form batches, hand them to the pool. */
    void dispatch_loop();

    /** Execute one formed batch on a pool worker. */
    void execute_batch(std::vector<Request> batch);

    /** Block until a pooled context is free, then take it. */
    nn::ExecutionContext* acquire_context();

    /** Return a context taken with `acquire_context`. */
    void release_context(nn::ExecutionContext* ctx);

    split::SplitModel& model_;
    const core::NoiseCollection* collection_;
    InferenceServerConfig config_;
    Shape sample_shape_;        ///< Per-sample activation shape.
    std::int64_t sample_size_;  ///< Elements per activation.

    ThreadPool pool_;
    std::thread dispatcher_;
    std::mutex shutdown_mutex_;  ///< join() must run exactly once.

    /** Guards queue_, accepting_, ids and the lazily-fixed shape. */
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool accepting_ = true;
    bool stop_dispatcher_ = false;
    std::uint64_t next_request_id_ = 0;

    /**
     * Pool of per-batch execution contexts — the whole concurrency
     * story: each in-flight batch owns one while it runs, weights are
     * never written, so no model mutex exists anywhere.
     */
    std::vector<std::unique_ptr<nn::ExecutionContext>> contexts_;
    std::vector<nn::ExecutionContext*> free_contexts_;
    std::mutex ctx_mutex_;
    std::condition_variable ctx_cv_;

    mutable std::mutex stats_mutex_;
    ServerStats stats_;
    Stopwatch lifetime_;
};

}  // namespace runtime
}  // namespace shredder

#endif  // SHREDDER_RUNTIME_INFERENCE_SERVER_H
