/**
 * @file
 * Batched cloud-side inference front end (the serving path).
 *
 * A deployed Shredder service receives a stream of independent
 * requests, each carrying one noisy — or, here, to-be-noised —
 * intermediate activation captured at the cutting point on an edge
 * device. Running the cloud half R once per request wastes the batch
 * efficiency of the GEMM kernels, so the server fuses concurrent
 * requests into batches:
 *
 *   submit(a) ──► request queue ──► dispatcher (forms batches of up
 *   to `max_batch`, waiting at most `batch_timeout_ms` for stragglers)
 *   ──► thread pool (adds per-request noise drawn from the learned
 *   `NoiseCollection`, runs `SplitModel::cloud_forward` on the fused
 *   batch, scatters the logits back) ──► per-request future.
 *
 * Per-request noise sampling preserves the paper's §2.5 deployment
 * semantics: every query gets an independent draw from the noise
 * distribution, exactly as `PrivacyMeter::measure_replay` measures.
 * The model forward itself is serialized by a per-server mutex (layer
 * caches are not reentrant); batch assembly, noise addition and
 * result scatter run on the pool and overlap with it. The server
 * therefore assumes *exclusive* use of the model's cloud half: two
 * servers sharing one `SplitModel` would race on the layer caches —
 * give each server its own model (or its own `Sequential` replica).
 *
 * Latency/throughput accounting uses `Stopwatch`: per-batch queue and
 * execution latency plus aggregate requests/sec are available from
 * `stats()` at any time.
 */
#ifndef SHREDDER_RUNTIME_INFERENCE_SERVER_H
#define SHREDDER_RUNTIME_INFERENCE_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/noise_collection.h"
#include "src/runtime/stopwatch.h"
#include "src/runtime/thread_pool.h"
#include "src/split/split_model.h"
#include "src/tensor/rng.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace runtime {

/** Serving knobs. */
struct InferenceServerConfig
{
    /** Max requests fused into one cloud forward. */
    std::int64_t max_batch = 8;
    /**
     * How long the dispatcher waits for stragglers once it holds at
     * least one request and fewer than `max_batch`. 0 = ship
     * immediately (latency-optimal, throughput-pessimal).
     */
    double batch_timeout_ms = 1.0;
    /** Worker threads executing batches; 0 = hardware concurrency. */
    unsigned num_workers = 1;
    /**
     * Add a per-request noise draw from the collection before the
     * cloud forward. Off = serve the raw activation (the paper's
     * "original execution" baseline).
     */
    bool apply_noise = true;
    /** Seed of the server's private noise-sampling RNG. */
    std::uint64_t seed = 0xC0FFEE;
    /**
     * Per-sample activation shape at the cut (rank 1–3). When set
     * (rank > 0) it fixes the server's shape contract at
     * construction. When unset, the contract comes from the noise
     * collection, or — with neither — is adopted from the first
     * submitted request, which the server cannot validate against
     * the model: production deployments should pin it here or serve
     * with a collection.
     */
    Shape sample_shape{};
};

/** Aggregate serving statistics (see `InferenceServer::stats`). */
struct ServerStats
{
    std::int64_t requests = 0;       ///< Requests completed.
    std::int64_t batches = 0;        ///< Batches executed.
    double busy_ms = 0.0;            ///< Σ per-batch execution time.
    double queue_ms = 0.0;           ///< Σ per-request queue wait.
    double wall_seconds = 0.0;       ///< Server lifetime so far.
    std::int64_t max_batch_seen = 0; ///< Largest batch executed.

    /** Mean requests fused per batch. */
    double mean_batch_size() const
    {
        return batches > 0
                   ? static_cast<double>(requests) /
                         static_cast<double>(batches)
                   : 0.0;
    }

    /** Mean execution latency of one batch, ms. */
    double mean_batch_latency_ms() const
    {
        return batches > 0 ? busy_ms / static_cast<double>(batches) : 0.0;
    }

    /** Mean queue wait of one request, ms. */
    double mean_queue_wait_ms() const
    {
        return requests > 0 ? queue_ms / static_cast<double>(requests)
                            : 0.0;
    }

    /** Completed requests per wall-clock second. */
    double requests_per_sec() const
    {
        return wall_seconds > 0.0
                   ? static_cast<double>(requests) / wall_seconds
                   : 0.0;
    }
};

/** See file comment. */
class InferenceServer
{
  public:
    /**
     * @param model       Split view of the frozen network; the server
     *                    runs its cloud half. Must outlive the server.
     * @param collection  Learned noise distribution sampled once per
     *                    request; may be null only when
     *                    `config.apply_noise` is false. Must outlive
     *                    the server.
     * @param config      Serving knobs.
     */
    InferenceServer(split::SplitModel& model,
                    const core::NoiseCollection* collection,
                    const InferenceServerConfig& config = {});

    /** Drains outstanding requests, then stops the workers. */
    ~InferenceServer();

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    /**
     * Enqueue one request.
     *
     * @param activation One sample's activation at the cutting point —
     *                   any shape whose element count matches the
     *                   cut's per-sample activation size.
     * @return Future resolving to that sample's logits (rank-1).
     *         Resolves to `std::runtime_error` for a malformed
     *         request or a submit after `shutdown` began. Requests
     *         accepted before shutdown are always served: `shutdown`
     *         drains the queue.
     */
    std::future<Tensor> submit(Tensor activation);

    /** Blocking convenience wrapper around `submit`. */
    Tensor infer(const Tensor& activation);

    /**
     * Stop accepting new requests, serve everything already queued,
     * and join the workers. Idempotent; called by the destructor.
     */
    void shutdown();

    /** True until `shutdown` begins. */
    bool running() const;

    /** Snapshot of the aggregate counters. */
    ServerStats stats() const;

    /**
     * Per-sample activation shape the server expects (no batch dim).
     * Rank 0 until fixed — by the noise collection at construction,
     * or by the first submitted request otherwise.
     */
    Shape sample_shape() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return sample_shape_;
    }

  private:
    struct Request
    {
        Tensor activation;
        std::promise<Tensor> promise;
        Stopwatch queued;  ///< Started at submit time.
    };

    /** Dispatcher loop: form batches, hand them to the pool. */
    void dispatch_loop();

    /** Execute one formed batch on a pool worker. */
    void execute_batch(std::vector<Request> batch);

    split::SplitModel& model_;
    const core::NoiseCollection* collection_;
    InferenceServerConfig config_;
    Shape sample_shape_;        ///< Per-sample activation shape.
    std::int64_t sample_size_;  ///< Elements per activation.

    ThreadPool pool_;
    std::thread dispatcher_;
    std::mutex shutdown_mutex_;  ///< join() must run exactly once.

    /** Guards queue_, accepting_ and the lazily-fixed sample shape. */
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool accepting_ = true;
    bool stop_dispatcher_ = false;

    std::mutex model_mutex_;  ///< Layer caches are not reentrant.
    std::mutex rng_mutex_;    ///< Noise draws from pool workers.
    Rng rng_;

    mutable std::mutex stats_mutex_;
    ServerStats stats_;
    Stopwatch lifetime_;
};

}  // namespace runtime
}  // namespace shredder

#endif  // SHREDDER_RUNTIME_INFERENCE_SERVER_H
