/**
 * @file
 * Noise policies: the pluggable per-request noise mechanism (§2.5).
 *
 * The paper's deployment phase describes two ways to noise a query's
 * transmitted activation — replay a stored tensor from the learned
 * collection, or draw fresh noise from the distribution fitted to it —
 * and the measurement harness adds two baselines (no noise; one fixed
 * tensor). Beyond the paper, the shuffling literature contributes a
 * complementary mechanism — per-request permutation of the activation
 * elements (`ShufflePolicy`) — and mechanisms compose into ordered
 * chains (`ComposedPolicy`, e.g. sample-then-shuffle). A `NoisePolicy`
 * captures exactly one such mechanism behind one call:
 *
 *     Tensor noisy = policy.apply(activation, request_id);
 *
 * The contract:
 *
 *  - **Pure in the request id.** `apply` is `const` and derives every
 *    random choice from `noise_seed(seed, request_id)` — a SplitMix64
 *    hash of (policy seed, id). The same (policy, id) pair always
 *    produces the same noise, no matter which thread calls, in what
 *    order, or how requests were batched. Replayability and
 *    concurrency-independence fall out of the same property.
 *  - **Thread-safe.** `apply` touches no mutable policy state; any
 *    number of server workers (or a measurement pass) may share one
 *    policy object concurrently.
 *  - **Shape-preserving.** The result has the activation's shape;
 *    noise is added by flat element index, so a caller may present the
 *    activation as [C, H, W] or flattened [C·H·W].
 *
 * Because `PrivacyMeter` measures through the same policy objects the
 * servers execute (see `measure_policy`), the mechanism whose privacy
 * is reported is bit-for-bit the mechanism that is deployed.
 */
#ifndef SHREDDER_RUNTIME_NOISE_POLICY_H
#define SHREDDER_RUNTIME_NOISE_POLICY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/tensor/quantize.h"
#include "src/tensor/rng.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace runtime {

/**
 * Seed of request `request_id`'s private noise RNG under root seed
 * `root_seed` (two SplitMix64 mixing rounds, so (seed, id) pairs stay
 * far apart even for consecutive ids). Pure function — exposed so
 * tests and offline replay can reproduce any policy's exact draw:
 * e.g. `collection.draw(Rng(noise_seed(seed, id)))`.
 */
std::uint64_t noise_seed(std::uint64_t root_seed,
                         std::uint64_t request_id);

/** See file comment. */
class NoisePolicy
{
  public:
    virtual ~NoisePolicy() = default;

    /**
     * Return `activation` with this policy's noise for `request_id`
     * added (same shape; noise indexed flat). Thread-safe; pure in
     * (activation, request_id).
     */
    virtual Tensor apply(const Tensor& activation,
                         std::uint64_t request_id) const = 0;

    /**
     * Per-sample shape this policy's noise imposes on activations, or
     * a rank-0 shape when the policy accepts any shape (`NoNoisePolicy`).
     * Servers adopt this as their shape contract.
     */
    virtual Shape noise_shape() const { return Shape{}; }

    /**
     * Short mechanism tag ("none", "replay", "sample", "fixed",
     * "shuffle", "shuffle-rank", or a "+"-joined composition such as
     * "sample+shuffle").
     */
    virtual std::string name() const = 0;

    /**
     * Hot-path variant: add the noise for `request_id` onto `dst`
     * (length `activation.size()`), which already holds a copy of the
     * activation. Semantically identical to `apply` — overridden where
     * skipping the temporary tensor matters (the server's fused-batch
     * assembly). The default delegates to `apply`.
     */
    virtual void apply_into(const Tensor& activation,
                            std::uint64_t request_id, float* dst) const;

    /**
     * True when this policy is purely additive: apply(x, id) ==
     * x + noise(id) with noise independent of the activation values.
     * Additive policies let the server fold the noise into the int8
     * GEMM packing pass (the noise row is recovered as
     * `apply(zeros, id)`). Activation-dependent mechanisms (shuffle,
     * rank-matched shuffle, quantize) must return false.
     */
    virtual bool additive() const { return false; }
};

/**
 * The paper's "original execution" baseline: the activation passes
 * through untouched. Useful as a served endpoint (clean reference
 * traffic) and as the meter's clean mode.
 */
class NoNoisePolicy final : public NoisePolicy
{
  public:
    NoNoisePolicy() = default;

    Tensor apply(const Tensor& activation,
                 std::uint64_t request_id) const override;
    std::string name() const override { return "none"; }
    bool additive() const override { return true; }
    void apply_into(const Tensor& activation, std::uint64_t request_id,
                    float* dst) const override;
};

/**
 * Replay deployment (paper §2.5, "we just sample from pre-trained
 * noises"): request `id` draws one stored tensor from the learned
 * collection with `Rng(noise_seed(seed, id))` and adds it. This is the
 * historical `InferenceServer` behavior, now named.
 *
 * Borrows the collection; it must outlive the policy.
 */
class ReplayPolicy final : public NoisePolicy
{
  public:
    /**
     * @param collection Non-empty learned collection (borrowed).
     * @param seed       Root seed of the id-keyed draws.
     */
    explicit ReplayPolicy(const core::NoiseCollection& collection,
                          std::uint64_t seed = 0xC0FFEE);

    Tensor apply(const Tensor& activation,
                 std::uint64_t request_id) const override;
    Shape noise_shape() const override;
    std::string name() const override { return "replay"; }
    bool additive() const override { return true; }
    void apply_into(const Tensor& activation, std::uint64_t request_id,
                    float* dst) const override;

    std::uint64_t seed() const { return seed_; }
    const core::NoiseCollection& collection() const { return collection_; }

  private:
    const core::NoiseCollection& collection_;
    std::uint64_t seed_;
};

/**
 * Distribution-sampling deployment — the paper's true
 * information-destruction mode: request `id` draws a *fresh* noise
 * tensor, element by element, from the distribution fitted to the
 * collection. Unlike replay (a draw from a finite set) this injects
 * genuine per-query channel randomness, which is what actually
 * destroys mutual information (see noise_distribution.h).
 *
 * Owns its distribution (a fit is cheap to copy and policies must stay
 * self-contained for engine-owned lifetimes).
 */
class SamplePolicy final : public NoisePolicy
{
  public:
    /**
     * @param distribution Fitted per-element distribution (copied in).
     * @param seed         Root seed of the id-keyed draws.
     */
    explicit SamplePolicy(core::NoiseDistribution distribution,
                          std::uint64_t seed = 0xC0FFEE);

    /** Convenience: fit the distribution from a collection first. */
    SamplePolicy(const core::NoiseCollection& collection,
                 core::NoiseFamily family, std::uint64_t seed);

    Tensor apply(const Tensor& activation,
                 std::uint64_t request_id) const override;
    Shape noise_shape() const override;
    std::string name() const override { return "sample"; }
    bool additive() const override { return true; }
    void apply_into(const Tensor& activation, std::uint64_t request_id,
                    float* dst) const override;

    std::uint64_t seed() const { return seed_; }
    const core::NoiseDistribution& distribution() const { return dist_; }

  private:
    core::NoiseDistribution dist_;
    std::uint64_t seed_;
};

/**
 * One fixed tensor on every request — the deterministic (and therefore
 * information-preserving) transform whose weakness motivates the
 * paper's sampling phase. Kept as a policy so the meter's "fixed"
 * mode and an ablation endpoint run the same code. Ignores the
 * request id.
 */
class FixedNoisePolicy final : public NoisePolicy
{
  public:
    /** @param noise The tensor added to every activation (copied in). */
    explicit FixedNoisePolicy(Tensor noise);

    Tensor apply(const Tensor& activation,
                 std::uint64_t request_id) const override;
    Shape noise_shape() const override { return noise_.shape(); }
    std::string name() const override { return "fixed"; }
    bool additive() const override { return true; }
    void apply_into(const Tensor& activation, std::uint64_t request_id,
                    float* dst) const override;

  private:
    Tensor noise_;
};

/**
 * The wire codec as a mechanism: apply() returns
 * dequantize(quantize(activation)) — exactly the distortion an int8 or
 * int16 transport adds to the activation before any server-side noise.
 * Deterministic and id-independent (the affine code depends only on
 * the activation's own range).
 *
 * Compose it BEFORE a noise policy
 * (`ComposedPolicy{quantize, noise}`) to reproduce the served
 * mechanism of a `wire_dtype=int8` endpoint: the client quantizes the
 * raw activation, the server dequantizes (implicitly or inside the
 * int8 GEMM) and then applies the endpoint's noise policy. Running
 * `PrivacyMeter::measure_policy` and accuracy sweeps through that
 * composition keeps measured = served for quantized endpoints.
 *
 * Not additive (the distortion depends on the activation), so the
 * server never folds it into the GEMM — it doesn't need to, since the
 * codec happens on the wire itself.
 */
class QuantizePolicy final : public NoisePolicy
{
  public:
    /** @param dtype Wire encoding to simulate (kI8 or kI16). */
    explicit QuantizePolicy(WireDtype dtype);

    Tensor apply(const Tensor& activation,
                 std::uint64_t request_id) const override;
    std::string name() const override;

    WireDtype dtype() const { return dtype_; }

  private:
    WireDtype dtype_;
};

/**
 * Per-request permutation of the activation elements — the shuffling
 * mechanism of the local-DP shuffling literature (Meehan et al.;
 * IntraShuffler) as a Shredder policy. Two variants:
 *
 *  - **Plain** (default): request `id` permutes the activation with a
 *    Fisher–Yates shuffle seeded by `noise_seed(seed, id)` —
 *    `out[j] = act[perm_id[j]]`. Values survive; positions don't. A
 *    party holding (seed, id) inverts it exactly (`invert`), so a
 *    trusted cloud loses zero accuracy while the wire sees only an
 *    unordered multiset per query.
 *  - **Rank-matched** (construct with a fitted distribution): the
 *    SNIPPETS-style argsort trick. Request `id` draws a fresh noise
 *    tensor from the distribution, reorders the draws so their ranks
 *    match the activation's ranks (the k-th smallest draw lands on the
 *    position of the k-th smallest activation element), and adds the
 *    result — rank-correlated additive noise instead of a permutation.
 *
 * Both are pure in (activation, request id) and add near-zero serving
 * cost (one O(n) pass plus, for rank-match, two argsorts).
 */
class ShufflePolicy final : public NoisePolicy
{
  public:
    /** Plain permutation variant. @param seed Root seed of the draws. */
    explicit ShufflePolicy(std::uint64_t seed = 0xC0FFEE);

    /**
     * Rank-matched variant.
     *
     * @param distribution Fitted per-element distribution (copied in);
     *                     its shape becomes the policy's shape contract.
     * @param seed         Root seed of the id-keyed draws.
     */
    explicit ShufflePolicy(core::NoiseDistribution distribution,
                           std::uint64_t seed = 0xC0FFEE);

    Tensor apply(const Tensor& activation,
                 std::uint64_t request_id) const override;
    Shape noise_shape() const override;
    std::string name() const override
    {
        return rank_matched() ? "shuffle-rank" : "shuffle";
    }
    void apply_into(const Tensor& activation, std::uint64_t request_id,
                    float* dst) const override;

    /**
     * Undo the plain permutation of `request_id` (a cloud holding the
     * root seed recovers the exact activation; see file comment).
     * Fatal on a rank-matched policy — added noise has no inverse.
     */
    Tensor invert(const Tensor& shuffled, std::uint64_t request_id) const;

    std::uint64_t seed() const { return seed_; }
    bool rank_matched() const { return dist_.has_value(); }
    /** The fitted distribution (valid only when `rank_matched()`). */
    const core::NoiseDistribution& distribution() const { return *dist_; }

  private:
    std::optional<core::NoiseDistribution> dist_;
    std::uint64_t seed_;
};

/**
 * An ordered chain of policies applied as one mechanism: stage 0
 * first, then stage 1 on its output, and so on (so a chain
 * {sample, shuffle} is the mathematical shuffle∘sample — noise first,
 * then permutation). The composition contract:
 *
 *  - **Ordering.** `apply` feeds each stage the previous stage's
 *    output; `name()` joins the stage tags with "+" in application
 *    order ("sample+shuffle").
 *  - **Seed derivation.** Every stage keeps its own root seed and
 *    draws with `noise_seed(stage seed, request_id)` under the SAME
 *    request id — the chain is pure in the id because each stage is.
 *    Compose two instances of the same mechanism under distinct root
 *    seeds, or they will make identical choices (two same-seed
 *    shuffles cancel pairwise structure rather than deepening it).
 *  - **Shape.** Stages that pin a shape must agree on the element
 *    count; `noise_shape()` is the first stage's non-rank-0 shape.
 *
 * Stages are shared (`shared_ptr`), so a composed endpoint and a bare
 * endpoint may serve the very same stage object, and the meter may
 * measure either.
 */
class ComposedPolicy final : public NoisePolicy
{
  public:
    /** @param stages Non-empty, non-null chain, application order. */
    explicit ComposedPolicy(
        std::vector<std::shared_ptr<const NoisePolicy>> stages);

    Tensor apply(const Tensor& activation,
                 std::uint64_t request_id) const override;
    Shape noise_shape() const override;
    std::string name() const override;
    /** Additive iff every stage is (noise rows then sum in order). */
    bool additive() const override;

    const std::vector<std::shared_ptr<const NoisePolicy>>& stages() const
    {
        return stages_;
    }

  private:
    std::vector<std::shared_ptr<const NoisePolicy>> stages_;
};

}  // namespace runtime
}  // namespace shredder

#endif  // SHREDDER_RUNTIME_NOISE_POLICY_H
