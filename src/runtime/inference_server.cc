/**
 * @file
 * Implementation of the batched inference server (see header).
 */
#include "src/runtime/inference_server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "src/nn/flatten.h"
#include "src/nn/linear.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace runtime {

namespace {

/** Prepend a batch dimension to a per-sample shape. */
Shape
batched_shape(const Shape& sample, std::int64_t n)
{
    switch (sample.rank()) {
      case 1: return Shape({n, sample[0]});
      case 2: return Shape({n, sample[0], sample[1]});
      case 3: return Shape({n, sample[0], sample[1], sample[2]});
      default:
        SHREDDER_PANIC("cannot batch per-sample activation of rank ",
                       sample.rank());
    }
}

/** Build the shim's policy from the legacy (collection, flag) pair. */
std::unique_ptr<const NoisePolicy>
shim_policy(const core::NoiseCollection* collection,
            const InferenceServerConfig& config)
{
    if (!config.apply_noise) {
        return std::make_unique<NoNoisePolicy>();
    }
    SHREDDER_REQUIRE(collection != nullptr && !collection->empty(),
                     "apply_noise requires a non-empty noise "
                     "collection");
    // Same seed derivation as the historical in-server draw
    // (`Rng(noise_seed(config.seed, id))`), so the shim is bit-exact
    // with the pre-policy server.
    return std::make_unique<ReplayPolicy>(*collection, config.seed);
}

/**
 * The legacy constructor derived the server's shape contract from the
 * collection even with `apply_noise` off (a no-noise server could
 * still validate request shapes against it). `NoNoisePolicy` carries
 * no shape, so preserve that behavior through the config pin.
 */
InferenceServerConfig
shim_config(const core::NoiseCollection* collection,
            InferenceServerConfig config)
{
    if (!config.apply_noise && config.sample_shape.rank() == 0 &&
        collection != nullptr && !collection->empty()) {
        config.sample_shape = collection->noise_shape();
    }
    return config;
}

}  // namespace

int
ServerStats::queue_wait_bucket(double ms)
{
    // Bucket i covers waits ≤ 2^i µs; the last bucket absorbs the
    // rest. A linear scan beats a log() call at these sizes and runs
    // off the hot path anyway (once per request, under stats_mutex_).
    double upper_us = 1.0;
    for (int i = 0; i < kQueueWaitBuckets - 1; ++i) {
        if (ms * 1e3 <= upper_us) {
            return i;
        }
        upper_us *= 2.0;
    }
    return kQueueWaitBuckets - 1;
}

double
ServerStats::queue_wait_percentile_ms(double p) const
{
    std::int64_t total = 0;
    for (const std::int64_t count : queue_wait_hist) {
        total += count;
    }
    if (total == 0) {
        return 0.0;
    }
    const double target = p * static_cast<double>(total);
    std::int64_t cumulative = 0;
    double upper_us = 1.0;
    for (int i = 0; i < kQueueWaitBuckets; ++i) {
        cumulative += queue_wait_hist[i];
        if (static_cast<double>(cumulative) >= target) {
            return upper_us * 1e-3;
        }
        upper_us *= 2.0;
    }
    return upper_us * 1e-3;
}

std::uint64_t
InferenceServer::noise_seed(std::uint64_t root_seed,
                            std::uint64_t request_id)
{
    return runtime::noise_seed(root_seed, request_id);
}

InferenceServer::InferenceServer(split::SplitModel& model,
                                 const NoisePolicy& policy,
                                 const InferenceServerConfig& config)
    : InferenceServer(model, &policy, nullptr, config)
{
}

InferenceServer::InferenceServer(split::SplitModel& model,
                                 const core::NoiseCollection* collection,
                                 const InferenceServerConfig& config)
    : InferenceServer(model, nullptr, shim_policy(collection, config),
                      shim_config(collection, config))
{
}

InferenceServer::InferenceServer(
    split::SplitModel& model, const NoisePolicy* policy,
    std::unique_ptr<const NoisePolicy> owned_policy,
    const InferenceServerConfig& config)
    : model_(model),
      owned_policy_(std::move(owned_policy)),
      policy_(policy != nullptr ? policy : owned_policy_.get()),
      config_(config),
      sample_size_(0),
      controller_(config.controller),
      bucket_(config.rate_limit_qps, config.rate_limit_burst)
{
    SHREDDER_CHECK(policy_ != nullptr, "server constructed with no policy");
    SHREDDER_REQUIRE(config_.max_batch >= 1,
                     "max_batch must be positive, got ",
                     config_.max_batch);
    SHREDDER_REQUIRE(config_.max_concurrent_batches >= 0,
                     "max_concurrent_batches must be >= 0, got ",
                     config_.max_concurrent_batches);
    SHREDDER_REQUIRE(config_.max_in_flight >= 0,
                     "max_in_flight must be >= 0, got ",
                     config_.max_in_flight);
    SHREDDER_REQUIRE(config_.rate_limit_qps >= 0.0,
                     "rate_limit_qps must be >= 0, got ",
                     config_.rate_limit_qps);
    if (config_.pool != nullptr) {
        pool_ = config_.pool;
    } else {
        owned_pool_ = std::make_unique<ThreadPool>(config_.num_workers);
        pool_ = owned_pool_.get();
    }

    const Shape policy_shape = policy_->noise_shape();
    if (config_.sample_shape.rank() > 0) {
        sample_shape_ = config_.sample_shape;
    } else if (policy_shape.rank() > 0) {
        sample_shape_ = policy_shape;
    }
    if (sample_shape_.rank() > 0) {
        // Setup-time user error: a contract that cannot grow a batch
        // dimension would otherwise abort on a pool worker later.
        SHREDDER_REQUIRE(sample_shape_.rank() <= 3,
                         "per-sample activation shape must have rank "
                         "1-3, got ", sample_shape_.to_string());
        sample_size_ = sample_shape_.numel();
        if (policy_shape.rank() > 0) {
            SHREDDER_REQUIRE(
                policy_shape.numel() == sample_size_,
                "policy noise (", policy_shape.to_string(),
                ") does not match the configured per-sample shape ",
                sample_shape_.to_string());
        }
    }

    // One execution context per concurrent batch: the contexts, not
    // the model, carry all per-forward state.
    const std::int64_t n_ctx =
        config_.max_concurrent_batches > 0
            ? config_.max_concurrent_batches
            : static_cast<std::int64_t>(pool_->size());
    contexts_.reserve(static_cast<std::size_t>(n_ctx));
    free_contexts_.reserve(static_cast<std::size_t>(n_ctx));
    for (std::int64_t i = 0; i < n_ctx; ++i) {
        const auto ctx_tag = 0xC7C7C7C7ULL + static_cast<std::uint64_t>(i);
        contexts_.push_back(std::make_unique<nn::ExecutionContext>(
            noise_seed(config_.seed, ctx_tag)));
        // Serving never back-propagates: skip the per-layer activation
        // caches (one full tensor copy per layer per batch otherwise).
        contexts_.back()->set_retain_activations(false);
        free_contexts_.push_back(contexts_.back().get());
    }

    prepare_direct_path();

    dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void
InferenceServer::prepare_direct_path()
{
    // All preconditions are structural and known at construction; a
    // batch additionally requires a uniform encoding (all-int8 for
    // the int8 path, all-fp32 for the fused path).
    if (!policy_->additive() || sample_size_ == 0) {
        return;
    }
    nn::Sequential& net = model_.network();
    std::int64_t idx = model_.cut();
    if (idx < net.size() &&
        dynamic_cast<nn::Flatten*>(&net.layer(idx)) != nullptr) {
        ++idx;
    }
    if (idx >= net.size()) {
        return;
    }
    auto* linear = dynamic_cast<nn::Linear*>(&net.layer(idx));
    if (linear == nullptr || linear->in_features() != sample_size_) {
        return;
    }
    direct_bias_ =
        linear->has_bias() ? linear->bias().value.data() : nullptr;
    direct_out_features_ = linear->out_features();
    tail_begin_ = idx + 1;

    if (config_.fuse_fp32_noise) {
        // The fused path recovers each request's noise as a single
        // row (`apply(0, id)`) and performs ONE fp32 add per element.
        // A multi-stage additive composition rounds between stages on
        // the general path (`(a + n1) + n2`), which one fused add
        // (`a + (n1 + n2)`) cannot reproduce bit-for-bit — so those
        // stay on the general path regardless of batch composition.
        const auto* composed =
            dynamic_cast<const ComposedPolicy*>(policy_);
        if (composed == nullptr || composed->stages().size() <= 1) {
            f32_weights_ = linear->weight().value.data();
            fp32_ready_ = true;
        }
    }

    if (config_.int8_compute && linear->in_features() <= kS8MaxK) {
        s8_weights_ = prepare_s8_weights(linear->weight().value.data(),
                                         linear->out_features(),
                                         linear->in_features());
        int8_ready_ = true;
    }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<Tensor>
InferenceServer::submit(Tensor activation)
{
    return submit_impl(std::move(activation), /*has_id=*/false, 0);
}

std::future<Tensor>
InferenceServer::submit(Tensor activation, std::uint64_t request_id)
{
    return submit_impl(std::move(activation), /*has_id=*/true, request_id);
}

std::future<Tensor>
InferenceServer::submit_impl(Tensor activation, bool has_id,
                             std::uint64_t request_id)
{
    Request request;
    const Shape shape = activation.shape();
    const std::int64_t numel = activation.size();
    request.activation = std::move(activation);
    return enqueue(std::move(request), shape, numel, has_id, request_id);
}

std::future<Tensor>
InferenceServer::submit_quantized(QuantizedTensor activation,
                                  std::uint64_t request_id)
{
    if (static_cast<std::int64_t>(activation.data.size()) !=
        activation.size() * dtype_bytes(activation.dtype)) {
        std::promise<Tensor> promise;
        std::future<Tensor> future = promise.get_future();
        promise.set_exception(std::make_exception_ptr(ServingError(
            ServingErrorCode::kInvalidShape,
            "quantized payload byte count does not match shape " +
                activation.shape.to_string() + " of " +
                to_string(activation.dtype))));
        return future;
    }
    if (activation.dtype == WireDtype::kF32) {
        // A kF32 wire tensor IS the fp32 activation — serve it on the
        // plain path (dequantize is a straight copy here).
        return submit_impl(dequantize(activation), /*has_id=*/true,
                           request_id);
    }
    Request request;
    const Shape shape = activation.shape;
    const std::int64_t numel = activation.size();
    request.quantized = std::move(activation);
    request.is_quantized = true;
    return enqueue(std::move(request), shape, numel, /*has_id=*/true,
                   request_id);
}

std::future<Tensor>
InferenceServer::enqueue(Request request, const Shape& shape,
                         std::int64_t numel, bool has_id,
                         std::uint64_t request_id)
{
    std::promise<Tensor> promise;
    std::future<Tensor> future = promise.get_future();

    // A bad request must fail its own future, never the server: other
    // clients' in-flight work stays alive.
    const auto reject = [&promise](ServingErrorCode code,
                                   const std::string& why) {
        promise.set_exception(
            std::make_exception_ptr(ServingError(code, why)));
    };

    std::unique_lock<std::mutex> lock(mutex_);
    if (!accepting_) {
        lock.unlock();
        reject(ServingErrorCode::kShutdown, "submit after shutdown");
        return future;
    }
    if (sample_size_ == 0) {
        // No policy/config shape to dictate the contract: adopt the
        // first request's shape. Only rank 1–3 can grow a batch
        // dimension (Shape::kMaxRank is 4).
        if (shape.rank() < 1 || shape.rank() > 3) {
            lock.unlock();
            reject(ServingErrorCode::kInvalidShape,
                   "per-sample activation must have rank 1-3, got " +
                       shape.to_string());
            return future;
        }
        sample_shape_ = shape;
        sample_size_ = numel;
    }
    if (numel != sample_size_) {
        const std::int64_t expected = sample_size_;
        lock.unlock();
        reject(ServingErrorCode::kInvalidShape,
               "activation size " + std::to_string(numel) +
                   " does not match the cut's per-sample size " +
                   std::to_string(expected));
        return future;
    }

    // Admission control, still under mutex_ so checks serialize with
    // other submits. The cap check precedes the bucket so a
    // cap-rejected request does not also burn a token. Rejections are
    // typed backpressure through the request's own future — queued
    // and executing work is never affected.
    if (config_.max_in_flight > 0 &&
        in_flight_requests_.load(std::memory_order_relaxed) >=
            config_.max_in_flight) {
        {
            std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++stats_.admission_rejected;
        }
        lock.unlock();
        reject(ServingErrorCode::kAdmissionReject,
               "endpoint at max_in_flight=" +
                   std::to_string(config_.max_in_flight));
        return future;
    }
    if (bucket_.enabled() && !bucket_.try_take(lifetime_.milliseconds())) {
        {
            std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++stats_.rate_limited;
        }
        lock.unlock();
        reject(ServingErrorCode::kRateLimited,
               "endpoint rate limit " +
                   std::to_string(config_.rate_limit_qps) +
                   " qps exceeded");
        return future;
    }
    in_flight_requests_.fetch_add(1, std::memory_order_relaxed);

    request.promise = std::move(promise);
    request.id = has_id ? request_id : kAutoIdBase + next_request_id_++;
    queue_.push_back(std::move(request));
    // Feed the arrival-rate EWMA (cheap; kept current even under the
    // fixed-timeout dispatcher so stats always show the traffic rate).
    controller_.on_arrival(lifetime_.milliseconds());
    lock.unlock();
    cv_.notify_one();
    return future;
}

Tensor
InferenceServer::infer(const Tensor& activation)
{
    return submit(activation).get();
}

bool
InferenceServer::running() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepting_;
}

void
InferenceServer::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        accepting_ = false;
        stop_dispatcher_ = true;
    }
    cv_.notify_all();
    {
        // Serialize concurrent shutdown callers (e.g. an explicit
        // shutdown racing the destructor): join() may run only once.
        std::lock_guard<std::mutex> lock(shutdown_mutex_);
        if (dispatcher_.joinable()) {
            dispatcher_.join();
        }
    }
    // The dispatcher is gone, so inflight_batches_ only decreases now.
    // Waiting on OUR counter (instead of pool_->wait_idle()) keeps a
    // shared-pool shutdown from blocking on sibling servers' traffic.
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    inflight_cv_.wait(lock, [this] { return inflight_batches_ == 0; });
}

ServerStats
InferenceServer::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ServerStats snapshot = stats_;
    snapshot.wall_seconds = lifetime_.seconds();
    snapshot.in_flight =
        in_flight_requests_.load(std::memory_order_relaxed);
    return snapshot;
}

void
InferenceServer::dispatch_loop()
{
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] {
            return !queue_.empty() || stop_dispatcher_;
        });
        if (queue_.empty()) {
            // stop_dispatcher_ is set and everything is drained.
            return;
        }
        // Hold the door for stragglers so batches fill up — unless we
        // are draining for shutdown, where latency wins. The window is
        // the fixed config knob, or (adaptive mode) the controller's
        // per-batch decision: predicted fill time under the current
        // arrival rate, bounded by the SLO, zero when traffic is too
        // sparse for waiting to pay.
        double window_ms = config_.batch_timeout_ms;
        if (config_.adaptive_batching) {
            window_ms = controller_.deadline_ms(
                static_cast<std::int64_t>(queue_.size()),
                config_.max_batch);
        }
        if (static_cast<std::int64_t>(queue_.size()) < config_.max_batch &&
            window_ms > 0.0 && !stop_dispatcher_) {
            const auto timeout =
                std::chrono::duration<double, std::milli>(window_ms);
            const auto deadline = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::
                                               duration>(timeout);
            cv_.wait_until(lock, deadline, [this] {
                return static_cast<std::int64_t>(queue_.size()) >=
                           config_.max_batch ||
                       stop_dispatcher_;
            });
        }
        const double ewma_snapshot = controller_.ewma_interarrival_ms();
        const std::int64_t n = std::min<std::int64_t>(
            static_cast<std::int64_t>(queue_.size()), config_.max_batch);
        std::vector<Request> batch;
        batch.reserve(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        lock.unlock();

        // Expose the scheduling decision (window chosen, rate estimate,
        // why the batch shipped) so benches and tests can see the
        // controller act without instrumenting the dispatcher.
        {
            std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            stats_.last_deadline_ms = window_ms;
            stats_.ewma_interarrival_ms = ewma_snapshot;
            // The two counters partition all dispatches: a batch ships
            // either at the ceiling or because its window ran out
            // (including a zero-width "ship now" window).
            if (n >= config_.max_batch) {
                ++stats_.full_dispatches;
            } else {
                ++stats_.deadline_dispatches;
            }
        }

        {
            std::lock_guard<std::mutex> inflight_lock(inflight_mutex_);
            ++inflight_batches_;
        }
        // shared_ptr because std::function requires copyable closures.
        auto shared =
            std::make_shared<std::vector<Request>>(std::move(batch));
        pool_->submit([this, shared]() mutable {
            execute_batch(std::move(*shared));
            // Notify UNDER the mutex: a shutdown() waiter may destroy
            // this server the moment the predicate holds, so the
            // worker must be done touching the cv before the waiter
            // can observe inflight_batches_ == 0.
            std::lock_guard<std::mutex> inflight_lock(inflight_mutex_);
            --inflight_batches_;
            inflight_cv_.notify_all();
        });
    }
}

nn::ExecutionContext*
InferenceServer::acquire_context()
{
    std::unique_lock<std::mutex> lock(ctx_mutex_);
    ctx_cv_.wait(lock, [this] { return !free_contexts_.empty(); });
    nn::ExecutionContext* ctx = free_contexts_.back();
    free_contexts_.pop_back();
    return ctx;
}

void
InferenceServer::release_context(nn::ExecutionContext* ctx)
{
    {
        std::lock_guard<std::mutex> lock(ctx_mutex_);
        free_contexts_.push_back(ctx);
    }
    ctx_cv_.notify_one();
}

void
InferenceServer::execute_batch(std::vector<Request> batch)
{
    const auto n = static_cast<std::int64_t>(batch.size());
    if (n == 0) {
        return;
    }
    double queue_wait_ms = 0.0;
    std::vector<int> wait_buckets;
    wait_buckets.reserve(batch.size());
    for (const Request& request : batch) {
        const double wait_ms = request.queued.milliseconds();
        queue_wait_ms += wait_ms;
        wait_buckets.push_back(ServerStats::queue_wait_bucket(wait_ms));
    }

    Stopwatch execution;
    std::int64_t quantized_count = 0;
    bool direct = int8_ready_;
    bool fp32_direct = fp32_ready_;
    for (const Request& request : batch) {
        quantized_count += request.is_quantized ? 1 : 0;
        direct = direct && request.is_quantized &&
                 request.quantized.dtype == WireDtype::kI8;
        fp32_direct = fp32_direct && !request.is_quantized;
    }

    Tensor logits;
    if (direct) {
        logits = forward_batch_int8(batch, n);
    } else if (fp32_direct) {
        logits = forward_batch_fp32_fused(batch, n);
    } else {
        Tensor fused(batched_shape(sample_shape_, n));
        for (std::int64_t i = 0; i < n; ++i) {
            float* row = fused.data() + i * sample_size_;
            const Request& request = batch[static_cast<std::size_t>(i)];
            if (request.is_quantized) {
                // Wire-encoded request on the general path: decode to
                // fp32, then run the policy exactly as for a plain
                // request — quantization distorted the activation on
                // the wire, the mechanism itself is unchanged.
                const Tensor decoded = dequantize(request.quantized);
                const float* src = decoded.data();
                std::copy(src, src + sample_size_, row);
                policy_->apply_into(decoded, request.id, row);
            } else {
                const float* src = request.activation.data();
                std::copy(src, src + sample_size_, row);
                // The policy adds request `id`'s noise in place on the
                // fused row — id-derived draws, so concurrent batches
                // sample lock-free and a replay reproduces the
                // assignment.
                policy_->apply_into(request.activation, request.id, row);
            }
        }

        // The forward runs against a pooled per-batch context: weights
        // are read-only, so batches on other workers proceed
        // concurrently.
        nn::ExecutionContext* ctx = acquire_context();
        logits = model_.cloud_forward(fused, *ctx, nn::Mode::kEval);
        release_context(ctx);
    }
    SHREDDER_CHECK(logits.shape().rank() == 2 && logits.shape()[0] == n,
                   "cloud forward returned ", logits.shape().to_string(),
                   " for a batch of ", n);

    // Account the batch BEFORE fulfilling the promises: a caller that
    // observes future.get() must see its own request in stats().
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.requests += n;
        stats_.batches += 1;
        stats_.busy_ms += execution.milliseconds();
        stats_.queue_ms += queue_wait_ms;
        stats_.max_batch_seen = std::max(stats_.max_batch_seen, n);
        stats_.quantized_requests += quantized_count;
        stats_.int8_direct_batches += direct ? 1 : 0;
        stats_.fp32_fused_batches += fp32_direct ? 1 : 0;
        for (const int bucket : wait_buckets) {
            ++stats_.queue_wait_hist[bucket];
        }
    }

    const std::int64_t classes = logits.shape()[1];
    for (std::int64_t i = 0; i < n; ++i) {
        Tensor row(Shape({classes}));
        std::copy(logits.data() + i * classes,
                  logits.data() + (i + 1) * classes, row.data());
        batch[static_cast<std::size_t>(i)].promise.set_value(
            std::move(row));
        // Release the admission slot only after the promise resolves:
        // the gauge never undercounts answered work, and a stale read
        // on the submit path can only under-admit.
        in_flight_requests_.fetch_sub(1, std::memory_order_relaxed);
    }
}

Tensor
InferenceServer::forward_batch_int8(const std::vector<Request>& batch,
                                    std::int64_t n)
{
    // The first cloud layer consumes the int8 wire payloads directly:
    // per-row pointers + affine codes feed gemm_s8, which fuses the
    // policy's additive noise into its packing pass and dequantizes in
    // the epilogue. The tail of the cloud half then runs fp32 as
    // usual.
    std::vector<const std::int8_t*> a_rows(static_cast<std::size_t>(n));
    std::vector<float> a_scale(static_cast<std::size_t>(n));
    std::vector<std::int32_t> a_zp(static_cast<std::size_t>(n));
    std::vector<const float*> a_noise(static_cast<std::size_t>(n));
    // Additive policies: apply(0, id) IS the noise row (bit-identical
    // to what apply_into would have added on the fp32 path).
    const Tensor zeros = Tensor::zeros(sample_shape_);
    std::vector<Tensor> noise_rows;
    noise_rows.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        const Request& request = batch[static_cast<std::size_t>(i)];
        noise_rows.push_back(policy_->apply(zeros, request.id));
        a_rows[static_cast<std::size_t>(i)] = request.quantized.i8();
        a_scale[static_cast<std::size_t>(i)] = request.quantized.scale;
        a_zp[static_cast<std::size_t>(i)] = request.quantized.zero_point;
        a_noise[static_cast<std::size_t>(i)] =
            noise_rows.back().data();
    }

    Tensor first(Shape({n, direct_out_features_}));
    gemm_s8(n, direct_out_features_, sample_size_, a_rows.data(),
            a_scale.data(), a_zp.data(), a_noise.data(),
            s8_weights_.data.data(), s8_weights_.scale,
            s8_weights_.colsum.data(), direct_bias_, first.data());

    nn::ExecutionContext* ctx = acquire_context();
    Tensor logits = model_.network().forward_range(
        first, tail_begin_, -1, *ctx, nn::Mode::kEval);
    release_context(ctx);
    return logits;
}

Tensor
InferenceServer::forward_batch_fp32_fused(
    const std::vector<Request>& batch, std::int64_t n)
{
    // fp32 twin of the int8 direct path: per-request activation rows
    // feed gemm_rows_fused, which adds each request's noise row inside
    // its A-panel packing pass — no fused batch tensor and no separate
    // noise-add pass over the data. Bit-exact with the general path by
    // gemm_rows_fused's contract (single-add policies only; see
    // prepare_direct_path).
    std::vector<const float*> a_rows(static_cast<std::size_t>(n));
    std::vector<const float*> a_noise(static_cast<std::size_t>(n));
    // Additive policies: apply(0, id) IS the noise row (bit-identical
    // to what apply_into would have added on the general path).
    const Tensor zeros = Tensor::zeros(sample_shape_);
    std::vector<Tensor> noise_rows;
    noise_rows.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        const Request& request = batch[static_cast<std::size_t>(i)];
        noise_rows.push_back(policy_->apply(zeros, request.id));
        a_rows[static_cast<std::size_t>(i)] = request.activation.data();
        a_noise[static_cast<std::size_t>(i)] = noise_rows.back().data();
    }

    Tensor first(Shape({n, direct_out_features_}));
    gemm_rows_fused(n, direct_out_features_, sample_size_, a_rows.data(),
                    a_noise.data(), f32_weights_, direct_bias_,
                    first.data());

    nn::ExecutionContext* ctx = acquire_context();
    Tensor logits = model_.network().forward_range(
        first, tail_begin_, -1, *ctx, nn::Mode::kEval);
    release_context(ctx);
    return logits;
}

}  // namespace runtime
}  // namespace shredder
