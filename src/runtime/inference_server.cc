/**
 * @file
 * Implementation of the batched inference server (see header).
 */
#include "src/runtime/inference_server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/runtime/logging.h"

namespace shredder {
namespace runtime {

namespace {

/** Prepend a batch dimension to a per-sample shape. */
Shape
batched_shape(const Shape& sample, std::int64_t n)
{
    switch (sample.rank()) {
      case 1: return Shape({n, sample[0]});
      case 2: return Shape({n, sample[0], sample[1]});
      case 3: return Shape({n, sample[0], sample[1], sample[2]});
      default:
        SHREDDER_PANIC("cannot batch per-sample activation of rank ",
                       sample.rank());
    }
}

/** SplitMix64 finalizer (Steele et al.) — a strong 64-bit mix. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

std::uint64_t
InferenceServer::noise_seed(std::uint64_t root_seed,
                            std::uint64_t request_id)
{
    // Two mixing rounds keep (seed, id) pairs far apart even for
    // consecutive ids under the same root seed.
    return splitmix64(splitmix64(root_seed) ^ request_id);
}

InferenceServer::InferenceServer(split::SplitModel& model,
                                 const core::NoiseCollection* collection,
                                 const InferenceServerConfig& config)
    : model_(model),
      collection_(collection),
      config_(config),
      sample_size_(0),
      pool_(config.num_workers)
{
    SHREDDER_REQUIRE(config_.max_batch >= 1,
                     "max_batch must be positive, got ",
                     config_.max_batch);
    SHREDDER_REQUIRE(config_.max_concurrent_batches >= 0,
                     "max_concurrent_batches must be >= 0, got ",
                     config_.max_concurrent_batches);
    if (config_.apply_noise) {
        SHREDDER_REQUIRE(collection_ != nullptr && !collection_->empty(),
                         "apply_noise requires a non-empty noise "
                         "collection");
    }
    if (config_.sample_shape.rank() > 0) {
        sample_shape_ = config_.sample_shape;
    } else if (collection_ != nullptr && !collection_->empty()) {
        sample_shape_ = collection_->noise_shape();
    }
    if (sample_shape_.rank() > 0) {
        // Setup-time user error: a contract that cannot grow a batch
        // dimension would otherwise abort on a pool worker later.
        SHREDDER_REQUIRE(sample_shape_.rank() <= 3,
                         "per-sample activation shape must have rank "
                         "1-3, got ", sample_shape_.to_string());
        sample_size_ = sample_shape_.numel();
        if (collection_ != nullptr && !collection_->empty()) {
            SHREDDER_REQUIRE(
                collection_->noise_shape().numel() == sample_size_,
                "noise samples (", collection_->noise_shape().to_string(),
                ") do not match the configured per-sample shape ",
                sample_shape_.to_string());
        }
    }

    // One execution context per concurrent batch: the contexts, not
    // the model, carry all per-forward state.
    const std::int64_t n_ctx =
        config_.max_concurrent_batches > 0
            ? config_.max_concurrent_batches
            : static_cast<std::int64_t>(pool_.size());
    contexts_.reserve(static_cast<std::size_t>(n_ctx));
    free_contexts_.reserve(static_cast<std::size_t>(n_ctx));
    for (std::int64_t i = 0; i < n_ctx; ++i) {
        const auto ctx_tag = 0xC7C7C7C7ULL + static_cast<std::uint64_t>(i);
        contexts_.push_back(std::make_unique<nn::ExecutionContext>(
            noise_seed(config_.seed, ctx_tag)));
        // Serving never back-propagates: skip the per-layer activation
        // caches (one full tensor copy per layer per batch otherwise).
        contexts_.back()->set_retain_activations(false);
        free_contexts_.push_back(contexts_.back().get());
    }

    dispatcher_ = std::thread([this] { dispatch_loop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<Tensor>
InferenceServer::submit(Tensor activation)
{
    return submit_impl(std::move(activation), /*has_id=*/false, 0);
}

std::future<Tensor>
InferenceServer::submit(Tensor activation, std::uint64_t request_id)
{
    return submit_impl(std::move(activation), /*has_id=*/true, request_id);
}

std::future<Tensor>
InferenceServer::submit_impl(Tensor activation, bool has_id,
                             std::uint64_t request_id)
{
    std::promise<Tensor> promise;
    std::future<Tensor> future = promise.get_future();

    // A bad request must fail its own future, never the server: other
    // clients' in-flight work stays alive.
    const auto reject = [&promise](const std::string& why) {
        promise.set_exception(
            std::make_exception_ptr(std::runtime_error(
                "InferenceServer: " + why)));
    };

    std::unique_lock<std::mutex> lock(mutex_);
    if (!accepting_) {
        lock.unlock();
        reject("submit after shutdown");
        return future;
    }
    if (sample_size_ == 0) {
        // No noise collection to dictate the shape: adopt the first
        // request's shape as the server's contract. Only rank 1–3 can
        // grow a batch dimension (Shape::kMaxRank is 4).
        if (activation.shape().rank() < 1 || activation.shape().rank() > 3) {
            lock.unlock();
            reject("per-sample activation must have rank 1-3, got " +
                   activation.shape().to_string());
            return future;
        }
        sample_shape_ = activation.shape();
        sample_size_ = activation.size();
    }
    if (activation.size() != sample_size_) {
        const std::int64_t expected = sample_size_;
        lock.unlock();
        reject("activation size " + std::to_string(activation.size()) +
               " does not match the cut's per-sample size " +
               std::to_string(expected));
        return future;
    }

    Request request;
    request.activation = std::move(activation);
    request.promise = std::move(promise);
    request.id = has_id ? request_id : kAutoIdBase + next_request_id_++;
    queue_.push_back(std::move(request));
    lock.unlock();
    cv_.notify_one();
    return future;
}

Tensor
InferenceServer::infer(const Tensor& activation)
{
    return submit(activation).get();
}

bool
InferenceServer::running() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepting_;
}

void
InferenceServer::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        accepting_ = false;
        stop_dispatcher_ = true;
    }
    cv_.notify_all();
    {
        // Serialize concurrent shutdown callers (e.g. an explicit
        // shutdown racing the destructor): join() may run only once.
        std::lock_guard<std::mutex> lock(shutdown_mutex_);
        if (dispatcher_.joinable()) {
            dispatcher_.join();
        }
    }
    pool_.wait_idle();
}

ServerStats
InferenceServer::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ServerStats snapshot = stats_;
    snapshot.wall_seconds = lifetime_.seconds();
    return snapshot;
}

void
InferenceServer::dispatch_loop()
{
    const auto timeout = std::chrono::duration<double, std::milli>(
        config_.batch_timeout_ms);
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] {
            return !queue_.empty() || stop_dispatcher_;
        });
        if (queue_.empty()) {
            // stop_dispatcher_ is set and everything is drained.
            return;
        }
        // Hold the door briefly for stragglers so batches fill up —
        // unless we are draining for shutdown, where latency wins.
        if (static_cast<std::int64_t>(queue_.size()) < config_.max_batch &&
            config_.batch_timeout_ms > 0.0 && !stop_dispatcher_) {
            const auto deadline = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::
                                               duration>(timeout);
            cv_.wait_until(lock, deadline, [this] {
                return static_cast<std::int64_t>(queue_.size()) >=
                           config_.max_batch ||
                       stop_dispatcher_;
            });
        }
        const std::int64_t n = std::min<std::int64_t>(
            static_cast<std::int64_t>(queue_.size()), config_.max_batch);
        std::vector<Request> batch;
        batch.reserve(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        lock.unlock();

        // shared_ptr because std::function requires copyable closures.
        auto shared =
            std::make_shared<std::vector<Request>>(std::move(batch));
        pool_.submit([this, shared]() mutable {
            execute_batch(std::move(*shared));
        });
    }
}

nn::ExecutionContext*
InferenceServer::acquire_context()
{
    std::unique_lock<std::mutex> lock(ctx_mutex_);
    ctx_cv_.wait(lock, [this] { return !free_contexts_.empty(); });
    nn::ExecutionContext* ctx = free_contexts_.back();
    free_contexts_.pop_back();
    return ctx;
}

void
InferenceServer::release_context(nn::ExecutionContext* ctx)
{
    {
        std::lock_guard<std::mutex> lock(ctx_mutex_);
        free_contexts_.push_back(ctx);
    }
    ctx_cv_.notify_one();
}

void
InferenceServer::execute_batch(std::vector<Request> batch)
{
    const auto n = static_cast<std::int64_t>(batch.size());
    if (n == 0) {
        return;
    }
    double queue_wait_ms = 0.0;
    for (const Request& request : batch) {
        queue_wait_ms += request.queued.milliseconds();
    }

    Stopwatch execution;
    Tensor fused(batched_shape(sample_shape_, n));
    for (std::int64_t i = 0; i < n; ++i) {
        float* row = fused.data() + i * sample_size_;
        const Request& request = batch[static_cast<std::size_t>(i)];
        const float* src = request.activation.data();
        std::copy(src, src + sample_size_, row);
        if (config_.apply_noise) {
            // Fresh draw per request — the paper's §2.5 deployment.
            // The RNG is derived from (root seed, request id), so the
            // draw touches no shared state: concurrent batches sample
            // lock-free and a replay reproduces the assignment.
            Rng draw_rng(noise_seed(config_.seed, request.id));
            const Tensor& noise = collection_->draw(draw_rng).noise;
            const float* pn = noise.data();
            for (std::int64_t j = 0; j < sample_size_; ++j) {
                row[j] += pn[j];
            }
        }
    }

    // The forward runs against a pooled per-batch context: weights are
    // read-only, so batches on other workers proceed concurrently.
    nn::ExecutionContext* ctx = acquire_context();
    Tensor logits = model_.cloud_forward(fused, *ctx, nn::Mode::kEval);
    release_context(ctx);
    SHREDDER_CHECK(logits.shape().rank() == 2 && logits.shape()[0] == n,
                   "cloud forward returned ", logits.shape().to_string(),
                   " for a batch of ", n);

    // Account the batch BEFORE fulfilling the promises: a caller that
    // observes future.get() must see its own request in stats().
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.requests += n;
        stats_.batches += 1;
        stats_.busy_ms += execution.milliseconds();
        stats_.queue_ms += queue_wait_ms;
        stats_.max_batch_seen = std::max(stats_.max_batch_seen, n);
    }

    const std::int64_t classes = logits.shape()[1];
    for (std::int64_t i = 0; i < n; ++i) {
        Tensor row(Shape({classes}));
        std::copy(logits.data() + i * classes,
                  logits.data() + (i + 1) * classes, row.data());
        batch[static_cast<std::size_t>(i)].promise.set_value(
            std::move(row));
    }
}

}  // namespace runtime
}  // namespace shredder
