/**
 * @file
 * SLO-aware adaptive batch-timeout controller.
 *
 * The dispatcher's fixed straggler window is a blunt knob: too short
 * and batches ship half-empty (throughput lost to per-batch
 * overhead), too long and every request eats the window as queue wait
 * — BENCH_server.json shows `queue_wait_ms` dominating
 * `batch_exec_ms` by 2-3 orders of magnitude at every operating
 * point. This controller replaces the constant with a decision made
 * per batch from two observables:
 *
 *  - an EWMA of request inter-arrival time (how fast is traffic
 *    coming?), updated on every enqueue, and
 *  - the current queue depth (how much of the batch is already here?).
 *
 * The dispatch deadline is the *predicted time for the remaining
 * batch slots to fill*, clamped to the configured SLO bound:
 *
 *   predicted = (max_batch − depth) × ewma_interarrival
 *   deadline  = predicted ≥ slo_ms ? 0 : min(predicted, slo_ms)
 *
 * Under bursts (tiny inter-arrival) the predicted fill time is small,
 * so the dispatcher holds the door just long enough to ship full
 * batches. Under sparse traffic (inter-arrival at or beyond the SLO)
 * waiting cannot fill the batch within budget, so the controller
 * ships immediately — latency-optimal exactly when batching cannot
 * pay. In between, the wait is capped by `slo_ms`, which is therefore
 * a hard bound on the queueing delay the batcher itself ever adds.
 *
 * The controller is deliberately clock-free: callers pass timestamps
 * in (`now_ms` from any monotonic source), so unit tests drive it
 * with a scripted fake clock and the server drives it from its
 * `Stopwatch`. It carries no locking — the inference server mutates
 * it under the same mutex that guards the request queue.
 */
#ifndef SHREDDER_RUNTIME_BATCH_CONTROLLER_H
#define SHREDDER_RUNTIME_BATCH_CONTROLLER_H

#include <cstdint>

namespace shredder {
namespace runtime {

/** Controller knobs (see file comment for the decision rule). */
struct BatchControllerConfig
{
    /**
     * Queue-delay budget (ms): the dispatch deadline never exceeds
     * this, so it bounds the latency the batcher adds to any request.
     */
    double slo_ms = 5.0;
    /**
     * EWMA weight of the newest inter-arrival observation in (0, 1].
     * Higher adapts faster but tracks noise; 1.0 means "trust only
     * the latest gap".
     */
    double ewma_alpha = 0.2;
    /**
     * Inter-arrival estimate (ms) before any traffic has been seen.
     * Defaults to the SLO: an idle server starts latency-optimal
     * (ship immediately) and learns to batch as traffic ramps.
     */
    double initial_interarrival_ms = -1.0;  ///< < 0 → use slo_ms.
};

/** See file comment. */
class BatchController
{
  public:
    explicit BatchController(const BatchControllerConfig& config = {});

    /**
     * Record one request arrival at `now_ms` (any monotonic
     * millisecond clock; only differences matter). Call under the
     * same lock that guards the request queue.
     */
    void on_arrival(double now_ms);

    /**
     * The straggler window (ms ≥ 0) the dispatcher should hold a
     * partial batch of `queue_depth` requests open for, given the
     * batch ceiling. Never exceeds `slo_ms`; 0 means ship now.
     */
    double deadline_ms(std::int64_t queue_depth,
                       std::int64_t max_batch) const;

    /** Current inter-arrival EWMA (ms). */
    double ewma_interarrival_ms() const { return ewma_interarrival_ms_; }

    /** Arrivals observed so far. */
    std::int64_t arrivals() const { return arrivals_; }

    /** The configuration in force. */
    const BatchControllerConfig& config() const { return config_; }

  private:
    BatchControllerConfig config_;
    double ewma_interarrival_ms_;
    double last_arrival_ms_ = 0.0;
    std::int64_t arrivals_ = 0;
};

}  // namespace runtime
}  // namespace shredder

#endif  // SHREDDER_RUNTIME_BATCH_CONTROLLER_H
