/**
 * @file
 * Implementation of the adaptive batch-timeout controller (see header).
 */
#include "src/runtime/batch_controller.h"

#include <algorithm>

#include "src/runtime/logging.h"

namespace shredder {
namespace runtime {

BatchController::BatchController(const BatchControllerConfig& config)
    : config_(config)
{
    SHREDDER_REQUIRE(config_.slo_ms >= 0.0,
                     "slo_ms must be >= 0, got ", config_.slo_ms);
    SHREDDER_REQUIRE(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                     "ewma_alpha must be in (0, 1], got ",
                     config_.ewma_alpha);
    ewma_interarrival_ms_ = config_.initial_interarrival_ms >= 0.0
                                ? config_.initial_interarrival_ms
                                : config_.slo_ms;
}

void
BatchController::on_arrival(double now_ms)
{
    if (arrivals_ > 0) {
        // Monotonic clocks can still report equal timestamps for
        // back-to-back submits; a zero gap is a legitimate burst
        // observation and pulls the EWMA toward "hold the door".
        const double gap = std::max(0.0, now_ms - last_arrival_ms_);
        ewma_interarrival_ms_ =
            config_.ewma_alpha * gap +
            (1.0 - config_.ewma_alpha) * ewma_interarrival_ms_;
    }
    last_arrival_ms_ = now_ms;
    ++arrivals_;
}

double
BatchController::deadline_ms(std::int64_t queue_depth,
                             std::int64_t max_batch) const
{
    const std::int64_t remaining = max_batch - queue_depth;
    if (remaining <= 0) {
        return 0.0;  // the batch is already full: ship now
    }
    const double predicted =
        static_cast<double>(remaining) * ewma_interarrival_ms_;
    if (predicted >= config_.slo_ms) {
        // The batch cannot fill within the SLO budget — waiting buys
        // partial fill at full latency cost, so don't wait at all.
        // (This is the "sparse traffic → ship immediately" arm; it
        // also covers an idle server via the initial estimate.)
        return 0.0;
    }
    return std::min(predicted, config_.slo_ms);
}

}  // namespace runtime
}  // namespace shredder
