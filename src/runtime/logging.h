/**
 * @file
 * Logging and error-reporting primitives for the Shredder runtime.
 *
 * Follows the gem5 convention: `fatal` is for user errors (bad
 * configuration, impossible request) and exits cleanly; `panic` is for
 * internal invariant violations (a Shredder bug) and aborts so a core
 * dump / debugger can be attached.
 */
#ifndef SHREDDER_RUNTIME_LOGGING_H
#define SHREDDER_RUNTIME_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace shredder {

/** Severity levels for runtime log messages. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kSilent = 4,
};

/**
 * Global log-level threshold. Messages below this level are dropped.
 * Defaults to kInfo; tests may lower it to kDebug.
 */
LogLevel log_level();

/** Set the global log-level threshold. */
void set_log_level(LogLevel level);

namespace detail {

/** Emit one formatted log line to stderr if `level` passes the filter. */
void log_line(LogLevel level, const std::string& msg);

/** Build a message from streamable parts. */
template <typename... Args>
std::string
format_parts(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

}  // namespace detail

/** Log an informational message (normal operating status). */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::log_line(LogLevel::kInfo,
                     detail::format_parts(std::forward<Args>(args)...));
}

/** Log a warning (suspicious but recoverable condition). */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::log_line(LogLevel::kWarn,
                     detail::format_parts(std::forward<Args>(args)...));
}

/** Log a debug message (verbose diagnostics, off by default). */
template <typename... Args>
void
debug(Args&&... args)
{
    detail::log_line(LogLevel::kDebug,
                     detail::format_parts(std::forward<Args>(args)...));
}

/**
 * The exception `fatal_impl` raises instead of exiting while a
 * `ScopedFatalThrow` guard is active on the calling thread.
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII trust-boundary guard: while one is alive on this thread,
 * user-error terminations (`SHREDDER_FATAL` / `SHREDDER_REQUIRE`)
 * throw `FatalError` instead of exiting the process.
 *
 * Use where untrusted *data* can reach user-error checks deep in the
 * stack — e.g. deployment-bundle loading, where an inconsistent file
 * must fail the load, never the serving process. Panics
 * (`SHREDDER_CHECK` / `SHREDDER_PANIC` — internal invariants) still
 * abort: a Shredder bug is a bug regardless of who supplied the data.
 * Guards nest; the exception mode lasts until the outermost guard on
 * the thread is destroyed.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow();
    ~ScopedFatalThrow();
    ScopedFatalThrow(const ScopedFatalThrow&) = delete;
    ScopedFatalThrow& operator=(const ScopedFatalThrow&) = delete;
};

/**
 * Terminate because of a *user* error (bad arguments, impossible
 * configuration). Prints the message and exits with status 1 — or
 * throws `FatalError` when a `ScopedFatalThrow` guard is active on
 * this thread (trust-boundary mode).
 */
[[noreturn]] void fatal_impl(const char* file, int line,
                             const std::string& msg);

/**
 * Terminate because of an *internal* error (broken invariant — a bug in
 * Shredder itself). Prints the message and aborts.
 */
[[noreturn]] void panic_impl(const char* file, int line,
                             const std::string& msg);

}  // namespace shredder

/** User-error termination with streamable message parts. */
#define SHREDDER_FATAL(...)                                                  \
    ::shredder::fatal_impl(__FILE__, __LINE__,                               \
                           ::shredder::detail::format_parts(__VA_ARGS__))

/** Internal-bug termination with streamable message parts. */
#define SHREDDER_PANIC(...)                                                  \
    ::shredder::panic_impl(__FILE__, __LINE__,                               \
                           ::shredder::detail::format_parts(__VA_ARGS__))

/** Invariant check: panics (internal bug) when `cond` is false. */
#define SHREDDER_CHECK(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SHREDDER_PANIC("check failed: " #cond " — ",                     \
                           ::shredder::detail::format_parts(__VA_ARGS__));   \
        }                                                                    \
    } while (false)

/** Argument check: fatal (user error) when `cond` is false. */
#define SHREDDER_REQUIRE(cond, ...)                                          \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SHREDDER_FATAL("requirement failed: " #cond " — ",               \
                           ::shredder::detail::format_parts(__VA_ARGS__));   \
        }                                                                    \
    } while (false)

#endif  // SHREDDER_RUNTIME_LOGGING_H
