/**
 * @file
 * A small fixed-size thread pool with a `parallel_for` helper.
 *
 * Used by the tensor/NN substrates to parallelize batch-level work
 * (e.g. im2col + GEMM per sample) across the available cores. The pool
 * is deliberately simple: a shared task queue guarded by a mutex — our
 * tasks are coarse (milliseconds), so queue contention is negligible.
 */
#ifndef SHREDDER_RUNTIME_THREAD_POOL_H
#define SHREDDER_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace shredder {

/**
 * Fixed-size worker pool executing `std::function<void()>` tasks.
 *
 * Construction spawns the workers; destruction drains outstanding tasks
 * and joins. Thread-safe for concurrent submission.
 */
class ThreadPool
{
  public:
    /**
     * Create a pool.
     *
     * @param num_threads Worker count; 0 means hardware concurrency.
     */
    explicit ThreadPool(unsigned num_threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have finished. */
    void wait_idle();

    /**
     * Process-wide shared pool (lazily constructed, sized to the
     * machine). Use this instead of creating pools per call site.
     */
    static ThreadPool& global();

    /**
     * True when the calling thread is a pool worker (of any pool).
     * Substrate code uses this to stay serial instead of nesting a
     * second `parallel_for` inside a worker, which would leave the
     * submitting worker idle while its chunks queue behind it.
     */
    static bool in_worker();

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::uint64_t in_flight_ = 0;
    bool stop_ = false;
};

/**
 * Run `fn(i)` for every `i` in `[begin, end)` using the global pool.
 *
 * Iterations are split into contiguous chunks, one per worker. The
 * caller blocks until all iterations complete. Degenerates to a serial
 * loop when the range is small or the pool has one worker.
 *
 * @param begin   First index (inclusive).
 * @param end     Last index (exclusive).
 * @param fn      Callable invoked as `fn(int64_t index)`.
 * @param grain   Minimum iterations per chunk before parallelizing.
 */
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain = 1);

}  // namespace shredder

#endif  // SHREDDER_RUNTIME_THREAD_POOL_H
