/**
 * @file
 * Implementation of the noise policies (see header).
 */
#include "src/runtime/noise_policy.h"

#include <algorithm>
#include <utility>

#include "src/runtime/logging.h"

namespace shredder {
namespace runtime {

namespace {

/** SplitMix64 finalizer (Steele et al.) — a strong 64-bit mix. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Guard shared by the additive policies. */
void
require_matching_size(const Tensor& activation, std::int64_t noise_size,
                      const char* who)
{
    SHREDDER_REQUIRE(activation.size() == noise_size, who,
                     ": activation size ", activation.size(),
                     " does not match the policy's noise size ",
                     noise_size);
}

}  // namespace

std::uint64_t
noise_seed(std::uint64_t root_seed, std::uint64_t request_id)
{
    // Two mixing rounds keep (seed, id) pairs far apart even for
    // consecutive ids under the same root seed.
    return splitmix64(splitmix64(root_seed) ^ request_id);
}

void
NoisePolicy::apply_into(const Tensor& activation, std::uint64_t request_id,
                        float* dst) const
{
    const Tensor noisy = apply(activation, request_id);
    SHREDDER_CHECK(noisy.size() == activation.size(),
                   "policy '", name(), "' changed the element count");
    std::copy(noisy.data(), noisy.data() + noisy.size(), dst);
}

// ---------------------------------------------------------------------
// NoNoisePolicy
// ---------------------------------------------------------------------

Tensor
NoNoisePolicy::apply(const Tensor& activation, std::uint64_t) const
{
    return activation;
}

void
NoNoisePolicy::apply_into(const Tensor&, std::uint64_t, float*) const
{
    // dst already holds the activation copy; nothing to add.
}

// ---------------------------------------------------------------------
// ReplayPolicy
// ---------------------------------------------------------------------

ReplayPolicy::ReplayPolicy(const core::NoiseCollection& collection,
                           std::uint64_t seed)
    : collection_(collection), seed_(seed)
{
    SHREDDER_REQUIRE(!collection.empty(),
                     "ReplayPolicy needs a non-empty noise collection");
}

Shape
ReplayPolicy::noise_shape() const
{
    return collection_.noise_shape();
}

Tensor
ReplayPolicy::apply(const Tensor& activation,
                    std::uint64_t request_id) const
{
    Tensor out = activation;
    apply_into(activation, request_id, out.data());
    return out;
}

void
ReplayPolicy::apply_into(const Tensor& activation,
                         std::uint64_t request_id, float* dst) const
{
    // The draw RNG is derived from (root seed, request id), so it
    // touches no shared state: concurrent applies are lock-free and a
    // replay with the same seed and ids reproduces the assignment.
    Rng draw_rng(noise_seed(seed_, request_id));
    const Tensor& noise = collection_.draw(draw_rng).noise;
    require_matching_size(activation, noise.size(), "ReplayPolicy");
    const float* pn = noise.data();
    for (std::int64_t j = 0; j < noise.size(); ++j) {
        dst[j] += pn[j];
    }
}

// ---------------------------------------------------------------------
// SamplePolicy
// ---------------------------------------------------------------------

SamplePolicy::SamplePolicy(core::NoiseDistribution distribution,
                           std::uint64_t seed)
    : dist_(std::move(distribution)), seed_(seed)
{
}

SamplePolicy::SamplePolicy(const core::NoiseCollection& collection,
                           core::NoiseFamily family, std::uint64_t seed)
    : SamplePolicy(core::NoiseDistribution::fit(collection, family), seed)
{
}

Shape
SamplePolicy::noise_shape() const
{
    return dist_.location().shape();
}

Tensor
SamplePolicy::apply(const Tensor& activation,
                    std::uint64_t request_id) const
{
    Tensor out = activation;
    apply_into(activation, request_id, out.data());
    return out;
}

void
SamplePolicy::apply_into(const Tensor& activation,
                         std::uint64_t request_id, float* dst) const
{
    // Fresh per-element draw; the per-id RNG keeps it deterministic
    // under replay yet independent across distinct request ids.
    Rng draw_rng(noise_seed(seed_, request_id));
    const Tensor noise = dist_.sample(draw_rng);
    require_matching_size(activation, noise.size(), "SamplePolicy");
    const float* pn = noise.data();
    for (std::int64_t j = 0; j < noise.size(); ++j) {
        dst[j] += pn[j];
    }
}

// ---------------------------------------------------------------------
// FixedNoisePolicy
// ---------------------------------------------------------------------

FixedNoisePolicy::FixedNoisePolicy(Tensor noise) : noise_(std::move(noise))
{
    SHREDDER_REQUIRE(noise_.size() > 0,
                     "FixedNoisePolicy needs a non-empty noise tensor");
}

Tensor
FixedNoisePolicy::apply(const Tensor& activation, std::uint64_t) const
{
    Tensor out = activation;
    apply_into(activation, 0, out.data());
    return out;
}

void
FixedNoisePolicy::apply_into(const Tensor& activation, std::uint64_t,
                             float* dst) const
{
    require_matching_size(activation, noise_.size(), "FixedNoisePolicy");
    const float* pn = noise_.data();
    for (std::int64_t j = 0; j < noise_.size(); ++j) {
        dst[j] += pn[j];
    }
}

}  // namespace runtime
}  // namespace shredder
