/**
 * @file
 * Implementation of the noise policies (see header).
 */
#include "src/runtime/noise_policy.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/runtime/logging.h"

namespace shredder {
namespace runtime {

namespace {

/** SplitMix64 finalizer (Steele et al.) — a strong 64-bit mix. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Guard shared by the additive policies. */
void
require_matching_size(const Tensor& activation, std::int64_t noise_size,
                      const char* who)
{
    SHREDDER_REQUIRE(activation.size() == noise_size, who,
                     ": activation size ", activation.size(),
                     " does not match the policy's noise size ",
                     noise_size);
}

}  // namespace

std::uint64_t
noise_seed(std::uint64_t root_seed, std::uint64_t request_id)
{
    // Two mixing rounds keep (seed, id) pairs far apart even for
    // consecutive ids under the same root seed.
    return splitmix64(splitmix64(root_seed) ^ request_id);
}

void
NoisePolicy::apply_into(const Tensor& activation, std::uint64_t request_id,
                        float* dst) const
{
    const Tensor noisy = apply(activation, request_id);
    SHREDDER_CHECK(noisy.size() == activation.size(),
                   "policy '", name(), "' changed the element count");
    std::copy(noisy.data(), noisy.data() + noisy.size(), dst);
}

// ---------------------------------------------------------------------
// NoNoisePolicy
// ---------------------------------------------------------------------

Tensor
NoNoisePolicy::apply(const Tensor& activation, std::uint64_t) const
{
    return activation;
}

void
NoNoisePolicy::apply_into(const Tensor&, std::uint64_t, float*) const
{
    // dst already holds the activation copy; nothing to add.
}

// ---------------------------------------------------------------------
// ReplayPolicy
// ---------------------------------------------------------------------

ReplayPolicy::ReplayPolicy(const core::NoiseCollection& collection,
                           std::uint64_t seed)
    : collection_(collection), seed_(seed)
{
    SHREDDER_REQUIRE(!collection.empty(),
                     "ReplayPolicy needs a non-empty noise collection");
}

Shape
ReplayPolicy::noise_shape() const
{
    return collection_.noise_shape();
}

Tensor
ReplayPolicy::apply(const Tensor& activation,
                    std::uint64_t request_id) const
{
    Tensor out = activation;
    apply_into(activation, request_id, out.data());
    return out;
}

void
ReplayPolicy::apply_into(const Tensor& activation,
                         std::uint64_t request_id, float* dst) const
{
    // The draw RNG is derived from (root seed, request id), so it
    // touches no shared state: concurrent applies are lock-free and a
    // replay with the same seed and ids reproduces the assignment.
    Rng draw_rng(noise_seed(seed_, request_id));
    const Tensor& noise = collection_.draw(draw_rng).noise;
    require_matching_size(activation, noise.size(), "ReplayPolicy");
    const float* pn = noise.data();
    for (std::int64_t j = 0; j < noise.size(); ++j) {
        dst[j] += pn[j];
    }
}

// ---------------------------------------------------------------------
// SamplePolicy
// ---------------------------------------------------------------------

SamplePolicy::SamplePolicy(core::NoiseDistribution distribution,
                           std::uint64_t seed)
    : dist_(std::move(distribution)), seed_(seed)
{
}

SamplePolicy::SamplePolicy(const core::NoiseCollection& collection,
                           core::NoiseFamily family, std::uint64_t seed)
    : SamplePolicy(core::NoiseDistribution::fit(collection, family), seed)
{
}

Shape
SamplePolicy::noise_shape() const
{
    return dist_.location().shape();
}

Tensor
SamplePolicy::apply(const Tensor& activation,
                    std::uint64_t request_id) const
{
    Tensor out = activation;
    apply_into(activation, request_id, out.data());
    return out;
}

void
SamplePolicy::apply_into(const Tensor& activation,
                         std::uint64_t request_id, float* dst) const
{
    // Fresh per-element draw; the per-id RNG keeps it deterministic
    // under replay yet independent across distinct request ids.
    Rng draw_rng(noise_seed(seed_, request_id));
    const Tensor noise = dist_.sample(draw_rng);
    require_matching_size(activation, noise.size(), "SamplePolicy");
    const float* pn = noise.data();
    for (std::int64_t j = 0; j < noise.size(); ++j) {
        dst[j] += pn[j];
    }
}

// ---------------------------------------------------------------------
// FixedNoisePolicy
// ---------------------------------------------------------------------

FixedNoisePolicy::FixedNoisePolicy(Tensor noise) : noise_(std::move(noise))
{
    SHREDDER_REQUIRE(noise_.size() > 0,
                     "FixedNoisePolicy needs a non-empty noise tensor");
}

Tensor
FixedNoisePolicy::apply(const Tensor& activation, std::uint64_t) const
{
    Tensor out = activation;
    apply_into(activation, 0, out.data());
    return out;
}

void
FixedNoisePolicy::apply_into(const Tensor& activation, std::uint64_t,
                             float* dst) const
{
    require_matching_size(activation, noise_.size(), "FixedNoisePolicy");
    const float* pn = noise_.data();
    for (std::int64_t j = 0; j < noise_.size(); ++j) {
        dst[j] += pn[j];
    }
}

// ---------------------------------------------------------------------
// ShufflePolicy
// ---------------------------------------------------------------------

namespace {

/**
 * Indices of `data[0..n)` in ascending value order, ties broken by
 * index — a *stable* argsort, so the permutation is a pure function of
 * the values (concurrent callers and replays agree bit-for-bit).
 */
std::vector<std::int64_t>
argsort(const float* data, std::int64_t n)
{
    std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [data](std::int64_t a, std::int64_t b) {
                  return data[a] != data[b] ? data[a] < data[b] : a < b;
              });
    return idx;
}

}  // namespace

ShufflePolicy::ShufflePolicy(std::uint64_t seed) : seed_(seed) {}

ShufflePolicy::ShufflePolicy(core::NoiseDistribution distribution,
                             std::uint64_t seed)
    : dist_(std::move(distribution)), seed_(seed)
{
}

Shape
ShufflePolicy::noise_shape() const
{
    return rank_matched() ? dist_->location().shape() : Shape{};
}

Tensor
ShufflePolicy::apply(const Tensor& activation,
                     std::uint64_t request_id) const
{
    Tensor out = activation;
    apply_into(activation, request_id, out.data());
    return out;
}

void
ShufflePolicy::apply_into(const Tensor& activation,
                          std::uint64_t request_id, float* dst) const
{
    const float* src = activation.data();
    const std::int64_t n = activation.size();
    Rng draw_rng(noise_seed(seed_, request_id));
    if (!rank_matched()) {
        // Plain Fisher–Yates permutation of the element positions.
        const std::vector<std::int64_t> perm = draw_rng.permutation(n);
        for (std::int64_t j = 0; j < n; ++j) {
            dst[j] = src[perm[static_cast<std::size_t>(j)]];
        }
        return;
    }
    // Rank-matched: fresh draw, reordered so the k-th smallest draw
    // lands on the position of the k-th smallest activation element,
    // then added (see header).
    const Tensor noise = dist_->sample(draw_rng);
    require_matching_size(activation, noise.size(), "ShufflePolicy");
    const std::vector<std::int64_t> act_rank = argsort(src, n);
    const std::vector<std::int64_t> noise_rank = argsort(noise.data(), n);
    const float* pn = noise.data();
    for (std::int64_t k = 0; k < n; ++k) {
        dst[act_rank[static_cast<std::size_t>(k)]] +=
            pn[noise_rank[static_cast<std::size_t>(k)]];
    }
}

Tensor
ShufflePolicy::invert(const Tensor& shuffled,
                      std::uint64_t request_id) const
{
    SHREDDER_REQUIRE(!rank_matched(),
                     "ShufflePolicy::invert: the rank-matched variant "
                     "adds noise and has no inverse");
    const std::int64_t n = shuffled.size();
    Rng draw_rng(noise_seed(seed_, request_id));
    const std::vector<std::int64_t> perm = draw_rng.permutation(n);
    Tensor out = shuffled;
    const float* src = shuffled.data();
    float* dst = out.data();
    // apply() wrote dst[j] = src[perm[j]]; undo by scattering back.
    for (std::int64_t j = 0; j < n; ++j) {
        dst[perm[static_cast<std::size_t>(j)]] = src[j];
    }
    return out;
}

// ---------------------------------------------------------------------
// ComposedPolicy
// ---------------------------------------------------------------------

ComposedPolicy::ComposedPolicy(
    std::vector<std::shared_ptr<const NoisePolicy>> stages)
    : stages_(std::move(stages))
{
    SHREDDER_REQUIRE(!stages_.empty(),
                     "ComposedPolicy needs at least one stage");
    Shape pinned{};
    for (const auto& stage : stages_) {
        SHREDDER_REQUIRE(stage != nullptr,
                         "ComposedPolicy: null stage policy");
        const Shape s = stage->noise_shape();
        if (s.rank() == 0) {
            continue;
        }
        if (pinned.rank() == 0) {
            pinned = s;
        } else {
            SHREDDER_REQUIRE(
                pinned.numel() == s.numel(),
                "ComposedPolicy: stage '", stage->name(), "' shape ",
                s.to_string(), " disagrees with earlier stage shape ",
                pinned.to_string());
        }
    }
}

Shape
ComposedPolicy::noise_shape() const
{
    for (const auto& stage : stages_) {
        const Shape s = stage->noise_shape();
        if (s.rank() > 0) {
            return s;
        }
    }
    return Shape{};
}

std::string
ComposedPolicy::name() const
{
    std::string joined;
    for (const auto& stage : stages_) {
        if (!joined.empty()) {
            joined += '+';
        }
        joined += stage->name();
    }
    return joined;
}

Tensor
ComposedPolicy::apply(const Tensor& activation,
                      std::uint64_t request_id) const
{
    // Stage i's output is stage i+1's activation; every stage draws
    // under the same request id with its own root seed (see header).
    Tensor current = stages_.front()->apply(activation, request_id);
    for (std::size_t i = 1; i < stages_.size(); ++i) {
        current = stages_[i]->apply(current, request_id);
    }
    return current;
}

bool
ComposedPolicy::additive() const
{
    for (const auto& stage : stages_) {
        if (!stage->additive()) {
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// QuantizePolicy
// ---------------------------------------------------------------------

QuantizePolicy::QuantizePolicy(WireDtype dtype) : dtype_(dtype)
{
    SHREDDER_REQUIRE(dtype != WireDtype::kF32,
                     "QuantizePolicy: fp32 transport adds no distortion "
                     "— compose the noise policy directly");
}

Tensor
QuantizePolicy::apply(const Tensor& activation, std::uint64_t) const
{
    return dequantize(quantize(activation, dtype_));
}

std::string
QuantizePolicy::name() const
{
    return std::string("quant-") + to_string(dtype_);
}

}  // namespace runtime
}  // namespace shredder
