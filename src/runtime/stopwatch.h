/**
 * @file
 * Wall-clock stopwatch used by trainers and the benchmark harness.
 */
#ifndef SHREDDER_RUNTIME_STOPWATCH_H
#define SHREDDER_RUNTIME_STOPWATCH_H

#include <chrono>

namespace shredder {

/** Monotonic wall-clock stopwatch. Starts running on construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the stopwatch from zero. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed time in seconds. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace shredder

#endif  // SHREDDER_RUNTIME_STOPWATCH_H
