/**
 * @file
 * Implementation of the logging and error-reporting primitives.
 */
#include "src/runtime/logging.h"

#include <atomic>
#include <mutex>
#include <stdexcept>

namespace shredder {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;

/** Nesting depth of `ScopedFatalThrow` guards on this thread. */
thread_local int t_fatal_throw_depth = 0;

const char*
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kSilent: return "SILENT";
    }
    return "?";
}

}  // namespace

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
log_line(LogLevel level, const std::string& msg)
{
    if (level < log_level()) {
        return;
    }
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << "[shredder:" << level_name(level) << "] " << msg << "\n";
}

}  // namespace detail

ScopedFatalThrow::ScopedFatalThrow()
{
    ++t_fatal_throw_depth;
}

ScopedFatalThrow::~ScopedFatalThrow()
{
    --t_fatal_throw_depth;
}

void
fatal_impl(const char* file, int line, const std::string& msg)
{
    if (t_fatal_throw_depth > 0) {
        // Trust-boundary mode: untrusted data tripped a user-error
        // check; fail the operation, not the process.
        throw FatalError(msg);
    }
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::cerr << "[shredder:FATAL] " << file << ":" << line << ": "
                  << msg << std::endl;
    }
    std::exit(1);
}

void
panic_impl(const char* file, int line, const std::string& msg)
{
    {
        std::lock_guard<std::mutex> lock(g_log_mutex);
        std::cerr << "[shredder:PANIC] " << file << ":" << line << ": "
                  << msg << std::endl;
    }
    std::abort();
}

}  // namespace shredder
