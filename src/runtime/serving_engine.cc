/**
 * @file
 * Implementation of the multi-endpoint serving engine (see header).
 */
#include "src/runtime/serving_engine.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "src/deploy/bundle.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace runtime {

ServingEngine::ServingEngine(const ServingEngineConfig& config)
    : config_(config)
{
    SHREDDER_REQUIRE(config.shards >= 1,
                     "ServingEngineConfig::shards must be >= 1, got ",
                     config.shards);
    // The single-shard layout keeps the legacy num_workers semantics
    // exactly; multi-shard splits the budget evenly unless the caller
    // sizes shards explicitly.
    const unsigned per_shard =
        config.threads_per_shard > 0
            ? config.threads_per_shard
            : (config.shards <= 1
                   ? config.num_workers
                   : std::max(1u, config.num_workers / config.shards));
    shards_.reserve(config.shards);
    for (unsigned i = 0; i < config.shards; ++i) {
        shards_.push_back(std::make_unique<PoolShard>(
            "shard" + std::to_string(i), per_shard));
    }
}

ServingEngine::~ServingEngine() { shutdown(); }

void
ServingEngine::register_endpoint(const std::string& name,
                                 split::SplitModel& model,
                                 std::shared_ptr<const NoisePolicy> policy,
                                 const EndpointConfig& config)
{
    Endpoint endpoint;
    endpoint.policy = std::move(policy);
    endpoint.model = &model;
    install_endpoint(name, std::move(endpoint), config);
}

void
ServingEngine::register_endpoint_from_bundle(const std::string& name,
                                             const std::string& path,
                                             const EndpointConfig& config)
{
    Endpoint endpoint;
    endpoint.bundle =
        std::make_unique<deploy::Bundle>(deploy::load_bundle(path));
    // Intern the rebuilt network BEFORE anything references it: when an
    // earlier bundle carried identical content, this endpoint's split
    // view and policy are built over the registry's canonical weight
    // set and the freshly loaded copy is dropped here.
    endpoint.shared_network =
        weight_registry_.intern(endpoint.bundle->share_network());
    endpoint.bundle->adopt_network(endpoint.shared_network);
    endpoint.owned_model = std::make_unique<split::SplitModel>(
        endpoint.bundle->network(), endpoint.bundle->cut());
    endpoint.model = endpoint.owned_model.get();
    // The replay policy borrows the bundle's collection; the Endpoint
    // keeps the bundle alive for exactly as long as the policy serves.
    endpoint.policy = endpoint.bundle->make_policy();

    EndpointConfig pinned = config;
    if (pinned.sample_shape.rank() == 0) {
        // Pin the shape contract from the validated artifact — a
        // cold-started endpoint should never adopt its contract from
        // the first request.
        pinned.sample_shape = endpoint.bundle->activation_shape();
    }
    // Bundle transport hints fill only what the caller left unset: an
    // explicit manifest/config choice (including fp32) always wins.
    if (!pinned.wire_dtype.has_value()) {
        pinned.wire_dtype = endpoint.bundle->wire_dtype();
    }
    if (!pinned.int8_compute.has_value()) {
        pinned.int8_compute = endpoint.bundle->int8_compute();
    }
    install_endpoint(name, std::move(endpoint), pinned);
}

void
ServingEngine::register_endpoints_from_manifest(const std::string& path)
{
    for (const deploy::ManifestEntry& entry : deploy::parse_manifest(path)) {
        register_endpoint_from_bundle(entry.name, entry.bundle_path,
                                      entry.config);
    }
}

ServingEngine::PoolShard&
ServingEngine::resolve_shard(const std::string& key)
{
    if (key.empty()) {
        // Round-robin placement; the caller advances `next_shard_`
        // only once the registration actually succeeds.
        return *shards_[next_shard_ % shards_.size()];
    }
    const bool all_digits =
        std::all_of(key.begin(), key.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
        });
    if (all_digits) {
        // Bare index form ("1" == "shard1"). Shard counts are tiny, so
        // a length guard is enough to keep stoull in range.
        if (key.size() <= 6) {
            const std::size_t index = std::stoull(key);
            if (index < shards_.size()) {
                return *shards_[index];
            }
        }
    } else {
        for (const std::unique_ptr<PoolShard>& shard : shards_) {
            if (shard->name == key) {
                return *shard;
            }
        }
    }
    throw ServingError(ServingErrorCode::kBadBundle,
                       "unknown shard '" + key + "' (engine has " +
                       std::to_string(shards_.size()) + " shards)");
}

void
ServingEngine::install_endpoint(const std::string& name, Endpoint endpoint,
                                const EndpointConfig& config)
{
    if (endpoint.policy == nullptr) {
        throw ServingError(ServingErrorCode::kNoPolicy,
                           "endpoint '" + name + "' registered without a "
                           "noise policy (use NoNoisePolicy for clean "
                           "serving)");
    }

    InferenceServerConfig server_config;
    server_config.max_batch = config.max_batch;
    server_config.batch_timeout_ms = config.batch_timeout_ms;
    server_config.adaptive_batching = config.adaptive_batching;
    server_config.controller.slo_ms = config.slo_ms;
    server_config.controller.ewma_alpha = config.ewma_alpha;
    server_config.max_concurrent_batches = config.max_concurrent_batches;
    server_config.seed = config.context_seed;
    server_config.sample_shape = config.sample_shape;
    server_config.int8_compute = config.int8_compute.value_or(false);
    server_config.rate_limit_qps = config.rate_limit_qps;
    server_config.rate_limit_burst = config.rate_limit_burst;
    server_config.max_in_flight = config.max_in_flight;
    endpoint.wire_dtype = config.wire_dtype.value_or(WireDtype::kF32);

    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
        throw ServingError(ServingErrorCode::kShutdown,
                           "register_endpoint('" + name +
                           "') after shutdown");
    }
    if (endpoints_.count(name) > 0) {
        throw ServingError(ServingErrorCode::kDuplicateEndpoint,
                           "endpoint '" + name + "' is already "
                           "registered");
    }
    PoolShard& shard = resolve_shard(config.shard);
    server_config.pool = &shard.pool;
    endpoint.shard_name = shard.name;
    endpoint.server = std::make_unique<InferenceServer>(
        *endpoint.model, *endpoint.policy, server_config);
    endpoints_.emplace(name,
                       std::make_shared<Endpoint>(std::move(endpoint)));
    shard.endpoints.push_back(name);
    if (config.shard.empty()) {
        ++next_shard_;  // Only a successful round-robin install advances.
    }
}

std::shared_ptr<ServingEngine::Endpoint>
ServingEngine::find(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = endpoints_.find(name);
    return it != endpoints_.end() ? it->second : nullptr;
}

std::shared_ptr<const ServingEngine::Endpoint>
ServingEngine::find(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = endpoints_.find(name);
    return it != endpoints_.end() ? it->second : nullptr;
}

std::future<Tensor>
ServingEngine::submit(const std::string& name, Tensor activation,
                      std::uint64_t request_id)
{
    const std::shared_ptr<Endpoint> endpoint = find(name);
    if (endpoint == nullptr) {
        std::promise<Tensor> promise;
        promise.set_exception(std::make_exception_ptr(ServingError(
            ServingErrorCode::kUnknownEndpoint,
            "no endpoint named '" + name + "'")));
        return promise.get_future();
    }
    // The endpoint's server does its own accepting/shape/admission
    // validation (kShutdown / kInvalidShape / kRateLimited /
    // kAdmissionReject) — outside the engine lock.
    return endpoint->server->submit(std::move(activation), request_id);
}

std::future<Tensor>
ServingEngine::submit(const std::string& name, Tensor activation)
{
    const std::shared_ptr<Endpoint> endpoint = find(name);
    if (endpoint == nullptr) {
        std::promise<Tensor> promise;
        promise.set_exception(std::make_exception_ptr(ServingError(
            ServingErrorCode::kUnknownEndpoint,
            "no endpoint named '" + name + "'")));
        return promise.get_future();
    }
    return endpoint->server->submit(std::move(activation));
}

std::future<Tensor>
ServingEngine::submit_quantized(const std::string& name,
                                QuantizedTensor activation,
                                std::uint64_t request_id)
{
    const std::shared_ptr<Endpoint> endpoint = find(name);
    if (endpoint == nullptr) {
        std::promise<Tensor> promise;
        promise.set_exception(std::make_exception_ptr(ServingError(
            ServingErrorCode::kUnknownEndpoint,
            "no endpoint named '" + name + "'")));
        return promise.get_future();
    }
    return endpoint->server->submit_quantized(std::move(activation),
                                              request_id);
}

Tensor
ServingEngine::infer(const std::string& name, const Tensor& activation)
{
    return submit(name, activation).get();
}

void
ServingEngine::deregister_endpoint(const std::string& name)
{
    std::shared_ptr<Endpoint> endpoint;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = endpoints_.find(name);
        if (it == endpoints_.end()) {
            throw ServingError(ServingErrorCode::kUnknownEndpoint,
                               "no endpoint named '" + name + "'");
        }
        endpoint = std::move(it->second);
        endpoints_.erase(it);
        for (const std::unique_ptr<PoolShard>& shard : shards_) {
            auto& list = shard->endpoints;
            list.erase(std::remove(list.begin(), list.end(), name),
                       list.end());
        }
    }
    // Outside the lock: drain the endpoint's queue and wait for its
    // in-flight batches. Submits that raced the erase still hold their
    // own shared_ptr, so the server object outlives their calls; new
    // lookups already miss.
    endpoint->server->shutdown();
}

std::vector<std::string>
ServingEngine::endpoint_names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(endpoints_.size());
    for (const auto& entry : endpoints_) {
        names.push_back(entry.first);
    }
    return names;  // std::map iterates sorted
}

bool
ServingEngine::has_endpoint(const std::string& name) const
{
    return find(name) != nullptr;
}

std::vector<ShardInfo>
ServingEngine::shard_info() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ShardInfo> info;
    info.reserve(shards_.size());
    for (const std::unique_ptr<PoolShard>& shard : shards_) {
        ShardInfo entry;
        entry.name = shard->name;
        entry.threads = shard->pool.size();
        entry.endpoints = shard->endpoints;
        info.push_back(std::move(entry));
    }
    return info;
}

std::string
ServingEngine::shard_of(const std::string& name) const
{
    const std::shared_ptr<const Endpoint> endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return endpoint->shard_name;
}

deploy::WeightRegistryStats
ServingEngine::weight_registry_stats() const
{
    return weight_registry_.stats();
}

const NoisePolicy&
ServingEngine::policy(const std::string& name) const
{
    const std::shared_ptr<const Endpoint> endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return *endpoint->policy;
}

split::SplitModel&
ServingEngine::model(const std::string& name)
{
    const std::shared_ptr<Endpoint> endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return *endpoint->model;
}

const deploy::Bundle*
ServingEngine::bundle(const std::string& name) const
{
    const std::shared_ptr<const Endpoint> endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return endpoint->bundle.get();
}

WireDtype
ServingEngine::wire_dtype(const std::string& name) const
{
    const std::shared_ptr<const Endpoint> endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return endpoint->wire_dtype;
}

ServerStats
ServingEngine::stats(const std::string& name) const
{
    const std::shared_ptr<const Endpoint> endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return endpoint->server->stats();
}

ServerStats
ServingEngine::stats() const
{
    ServerStats aggregate;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : endpoints_) {
        const ServerStats s = entry.second->server->stats();
        aggregate.requests += s.requests;
        aggregate.batches += s.batches;
        aggregate.busy_ms += s.busy_ms;
        aggregate.queue_ms += s.queue_ms;
        aggregate.max_batch_seen =
            std::max(aggregate.max_batch_seen, s.max_batch_seen);
        aggregate.full_dispatches += s.full_dispatches;
        aggregate.deadline_dispatches += s.deadline_dispatches;
        aggregate.quantized_requests += s.quantized_requests;
        aggregate.int8_direct_batches += s.int8_direct_batches;
        aggregate.fp32_fused_batches += s.fp32_fused_batches;
        aggregate.rate_limited += s.rate_limited;
        aggregate.admission_rejected += s.admission_rejected;
        aggregate.in_flight += s.in_flight;
        aggregate.merge_queue_wait_hist(s);
    }
    // Endpoints serve concurrently on the engine's shards: wall time is
    // the engine's lifetime, not a per-endpoint sum.
    aggregate.wall_seconds = lifetime_.seconds();
    return aggregate;
}

void
ServingEngine::shutdown()
{
    std::vector<std::shared_ptr<Endpoint>> bindings;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        accepting_ = false;
        bindings.reserve(endpoints_.size());
        for (auto& entry : endpoints_) {
            bindings.push_back(entry.second);
        }
    }
    // Outside the lock: each shutdown drains that endpoint's queue and
    // waits for its in-flight batches on its shard's pool.
    for (const std::shared_ptr<Endpoint>& binding : bindings) {
        binding->server->shutdown();
    }
}

bool
ServingEngine::running() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepting_;
}

}  // namespace runtime
}  // namespace shredder
