/**
 * @file
 * Implementation of the multi-endpoint serving engine (see header).
 */
#include "src/runtime/serving_engine.h"

#include <algorithm>
#include <utility>

#include "src/deploy/bundle.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace runtime {

ServingEngine::ServingEngine(const ServingEngineConfig& config)
    : config_(config), pool_(config.num_workers)
{
}

ServingEngine::~ServingEngine() { shutdown(); }

void
ServingEngine::register_endpoint(const std::string& name,
                                 split::SplitModel& model,
                                 std::shared_ptr<const NoisePolicy> policy,
                                 const EndpointConfig& config)
{
    Endpoint endpoint;
    endpoint.policy = std::move(policy);
    endpoint.model = &model;
    install_endpoint(name, std::move(endpoint), config);
}

void
ServingEngine::register_endpoint_from_bundle(const std::string& name,
                                             const std::string& path,
                                             const EndpointConfig& config)
{
    Endpoint endpoint;
    endpoint.bundle =
        std::make_unique<deploy::Bundle>(deploy::load_bundle(path));
    endpoint.owned_model = std::make_unique<split::SplitModel>(
        endpoint.bundle->network(), endpoint.bundle->cut());
    endpoint.model = endpoint.owned_model.get();
    // The replay policy borrows the bundle's collection; the Endpoint
    // keeps the bundle alive for exactly as long as the policy serves.
    endpoint.policy = endpoint.bundle->make_policy();

    EndpointConfig pinned = config;
    if (pinned.sample_shape.rank() == 0) {
        // Pin the shape contract from the validated artifact — a
        // cold-started endpoint should never adopt its contract from
        // the first request.
        pinned.sample_shape = endpoint.bundle->activation_shape();
    }
    // Bundle transport hints fill only what the caller left unset: an
    // explicit manifest/config choice (including fp32) always wins.
    if (!pinned.wire_dtype.has_value()) {
        pinned.wire_dtype = endpoint.bundle->wire_dtype();
    }
    if (!pinned.int8_compute.has_value()) {
        pinned.int8_compute = endpoint.bundle->int8_compute();
    }
    install_endpoint(name, std::move(endpoint), pinned);
}

void
ServingEngine::register_endpoints_from_manifest(const std::string& path)
{
    for (const deploy::ManifestEntry& entry : deploy::parse_manifest(path)) {
        register_endpoint_from_bundle(entry.name, entry.bundle_path,
                                      entry.config);
    }
}

void
ServingEngine::install_endpoint(const std::string& name, Endpoint endpoint,
                                const EndpointConfig& config)
{
    if (endpoint.policy == nullptr) {
        throw ServingError(ServingErrorCode::kNoPolicy,
                           "endpoint '" + name + "' registered without a "
                           "noise policy (use NoNoisePolicy for clean "
                           "serving)");
    }

    InferenceServerConfig server_config;
    server_config.max_batch = config.max_batch;
    server_config.batch_timeout_ms = config.batch_timeout_ms;
    server_config.adaptive_batching = config.adaptive_batching;
    server_config.controller.slo_ms = config.slo_ms;
    server_config.controller.ewma_alpha = config.ewma_alpha;
    server_config.pool = &pool_;
    server_config.max_concurrent_batches = config.max_concurrent_batches;
    server_config.seed = config.context_seed;
    server_config.sample_shape = config.sample_shape;
    server_config.int8_compute = config.int8_compute.value_or(false);
    endpoint.wire_dtype = config.wire_dtype.value_or(WireDtype::kF32);

    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
        throw ServingError(ServingErrorCode::kShutdown,
                           "register_endpoint('" + name +
                           "') after shutdown");
    }
    if (endpoints_.count(name) > 0) {
        throw ServingError(ServingErrorCode::kDuplicateEndpoint,
                           "endpoint '" + name + "' is already "
                           "registered");
    }
    endpoint.server = std::make_unique<InferenceServer>(
        *endpoint.model, *endpoint.policy, server_config);
    endpoints_.emplace(name, std::move(endpoint));
}

ServingEngine::Endpoint*
ServingEngine::find(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = endpoints_.find(name);
    return it != endpoints_.end() ? &it->second : nullptr;
}

const ServingEngine::Endpoint*
ServingEngine::find(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = endpoints_.find(name);
    return it != endpoints_.end() ? &it->second : nullptr;
}

std::future<Tensor>
ServingEngine::submit(const std::string& name, Tensor activation,
                      std::uint64_t request_id)
{
    Endpoint* endpoint = find(name);
    if (endpoint == nullptr) {
        std::promise<Tensor> promise;
        promise.set_exception(std::make_exception_ptr(ServingError(
            ServingErrorCode::kUnknownEndpoint,
            "no endpoint named '" + name + "'")));
        return promise.get_future();
    }
    // The endpoint's server does its own accepting/shape validation
    // (kShutdown / kInvalidShape) — outside the engine lock.
    return endpoint->server->submit(std::move(activation), request_id);
}

std::future<Tensor>
ServingEngine::submit(const std::string& name, Tensor activation)
{
    Endpoint* endpoint = find(name);
    if (endpoint == nullptr) {
        std::promise<Tensor> promise;
        promise.set_exception(std::make_exception_ptr(ServingError(
            ServingErrorCode::kUnknownEndpoint,
            "no endpoint named '" + name + "'")));
        return promise.get_future();
    }
    return endpoint->server->submit(std::move(activation));
}

std::future<Tensor>
ServingEngine::submit_quantized(const std::string& name,
                                QuantizedTensor activation,
                                std::uint64_t request_id)
{
    Endpoint* endpoint = find(name);
    if (endpoint == nullptr) {
        std::promise<Tensor> promise;
        promise.set_exception(std::make_exception_ptr(ServingError(
            ServingErrorCode::kUnknownEndpoint,
            "no endpoint named '" + name + "'")));
        return promise.get_future();
    }
    return endpoint->server->submit_quantized(std::move(activation),
                                              request_id);
}

Tensor
ServingEngine::infer(const std::string& name, const Tensor& activation)
{
    return submit(name, activation).get();
}

std::vector<std::string>
ServingEngine::endpoint_names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(endpoints_.size());
    for (const auto& entry : endpoints_) {
        names.push_back(entry.first);
    }
    return names;  // std::map iterates sorted
}

bool
ServingEngine::has_endpoint(const std::string& name) const
{
    return find(name) != nullptr;
}

const NoisePolicy&
ServingEngine::policy(const std::string& name) const
{
    const Endpoint* endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return *endpoint->policy;
}

split::SplitModel&
ServingEngine::model(const std::string& name)
{
    Endpoint* endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return *endpoint->model;
}

const deploy::Bundle*
ServingEngine::bundle(const std::string& name) const
{
    const Endpoint* endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return endpoint->bundle.get();
}

WireDtype
ServingEngine::wire_dtype(const std::string& name) const
{
    const Endpoint* endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return endpoint->wire_dtype;
}

ServerStats
ServingEngine::stats(const std::string& name) const
{
    const Endpoint* endpoint = find(name);
    if (endpoint == nullptr) {
        throw ServingError(ServingErrorCode::kUnknownEndpoint,
                           "no endpoint named '" + name + "'");
    }
    return endpoint->server->stats();
}

ServerStats
ServingEngine::stats() const
{
    ServerStats aggregate;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : endpoints_) {
        const ServerStats s = entry.second.server->stats();
        aggregate.requests += s.requests;
        aggregate.batches += s.batches;
        aggregate.busy_ms += s.busy_ms;
        aggregate.queue_ms += s.queue_ms;
        aggregate.max_batch_seen =
            std::max(aggregate.max_batch_seen, s.max_batch_seen);
        aggregate.full_dispatches += s.full_dispatches;
        aggregate.deadline_dispatches += s.deadline_dispatches;
        aggregate.quantized_requests += s.quantized_requests;
        aggregate.int8_direct_batches += s.int8_direct_batches;
        aggregate.merge_queue_wait_hist(s);
    }
    // Endpoints serve concurrently on one pool: wall time is the
    // engine's lifetime, not a per-endpoint sum.
    aggregate.wall_seconds = lifetime_.seconds();
    return aggregate;
}

void
ServingEngine::shutdown()
{
    std::vector<InferenceServer*> servers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        accepting_ = false;
        servers.reserve(endpoints_.size());
        for (auto& entry : endpoints_) {
            servers.push_back(entry.second.server.get());
        }
    }
    // Outside the lock: each shutdown drains that endpoint's queue and
    // waits for its in-flight batches on the shared pool.
    for (InferenceServer* server : servers) {
        server->shutdown();
    }
}

bool
ServingEngine::running() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepting_;
}

}  // namespace runtime
}  // namespace shredder
