/**
 * @file
 * Token-bucket refill math (see admission.h for the contract).
 */
#include "src/runtime/admission.h"

#include <algorithm>

namespace shredder {
namespace runtime {

TokenBucket::TokenBucket(double qps, double burst)
    : qps_(qps > 0.0 ? qps : 0.0),
      burst_(burst > 0.0 ? burst : std::max(1.0, qps_)),
      tokens_(burst_)
{
}

bool
TokenBucket::try_take(double now_ms)
{
    if (qps_ <= 0.0) {
        return true;
    }
    if (!primed_) {
        // The first arrival pins the clock origin; the bucket starts
        // full, so a cold burst up to `burst_` is always admitted.
        primed_ = true;
        last_ms_ = now_ms;
    }
    const double elapsed_ms = std::max(0.0, now_ms - last_ms_);
    last_ms_ = now_ms;
    tokens_ = std::min(burst_, tokens_ + elapsed_ms * qps_ / 1000.0);
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return true;
    }
    return false;
}

}  // namespace runtime
}  // namespace shredder
