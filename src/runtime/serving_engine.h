/**
 * @file
 * Multi-endpoint serving engine: one process, many models, many noise
 * mechanisms, one worker pool.
 *
 * A production Shredder deployment rarely hosts exactly one network
 * under exactly one noise mechanism. The engine is the façade for the
 * general case:
 *
 *   ServingEngine engine(cfg);
 *   engine.register_endpoint("mnist-replay",  model_a, replay_policy);
 *   engine.register_endpoint("mnist-sample",  model_a, sample_policy);
 *   engine.register_endpoint("svhn-clean",    model_b, no_noise);
 *   auto logits = engine.submit("mnist-replay", activation, id);
 *
 * Each endpoint is a name → (`SplitModel`, `NoisePolicy`,
 * `InferenceServer` dispatcher) binding. All endpoints share ONE
 * `ThreadPool`: batches from every endpoint interleave on the same
 * workers, so capacity is provisioned once per process instead of per
 * model. The stateless-layer execution model makes this safe — each
 * in-flight batch runs against its endpoint's pooled
 * `ExecutionContext`, weights are read-only, and two endpoints may
 * even serve the *same* `SplitModel` under different policies (the
 * replay-vs-sample A/B above).
 *
 * Policies are held by `shared_ptr`, so one policy object may back
 * several endpoints and callers may keep measuring through it
 * (`PrivacyMeter::measure_policy`) while it serves: the measured
 * mechanism is bit-for-bit the served one.
 *
 * Failures are typed (`ServingError`): setup mistakes
 * (`kNoPolicy`, `kDuplicateEndpoint`, `kShutdown`) throw from
 * `register_endpoint`; per-request problems (`kUnknownEndpoint`,
 * `kInvalidShape`, `kShutdown`) fail the request's own future and
 * never disturb other traffic.
 */
#ifndef SHREDDER_RUNTIME_SERVING_ENGINE_H
#define SHREDDER_RUNTIME_SERVING_ENGINE_H

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/deploy/weight_registry.h"
#include "src/runtime/inference_server.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_error.h"
#include "src/runtime/stopwatch.h"
#include "src/runtime/thread_pool.h"
#include "src/split/split_model.h"
#include "src/tensor/tensor.h"

namespace shredder {

namespace deploy {
class Bundle;
}  // namespace deploy

namespace runtime {

/** Engine-wide knobs. */
struct ServingEngineConfig
{
    /**
     * Worker threads of the single-shard (legacy) layout; 0 =
     * hardware concurrency. With `shards > 1` this only feeds the
     * `threads_per_shard` derivation below.
     */
    unsigned num_workers = 1;
    /**
     * Named pool shards ("shard0" … "shardN-1"), each an independent
     * `ThreadPool`. Endpoints are placed on exactly one shard
     * (`EndpointConfig::shard`, or round-robin when unset), so
     * tenants get CPU isolation: a hot endpoint saturates its own
     * shard's workers and queue, never the whole engine. Must be
     * >= 1; the default single shard is the pre-sharding engine
     * exactly.
     */
    unsigned shards = 1;
    /**
     * Worker threads per shard. 0 derives from `num_workers`: the
     * single-shard layout uses `num_workers` verbatim (legacy
     * behavior), a multi-shard layout splits it evenly
     * (`max(1, num_workers / shards)`).
     */
    unsigned threads_per_shard = 0;
};

/** Read-only view of one pool shard (see `ServingEngine::shard_info`). */
struct ShardInfo
{
    std::string name;     ///< "shard0" … "shardN-1".
    std::size_t threads;  ///< Worker threads in this shard's pool.
    /** Endpoints placed on this shard, registration order. */
    std::vector<std::string> endpoints;
};

/** Per-endpoint knobs (a subset of `InferenceServerConfig`). */
struct EndpointConfig
{
    /** Max requests fused into one cloud forward. */
    std::int64_t max_batch = 8;
    /**
     * Dispatcher straggler wait (ms); 0 = ship immediately. Ignored
     * when `adaptive_batching` is on.
     */
    double batch_timeout_ms = 1.0;
    /**
     * Replace the fixed straggler wait with the SLO-aware controller
     * (src/runtime/batch_controller.h): the dispatch deadline tracks
     * the predicted batch fill time under the observed arrival rate,
     * bounded by `slo_ms`.
     */
    bool adaptive_batching = false;
    /** Adaptive mode: queue-delay budget (ms) the batcher may add. */
    double slo_ms = 5.0;
    /** Adaptive mode: EWMA weight of the newest inter-arrival gap. */
    double ewma_alpha = 0.2;
    /**
     * Cloud forwards of THIS endpoint allowed in flight at once (its
     * `ExecutionContext` pool size). 0 = one per shared worker.
     */
    std::int64_t max_concurrent_batches = 0;
    /** Seed of the endpoint's execution-context RNGs. */
    std::uint64_t context_seed = 0xC0FFEE;
    /**
     * Per-sample activation shape pin (rank 1–3); rank 0 defers to
     * the policy's `noise_shape()` or first-request adoption, as in
     * `InferenceServerConfig::sample_shape`.
     */
    Shape sample_shape{};
    /**
     * Transport dtype clients of this endpoint are expected to use
     * (`WireDtype::kI8` → 4× fewer activation bytes on the wire).
     * Unset defers to the bundle's `wire_dtype` hint (cold-start
     * endpoints) or fp32. Advisory: the endpoint still accepts any
     * dtype via `submit_quantized`; this value drives tooling
     * (shredder_serve's table, the TCP server's expectations).
     */
    std::optional<WireDtype> wire_dtype{};
    /**
     * Let the endpoint's server consume int8-quantized activations
     * directly through the int8 GEMM first layer
     * (`InferenceServerConfig::int8_compute`). Unset defers to the
     * bundle's hint (cold-start endpoints) or false. Always safe to
     * enable — the server falls back to dequantize→fp32 whenever the
     * engagement conditions don't hold.
     */
    std::optional<bool> int8_compute{};
    /**
     * Pool shard this endpoint executes on: a shard name ("shard1")
     * or bare index ("1"). Empty = round-robin over the engine's
     * shards at registration. An unknown shard throws `kBadBundle`
     * from registration (it is a deployment-config error).
     */
    std::string shard{};
    /**
     * Token-bucket admission rate for this endpoint (requests/s);
     * 0 disables. Over-limit submits fail typed `kRateLimited`
     * (`InferenceServerConfig::rate_limit_qps`).
     */
    double rate_limit_qps = 0.0;
    /** Bucket capacity; <= 0 defaults to `max(1, rate_limit_qps)`. */
    double rate_limit_burst = 0.0;
    /**
     * Cap on this endpoint's admitted-but-unanswered requests;
     * 0 disables. Over-cap submits fail typed `kAdmissionReject`
     * (`InferenceServerConfig::max_in_flight`).
     */
    std::int64_t max_in_flight = 0;
};

/** See file comment. */
class ServingEngine
{
  public:
    explicit ServingEngine(const ServingEngineConfig& config = {});

    /** Shuts every endpoint down (draining queued requests). */
    ~ServingEngine();

    ServingEngine(const ServingEngine&) = delete;
    ServingEngine& operator=(const ServingEngine&) = delete;

    /**
     * Bind `name` to (`model`, `policy`) and start its dispatcher.
     *
     * @param model  Split view served by this endpoint (borrowed; must
     *               outlive the engine). May be shared with other
     *               endpoints — weights are read-only during serving.
     * @param policy Noise mechanism (shared ownership; may back
     *               several endpoints and concurrent measurement).
     * @param config Endpoint knobs.
     * @throws ServingError `kNoPolicy` for a null policy,
     *         `kDuplicateEndpoint` for a reused name, `kShutdown`
     *         after `shutdown()`.
     */
    void register_endpoint(const std::string& name,
                           split::SplitModel& model,
                           std::shared_ptr<const NoisePolicy> policy,
                           const EndpointConfig& config = {});

    /**
     * Cold-start an endpoint from a deployment bundle on disk
     * (src/deploy/bundle.h): load + validate the artifact, rebuild the
     * network, materialize the bundled noise policy, and serve it as
     * `name`. The engine owns everything the endpoint needs — no
     * application objects, which is the paper's train→ship→serve
     * story.
     *
     * @throws ServingError `kBadBundle` / `kVersionMismatch` for a
     *         malformed or future-format bundle (the engine and its
     *         other endpoints are unaffected), plus the
     *         `register_endpoint` codes (`kDuplicateEndpoint`,
     *         `kShutdown`).
     */
    void register_endpoint_from_bundle(const std::string& name,
                                       const std::string& path,
                                       const EndpointConfig& config = {});

    /**
     * Cold-start every endpoint a deployment manifest lists
     * (`endpoint <name> <bundle-path> [key=value ...]` — see
     * docs/DEPLOYMENT.md). Entries register in file order; the first
     * failure throws and leaves previously registered endpoints
     * serving.
     */
    void register_endpoints_from_manifest(const std::string& path);

    /**
     * Enqueue one request on endpoint `name` under a caller-chosen
     * request id (the id keys the noise draw; see
     * `InferenceServer::submit`). An unknown name, a shape-contract
     * violation or a post-shutdown submit fails the returned future
     * with the corresponding `ServingError` code.
     */
    std::future<Tensor> submit(const std::string& name, Tensor activation,
                               std::uint64_t request_id);

    /** As above with an endpoint-auto-assigned id (`kAutoIdBase + n`). */
    std::future<Tensor> submit(const std::string& name, Tensor activation);

    /**
     * Enqueue one quantized request on endpoint `name`
     * (`InferenceServer::submit_quantized`): the activation crossed
     * the wire as `activation.dtype` and is dequantized — or consumed
     * directly by the int8 GEMM path when the endpoint enables
     * `int8_compute` — on a worker. Failure modes match `submit`.
     */
    std::future<Tensor> submit_quantized(const std::string& name,
                                         QuantizedTensor activation,
                                         std::uint64_t request_id);

    /** Blocking convenience wrapper around `submit`. */
    Tensor infer(const std::string& name, const Tensor& activation);

    /**
     * Remove endpoint `name`: stop accepting its requests, drain its
     * queue, and release the binding (bundle, model, policy). Other
     * endpoints are unaffected; weight sets interned through the
     * registry survive (a later re-registration aliases them again).
     * In-flight submits racing the deregistration finish normally —
     * they hold shared ownership of the endpoint for the call.
     *
     * @throws ServingError `kUnknownEndpoint` for an unknown name.
     */
    void deregister_endpoint(const std::string& name);

    /** Registered endpoint names, sorted. */
    std::vector<std::string> endpoint_names() const;

    /** True if `name` is a registered endpoint. */
    bool has_endpoint(const std::string& name) const;

    /** Per-shard layout and placement (for tooling and /metrics). */
    std::vector<ShardInfo> shard_info() const;

    /** The shard endpoint `name` executes on (throws `kUnknownEndpoint`). */
    std::string shard_of(const std::string& name) const;

    /**
     * Counters of the content-addressed weight registry every
     * bundle-backed endpoint interns through (`weights_dedupe_bytes`
     * > 0 once two endpoints share a backbone).
     */
    deploy::WeightRegistryStats weight_registry_stats() const;

    /** The policy endpoint `name` executes (throws `kUnknownEndpoint`). */
    const NoisePolicy& policy(const std::string& name) const;

    /** The split model endpoint `name` serves (throws `kUnknownEndpoint`). */
    split::SplitModel& model(const std::string& name);

    /**
     * The deployment bundle backing endpoint `name`, or null when the
     * endpoint was registered in-process (throws `kUnknownEndpoint`
     * for an unregistered name). Cold-start tooling uses this for the
     * bundled input shape and metadata.
     */
    const deploy::Bundle* bundle(const std::string& name) const;

    /**
     * The transport dtype endpoint `name` advertises (resolved from
     * the endpoint config, else the bundle hint, else fp32; throws
     * `kUnknownEndpoint`). Tooling prints this and TCP servers use it
     * to pick the client-facing wire format.
     */
    WireDtype wire_dtype(const std::string& name) const;

    /**
     * Per-endpoint counters (throws `kUnknownEndpoint` for an unknown
     * name).
     */
    ServerStats stats(const std::string& name) const;

    /**
     * Aggregate counters across all endpoints: requests/batches/times
     * are summed, `max_batch_seen` is the maximum, `wall_seconds` is
     * the engine's lifetime (NOT a sum — endpoints run concurrently,
     * so `requests_per_sec()` stays meaningful).
     */
    ServerStats stats() const;

    /**
     * Stop accepting registrations and new requests, drain every
     * endpoint's queue, and stop the dispatchers. Idempotent; called
     * by the destructor.
     */
    void shutdown();

    /** True until `shutdown` begins. */
    bool running() const;

  private:
    /**
     * One endpoint binding. Member order is load-bearing: destruction
     * runs bottom-up, so the `server` (which executes against `model`
     * and `policy`) dies first, the `policy` (whose replay variant
     * borrows the bundle's collection) before the `bundle`, and the
     * cold-start artifacts last.
     */
    struct Endpoint
    {
        /**
         * Cold-start artifacts: a bundle-backed endpoint owns its
         * loaded bundle (network, collection, distribution) and the
         * split view built over it; in-process endpoints leave both
         * null and borrow the caller's model instead.
         */
        std::unique_ptr<deploy::Bundle> bundle;
        std::unique_ptr<split::SplitModel> owned_model;
        std::shared_ptr<const NoisePolicy> policy;
        /** The model the server runs (caller's, or `owned_model`). */
        split::SplitModel* model = nullptr;
        std::unique_ptr<InferenceServer> server;
        /** Resolved transport dtype (config → bundle hint → fp32). */
        WireDtype wire_dtype = WireDtype::kF32;
        /** Resolved pool-shard name this endpoint executes on. */
        std::string shard_name;
        /**
         * Shared ownership of the (possibly registry-canonical)
         * network `owned_model` splits — cold-start endpoints only.
         * Keeps an aliased weight set alive even if the registry and
         * sibling endpoints release theirs first.
         */
        std::shared_ptr<nn::Sequential> shared_network;
    };

    /**
     * One named execution shard: an independent worker pool plus the
     * endpoints placed on it. The shard objects are created at engine
     * construction and never move (endpoint lists mutate under
     * `mutex_`); `InferenceServer`s hold raw pointers to the pools.
     */
    struct PoolShard
    {
        PoolShard(std::string shard_name, unsigned threads)
            : name(std::move(shard_name)), pool(threads)
        {
        }

        std::string name;
        ThreadPool pool;
        std::vector<std::string> endpoints;  ///< Guarded by `mutex_`.
    };

    /**
     * Look up an endpoint (shared ownership) or null. Submit paths
     * keep the returned pointer for the duration of the call, so a
     * concurrent `deregister_endpoint` cannot pull the server out
     * from under them.
     */
    std::shared_ptr<Endpoint> find(const std::string& name);
    std::shared_ptr<const Endpoint> find(const std::string& name) const;

    /**
     * Resolve an `EndpointConfig::shard` key to a shard (under
     * `mutex_`): empty = round-robin, digits = index, else name.
     * Throws `kBadBundle` for an unknown key.
     */
    PoolShard& resolve_shard(const std::string& key);

    /**
     * Shared registration tail: validate the name under the lock,
     * place the endpoint on its shard, start the dispatcher, install.
     * `endpoint.policy` and `endpoint.model` must be set (plus the
     * cold-start artifacts for bundle-backed endpoints).
     */
    void install_endpoint(const std::string& name, Endpoint endpoint,
                          const EndpointConfig& config);

    ServingEngineConfig config_;
    /**
     * The execution shards (fixed at construction; declared before
     * the endpoint map so servers die before their pools).
     */
    std::vector<std::unique_ptr<PoolShard>> shards_;
    /** Content-addressed weight interning for bundle-backed loads. */
    deploy::WeightRegistry weight_registry_;

    /**
     * Guards the endpoint map, the accepting flag, shard endpoint
     * lists, and the round-robin cursor. Endpoints are held by
     * `shared_ptr`, so a binding looked up under the lock stays valid
     * for the caller even across a concurrent deregistration; submits
     * run outside the lock.
     */
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<Endpoint>> endpoints_;
    std::size_t next_shard_ = 0;  ///< Round-robin placement cursor.
    bool accepting_ = true;

    Stopwatch lifetime_;
};

}  // namespace runtime
}  // namespace shredder

#endif  // SHREDDER_RUNTIME_SERVING_ENGINE_H
