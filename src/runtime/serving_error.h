/**
 * @file
 * Typed serving-path errors.
 *
 * The serving façade (`ServingEngine`, `InferenceServer`) rejects bad
 * requests through the request's own future, never by crashing the
 * server — other clients' in-flight work stays alive. Rejections carry
 * a `ServingError`: a typed code plus a context string, so callers
 * (and tests) branch on `code()` instead of parsing message text.
 *
 * `ServingError` derives from `std::runtime_error`, so call sites that
 * only care about "the request failed" keep working unchanged.
 */
#ifndef SHREDDER_RUNTIME_SERVING_ERROR_H
#define SHREDDER_RUNTIME_SERVING_ERROR_H

#include <stdexcept>
#include <string>

namespace shredder {
namespace runtime {

/** What went wrong with a serving-path call. */
enum class ServingErrorCode {
    /** Activation rank/size violates the endpoint's shape contract. */
    kInvalidShape,
    /** The server/engine stopped accepting before the call. */
    kShutdown,
    /** `submit` named an endpoint that was never registered. */
    kUnknownEndpoint,
    /** An endpoint was registered without a noise policy. */
    kNoPolicy,
    /** `register_endpoint` reused an existing endpoint name. */
    kDuplicateEndpoint,
    /**
     * A deployment artifact (bundle or manifest) is malformed:
     * missing file, bad magic, truncation, inconsistent sections.
     * Bundles cross a trust boundary, so loads *always* fail with
     * this code (or `kVersionMismatch`) rather than terminating.
     */
    kBadBundle,
    /**
     * A bundle's format version is newer than this build understands.
     * Distinct from `kBadBundle` so rollout tooling can tell "re-save
     * with the old writer" apart from "the file is damaged".
     */
    kVersionMismatch,
    /**
     * A network frame violated the SHRQ/SHRP wire protocol: bad
     * magic, unsupported version, oversize or truncated payload,
     * trailing bytes, malformed embedded tensor. Frames cross a trust
     * boundary, so parsing *always* fails with this code (the peer
     * gets a typed error response or a clean close) — never a crash.
     */
    kProtocol,
    /**
     * A socket-level failure: connect refused, send/recv error, the
     * peer disconnected mid-frame. Distinct from `kProtocol` so
     * callers can tell "the link died" apart from "the bytes lied".
     */
    kNetwork,
    /**
     * Admission control: the endpoint's token-bucket rate limit is
     * exhausted. Transient — the same request succeeds once the
     * bucket refills, so clients should treat this as backpressure
     * (retry with delay), not as a permanent failure.
     */
    kRateLimited,
    /**
     * Admission control: the endpoint's in-flight request cap is
     * reached. Like `kRateLimited` this is backpressure, but it
     * signals queue depth rather than arrival rate — the server is
     * still draining earlier work.
     */
    kAdmissionReject,
};

/** Stable identifier string for a code (used in error messages). */
inline const char*
to_string(ServingErrorCode code)
{
    switch (code) {
      case ServingErrorCode::kInvalidShape: return "kInvalidShape";
      case ServingErrorCode::kShutdown: return "kShutdown";
      case ServingErrorCode::kUnknownEndpoint: return "kUnknownEndpoint";
      case ServingErrorCode::kNoPolicy: return "kNoPolicy";
      case ServingErrorCode::kDuplicateEndpoint:
        return "kDuplicateEndpoint";
      case ServingErrorCode::kBadBundle: return "kBadBundle";
      case ServingErrorCode::kVersionMismatch: return "kVersionMismatch";
      case ServingErrorCode::kProtocol: return "kProtocol";
      case ServingErrorCode::kNetwork: return "kNetwork";
      case ServingErrorCode::kRateLimited: return "kRateLimited";
      case ServingErrorCode::kAdmissionReject:
        return "kAdmissionReject";
    }
    return "kUnknown";
}

/** See file comment. */
class ServingError : public std::runtime_error
{
  public:
    ServingError(ServingErrorCode code, const std::string& context)
        : std::runtime_error(std::string("serving error [") +
                             to_string(code) + "]: " + context),
          code_(code)
    {
    }

    /** The typed failure reason — branch on this, not on `what()`. */
    ServingErrorCode code() const noexcept { return code_; }

  private:
    ServingErrorCode code_;
};

}  // namespace runtime
}  // namespace shredder

#endif  // SHREDDER_RUNTIME_SERVING_ERROR_H
