/**
 * @file
 * Per-endpoint admission control: a clock-free token bucket.
 *
 * Same design discipline as `BatchController`: the bucket never reads
 * a clock — callers pass timestamps in (`InferenceServer` feeds it
 * `lifetime_.milliseconds()`), so tests drive refill math with a fake
 * clock and replay exact arrival patterns. It also carries no locking:
 * the inference server mutates it under the same mutex that guards
 * the request queue.
 *
 * Semantics are the classic token bucket: capacity `burst` tokens,
 * refilled continuously at `qps` tokens per second. Each admitted
 * request takes one token; an empty bucket means the arrival rate has
 * exceeded the configured limit for long enough to drain the burst
 * allowance, and the request is rejected with `kRateLimited` — typed
 * backpressure, not a crash, and in-flight work is never affected.
 */
#ifndef SHREDDER_RUNTIME_ADMISSION_H
#define SHREDDER_RUNTIME_ADMISSION_H

namespace shredder {
namespace runtime {

/** See file comment. */
class TokenBucket
{
  public:
    /**
     * @param qps    Sustained admission rate in requests/second.
     *               `qps <= 0` disables the bucket: `try_take` always
     *               admits.
     * @param burst  Bucket capacity in tokens. Values <= 0 default to
     *               `max(1, qps)` — one second of allowance, at least
     *               one request.
     */
    explicit TokenBucket(double qps = 0.0, double burst = 0.0);

    /**
     * Admit one request arriving at `now_ms` (monotonic milliseconds;
     * the caller's clock). Refills `elapsed * qps / 1000` tokens
     * (capped at `burst`), then takes one if a full token is
     * available. Time moving backwards is clamped to "no refill".
     *
     * @return True when admitted; false when the bucket is empty.
     */
    bool try_take(double now_ms);

    /** True when a rate limit is configured (`qps > 0`). */
    bool enabled() const { return qps_ > 0.0; }

    /** Current token count (post-refill as of the last `try_take`). */
    double tokens() const { return tokens_; }

    /** Bucket capacity after defaulting rules. */
    double burst() const { return burst_; }

  private:
    double qps_ = 0.0;
    double burst_ = 0.0;
    double tokens_ = 0.0;
    double last_ms_ = 0.0;
    bool primed_ = false;  ///< First call pins the clock origin.
};

}  // namespace runtime
}  // namespace shredder

#endif  // SHREDDER_RUNTIME_ADMISSION_H
