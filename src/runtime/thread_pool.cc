/**
 * @file
 * Implementation of the thread pool and parallel_for.
 */
#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/runtime/logging.h"

namespace shredder {

namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) {
        if (w.joinable()) {
            w.join();
        }
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        SHREDDER_CHECK(!stop_, "submit() on a stopping ThreadPool");
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    cv_task_.notify_one();
}

void
ThreadPool::wait_idle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

bool
ThreadPool::in_worker()
{
    return t_in_pool_worker;
}

void
ThreadPool::worker_loop()
{
    t_in_pool_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty()) {
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) {
                cv_idle_.notify_all();
            }
        }
    }
}

void
parallel_for(std::int64_t begin, std::int64_t end,
             const std::function<void(std::int64_t)>& fn, std::int64_t grain)
{
    const std::int64_t n = end - begin;
    if (n <= 0) {
        return;
    }
    ThreadPool& pool = ThreadPool::global();
    const std::int64_t workers = static_cast<std::int64_t>(pool.size());
    if (n <= grain || workers <= 1) {
        for (std::int64_t i = begin; i < end; ++i) {
            fn(i);
        }
        return;
    }
    const std::int64_t chunks = std::min<std::int64_t>(workers, n);
    const std::int64_t chunk = (n + chunks - 1) / chunks;
    std::atomic<int> remaining{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    for (std::int64_t c = 0; c < chunks; ++c) {
        const std::int64_t lo = begin + c * chunk;
        const std::int64_t hi = std::min(end, lo + chunk);
        if (lo >= hi) {
            break;
        }
        remaining.fetch_add(1, std::memory_order_relaxed);
        pool.submit([lo, hi, &fn, &remaining, &done_mutex, &done_cv] {
            for (std::int64_t i = lo; i < hi; ++i) {
                fn(i);
            }
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&remaining] {
        return remaining.load(std::memory_order_acquire) == 0;
    });
}

}  // namespace shredder
