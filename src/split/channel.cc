/**
 * @file
 * Implementation of the edge→cloud channels (wire format + accounting).
 */
#include "src/split/channel.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/runtime/logging.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace split {

std::int64_t
LoopbackChannel::send(const Tensor& t)
{
    std::string bytes = tensor_to_bytes(t);
    const auto size = static_cast<std::int64_t>(bytes.size());
    queue_.push_back(std::move(bytes));
    total_bytes_ += size;
    ++total_messages_;
    return size;
}

Tensor
LoopbackChannel::receive()
{
    SHREDDER_REQUIRE(!queue_.empty(), "receive() on empty channel");
    Tensor t = tensor_from_bytes(queue_.front());
    queue_.pop_front();
    return t;
}

QuantizingChannel::QuantizingChannel(WireDtype dtype) : dtype_(dtype)
{
    SHREDDER_REQUIRE(dtype != WireDtype::kF32,
                     "QuantizingChannel: use LoopbackChannel for fp32 "
                     "transport");
}

std::int64_t
QuantizingChannel::send(const Tensor& t)
{
    // The real wire codec: a SHRT v2 frame, byte-for-byte what
    // net::Client ships for a quantized endpoint.
    std::ostringstream oss(std::ios::binary);
    write_tensor_wire(oss, quantize(t, dtype_));
    std::string bytes = oss.str();
    const auto size = static_cast<std::int64_t>(bytes.size());
    SHREDDER_CHECK(size == serialized_wire_size(t.shape(), dtype_),
                   "QuantizingChannel: frame size disagrees with "
                   "serialized_wire_size");
    queue_.push_back(std::move(bytes));
    total_bytes_ += size;
    ++total_messages_;
    return size;
}

Tensor
QuantizingChannel::receive()
{
    SHREDDER_REQUIRE(!queue_.empty(), "receive() on empty channel");
    std::istringstream iss(queue_.front(), std::ios::binary);
    queue_.pop_front();
    // This channel is in-process (both ends are this object), so a
    // malformed frame means OUR state is broken — fatal, like the
    // loopback path's read_tensor.
    try {
        return dequantize(read_tensor_wire_checked(iss));
    } catch (const SerializeError& e) {
        SHREDDER_FATAL("QuantizingChannel: corrupt frame: ", e.what());
    }
}

}  // namespace split
}  // namespace shredder
