/**
 * @file
 * Implementation of the edge→cloud channels (wire format + accounting).
 */
#include "src/split/channel.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/runtime/logging.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace split {

std::int64_t
LoopbackChannel::send(const Tensor& t)
{
    std::string bytes = tensor_to_bytes(t);
    const auto size = static_cast<std::int64_t>(bytes.size());
    queue_.push_back(std::move(bytes));
    total_bytes_ += size;
    ++total_messages_;
    return size;
}

Tensor
LoopbackChannel::receive()
{
    SHREDDER_REQUIRE(!queue_.empty(), "receive() on empty channel");
    Tensor t = tensor_from_bytes(queue_.front());
    queue_.pop_front();
    return t;
}

std::int64_t
QuantizingChannel::send(const Tensor& t)
{
    // Wire format: u32 rank, u64 dims…, f32 min, f32 max, u8 payload.
    std::ostringstream oss(std::ios::binary);
    const auto rank = static_cast<std::uint32_t>(t.shape().rank());
    oss.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int i = 0; i < t.shape().rank(); ++i) {
        const auto d = static_cast<std::uint64_t>(t.shape()[i]);
        oss.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    const float lo = t.min();
    const float hi = t.max();
    oss.write(reinterpret_cast<const char*>(&lo), sizeof(lo));
    oss.write(reinterpret_cast<const char*>(&hi), sizeof(hi));
    const float scale = (hi > lo) ? 255.0f / (hi - lo) : 0.0f;
    for (std::int64_t i = 0; i < t.size(); ++i) {
        const float clamped = std::clamp(t[i], lo, hi);
        const auto q =
            static_cast<std::uint8_t>((clamped - lo) * scale + 0.5f);
        oss.write(reinterpret_cast<const char*>(&q), 1);
    }
    std::string bytes = oss.str();
    const auto size = static_cast<std::int64_t>(bytes.size());
    queue_.push_back(std::move(bytes));
    total_bytes_ += size;
    ++total_messages_;
    return size;
}

Tensor
QuantizingChannel::receive()
{
    SHREDDER_REQUIRE(!queue_.empty(), "receive() on empty channel");
    std::istringstream iss(queue_.front(), std::ios::binary);
    queue_.pop_front();

    std::uint32_t rank = 0;
    iss.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    SHREDDER_REQUIRE(iss.good() && rank <= 4, "corrupt quantized frame");
    std::int64_t dims[4] = {0, 0, 0, 0};
    std::int64_t numel = 1;
    for (std::uint32_t i = 0; i < rank; ++i) {
        std::uint64_t d = 0;
        iss.read(reinterpret_cast<char*>(&d), sizeof(d));
        dims[i] = static_cast<std::int64_t>(d);
        numel *= dims[i];
    }
    float lo = 0.0f, hi = 0.0f;
    iss.read(reinterpret_cast<char*>(&lo), sizeof(lo));
    iss.read(reinterpret_cast<char*>(&hi), sizeof(hi));
    const float step = (hi > lo) ? (hi - lo) / 255.0f : 0.0f;

    Shape shape;
    switch (rank) {
      case 1: shape = Shape({dims[0]}); break;
      case 2: shape = Shape({dims[0], dims[1]}); break;
      case 3: shape = Shape({dims[0], dims[1], dims[2]}); break;
      case 4: shape = Shape({dims[0], dims[1], dims[2], dims[3]}); break;
      default: SHREDDER_FATAL("bad rank in quantized frame");
    }
    Tensor t(shape);
    for (std::int64_t i = 0; i < numel; ++i) {
        std::uint8_t q = 0;
        iss.read(reinterpret_cast<char*>(&q), 1);
        t[i] = lo + static_cast<float>(q) * step;
    }
    SHREDDER_REQUIRE(static_cast<bool>(iss), "truncated quantized frame");
    return t;
}

}  // namespace split
}  // namespace shredder
