/**
 * @file
 * Implementation of the edge/cloud network partition (§2.1).
 */
#include "src/split/split_model.h"

#include "src/runtime/logging.h"

namespace shredder {
namespace split {

SplitModel::SplitModel(nn::Sequential& network, std::int64_t cut)
    : network_(network), cut_(cut)
{
    SHREDDER_REQUIRE(cut >= 0 && cut <= network.size(), "cut ", cut,
                     " out of range [0, ", network.size(), "]");
}

Tensor
SplitModel::edge_forward(const Tensor& x, nn::ExecutionContext& ctx,
                         nn::Mode mode) const
{
    return network_.forward_range(x, 0, cut_, ctx, mode);
}

Tensor
SplitModel::cloud_forward(const Tensor& activation,
                          nn::ExecutionContext& ctx, nn::Mode mode) const
{
    return network_.forward_range(activation, cut_, network_.size(), ctx,
                                  mode);
}

Tensor
SplitModel::cloud_backward(const Tensor& grad_logits,
                           nn::ExecutionContext& ctx)
{
    return network_.backward_range(grad_logits, cut_, network_.size(), ctx);
}

Shape
SplitModel::batched(const Shape& input_chw)
{
    if (input_chw.rank() == 3) {
        return Shape({1, input_chw[0], input_chw[1], input_chw[2]});
    }
    return input_chw;
}

Shape
SplitModel::activation_shape(const Shape& input_chw) const
{
    return network_.output_shape_range(batched(input_chw), 0, cut_);
}

std::int64_t
SplitModel::edge_macs(const Shape& input_chw) const
{
    return network_.macs_range(batched(input_chw), 0, cut_);
}

std::int64_t
SplitModel::cloud_macs(const Shape& input_chw) const
{
    const Shape at_cut =
        network_.output_shape_range(batched(input_chw), 0, cut_);
    return network_.macs_range(at_cut, cut_, network_.size());
}

std::vector<std::int64_t>
conv_cut_points(const nn::Sequential& network)
{
    std::vector<std::int64_t> cuts;
    for (std::int64_t i = 0; i < network.size(); ++i) {
        if (network.layer(i).kind() != "conv2d") {
            continue;
        }
        // Include the activation function (and nothing else) that
        // directly follows the convolution: the transmitted tensor is
        // the post-activation feature map.
        std::int64_t cut = i + 1;
        if (cut < network.size()) {
            const auto& next = network.layer(cut).kind();
            if (next == "relu" || next == "tanh") {
                ++cut;
            }
        }
        cuts.push_back(cut);
    }
    return cuts;
}

}  // namespace split
}  // namespace shredder
