/**
 * @file
 * Implementation of the cutting-point cost model (§3.4).
 */
#include "src/split/cost_model.h"

#include <sstream>

#include "src/runtime/logging.h"
#include "src/split/split_model.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace split {

std::string
CutCost::to_string() const
{
    std::ostringstream oss;
    oss << "cut=" << cut << " edge_macs=" << edge_macs
        << " cloud_macs=" << cloud_macs << " comm_bytes=" << comm_bytes
        << " cost=" << kilomac_mb << " KMAC*MB";
    return oss.str();
}

CostModel::CostModel(const nn::Sequential& network, const Shape& input_chw,
                     WireDtype wire_dtype)
    : network_(network), input_(input_chw), wire_dtype_(wire_dtype)
{
    SHREDDER_REQUIRE(input_chw.rank() == 3,
                     "CostModel wants a CHW input shape, got ",
                     input_chw.to_string());
}

CutCost
CostModel::evaluate(std::int64_t cut) const
{
    const Shape batched({1, input_[0], input_[1], input_[2]});
    CutCost cost;
    cost.cut = cut;
    cost.edge_macs = network_.macs_range(batched, 0, cut);
    const Shape act = network_.output_shape_range(batched, 0, cut);
    cost.cloud_macs = network_.macs_range(act, cut, network_.size());
    // The codec's own size formula: activation payload in the model's
    // transport dtype plus the SHRT framing header.
    cost.comm_bytes = serialized_wire_size(act, wire_dtype_);
    cost.kilomac_mb = (static_cast<double>(cost.edge_macs) / 1e3) *
                      (static_cast<double>(cost.comm_bytes) / 1e6);
    return cost;
}

std::vector<CutCost>
CostModel::evaluate_all(const std::vector<std::int64_t>& cuts) const
{
    std::vector<CutCost> out;
    out.reserve(cuts.size());
    for (std::int64_t c : cuts) {
        out.push_back(evaluate(c));
    }
    return out;
}

std::int64_t
CostModel::best_cut(const std::vector<std::int64_t>& cuts,
                    double prefer_privacy_margin) const
{
    SHREDDER_REQUIRE(!cuts.empty(), "best_cut needs candidates");
    const auto costs = evaluate_all(cuts);
    double cheapest = costs.front().kilomac_mb;
    for (const auto& c : costs) {
        cheapest = std::min(cheapest, c.kilomac_mb);
    }
    // Deeper layers are later in `cuts`; privacy increases with depth
    // (paper §3.3), so scan from the deepest and take the first whose
    // cost is within the margin of the cheapest.
    for (auto it = costs.rbegin(); it != costs.rend(); ++it) {
        if (it->kilomac_mb <= cheapest * (1.0 + prefer_privacy_margin)) {
            return it->cut;
        }
    }
    return costs.back().cut;
}

}  // namespace split
}  // namespace shredder
