/**
 * @file
 * Communication channel between the edge and the cloud.
 *
 * A real Shredder deployment serializes the noisy activation and ships
 * it over a network; these channels reproduce that data path
 * faithfully (serialize → byte buffer → deserialize) while counting
 * traffic, so examples and benches measure real wire sizes. The
 * quantizing channel additionally models the 8-bit compression an
 * edge deployment would use.
 */
#ifndef SHREDDER_SPLIT_CHANNEL_H
#define SHREDDER_SPLIT_CHANNEL_H

#include <cstdint>
#include <deque>
#include <string>

#include "src/tensor/tensor.h"

namespace shredder {
namespace split {

/** Abstract edge→cloud transport with traffic accounting. */
class Channel
{
  public:
    virtual ~Channel() = default;

    /** Transmit a tensor. Returns the bytes put on the wire. */
    virtual std::int64_t send(const Tensor& t) = 0;

    /** Receive the next transmitted tensor (FIFO). */
    virtual Tensor receive() = 0;

    /** True when a tensor is waiting. */
    virtual bool pending() const = 0;

    /** Total bytes transmitted so far. */
    std::int64_t total_bytes() const { return total_bytes_; }

    /** Number of messages transmitted so far. */
    std::int64_t total_messages() const { return total_messages_; }

  protected:
    std::int64_t total_bytes_ = 0;
    std::int64_t total_messages_ = 0;
};

/** In-memory lossless channel: serialize → buffer → deserialize. */
class LoopbackChannel final : public Channel
{
  public:
    std::int64_t send(const Tensor& t) override;
    Tensor receive() override;
    bool pending() const override { return !queue_.empty(); }

  private:
    std::deque<std::string> queue_;
};

/**
 * Lossy 8-bit linear-quantization channel: each tensor is transmitted
 * as min/max plus one byte per element — 4× smaller than float32 and
 * a realistic edge uplink format. Dequantization error is bounded by
 * (max−min)/255/2 per element.
 */
class QuantizingChannel final : public Channel
{
  public:
    std::int64_t send(const Tensor& t) override;
    Tensor receive() override;
    bool pending() const override { return !queue_.empty(); }

  private:
    std::deque<std::string> queue_;
};

}  // namespace split
}  // namespace shredder

#endif  // SHREDDER_SPLIT_CHANNEL_H
