/**
 * @file
 * Communication channel between the edge and the cloud.
 *
 * A real Shredder deployment serializes the noisy activation and ships
 * it over a network; these channels reproduce that data path
 * faithfully (serialize → byte buffer → deserialize) while counting
 * traffic, so examples and benches measure real wire sizes. The
 * quantizing channel runs the SAME SHRT v2 codec the TCP path ships
 * (src/tensor/quantize.h + serialize.h), so its byte counts are the
 * bytes a deployment would put on the wire — not a simulation.
 */
#ifndef SHREDDER_SPLIT_CHANNEL_H
#define SHREDDER_SPLIT_CHANNEL_H

#include <cstdint>
#include <deque>
#include <string>

#include "src/tensor/quantize.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace split {

/** Abstract edge→cloud transport with traffic accounting. */
class Channel
{
  public:
    virtual ~Channel() = default;

    /** Transmit a tensor. Returns the bytes put on the wire. */
    virtual std::int64_t send(const Tensor& t) = 0;

    /** Receive the next transmitted tensor (FIFO). */
    virtual Tensor receive() = 0;

    /** True when a tensor is waiting. */
    virtual bool pending() const = 0;

    /** Total bytes transmitted so far. */
    std::int64_t total_bytes() const { return total_bytes_; }

    /** Number of messages transmitted so far. */
    std::int64_t total_messages() const { return total_messages_; }

  protected:
    std::int64_t total_bytes_ = 0;
    std::int64_t total_messages_ = 0;
};

/** In-memory lossless channel: serialize → buffer → deserialize. */
class LoopbackChannel final : public Channel
{
  public:
    std::int64_t send(const Tensor& t) override;
    Tensor receive() override;
    bool pending() const override { return !queue_.empty(); }

  private:
    std::deque<std::string> queue_;
};

/**
 * Lossy quantizing channel: each tensor crosses as a SHRT v2 frame
 * (per-tensor affine scale/zero-point + one `dtype` integer per
 * element) — the exact bytes `net::Client` ships for a
 * `wire_dtype=int8` endpoint, so accuracy and byte counts measured
 * through this channel are the deployment's. Dequantization error is
 * bounded by scale/2 = (max−min)/(2·(qmax−qmin)) per element; an
 * all-equal tensor survives exactly.
 */
class QuantizingChannel final : public Channel
{
  public:
    explicit QuantizingChannel(WireDtype dtype = WireDtype::kI8);

    std::int64_t send(const Tensor& t) override;
    Tensor receive() override;
    bool pending() const override { return !queue_.empty(); }

    /** The transport encoding this channel applies. */
    WireDtype dtype() const { return dtype_; }

  private:
    WireDtype dtype_;
    std::deque<std::string> queue_;
};

}  // namespace split
}  // namespace shredder

#endif  // SHREDDER_SPLIT_CHANNEL_H
