/**
 * @file
 * Edge/cloud partition of a sequential network (paper §2.1).
 *
 * A `SplitModel` borrows a pre-trained `Sequential` and a cut index c:
 * the *local* network L = layers [0, c) runs on the edge and produces
 * the activation `a`; the *remote* network R = layers [c, K) runs on
 * the cloud on the (noisy) activation. Backward through R only — L is
 * never differentiated, exactly as in the paper's gradient derivation.
 *
 * Forwards are `const` and thread per-call activation state through an
 * `nn::ExecutionContext`, so one `SplitModel` (one set of weights)
 * serves any number of concurrent callers — each caller brings its own
 * context. This is what lets `runtime::InferenceServer` keep several
 * cloud forwards in flight without replicating the model.
 */
#ifndef SHREDDER_SPLIT_SPLIT_MODEL_H
#define SHREDDER_SPLIT_SPLIT_MODEL_H

#include <cstdint>
#include <vector>

#include "src/nn/sequential.h"

namespace shredder {
namespace split {

/** Edge/cloud view of a sequential network. */
class SplitModel
{
  public:
    /**
     * @param network  Borrowed network (must outlive this object).
     * @param cut      Layer index of the cut: edge = [0, cut),
     *                 cloud = [cut, size).
     */
    SplitModel(nn::Sequential& network, std::int64_t cut);

    /** The cut index. */
    std::int64_t cut() const { return cut_; }

    /** Number of layers in the underlying network. */
    std::int64_t depth() const { return network_.size(); }

    /** Borrow the underlying network. */
    nn::Sequential& network() { return network_; }

    /** Run the local network L(x): edge-side forward. */
    Tensor edge_forward(const Tensor& x, nn::ExecutionContext& ctx,
                        nn::Mode mode = nn::Mode::kEval) const;

    /** Run the remote network R(a′): cloud-side forward. */
    Tensor cloud_forward(const Tensor& activation, nn::ExecutionContext& ctx,
                         nn::Mode mode = nn::Mode::kEval) const;

    /**
     * Back-propagate through the cloud part only, using the caches a
     * preceding `cloud_forward` left in `ctx`. Returns
     * ∂loss/∂activation — the gradient Shredder uses to train the
     * noise tensor (∂(a+n)/∂n = 1).
     */
    Tensor cloud_backward(const Tensor& grad_logits,
                          nn::ExecutionContext& ctx);

    /** Shape of the activation tensor at the cut for a CHW input. */
    Shape activation_shape(const Shape& input_chw) const;

    /** Per-sample MACs executed on the edge. */
    std::int64_t edge_macs(const Shape& input_chw) const;

    /** Per-sample MACs executed on the cloud. */
    std::int64_t cloud_macs(const Shape& input_chw) const;

  private:
    /** Promote CHW to N=1 NCHW if needed. */
    static Shape batched(const Shape& input_chw);

    nn::Sequential& network_;
    std::int64_t cut_;
};

/**
 * Valid cutting points of a network, defined as "after each
 * convolution layer" the way the paper enumerates them (Conv0, Conv1,
 * …). Returned indices are layer indices suitable for `SplitModel`'s
 * `cut` (i.e. one past the convolution's activation function when the
 * conv is immediately followed by one, so the communicated tensor is
 * the post-activation feature map).
 */
std::vector<std::int64_t> conv_cut_points(const nn::Sequential& network);

}  // namespace split
}  // namespace shredder

#endif  // SHREDDER_SPLIT_SPLIT_MODEL_H
