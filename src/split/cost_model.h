/**
 * @file
 * Edge-device cost model for cutting-point selection (paper §3.4).
 *
 * Computation is the cumulative per-sample MAC count of the edge-side
 * layers; communication is the serialized byte size of the activation
 * tensor sent to the cloud — computed with the SAME
 * `serialized_wire_size` formula the codec uses, under a configurable
 * transport dtype, so the model's bytes are the bytes a deployment
 * ships. The paper's total cost figure of merit is their product,
 * reported in KiloMAC × MB.
 */
#ifndef SHREDDER_SPLIT_COST_MODEL_H
#define SHREDDER_SPLIT_COST_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/sequential.h"
#include "src/tensor/quantize.h"

namespace shredder {
namespace split {

/** Cost breakdown for one cutting point. */
struct CutCost
{
    std::int64_t cut = 0;           ///< Layer index of the cut.
    std::int64_t edge_macs = 0;     ///< Per-sample MACs on the edge.
    std::int64_t cloud_macs = 0;    ///< Per-sample MACs on the cloud.
    std::int64_t comm_bytes = 0;    ///< Serialized activation bytes.
    double kilomac_mb = 0.0;        ///< edge KMAC × comm MB (paper FoM).

    std::string to_string() const;
};

/** Computation × communication cost model over a network. */
class CostModel
{
  public:
    /**
     * @param network    Borrowed network (outlives the model).
     * @param input_chw  CHW shape of one input sample.
     * @param wire_dtype Transport encoding for `comm_bytes` (int8
     *                   shrinks communication ~4× and shifts the best
     *                   cut toward shallower layers).
     */
    CostModel(const nn::Sequential& network, const Shape& input_chw,
              WireDtype wire_dtype = WireDtype::kF32);

    /** The transport encoding `comm_bytes` is computed under. */
    WireDtype wire_dtype() const { return wire_dtype_; }

    /** Cost report for one cutting point. */
    CutCost evaluate(std::int64_t cut) const;

    /** Cost reports for a set of cutting points. */
    std::vector<CutCost> evaluate_all(
        const std::vector<std::int64_t>& cuts) const;

    /**
     * The cut among `cuts` with the smallest kilomac_mb product — the
     * rule the paper applies to SVHN (Conv6); `prefer_privacy_margin`
     * replicates the LeNet judgment call (§3.4): if a deeper cut costs
     * at most `margin` (relative) more than the cheapest, pick the
     * deeper (more private) one.
     */
    std::int64_t best_cut(const std::vector<std::int64_t>& cuts,
                          double prefer_privacy_margin = 0.0) const;

  private:
    const nn::Sequential& network_;
    Shape input_;
    WireDtype wire_dtype_;
};

}  // namespace split
}  // namespace shredder

#endif  // SHREDDER_SPLIT_COST_MODEL_H
