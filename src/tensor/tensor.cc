/**
 * @file
 * Implementation of the dense float32 `Tensor`.
 */
#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/runtime/logging.h"

namespace shredder {

Tensor::Tensor(const Shape& shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), 0.0f)
{
    SHREDDER_REQUIRE(shape.rank() == 0 || shape.valid(),
                     "invalid tensor shape ", shape.to_string());
}

Tensor::Tensor(const Shape& shape, float value)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), value)
{
    SHREDDER_REQUIRE(shape.rank() == 0 || shape.valid(),
                     "invalid tensor shape ", shape.to_string());
}

Tensor::Tensor(const Shape& shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data))
{
    SHREDDER_REQUIRE(static_cast<std::int64_t>(data_.size()) == shape.numel(),
                     "data size ", data_.size(), " != shape numel ",
                     shape.numel());
}

Tensor
Tensor::uniform(const Shape& shape, Rng& rng, float lo, float hi)
{
    Tensor t(shape);
    for (auto& v : t.data_) {
        v = rng.uniform(lo, hi);
    }
    return t;
}

Tensor
Tensor::normal(const Shape& shape, Rng& rng, float mean, float stddev)
{
    Tensor t(shape);
    for (auto& v : t.data_) {
        v = rng.normal(mean, stddev);
    }
    return t;
}

Tensor
Tensor::laplace(const Shape& shape, Rng& rng, float location, float scale)
{
    Tensor t(shape);
    for (auto& v : t.data_) {
        v = rng.laplace(location, scale);
    }
    return t;
}

Tensor
Tensor::from_vector(std::vector<float> values)
{
    const auto n = static_cast<std::int64_t>(values.size());
    return Tensor(Shape({n}), std::move(values));
}

float&
Tensor::at(std::int64_t i)
{
    SHREDDER_CHECK(i >= 0 && i < size(), "flat index ", i, " out of ",
                   size());
    return data_[static_cast<std::size_t>(i)];
}

float
Tensor::at(std::int64_t i) const
{
    SHREDDER_CHECK(i >= 0 && i < size(), "flat index ", i, " out of ",
                   size());
    return data_[static_cast<std::size_t>(i)];
}

float&
Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w)
{
    SHREDDER_CHECK(shape_.rank() == 4, "at4 on rank-", shape_.rank(),
                   " tensor");
    const std::int64_t C = shape_[1], H = shape_[2], W = shape_[3];
    return at(((n * C + c) * H + h) * W + w);
}

float
Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const
{
    SHREDDER_CHECK(shape_.rank() == 4, "at4 on rank-", shape_.rank(),
                   " tensor");
    const std::int64_t C = shape_[1], H = shape_[2], W = shape_[3];
    return at(((n * C + c) * H + h) * W + w);
}

float&
Tensor::at2(std::int64_t r, std::int64_t c)
{
    SHREDDER_CHECK(shape_.rank() == 2, "at2 on rank-", shape_.rank(),
                   " tensor");
    return at(r * shape_[1] + c);
}

float
Tensor::at2(std::int64_t r, std::int64_t c) const
{
    SHREDDER_CHECK(shape_.rank() == 2, "at2 on rank-", shape_.rank(),
                   " tensor");
    return at(r * shape_[1] + c);
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Tensor
Tensor::reshaped(const Shape& new_shape) const
{
    SHREDDER_REQUIRE(new_shape.numel() == size(), "reshape ",
                     shape_.to_string(), " -> ", new_shape.to_string(),
                     " changes element count");
    Tensor t = *this;
    t.shape_ = new_shape;
    return t;
}

void
Tensor::reshape_inplace(const Shape& new_shape)
{
    SHREDDER_REQUIRE(new_shape.numel() == size(), "reshape ",
                     shape_.to_string(), " -> ", new_shape.to_string(),
                     " changes element count");
    shape_ = new_shape;
}

Tensor
Tensor::slice0(std::int64_t n) const
{
    SHREDDER_CHECK(shape_.rank() >= 1, "slice0 on scalar");
    SHREDDER_CHECK(n >= 0 && n < shape_[0], "slice ", n, " out of ",
                   shape_[0]);
    const std::int64_t stride = size() / shape_[0];
    Shape sub_shape;
    switch (shape_.rank()) {
      case 1: sub_shape = Shape({1}); break;
      case 2: sub_shape = Shape({shape_[1]}); break;
      case 3: sub_shape = Shape({shape_[1], shape_[2]}); break;
      case 4: sub_shape = Shape({shape_[1], shape_[2], shape_[3]}); break;
      default: SHREDDER_PANIC("unsupported rank");
    }
    std::vector<float> out(data_.begin() + n * stride,
                           data_.begin() + (n + 1) * stride);
    return Tensor(sub_shape, std::move(out));
}

void
Tensor::set_slice0(std::int64_t n, const Tensor& src)
{
    SHREDDER_CHECK(shape_.rank() >= 1, "set_slice0 on scalar");
    SHREDDER_CHECK(n >= 0 && n < shape_[0], "slice ", n, " out of ",
                   shape_[0]);
    const std::int64_t stride = size() / shape_[0];
    SHREDDER_CHECK(src.size() == stride, "slice size mismatch: ",
                   src.size(), " vs ", stride);
    std::copy(src.data_.begin(), src.data_.end(),
              data_.begin() + n * stride);
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float v : data_) {
        s += v;
    }
    return s;
}

double
Tensor::mean() const
{
    return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

double
Tensor::mean_square() const
{
    if (data_.empty()) {
        return 0.0;
    }
    double s = 0.0;
    for (float v : data_) {
        s += static_cast<double>(v) * v;
    }
    return s / static_cast<double>(data_.size());
}

double
Tensor::variance() const
{
    const double m = mean();
    return mean_square() - m * m;
}

float
Tensor::min() const
{
    SHREDDER_CHECK(!data_.empty(), "min of empty tensor");
    return *std::min_element(data_.begin(), data_.end());
}

float
Tensor::max() const
{
    SHREDDER_CHECK(!data_.empty(), "max of empty tensor");
    return *std::max_element(data_.begin(), data_.end());
}

std::int64_t
Tensor::argmax() const
{
    SHREDDER_CHECK(!data_.empty(), "argmax of empty tensor");
    return static_cast<std::int64_t>(
        std::max_element(data_.begin(), data_.end()) - data_.begin());
}

double
Tensor::norm() const
{
    return std::sqrt(mean_square() * static_cast<double>(data_.size()));
}

double
Tensor::abs_sum() const
{
    double s = 0.0;
    for (float v : data_) {
        s += std::abs(static_cast<double>(v));
    }
    return s;
}

bool
Tensor::has_nonfinite() const
{
    for (float v : data_) {
        if (!std::isfinite(v)) {
            return true;
        }
    }
    return false;
}

std::string
Tensor::to_string() const
{
    std::ostringstream oss;
    oss << "Tensor" << shape_.to_string() << " (" << size() << " elems)";
    return oss.str();
}

}  // namespace shredder
