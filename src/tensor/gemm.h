/**
 * @file
 * Single-precision general matrix multiply.
 *
 * One routine, BLAS-style. The implementation is a packed,
 * register-tiled kernel (GotoBLAS/BLIS loop nest): operands are packed
 * into cache-resident micro-panels through explicit strides — so the
 * four transpose combinations share one kernel without materializing
 * transposed copies — and an MR×NR micro-kernel accumulates in
 * registers. Large-m calls split row panels across the global
 * `ThreadPool`; skinny/small problems take a strided fallback. See
 * docs/PERFORMANCE.md for blocking parameters and measured throughput.
 */
#ifndef SHREDDER_TENSOR_GEMM_H
#define SHREDDER_TENSOR_GEMM_H

#include <cstdint>
#include <vector>

namespace shredder {

/**
 * C = alpha * op(A) · op(B) + beta * C
 *
 * where op(X) is X or Xᵀ. All matrices are dense row-major.
 *
 * @param trans_a  Use Aᵀ instead of A.
 * @param trans_b  Use Bᵀ instead of B.
 * @param m        Rows of op(A) and C.
 * @param n        Columns of op(B) and C.
 * @param k        Inner dimension.
 * @param alpha    Scale on the product.
 * @param a        A data, row-major, logical shape m×k (or k×m if
 *                 trans_a).
 * @param b        B data, row-major, logical shape k×n (or n×k if
 *                 trans_b).
 * @param beta     Scale on the existing C contents (0 overwrites).
 * @param c        C data, row-major m×n. Must not alias a or b.
 */
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

/**
 * Maximum inner dimension `k` accepted by `gemm_s8`. Derived from the
 * int32 accumulator: packed activations are clamped to ±2047 and
 * weights span ±128, so k·2047·128 must stay below 2³¹.
 */
constexpr std::int64_t kS8MaxK = 8192;

/**
 * Symmetric per-tensor int8 image of a weight matrix, plus the
 * per-output-channel column sums the dequant epilogue needs.
 * Prepared once at endpoint construction, reused every batch.
 */
struct S8Weights
{
    /** n×k row-major int8 weights (same layout as the fp32 source). */
    std::vector<std::int8_t> data;
    /** Symmetric scale: w ≈ scale · q (zero point 0). */
    float scale = 1.0f;
    /** colsum[j] = Σ_p q[j][p] — the zero-point correction term. */
    std::vector<std::int32_t> colsum;
};

/**
 * Quantize an n×k row-major fp32 weight matrix (`nn::Linear`'s native
 * [out, in] layout) to symmetric per-tensor int8.
 */
S8Weights prepare_s8_weights(const float* w, std::int64_t n,
                             std::int64_t k);

/**
 * Quantized-activation × int8-weight GEMM with the dequant fused into
 * the fp32 epilogue and the noise policy's additive noise fused into
 * the packing pass:
 *
 *   C[i][j] = a_scale[i] · b_scale · (Σ_p â[i][p]·b[j][p]
 *             − a_zp[i] · b_colsum[j]) + (bias ? bias[j] : 0)
 *
 * where â[i][p] = clamp(a[i][p] + round(noise[i][p] / a_scale[i]),
 * ±2047) — the packing pass sign-extends each int8 activation to
 * int16 and adds the noise in the quantized domain, so the first
 * cloud layer consumes wire bytes directly (no dequantized fp32
 * activation is ever materialized). The int16 clamp bounds the int32
 * accumulator for k ≤ kS8MaxK (checked).
 *
 * Rows of A may come from different requests with different affine
 * codes, hence the per-row pointer/scale/zero-point arrays.
 *
 * @param m         Batch rows.
 * @param n         Output features (rows of `b`).
 * @param k         Inner dimension (must be ≤ kS8MaxK).
 * @param a_rows    m pointers to int8 activation rows of length k.
 * @param a_scale   Per-row affine scale.
 * @param a_zp      Per-row affine zero point.
 * @param a_noise   Per-row fp32 additive-noise pointers (the array or
 *                  individual entries may be null for "no noise").
 * @param b         n×k row-major int8 weights (S8Weights::data).
 * @param b_scale   Symmetric weight scale.
 * @param b_colsum  Per-output-channel weight column sums.
 * @param bias      Optional fp32 bias of length n (null for none).
 * @param c         Output, row-major m×n fp32 (overwritten).
 *
 * An AVX2 `madd`-based dot kernel is selected at runtime (same
 * dispatch discipline as the fp32 path); the portable fallback
 * computes identical values, so results are platform-independent.
 */
void gemm_s8(std::int64_t m, std::int64_t n, std::int64_t k,
             const std::int8_t* const* a_rows, const float* a_scale,
             const std::int32_t* a_zp, const float* const* a_noise,
             const std::int8_t* b, float b_scale,
             const std::int32_t* b_colsum, const float* bias, float* c);

/**
 * fp32 twin of `gemm_s8`'s fused-noise shape: per-request activation
 * rows times an n×k row-major weight matrix (`nn::Linear`'s native
 * [out, in] layout), with the noise policy's additive noise added
 * inside the A-panel packing pass:
 *
 *   C[i][j] = Σ_p (a_rows[i][p] + noise[i][p]) · b[j][p]
 *             + (bias ? bias[j] : 0)
 *
 * Packing touches every activation element anyway, so the add is free
 * bandwidth — no fused m×k activation tensor is ever materialized.
 *
 * Bit-exactness contract (pinned by tests/test_gemm.cc): the result is
 * bit-identical to materializing `fused = a + noise` row by row and
 * running `gemm(false, true, m, n, k, 1, fused, b, 0, c)` followed by
 * `Linear`'s bias loop. The fused add performs the same single fp32
 * addition per element the materialization would, before any
 * accumulation, and both the packing loops and the small-problem
 * fallback mirror `gemm()`'s structures exactly — including the
 * strided fallback's double accumulator and the small/blocked
 * path-selection condition.
 *
 * @param m        Batch rows.
 * @param n        Output features (rows of `b`).
 * @param k        Inner dimension.
 * @param a_rows   m pointers to fp32 activation rows of length k.
 * @param a_noise  Per-row fp32 additive-noise pointers (the array or
 *                 individual entries may be null for "no noise").
 * @param b        n×k row-major fp32 weights.
 * @param bias     Optional fp32 bias of length n (null for none).
 * @param c        Output, row-major m×n fp32 (overwritten).
 */
void gemm_rows_fused(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* const* a_rows,
                     const float* const* a_noise, const float* b,
                     const float* bias, float* c);

}  // namespace shredder

#endif  // SHREDDER_TENSOR_GEMM_H
