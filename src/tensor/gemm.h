/**
 * @file
 * Single-precision general matrix multiply.
 *
 * One routine, BLAS-style. The implementation is a packed,
 * register-tiled kernel (GotoBLAS/BLIS loop nest): operands are packed
 * into cache-resident micro-panels through explicit strides — so the
 * four transpose combinations share one kernel without materializing
 * transposed copies — and an MR×NR micro-kernel accumulates in
 * registers. Large-m calls split row panels across the global
 * `ThreadPool`; skinny/small problems take a strided fallback. See
 * docs/PERFORMANCE.md for blocking parameters and measured throughput.
 */
#ifndef SHREDDER_TENSOR_GEMM_H
#define SHREDDER_TENSOR_GEMM_H

#include <cstdint>

namespace shredder {

/**
 * C = alpha * op(A) · op(B) + beta * C
 *
 * where op(X) is X or Xᵀ. All matrices are dense row-major.
 *
 * @param trans_a  Use Aᵀ instead of A.
 * @param trans_b  Use Bᵀ instead of B.
 * @param m        Rows of op(A) and C.
 * @param n        Columns of op(B) and C.
 * @param k        Inner dimension.
 * @param alpha    Scale on the product.
 * @param a        A data, row-major, logical shape m×k (or k×m if
 *                 trans_a).
 * @param b        B data, row-major, logical shape k×n (or n×k if
 *                 trans_b).
 * @param beta     Scale on the existing C contents (0 overwrites).
 * @param c        C data, row-major m×n. Must not alias a or b.
 */
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

}  // namespace shredder

#endif  // SHREDDER_TENSOR_GEMM_H
