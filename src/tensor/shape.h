/**
 * @file
 * Fixed-capacity tensor shape (rank ≤ 4, NCHW convention).
 */
#ifndef SHREDDER_TENSOR_SHAPE_H
#define SHREDDER_TENSOR_SHAPE_H

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace shredder {

/**
 * The extents of a tensor. Rank 0 (scalar) through 4 (NCHW image batch).
 *
 * Value type; cheap to copy. Dimensions are signed 64-bit so that size
 * arithmetic never overflows for realistic tensors.
 */
class Shape
{
  public:
    /** Maximum supported rank. */
    static constexpr int kMaxRank = 4;

    /** Scalar (rank-0) shape. */
    Shape() = default;

    /** Build from an explicit dimension list, e.g. `Shape({n, c, h, w})`. */
    Shape(std::initializer_list<std::int64_t> dims);

    /** Rank (number of dimensions). */
    int rank() const { return rank_; }

    /** Extent of dimension `i` (0-based; must be < rank()). */
    std::int64_t operator[](int i) const;

    /** Total number of elements (product of extents; 1 for scalars). */
    std::int64_t numel() const;

    /** True when every extent is strictly positive. */
    bool valid() const;

    bool operator==(const Shape& other) const;
    bool operator!=(const Shape& other) const { return !(*this == other); }

    /** Human-readable form, e.g. "[32, 3, 28, 28]". */
    std::string to_string() const;

    /**
     * Shape with one dimension replaced.
     *
     * @param i        Dimension index to replace.
     * @param extent   New extent.
     */
    Shape with_dim(int i, std::int64_t extent) const;

  private:
    std::array<std::int64_t, kMaxRank> dims_{{0, 0, 0, 0}};
    int rank_ = 0;
};

}  // namespace shredder

#endif  // SHREDDER_TENSOR_SHAPE_H
