/**
 * @file
 * Per-tensor affine quantize/dequantize implementation.
 */
#include "src/tensor/quantize.h"

#include <cmath>
#include <cstring>

#include "src/runtime/logging.h"

namespace shredder {

const char*
to_string(WireDtype dtype)
{
    switch (dtype) {
      case WireDtype::kF32: return "fp32";
      case WireDtype::kI8: return "int8";
      case WireDtype::kI16: return "int16";
    }
    return "?";
}

bool
parse_wire_dtype(const std::string& text, WireDtype* out)
{
    if (text == "fp32" || text == "f32" || text == "float32") {
        *out = WireDtype::kF32;
        return true;
    }
    if (text == "int8" || text == "i8") {
        *out = WireDtype::kI8;
        return true;
    }
    if (text == "int16" || text == "i16") {
        *out = WireDtype::kI16;
        return true;
    }
    return false;
}

std::int64_t
dtype_bytes(WireDtype dtype)
{
    switch (dtype) {
      case WireDtype::kF32: return 4;
      case WireDtype::kI8: return 1;
      case WireDtype::kI16: return 2;
    }
    SHREDDER_FATAL("bad WireDtype ", static_cast<int>(dtype));
}

std::int32_t
dtype_qmin(WireDtype dtype)
{
    return dtype == WireDtype::kI16 ? -32768 : -128;
}

std::int32_t
dtype_qmax(WireDtype dtype)
{
    return dtype == WireDtype::kI16 ? 32767 : 127;
}

QuantParams
choose_quant_params(float lo, float hi, WireDtype dtype)
{
    if (dtype == WireDtype::kF32) {
        return {1.0f, 0};
    }
    if (!std::isfinite(lo)) {
        lo = 0.0f;
    }
    if (!std::isfinite(hi)) {
        hi = 0.0f;
    }
    if (hi < lo) {
        hi = lo;
    }
    const double qmin = dtype_qmin(dtype);
    const double qmax = dtype_qmax(dtype);
    const double range = static_cast<double>(hi) - static_cast<double>(lo);
    QuantParams params;
    if (range <= 0.0) {
        // Degenerate all-equal tensor: pick the scale that puts the
        // value exactly on the grid (at qmax for positives, qmin for
        // negatives), so constants survive the round trip bit-near.
        if (lo == 0.0f) {
            return {1.0f, 0};
        }
        params.scale = lo > 0.0f
                           ? static_cast<float>(lo / qmax)
                           : static_cast<float>(lo / qmin);
        params.zero_point = 0;
        return params;
    }
    params.scale = static_cast<float>(range / (qmax - qmin));
    const double zp = qmin - static_cast<double>(lo) / params.scale;
    const double rounded = std::round(zp);
    params.zero_point = static_cast<std::int32_t>(
        rounded < qmin ? qmin : (rounded > qmax ? qmax : rounded));
    return params;
}

namespace {

/** One element through the affine code; NaN → zp, ±inf saturates. */
inline std::int32_t
quantize_value(float x, float scale, std::int32_t zp, std::int32_t qmin,
               std::int32_t qmax)
{
    if (std::isnan(x)) {
        return zp;
    }
    const double r =
        std::round(static_cast<double>(x) / static_cast<double>(scale)) +
        static_cast<double>(zp);
    if (r <= static_cast<double>(qmin)) {
        return qmin;
    }
    if (r >= static_cast<double>(qmax)) {
        return qmax;
    }
    return static_cast<std::int32_t>(r);
}

/** Finite min/max of `t` (false when no element is finite). */
bool
finite_range(const Tensor& t, float* lo, float* hi)
{
    bool any = false;
    float mn = 0.0f;
    float mx = 0.0f;
    const float* p = t.data();
    for (std::int64_t i = 0; i < t.size(); ++i) {
        if (!std::isfinite(p[i])) {
            continue;
        }
        if (!any) {
            mn = mx = p[i];
            any = true;
        } else {
            mn = p[i] < mn ? p[i] : mn;
            mx = p[i] > mx ? p[i] : mx;
        }
    }
    *lo = mn;
    *hi = mx;
    return any;
}

}  // namespace

QuantizedTensor
quantize(const Tensor& t, WireDtype dtype)
{
    QuantizedTensor q;
    q.shape = t.shape();
    q.dtype = dtype;
    const std::int64_t n = t.size();
    if (dtype == WireDtype::kF32) {
        q.data.resize(static_cast<std::size_t>(n) * sizeof(float));
        std::memcpy(q.data.data(), t.data(),
                    static_cast<std::size_t>(n) * sizeof(float));
        return q;
    }
    float lo = 0.0f;
    float hi = 0.0f;
    finite_range(t, &lo, &hi);
    const QuantParams params = choose_quant_params(lo, hi, dtype);
    q.scale = params.scale;
    q.zero_point = params.zero_point;
    const std::int32_t qmin = dtype_qmin(dtype);
    const std::int32_t qmax = dtype_qmax(dtype);
    const float* src = t.data();
    if (dtype == WireDtype::kI8) {
        q.data.resize(static_cast<std::size_t>(n));
        auto* dst = reinterpret_cast<std::int8_t*>(q.data.data());
        for (std::int64_t i = 0; i < n; ++i) {
            dst[i] = static_cast<std::int8_t>(quantize_value(
                src[i], q.scale, q.zero_point, qmin, qmax));
        }
    } else {
        q.data.resize(static_cast<std::size_t>(n) * 2);
        auto* dst = reinterpret_cast<std::int16_t*>(q.data.data());
        for (std::int64_t i = 0; i < n; ++i) {
            dst[i] = static_cast<std::int16_t>(quantize_value(
                src[i], q.scale, q.zero_point, qmin, qmax));
        }
    }
    return q;
}

Tensor
dequantize(const QuantizedTensor& q)
{
    const std::int64_t n = q.size();
    SHREDDER_CHECK(static_cast<std::int64_t>(q.data.size()) ==
                       n * dtype_bytes(q.dtype),
                   "quantized payload size mismatch: ", q.data.size(),
                   " bytes for ", n, " elements of ", to_string(q.dtype));
    std::vector<float> out(static_cast<std::size_t>(n));
    switch (q.dtype) {
      case WireDtype::kF32:
        std::memcpy(out.data(), q.data.data(),
                    static_cast<std::size_t>(n) * sizeof(float));
        break;
      case WireDtype::kI8: {
          const std::int8_t* src = q.i8();
          for (std::int64_t i = 0; i < n; ++i) {
              out[static_cast<std::size_t>(i)] =
                  q.scale * static_cast<float>(src[i] - q.zero_point);
          }
          break;
      }
      case WireDtype::kI16: {
          const std::int16_t* src = q.i16();
          for (std::int64_t i = 0; i < n; ++i) {
              out[static_cast<std::size_t>(i)] =
                  q.scale * static_cast<float>(src[i] - q.zero_point);
          }
          break;
      }
    }
    return Tensor(q.shape, std::move(out));
}

}  // namespace shredder
