/**
 * @file
 * Implementation of the thread-local scratch arena.
 */
#include "src/tensor/scratch.h"

#include <new>

namespace shredder {

namespace {

constexpr std::size_t kAlignment = 64;  // one cache line

}  // namespace

ScratchLease::ScratchLease(ScratchLease&& other) noexcept
    : arena_(other.arena_), data_(other.data_), count_(other.count_)
{
    other.arena_ = nullptr;
    other.data_ = nullptr;
    other.count_ = 0;
}

ScratchLease::~ScratchLease()
{
    if (arena_ != nullptr) {
        arena_->release();
    }
}

void
ScratchArena::AlignedDelete::operator()(float* p) const
{
    // shredder-lint: allow(naked-new) — the aligned-allocation facility itself
    ::operator delete[](p, std::align_val_t{kAlignment});
}

ScratchLease
ScratchArena::acquire(std::size_t count)
{
    if (depth_ == slots_.size()) {
        slots_.emplace_back();
    }
    Slot& slot = slots_[depth_];
    if (slot.capacity < count) {
        // Geometric growth so alternating sizes don't reallocate.
        std::size_t cap = slot.capacity == 0 ? 1024 : slot.capacity;
        while (cap < count) {
            cap *= 2;
        }
        // shredder-lint: allow(naked-new) — the aligned-allocation facility itself
        slot.data.reset(static_cast<float*>(::operator new[](
            cap * sizeof(float), std::align_val_t{kAlignment})));
        slot.capacity = cap;
    }
    ++depth_;
    return ScratchLease(this, slot.data.get(), count);
}

std::size_t
ScratchArena::capacity_bytes() const
{
    std::size_t total = 0;
    for (const Slot& s : slots_) {
        total += s.capacity * sizeof(float);
    }
    return total;
}

ScratchArena&
ScratchArena::for_this_thread()
{
    thread_local ScratchArena arena;
    return arena;
}

}  // namespace shredder
