/**
 * @file
 * Implementation of the NCHW `Shape` value type.
 */
#include "src/tensor/shape.h"

#include <sstream>

#include "src/runtime/logging.h"

namespace shredder {

Shape::Shape(std::initializer_list<std::int64_t> dims)
{
    SHREDDER_REQUIRE(static_cast<int>(dims.size()) <= kMaxRank,
                     "shape rank ", dims.size(), " exceeds max ", kMaxRank);
    rank_ = static_cast<int>(dims.size());
    int i = 0;
    for (std::int64_t d : dims) {
        dims_[i++] = d;
    }
}

std::int64_t
Shape::operator[](int i) const
{
    SHREDDER_CHECK(i >= 0 && i < rank_, "shape index ", i, " out of rank ",
                   rank_);
    return dims_[i];
}

std::int64_t
Shape::numel() const
{
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i) {
        n *= dims_[i];
    }
    return n;
}

bool
Shape::valid() const
{
    for (int i = 0; i < rank_; ++i) {
        if (dims_[i] <= 0) {
            return false;
        }
    }
    return true;
}

bool
Shape::operator==(const Shape& other) const
{
    if (rank_ != other.rank_) {
        return false;
    }
    for (int i = 0; i < rank_; ++i) {
        if (dims_[i] != other.dims_[i]) {
            return false;
        }
    }
    return true;
}

std::string
Shape::to_string() const
{
    std::ostringstream oss;
    oss << "[";
    for (int i = 0; i < rank_; ++i) {
        if (i > 0) {
            oss << ", ";
        }
        oss << dims_[i];
    }
    oss << "]";
    return oss.str();
}

Shape
Shape::with_dim(int i, std::int64_t extent) const
{
    SHREDDER_CHECK(i >= 0 && i < rank_, "with_dim index ", i,
                   " out of rank ", rank_);
    Shape s = *this;
    s.dims_[i] = extent;
    return s;
}

}  // namespace shredder
