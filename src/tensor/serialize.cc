/**
 * @file
 * Implementation of the binary tensor serialization format and the
 * shared checked wire primitives.
 */
#include "src/tensor/serialize.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/runtime/logging.h"

namespace shredder {

namespace {

constexpr std::uint32_t kMagic = 0x54524853;  // 'SHRT'
// SHRT v2 disambiguation word: sits where v1 stores the rank, and no
// valid rank (≤ Shape::kMaxRank) can ever equal it, so v1 readers
// reject v2 bytes with their usual "bad shape rank" typed error.
constexpr std::uint32_t kExtMarker = 0xFFFF0002;

template <typename T>
void
write_pod(std::ostream& os, T value)
{
    os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T
read_pod_checked(std::istream& is, const char* what)
{
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!is) {
        throw SerializeError(std::string("truncated stream reading ") +
                             what);
    }
    return value;
}

}  // namespace

namespace wire {

void
write_u8(std::ostream& os, std::uint8_t v)
{
    write_pod(os, v);
}

void
write_u32(std::ostream& os, std::uint32_t v)
{
    write_pod(os, v);
}

void
write_u64(std::ostream& os, std::uint64_t v)
{
    write_pod(os, v);
}

void
write_f32(std::ostream& os, float v)
{
    write_pod(os, v);
}

void
write_f64(std::ostream& os, double v)
{
    write_pod(os, v);
}

std::uint8_t
read_u8(std::istream& is)
{
    return read_pod_checked<std::uint8_t>(is, "u8");
}

std::uint32_t
read_u32(std::istream& is)
{
    return read_pod_checked<std::uint32_t>(is, "u32");
}

std::uint64_t
read_u64(std::istream& is)
{
    return read_pod_checked<std::uint64_t>(is, "u64");
}

float
read_f32(std::istream& is)
{
    return read_pod_checked<float>(is, "f32");
}

double
read_f64(std::istream& is)
{
    return read_pod_checked<double>(is, "f64");
}

void
write_string(std::ostream& os, const std::string& s)
{
    write_u32(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
read_string(std::istream& is, std::uint32_t max_len)
{
    const std::uint32_t len = read_u32(is);
    if (len > max_len) {
        std::ostringstream oss;
        oss << "string length " << len << " exceeds limit " << max_len;
        throw SerializeError(oss.str());
    }
    std::string s(len, '\0');
    is.read(s.data(), static_cast<std::streamsize>(len));
    if (!is) {
        throw SerializeError("truncated stream reading string payload");
    }
    return s;
}

void
write_shape(std::ostream& os, const Shape& shape)
{
    write_u32(os, static_cast<std::uint32_t>(shape.rank()));
    for (int i = 0; i < shape.rank(); ++i) {
        write_u64(os, static_cast<std::uint64_t>(shape[i]));
    }
}

namespace {

/**
 * Dims of an already-validated rank. v1 headers store each dim as a
 * u64; the compact v2 header stores u32 dims (the validation below
 * rejects anything ≥ 2^32 in either encoding, so u32 loses nothing).
 */
Shape
read_shape_dims(std::istream& is, std::uint32_t rank,
                bool compact_dims = false)
{
    // Cap the declared element count like the other untrusted-length
    // guards (strings, layer counts, collection sizes): a crafted
    // header must not drive a near-infinite allocation, overflow the
    // int64 element product, or escape the typed-error contract via
    // std::length_error.
    constexpr std::int64_t kMaxElems = 1LL << 30;
    std::int64_t dims[Shape::kMaxRank] = {0, 0, 0, 0};
    std::int64_t numel = 1;
    for (std::uint32_t i = 0; i < rank; ++i) {
        dims[i] = compact_dims
                      ? static_cast<std::int64_t>(read_u32(is))
                      : static_cast<std::int64_t>(read_u64(is));
        if (dims[i] <= 0 || dims[i] >= (1LL << 32)) {
            std::ostringstream oss;
            oss << "bad shape dim " << dims[i];
            throw SerializeError(oss.str());
        }
        numel *= dims[i];  // ≤ 2^32 per dim and re-capped each step:
        if (numel > kMaxElems) {  // cannot overflow before the check.
            std::ostringstream oss;
            oss << "implausible shape element count (> " << kMaxElems
                << ")";
            throw SerializeError(oss.str());
        }
    }
    switch (rank) {
      case 0: return Shape();
      case 1: return Shape({dims[0]});
      case 2: return Shape({dims[0], dims[1]});
      case 3: return Shape({dims[0], dims[1], dims[2]});
      default: return Shape({dims[0], dims[1], dims[2], dims[3]});
    }
}

}  // namespace

Shape
read_shape(std::istream& is)
{
    const std::uint32_t rank = read_u32(is);
    if (rank > static_cast<std::uint32_t>(Shape::kMaxRank)) {
        std::ostringstream oss;
        oss << "bad shape rank " << rank;
        throw SerializeError(oss.str());
    }
    return read_shape_dims(is, rank);
}

void
expect_magic(std::istream& is, std::uint32_t expected, const char* what)
{
    const std::uint32_t magic = read_u32(is);
    if (magic != expected) {
        std::ostringstream oss;
        oss << "bad " << what << " magic 0x" << std::hex << magic
            << " (expected 0x" << expected << ")";
        throw SerializeError(oss.str());
    }
}

}  // namespace wire

void
write_tensor(std::ostream& os, const Tensor& t)
{
    wire::write_u32(os, kMagic);
    wire::write_shape(os, t.shape());
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.size() * sizeof(float)));
    SHREDDER_CHECK(static_cast<bool>(os), "tensor write failed");
}

Tensor
read_tensor_checked(std::istream& is)
{
    wire::expect_magic(is, kMagic, "tensor");
    const Shape shape = wire::read_shape(is);
    std::vector<float> data;
    try {
        data.resize(static_cast<std::size_t>(shape.numel()));
    } catch (const std::bad_alloc&) {
        // An in-bounds but unsatisfiable allocation is still the
        // stream's fault at a trust boundary — keep the typed
        // contract rather than leaking bad_alloc past the loader.
        throw SerializeError("tensor payload too large to allocate");
    }
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(shape.numel() * sizeof(float)));
    if (!is) {
        throw SerializeError("truncated tensor payload");
    }
    return Tensor(shape, std::move(data));
}

Tensor
read_tensor(std::istream& is)
{
    try {
        return read_tensor_checked(is);
    } catch (const SerializeError& e) {
        SHREDDER_FATAL("tensor stream: ", e.what());
    }
}

std::int64_t
serialized_size(const Tensor& t)
{
    return static_cast<std::int64_t>(sizeof(std::uint32_t) * 2 +
                                     sizeof(std::uint64_t) *
                                         t.shape().rank()) +
           t.size() * static_cast<std::int64_t>(sizeof(float));
}

void
write_tensor_wire(std::ostream& os, const QuantizedTensor& q)
{
    SHREDDER_CHECK(static_cast<std::int64_t>(q.data.size()) ==
                       q.size() * dtype_bytes(q.dtype),
                   "wire tensor payload size mismatch");
    if (q.dtype == WireDtype::kF32) {
        // Canonical fp32 bytes are the v1 header — bit-identical to
        // write_tensor, so fp32 artifacts never change on disk.
        wire::write_u32(os, kMagic);
        wire::write_shape(os, q.shape);
    } else {
        wire::write_u32(os, kMagic);
        wire::write_u32(os, kExtMarker);
        wire::write_u8(os, static_cast<std::uint8_t>(q.dtype));
        wire::write_f32(os, q.scale);
        wire::write_u32(os, static_cast<std::uint32_t>(q.zero_point));
        // Compact shape: header bytes are the whole point of the
        // quantized wire path, so v2 spends 1+4r on the shape where
        // v1 spends 4+8r (u32 dims cover the validated dim range).
        wire::write_u8(os, static_cast<std::uint8_t>(q.shape.rank()));
        for (int i = 0; i < q.shape.rank(); ++i) {
            wire::write_u32(os, static_cast<std::uint32_t>(q.shape[i]));
        }
    }
    os.write(reinterpret_cast<const char*>(q.data.data()),
             static_cast<std::streamsize>(q.data.size()));
    SHREDDER_CHECK(static_cast<bool>(os), "wire tensor write failed");
}

QuantizedTensor
read_tensor_wire_checked(std::istream& is)
{
    wire::expect_magic(is, kMagic, "tensor");
    QuantizedTensor q;
    const std::uint32_t word = wire::read_u32(is);
    if (word == kExtMarker) {
        const std::uint8_t code = wire::read_u8(is);
        if (code == static_cast<std::uint8_t>(WireDtype::kF32)) {
            throw SerializeError(
                "fp32 tensor payload must use the version-1 header");
        }
        if (code > static_cast<std::uint8_t>(WireDtype::kI16)) {
            std::ostringstream oss;
            oss << "unknown tensor dtype code "
                << static_cast<unsigned>(code);
            throw SerializeError(oss.str());
        }
        q.dtype = static_cast<WireDtype>(code);
        q.scale = wire::read_f32(is);
        if (!std::isfinite(q.scale) || q.scale <= 0.0f) {
            throw SerializeError("bad quantization scale");
        }
        q.zero_point =
            static_cast<std::int32_t>(wire::read_u32(is));
        if (q.zero_point < dtype_qmin(q.dtype) ||
            q.zero_point > dtype_qmax(q.dtype)) {
            std::ostringstream oss;
            oss << "quantization zero point " << q.zero_point
                << " outside " << to_string(q.dtype) << " range";
            throw SerializeError(oss.str());
        }
        const std::uint8_t rank = wire::read_u8(is);
        if (rank > static_cast<std::uint8_t>(Shape::kMaxRank)) {
            std::ostringstream oss;
            oss << "bad shape rank " << static_cast<unsigned>(rank);
            throw SerializeError(oss.str());
        }
        q.shape = wire::read_shape_dims(is, rank, /*compact_dims=*/true);
    } else {
        // Version 1: the word is the rank.
        if (word > static_cast<std::uint32_t>(Shape::kMaxRank)) {
            std::ostringstream oss;
            oss << "bad shape rank " << word;
            throw SerializeError(oss.str());
        }
        q.dtype = WireDtype::kF32;
        q.shape = wire::read_shape_dims(is, word);
    }
    const std::int64_t payload = q.size() * dtype_bytes(q.dtype);
    try {
        q.data.resize(static_cast<std::size_t>(payload));
    } catch (const std::bad_alloc&) {
        throw SerializeError("tensor payload too large to allocate");
    }
    is.read(reinterpret_cast<char*>(q.data.data()),
            static_cast<std::streamsize>(payload));
    if (!is) {
        throw SerializeError("truncated tensor payload");
    }
    return q;
}

std::int64_t
serialized_wire_size(const Shape& shape, WireDtype dtype)
{
    const std::int64_t payload = shape.numel() * dtype_bytes(dtype);
    if (dtype == WireDtype::kF32) {
        // v1 header: magic + rank u32 + dims u64 each.
        return 8 + 8 * shape.rank() + payload;
    }
    // v2 header: magic + marker + dtype u8 + scale f32 + zero point
    // u32 + rank u8 + dims u32 each.
    return 18 + 4 * shape.rank() + payload;
}

std::string
tensor_to_bytes(const Tensor& t)
{
    std::ostringstream oss(std::ios::binary);
    write_tensor(oss, t);
    return oss.str();
}

Tensor
tensor_from_bytes(const std::string& bytes)
{
    std::istringstream iss(bytes, std::ios::binary);
    return read_tensor(iss);
}

}  // namespace shredder
