/**
 * @file
 * Implementation of the binary tensor serialization format.
 */
#include "src/tensor/serialize.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/runtime/logging.h"

namespace shredder {

namespace {

constexpr std::uint32_t kMagic = 0x54524853;  // 'SHRT'

template <typename T>
void
write_pod(std::ostream& os, T value)
{
    os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T
read_pod(std::istream& is)
{
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof(T));
    SHREDDER_REQUIRE(static_cast<bool>(is), "truncated tensor stream");
    return value;
}

}  // namespace

void
write_tensor(std::ostream& os, const Tensor& t)
{
    write_pod<std::uint32_t>(os, kMagic);
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.shape().rank()));
    for (int i = 0; i < t.shape().rank(); ++i) {
        write_pod<std::uint64_t>(os,
                                 static_cast<std::uint64_t>(t.shape()[i]));
    }
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.size() * sizeof(float)));
    SHREDDER_CHECK(static_cast<bool>(os), "tensor write failed");
}

Tensor
read_tensor(std::istream& is)
{
    const auto magic = read_pod<std::uint32_t>(is);
    SHREDDER_REQUIRE(magic == kMagic, "bad tensor magic 0x", std::hex,
                     magic);
    const auto rank = read_pod<std::uint32_t>(is);
    SHREDDER_REQUIRE(rank <= static_cast<std::uint32_t>(Shape::kMaxRank),
                     "bad tensor rank ", rank);
    std::int64_t dims[Shape::kMaxRank] = {0, 0, 0, 0};
    std::int64_t numel = 1;
    for (std::uint32_t i = 0; i < rank; ++i) {
        dims[i] = static_cast<std::int64_t>(read_pod<std::uint64_t>(is));
        SHREDDER_REQUIRE(dims[i] > 0 && dims[i] < (1LL << 32),
                         "bad tensor dim ", dims[i]);
        numel *= dims[i];
    }
    Shape shape;
    switch (rank) {
      case 0: shape = Shape(); break;
      case 1: shape = Shape({dims[0]}); break;
      case 2: shape = Shape({dims[0], dims[1]}); break;
      case 3: shape = Shape({dims[0], dims[1], dims[2]}); break;
      case 4: shape = Shape({dims[0], dims[1], dims[2], dims[3]}); break;
      default: SHREDDER_PANIC("unreachable rank");
    }
    std::vector<float> data(static_cast<std::size_t>(numel));
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    SHREDDER_REQUIRE(static_cast<bool>(is), "truncated tensor payload");
    return Tensor(shape, std::move(data));
}

std::int64_t
serialized_size(const Tensor& t)
{
    return static_cast<std::int64_t>(sizeof(std::uint32_t) * 2 +
                                     sizeof(std::uint64_t) *
                                         t.shape().rank()) +
           t.size() * static_cast<std::int64_t>(sizeof(float));
}

std::string
tensor_to_bytes(const Tensor& t)
{
    std::ostringstream oss(std::ios::binary);
    write_tensor(oss, t);
    return oss.str();
}

Tensor
tensor_from_bytes(const std::string& bytes)
{
    std::istringstream iss(bytes, std::ios::binary);
    return read_tensor(iss);
}

}  // namespace shredder
