/**
 * @file
 * Dense float32 tensor with value semantics.
 *
 * The storage is a flat, contiguous `std::vector<float>` in row-major
 * (NCHW) order. Copies are real copies; moves are cheap. This keeps
 * ownership trivially correct at the cost of occasional extra copies,
 * which is the right trade-off at Shredder's model scale.
 */
#ifndef SHREDDER_TENSOR_TENSOR_H
#define SHREDDER_TENSOR_TENSOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/rng.h"
#include "src/tensor/shape.h"

namespace shredder {

/** Dense float32 tensor. See file comment for semantics. */
class Tensor
{
  public:
    /** Empty (rank-0, zero-size) tensor. */
    Tensor() = default;

    /** Zero-filled tensor of the given shape. */
    explicit Tensor(const Shape& shape);

    /** Tensor of the given shape, filled with `value`. */
    Tensor(const Shape& shape, float value);

    /** Adopt existing data (must match `shape.numel()`). */
    Tensor(const Shape& shape, std::vector<float> data);

    // -- Factories -------------------------------------------------------

    /** All-zeros tensor. */
    static Tensor zeros(const Shape& shape) { return Tensor(shape); }

    /** All-ones tensor. */
    static Tensor ones(const Shape& shape) { return Tensor(shape, 1.0f); }

    /** Every element full of `value`. */
    static Tensor
    full(const Shape& shape, float value)
    {
        return Tensor(shape, value);
    }

    /** I.i.d. Uniform(lo, hi) entries. */
    static Tensor uniform(const Shape& shape, Rng& rng, float lo = 0.0f,
                          float hi = 1.0f);

    /** I.i.d. N(mean, stddev²) entries. */
    static Tensor normal(const Shape& shape, Rng& rng, float mean = 0.0f,
                         float stddev = 1.0f);

    /** I.i.d. Laplace(location, scale) entries (noise-tensor init). */
    static Tensor laplace(const Shape& shape, Rng& rng, float location,
                          float scale);

    /** 1-D tensor wrapping a value list. */
    static Tensor from_vector(std::vector<float> values);

    // -- Introspection ---------------------------------------------------

    const Shape& shape() const { return shape_; }
    std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
    bool empty() const { return data_.empty(); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
    float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

    /** Bounds-checked element access by flat index (panics on misuse). */
    float& at(std::int64_t i);
    float at(std::int64_t i) const;

    /** Element access by (n, c, h, w) for rank-4 tensors. */
    float& at4(std::int64_t n, std::int64_t c, std::int64_t h,
               std::int64_t w);
    float at4(std::int64_t n, std::int64_t c, std::int64_t h,
              std::int64_t w) const;

    /** Element access by (r, c) for rank-2 tensors. */
    float& at2(std::int64_t r, std::int64_t c);
    float at2(std::int64_t r, std::int64_t c) const;

    // -- Whole-tensor helpers --------------------------------------------

    /** Set every element to `value`. */
    void fill(float value);

    /**
     * Same data, different shape (element count must match). Returns a
     * copy; the receiver's storage is untouched.
     */
    Tensor reshaped(const Shape& new_shape) const;

    /** In-place reshape (element count must match). */
    void reshape_inplace(const Shape& new_shape);

    /**
     * The `n`-th slice along dimension 0, as its own (rank-1-lower)
     * tensor. Copies the data.
     */
    Tensor slice0(std::int64_t n) const;

    /** Copy `src` into the `n`-th slice along dimension 0. */
    void set_slice0(std::int64_t n, const Tensor& src);

    /** Sum of all elements (double accumulation). */
    double sum() const;

    /** Mean of all elements. */
    double mean() const;

    /** Mean of squared elements, E[x²]. */
    double mean_square() const;

    /** Population variance. */
    double variance() const;

    /** Smallest element. */
    float min() const;

    /** Largest element. */
    float max() const;

    /** Flat index of the largest element. */
    std::int64_t argmax() const;

    /** L2 norm. */
    double norm() const;

    /** Sum of |xᵢ| (the paper's Σ|nᵢ| loss term). */
    double abs_sum() const;

    /** True when any element is NaN or ±inf. */
    bool has_nonfinite() const;

    /** Short description, e.g. "Tensor[32, 10] (320 elems)". */
    std::string to_string() const;

  private:
    Shape shape_;
    std::vector<float> data_;
};

}  // namespace shredder

#endif  // SHREDDER_TENSOR_TENSOR_H
