/**
 * @file
 * Reusable, thread-local scratch buffers for the compute substrate.
 *
 * The GEMM packing routines, `Conv2d`'s im2col lowering and similar hot
 * paths need short-lived float workspaces on every call. Allocating
 * them with `std::vector` per call costs a page-touching `memset` plus
 * allocator traffic right in the inner serving loop. A `ScratchArena`
 * instead hands out leases on per-thread buffers that persist across
 * calls: the first call on a thread allocates, every later call of the
 * same or smaller size is pointer arithmetic.
 *
 * Usage:
 * @code
 *   ScratchArena& arena = ScratchArena::for_this_thread();
 *   ScratchLease col = arena.acquire(rows * cols);
 *   im2col(..., col.data());
 * @endcode
 *
 * Leases nest (a holder may call code that acquires its own lease) but
 * must be released in LIFO order, which scoped lifetimes give for free.
 * Buffers are 64-byte aligned so packed GEMM panels sit on cache-line
 * boundaries.
 */
#ifndef SHREDDER_TENSOR_SCRATCH_H
#define SHREDDER_TENSOR_SCRATCH_H

#include <cstddef>
#include <memory>
#include <vector>

namespace shredder {

class ScratchArena;

/**
 * RAII lease on one arena slot. Move-only; releases its slot back to
 * the arena on destruction. The pointer is valid for the lease's
 * lifetime and uninitialized (callers overwrite before reading).
 */
class ScratchLease
{
  public:
    ScratchLease(ScratchLease&& other) noexcept;
    ScratchLease& operator=(ScratchLease&&) = delete;
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    ~ScratchLease();

    /** 64-byte-aligned buffer of at least `size()` floats. */
    float* data() const { return data_; }

    /** Number of floats requested at acquire time. */
    std::size_t size() const { return count_; }

  private:
    friend class ScratchArena;
    ScratchLease(ScratchArena* arena, float* data, std::size_t count)
        : arena_(arena), data_(data), count_(count)
    {
    }

    ScratchArena* arena_;
    float* data_;
    std::size_t count_;
};

/**
 * A stack of growable, cache-line-aligned float buffers.
 *
 * Each nesting depth owns a distinct buffer (a "slot"), so an inner
 * acquisition growing its slot never invalidates an outer lease's
 * pointer. Slots keep their high-water-mark capacity for the arena's
 * lifetime. Not thread-safe — use `for_this_thread()` to get a
 * per-thread instance.
 */
class ScratchArena
{
  public:
    ScratchArena() = default;

    ScratchArena(const ScratchArena&) = delete;
    ScratchArena& operator=(const ScratchArena&) = delete;

    /**
     * Lease a buffer of `count` floats (zero is allowed). Grows the
     * slot at the current nesting depth if needed; contents are
     * unspecified.
     */
    ScratchLease acquire(std::size_t count);

    /** Number of leases currently outstanding. */
    std::size_t depth() const { return depth_; }

    /** Total bytes held across all slots (observability/tests). */
    std::size_t capacity_bytes() const;

    /**
     * The calling thread's arena. Thread pool workers each get their
     * own, so parallel conv/GEMM packing never contends.
     */
    static ScratchArena& for_this_thread();

  private:
    friend class ScratchLease;

    struct AlignedDelete
    {
        void operator()(float* p) const;
    };
    struct Slot
    {
        std::unique_ptr<float[], AlignedDelete> data;
        std::size_t capacity = 0;  // floats
    };

    void release() { --depth_; }

    std::vector<Slot> slots_;
    std::size_t depth_ = 0;
};

}  // namespace shredder

#endif  // SHREDDER_TENSOR_SCRATCH_H
