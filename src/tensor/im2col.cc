/**
 * @file
 * Implementation of im2col/col2im convolution lowering.
 */
#include "src/tensor/im2col.h"

namespace shredder {

void
im2col(const float* data_im, std::int64_t channels, std::int64_t height,
       std::int64_t width, std::int64_t kernel_h, std::int64_t kernel_w,
       std::int64_t stride_h, std::int64_t stride_w, std::int64_t pad_h,
       std::int64_t pad_w, float* data_col)
{
    const std::int64_t out_h =
        conv_out_extent(height, kernel_h, stride_h, pad_h);
    const std::int64_t out_w =
        conv_out_extent(width, kernel_w, stride_w, pad_w);
    const std::int64_t channel_size = height * width;

    float* col = data_col;
    for (std::int64_t c = 0; c < channels; ++c) {
        const float* im = data_im + c * channel_size;
        for (std::int64_t kh = 0; kh < kernel_h; ++kh) {
            for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
                for (std::int64_t oh = 0; oh < out_h; ++oh) {
                    const std::int64_t ih = oh * stride_h - pad_h + kh;
                    if (ih < 0 || ih >= height) {
                        for (std::int64_t ow = 0; ow < out_w; ++ow) {
                            *col++ = 0.0f;
                        }
                        continue;
                    }
                    const float* imrow = im + ih * width;
                    for (std::int64_t ow = 0; ow < out_w; ++ow) {
                        const std::int64_t iw = ow * stride_w - pad_w + kw;
                        *col++ = (iw >= 0 && iw < width) ? imrow[iw] : 0.0f;
                    }
                }
            }
        }
    }
}

void
col2im(const float* data_col, std::int64_t channels, std::int64_t height,
       std::int64_t width, std::int64_t kernel_h, std::int64_t kernel_w,
       std::int64_t stride_h, std::int64_t stride_w, std::int64_t pad_h,
       std::int64_t pad_w, float* data_im)
{
    const std::int64_t out_h =
        conv_out_extent(height, kernel_h, stride_h, pad_h);
    const std::int64_t out_w =
        conv_out_extent(width, kernel_w, stride_w, pad_w);
    const std::int64_t channel_size = height * width;

    const float* col = data_col;
    for (std::int64_t c = 0; c < channels; ++c) {
        float* im = data_im + c * channel_size;
        for (std::int64_t kh = 0; kh < kernel_h; ++kh) {
            for (std::int64_t kw = 0; kw < kernel_w; ++kw) {
                for (std::int64_t oh = 0; oh < out_h; ++oh) {
                    const std::int64_t ih = oh * stride_h - pad_h + kh;
                    if (ih < 0 || ih >= height) {
                        col += out_w;
                        continue;
                    }
                    float* imrow = im + ih * width;
                    for (std::int64_t ow = 0; ow < out_w; ++ow) {
                        const std::int64_t iw = ow * stride_w - pad_w + kw;
                        if (iw >= 0 && iw < width) {
                            imrow[iw] += *col;
                        }
                        ++col;
                    }
                }
            }
        }
    }
}

}  // namespace shredder
