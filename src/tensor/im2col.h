/**
 * @file
 * im2col / col2im transforms used by the convolution layers.
 *
 * `im2col` unfolds the receptive fields of a single image (CHW) into a
 * matrix of shape [C·KH·KW, OH·OW] so convolution becomes one GEMM.
 * `col2im` is its adjoint and scatters column gradients back to image
 * gradients (accumulating where fields overlap).
 */
#ifndef SHREDDER_TENSOR_IM2COL_H
#define SHREDDER_TENSOR_IM2COL_H

#include <cstdint>

namespace shredder {

/** Output spatial extent for a conv/pool dimension. */
inline std::int64_t
conv_out_extent(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                std::int64_t pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

/**
 * Unfold image patches into columns.
 *
 * @param data_im   Input image, C×H×W contiguous.
 * @param channels  C.
 * @param height    H.
 * @param width     W.
 * @param kernel_h  Kernel height KH.
 * @param kernel_w  Kernel width KW.
 * @param stride_h  Vertical stride.
 * @param stride_w  Horizontal stride.
 * @param pad_h     Vertical zero padding.
 * @param pad_w     Horizontal zero padding.
 * @param data_col  Output, (C·KH·KW)×(OH·OW) contiguous.
 */
void im2col(const float* data_im, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kernel_h, std::int64_t kernel_w,
            std::int64_t stride_h, std::int64_t stride_w, std::int64_t pad_h,
            std::int64_t pad_w, float* data_col);

/**
 * Adjoint of im2col: scatter-add columns back into an image buffer.
 * `data_im` must be zeroed by the caller before the first call.
 * Parameters mirror `im2col`.
 */
void col2im(const float* data_col, std::int64_t channels,
            std::int64_t height, std::int64_t width, std::int64_t kernel_h,
            std::int64_t kernel_w, std::int64_t stride_h,
            std::int64_t stride_w, std::int64_t pad_h, std::int64_t pad_w,
            float* data_im);

}  // namespace shredder

#endif  // SHREDDER_TENSOR_IM2COL_H
