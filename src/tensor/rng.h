/**
 * @file
 * Deterministic random number generation for the whole stack.
 *
 * Shredder's noise-tensor initialization draws from a Laplace(µ, b)
 * distribution (paper §2.4), which the C++ standard library does not
 * provide; `Rng::laplace` implements it via inverse-CDF sampling.
 */
#ifndef SHREDDER_TENSOR_RNG_H
#define SHREDDER_TENSOR_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace shredder {

/**
 * A seeded random source wrapping a Mersenne Twister.
 *
 * Every stochastic component in the repo (data generators, weight init,
 * noise init, samplers) takes an `Rng&` so experiments are reproducible
 * end-to-end from a single seed.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for repro). */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /** Uniform real in [lo, hi). */
    float uniform(float lo = 0.0f, float hi = 1.0f);

    /** Standard normal scaled: N(mean, stddev²). */
    float normal(float mean = 0.0f, float stddev = 1.0f);

    /**
     * Laplace(location µ, scale b) via inverse CDF:
     *   X = µ − b·sgn(U)·ln(1 − 2|U|),  U ~ Uniform(−½, ½).
     *
     * Variance is 2b².
     */
    float laplace(float location, float scale);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t randint(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability `p` of true. */
    bool bernoulli(double p);

    /** A uniformly random permutation of {0, …, n−1}. */
    std::vector<std::int64_t> permutation(std::int64_t n);

    /** Split off an independently-seeded child generator. */
    Rng fork();

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace shredder

#endif  // SHREDDER_TENSOR_RNG_H
