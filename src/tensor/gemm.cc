/**
 * @file
 * Packed, register-tiled GEMM (GotoBLAS/BLIS-style loop nest).
 *
 * Layout of the computation, outermost to innermost:
 *
 *   jc over n in NC   — B block sized for the last-level cache
 *   pc over k in KC   — pack op(B) block into NR-wide micro-panels
 *   ic over m in MC   — pack op(A) block into MR-wide micro-panels (L2)
 *   jr over nc in NR  — one B micro-panel (kc×NR, lives in L1)
 *   ir over mc in MR  — micro-kernel: MR×NR register accumulators
 *
 * The packing step reads op(A)/op(B) through explicit row/column
 * strides, so all four transpose combinations share one kernel and
 * none materializes a full transposed copy: scratch is bounded by
 * O(MC·KC + NC·KC) floats per thread and reused across calls via
 * `ScratchArena`. Large-m problems split their MC row blocks across
 * `ThreadPool::global()` (each worker packs A into its own arena; the
 * shared packed B is read-only).
 *
 * Two micro-kernels are compiled and picked once at runtime: a 6×8
 * tile for the portable SSE2 baseline (12 XMM accumulators) and a
 * 6×16 tile compiled with `target("avx2,fma")` (12 YMM accumulators,
 * FMA) chosen when the CPU supports it — so the default build, with
 * no -march flags, still runs wide on modern x86. See
 * docs/PERFORMANCE.md for the derivation and measured numbers.
 */
#include "src/tensor/gemm.h"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "src/runtime/logging.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/scratch.h"

namespace shredder {

namespace {

constexpr std::int64_t kMr = 6;     ///< micro-tile rows
constexpr std::int64_t kNrSse = 8;  ///< micro-tile columns, SSE baseline
constexpr std::int64_t kNrAvx = 16; ///< micro-tile columns, AVX2+FMA path
constexpr std::int64_t kKc = 256;   ///< k block: micro-panels stay in L1
constexpr std::int64_t kMc = 96;    ///< m block: packed A block stays in L2
constexpr std::int64_t kNc = 2048;  ///< n block: packed B block stays in LLC

/** Problems below this flop-ish count skip packing entirely. */
constexpr std::int64_t kSmallWork = 16 * 1024;

/** Minimum m·n·k before row-panel threading pays for itself. */
constexpr std::int64_t kParallelMinWork = 1 << 20;

std::int64_t
round_up(std::int64_t v, std::int64_t to)
{
    return (v + to - 1) / to * to;
}

/**
 * Pack a kc×nc block of op(B) into micro-panels of `nr` columns
 * (`nr` is the active micro-kernel's width). Element (p, j) of the
 * block lives at `b[p*rs + j*cs]`. Panel j0/nr holds kc rows of nr
 * consecutive columns, contiguous in p; tail columns are zero-filled
 * so the micro-kernel never branches on the column count.
 */
void
pack_b(std::int64_t kc, std::int64_t nc, std::int64_t nr, const float* b,
       std::int64_t rs, std::int64_t cs, float* out)
{
    for (std::int64_t j0 = 0; j0 < nc; j0 += nr) {
        const std::int64_t w = std::min(nr, nc - j0);
        float* panel = out + j0 * kc;
        if (cs == 1 && w == nr) {
            // op(B) rows contiguous (plain B): copy nr-wide strips.
            const float* src = b + j0;
            for (std::int64_t p = 0; p < kc; ++p) {
                for (std::int64_t j = 0; j < nr; ++j) {
                    panel[p * nr + j] = src[p * rs + j];
                }
            }
        } else if (rs == 1) {
            // op(B) columns contiguous (transposed B): copy columns.
            for (std::int64_t j = 0; j < w; ++j) {
                const float* src = b + (j0 + j) * cs;
                for (std::int64_t p = 0; p < kc; ++p) {
                    panel[p * nr + j] = src[p];
                }
            }
            for (std::int64_t j = w; j < nr; ++j) {
                for (std::int64_t p = 0; p < kc; ++p) {
                    panel[p * nr + j] = 0.0f;
                }
            }
        } else {
            for (std::int64_t p = 0; p < kc; ++p) {
                for (std::int64_t j = 0; j < w; ++j) {
                    panel[p * nr + j] = b[p * rs + (j0 + j) * cs];
                }
                for (std::int64_t j = w; j < nr; ++j) {
                    panel[p * nr + j] = 0.0f;
                }
            }
        }
    }
}

/**
 * Pack an mc×kc block of op(A) into micro-panels of kMr rows.
 * Element (i, p) of the block lives at `a[i*rs + p*cs]`; panels are
 * contiguous in p with zero-filled tail rows.
 */
void
pack_a(std::int64_t mc, std::int64_t kc, const float* a, std::int64_t rs,
       std::int64_t cs, float* out)
{
    for (std::int64_t i0 = 0; i0 < mc; i0 += kMr) {
        const std::int64_t h = std::min(kMr, mc - i0);
        float* panel = out + i0 * kc;
        if (rs == 1 && h == kMr) {
            // op(A) columns contiguous in i (transposed A).
            const float* src = a + i0;
            for (std::int64_t p = 0; p < kc; ++p) {
                for (std::int64_t i = 0; i < kMr; ++i) {
                    panel[p * kMr + i] = src[p * cs + i];
                }
            }
        } else {
            // Plain A: kMr sequential row streams advance together.
            for (std::int64_t p = 0; p < kc; ++p) {
                for (std::int64_t i = 0; i < h; ++i) {
                    panel[p * kMr + i] = a[(i0 + i) * rs + p * cs];
                }
                for (std::int64_t i = h; i < kMr; ++i) {
                    panel[p * kMr + i] = 0.0f;
                }
            }
        }
    }
}

/**
 * The register tile: C[0..mr)×[0..nr) += alpha · Σ_p ap[p]·bp[p].
 * `ap`/`bp` are zero-padded micro-panels, so the accumulation always
 * runs the full kMr×NR shape and only the write-back honors mr/nr.
 *
 * The unroll pragmas matter: full unrolling of the i/j loops lets
 * GCC's scalar-replacement pass promote `acc` to vector registers —
 * without it the tile round-trips through the stack every iteration
 * and the kernel runs ~3× slower than the seed loop.
 */
template <int NR>
__attribute__((always_inline)) inline void
micro_tile(std::int64_t kc, const float* __restrict__ ap,
           const float* __restrict__ bp, float alpha, float* __restrict__ c,
           std::int64_t ldc, std::int64_t mr, std::int64_t nr)
{
    float acc[kMr][NR] = {};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float* __restrict__ av = ap + p * kMr;
        const float* __restrict__ bv = bp + p * NR;
#pragma GCC unroll 8
        for (int i = 0; i < kMr; ++i) {
            const float a = av[i];
#pragma GCC unroll 16
            for (int j = 0; j < NR; ++j) {
                acc[i][j] += a * bv[j];
            }
        }
    }
    if (mr == kMr && nr == NR) {
#pragma GCC unroll 8
        for (int i = 0; i < kMr; ++i) {
#pragma GCC unroll 16
            for (int j = 0; j < NR; ++j) {
                c[i * ldc + j] += alpha * acc[i][j];
            }
        }
    } else {
        for (std::int64_t i = 0; i < mr; ++i) {
            for (std::int64_t j = 0; j < nr; ++j) {
                c[i * ldc + j] += alpha * acc[i][j];
            }
        }
    }
}

using MicroKernelFn = void (*)(std::int64_t kc, const float* ap,
                               const float* bp, float alpha, float* c,
                               std::int64_t ldc, std::int64_t mr,
                               std::int64_t nr);

/** Portable baseline: 6×8 tile, 12 XMM accumulators under plain -O3. */
void
micro_kernel_sse(std::int64_t kc, const float* ap, const float* bp,
                 float alpha, float* c, std::int64_t ldc, std::int64_t mr,
                 std::int64_t nr)
{
    micro_tile<kNrSse>(kc, ap, bp, alpha, c, ldc, mr, nr);
}

#if defined(__x86_64__) || defined(__i386__)
/**
 * 6×16 tile compiled for AVX2+FMA (12 YMM accumulators, fused
 * multiply-add). Selected at runtime so the default portable build
 * still exploits modern x86 without -march flags.
 */
__attribute__((target("avx2,fma"))) void
micro_kernel_avx2(std::int64_t kc, const float* ap, const float* bp,
                  float alpha, float* c, std::int64_t ldc, std::int64_t mr,
                  std::int64_t nr)
{
    micro_tile<kNrAvx>(kc, ap, bp, alpha, c, ldc, mr, nr);
}
#endif

/** Runtime-selected micro-kernel and its panel width. */
struct KernelChoice
{
    MicroKernelFn fn;
    std::int64_t nr;
};

KernelChoice
select_kernel()
{
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
        return {micro_kernel_avx2, kNrAvx};
    }
#endif
    return {micro_kernel_sse, kNrSse};
}

const KernelChoice&
kernel_choice()
{
    static const KernelChoice choice = select_kernel();
    return choice;
}

/**
 * Strided fallback for problems too small to amortize packing, and
 * for skinny shapes (m < kMr or n < kNr) where the zero-padded tile
 * would waste most of its flops. Picks saxpy (i-p-j) or dot (i-j-p)
 * order so the innermost loop is contiguous either way.
 */
void
gemm_small(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           const float* a, std::int64_t a_rs, std::int64_t a_cs,
           const float* b, std::int64_t b_rs, std::int64_t b_cs, float* c)
{
    if (b_cs == 1) {
        for (std::int64_t i = 0; i < m; ++i) {
            float* crow = c + i * n;
            for (std::int64_t p = 0; p < k; ++p) {
                const float av = alpha * a[i * a_rs + p * a_cs];
                const float* brow = b + p * b_rs;
                for (std::int64_t j = 0; j < n; ++j) {
                    crow[j] += av * brow[j];
                }
            }
        }
        return;
    }
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            const float* bcol = b + j * b_cs;
            double acc = 0.0;
            if (a_cs == 1 && b_rs == 1) {
                const float* arow = a + i * a_rs;
                for (std::int64_t p = 0; p < k; ++p) {
                    acc += static_cast<double>(arow[p]) * bcol[p];
                }
            } else {
                for (std::int64_t p = 0; p < k; ++p) {
                    acc += static_cast<double>(a[i * a_rs + p * a_cs]) *
                           bcol[p * b_rs];
                }
            }
            c[i * n + j] += alpha * static_cast<float>(acc);
        }
    }
}

/** The blocked path; see the file comment for the loop nest. */
void
gemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, std::int64_t a_rs, std::int64_t a_cs,
             const float* b, std::int64_t b_rs, std::int64_t b_cs, float* c)
{
    const KernelChoice& kern = kernel_choice();
    const std::int64_t knr = kern.nr;
    ScratchArena& arena = ScratchArena::for_this_thread();
    for (std::int64_t jc = 0; jc < n; jc += kNc) {
        const std::int64_t nc = std::min(kNc, n - jc);
        for (std::int64_t pc = 0; pc < k; pc += kKc) {
            const std::int64_t kc = std::min(kKc, k - pc);
            ScratchLease bpack = arena.acquire(
                static_cast<std::size_t>(round_up(nc, knr) * kc));
            pack_b(kc, nc, knr, b + pc * b_rs + jc * b_cs, b_rs, b_cs,
                   bpack.data());

            const float* bpack_data = bpack.data();
            const std::int64_t num_blocks = (m + kMc - 1) / kMc;
            auto row_block = [&](std::int64_t blk) {
                const std::int64_t ic = blk * kMc;
                const std::int64_t mc = std::min(kMc, m - ic);
                // Workers pack A into their own thread's arena.
                ScratchLease apack =
                    ScratchArena::for_this_thread().acquire(
                        static_cast<std::size_t>(round_up(mc, kMr) * kc));
                pack_a(mc, kc, a + ic * a_rs + pc * a_cs, a_rs, a_cs,
                       apack.data());
                for (std::int64_t jr = 0; jr < nc; jr += knr) {
                    const std::int64_t nr = std::min(knr, nc - jr);
                    const float* bpanel = bpack_data + jr * kc;
                    for (std::int64_t ir = 0; ir < mc; ir += kMr) {
                        kern.fn(kc, apack.data() + ir * kc, bpanel, alpha,
                                c + (ic + ir) * n + jc + jr, n,
                                std::min(kMr, mc - ir), nr);
                    }
                }
            };

            const bool threaded = num_blocks > 1 &&
                                  m * n * k >= kParallelMinWork &&
                                  !ThreadPool::in_worker() &&
                                  ThreadPool::global().size() > 1;
            if (threaded) {
                parallel_for(0, num_blocks, row_block);
            } else {
                for (std::int64_t blk = 0; blk < num_blocks; ++blk) {
                    row_block(blk);
                }
            }
        }
    }
}

/**
 * Row-pointer twin of `pack_a` for the fused fp32 noise path: element
 * (i, p) of the block is `a_rows[row0+i][p0+p]` plus its noise row.
 * The add happens here, in fp32, exactly where a materialized fused
 * activation would have been read — producing the same single-rounded
 * sum `pack_a` would have packed, so downstream accumulation sees
 * bit-identical panels.
 */
void
pack_a_rows(std::int64_t mc, std::int64_t kc, const float* const* a_rows,
            const float* const* a_noise, std::int64_t row0,
            std::int64_t p0, float* out)
{
    for (std::int64_t i0 = 0; i0 < mc; i0 += kMr) {
        const std::int64_t h = std::min(kMr, mc - i0);
        float* panel = out + i0 * kc;
        for (std::int64_t i = 0; i < h; ++i) {
            const float* arow = a_rows[row0 + i0 + i] + p0;
            const float* nrow =
                a_noise != nullptr && a_noise[row0 + i0 + i] != nullptr
                    ? a_noise[row0 + i0 + i] + p0
                    : nullptr;
            if (nrow != nullptr) {
                for (std::int64_t p = 0; p < kc; ++p) {
                    panel[p * kMr + i] = arow[p] + nrow[p];
                }
            } else {
                for (std::int64_t p = 0; p < kc; ++p) {
                    panel[p * kMr + i] = arow[p];
                }
            }
        }
        for (std::int64_t i = h; i < kMr; ++i) {
            for (std::int64_t p = 0; p < kc; ++p) {
                panel[p * kMr + i] = 0.0f;
            }
        }
    }
}

/**
 * Strided fallback of the fused-rows path. Mirrors `gemm_small`'s
 * dot-order branch for b_cs = k (the only stride combination the
 * rows API produces: B is n×k row-major used transposed), including
 * the double accumulator — the fused add is the only difference.
 */
void
gemm_small_rows(std::int64_t m, std::int64_t n, std::int64_t k,
                const float* const* a_rows, const float* const* a_noise,
                const float* b, float* c)
{
    for (std::int64_t i = 0; i < m; ++i) {
        const float* arow = a_rows[i];
        const float* nrow = a_noise != nullptr ? a_noise[i] : nullptr;
        for (std::int64_t j = 0; j < n; ++j) {
            const float* bcol = b + j * k;
            double acc = 0.0;
            if (nrow != nullptr) {
                for (std::int64_t p = 0; p < k; ++p) {
                    acc += static_cast<double>(arow[p] + nrow[p]) *
                           bcol[p];
                }
            } else {
                for (std::int64_t p = 0; p < k; ++p) {
                    acc += static_cast<double>(arow[p]) * bcol[p];
                }
            }
            c[i * n + j] += static_cast<float>(acc);
        }
    }
}

/** Blocked path of the fused-rows twin; loop nest as `gemm_blocked`. */
void
gemm_blocked_rows(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* const* a_rows, const float* const* a_noise,
                  const float* b, float* c)
{
    const KernelChoice& kern = kernel_choice();
    const std::int64_t knr = kern.nr;
    ScratchArena& arena = ScratchArena::for_this_thread();
    for (std::int64_t jc = 0; jc < n; jc += kNc) {
        const std::int64_t nc = std::min(kNc, n - jc);
        for (std::int64_t pc = 0; pc < k; pc += kKc) {
            const std::int64_t kc = std::min(kKc, k - pc);
            ScratchLease bpack = arena.acquire(
                static_cast<std::size_t>(round_up(nc, knr) * kc));
            // B is used transposed: op(B)(p,j) = b[p + j*k].
            pack_b(kc, nc, knr, b + pc + jc * k, 1, k, bpack.data());

            const float* bpack_data = bpack.data();
            const std::int64_t num_blocks = (m + kMc - 1) / kMc;
            auto row_block = [&](std::int64_t blk) {
                const std::int64_t ic = blk * kMc;
                const std::int64_t mc = std::min(kMc, m - ic);
                ScratchLease apack =
                    ScratchArena::for_this_thread().acquire(
                        static_cast<std::size_t>(round_up(mc, kMr) * kc));
                pack_a_rows(mc, kc, a_rows, a_noise, ic, pc,
                            apack.data());
                for (std::int64_t jr = 0; jr < nc; jr += knr) {
                    const std::int64_t nr = std::min(knr, nc - jr);
                    const float* bpanel = bpack_data + jr * kc;
                    for (std::int64_t ir = 0; ir < mc; ir += kMr) {
                        kern.fn(kc, apack.data() + ir * kc, bpanel, 1.0f,
                                c + (ic + ir) * n + jc + jr, n,
                                std::min(kMr, mc - ir), nr);
                    }
                }
            };

            const bool threaded = num_blocks > 1 &&
                                  m * n * k >= kParallelMinWork &&
                                  !ThreadPool::in_worker() &&
                                  ThreadPool::global().size() > 1;
            if (threaded) {
                parallel_for(0, num_blocks, row_block);
            } else {
                for (std::int64_t blk = 0; blk < num_blocks; ++blk) {
                    row_block(blk);
                }
            }
        }
    }
}

/**
 * Packed-activation clamp of the int8 path: bounds the int16 image of
 * activation + quantized noise so a k ≤ kS8MaxK dot product cannot
 * overflow the int32 accumulator (2047 · 128 · 8192 < 2³¹).
 */
constexpr std::int32_t kS8PackClamp = 2047;

using S8DotFn = std::int32_t (*)(const std::int16_t* a,
                                 const std::int8_t* b, std::int64_t k);

/** Portable int16×int8 dot product (bit-identical to the AVX2 path). */
std::int32_t
s8_dot_portable(const std::int16_t* a, const std::int8_t* b,
                std::int64_t k)
{
    std::int32_t acc = 0;
    for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(a[p]) * b[p];
    }
    return acc;
}

#if defined(__x86_64__) || defined(__i386__)
/**
 * AVX2 dot kernel: 16 int8 weights sign-extended to int16 lanes,
 * multiply-accumulated against 16 packed int16 activations with
 * `vpmaddwd` (two products per int32 lane, no saturation possible
 * thanks to the ±2047 pack clamp), 8-lane int32 accumulator summed
 * horizontally at the end. Scalar tail for k % 16.
 */
__attribute__((target("avx2"))) std::int32_t
s8_dot_avx2(const std::int16_t* a, const std::int8_t* b, std::int64_t k)
{
    __m256i acc = _mm256_setzero_si256();
    std::int64_t p = 0;
    for (; p + 16 <= k; p += 16) {
        const __m128i b8 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + p));
        const __m256i b16 = _mm256_cvtepi8_epi16(b8);
        const __m256i a16 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + p));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
    }
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    std::int32_t total = _mm_cvtsi128_si32(s);
    for (; p < k; ++p) {
        total += static_cast<std::int32_t>(a[p]) * b[p];
    }
    return total;
}
#endif

const S8DotFn&
s8_dot_choice()
{
    static const S8DotFn fn = [] {
#if defined(__x86_64__) || defined(__i386__)
        if (__builtin_cpu_supports("avx2")) {
            return &s8_dot_avx2;
        }
#endif
        return &s8_dot_portable;
    }();
    return fn;
}

}  // namespace

S8Weights
prepare_s8_weights(const float* w, std::int64_t n, std::int64_t k)
{
    SHREDDER_CHECK(n >= 0 && k >= 0, "negative s8 weight dims");
    S8Weights out;
    const std::int64_t count = n * k;
    float maxabs = 0.0f;
    for (std::int64_t i = 0; i < count; ++i) {
        const float mag = std::fabs(w[i]);
        maxabs = mag > maxabs ? mag : maxabs;
    }
    out.scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    out.data.resize(static_cast<std::size_t>(count));
    out.colsum.assign(static_cast<std::size_t>(n), 0);
    for (std::int64_t j = 0; j < n; ++j) {
        std::int32_t sum = 0;
        for (std::int64_t p = 0; p < k; ++p) {
            const float r = std::round(w[j * k + p] / out.scale);
            const std::int32_t q =
                r < -127.0f ? -127 : (r > 127.0f ? 127 : static_cast<std::int32_t>(r));
            out.data[static_cast<std::size_t>(j * k + p)] =
                static_cast<std::int8_t>(q);
            sum += q;
        }
        out.colsum[static_cast<std::size_t>(j)] = sum;
    }
    return out;
}

void
gemm_s8(std::int64_t m, std::int64_t n, std::int64_t k,
        const std::int8_t* const* a_rows, const float* a_scale,
        const std::int32_t* a_zp, const float* const* a_noise,
        const std::int8_t* b, float b_scale, const std::int32_t* b_colsum,
        const float* bias, float* c)
{
    SHREDDER_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm_s8 dims");
    SHREDDER_CHECK(k <= kS8MaxK, "gemm_s8 k ", k, " exceeds ", kS8MaxK,
                   " (int32 accumulator bound)");
    const S8DotFn dot = s8_dot_choice();
    ScratchArena& arena = ScratchArena::for_this_thread();
    // The int16 packed row borrows the fp32 scratch arena (k floats
    // comfortably hold k int16 values).
    ScratchLease lease = arena.acquire(static_cast<std::size_t>(k + 16));
    auto* packed = reinterpret_cast<std::int16_t*>(lease.data());
    for (std::int64_t i = 0; i < m; ++i) {
        const std::int8_t* arow = a_rows[i];
        const float* nrow = a_noise != nullptr ? a_noise[i] : nullptr;
        if (nrow != nullptr) {
            // Fused noise add: quantize the noise into the row's own
            // code (round(noise/scale) grid steps) while sign-
            // extending — the add costs no extra pass over the data.
            const float inv = 1.0f / a_scale[i];
            for (std::int64_t p = 0; p < k; ++p) {
                float qn = std::nearbyintf(nrow[p] * inv);
                if (std::isnan(qn)) {
                    qn = 0.0f;  // NaN noise adds nothing, not poison.
                }
                const float v = static_cast<float>(arow[p]) + qn;
                packed[p] =
                    v <= static_cast<float>(-kS8PackClamp)
                        ? static_cast<std::int16_t>(-kS8PackClamp)
                        : (v >= static_cast<float>(kS8PackClamp)
                               ? static_cast<std::int16_t>(kS8PackClamp)
                               : static_cast<std::int16_t>(v));
            }
        } else {
            for (std::int64_t p = 0; p < k; ++p) {
                packed[p] = static_cast<std::int16_t>(arow[p]);
            }
        }
        const float row_scale = a_scale[i] * b_scale;
        const std::int32_t zp = a_zp[i];
        float* crow = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            const std::int32_t acc = dot(packed, b + j * k, k);
            crow[j] = row_scale * static_cast<float>(acc - zp * b_colsum[j]) +
                      (bias != nullptr ? bias[j] : 0.0f);
        }
    }
}

void
gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
     std::int64_t k, float alpha, const float* a, const float* b, float beta,
     float* c)
{
    SHREDDER_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm dims");
    // Scale/zero C first so the kernels can be pure accumulation.
    const std::int64_t cn = m * n;
    if (beta == 0.0f) {
        std::fill(c, c + cn, 0.0f);
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < cn; ++i) {
            c[i] *= beta;
        }
    }
    if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) {
        return;
    }

    // op(A)(i,p) = a[i*a_rs + p*a_cs], op(B)(p,j) = b[p*b_rs + j*b_cs].
    const std::int64_t a_rs = trans_a ? 1 : k;
    const std::int64_t a_cs = trans_a ? m : 1;
    const std::int64_t b_rs = trans_b ? 1 : n;
    const std::int64_t b_cs = trans_b ? k : 1;

    if (m < kMr || n < kNrSse || m * n * k <= kSmallWork) {
        gemm_small(m, n, k, alpha, a, a_rs, a_cs, b, b_rs, b_cs, c);
        return;
    }
    gemm_blocked(m, n, k, alpha, a, a_rs, a_cs, b, b_rs, b_cs, c);
}

void
gemm_rows_fused(std::int64_t m, std::int64_t n, std::int64_t k,
                const float* const* a_rows, const float* const* a_noise,
                const float* b, const float* bias, float* c)
{
    SHREDDER_CHECK(m >= 0 && n >= 0 && k >= 0,
                   "negative gemm_rows_fused dims");
    // Same beta = 0 semantics as gemm(): zero first, accumulate after.
    std::fill(c, c + m * n, 0.0f);
    if (m != 0 && n != 0 && k != 0) {
        // The same path-selection condition as gemm() — the bit-exact
        // contract requires matching its small/blocked split.
        if (m < kMr || n < kNrSse || m * n * k <= kSmallWork) {
            gemm_small_rows(m, n, k, a_rows, a_noise, b, c);
        } else {
            gemm_blocked_rows(m, n, k, a_rows, a_noise, b, c);
        }
    }
    if (bias != nullptr) {
        // Linear's bias epilogue, same order, so direct-path outputs
        // match Linear::forward bit for bit.
        for (std::int64_t i = 0; i < m; ++i) {
            float* crow = c + i * n;
            for (std::int64_t j = 0; j < n; ++j) {
                crow[j] += bias[j];
            }
        }
    }
}

}  // namespace shredder
