#include "src/tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "src/runtime/logging.h"

namespace shredder {

namespace {

/**
 * Kernel for the non-transposed case: C[m×n] += alpha · A[m×k] · B[k×n].
 * i-k-j loop order streams B rows and C rows sequentially, which GCC
 * vectorizes well.
 */
void
gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
        const float* a, const float* b, float* c)
{
    constexpr std::int64_t kBlockK = 256;
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::int64_t k1 = std::min(k, k0 + kBlockK);
        for (std::int64_t i = 0; i < m; ++i) {
            float* crow = c + i * n;
            const float* arow = a + i * k;
            for (std::int64_t kk = k0; kk < k1; ++kk) {
                const float av = alpha * arow[kk];
                const float* brow = b + kk * n;
                for (std::int64_t j = 0; j < n; ++j) {
                    crow[j] += av * brow[j];
                }
            }
        }
    }
}

}  // namespace

void
gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
     std::int64_t k, float alpha, const float* a, const float* b, float beta,
     float* c)
{
    SHREDDER_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm dims");
    // Scale/zero C first so the kernel can be pure accumulation.
    const std::int64_t cn = m * n;
    if (beta == 0.0f) {
        std::fill(c, c + cn, 0.0f);
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < cn; ++i) {
            c[i] *= beta;
        }
    }
    if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) {
        return;
    }

    // Normalize to the NN case by materializing transposed inputs. The
    // packs are small relative to the O(mnk) work and keep one fast
    // kernel instead of four variants.
    std::vector<float> a_pack;
    const float* a_nn = a;
    if (trans_a) {
        a_pack.resize(static_cast<std::size_t>(m * k));
        for (std::int64_t i = 0; i < k; ++i) {
            for (std::int64_t j = 0; j < m; ++j) {
                a_pack[static_cast<std::size_t>(j * k + i)] = a[i * m + j];
            }
        }
        a_nn = a_pack.data();
    }
    std::vector<float> b_pack;
    const float* b_nn = b;
    if (trans_b) {
        b_pack.resize(static_cast<std::size_t>(k * n));
        for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < k; ++j) {
                b_pack[static_cast<std::size_t>(j * n + i)] = b[i * k + j];
            }
        }
        b_nn = b_pack.data();
    }
    gemm_nn(m, n, k, alpha, a_nn, b_nn, c);
}

}  // namespace shredder
