/**
 * @file
 * Binary tensor (de)serialization — the `SHRT` codec.
 *
 * Used by the model-checkpoint format, the deployment-bundle format
 * (src/deploy/bundle.h) and the split-execution channel (the edge
 * serializes the noisy activation exactly the way a real deployment
 * would put it on the wire). The version-1 format is a small tagged
 * header followed by raw little-endian float32 data:
 *
 *   magic  u32  'SHRT' (0x54524853)
 *   rank   u32
 *   dims   u64 × rank
 *   data   f32 × numel
 *
 * Version 2 carries quantized payloads (src/tensor/quantize.h). The
 * word after the magic is the marker 0xFFFF0002 — an impossible rank,
 * so v1 readers reject v2 bytes with their existing typed "bad shape
 * rank" error and v2 readers can tell the two apart without a flag
 * day:
 *
 *   magic   u32  'SHRT' (0x54524853)
 *   marker  u32  0xFFFF0002
 *   dtype   u8   WireDtype code (1 = int8, 2 = int16; 0 is invalid
 *                here — fp32 tensors always use the v1 header, so
 *                every fp32 artifact stays bit-identical)
 *   scale   f32  per-tensor affine scale (finite, > 0)
 *   zpoint  i32  per-tensor affine zero point (within dtype range)
 *   rank    u8   (header bytes are the point of the quantized wire
 *   dims    u32 × rank       path, so v2 packs the shape: readers of
 *                            either version reject dims ≥ 2^32, so the
 *                            narrower dim encoding loses nothing)
 *   data    i8/i16 × numel (little-endian)
 *
 * Checked readers reject unknown dtype codes with a typed
 * `SerializeError`, never a crash.
 *
 * Two failure disciplines coexist, because callers sit on different
 * sides of a trust boundary:
 *
 *  - `read_tensor` is *fatal* on malformed input — right for trusted
 *    local artifacts (checkpoint caches, in-process channels), where
 *    corruption means the machine's own state is broken.
 *  - `read_tensor_checked` throws `SerializeError` instead — right
 *    for artifacts that cross a trust boundary (deployment bundles
 *    received from elsewhere), where a malformed file must fail the
 *    *load*, never the process. The bundle loader converts these into
 *    typed `runtime::ServingError`s.
 *
 * The `wire` namespace exposes the checked POD/string/shape helpers
 * the higher-level formats (arch codec, noise distribution, bundle)
 * build on, so every on-disk structure shares one little-endian
 * encoding and one error discipline.
 */
#ifndef SHREDDER_TENSOR_SERIALIZE_H
#define SHREDDER_TENSOR_SERIALIZE_H

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "src/tensor/quantize.h"
#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace shredder {

/**
 * Malformed serialized data (bad magic, truncation, impossible
 * field). Thrown by the `_checked` readers and the `wire` helpers —
 * never by the fatal legacy entry points.
 */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Write a tensor to a binary stream. Panics on stream failure. */
void write_tensor(std::ostream& os, const Tensor& t);

/** Read a tensor from a binary stream. Fatal on malformed input. */
Tensor read_tensor(std::istream& is);

/**
 * Read a tensor from a binary stream; throws `SerializeError` on
 * malformed input instead of terminating. Use for any stream that
 * crosses a trust boundary.
 */
Tensor read_tensor_checked(std::istream& is);

/** Serialized byte size of a tensor (header + payload). */
std::int64_t serialized_size(const Tensor& t);

/**
 * Write a wire-encoded tensor. kF32 payloads produce bit-identical v1
 * bytes (the canonical fp32 encoding); integer dtypes produce the v2
 * header above. Panics on stream failure.
 */
void write_tensor_wire(std::ostream& os, const QuantizedTensor& q);

/**
 * Read either a v1 (fp32) or v2 (quantized) tensor; throws
 * `SerializeError` on malformed input, unknown dtype codes, or an
 * invalid scale/zero-point. The v1 form returns a kF32
 * `QuantizedTensor` whose payload is the raw float image.
 */
QuantizedTensor read_tensor_wire_checked(std::istream& is);

/**
 * Exact on-wire byte size of a tensor of `shape` in `dtype` encoding
 * — the single size formula shared by the writer, the split-channel
 * codec, the cost model and the benches, so reported bytes cannot
 * drift from shipped bytes.
 */
std::int64_t serialized_wire_size(const Shape& shape, WireDtype dtype);

/** Convenience: serialize to an in-memory byte string. */
std::string tensor_to_bytes(const Tensor& t);

/** Convenience: deserialize from an in-memory byte string. */
Tensor tensor_from_bytes(const std::string& bytes);

/**
 * Checked little-endian primitives shared by every Shredder on-disk
 * format. All `read_*` functions throw `SerializeError` on truncation
 * or an out-of-range value; writers panic on stream failure (a write
 * failure is local I/O trouble, not untrusted input).
 */
namespace wire {

void write_u8(std::ostream& os, std::uint8_t v);
void write_u32(std::ostream& os, std::uint32_t v);
void write_u64(std::ostream& os, std::uint64_t v);
void write_f32(std::ostream& os, float v);
void write_f64(std::ostream& os, double v);

std::uint8_t read_u8(std::istream& is);
std::uint32_t read_u32(std::istream& is);
std::uint64_t read_u64(std::istream& is);
float read_f32(std::istream& is);
double read_f64(std::istream& is);

/** Length-prefixed (u32) byte string. */
void write_string(std::ostream& os, const std::string& s);

/**
 * Read a length-prefixed string; lengths above `max_len` are treated
 * as corruption (they would otherwise let a malformed file demand an
 * arbitrary allocation).
 */
std::string read_string(std::istream& is, std::uint32_t max_len = 4096);

/** Shape as u32 rank + u64 dims (same encoding the SHRT header uses). */
void write_shape(std::ostream& os, const Shape& shape);

/** Read a shape; validates rank ≤ Shape::kMaxRank and positive dims. */
Shape read_shape(std::istream& is);

/**
 * Read and verify a u32 section tag; mismatch throws with both values
 * in the message. Keeps multi-section formats self-describing.
 */
void expect_magic(std::istream& is, std::uint32_t expected,
                  const char* what);

}  // namespace wire

}  // namespace shredder

#endif  // SHREDDER_TENSOR_SERIALIZE_H
