/**
 * @file
 * Binary tensor (de)serialization.
 *
 * Used by the model-checkpoint format and by the split-execution
 * channel (the edge serializes the noisy activation exactly the way a
 * real deployment would put it on the wire). The format is a small
 * tagged header followed by raw little-endian float32 data:
 *
 *   magic  u32  'SHRT' (0x54524853)
 *   rank   u32
 *   dims   u64 × rank
 *   data   f32 × numel
 */
#ifndef SHREDDER_TENSOR_SERIALIZE_H
#define SHREDDER_TENSOR_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "src/tensor/tensor.h"

namespace shredder {

/** Write a tensor to a binary stream. Panics on stream failure. */
void write_tensor(std::ostream& os, const Tensor& t);

/** Read a tensor from a binary stream. Fatal on malformed input. */
Tensor read_tensor(std::istream& is);

/** Serialized byte size of a tensor (header + payload). */
std::int64_t serialized_size(const Tensor& t);

/** Convenience: serialize to an in-memory byte string. */
std::string tensor_to_bytes(const Tensor& t);

/** Convenience: deserialize from an in-memory byte string. */
Tensor tensor_from_bytes(const std::string& bytes);

}  // namespace shredder

#endif  // SHREDDER_TENSOR_SERIALIZE_H
