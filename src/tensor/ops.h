/**
 * @file
 * Elementwise and reduction operations on tensors.
 *
 * Free functions rather than members so that new ops never widen the
 * `Tensor` interface. In-place variants (suffix `_inplace`) mutate the
 * first argument and are used on training hot paths.
 */
#ifndef SHREDDER_TENSOR_OPS_H
#define SHREDDER_TENSOR_OPS_H

#include <functional>

#include "src/tensor/tensor.h"

namespace shredder {
namespace ops {

/** c = a + b (shapes must match). */
Tensor add(const Tensor& a, const Tensor& b);

/** a += b (shapes must match). */
void add_inplace(Tensor& a, const Tensor& b);

/** a += alpha * b (axpy; shapes must match). */
void axpy_inplace(Tensor& a, float alpha, const Tensor& b);

/** c = a − b (shapes must match). */
Tensor sub(const Tensor& a, const Tensor& b);

/** c = a ⊙ b, elementwise product (shapes must match). */
Tensor mul(const Tensor& a, const Tensor& b);

/** a ⊙= b, elementwise (shapes must match). */
void mul_inplace(Tensor& a, const Tensor& b);

/** c = a * s, scalar product. */
Tensor scale(const Tensor& a, float s);

/** a *= s. */
void scale_inplace(Tensor& a, float s);

/** a[i] += s for all i. */
void add_scalar_inplace(Tensor& a, float s);

/** c[i] = fn(a[i]). */
Tensor map(const Tensor& a, const std::function<float(float)>& fn);

/** a[i] = fn(a[i]). */
void map_inplace(Tensor& a, const std::function<float(float)>& fn);

/** Clamp every element into [lo, hi]. */
void clamp_inplace(Tensor& a, float lo, float hi);

/** Dot product ⟨a, b⟩ over flattened elements (shapes must match). */
double dot(const Tensor& a, const Tensor& b);

/**
 * Row-wise softmax of a rank-2 tensor (logits [N, M] → probs [N, M]).
 * Numerically stabilized by max subtraction.
 */
Tensor softmax_rows(const Tensor& logits);

/**
 * Row-wise log-softmax of a rank-2 tensor. Stable for large logits.
 */
Tensor log_softmax_rows(const Tensor& logits);

/** Per-row argmax of a rank-2 tensor ([N, M] → N indices). */
std::vector<std::int64_t> argmax_rows(const Tensor& t);

/** Mean of (a−b)² over all elements. */
double mse(const Tensor& a, const Tensor& b);

/** Max |a−b| over all elements. */
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace ops
}  // namespace shredder

#endif  // SHREDDER_TENSOR_OPS_H
