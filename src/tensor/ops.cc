/**
 * @file
 * Implementation of the elementwise/reduction tensor ops.
 */
#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace ops {

namespace {

void
check_same_shape(const Tensor& a, const Tensor& b, const char* what)
{
    SHREDDER_CHECK(a.shape() == b.shape(), what, ": shape mismatch ",
                   a.shape().to_string(), " vs ", b.shape().to_string());
}

}  // namespace

Tensor
add(const Tensor& a, const Tensor& b)
{
    check_same_shape(a, b, "add");
    Tensor c = a;
    add_inplace(c, b);
    return c;
}

void
add_inplace(Tensor& a, const Tensor& b)
{
    check_same_shape(a, b, "add_inplace");
    float* pa = a.data();
    const float* pb = b.data();
    const std::int64_t n = a.size();
    for (std::int64_t i = 0; i < n; ++i) {
        pa[i] += pb[i];
    }
}

void
axpy_inplace(Tensor& a, float alpha, const Tensor& b)
{
    check_same_shape(a, b, "axpy_inplace");
    float* pa = a.data();
    const float* pb = b.data();
    const std::int64_t n = a.size();
    for (std::int64_t i = 0; i < n; ++i) {
        pa[i] += alpha * pb[i];
    }
}

Tensor
sub(const Tensor& a, const Tensor& b)
{
    check_same_shape(a, b, "sub");
    Tensor c = a;
    float* pc = c.data();
    const float* pb = b.data();
    const std::int64_t n = c.size();
    for (std::int64_t i = 0; i < n; ++i) {
        pc[i] -= pb[i];
    }
    return c;
}

Tensor
mul(const Tensor& a, const Tensor& b)
{
    check_same_shape(a, b, "mul");
    Tensor c = a;
    mul_inplace(c, b);
    return c;
}

void
mul_inplace(Tensor& a, const Tensor& b)
{
    check_same_shape(a, b, "mul_inplace");
    float* pa = a.data();
    const float* pb = b.data();
    const std::int64_t n = a.size();
    for (std::int64_t i = 0; i < n; ++i) {
        pa[i] *= pb[i];
    }
}

Tensor
scale(const Tensor& a, float s)
{
    Tensor c = a;
    scale_inplace(c, s);
    return c;
}

void
scale_inplace(Tensor& a, float s)
{
    float* pa = a.data();
    const std::int64_t n = a.size();
    for (std::int64_t i = 0; i < n; ++i) {
        pa[i] *= s;
    }
}

void
add_scalar_inplace(Tensor& a, float s)
{
    float* pa = a.data();
    const std::int64_t n = a.size();
    for (std::int64_t i = 0; i < n; ++i) {
        pa[i] += s;
    }
}

Tensor
map(const Tensor& a, const std::function<float(float)>& fn)
{
    Tensor c = a;
    map_inplace(c, fn);
    return c;
}

void
map_inplace(Tensor& a, const std::function<float(float)>& fn)
{
    float* pa = a.data();
    const std::int64_t n = a.size();
    for (std::int64_t i = 0; i < n; ++i) {
        pa[i] = fn(pa[i]);
    }
}

void
clamp_inplace(Tensor& a, float lo, float hi)
{
    SHREDDER_REQUIRE(lo <= hi, "clamp range inverted");
    float* pa = a.data();
    const std::int64_t n = a.size();
    for (std::int64_t i = 0; i < n; ++i) {
        pa[i] = std::min(hi, std::max(lo, pa[i]));
    }
}

double
dot(const Tensor& a, const Tensor& b)
{
    check_same_shape(a, b, "dot");
    const float* pa = a.data();
    const float* pb = b.data();
    const std::int64_t n = a.size();
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        s += static_cast<double>(pa[i]) * pb[i];
    }
    return s;
}

Tensor
softmax_rows(const Tensor& logits)
{
    SHREDDER_CHECK(logits.shape().rank() == 2, "softmax_rows wants rank 2");
    const std::int64_t rows = logits.shape()[0];
    const std::int64_t cols = logits.shape()[1];
    Tensor out(logits.shape());
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* in = logits.data() + r * cols;
        float* o = out.data() + r * cols;
        float mx = in[0];
        for (std::int64_t c = 1; c < cols; ++c) {
            mx = std::max(mx, in[c]);
        }
        double denom = 0.0;
        for (std::int64_t c = 0; c < cols; ++c) {
            o[c] = std::exp(in[c] - mx);
            denom += o[c];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (std::int64_t c = 0; c < cols; ++c) {
            o[c] *= inv;
        }
    }
    return out;
}

Tensor
log_softmax_rows(const Tensor& logits)
{
    SHREDDER_CHECK(logits.shape().rank() == 2,
                   "log_softmax_rows wants rank 2");
    const std::int64_t rows = logits.shape()[0];
    const std::int64_t cols = logits.shape()[1];
    Tensor out(logits.shape());
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* in = logits.data() + r * cols;
        float* o = out.data() + r * cols;
        float mx = in[0];
        for (std::int64_t c = 1; c < cols; ++c) {
            mx = std::max(mx, in[c]);
        }
        double denom = 0.0;
        for (std::int64_t c = 0; c < cols; ++c) {
            denom += std::exp(static_cast<double>(in[c]) - mx);
        }
        const float log_denom = static_cast<float>(std::log(denom)) + mx;
        for (std::int64_t c = 0; c < cols; ++c) {
            o[c] = in[c] - log_denom;
        }
    }
    return out;
}

std::vector<std::int64_t>
argmax_rows(const Tensor& t)
{
    SHREDDER_CHECK(t.shape().rank() == 2, "argmax_rows wants rank 2");
    const std::int64_t rows = t.shape()[0];
    const std::int64_t cols = t.shape()[1];
    std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* in = t.data() + r * cols;
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < cols; ++c) {
            if (in[c] > in[best]) {
                best = c;
            }
        }
        out[static_cast<std::size_t>(r)] = best;
    }
    return out;
}

double
mse(const Tensor& a, const Tensor& b)
{
    check_same_shape(a, b, "mse");
    const float* pa = a.data();
    const float* pb = b.data();
    const std::int64_t n = a.size();
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(pa[i]) - pb[i];
        s += d * d;
    }
    return n == 0 ? 0.0 : s / static_cast<double>(n);
}

double
max_abs_diff(const Tensor& a, const Tensor& b)
{
    check_same_shape(a, b, "max_abs_diff");
    const float* pa = a.data();
    const float* pb = b.data();
    const std::int64_t n = a.size();
    double mx = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        mx = std::max(mx, std::abs(static_cast<double>(pa[i]) - pb[i]));
    }
    return mx;
}

}  // namespace ops
}  // namespace shredder
