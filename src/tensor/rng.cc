/**
 * @file
 * Implementation of the deterministic PRNG and its distributions.
 */
#include "src/tensor/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/runtime/logging.h"

namespace shredder {

float
Rng::uniform(float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
}

float
Rng::normal(float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
}

float
Rng::laplace(float location, float scale)
{
    SHREDDER_REQUIRE(scale > 0.0f, "Laplace scale must be positive, got ",
                     scale);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    double u = dist(engine_);
    // Guard the log argument away from zero for u == ±0.5.
    double mag = std::max(1e-300, 1.0 - 2.0 * std::abs(u));
    double sign = (u >= 0.0) ? 1.0 : -1.0;
    return static_cast<float>(location - scale * sign * std::log(mag));
}

std::int64_t
Rng::randint(std::int64_t lo, std::int64_t hi)
{
    SHREDDER_REQUIRE(lo <= hi, "randint range inverted: [", lo, ", ", hi,
                     "]");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

std::vector<std::int64_t>
Rng::permutation(std::int64_t n)
{
    std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    std::shuffle(idx.begin(), idx.end(), engine_);
    return idx;
}

Rng
Rng::fork()
{
    return Rng(engine_());
}

}  // namespace shredder
