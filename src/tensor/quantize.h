/**
 * @file
 * Per-tensor affine quantization for the activation wire path.
 *
 * Shredder's premise is a bandwidth-constrained edge shipping noisy
 * intermediate activations to the cloud (paper §1, §3.4). The learned
 * noise floor dwarfs the quantization error of an 8-bit affine code,
 * so int8 transport is nearly free accuracy-wise while cutting wire
 * bytes ~4×. This header is the single source of truth for that code:
 *
 *   q  = clamp(round(x / scale) + zero_point, qmin, qmax)
 *   x' = scale · (q − zero_point)
 *
 * with per-tensor `scale`/`zero_point` chosen from the finite min/max
 * of the tensor (`choose_quant_params`). Guarantees:
 *
 *  - |x' − x| ≤ scale/2 for every finite in-range element, where
 *    scale = (max − min) / (qmax − qmin);
 *  - an all-equal tensor round-trips exactly (degenerate range picks
 *    a scale that represents the value on the grid);
 *  - the output is always NaN-free: NaN inputs map to `zero_point`
 *    (dequantizes to ~0), ±inf saturates to the range edge.
 *
 * `WireDtype` also names the transport encodings (`fp32` means "no
 * quantization, v1 SHRT bytes") used by the SHRT v2 header
 * (src/tensor/serialize.h), the `wire_dtype=` manifest/bundle keys
 * (src/deploy/bundle.h) and the SHRQ request path (src/net/).
 */
#ifndef SHREDDER_TENSOR_QUANTIZE_H
#define SHREDDER_TENSOR_QUANTIZE_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace shredder {

/**
 * Element encoding of a tensor on the wire. Values are the SHRT v2
 * header codes — append-only, never renumber (the codec and the
 * bundle format both persist them).
 */
enum class WireDtype : std::uint8_t
{
    kF32 = 0,  ///< Raw float32 (canonical v1 SHRT bytes; no header v2).
    kI8 = 1,   ///< Per-tensor affine int8.
    kI16 = 2,  ///< Per-tensor affine int16.
};

/** "fp32" / "int8" / "int16" — the manifest/CLI spelling. */
const char* to_string(WireDtype dtype);

/**
 * Parse the manifest/CLI spelling ("fp32", "int8", "int16").
 * Returns false (and leaves `*out` untouched) on anything else.
 */
bool parse_wire_dtype(const std::string& text, WireDtype* out);

/** Payload bytes per element (4, 1, 2). */
std::int64_t dtype_bytes(WireDtype dtype);

/** Per-tensor affine code parameters. */
struct QuantParams
{
    float scale = 1.0f;
    std::int32_t zero_point = 0;
};

/**
 * Affine parameters covering [lo, hi] with the dtype's integer grid.
 * `lo`/`hi` are sanitized (non-finite → 0); a degenerate lo == hi
 * range picks a scale that represents the value exactly. For kF32 the
 * identity code {1, 0} is returned.
 */
QuantParams choose_quant_params(float lo, float hi, WireDtype dtype);

/** Inclusive integer grid of a dtype (e.g. [−128, 127] for kI8). */
std::int32_t dtype_qmin(WireDtype dtype);
std::int32_t dtype_qmax(WireDtype dtype);

/**
 * A tensor in wire encoding: shape + code parameters + raw
 * little-endian payload. For kF32 the payload is the float32 image of
 * the tensor and `scale`/`zero_point` are the identity code.
 */
struct QuantizedTensor
{
    Shape shape;
    WireDtype dtype = WireDtype::kF32;
    float scale = 1.0f;
    std::int32_t zero_point = 0;
    /** numel × dtype_bytes(dtype) raw little-endian bytes. */
    std::vector<std::uint8_t> data;

    std::int64_t size() const { return shape.numel(); }

    const float* f32() const
    {
        return reinterpret_cast<const float*>(data.data());
    }
    const std::int8_t* i8() const
    {
        return reinterpret_cast<const std::int8_t*>(data.data());
    }
    const std::int16_t* i16() const
    {
        return reinterpret_cast<const std::int16_t*>(data.data());
    }
};

/** Encode `t` (kF32 is a raw copy; see file comment for guarantees). */
QuantizedTensor quantize(const Tensor& t, WireDtype dtype);

/** Decode back to float32. Exact for kF32. Output is NaN-free for
 * integer dtypes. */
Tensor dequantize(const QuantizedTensor& q);

}  // namespace shredder

#endif  // SHREDDER_TENSOR_QUANTIZE_H
