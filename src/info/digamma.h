/**
 * @file
 * Digamma function ψ(x), needed by the Kraskov MI estimator.
 */
#ifndef SHREDDER_INFO_DIGAMMA_H
#define SHREDDER_INFO_DIGAMMA_H

namespace shredder {
namespace info {

/**
 * Digamma ψ(x) for x > 0 via upward recurrence into the asymptotic
 * region plus the standard Bernoulli series. Absolute error < 1e-10
 * for x ≥ 1e-3.
 */
double digamma(double x);

}  // namespace info
}  // namespace shredder

#endif  // SHREDDER_INFO_DIGAMMA_H
